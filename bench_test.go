// Package repro's benchmarks regenerate each table and figure of the
// paper's evaluation (§5) as testing.B targets, reporting the headline
// metric of each experiment alongside the timing:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1  — workload characterisation (reports mean strided %)
// BenchmarkFig5    — execution time vs 4/8/16/unbounded-entry buffers
// BenchmarkFig6    — mapping mix / hit rate / unroll factors at 8 entries
// BenchmarkFig7    — L0 vs MultiVLIW vs word-interleaved baselines
// BenchmarkExtra*  — the §5.2 side experiments (2-entry buffers, the
//
//	mark-all-candidates ablation, prefetch distance 2)
//
// BenchmarkAblation* — design-choice ablations DESIGN.md calls out
//
// The figure benchmarks run on the parallel experiment engine (worker pool
// + schedule cache, see internal/harness and PERF.md); BenchmarkFig5Serial
// pins a single worker with the cache disabled so the engine's contribution
// stays visible in the recorded trajectory.
package repro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func BenchmarkTable1(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		var s float64
		for _, bench := range workload.Suite() {
			s += workload.Characterize(bench).S
		}
		mean = s / 13
	}
	b.ReportMetric(mean*100, "strided_%")
}

func BenchmarkFig5(b *testing.B) {
	entries := []int{4, 8, 16, arch.Unbounded}
	var amean8 float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig5(entries, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		amean8 = harness.AMeanTotal(pts, 1)
	}
	b.ReportMetric(amean8, "amean_8entry")
}

// BenchmarkFig5Serial is Figure 5 on one worker with schedule memoization
// off: the raw compile+simulate cost, for comparing against BenchmarkFig5.
func BenchmarkFig5Serial(b *testing.B) {
	entries := []int{4, 8, 16, arch.Unbounded}
	rc := harness.RunConfig{Workers: 1, DisableScheduleCache: true}
	var amean8 float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig5Cfg(rc, entries, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		amean8 = harness.AMeanTotal(pts, 1)
	}
	b.ReportMetric(amean8, "amean_8entry")
}

func BenchmarkFig6(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(8)
		if err != nil {
			b.Fatal(err)
		}
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.HitRate)
		}
		hit = stats.AMean(xs)
	}
	b.ReportMetric(hit*100, "mean_hitrate_%")
}

func BenchmarkFig7(b *testing.B) {
	var l0, mv float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(8)
		if err != nil {
			b.Fatal(err)
		}
		var l0s, mvs []float64
		for _, r := range rows {
			l0s = append(l0s, r.L0)
			mvs = append(mvs, r.MultiVLIW)
		}
		l0, mv = stats.AMean(l0s), stats.AMean(mvs)
	}
	b.ReportMetric(l0, "amean_l0")
	b.ReportMetric(mv, "amean_multivliw")
}

func BenchmarkExtra2Entry(b *testing.B) {
	var amean float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig5([]int{2}, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		amean = harness.AMeanTotal(pts, 0)
	}
	b.ReportMetric(amean, "amean_2entry")
}

func BenchmarkExtraMarkAll(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		sel, err := harness.Fig5([]int{4}, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		all, err := harness.Fig5([]int{4}, sched.Options{MarkAllCandidates: true})
		if err != nil {
			b.Fatal(err)
		}
		delta = harness.AMeanTotal(all, 0) - harness.AMeanTotal(sel, 0)
	}
	b.ReportMetric(delta, "markall_minus_selective")
}

func BenchmarkExtraPrefetchDistance(b *testing.B) {
	var epicDelta float64
	for i := 0; i < b.N; i++ {
		bench := workload.ByName("epicdec")
		cfg := arch.MICRO36Config().WithL0Entries(8)
		d1, err := harness.RunBenchmark(bench, harness.ArchL0, harness.Options{Cfg: cfg})
		if err != nil {
			b.Fatal(err)
		}
		d2, err := harness.RunBenchmark(bench, harness.ArchL0,
			harness.Options{Cfg: cfg, Sched: sched.Options{PrefetchDistance: 2}})
		if err != nil {
			b.Fatal(err)
		}
		epicDelta = float64(d2.Total)/float64(d1.Total) - 1
	}
	b.ReportMetric(epicDelta*100, "epicdec_dist2_%")
}

// BenchmarkAblationNoExplicitPrefetch measures what scheduling step 5 buys:
// the suite with explicit prefetch insertion disabled.
func BenchmarkAblationNoExplicitPrefetch(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		on, err := harness.Fig5([]int{8}, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		off, err := harness.Fig5([]int{8}, sched.Options{DisableExplicitPrefetch: true})
		if err != nil {
			b.Fatal(err)
		}
		delta = harness.AMeanTotal(off, 0) - harness.AMeanTotal(on, 0)
	}
	b.ReportMetric(delta, "cost_of_disabling")
}

// BenchmarkAblationPSR runs the suite with partial store replication enabled
// for load+store sets instead of the NL0/1C choice (§4.1 drops PSR after
// code specialization; this quantifies that decision).
func BenchmarkAblationPSR(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		std, err := harness.Fig5([]int{8}, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		psr, err := harness.Fig5([]int{8}, sched.Options{AllowPSR: true})
		if err != nil {
			b.Fatal(err)
		}
		delta = harness.AMeanTotal(psr, 0) - harness.AMeanTotal(std, 0)
	}
	b.ReportMetric(delta, "psr_minus_1c")
}

// BenchmarkScheduler isolates compile time: the full §4.3 pipeline over
// every kernel of the suite (no simulation).
func BenchmarkScheduler(b *testing.B) {
	cfg := arch.MICRO36Config()
	for i := 0; i < b.N; i++ {
		for _, bench := range workload.Suite() {
			for k := range bench.Kernels {
				l := bench.Kernels[k].Loop()
				workload.AssignAddresses(l, 1<<16)
				if _, err := sched.Pipeline(l, cfg, sched.Options{UseL0: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSimulator isolates simulation throughput: one benchmark model
// end to end on the L0 architecture.
func BenchmarkSimulator(b *testing.B) {
	bench := workload.ByName("gsmdec")
	cfg := arch.MICRO36Config()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := harness.RunBenchmark(bench, harness.ArchL0, harness.Options{Cfg: cfg})
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Total
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkExtensionWireSweep measures the wire-delay trend (the paper's
// motivation): the L0 benefit at L1 latency 6 vs 12 cycles with adaptive
// prefetch distance.
func BenchmarkExtensionWireSweep(b *testing.B) {
	var at6, at12 float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.WireSweep([]int{6, 12}, 8)
		if err != nil {
			b.Fatal(err)
		}
		at6, at12 = pts[0].AMeanAdaptive, pts[1].AMeanAdaptive
	}
	b.ReportMetric(at6, "adaptive_lat6")
	b.ReportMetric(at12, "adaptive_lat12")
}

// BenchmarkExtensionClusterSweep measures the L0 benefit at 2 and 8 clusters.
func BenchmarkExtensionClusterSweep(b *testing.B) {
	var m2, m8 float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.ClusterSweep([]int{2, 8}, 8)
		if err != nil {
			b.Fatal(err)
		}
		var s2, s8 float64
		for _, row := range pts {
			s2 += row[0].Norm
			s8 += row[1].Norm
		}
		m2, m8 = s2/13, s8/13
	}
	b.ReportMetric(m2, "amean_2clusters")
	b.ReportMetric(m8, "amean_8clusters")
}
