#!/bin/sh
# serve-smoke: end-to-end check of the l0served serving subsystem.
#
# Builds l0served and l0explore, starts the server on an ephemeral port,
# runs a small grid through the HTTP API and diffs it against the local
# l0explore output (must be byte-identical), asserts a repeat sweep is
# served from the simulation-result cache (zero new simulations,
# byte-identical body), exercises a cache save / reload cycle in a second
# server process (the reloaded cache serves the same sweep with zero
# compiles and zero simulations), and sweeps a third server with cache caps
# below the working set (eviction must not change a byte).
#
# Usage: scripts/serve_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.serve-smoke}
ARGS="-benches gsmdec,g721dec -clusters 4,16 -entries 4,8"

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/l0explore" ./cmd/l0explore
go build -o "$DIR/l0served" ./cmd/l0served

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

wait_port() { # wait_port portfile
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: server did not come up ($1)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# Reference: the same sweep run locally.
"$DIR/l0explore" $ARGS -format json -o "$DIR/local.json"
"$DIR/l0explore" $ARGS -format table -o "$DIR/local.txt"

# 1. Cold server: HTTP output must match the local run byte-for-byte.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port" -cache "$DIR/cache.json" >"$DIR/served.log" 2>&1 &
PID=$!
wait_port "$DIR/port"
URL="http://$(cat "$DIR/port")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server.json"
cmp "$DIR/local.json" "$DIR/server.json"
"$DIR/l0explore" -server "$URL" $ARGS -format table -o "$DIR/server.txt"
cmp "$DIR/local.txt" "$DIR/server.txt"

# 1b. Repeat the sweep on the now-warm server: the result cache must serve
# it without a single new simulation, byte-identically.
counter() { # counter name statsfile
    sed -n "s/^  \"$1\": \([0-9][0-9]*\).*/\1/p" "$2"
}
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_before.json"
"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/repeat.json"
cmp "$DIR/local.json" "$DIR/repeat.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_after.json"
for c in simulations compiles; do
    before=$(counter "$c" "$DIR/stats_before.json")
    after=$(counter "$c" "$DIR/stats_after.json")
    if [ -z "$before" ] || [ "$before" != "$after" ]; then
        echo "serve-smoke: repeat sweep was not $c-free ($before -> $after)" >&2
        exit 1
    fi
done
# positive_counter asserts a counter is present and nonzero (an absent key
# must fail, not pass vacuously).
positive_counter() { # positive_counter name statsfile
    v=$(counter "$1" "$2")
    if [ -z "$v" ] || [ "$v" = "0" ]; then
        echo "serve-smoke: counter $1 is '${v:-missing}', want > 0:" >&2
        cat "$2" >&2
        exit 1
    fi
}
positive_counter sim_hits "$DIR/stats_after.json"

# 2. Snapshot the warm cache, then stop the server.
"$DIR/l0explore" -server "$URL" -savecache >/dev/null
kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
[ -s "$DIR/cache.json" ] || { echo "serve-smoke: cache snapshot missing" >&2; exit 1; }

# 3. Fresh process, persisted cache: same bytes, zero compiles AND zero
# simulations (the v2 snapshot carries results, not just schedules).
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port2" -cache "$DIR/cache.json" >"$DIR/served2.log" 2>&1 &
PID=$!
wait_port "$DIR/port2"
URL="http://$(cat "$DIR/port2")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server2.json"
cmp "$DIR/local.json" "$DIR/server2.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats.json"
for c in compiles simulations; do
    grep -q "\"$c\": 0" "$DIR/stats.json" || {
        echo "serve-smoke: persisted-cache sweep was not $c-free:" >&2
        cat "$DIR/stats.json" >&2
        exit 1
    }
done

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# 4. Caps below the working set: eviction keeps the resident set bounded
# and must not change a single output byte.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port3" \
    -schedcap 3 -resultcap 2 >"$DIR/served3.log" 2>&1 &
PID=$!
wait_port "$DIR/port3"
URL="http://$(cat "$DIR/port3")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server3.json"
cmp "$DIR/local.json" "$DIR/server3.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats3.json"
positive_counter result_evictions "$DIR/stats3.json"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

rm -rf "$DIR"
echo "serve-smoke: ok"
