#!/bin/sh
# serve-smoke: end-to-end check of the l0served serving subsystem.
#
# Builds l0served and l0explore, starts the server on an ephemeral port,
# runs a small grid through the HTTP API and diffs it against the local
# l0explore output (must be byte-identical), exercises a cache save /
# reload cycle in a second server process, and verifies the reloaded cache
# serves the same sweep with zero compiles.
#
# Usage: scripts/serve_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.serve-smoke}
ARGS="-benches gsmdec,g721dec -clusters 4,16 -entries 4,8"

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/l0explore" ./cmd/l0explore
go build -o "$DIR/l0served" ./cmd/l0served

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

wait_port() { # wait_port portfile
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: server did not come up ($1)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# Reference: the same sweep run locally.
"$DIR/l0explore" $ARGS -format json -o "$DIR/local.json"
"$DIR/l0explore" $ARGS -format table -o "$DIR/local.txt"

# 1. Cold server: HTTP output must match the local run byte-for-byte.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port" -cache "$DIR/cache.json" >"$DIR/served.log" 2>&1 &
PID=$!
wait_port "$DIR/port"
URL="http://$(cat "$DIR/port")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server.json"
cmp "$DIR/local.json" "$DIR/server.json"
"$DIR/l0explore" -server "$URL" $ARGS -format table -o "$DIR/server.txt"
cmp "$DIR/local.txt" "$DIR/server.txt"

# 2. Snapshot the warm cache, then stop the server.
"$DIR/l0explore" -server "$URL" -savecache >/dev/null
kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
[ -s "$DIR/cache.json" ] || { echo "serve-smoke: cache snapshot missing" >&2; exit 1; }

# 3. Fresh process, persisted cache: same bytes, zero compiles.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port2" -cache "$DIR/cache.json" >"$DIR/served2.log" 2>&1 &
PID=$!
wait_port "$DIR/port2"
URL="http://$(cat "$DIR/port2")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server2.json"
cmp "$DIR/local.json" "$DIR/server2.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats.json"
grep -q '"compiles": 0' "$DIR/stats.json" || {
    echo "serve-smoke: persisted-cache sweep was not compile-free:" >&2
    cat "$DIR/stats.json" >&2
    exit 1
}

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

rm -rf "$DIR"
echo "serve-smoke: ok"
