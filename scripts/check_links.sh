#!/bin/sh
# check_links: fail on dead relative links in the repo's markdown set.
#
# Scans README.md and every markdown file under docs/ for inline links
# ([text](target)), resolves relative targets against the linking file's
# directory, and exits nonzero listing any that point at files that don't
# exist. External links (http/https/mailto) and same-file anchors are out
# of scope — this gate is about keeping the docs set self-consistent as
# files move, not about the internet.
#
# Usage: scripts/check_links.sh [file.md ...]   (default: README.md docs/*.md)
set -eu

cd "$(dirname "$0")/.."

FILES="$*"
[ -n "$FILES" ] || FILES="README.md $(find docs -name '*.md' 2>/dev/null)"

status=0
for f in $FILES; do
    [ -f "$f" ] || { echo "check_links: no such file $f" >&2; status=1; continue; }
    dir=$(dirname "$f")
    # One link target per line: grab every "](target)" group, then strip
    # the wrapping. Titles ("](a.md \"title\")") are cut with the space.
    targets=$(grep -o ']([^)]*)' "$f" | sed -e 's/^](//' -e 's/)$//' -e 's/ .*//') || true
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path=${t%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "check_links: $f: dead link -> $t" >&2
            status=1
        fi
    done
done

[ "$status" -eq 0 ] && echo "check_links: ok"
exit $status
