#!/bin/sh
# kernels-smoke: end-to-end check of content-addressed kernel identity
# through the serving stack.
#
# Builds l0served and l0explore, POSTs a real .loop file to /v1/kernels,
# sweeps it by content hash over HTTP and diffs the bytes against the same
# sweep run locally from the file (must be byte-identical), repeats the
# sweep warm (zero new compiles and simulations), snapshots the cache (v3:
# carries the kernel source), reloads it into a fresh process and sweeps by
# hash again WITHOUT re-registering — zero compiles, zero simulations, same
# bytes. Finally boots a server on the committed v2 snapshot fixture to pin
# that pre-content-hash caches still import and serve compile-free.
#
# Usage: scripts/kernels_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.kernels-smoke}
LOOP=examples/loops/saxpy.loop
ARGS="-benches gsmdec -clusters 4,8 -entries 4,8"

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/l0explore" ./cmd/l0explore
go build -o "$DIR/l0served" ./cmd/l0served

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

wait_port() { # wait_port portfile
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "kernels-smoke: server did not come up ($1)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

counter() { # counter name statsfile
    sed -n "s/^  \"$1\": \([0-9][0-9]*\).*/\1/p" "$2"
}

# Reference: the same mixed suite+kernel sweep run locally from the file.
"$DIR/l0explore" $ARGS -kernel "$LOOP" -format json -o "$DIR/local.json"

# 1. Register the kernel over HTTP; the reply carries its content hash.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port" -cache "$DIR/cache.json" >"$DIR/served.log" 2>&1 &
PID=$!
wait_port "$DIR/port"
URL="http://$(cat "$DIR/port")"

curl -sS --fail --data-binary "@$LOOP" "$URL/v1/kernels" -o "$DIR/reg.json"
HASH=$(grep -o '"id": *"[0-9a-f]\{64\}"' "$DIR/reg.json" | grep -o '[0-9a-f]\{64\}')
[ -n "$HASH" ] || { echo "kernels-smoke: no content hash in registration reply:" >&2; cat "$DIR/reg.json" >&2; exit 1; }
# Idempotence: re-POSTing the same file answers the same identity.
curl -sS --fail --data-binary "@$LOOP" "$URL/v1/kernels" | grep -q "$HASH" || {
    echo "kernels-smoke: re-registration changed the kernel identity" >&2
    exit 1
}

# 2. Sweep by hash: the HTTP bytes must equal the local run from the file.
explore_by_hash() { # explore_by_hash outfile
    curl -sS --fail -H 'Content-Type: application/json' "$URL/v1/explore" -o "$1" -d '{
        "benches": ["gsmdec"], "kernels": ["'"$HASH"'"],
        "clusters": [4, 8], "entries": [4, 8], "format": "json"
    }'
}
explore_by_hash "$DIR/server.json"
cmp "$DIR/local.json" "$DIR/server.json"

# The l0explore client path (inline source from the file) lands on the same
# identity and the same bytes.
"$DIR/l0explore" -server "$URL" $ARGS -kernel "$LOOP" -format json -o "$DIR/client.json"
cmp "$DIR/local.json" "$DIR/client.json"

# 3. Repeat sweep warm: zero new compiles, zero new simulations.
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_before.json"
explore_by_hash "$DIR/repeat.json"
cmp "$DIR/local.json" "$DIR/repeat.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_after.json"
for c in compiles simulations; do
    before=$(counter "$c" "$DIR/stats_before.json")
    after=$(counter "$c" "$DIR/stats_after.json")
    if [ -z "$before" ] || [ "$before" != "$after" ]; then
        echo "kernels-smoke: repeat hash sweep was not $c-free ($before -> $after)" >&2
        exit 1
    fi
done

# 4. Snapshot (v3: the kernel source travels with the cache) and stop.
"$DIR/l0explore" -server "$URL" -savecache >/dev/null
kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
grep -q '"version": 3' "$DIR/cache.json" || { echo "kernels-smoke: snapshot is not v3" >&2; exit 1; }
grep -q "$HASH" "$DIR/cache.json" || { echo "kernels-smoke: snapshot does not carry the kernel" >&2; exit 1; }

# 5. Fresh process, persisted cache, NO re-registration: the snapshot alone
# must make the hash resolvable and the sweep free of compiles and
# simulations, byte-identically.
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port2" -cache "$DIR/cache.json" >"$DIR/served2.log" 2>&1 &
PID=$!
wait_port "$DIR/port2"
URL="http://$(cat "$DIR/port2")"

curl -sS --fail "$URL/v1/kernels/$HASH" >/dev/null
explore_by_hash "$DIR/server2.json"
cmp "$DIR/local.json" "$DIR/server2.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats2.json"
for c in compiles simulations; do
    grep -q "\"$c\": 0" "$DIR/stats2.json" || {
        echo "kernels-smoke: persisted-cache hash sweep was not $c-free:" >&2
        cat "$DIR/stats2.json" >&2
        exit 1
    }
done

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# 6. Backward compatibility: a server booted on the committed v2 snapshot
# (positional keying, pre-content-hash) must import every record and serve
# the fixture's grid compile- and simulation-free.
cp internal/harness/testdata/cache_v2.json "$DIR/v2.json"
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port3" -cache "$DIR/v2.json" >"$DIR/served3.log" 2>&1 &
PID=$!
wait_port "$DIR/port3"
URL="http://$(cat "$DIR/port3")"

grep -q "loaded 12 schedules, 4 unroll decisions, 3 results (0 skipped)" "$DIR/served3.log" || {
    echo "kernels-smoke: v2 snapshot did not import cleanly:" >&2
    cat "$DIR/served3.log" >&2
    exit 1
}
"$DIR/l0explore" -server "$URL" -benches gsmdec -clusters 4 -entries 4,8 -format json -o /dev/null
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats3.json"
for c in compiles simulations; do
    grep -q "\"$c\": 0" "$DIR/stats3.json" || {
        echo "kernels-smoke: v2-loaded sweep was not $c-free:" >&2
        cat "$DIR/stats3.json" >&2
        exit 1
    }
done

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

rm -rf "$DIR"
echo "kernels-smoke: ok"
