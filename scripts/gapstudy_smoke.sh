#!/bin/sh
# gapstudy-smoke: end-to-end check of the exact scheduling backend.
#
# Builds the binaries race-instrumented, then: compiles a kernel with
# -sched exact through l0sched and requires the printed certificate to pass
# the independent validator; runs a two-benchmark l0gap study and requires a
# provably-optimal verdict; sweeps an exact-backend grid through l0served
# over HTTP, diffs it against the local l0explore run byte-for-byte, and
# asserts the repeat sweep is search-free (the exact_searches/exact_nodes
# cache counters must not move — certificates are served from the schedule
# cache); finally exercises the async job path (sched axis, progress fields,
# cancel endpoint answering on a terminal job).
#
# Usage: scripts/gapstudy_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.gapstudy-smoke}
ARGS="-benches gsmdec,g721dec -clusters 4 -entries 8 -sched sms,exact"

rm -rf "$DIR"
mkdir -p "$DIR"
# Race-instrumented on purpose: the exact searches run inside the engine's
# worker pool and the async job path, exactly where a data race would hide.
go build -race -o "$DIR/l0sched" ./cmd/l0sched
go build -race -o "$DIR/l0gap" ./cmd/l0gap
go build -race -o "$DIR/l0explore" ./cmd/l0explore
go build -race -o "$DIR/l0served" ./cmd/l0served

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# 1. One kernel end to end: the exact backend must emit a certificate and
# the independent validator must accept it.
"$DIR/l0sched" -bench gsmdec -sched exact >"$DIR/sched.txt"
grep -q "certificate: backend=exact" "$DIR/sched.txt" || {
    echo "gapstudy-smoke: l0sched printed no exact certificate" >&2
    cat "$DIR/sched.txt" >&2
    exit 1
}
grep -q "certificate: validated" "$DIR/sched.txt" || {
    echo "gapstudy-smoke: certificate did not validate" >&2
    cat "$DIR/sched.txt" >&2
    exit 1
}

# 2. A two-benchmark gap study: every kernel must be proven optimal within
# the default budget (a budget-truncated row would say "no (budget)").
"$DIR/l0gap" -benches gsmdec,g721dec -o "$DIR/gap.md"
grep -q "kernels scheduled provably optimally" "$DIR/gap.md"
if grep -q "no (budget)" "$DIR/gap.md"; then
    echo "gapstudy-smoke: gap study hit the search budget on a smoke kernel" >&2
    cat "$DIR/gap.md" >&2
    exit 1
fi

# 3. The sched axis over HTTP vs locally: byte-identical.
"$DIR/l0explore" $ARGS -format json -o "$DIR/local.json"
grep -q '"sched": "exact"' "$DIR/local.json" || {
    echo "gapstudy-smoke: sweep has no exact-backend cells" >&2
    exit 1
}

"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/port" >"$DIR/served.log" 2>&1 &
PID=$!
i=0
while [ ! -s "$DIR/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "gapstudy-smoke: server did not come up" >&2
        exit 1
    fi
    sleep 0.1
done
URL="http://$(cat "$DIR/port")"

"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/server.json"
cmp "$DIR/local.json" "$DIR/server.json"

counter() { # counter name statsfile
    sed -n "s/^  \"$1\": \([0-9][0-9]*\).*/\1/p" "$2"
}
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_before.json"
searches=$(counter exact_searches "$DIR/stats_before.json")
if [ -z "$searches" ]; then
    echo "gapstudy-smoke: cachestats has no exact_searches counter" >&2
    cat "$DIR/stats_before.json" >&2
    exit 1
fi

# 4. Repeat sweep: served from the certificate-carrying schedule cache, so
# the exact counters must not move and the bytes must match again.
"$DIR/l0explore" -server "$URL" $ARGS -format json -o "$DIR/repeat.json"
cmp "$DIR/local.json" "$DIR/repeat.json"
"$DIR/l0explore" -server "$URL" -cachestats -o "$DIR/stats_after.json"
for c in exact_searches exact_nodes compiles; do
    before=$(counter "$c" "$DIR/stats_before.json")
    after=$(counter "$c" "$DIR/stats_after.json")
    if [ -z "$before" ] || [ "$before" != "$after" ]; then
        echo "gapstudy-smoke: repeat sweep was not search-free ($c: $before -> $after)" >&2
        exit 1
    fi
done

# 5. Async exact job: submit, poll to done, check the result matches, and
# exercise the cancel endpoint (a no-op answering 200 on a terminal job).
body='{"benches":["gsmdec"],"clusters":[4],"entries":[8],"scheds":["exact"],"async":true}'
curl -sf -X POST -d "$body" "$URL/v1/explore" -o "$DIR/job.json"
job=$(sed -n 's/^  "id": "\(job-[0-9]*\)".*/\1/p' "$DIR/job.json")
[ -n "$job" ] || { echo "gapstudy-smoke: async submit returned no job id" >&2; cat "$DIR/job.json" >&2; exit 1; }
i=0
while :; do
    curl -sf "$URL/v1/jobs/$job" -o "$DIR/status.json"
    state=$(sed -n 's/^  "state": "\([a-z]*\)".*/\1/p' "$DIR/status.json")
    [ "$state" = "done" ] && break
    if [ "$state" = "failed" ] || [ "$state" = "canceled" ]; then
        echo "gapstudy-smoke: async job ended $state" >&2
        cat "$DIR/status.json" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "gapstudy-smoke: async job did not finish" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf "$URL/v1/jobs/$job/result" -o "$DIR/async.json"
grep -q '"sched": "exact"' "$DIR/async.json"
curl -sf -X POST "$URL/v1/jobs/$job/cancel" -o "$DIR/cancel.json"
grep -q '"state": "done"' "$DIR/cancel.json"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

rm -rf "$DIR"
echo "gapstudy-smoke: ok (exact_searches=$searches)"
