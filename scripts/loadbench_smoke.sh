#!/bin/sh
# loadbench-smoke: end-to-end check of the l0bench load generator.
#
# Runs the committed smoke trace against an in-process (selfhost) server in
# both loop modes and asserts: nonzero measured throughput, zero errors and
# timeouts (the grid class also byte-verifies every response against a
# direct serial run), and an artifact that parses and re-encodes
# byte-identically (l0bench -parse). The closed-loop run uses the trace as
# committed; the open-loop run overrides the mode and rate on the command
# line to cover the deterministic arrival scheduler.
#
# Usage: scripts/loadbench_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.loadbench-smoke}
TRACE=examples/traces/smoke.json

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/l0bench" ./cmd/l0bench

counter() { # counter name artifact -> value of a top-level numeric field
    sed -n "s/^  \"$1\": \([0-9][0-9]*\).*/\1/p" "$2"
}

check_artifact() { # check_artifact artifact label
    art=$1
    label=$2
    requests=$(counter total_requests "$art")
    errors=$(counter total_errors "$art")
    timeouts=$(counter total_timeouts "$art")
    if [ -z "$requests" ] || [ "$requests" -eq 0 ]; then
        echo "loadbench-smoke: $label measured no requests" >&2
        cat "$art" >&2
        exit 1
    fi
    if [ "${errors:-1}" -ne 0 ] || [ "${timeouts:-1}" -ne 0 ]; then
        echo "loadbench-smoke: $label had errors=$errors timeouts=$timeouts" >&2
        cat "$art" >&2
        exit 1
    fi
    # Round trip: parse must re-encode to the identical bytes.
    "$DIR/l0bench" -parse "$art" -q
}

# Closed loop, as committed in the trace.
"$DIR/l0bench" -trace "$TRACE" -selfhost -o "$DIR/closed.json" >"$DIR/closed.txt" 2>"$DIR/closed.log"
check_artifact "$DIR/closed.json" "closed loop"
closed_req=$(counter total_requests "$DIR/closed.json")

# Open loop: same mix, arrivals on the deterministic 25 qps schedule.
"$DIR/l0bench" -trace "$TRACE" -selfhost -mode open -qps 25 \
    -o "$DIR/open.json" >"$DIR/open.txt" 2>"$DIR/open.log"
check_artifact "$DIR/open.json" "open loop"
open_req=$(counter total_requests "$DIR/open.json")

# The human table must name every class.
for cls in grid point hot total; do
    if ! grep -q "^$cls " "$DIR/closed.txt"; then
        echo "loadbench-smoke: table missing class $cls" >&2
        cat "$DIR/closed.txt" >&2
        exit 1
    fi
done

rm -rf "$DIR"
echo "loadbench-smoke: ok (closed=$closed_req requests, open=$open_req requests)"
