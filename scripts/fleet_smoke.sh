#!/bin/sh
# fleet-smoke: end-to-end check of the l0fleet coordinator against real
# processes.
#
# Starts two single-worker l0served instances on ephemeral loopback ports,
# runs a full default grid through l0fleet, SIGKILLs one server mid-sweep,
# and asserts the sweep still completes, with retries > 0 in the fleet
# stats and output byte-identical (cmp) to an unsharded local l0explore
# run. Then the degraded path: a fleet whose only "server" refuses
# connections must, with -local-fallback, complete a small grid in-process,
# again byte-identically, with local fallbacks recorded.
#
# Usage: scripts/fleet_smoke.sh [scratch-dir]
set -eu

DIR=${1:-.fleet-smoke}
# The full default grid (whole suite × 4 cluster counts × 3 entry counts):
# big enough that single-worker servers are still mid-sweep when the kill
# lands.
ARGS="-clusters 4,8,16,32 -entries 4,8,16"

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/l0explore" ./cmd/l0explore
go build -o "$DIR/l0served" ./cmd/l0served
go build -o "$DIR/l0fleet" ./cmd/l0fleet

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT INT TERM

wait_port() { # wait_port portfile
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "fleet-smoke: server did not come up ($1)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

counter() { # counter name statsfile -> value of a top-level numeric field
    sed -n "s/^  \"$1\": \([0-9][0-9]*\).*/\1/p" "$2"
}

# Reference: the same sweep, unsharded, in one local process.
"$DIR/l0explore" $ARGS -format json -o "$DIR/local.json"

# Two servers, one worker each (slow on purpose so the kill is mid-sweep).
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/portA" -workers 1 >"$DIR/servedA.log" 2>&1 &
PIDA=$!
PIDS="$PIDS $PIDA"
"$DIR/l0served" -addr 127.0.0.1:0 -portfile "$DIR/portB" -workers 1 >"$DIR/servedB.log" 2>&1 &
PIDB=$!
PIDS="$PIDS $PIDB"
wait_port "$DIR/portA"
wait_port "$DIR/portB"
URLA="http://$(cat "$DIR/portA")"
URLB="http://$(cat "$DIR/portB")"

# SIGKILL server B mid-sweep: no drain, no goodbye — the coordinator must
# retry B's in-flight shard, circuit-break it, requeue its shards onto A,
# and still emit the exact bytes.
(
    sleep 0.4
    kill -9 "$PIDB" 2>/dev/null || true
) &
KILLER=$!
PIDS="$PIDS $KILLER"

"$DIR/l0fleet" -servers "$URLA,$URLB" $ARGS -shards 16 -format json \
    -statsfile "$DIR/stats.json" -o "$DIR/fleet.json" 2>"$DIR/fleet.log"
wait "$KILLER" 2>/dev/null || true

cmp "$DIR/local.json" "$DIR/fleet.json"

retries=$(counter retries "$DIR/stats.json")
if [ -z "$retries" ] || [ "$retries" -eq 0 ]; then
    echo "fleet-smoke: expected retries > 0 after mid-sweep SIGKILL (got '${retries:-missing}')" >&2
    cat "$DIR/stats.json" "$DIR/fleet.log" >&2
    exit 1
fi

# Degraded mode: the fleet's only server refuses connections; with
# -local-fallback every shard must complete in-process, byte-identically.
SMALL="-benches gsmdec,g721dec -clusters 4,16 -entries 4,8"
"$DIR/l0explore" $SMALL -format json -o "$DIR/small.json"
"$DIR/l0fleet" -servers http://127.0.0.1:9 $SMALL -shards 4 -retries 1 \
    -backoff 10ms -maxbackoff 50ms -cooldown 100ms -local-fallback \
    -format json -statsfile "$DIR/stats2.json" -o "$DIR/fallback.json" 2>>"$DIR/fleet.log"
cmp "$DIR/small.json" "$DIR/fallback.json"

fallbacks=$(counter local_fallbacks "$DIR/stats2.json")
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "fleet-smoke: expected local fallbacks > 0 (got '${fallbacks:-missing}')" >&2
    cat "$DIR/stats2.json" "$DIR/fleet.log" >&2
    exit 1
fi

kill "$PIDA" 2>/dev/null || true
wait "$PIDA" 2>/dev/null || true
PIDS=""

rm -rf "$DIR"
echo "fleet-smoke: ok (retries=$retries, fallbacks=$fallbacks)"
