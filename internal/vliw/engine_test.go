package vliw

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
)

// recordingModel captures the event stream the engine issues.
type recordingModel struct {
	loads      []int64 // issue times
	stores     []int64
	prefetches []int64
	addrs      []int64
	// fixed latency added to every load.
	loadLat int64
}

func (m *recordingModel) Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64 {
	m.loads = append(m.loads, t)
	m.addrs = append(m.addrs, addr)
	return t + m.loadLat
}
func (m *recordingModel) Store(cluster int, addr int64, width int, h arch.Hints, sec bool, t int64) {
	m.stores = append(m.stores, t)
}
func (m *recordingModel) Prefetch(cluster int, addr int64, t int64) {
	m.prefetches = append(m.prefetches, t)
}
func (m *recordingModel) LoopEnd() int64 { return 0 }

func smallSchedule(t *testing.T, trip int64) *sched.Schedule {
	t.Helper()
	b := ir.NewBuilder("s", trip)
	a := b.Array("a", 1<<16, 4)
	a.Base = 1 << 16
	d := b.Array("d", 1<<16, 4)
	d.Base = 1 << 18
	v := b.Load("ld", a, 0, 4, 4)
	x := b.Int("op", v)
	b.Store("st", d, 0, 4, 4, x)
	sch, err := sched.Compile(b.Build(), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return sch
}

func TestEngineIssuesEveryDynamicOp(t *testing.T) {
	sch := smallSchedule(t, 37)
	m := &recordingModel{loadLat: 1}
	res, err := Run(sch, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(m.loads) != 37 || len(m.stores) != 37 {
		t.Errorf("issued %d loads / %d stores, want 37 each", len(m.loads), len(m.stores))
	}
	if res.Iterations != 37 {
		t.Errorf("Iterations = %d", res.Iterations)
	}
}

func TestEngineAddressStream(t *testing.T) {
	sch := smallSchedule(t, 8)
	m := &recordingModel{loadLat: 1}
	if _, err := Run(sch, m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, addr := range m.addrs {
		if want := int64(1<<16) + int64(i*4); addr != want {
			t.Errorf("load %d address = %d, want %d", i, addr, want)
		}
	}
}

func TestEngineNoStallWhenOnTime(t *testing.T) {
	sch := smallSchedule(t, 64)
	// The compiler scheduled loads at the L1 latency; a model that always
	// answers exactly on time must produce zero stall.
	m := &recordingModel{loadLat: int64(sch.Cfg.L1Latency)}
	res, err := Run(sch, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.StallCycles != 0 {
		t.Errorf("stall = %d with an on-time memory model", res.StallCycles)
	}
	if want := int64(sch.Span()) + 63*int64(sch.II); res.ComputeCycles != want {
		t.Errorf("compute = %d, want span+%d*II = %d", res.ComputeCycles, 63, want)
	}
}

func TestEngineStallPerLateLoad(t *testing.T) {
	sch := smallSchedule(t, 64)
	late := int64(3)
	m := &recordingModel{loadLat: int64(sch.Cfg.L1Latency) + late}
	res, err := Run(sch, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := late * 64; res.StallCycles != want {
		t.Errorf("stall = %d, want %d (one late load per iteration)", res.StallCycles, want)
	}
}

func TestEngineMonotoneIssueTimes(t *testing.T) {
	sch := smallSchedule(t, 128)
	m := &recordingModel{loadLat: int64(sch.Cfg.L1Latency) + 2}
	if _, err := Run(sch, m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(m.loads); i++ {
		if m.loads[i] < m.loads[i-1] {
			t.Fatalf("issue times regress at %d: %d < %d", i, m.loads[i], m.loads[i-1])
		}
	}
}

func TestRunAtOffsetsClock(t *testing.T) {
	sch := smallSchedule(t, 16)
	m1 := &recordingModel{loadLat: 1}
	r1, err := RunAt(sch, m1, 0)
	if err != nil {
		t.Fatalf("RunAt: %v", err)
	}
	m2 := &recordingModel{loadLat: 1}
	r2, err := RunAt(sch, m2, 1000)
	if err != nil {
		t.Fatalf("RunAt: %v", err)
	}
	if r1.TotalCycles != r2.TotalCycles || r1.StallCycles != r2.StallCycles {
		t.Errorf("results depend on the clock origin: %+v vs %+v", r1, r2)
	}
	if m2.loads[0] != m1.loads[0]+1000 {
		t.Errorf("issue times not offset: %d vs %d", m2.loads[0], m1.loads[0])
	}
}

// maxModel returns different lateness per address so same-cycle deficits
// differ; the lock-step engine must charge only the max.
type maxModel struct{ recordingModel }

func (m *maxModel) Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64 {
	m.loads = append(m.loads, t)
	if cluster == 0 {
		return t + 20 // very late
	}
	return t + 10 // late
}

func TestEngineSameCycleStallIsMax(t *testing.T) {
	// Two independent loads with identical schedules in different
	// clusters: both miss, the machine stalls once for the worst.
	b := ir.NewBuilder("two", 32)
	a1 := b.Array("a1", 4096, 4)
	a1.Base = 1 << 16
	a2 := b.Array("a2", 4096, 4)
	a2.Base = 1 << 18
	v1 := b.Load("ld1", a1, 0, 4, 4)
	v2 := b.Load("ld2", a2, 0, 4, 4)
	b.Int("join", v1, v2)
	sch, err := sched.Compile(b.Build(), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p1, p2 := &sch.Placed[0], &sch.Placed[1]
	if p1.Cycle != p2.Cycle || p1.Cluster == p2.Cluster {
		t.Skipf("loads not co-scheduled (cycle %d/%d cluster %d/%d)", p1.Cycle, p2.Cycle, p1.Cluster, p2.Cluster)
	}
	m := &maxModel{}
	res, err := Run(sch, m)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Worst deficit per iteration is (20 - 6) = 14; the 10-cycle load's
	// deficit (4) must NOT add on top.
	perIter := res.StallCycles / res.Iterations
	if perIter != 20-int64(sch.Cfg.L1Latency) {
		t.Errorf("stall per iteration = %d, want %d (max, not sum)", perIter, 20-sch.Cfg.L1Latency)
	}
}

func TestEngineRejectsUnassignedArrays(t *testing.T) {
	b := ir.NewBuilder("na", 8)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.Int("op", v)
	sch, err := sched.Compile(b.Build(), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := Run(sch, &recordingModel{loadLat: 1}); err == nil {
		t.Errorf("Run accepted a loop with unassigned array bases")
	}
}

func TestEnginePrefetchEventsUseServedStream(t *testing.T) {
	// A column-walk load gets an explicit prefetch; the prefetch address
	// must be the load's address one iteration ahead.
	b := ir.NewBuilder("col", 16)
	img := b.Array("img", 1<<20, 2)
	img.Base = 1 << 20
	v := b.Load("ld", img, 0, 512, 2)
	x := b.Int("op", v)
	for i := 0; i < 5; i++ {
		x = b.Int("chain", x)
	}
	d := b.Array("d", 4096, 2)
	d.Base = 1 << 14
	b.Store("st", d, 0, 2, 2, x)
	sch, err := sched.Compile(b.Build(), arch.MICRO36Config(), sched.Options{UseL0: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sch.Prefetches) == 0 {
		t.Skip("no explicit prefetch inserted")
	}
	m := &recordingModel{loadLat: 1}
	if _, err := Run(sch, m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(m.prefetches) == 0 {
		t.Fatalf("engine issued no prefetch events")
	}
}
