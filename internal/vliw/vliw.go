// Package vliw is the execution engine of the lock-step clustered VLIW: it
// replays a modulo schedule over the loop's trip count, issues every dynamic
// memory operation into an architecture's memory model in global time order,
// and accumulates stall cycles whenever data arrives later than the latency
// the compiler scheduled.
//
// Because the machine is lock-step and the schedule static, execution time
// decomposes exactly as the paper plots it (Figures 5 and 7): compute time
// (schedule span plus II per remaining iteration) plus stall time (the sum
// of actual-minus-scheduled latency over late memory operations).
package vliw

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
)

// MemoryModel abstracts one architecture's memory hierarchy. All times are
// absolute (post-stall) cycles; Load returns the data-ready time.
type MemoryModel interface {
	Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64
	Store(cluster int, addr int64, width int, h arch.Hints, secondaryReplica bool, t int64)
	Prefetch(cluster int, addr int64, t int64)
	// LoopEnd runs the loop-boundary coherence action (invalidate_buffer
	// in every cluster for the L0 architecture) and returns its cycle
	// overhead. Run never calls it: the harness invokes it at the loop
	// boundaries where §4.1's inter-loop analysis requires a flush.
	LoopEnd() int64
}

// Result summarises one kernel execution.
type Result struct {
	// TotalCycles = ComputeCycles + StallCycles.
	TotalCycles   int64
	ComputeCycles int64
	StallCycles   int64
	// Iterations actually executed (the scheduled loop's trip count).
	Iterations int64
	// DynamicOps is the number of dynamic operations issued (all kinds),
	// used for utilisation diagnostics.
	DynamicOps int64
}

// memOp is one static memory operation of the kernel.
type memOp struct {
	kind    opKind
	placed  *sched.Placed
	forMem  *ir.MemAccess // address stream (prefetches use the served load's)
	cluster int
	// cycle is the op's flat schedule cycle for iteration 0 (the placed
	// instruction's slot, or the prefetch's own slot).
	cycle int
	// q/r decompose cycle as cycle = q·II + r: the op's dynamic instance
	// for iteration k fires at absolute cycle r + (q+k)·II, i.e. in
	// period q+k at row r. Filled in by NewProgram.
	q, r int
	// iterOffset shifts the address-stream index (prefetches run
	// Distance iterations ahead of the load they serve).
	iterOffset int64
	// affine strength-reduction: when affine is true the op's address for
	// iteration k is addr0 + k·step and the engine advances an
	// incremental address cursor instead of recomputing
	// base + stride·index with multiplies every firing.
	affine bool
	addr0  int64
	step   int64
}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opPrefetch
)

// Program is the executable form of one schedule: the memory operations with
// precomputed periodic firing rows and strength-reduced address streams. A
// Program is built once per kernel and reused across invocations; it carries
// per-run scratch, so a Program must not be shared between goroutines (build
// one per worker — construction is cheap).
type Program struct {
	sch  *sched.Schedule
	ops  []memOp
	maxQ int
	// cur is the per-op incremental address cursor (affine ops only),
	// reset at the start of every run.
	cur []int64
}

// NewProgram compiles a schedule into its executable form and validates that
// every referenced array has been given a base address.
func NewProgram(sch *sched.Schedule) (*Program, error) {
	ops, err := collectOps(sch)
	if err != nil {
		return nil, err
	}
	p := &Program{sch: sch, ops: ops, cur: make([]int64, len(ops))}
	ii := sch.II
	for i := range p.ops {
		op := &p.ops[i]
		op.q, op.r = op.cycle/ii, op.cycle%ii
		if op.q > p.maxQ {
			p.maxQ = op.q
		}
		op.affine, op.addr0, op.step = affineStream(op.forMem)
		if op.affine {
			op.addr0 += op.iterOffset * op.step
		}
	}
	// Fire order within one period: by row, ties by op index (the same
	// (time, op) order the event heap produced).
	sort.SliceStable(p.ops, func(a, b int) bool { return p.ops[a].r < p.ops[b].r })
	return p, nil
}

// affineStream reduces an access to addr(k) = addr0 + k·step when the stream
// is affine in the iteration counter. Periodic (IndexPeriod) and scrambled
// accesses are not affine and fall back to AddrAt.
func affineStream(m *ir.MemAccess) (ok bool, addr0, step int64) {
	if m.IndexPeriod > 1 || m.Scramble != 0 {
		return false, 0, 0
	}
	step = m.Stride
	addr0 = m.Array.Base + m.Offset
	if m.PhaseFactor > 1 {
		addr0 += m.Stride * int64(m.PhaseOffset)
		step = m.Stride * int64(m.PhaseFactor)
	}
	return true, addr0, step
}

// Run executes the schedule over its loop's trip count against the memory
// model, with the program clock starting at zero.
func Run(sch *sched.Schedule, model MemoryModel) (Result, error) {
	return RunAt(sch, model, 0)
}

// RunAt executes the schedule with the program clock starting at start
// cycles: memory-model state (bus reservations, in-flight fills) carries
// absolute times, so consecutive invocations of loops must advance the clock
// monotonically rather than restart it. RunAt compiles a fresh Program per
// call; callers running many invocations should build one Program and reuse
// it.
func RunAt(sch *sched.Schedule, model MemoryModel, start int64) (Result, error) {
	p, err := NewProgram(sch)
	if err != nil {
		return Result{}, err
	}
	return p.RunAt(model, start)
}

// RunAt executes the program against the memory model with the clock starting
// at start cycles.
//
// The modulo schedule is periodic: the op whose iteration-0 slot is flat
// cycle q·II + r fires for iteration k at scheduled cycle r + (q+k)·II. The
// engine therefore walks periods in order and, inside each period, the ops in
// precomputed row order — exactly the (time, op) order a global event queue
// would produce, without the queue. Ops scheduled in the same cycle issue in
// the same VLIW word: the lock-step machine stalls once for the worst
// latecomer, so latency deficits within one cycle combine as a max.
func (p *Program) RunAt(model MemoryModel, start int64) (Result, error) {
	sch := p.sch
	iters := sch.Loop.TripCount
	if iters <= 0 {
		return Result{}, fmt.Errorf("vliw: loop %q has no iterations", sch.Loop.Name)
	}
	ii := int64(sch.II)
	ops := p.ops
	for i := range ops {
		p.cur[i] = ops[i].addr0
	}

	shift := start // accumulated stall, offset by the clock origin
	lastPeriod := int64(p.maxQ) + iters - 1
	if len(ops) == 0 {
		lastPeriod = -1
	}
	for period := int64(0); period <= lastPeriod; period++ {
		for i := 0; i < len(ops); {
			row := ops[i].r
			rowTime := int64(row) + period*ii
			var maxDeficit int64
			for ; i < len(ops) && ops[i].r == row; i++ {
				op := &ops[i]
				k := period - int64(op.q)
				if k < 0 || k >= iters {
					continue
				}
				var addr int64
				if op.affine {
					addr = p.cur[i]
					p.cur[i] += op.step
				} else {
					addr = op.forMem.AddrAt(k + op.iterOffset)
				}
				t := rowTime + shift
				switch op.kind {
				case opLoad:
					ready := model.Load(op.cluster, addr, op.forMem.Width, op.placed.Hints, t)
					if d := ready - (t + int64(op.placed.Latency)); d > maxDeficit {
						maxDeficit = d
					}
				case opStore:
					in := op.placed.Instr
					secondary := in.ReplicaGroup != 0 && !in.PrimaryReplica
					model.Store(op.cluster, addr, op.forMem.Width, op.placed.Hints, secondary, t)
				case opPrefetch:
					model.Prefetch(op.cluster, addr, t)
				}
			}
			shift += maxDeficit
		}
	}

	compute := int64(sch.Span()) + (iters-1)*ii
	stall := shift - start
	return Result{
		TotalCycles:   compute + stall,
		ComputeCycles: compute,
		StallCycles:   stall,
		Iterations:    iters,
		DynamicOps:    iters * int64(len(sch.Loop.Instrs)),
	}, nil
}

// collectOps gathers the schedule's dynamic memory operations and validates
// that every referenced array has been given a base address.
func collectOps(sch *sched.Schedule) ([]memOp, error) {
	var ops []memOp
	for i := range sch.Placed {
		p := &sch.Placed[i]
		switch p.Instr.Op {
		case ir.OpLoad:
			if err := checkArray(p.Instr); err != nil {
				return nil, err
			}
			ops = append(ops, memOp{kind: opLoad, placed: p, forMem: p.Instr.Mem, cluster: p.Cluster, cycle: p.Cycle})
		case ir.OpStore:
			if err := checkArray(p.Instr); err != nil {
				return nil, err
			}
			ops = append(ops, memOp{kind: opStore, placed: p, forMem: p.Instr.Mem, cluster: p.Cluster, cycle: p.Cycle})
		}
	}
	for i := range sch.Prefetches {
		pf := &sch.Prefetches[i]
		served := &sch.Placed[pf.For]
		ops = append(ops, memOp{
			kind: opPrefetch, placed: served, forMem: served.Instr.Mem,
			cluster: pf.Cluster, cycle: pf.Cycle, iterOffset: int64(pf.Distance),
		})
	}
	return ops, nil
}

func checkArray(in *ir.Instr) error {
	if in.Mem.Array.Base == 0 {
		return fmt.Errorf("vliw: array %q has no base address (run the workload address mapper first)", in.Mem.Array.Name)
	}
	return nil
}
