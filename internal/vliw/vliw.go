// Package vliw is the execution engine of the lock-step clustered VLIW: it
// replays a modulo schedule over the loop's trip count, issues every dynamic
// memory operation into an architecture's memory model in global time order,
// and accumulates stall cycles whenever data arrives later than the latency
// the compiler scheduled.
//
// Because the machine is lock-step and the schedule static, execution time
// decomposes exactly as the paper plots it (Figures 5 and 7): compute time
// (schedule span plus II per remaining iteration) plus stall time (the sum
// of actual-minus-scheduled latency over late memory operations).
package vliw

import (
	"container/heap"
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
)

// MemoryModel abstracts one architecture's memory hierarchy. All times are
// absolute (post-stall) cycles; Load returns the data-ready time.
type MemoryModel interface {
	Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64
	Store(cluster int, addr int64, width int, h arch.Hints, secondaryReplica bool, t int64)
	Prefetch(cluster int, addr int64, t int64)
	// LoopEnd runs the loop-boundary coherence action (invalidate_buffer
	// in every cluster for the L0 architecture) and returns its cycle
	// overhead. Run never calls it: the harness invokes it at the loop
	// boundaries where §4.1's inter-loop analysis requires a flush.
	LoopEnd() int64
}

// Result summarises one kernel execution.
type Result struct {
	// TotalCycles = ComputeCycles + StallCycles.
	TotalCycles   int64
	ComputeCycles int64
	StallCycles   int64
	// Iterations actually executed (the scheduled loop's trip count).
	Iterations int64
	// DynamicOps is the number of dynamic operations issued (all kinds),
	// used for utilisation diagnostics.
	DynamicOps int64
}

// memOp is one static memory operation of the kernel.
type memOp struct {
	kind    opKind
	placed  *sched.Placed
	pf      *sched.Prefetch
	forMem  *ir.MemAccess // address stream (prefetches use the served load's)
	cycle   int           // flat schedule cycle of iteration 0
	cluster int
}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opPrefetch
)

// event is one dynamic instance of a memOp.
type event struct {
	time int64 // scheduled (pre-stall) time: cycle + iter*II
	op   int
	iter int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].op != h[j].op {
		return h[i].op < h[j].op
	}
	return h[i].iter < h[j].iter
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run executes the schedule over its loop's trip count against the memory
// model, with the program clock starting at zero.
func Run(sch *sched.Schedule, model MemoryModel) (Result, error) {
	return RunAt(sch, model, 0)
}

// RunAt executes the schedule with the program clock starting at start
// cycles: memory-model state (bus reservations, in-flight fills) carries
// absolute times, so consecutive invocations of loops must advance the clock
// monotonically rather than restart it.
func RunAt(sch *sched.Schedule, model MemoryModel, start int64) (Result, error) {
	iters := sch.Loop.TripCount
	if iters <= 0 {
		return Result{}, fmt.Errorf("vliw: loop %q has no iterations", sch.Loop.Name)
	}
	ops, err := collectOps(sch)
	if err != nil {
		return Result{}, err
	}

	shift := start // accumulated stall, offset by the clock origin
	h := make(eventHeap, 0, len(ops))
	for i := range ops {
		h = append(h, event{time: int64(ops[i].cycle), op: i, iter: 0})
	}
	heap.Init(&h)

	// Events with the same scheduled cycle issue in the same VLIW word:
	// the lock-step machine stalls once for the worst latecomer, not once
	// per late operation, so deficits within one cycle combine as a max.
	var dyn int64
	for h.Len() > 0 {
		now := h[0].time
		var maxDeficit int64
		for h.Len() > 0 && h[0].time == now {
			ev := heap.Pop(&h).(event)
			op := &ops[ev.op]
			dyn++
			t := ev.time + shift
			switch op.kind {
			case opLoad:
				addr := op.forMem.AddrAt(ev.iter)
				ready := model.Load(op.cluster, addr, op.forMem.Width, op.placed.Hints, t)
				if d := ready - (t + int64(op.placed.Latency)); d > maxDeficit {
					maxDeficit = d
				}
			case opStore:
				addr := op.forMem.AddrAt(ev.iter)
				in := op.placed.Instr
				secondary := in.ReplicaGroup != 0 && !in.PrimaryReplica
				model.Store(op.cluster, addr, op.forMem.Width, op.placed.Hints, secondary, t)
			case opPrefetch:
				addr := op.forMem.AddrAt(ev.iter + int64(op.pf.Distance))
				model.Prefetch(op.cluster, addr, t)
			}
			if next := ev.iter + 1; next < iters {
				heap.Push(&h, event{time: int64(op.cycle) + next*int64(sch.II), op: ev.op, iter: next})
			}
		}
		shift += maxDeficit
	}

	_ = dyn
	compute := int64(sch.Span()) + (iters-1)*int64(sch.II)
	stall := shift - start
	return Result{
		TotalCycles:   compute + stall,
		ComputeCycles: compute,
		StallCycles:   stall,
		Iterations:    iters,
		DynamicOps:    iters * int64(len(sch.Loop.Instrs)),
	}, nil
}

// collectOps gathers the schedule's dynamic memory operations and validates
// that every referenced array has been given a base address.
func collectOps(sch *sched.Schedule) ([]memOp, error) {
	var ops []memOp
	for i := range sch.Placed {
		p := &sch.Placed[i]
		switch p.Instr.Op {
		case ir.OpLoad:
			if err := checkArray(p.Instr); err != nil {
				return nil, err
			}
			ops = append(ops, memOp{kind: opLoad, placed: p, forMem: p.Instr.Mem, cycle: p.Cycle, cluster: p.Cluster})
		case ir.OpStore:
			if err := checkArray(p.Instr); err != nil {
				return nil, err
			}
			ops = append(ops, memOp{kind: opStore, placed: p, forMem: p.Instr.Mem, cycle: p.Cycle, cluster: p.Cluster})
		}
	}
	for i := range sch.Prefetches {
		pf := &sch.Prefetches[i]
		served := sch.Placed[pf.For]
		ops = append(ops, memOp{kind: opPrefetch, pf: pf, placed: &served, forMem: served.Instr.Mem, cycle: pf.Cycle, cluster: pf.Cluster})
	}
	return ops, nil
}

func checkArray(in *ir.Instr) error {
	if in.Mem.Array.Base == 0 {
		return fmt.Errorf("vliw: array %q has no base address (run the workload address mapper first)", in.Mem.Array.Name)
	}
	return nil
}
