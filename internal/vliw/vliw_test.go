package vliw_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/vliw"
)

// assignBases gives every array of the loop a distinct base address.
func assignBases(l *ir.Loop) *ir.Loop {
	base := int64(1 << 16)
	seen := map[*ir.Array]bool{}
	for _, in := range l.Instrs {
		if in.Mem != nil && !seen[in.Mem.Array] {
			seen[in.Mem.Array] = true
			in.Mem.Array.Base = base
			base += in.Mem.Array.SizeBytes + 4096
		}
	}
	return l
}

// streamLoop is a compute-balanced streaming loop: load, three dependent int
// ops, store (II is set by the integer units, leaving memory slots free for
// prefetch traffic).
func streamLoop(trip int64) *ir.Loop {
	b := ir.NewBuilder("stream", trip)
	src := b.Array("b", 1<<20, 2)
	dst := b.Array("a", 1<<20, 2)
	v := b.Load("ld", src, 0, 2, 2)
	x := b.Int("i1", v)
	y := b.Int("i2", x)
	z := b.Int("i3", y)
	b.Store("st", dst, 0, 2, 2, z)
	return assignBases(b.Build())
}

// recurrenceLoop carries state through memory: s = f(s) with s held in a
// memory cell (the ADPCM-predictor pattern). The load→f→store→load cycle
// makes RecMII = loadLatency + 2, so the L0 latency directly shrinks the II
// (the paper's main compute-time win).
func recurrenceLoop(trip int64) *ir.Loop {
	b := ir.NewBuilder("recur", trip)
	a := b.Array("state", 64, 4)
	v := b.Load("ld", a, 0, 0, 4)
	x := b.Int("f", v)
	b.Store("st", a, 0, 0, 4, x)
	return assignBases(b.Build())
}

func run(t *testing.T, l *ir.Loop, cfg arch.Config, opts sched.Options) (vliw.Result, *mem.System, *sched.Schedule) {
	t.Helper()
	c, err := sched.Pipeline(l, cfg, opts)
	if err != nil {
		t.Fatalf("Pipeline(%s): %v", l.Name, err)
	}
	sys := mem.NewSystem(cfg)
	res, err := vliw.Run(c.Schedule, sys)
	if err != nil {
		t.Fatalf("Run(%s): %v", l.Name, err)
	}
	return res, sys, c.Schedule
}

func TestRecurrenceLoopL0Win(t *testing.T) {
	trip := int64(2048)
	base, _, bs := run(t, recurrenceLoop(trip), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	l0, sys, ls := run(t, recurrenceLoop(trip), arch.MICRO36Config().WithL0Entries(8), sched.Options{UseL0: true})

	t.Logf("baseline: II=%d total=%d stall=%d", bs.II, base.TotalCycles, base.StallCycles)
	t.Logf("L0:       II=%d total=%d stall=%d hitrate=%.3f", ls.II, l0.TotalCycles, l0.StallCycles, sys.Stats.L0HitRate())

	if ls.II >= bs.II {
		t.Errorf("L0 II = %d, want < baseline II = %d (memory recurrence should shrink with L0 latency)", ls.II, bs.II)
	}
	if l0.TotalCycles >= base.TotalCycles {
		t.Errorf("L0 total = %d, want < baseline total = %d", l0.TotalCycles, base.TotalCycles)
	}
	if hr := sys.Stats.L0HitRate(); hr < 0.95 {
		t.Errorf("L0 hit rate = %.3f, want >= 0.95 (store-to-load through one cluster's buffer)", hr)
	}
}

func TestStreamLoopBehaviour(t *testing.T) {
	trip := int64(4096)
	base, bsys, _ := run(t, streamLoop(trip), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	l0, sys, ls := run(t, streamLoop(trip), arch.MICRO36Config().WithL0Entries(8), sched.Options{UseL0: true})

	t.Logf("baseline: total=%d stall=%d L1miss=%d", base.TotalCycles, base.StallCycles, bsys.Stats.L1Misses)
	t.Logf("L0:       II=%d total=%d stall=%d hitrate=%.3f lin=%d int=%d",
		ls.II, l0.TotalCycles, l0.StallCycles, sys.Stats.L0HitRate(),
		sys.Stats.LinearSubblocks, sys.Stats.InterleavedSubblocks)

	// With a small II the next-subblock prefetch arrives late once per
	// subblock (the paper's epicdec/rasta phenomenon), capping the hit
	// rate well below 100% but far above cold-miss levels.
	if hr := sys.Stats.L0HitRate(); hr < 0.60 {
		t.Errorf("L0 hit rate = %.3f, want >= 0.60 for a unit-stride loop", hr)
	}
	if sys.Stats.InterleavedSubblocks == 0 {
		t.Errorf("expected interleaved fills for the unrolled streaming loop")
	}
	// Streaming loops gain little compute but the prefetch hints must keep
	// the architecture within a reasonable envelope of the baseline.
	if l0.TotalCycles > base.TotalCycles*3/2 {
		t.Errorf("L0 total = %d, want <= 1.5x baseline (%d)", l0.TotalCycles, base.TotalCycles)
	}
}

func TestBaselineHasNoL0Traffic(t *testing.T) {
	_, sys, _ := run(t, streamLoop(512), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	if sys.Stats.L0Hits+sys.Stats.L0Misses != 0 {
		t.Errorf("baseline probed L0: hits=%d misses=%d", sys.Stats.L0Hits, sys.Stats.L0Misses)
	}
	if sys.Stats.LinearSubblocks+sys.Stats.InterleavedSubblocks != 0 {
		t.Errorf("baseline filled L0 subblocks")
	}
}

func TestDeterminism(t *testing.T) {
	a, _, _ := run(t, streamLoop(1024), arch.MICRO36Config(), sched.Options{UseL0: true})
	b, _, _ := run(t, streamLoop(1024), arch.MICRO36Config(), sched.Options{UseL0: true})
	if a != b {
		t.Errorf("non-deterministic simulation: %+v vs %+v", a, b)
	}
}

func TestPrefetchDistanceTwoHelpsSmallII(t *testing.T) {
	trip := int64(4096)
	d1, _, _ := run(t, streamLoop(trip), arch.MICRO36Config(), sched.Options{UseL0: true})
	d2, sys2, _ := run(t, streamLoop(trip), arch.MICRO36Config(), sched.Options{UseL0: true, PrefetchDistance: 2})
	t.Logf("distance 1: stall=%d; distance 2: stall=%d hitrate=%.3f", d1.StallCycles, d2.StallCycles, sys2.Stats.L0HitRate())
	if d2.StallCycles > d1.StallCycles {
		t.Errorf("prefetch distance 2 stall = %d, want <= distance 1 stall = %d on a small-II loop",
			d2.StallCycles, d1.StallCycles)
	}
	if hr := sys2.Stats.L0HitRate(); hr < 0.85 {
		t.Errorf("distance-2 hit rate = %.3f, want >= 0.85 (prefetch arrives in time)", hr)
	}
}
