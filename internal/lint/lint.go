// Package lint is the repo's determinism-invariant analyzer suite: a
// pure-stdlib (go/parser + go/types) static-analysis driver that loads the
// whole module and runs repo-specific rules over it. Every layer of this
// system — the parallel engine, the LRU caches, snapshot persistence, fleet
// sharding, content-addressed kernels — rests on one contract: identical
// inputs produce byte-identical outputs. The end-to-end smokes catch
// violations after they ship; these analyzers catch them at the source
// level, where the classic killers (map iteration order, wall-clock reads,
// a cache key missing a field) are visible as syntax and types.
//
// The rule catalog lives in docs/determinism.md. Diagnostics print as
// "file:line:col rule: message". Exemptions are never silent: a site that
// legitimately violates a rule carries an inline
//
//	//lint:allow <rule> <reason>
//
// comment (same line or the line above), so every waiver is visible and
// justified in-source and `git grep lint:allow` is the exemption audit.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned so "file:line:col" output
// is clickable in editors and CI logs.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Suppressed marks findings waived by a //lint:allow comment; the
	// driver keeps them (an audit can list them) but they do not fail the
	// run.
	Suppressed bool
	// Reason is the justification text of the suppressing comment.
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one rule of the suite.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph rule description (printed by l0lint -rules).
	Doc string
	// Deterministic restricts the rule to the module's deterministic
	// package set (Config.DeterministicPackages); false runs it module-wide.
	Deterministic bool
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass)
}

// Pass hands one loaded package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	suite    *Suite
}

// Report records a finding at pos. Suppression is applied by the driver
// after the analyzer returns, so rules never special-case allow comments.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, rawDiag{
		pos:  pos,
		rule: p.Analyzer.Name,
		msg:  fmt.Sprintf(format, args...),
		pkg:  p.Pkg,
	})
}

// Fset returns the suite's shared file set.
func (p *Pass) Fset() *token.FileSet { return p.suite.mod.Fset }

type rawDiag struct {
	pos  token.Pos
	rule string
	msg  string
	pkg  *Package
}

// Suite runs a set of analyzers over a loaded module.
type Suite struct {
	Analyzers []*Analyzer
	// DeterministicPackages lists the import paths whose output bytes the
	// byte-identity contract covers; analyzers with Deterministic=true run
	// only there. Nil means every loaded package is deterministic (the
	// fixture tests use this).
	DeterministicPackages []string

	mod   *Module
	diags []rawDiag
}

// deterministic reports whether the package is in the suite's deterministic
// set.
func (s *Suite) deterministic(path string) bool {
	if s.DeterministicPackages == nil {
		return true
	}
	for _, p := range s.DeterministicPackages {
		if path == p {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package of the module and returns
// the findings sorted by position, with //lint:allow suppressions applied.
func (s *Suite) Run(mod *Module) []Diagnostic {
	s.mod = mod
	s.diags = s.diags[:0]
	for _, pkg := range mod.Packages {
		for _, a := range s.Analyzers {
			if a.Deterministic && !s.deterministic(pkg.Path) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, suite: s})
		}
	}

	out := make([]Diagnostic, 0, len(s.diags))
	for _, rd := range s.diags {
		pos := mod.Fset.Position(rd.pos)
		d := Diagnostic{Pos: pos, Rule: rd.rule, Msg: rd.msg}
		if reason, ok := rd.pkg.allows.match(pos, rd.rule); ok {
			d.Suppressed, d.Reason = true, reason
		}
		out = append(out, d)
	}
	// Malformed suppression comments are findings of their own: a typo'd
	// rule name would otherwise silently waive nothing (or worse, look like
	// it waived something).
	for _, pkg := range mod.Packages {
		for _, bad := range pkg.allows.malformed {
			out = append(out, Diagnostic{
				Pos:  mod.Fset.Position(bad.pos),
				Rule: "allow",
				Msg:  bad.msg,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Unsuppressed filters to the findings that fail a lint run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// DefaultAnalyzers returns the full rule suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		MapRange(),
		WallClock(),
		LockedIO(),
		KeyFields(),
	}
}

// DeterministicPackages is the import-path set (relative to the module
// path) whose emitted bytes the byte-identity contract covers: everything
// between a parsed workload and rendered output, plus the serving and fleet
// layers whose merge paths must stay byte-identical. Ambient inputs inside
// these packages are exactly what the wallclock and maprange rules exist to
// catch.
var DeterministicPackages = []string{
	"internal/alias",
	"internal/arch",
	"internal/core",
	"internal/ddg",
	"internal/energy",
	"internal/fleet",
	"internal/harness",
	"internal/interleaved",
	"internal/ir",
	"internal/lint",
	"internal/loadgen",
	"internal/looplang",
	"internal/mem",
	"internal/multivliw",
	"internal/sched",
	"internal/server",
	"internal/sms",
	"internal/sms/exact",
	"internal/stats",
	"internal/trace",
	"internal/unroll",
	"internal/vliw",
	"internal/workload",
}

// DefaultSuite builds the production configuration for a module rooted at
// modPath: the full analyzer set scoped to the deterministic packages.
func DefaultSuite(modPath string) *Suite {
	pkgs := make([]string, len(DeterministicPackages))
	for i, p := range DeterministicPackages {
		pkgs[i] = modPath + "/" + p
	}
	return &Suite{
		Analyzers:             DefaultAnalyzers(),
		DeterministicPackages: pkgs,
	}
}

// qualify renders a types.Object package-qualified ("time.Now") for
// messages, without the module path noise for module-local objects.
func qualify(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + obj.Name()
}

// funcScope walks up from an AST node stack to name the enclosing function
// (diagnostic context only).
func funcName(decl *ast.FuncDecl) string {
	if decl == nil {
		return ""
	}
	return decl.Name.Name
}
