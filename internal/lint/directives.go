// Directive comments. Three forms, all grep-able:
//
//	//lint:allow <rule> <reason>     waive one finding (same line or next)
//	//lint:nonkey <reason>           on a struct field: deliberately not
//	                                 part of any cache-identity key
//	//lint:keyfields <Type>          on a function: declares it a key
//	                                 builder over <Type> for the keyfields
//	                                 rule
//
// A reason is mandatory: an unexplained waiver is indistinguishable from a
// stale one, so the driver reports reasonless or unknown-rule allows as
// findings themselves.

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix     = "//lint:allow "
	nonkeyPrefix    = "//lint:nonkey "
	keyfieldsPrefix = "//lint:keyfields "
)

type allowEntry struct {
	rule   string
	reason string
	line   int
}

type malformedAllow struct {
	pos token.Pos
	msg string
}

// allowIndex maps file name -> line -> waivers that cover that line. An
// allow on line L covers diagnostics on L (trailing comment) and L+1
// (comment-above style).
type allowIndex struct {
	byLine    map[string]map[int][]allowEntry
	malformed []malformedAllow
}

func (ai *allowIndex) match(pos token.Position, rule string) (reason string, ok bool) {
	lines := ai.byLine[pos.Filename]
	for _, e := range lines[pos.Line] {
		if e.rule == rule {
			return e.reason, true
		}
	}
	return "", false
}

// knownRules names every valid //lint:allow target so a typo'd rule name is
// caught instead of silently waiving nothing.
var knownRules = map[string]bool{
	"maprange":  true,
	"wallclock": true,
	"lockedio":  true,
	"keyfields": true,
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := allowIndex{byLine: map[string]map[int][]allowEntry{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(text, allowPrefix):
					rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
					rule, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if rule == "" || reason == "" {
						ai.malformed = append(ai.malformed, malformedAllow{
							pos: c.Pos(),
							msg: "malformed //lint:allow: want \"//lint:allow <rule> <reason>\"",
						})
						continue
					}
					if !knownRules[rule] {
						ai.malformed = append(ai.malformed, malformedAllow{
							pos: c.Pos(),
							msg: "//lint:allow names unknown rule " + rule,
						})
						continue
					}
					lines := ai.byLine[pos.Filename]
					if lines == nil {
						lines = map[int][]allowEntry{}
						ai.byLine[pos.Filename] = lines
					}
					e := allowEntry{rule: rule, reason: reason, line: pos.Line}
					lines[pos.Line] = append(lines[pos.Line], e)
					lines[pos.Line+1] = append(lines[pos.Line+1], e)
				case strings.HasPrefix(text, nonkeyPrefix), text == strings.TrimSpace(nonkeyPrefix):
					if strings.TrimSpace(strings.TrimPrefix(text, strings.TrimSpace(nonkeyPrefix))) == "" {
						ai.malformed = append(ai.malformed, malformedAllow{
							pos: c.Pos(),
							msg: "malformed //lint:nonkey: a reason is required",
						})
					}
				case strings.HasPrefix(text, keyfieldsPrefix):
					// Validated by the keyfields analyzer, which has the
					// type tables needed to resolve the named type.
				default:
					ai.malformed = append(ai.malformed, malformedAllow{
						pos: c.Pos(),
						msg: "unknown lint directive " + firstWord(text),
					})
				}
			}
		}
	}
	return ai
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}

// fieldNonkey reports whether a struct field carries a //lint:nonkey
// directive in its doc or trailing comment, returning the reason.
func fieldNonkey(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, nonkeyPrefix) {
				return strings.TrimSpace(strings.TrimPrefix(c.Text, nonkeyPrefix)), true
			}
		}
	}
	return "", false
}

// funcKeyfields extracts the //lint:keyfields <Type> directive from a
// function declaration's doc comment.
func funcKeyfields(decl *ast.FuncDecl) (typeName string, ok bool) {
	if decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, keyfieldsPrefix) {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, keyfieldsPrefix)), true
		}
	}
	return "", false
}
