// maprange: range over a map in a deterministic package. Map iteration
// order is randomized per run, so any ranged map whose iteration order can
// reach output bytes — emitted rows, aggregated floats, appended slices —
// is a silent byte-identity violation. The fix is to sort the keys first
// (see docs/determinism.md); genuinely order-independent folds (counting,
// min/max, membership tests) carry a //lint:allow maprange with the
// argument for why order cannot escape.

package lint

import (
	"go/ast"
	"go/types"
)

// MapRange builds the maprange analyzer.
func MapRange() *Analyzer {
	a := &Analyzer{
		Name:          "maprange",
		Doc:           "range over a map in a deterministic package (iteration order is randomized; sort the keys or justify with //lint:allow)",
		Deterministic: true,
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		if info == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if m, ok := tv.Type.Underlying().(*types.Map); ok {
					pass.Report(rs.X.Pos(),
						"range over map %s iterates in randomized order; sort the keys before use",
						types.TypeString(m, func(p *types.Package) string { return p.Name() }))
				}
				return true
			})
		}
	}
	return a
}
