// lockedio: blocking work — file/network I/O, channel operations, sleeps —
// performed while a sync.Mutex or sync.RWMutex is held. The two global LRU
// caches sit on every hot path; a lock held across a syscall turns one slow
// disk or peer into a convoy that stalls every worker (the latency hazard
// the ROADMAP's high-QPS item predicts). The analysis is a straight-line
// scan per block: a x.Lock()/x.RLock() opens a held region that a matching
// x.Unlock()/x.RUnlock() closes; defer x.Unlock() holds to function end.
// Function literals are skipped (they run later, possibly without the
// lock). Sites that hold a lock across blocking work on purpose justify it
// with //lint:allow lockedio.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockedIO builds the lockedio analyzer.
func LockedIO() *Analyzer {
	a := &Analyzer{
		Name: "lockedio",
		Doc:  "file/network I/O, channel operation or sleep while a sync.Mutex/RWMutex is held (convoy hazard; justify with //lint:allow)",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		if info == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lw := &lockWalker{pass: pass, info: info}
				lw.block(fd.Body, map[string]token.Pos{})
			}
		}
	}
	return a
}

type lockWalker struct {
	pass *Pass
	info *types.Info
}

// block scans one statement list with the set of mutexes held on entry
// (receiver expression -> Lock position). The map is copied per nested
// block so sibling branches cannot leak state into each other.
func (lw *lockWalker) block(b *ast.BlockStmt, held map[string]token.Pos) {
	cur := make(map[string]token.Pos, len(held))
	for k, v := range held { //lint:allow maprange lock-tracking state, never reaches output
		cur[k] = v
	}
	for _, stmt := range b.List {
		if recv, kind, ok := lw.lockOp(stmt); ok {
			switch kind {
			case "Lock", "RLock":
				cur[recv] = stmt.Pos()
			case "Unlock", "RUnlock":
				delete(cur, recv)
			}
			continue
		}
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			// defer x.Unlock() keeps x held to function end — exactly the
			// pattern the rule is for. The defer itself is not a violation.
			if _, kind, ok := lw.callOp(ds.Call); ok && strings.HasSuffix(kind, "Unlock") {
				continue
			}
		}
		if len(cur) > 0 {
			lw.inspect(stmt, cur)
		} else {
			lw.nested(stmt, cur)
		}
	}
}

// nested recurses into compound statements looking for lock regions that
// open inside them.
func (lw *lockWalker) nested(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lw.block(s, held)
	case *ast.IfStmt:
		lw.block(s.Body, held)
		if s.Else != nil {
			lw.nested(s.Else, held)
		}
	case *ast.ForStmt:
		lw.block(s.Body, held)
	case *ast.RangeStmt:
		lw.block(s.Body, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.block(&ast.BlockStmt{List: cc.Body}, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.block(&ast.BlockStmt{List: cc.Body}, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lw.block(&ast.BlockStmt{List: cc.Body}, held)
			}
		}
	case *ast.LabeledStmt:
		lw.nested(s.Stmt, held)
	}
}

// inspect reports every blocking operation in a statement executed under
// held locks. Function literals and go statements are skipped: their bodies
// run later (or concurrently), not under these locks.
func (lw *lockWalker) inspect(stmt ast.Stmt, held map[string]token.Pos) {
	holders := make([]string, 0, len(held))
	for r := range held { //lint:allow maprange joined into a sorted message below
		holders = append(holders, r)
	}
	if len(holders) > 1 {
		// Deterministic message regardless of map order.
		for i := 1; i < len(holders); i++ {
			for j := i; j > 0 && holders[j] < holders[j-1]; j-- {
				holders[j], holders[j-1] = holders[j-1], holders[j]
			}
		}
	}
	under := strings.Join(holders, ", ")

	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			lw.pass.Report(x.Pos(), "channel send while holding %s", under)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lw.pass.Report(x.Pos(), "channel receive while holding %s", under)
			}
			return true
		case *ast.SelectStmt:
			lw.pass.Report(x.Pos(), "select while holding %s", under)
			return true
		case *ast.CallExpr:
			if desc, ok := lw.blockingCall(x); ok {
				lw.pass.Report(x.Pos(), "%s while holding %s", desc, under)
			}
			return true
		}
		return true
	})
}

// lockOp matches `x.Lock()` / `x.Unlock()` style expression statements.
func (lw *lockWalker) lockOp(stmt ast.Stmt) (recv, kind string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return lw.callOp(call)
}

// callOp matches a call to (*sync.Mutex).Lock/Unlock or the RWMutex
// variants, returning the receiver expression's source form as the region
// key.
func (lw *lockWalker) callOp(call *ast.CallExpr) (recv, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := lw.info.Selections[sel]
	if !found {
		return "", "", false
	}
	if !isSyncMutex(selection.Recv()) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// osIOFuncs is the blocking subset of package os (os.Getenv and friends are
// the wallclock rule's concern, not a syscall convoy).
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Link": true, "Symlink": true,
	"Mkdir": true, "MkdirAll": true, "Stat": true, "Lstat": true,
	"Truncate": true, "Chmod": true, "Chown": true, "Chtimes": true,
}

var ioBlockingFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "ReadFull": true,
}

// blockingCall classifies a call as blocking I/O: package-level file and
// network functions, any method on an os/net/net\/http type, time.Sleep,
// and fmt.Fprint* to a writer that is not an in-memory buffer.
func (lw *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if selection, ok := lw.info.Selections[fun]; ok {
			// Method call: classify by the receiver's defining package.
			if pkg := namedTypePkg(selection.Recv()); pkg == "os" || pkg == "net" || pkg == "net/http" {
				return "call to " + qualify(selection.Obj()) + " method", true
			}
			return "", false
		}
		obj = lw.info.Uses[fun.Sel]
	case *ast.Ident:
		obj = lw.info.Uses[fun]
	default:
		return "", false
	}
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name, pkg := obj.Name(), obj.Pkg().Path()
	switch {
	case pkg == "os" && osIOFuncs[name]:
		return "file I/O (os." + name + ")", true
	case pkg == "net" || pkg == "net/http":
		return "network I/O (" + qualify(obj) + ")", true
	case pkg == "io" && ioBlockingFuncs[name]:
		return "I/O (io." + name + ")", true
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
		if wt, ok := lw.info.Types[call.Args[0]]; ok && writerMayBlock(wt.Type) {
			return "fmt." + name + " to a possibly-blocking writer", true
		}
	}
	return "", false
}

// writerMayBlock reports whether a fmt.Fprint* destination could reach a
// syscall: interfaces (the static type hides the dynamic writer) and
// os/net/net\/http types block; in-memory buffers do not.
func writerMayBlock(t types.Type) bool {
	switch pkg := namedTypePkg(t); pkg {
	case "os", "net", "net/http":
		return true
	case "bytes", "strings", "bufio":
		return false
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}

// namedTypePkg returns the defining package path of a (possibly pointer-to)
// named type, or "".
func namedTypePkg(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
