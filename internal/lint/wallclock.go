// wallclock: ambient process inputs — wall-clock reads, PRNG draws, pids,
// environment, CPU counts — referenced inside a deterministic package. A
// deterministic function's output may depend on its inputs only; anything
// the process observes about the world it runs in is a hidden input that
// can reach output bytes (timestamps in emitted rows) or scheduling
// (time-based eviction changing which cache entry answers). Legitimate
// sites — fleet backoff jitter, the server's job-TTL janitor and uptime
// reporting, worker-count defaults that never reach output bytes — carry a
// //lint:allow wallclock waiver naming the reason, so the full exemption
// set is one grep away.

package lint

import (
	"go/ast"
	"go/types"
)

// ambientFuncs maps package path -> function/var names whose results are
// ambient inputs. A nil set means the whole package is ambient (math/rand:
// every draw advances hidden state).
var ambientFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Tick": true, "NewTicker": true, "NewTimer": true, "After": true, "AfterFunc": true,
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"crypto/rand":  nil,
	"os": {
		"Getpid": true, "Getppid": true, "Hostname": true,
		"Environ": true, "Getenv": true, "LookupEnv": true,
	},
	"runtime": {
		"NumCPU": true, "NumGoroutine": true,
	},
}

// WallClock builds the wallclock analyzer.
func WallClock() *Analyzer {
	a := &Analyzer{
		Name:          "wallclock",
		Doc:           "wall-clock / PRNG / pid / env / CPU-count read in a deterministic package (ambient input; justify with //lint:allow)",
		Deterministic: true,
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		if info == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				names, ambient := ambientFuncs[obj.Pkg().Path()]
				if !ambient {
					return true
				}
				switch obj.(type) {
				case *types.PkgName:
					return true // the import itself; uses are flagged individually
				case *types.TypeName, *types.Const:
					// Naming rand.Rand in a field type or reading a
					// constant observes nothing about the process.
					return true
				}
				if names != nil && !names[obj.Name()] {
					return true
				}
				pass.Report(id.Pos(), "%s is an ambient input (hidden state the byte-identity contract excludes)", qualify(obj))
				return true
			})
		}
	}
	return a
}
