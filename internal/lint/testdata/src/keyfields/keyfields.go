// Fixture for the keyfields rule: a key builder that forgets a field (the
// catch), a deliberately excluded field (//lint:nonkey), and a waived
// builder (//lint:allow).
package keyfields

type opts struct {
	Width  int
	Height int
	// Trace is observability only; it never changes the computed result.
	//lint:nonkey debug tracing, does not reach the cached value
	Trace bool
}

type key struct {
	w int
}

// buildKey projects opts into a cache key but forgets Height: two runs
// differing only in Height would share one cache entry.
//
//lint:keyfields opts
func buildKey(o opts) key { // WANT keyfields
	return key{w: o.Width}
}

// completeKey uses every non-exempt field: no finding.
//
//lint:keyfields opts
func completeKey(o opts) [2]int {
	return [2]int{o.Width, o.Height}
}

// waivedKey forgets Height too, but carries a waiver.
//
//lint:keyfields opts
//lint:allow keyfields legacy v0 key kept for snapshot compatibility
func waivedKey(o opts) key {
	return key{w: o.Width}
}
