// Fixture for the lockedio rule: catches (file I/O and a channel send under
// a held mutex, including through a defer'd unlock), a justified waiver,
// and the safe patterns the rule must not flag (I/O after Unlock, function
// literals that run later).
package lockedio

import (
	"os"
	"sync"
)

type cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]string
	ch    chan string
}

func (c *cache) persistHeld(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.WriteFile(path, nil, 0o644) // WANT lockedio
}

func (c *cache) notifyHeld(k string) {
	c.rw.RLock()
	v := c.items[k]
	c.ch <- v // WANT lockedio
	c.rw.RUnlock()
}

func (c *cache) persistUnlocked(path string) error {
	c.mu.Lock()
	data := c.items["snapshot"]
	c.mu.Unlock()
	return os.WriteFile(path, []byte(data), 0o644) // after Unlock: clean
}

func (c *cache) closureRunsLater() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() { _ = os.Remove("later") } // runs without the lock: clean
}

func (c *cache) waivedSnapshot(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockedio cold shutdown path: no concurrent readers exist
	return os.WriteFile(path, nil, 0o644)
}
