// Fixture for the wallclock rule: one catch (timestamp reaching a result)
// and one justified waiver (jitter that never reaches output bytes).
package wallclock

import (
	"math/rand"
	"time"
)

func stampedResult() string {
	return time.Now().Format(time.RFC3339) // WANT wallclock
}

func backoffJitter(max int64) int64 {
	//lint:allow wallclock retry jitter: delays never reach output bytes
	return rand.Int63n(max)
}
