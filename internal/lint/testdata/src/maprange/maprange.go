// Fixture for the maprange rule: one catch (iteration order escapes into a
// returned slice) and one justified waiver (order-independent count).
package maprange

func emitRows(m map[string]int) []string {
	var out []string
	for k := range m { // WANT maprange
		out = append(out, k)
	}
	return out // iteration order reaches the caller: the classic violation
}

func countLive(m map[string]int) int {
	n := 0
	//lint:allow maprange order-independent fold: only the count escapes
	for range m {
		n++
	}
	return n
}
