package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads the testdata tree once per test (it is small).
func loadFixture(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadTree(filepath.Join("testdata", "src"), "fixture")
	if err != nil {
		t.Fatalf("load fixture tree: %v", err)
	}
	for _, p := range mod.Packages {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", p.Path, p.TypeErrors)
		}
	}
	return mod
}

// wantMarkers scans fixture sources for trailing "// WANT <rule>" comments
// and returns the expected (file:line -> rule) set.
func wantMarkers(t *testing.T, dir string) map[string]string {
	t.Helper()
	want := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if i := strings.Index(sc.Text(), "// WANT "); i >= 0 {
				rule := strings.TrimSpace(sc.Text()[i+len("// WANT "):])
				want[positionKey(path, line)] = rule
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scan markers: %v", err)
	}
	return want
}

func positionKey(file string, line int) string {
	return filepath.Base(file) + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFixtures runs the full suite over the fixture tree and checks that
// the unsuppressed findings are exactly the // WANT markers, and that every
// rule demonstrates at least one //lint:allow suppression.
func TestFixtures(t *testing.T) {
	mod := loadFixture(t)
	suite := &Suite{Analyzers: DefaultAnalyzers()} // nil scope: everything deterministic
	diags := suite.Run(mod)

	want := wantMarkers(t, filepath.Join("testdata", "src"))
	got := map[string]string{}
	suppressedByRule := map[string]int{}
	for _, d := range diags {
		if d.Rule == "allow" {
			t.Errorf("malformed directive in fixture: %s", d)
			continue
		}
		if d.Suppressed {
			suppressedByRule[d.Rule]++
			if d.Reason == "" {
				t.Errorf("suppressed finding without reason: %s", d)
			}
			continue
		}
		key := positionKey(d.Pos.Filename, d.Pos.Line)
		if prev, dup := got[key]; dup {
			t.Errorf("two findings on one line (%s: %s and %s)", key, prev, d.Rule)
		}
		got[key] = d.Rule
	}

	for key, rule := range want {
		if got[key] != rule {
			t.Errorf("missing finding %s at %s (got %q)", rule, key, got[key])
		}
	}
	for key, rule := range got {
		if want[key] != rule {
			t.Errorf("unexpected finding at %s: %s", key, rule)
		}
	}
	for _, a := range DefaultAnalyzers() {
		if suppressedByRule[a.Name] == 0 {
			t.Errorf("rule %s demonstrates no //lint:allow suppression in fixtures", a.Name)
		}
	}
}

// TestMalformedAllow pins that a typo'd or reasonless waiver is itself a
// finding instead of silently waiving nothing.
func TestMalformedAllow(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "time"

func now() int64 {
	//lint:allow wallclock
	a := time.Now().UnixNano()
	//lint:allow wallclck typo'd rule name
	b := time.Now().UnixNano()
	return a + b
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadTree(dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Analyzers: DefaultAnalyzers()}
	diags := suite.Run(mod)

	var malformed, wallclock int
	for _, d := range Unsuppressed(diags) {
		switch d.Rule {
		case "allow":
			malformed++
		case "wallclock":
			wallclock++
		}
	}
	if malformed != 2 {
		t.Errorf("want 2 malformed-allow findings (missing reason, unknown rule), got %d:\n%v", malformed, diags)
	}
	// Both time.Now uses must still be reported: neither waiver is valid.
	if wallclock != 2 {
		t.Errorf("want 2 unsuppressed wallclock findings, got %d:\n%v", wallclock, diags)
	}
}

// TestDeterministicScope pins that Deterministic rules skip packages
// outside the configured set while module-wide rules still run there.
func TestDeterministicScope(t *testing.T) {
	mod := loadFixture(t)
	suite := &Suite{
		Analyzers:             DefaultAnalyzers(),
		DeterministicPackages: []string{"fixture/maprange"},
	}
	diags := Unsuppressed(suite.Run(mod))
	var maprange, lockedio, keyfields int
	for _, d := range diags {
		switch d.Rule {
		case "wallclock":
			t.Errorf("wallclock ran outside the deterministic set: %s", d)
		case "maprange":
			maprange++
		case "lockedio":
			lockedio++
		case "keyfields":
			keyfields++
		}
	}
	if maprange == 0 {
		t.Error("maprange finding missing inside the deterministic set")
	}
	if lockedio == 0 || keyfields == 0 {
		t.Errorf("module-wide rules must run outside the deterministic set (lockedio=%d keyfields=%d)", lockedio, keyfields)
	}
}

// TestLoadRealModule loads the enclosing module itself: every package must
// parse and type-check cleanly (the analyzers read the type tables, so soft
// errors would silently blind them), and the deterministic package set must
// actually exist — a renamed package would otherwise silently drop out of
// the rules' scope.
func TestLoadRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module (a few seconds)")
	}
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mod.Packages {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
	}
	for _, rel := range DeterministicPackages {
		if mod.Lookup(modPath+"/"+rel) == nil {
			t.Errorf("DeterministicPackages names %s, which no longer exists in the module", rel)
		}
	}
}
