// keyfields: exhaustiveness of cache-identity keys. A function annotated
//
//	//lint:keyfields <Type>
//
// declares itself a key builder over the named struct type: it projects the
// struct into a cache key (or spec identity), and forgetting a field means
// two runs that differ in that field share one cache entry — the
// silent-poisoning failure PR 4's -prefetch/-regbudget axes had to dodge by
// hand. The rule demands that every field of <Type> is either referenced
// (selected) somewhere in the builder's body or carries a
//
//	//lint:nonkey <reason>
//
// annotation on its declaration, so a new scheduler axis that skips the key
// fails the build until the author decides — in writing — whether it is
// identity or not. The reflection test in internal/harness is this rule's
// dynamic twin (it catches fields reachable only through embedding or
// generated code, which selector analysis cannot see).

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyFields builds the keyfields analyzer.
func KeyFields() *Analyzer {
	a := &Analyzer{
		Name: "keyfields",
		Doc:  "a //lint:keyfields builder misses a field of its source struct (reference it in the key or annotate //lint:nonkey <reason>)",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		if info == nil || pass.Pkg.Types == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				typeName, ok := funcKeyfields(fd)
				if !ok {
					continue
				}
				checkKeyBuilder(pass, f, fd, typeName)
			}
		}
	}
	return a
}

func checkKeyBuilder(pass *Pass, file *ast.File, fd *ast.FuncDecl, typeName string) {
	named := resolveNamedType(pass, file, typeName)
	if named == nil {
		pass.Report(fd.Pos(), "//lint:keyfields names unknown type %q", typeName)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Report(fd.Pos(), "//lint:keyfields type %s is not a struct", typeName)
		return
	}

	// Fields the builder's body selects from any value of the source type.
	used := map[string]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if sameNamed(selection.Recv(), named) {
			used[sel.Sel.Name] = true
		}
		return true
	})

	// nonkey annotations live on the struct's own declaration, which may be
	// in another package of the module.
	nonkey := nonkeyFields(pass, named)

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if used[f.Name()] || nonkey[f.Name()] {
			continue
		}
		pass.Report(fd.Pos(),
			"key builder %s does not use field %s.%s; a run differing only in it would share this key (reference it or annotate //lint:nonkey <reason>)",
			funcName(fd), named.Obj().Name(), f.Name())
	}
}

// resolveNamedType resolves "Type" in the package scope or "pkg.Type"
// through the file's imports.
func resolveNamedType(pass *Pass, file *ast.File, name string) *types.Named {
	var obj types.Object
	if pkgName, typ, ok := strings.Cut(name, "."); ok {
		for _, spec := range file.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			local := path[strings.LastIndexByte(path, '/')+1:]
			if spec.Name != nil {
				local = spec.Name.Name
			}
			if local != pkgName {
				continue
			}
			if dep := pass.suite.mod.Lookup(path); dep != nil && dep.Types != nil {
				obj = dep.Types.Scope().Lookup(typ)
			}
			break
		}
	} else {
		obj = pass.Pkg.Types.Scope().Lookup(name)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	return named
}

// sameNamed reports whether t (possibly a pointer) is the named type.
func sameNamed(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// nonkeyFields collects the //lint:nonkey-annotated field names from the
// struct's declaration, wherever in the module it lives.
func nonkeyFields(pass *Pass, named *types.Named) map[string]bool {
	out := map[string]bool{}
	declPkg := pass.Pkg
	if p := named.Obj().Pkg(); p != nil && p.Path() != pass.Pkg.Path {
		declPkg = pass.suite.mod.Lookup(p.Path())
	}
	if declPkg == nil {
		return out
	}
	for _, f := range declPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != named.Obj().Name() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := fieldNonkey(field); !ok {
					continue
				}
				for _, id := range field.Names {
					out[id.Name] = true
				}
			}
			return false
		})
	}
	return out
}
