// Module loading: discover, parse and type-check every package of a Go
// module with nothing but the standard library. go/importer's "source"
// importer handles the standard library (compiled from GOROOT source, so
// offline builds keep working); module-local imports are resolved against
// the packages this loader itself parsed, in dependency order.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path, Dir the on-disk directory.
	Path string
	Dir  string
	// Files are the parsed non-test sources (with comments), Types the
	// checked package and Info the use/def/selection tables the analyzers
	// read.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check failures. The checker keeps
	// going, so a package with a missing dependency still yields partial
	// types for the rules that can run.
	TypeErrors []error

	allows    allowIndex
	fset      *token.FileSet
	fileNames []string
}

// Module is the loaded module: its path, the shared FileSet every position
// resolves through, and the packages in deterministic (path-sorted) order.
type Module struct {
	Path     string
	Root     string
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
}

// Lookup returns the loaded package with the given import path.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load discovers, parses and type-checks every package under the module
// rooted at dir (the directory holding go.mod, or any directory below it).
func Load(dir string) (*Module, error) {
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	return LoadTree(root, modPath)
}

// LoadTree loads every package under root as if root were the directory of
// a module named modPath. Exposed separately so the fixture tests can load
// testdata trees that deliberately have no go.mod.
func LoadTree(root, modPath string) (*Module, error) {
	fset := token.NewFileSet()
	mod := &Module{Path: modPath, Root: root, Fset: fset, byPath: map[string]*Package{}}

	// Discover: every directory under root holding non-test .go files is a
	// package. testdata and hidden/underscore directories are skipped, like
	// the go tool does.
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every package up front so import resolution below sees the full
	// module regardless of discovery order.
	for _, d := range dirs {
		pkg, err := parseDir(fset, root, modPath, d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // directory held only excluded files
		}
		mod.Packages = append(mod.Packages, pkg)
		mod.byPath[pkg.Path] = pkg
	}

	// Type-check in dependency order. Module-local imports resolve to the
	// just-checked packages; everything else goes to the stdlib source
	// importer (shared across packages so the stdlib is checked once).
	imp := &moduleImporter{
		mod: mod,
		std: importer.ForCompiler(fset, "source", nil),
	}
	checked := map[string]bool{}
	var check func(p *Package) error
	check = func(p *Package) error {
		if checked[p.Path] {
			return nil
		}
		checked[p.Path] = true // pre-mark: import cycles fail in the checker, not here
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep := mod.byPath[path]; dep != nil {
					if err := check(dep); err != nil {
						return err
					}
				}
			}
		}
		return typeCheck(fset, imp, p)
	}
	for _, p := range mod.Packages {
		if err := check(p); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", p.Path, err)
		}
	}
	return mod, nil
}

func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: importPath, Dir: dir, fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.fileNames = append(pkg.fileNames, full)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.allows = collectAllows(fset, pkg.Files)
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(p.Path, fset, p.Files, info)
	if tpkg == nil {
		return err
	}
	// Soft errors are recorded on the package; a hard failure without any
	// recorded detail is the only fatal case.
	p.Types, p.Info = tpkg, info
	return nil
}

// moduleImporter resolves module-local imports to the loader's own checked
// packages and delegates the rest to the stdlib source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.mod.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("import cycle or unchecked dependency %q", path)
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}
