package exact

import (
	"context"
	"testing"

	"repro/internal/arch"
)

// machine1 is a single-cluster machine with one unit of each kind.
func machine1() Machine {
	return Machine{
		Clusters:    1,
		Units:       [arch.NumUnitKinds]int{arch.UnitInt: 1, arch.UnitMem: 1, arch.UnitFP: 1},
		CommBuses:   1,
		CommLatency: 2,
	}
}

// machine2 doubles the clusters.
func machine2() Machine {
	m := machine1()
	m.Clusters = 2
	return m
}

func intOp(lat int) Op { return Op{Kind: arch.UnitInt, Lat: lat} }

func solve(t *testing.T, p *Problem, m Machine, heurII int, opt Options) *Result {
	t.Helper()
	res, err := Solve(context.Background(), p, m, heurII, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

// certOf builds a certificate from a realized assignment.
func certOf(a *Assignment, res *Result) *Certificate {
	c := &Certificate{
		II:         a.II,
		LowerBound: res.LowerBound,
		Optimal:    res.Complete && a.II == res.LowerBound,
		Backend:    "exact",
		Nodes:      res.Nodes,
		Trail:      res.Trail,
		Comms:      a.Comms,
	}
	for i := range a.Cycle {
		c.Ops = append(c.Ops, CertOp{Cycle: a.Cycle[i], Cluster: a.Cluster[i], Latency: a.Lat[i], UseL0: a.UseL0[i]})
	}
	return c
}

func TestResourceBoundRealized(t *testing.T) {
	// Three independent int ops on one int unit: MinII = 3, and the
	// realize search must achieve it when the incumbent is worse.
	p := &Problem{Ops: []Op{intOp(1), intOp(1), intOp(1)}}
	m := machine1()
	if got := MinII(p, m); got != 3 {
		t.Fatalf("MinII = %d, want 3", got)
	}
	res := solve(t, p, m, 5, Options{})
	if res.LowerBound != 3 || !res.Complete {
		t.Fatalf("LowerBound=%d Complete=%v, want 3/true", res.LowerBound, res.Complete)
	}
	if res.Found == nil || res.Found.II != 3 {
		t.Fatalf("Found=%+v, want realized II 3", res.Found)
	}
	if err := Validate(certOf(res.Found, res), p, m); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
}

func TestRecurrenceBound(t *testing.T) {
	// A self-recurrence: op 0 feeds itself at distance 1 with latency 3.
	p := &Problem{
		Ops:   []Op{intOp(3)},
		Edges: []Edge{{From: 0, To: 0, Dist: 1}},
	}
	if got := RecMII(p); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
	res := solve(t, p, machine2(), 3, Options{})
	if res.LowerBound != 3 || !res.Complete || len(res.Trail) != 1 || res.Trail[0].Outcome != OutcomeMinII {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestHeuristicAtMinIIIsOptimalWithoutSearch(t *testing.T) {
	p := &Problem{Ops: []Op{intOp(1), intOp(1)}}
	res := solve(t, p, machine1(), 2, Options{})
	if res.Nodes != 0 || !res.Complete || res.LowerBound != 2 {
		t.Fatalf("expected zero-node optimality proof, got %+v", res)
	}
}

func TestDecideProvesUnsat(t *testing.T) {
	// Two chained int ops, latency 2 each, distance-1 back edge:
	// recurrence needs II >= 4, resources II >= 2. At II 2 and 3 the
	// decide search must exhaust and prove infeasibility.
	p := &Problem{
		Ops: []Op{intOp(2), intOp(2)},
		Edges: []Edge{
			{From: 0, To: 1},
			{From: 1, To: 0, Dist: 1},
		},
	}
	m := machine1()
	if got := MinII(p, m); got != 4 {
		t.Fatalf("MinII = %d, want 4", got)
	}
	// Lie about the lower bound by pretending MinII were smaller: solve
	// against an incumbent of 4 — the decide phase never runs (heurII ==
	// MinII), which is itself the proof.
	res := solve(t, p, m, 4, Options{})
	if res.LowerBound != 4 || !res.Complete {
		t.Fatalf("LowerBound=%d Complete=%v, want 4/true", res.LowerBound, res.Complete)
	}
	// Against a worse incumbent the realize search recovers II 4.
	res = solve(t, p, m, 6, Options{})
	if res.Found == nil || res.Found.II != 4 {
		t.Fatalf("Found=%+v, want II 4", res.Found)
	}
}

func TestCrossClusterCommLatency(t *testing.T) {
	// Two dependent mem ops on a two-cluster machine with one mem unit
	// per cluster: at II 1 both rows collide in one cluster, so the ops
	// must split across clusters and pay the bus latency. The realized
	// schedule must carry a broadcast that Validate accepts.
	m := machine2()
	p := &Problem{
		Ops:   []Op{{Kind: arch.UnitMem, Lat: 1}, {Kind: arch.UnitMem, Lat: 1}},
		Edges: []Edge{{From: 0, To: 1}},
	}
	res := solve(t, p, m, 3, Options{})
	if res.Found == nil {
		t.Fatalf("expected a realized schedule, got %+v", res)
	}
	a := res.Found
	if a.II != 1 {
		t.Fatalf("II = %d, want 1", a.II)
	}
	if a.Cluster[0] == a.Cluster[1] {
		t.Fatalf("ops share cluster %d at II 1 with one mem unit", a.Cluster[0])
	}
	if len(a.Comms) != 1 {
		t.Fatalf("comms = %+v, want one broadcast", a.Comms)
	}
	if err := Validate(certOf(a, res), p, m); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	// The consumer must read after the broadcast lands.
	if a.Cycle[1] < a.Comms[0].Cycle+m.CommLatency {
		t.Fatalf("consumer at %d before broadcast arrival %d", a.Cycle[1], a.Comms[0].Cycle+m.CommLatency)
	}
}

func TestL0EntryBudgetRestrictsRealize(t *testing.T) {
	// Two L0-eligible loads but a one-entry budget on one cluster-pair
	// machine: at most one load per cluster may take the L0 latency.
	m := machine1()
	m.L0Entries = 1
	ld := Op{Kind: arch.UnitMem, Lat: 6, L0Lat: 1, CanL0: true, SearchL0: true}
	p := &Problem{Ops: []Op{ld, ld}}
	res := solve(t, p, m, 6, Options{})
	if res.Found == nil {
		t.Fatalf("expected realized schedule, got %+v", res)
	}
	n := 0
	for _, u := range res.Found.UseL0 {
		if u {
			n++
		}
	}
	if n > 1 {
		t.Fatalf("%d loads use the single L0 entry", n)
	}
	if err := Validate(certOf(res.Found, res), p, m); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	// A certificate claiming both loads in L0 on one cluster must fail.
	bad := certOf(res.Found, res)
	for i := range bad.Ops {
		bad.Ops[i].UseL0 = true
		bad.Ops[i].Latency = 1
		bad.Ops[i].Cluster = 0
	}
	if err := Validate(bad, p, m); err == nil {
		t.Fatal("oversubscribed L0 budget validated")
	}
}

func TestBudgetExhaustionIncomplete(t *testing.T) {
	// A 1-node budget stops the decide phase immediately: the result is
	// incomplete and the lower bound stays at the first unproven II.
	p := &Problem{Ops: []Op{intOp(1), intOp(1), intOp(1)}}
	m := machine1() // MinII 3
	res := solve(t, p, m, 5, Options{Budget: 1})
	if res.Complete {
		t.Fatalf("1-node budget completed: %+v", res)
	}
	if res.Found != nil {
		t.Fatalf("incomplete search returned a schedule: %+v", res.Found)
	}
	if res.LowerBound != 3 {
		t.Fatalf("LowerBound = %d, want 3 (MinII)", res.LowerBound)
	}
	last := res.Trail[len(res.Trail)-1]
	if last.Outcome != OutcomeBudget {
		t.Fatalf("trail ends %q, want %q", last.Outcome, OutcomeBudget)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Problem{Ops: []Op{intOp(1), intOp(1), intOp(1)}}
	if _, err := Solve(ctx, p, machine1(), 5, Options{}); err == nil {
		t.Fatal("cancelled Solve returned nil error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := &Problem{
		Ops: []Op{intOp(1), intOp(2), {Kind: arch.UnitMem, Lat: 6, L0Lat: 1, CanL0: true, SearchL0: true}, intOp(1)},
		Edges: []Edge{
			{From: 2, To: 0}, {From: 0, To: 1}, {From: 1, To: 3}, {From: 3, To: 0, Dist: 2},
		},
	}
	m := machine2()
	m.L0Entries = 2
	var first *Result
	for i := 0; i < 3; i++ {
		res := solve(t, p, m, 9, Options{})
		if first == nil {
			first = res
			continue
		}
		if res.Nodes != first.Nodes || res.LowerBound != first.LowerBound || res.Complete != first.Complete {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, first)
		}
		if (res.Found == nil) != (first.Found == nil) {
			t.Fatalf("run %d Found mismatch", i)
		}
		if res.Found != nil {
			a, b := res.Found, first.Found
			for j := range a.Cycle {
				if a.Cycle[j] != b.Cycle[j] || a.Cluster[j] != b.Cluster[j] || a.UseL0[j] != b.UseL0[j] {
					t.Fatalf("run %d schedule differs at op %d", i, j)
				}
			}
		}
	}
}

func TestValidateRejectsMutations(t *testing.T) {
	// A dependence chain whose realized optimal certificate must reject
	// the canonical mutations: II−1 and a slot swap across an edge.
	p := &Problem{
		Ops:   []Op{intOp(1), intOp(1), intOp(1)},
		Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	m := machine1()
	res := solve(t, p, m, 6, Options{})
	if res.Found == nil || !res.Complete || res.Found.II != res.LowerBound {
		t.Fatalf("expected optimal realized schedule, got %+v", res)
	}
	good := certOf(res.Found, res)
	if err := Validate(good, p, m); err != nil {
		t.Fatalf("good certificate rejected: %v", err)
	}

	down := certOf(res.Found, res)
	down.II--
	if down.II >= 1 {
		if err := Validate(down, p, m); err == nil {
			t.Fatal("II−1 mutation of an optimal certificate validated")
		}
	}

	swap := certOf(res.Found, res)
	swap.Ops[0].Cycle, swap.Ops[1].Cycle = swap.Ops[1].Cycle, swap.Ops[0].Cycle
	if err := Validate(swap, p, m); err == nil {
		t.Fatal("slot-swap mutation validated")
	}
}

func TestCheckProblemRejectsBadInput(t *testing.T) {
	m := machine1()
	m.Units[arch.UnitFP] = 0
	p := &Problem{Ops: []Op{{Kind: arch.UnitFP, Lat: 1}}}
	if _, err := Solve(context.Background(), p, m, 3, Options{}); err == nil {
		t.Fatal("op with no unit of its kind accepted")
	}
	if _, err := Solve(context.Background(), &Problem{Ops: []Op{intOp(0)}}, machine1(), 3, Options{}); err == nil {
		t.Fatal("zero-latency op accepted")
	}
	bad := &Problem{Ops: []Op{intOp(1)}, Edges: []Edge{{From: 0, To: 7}}}
	if _, err := Solve(context.Background(), bad, machine1(), 3, Options{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}
