// Package exact implements an exact modulo scheduler for the clustered VLIW
// machine: a branch-and-bound / constraint-propagation search over the modulo
// reservation table that either proves a lower bound on the initiation
// interval or finds a schedule achieving it. It is the optimality oracle
// behind `-sched exact` (ROADMAP item 3): the SMS heuristic in internal/sched
// stays the production scheduler, and this package quantifies — with a
// machine-checkable certificate — how far the heuristic's IIs sit from
// optimal.
//
// # Model
//
// A Problem is the dependence graph of one model loop (after unrolling and
// any PSR rewrite): one Op per instruction (unit kind, L1 and L0 latencies,
// L0 eligibility) and one Edge per dependence (register dependences carry the
// producer's latency, memory dependences a fixed latency). A Machine is the
// resource envelope: clusters, functional units per cluster and kind,
// inter-cluster buses with their latency, and the per-cluster L0-entry
// budget.
//
// A modulo schedule assigns every op an absolute cycle σ and a cluster. Two
// searches run over the residues r = σ mod II and clusters:
//
//   - The *decide* search is a sound relaxation: every L0-eligible load takes
//     the L0 latency, the entry budget and bus capacity are ignored, and a
//     cross-cluster register dependence only adds the (necessary) bus
//     latency. Exhausting it proves no schedule of any kind exists at that
//     II, so scanning II upward from MinII yields a proven lower bound.
//   - The *realize* search solves the full model (chosen load latencies,
//     entry budget, greedy bus placement) and, when it succeeds, yields an
//     executable assignment at an II below the heuristic's.
//
// Within a residue/cluster assignment, the absolute cycles are the stage
// numbers k with σ = r + II·k; dependences reduce to integer difference
// constraints over k, feasible exactly when the constraint graph has no
// positive-weight cycle (a Bellman–Ford longest-path check). Two symmetries
// are broken: schedules are normalized so the first branched op has residue
// zero (rotating every σ by a constant preserves all constraints), and a new
// cluster may only be entered through the lowest-indexed unused one (clusters
// are homogeneous).
//
// The search is deterministic: node order is a pure function of the problem,
// and budget exhaustion truncates at an exact node count, so equal inputs
// (problem, machine, heuristic II, budget) always produce equal results —
// the property that makes certificates cacheable content-addressed.
package exact

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/arch"
)

// DefaultBudget is the node budget a Solve call gets when Options.Budget is
// unset: small enough that a pathological loop cannot wedge a sweep, large
// enough to close every suite benchmark whose search space is tractable.
const DefaultBudget = 200_000

// ctxCheckMask controls how often (in nodes) the search polls ctx and
// publishes progress; a power of two minus one used as a bitmask.
const ctxCheckMask = 255

// Op is one instruction of the model loop.
type Op struct {
	// Kind is the functional-unit class the op occupies.
	Kind arch.UnitKind
	// Lat is the scheduled result latency without the L0 buffer (the L1
	// latency for loads, the opcode default otherwise).
	Lat int
	// L0Lat is the latency when the op is a load scheduled against the L0
	// buffer; meaningful only when CanL0.
	L0Lat int
	// CanL0 marks loads that are architecturally L0-eligible (candidate
	// access pattern, fits a subblock). This is the *relaxed* eligibility
	// the validator and the decide search use.
	CanL0 bool
	// SearchL0 marks loads the realize search may actually schedule with
	// the L0 latency — CanL0 minus loads whose alias set mixes loads and
	// stores (the realized schedule keeps those sets out of the buffers,
	// the NL0 coherence treatment).
	SearchL0 bool
}

// MinLat is the smallest latency any valid schedule can assume for the op.
func (o Op) MinLat() int {
	if o.CanL0 && o.L0Lat < o.Lat {
		return o.L0Lat
	}
	return o.Lat
}

// Edge is one dependence of the model loop.
type Edge struct {
	From, To int
	// Dist is the dependence distance in iterations.
	Dist int
	// Mem marks memory dependences, whose latency is the fixed Lat below;
	// register dependences take the producer's scheduled latency instead
	// (plus the bus latency when the endpoints sit in different clusters).
	Mem bool
	// Lat is the fixed latency of a memory dependence.
	Lat int
}

// Problem is the dependence graph the searches run over.
type Problem struct {
	Ops   []Op
	Edges []Edge
}

// Machine is the resource envelope of one configuration.
type Machine struct {
	Clusters int
	// Units[kind] is the number of units of that kind per cluster.
	Units [arch.NumUnitKinds]int
	// CommBuses / CommLatency describe the inter-cluster bus fabric: a
	// broadcast holds one bus for CommLatency consecutive schedule rows.
	CommBuses   int
	CommLatency int
	// L0Entries caps how many distinct L0-latency loads one cluster's
	// buffer accounting admits (arch.Unbounded lifts the cap — the
	// MarkAllCandidates ablation; 0 means no buffers at all).
	L0Entries int
}

// Progress publishes a running search's counters for job-status reporting.
// Both fields are written by the solver and read concurrently by observers.
type Progress struct {
	// Nodes is the number of branch nodes explored so far.
	Nodes atomic.Int64
	// Incumbent is the best II currently held (the heuristic's until the
	// realize search beats it).
	Incumbent atomic.Int64
}

// Options tunes one Solve call.
type Options struct {
	// Budget caps the total branch nodes across all decide and realize
	// searches of the call; <= 0 selects DefaultBudget.
	Budget int64
	// Progress, when non-nil, receives node-count and incumbent updates.
	Progress *Progress
	// NoRealize restricts the call to the lower-bound (decide) phase; the
	// caller keeps the heuristic schedule. Used when the model loop
	// carries constraints the realize search does not model (PSR replica
	// placement).
	NoRealize bool
}

// Assignment is a complete realized schedule found below the heuristic's II.
type Assignment struct {
	II      int
	Cycle   []int
	Cluster []int
	Lat     []int
	UseL0   []bool
	Comms   []CertComm
}

// Result is the outcome of one Solve call.
type Result struct {
	// LowerBound is the best *proven* lower bound on the II: every
	// smaller II was either below MinII or exhausted as unsatisfiable.
	LowerBound int
	// Complete reports that every search the call needed finished inside
	// the budget; false means LowerBound and Found are best-effort.
	Complete bool
	// Found is a realized schedule strictly better than the heuristic's
	// II, or nil (keep the heuristic schedule).
	Found *Assignment
	// Trail records one step per II examined, in order.
	Trail []ProofStep
	// Nodes is the total branch nodes explored.
	Nodes int64
}

// Solve proves a lower bound on the II of the problem and, unless
// opt.NoRealize, searches for a schedule beating heurII (the best known II,
// normally the SMS heuristic's). It returns an error only when ctx is
// cancelled or the problem is malformed; budget exhaustion returns a Result
// with Complete=false.
func Solve(ctx context.Context, p *Problem, m Machine, heurII int, opt Options) (*Result, error) {
	if err := checkProblem(p, m); err != nil {
		return nil, err
	}
	if heurII < 1 {
		return nil, fmt.Errorf("exact: heuristic II must be >= 1, got %d", heurII)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	if opt.Progress != nil {
		opt.Progress.Incumbent.Store(int64(heurII))
	}

	mii := MinII(p, m)
	res := &Result{LowerBound: mii, Complete: true}
	if heurII <= mii {
		// The heuristic already achieves the static lower bound: optimal
		// with no search at all.
		res.LowerBound = heurII
		res.Trail = append(res.Trail, ProofStep{II: heurII, Outcome: OutcomeMinII})
		return res, nil
	}

	s := newSearcher(p, m, ctx, budget, opt.Progress)

	// Phase 1 — decide: scan II upward, proving infeasibility until the
	// relaxation first admits a schedule.
	decided := -1
	for ii := mii; ii < heurII; ii++ {
		st, n := s.search(ii, false)
		res.Nodes += n
		switch st {
		case stSAT:
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeSAT, Nodes: n})
			decided = ii
		case stUNSAT:
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeUNSAT, Nodes: n})
			continue
		case stStop:
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeBudget, Nodes: n})
			res.LowerBound = ii // everything below ii is proven infeasible
			res.Complete = false
			return res, nil
		}
		break
	}
	if decided == -1 {
		// Every II below the heuristic's is proven infeasible: the
		// heuristic schedule is optimal.
		res.LowerBound = heurII
		return res, nil
	}
	res.LowerBound = decided

	// Phase 2 — realize: search the full model from the proven bound up,
	// adopting the first schedule that beats the heuristic.
	if opt.NoRealize {
		return res, nil
	}
	for ii := decided; ii < heurII; ii++ {
		st, n := s.search(ii, true)
		res.Nodes += n
		switch st {
		case stSAT:
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeRealized, Nodes: n})
			res.Found = s.found
			if opt.Progress != nil {
				opt.Progress.Incumbent.Store(int64(ii))
			}
			return res, nil
		case stUNSAT:
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeUnrealized, Nodes: n})
		case stStop:
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.Trail = append(res.Trail, ProofStep{II: ii, Outcome: OutcomeBudget, Nodes: n})
			res.Complete = false
			return res, nil
		}
	}
	return res, nil
}

// checkProblem rejects inputs no search could handle.
func checkProblem(p *Problem, m Machine) error {
	if m.Clusters < 1 {
		return fmt.Errorf("exact: machine needs >= 1 cluster, got %d", m.Clusters)
	}
	if m.CommBuses < 1 || m.CommLatency < 1 {
		return fmt.Errorf("exact: machine needs positive bus count/latency, got %d/%d", m.CommBuses, m.CommLatency)
	}
	for i, o := range p.Ops {
		if o.Lat < 1 || (o.CanL0 && o.L0Lat < 1) {
			return fmt.Errorf("exact: op %d has non-positive latency", i)
		}
		if int(o.Kind) >= arch.NumUnitKinds {
			return fmt.Errorf("exact: op %d has unknown unit kind %d", i, o.Kind)
		}
		if m.Units[o.Kind] == 0 {
			return fmt.Errorf("exact: op %d needs a %v unit but the machine has none", i, o.Kind)
		}
	}
	for i, e := range p.Edges {
		if e.From < 0 || e.From >= len(p.Ops) || e.To < 0 || e.To >= len(p.Ops) {
			return fmt.Errorf("exact: edge %d references op out of range", i)
		}
		if e.Dist < 0 || (e.Mem && e.Lat < 0) {
			return fmt.Errorf("exact: edge %d has negative distance or latency", i)
		}
	}
	return nil
}

// MinII is the classic static lower bound: the larger of the resource-
// constrained and recurrence-constrained minimum IIs, both computed against
// the relaxed (minimum-latency, same-cluster) model so the bound holds for
// every valid schedule.
func MinII(p *Problem, m Machine) int {
	mii := ResMII(p, m)
	if rec := RecMII(p); rec > mii {
		mii = rec
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// ResMII is the resource-constrained lower bound: for each unit kind, the
// ops needing it divided by the machine's total units of that kind.
func ResMII(p *Problem, m Machine) int {
	var need [arch.NumUnitKinds]int
	for _, o := range p.Ops {
		need[o.Kind]++
	}
	mii := 1
	for k := 0; k < arch.NumUnitKinds; k++ {
		if need[k] == 0 {
			continue
		}
		total := m.Units[k] * m.Clusters
		if total == 0 {
			continue // checkProblem rejects this; avoid dividing by zero
		}
		if r := ceilDiv(need[k], total); r > mii {
			mii = r
		}
	}
	return mii
}

// RecMII is the recurrence-constrained lower bound: the smallest II at which
// the dependence constraints — with every op at its minimum latency and no
// inter-cluster communication — admit a solution (no positive-weight cycle).
func RecMII(p *Problem) int {
	hi := 1
	for _, e := range p.Edges {
		hi += relaxedEdgeLat(p, e)
	}
	for ii := 1; ii < hi; ii++ {
		if !hasPositiveCycle(p, ii) {
			return ii
		}
	}
	return hi
}

// relaxedEdgeLat is the smallest latency any schedule can realize on edge e.
func relaxedEdgeLat(p *Problem, e Edge) int {
	if e.Mem {
		return e.Lat
	}
	return p.Ops[e.From].MinLat()
}

// hasPositiveCycle runs a Bellman–Ford longest-path pass over the relaxed
// dependence graph at the given II (edge weight lat − II·dist); a relaxation
// still possible after n rounds means a positive cycle.
func hasPositiveCycle(p *Problem, ii int) bool {
	n := len(p.Ops)
	dist := make([]int64, n)
	for round := 0; round <= n; round++ {
		changed := false
		for _, e := range p.Edges {
			w := int64(relaxedEdgeLat(p, e)) - int64(ii)*int64(e.Dist)
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// search status values.
type status int

const (
	stUNSAT status = iota // search space exhausted, no solution
	stSAT                 // solution found (decide: relaxation; realize: full)
	stStop                // budget exhausted or ctx cancelled
)

// searcher carries the branch-and-bound state shared across the II scans of
// one Solve call (the node budget is global to the call).
type searcher struct {
	p   *Problem
	m   Machine
	ctx context.Context

	budget int64
	nodes  int64
	prog   *Progress

	order []int // static branch order

	// Per-II state.
	ii       int
	realize  bool
	assigned []bool
	resid    []int
	clust    []int
	lat      []int
	useL0    []bool
	usage    []int8 // (row*Clusters + cluster)*NumUnitKinds + kind
	l0used   []int
	k        []int64 // Bellman–Ford stage numbers

	found *Assignment
}

func newSearcher(p *Problem, m Machine, ctx context.Context, budget int64, prog *Progress) *searcher {
	n := len(p.Ops)
	s := &searcher{
		p: p, m: m, ctx: ctx, budget: budget, prog: prog,
		assigned: make([]bool, n),
		resid:    make([]int, n),
		clust:    make([]int, n),
		lat:      make([]int, n),
		useL0:    make([]bool, n),
		l0used:   make([]int, m.Clusters),
		k:        make([]int64, n),
	}
	s.order = branchOrder(p)
	return s
}

// branchOrder is the static variable order: most-constrained ops first —
// higher dependence degree, then longer minimum latency — with the op index
// as the deterministic tie-break.
func branchOrder(p *Problem) []int {
	n := len(p.Ops)
	deg := make([]int, n)
	for _, e := range p.Edges {
		deg[e.From]++
		deg[e.To]++
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		sx := 4*deg[x] + p.Ops[x].MinLat()
		sy := 4*deg[y] + p.Ops[y].MinLat()
		if sx != sy {
			return sx > sy
		}
		return x < y
	})
	return order
}

// search runs one decide (realize=false) or realize (realize=true) search at
// the given II, returning the status and the nodes this search consumed.
func (s *searcher) search(ii int, realize bool) (status, int64) {
	s.ii = ii
	s.realize = realize
	n := len(s.p.Ops)
	for i := 0; i < n; i++ {
		s.assigned[i] = false
		s.useL0[i] = false
		s.lat[i] = 0
	}
	cells := ii * s.m.Clusters * arch.NumUnitKinds
	if cap(s.usage) < cells {
		s.usage = make([]int8, cells)
	}
	s.usage = s.usage[:cells]
	for i := range s.usage {
		s.usage[i] = 0
	}
	for c := range s.l0used {
		s.l0used[c] = 0
	}
	if !realize {
		for i := range s.lat {
			s.lat[i] = s.p.Ops[i].MinLat()
		}
	}
	start := s.nodes
	st := s.dfs(0, -1)
	return st, s.nodes - start
}

// dfs branches on the op at the given depth of the static order. maxCluster
// is the highest cluster index any assigned op occupies (-1 initially), for
// the unused-cluster symmetry break.
func (s *searcher) dfs(depth, maxCluster int) status {
	if depth == len(s.order) {
		if !s.realize {
			return stSAT
		}
		if s.placeComms() {
			return stSAT
		}
		return stUNSAT // this leaf's bus placement failed; keep searching
	}
	op := s.order[depth]

	rMax := s.ii
	if depth == 0 {
		rMax = 1 // rotation symmetry: pin the first op's residue
	}
	cMax := maxCluster + 2 // lowest unused cluster only
	if cMax > s.m.Clusters {
		cMax = s.m.Clusters
	}
	for r := 0; r < rMax; r++ {
		for c := 0; c < cMax; c++ {
			for _, l0 := range s.latChoices(op, c) {
				s.nodes++
				if s.nodes > s.budget {
					return stStop
				}
				if s.nodes&ctxCheckMask == 0 {
					if s.prog != nil {
						s.prog.Nodes.Store(s.nodes)
					}
					if s.ctx.Err() != nil {
						return stStop
					}
				}
				if !s.place(op, r, c, l0) {
					continue
				}
				nm := maxCluster
				if c > nm {
					nm = c
				}
				if s.feasible() {
					switch st := s.dfs(depth+1, nm); st {
					case stSAT:
						return stSAT
					case stStop:
						s.unplace(op, r, c, l0)
						return stStop
					}
				}
				s.unplace(op, r, c, l0)
			}
		}
	}
	return stUNSAT
}

// latChoices lists the latency alternatives to branch on for op at cluster c:
// decide always uses the fixed minimum latency; realize tries the L0 latency
// first (when the op may use the buffers and the cluster has entries left)
// and the plain latency second.
func (s *searcher) latChoices(op, c int) []bool {
	if !s.realize {
		return oneFalse
	}
	o := s.p.Ops[op]
	if o.SearchL0 && s.m.L0Entries > 0 && s.l0used[c] < s.m.L0Entries {
		return trueThenFalse
	}
	return oneFalse
}

var (
	oneFalse      = []bool{false}
	trueThenFalse = []bool{true, false}
)

// place commits op to (residue r, cluster c), reserving its unit slot.
// Returns false (without reserving) when the unit row is full.
func (s *searcher) place(op, r, c int, l0 bool) bool {
	o := s.p.Ops[op]
	cell := (r*s.m.Clusters+c)*arch.NumUnitKinds + int(o.Kind)
	if int(s.usage[cell]) >= s.m.Units[o.Kind] {
		return false
	}
	s.usage[cell]++
	s.assigned[op] = true
	s.resid[op] = r
	s.clust[op] = c
	if s.realize {
		if l0 {
			s.lat[op] = o.L0Lat
			s.useL0[op] = true
			s.l0used[c]++
		} else {
			s.lat[op] = o.Lat
			s.useL0[op] = false
		}
	}
	return true
}

func (s *searcher) unplace(op, r, c int, l0 bool) {
	o := s.p.Ops[op]
	s.usage[(r*s.m.Clusters+c)*arch.NumUnitKinds+int(o.Kind)]--
	s.assigned[op] = false
	if s.realize && l0 {
		s.l0used[c]--
		s.useL0[op] = false
	}
}

// edgeWeight is the difference-constraint weight of edge e over the stage
// numbers k at the current partial assignment: k_to − k_from ≥ weight.
func (s *searcher) edgeWeight(e Edge) int {
	l := e.Lat
	if !e.Mem {
		l = s.lat[e.From]
		if s.clust[e.From] != s.clust[e.To] {
			l += s.m.CommLatency
		}
	}
	return ceilDiv(l-s.resid[e.To]+s.resid[e.From], s.ii) - e.Dist
}

// feasible checks the difference-constraint system over the stage numbers of
// the currently assigned ops: Bellman–Ford longest path, infeasible exactly
// when a positive-weight cycle exists. On success s.k holds the minimal
// non-negative stage numbers.
func (s *searcher) feasible() bool {
	n := len(s.p.Ops)
	for i := 0; i < n; i++ {
		s.k[i] = 0
	}
	for round := 0; ; round++ {
		changed := false
		for _, e := range s.p.Edges {
			if !s.assigned[e.From] || !s.assigned[e.To] {
				continue
			}
			w := s.edgeWeight(e)
			if e.From == e.To {
				if w > 0 {
					return false
				}
				continue
			}
			if d := s.k[e.From] + int64(w); d > s.k[e.To] {
				s.k[e.To] = d
				changed = true
			}
		}
		if !changed {
			return true
		}
		if round >= n {
			return false
		}
	}
}

// placeComms runs at a fully assigned realize leaf: absolute cycles follow
// from the stage numbers, and every cross-cluster register dependence needs a
// broadcast on a bus. One broadcast per producer serves all its consumers
// (the bus is a broadcast fabric); slots are claimed greedily, tightest
// deadline first, scanning from the deadline down. Failure rejects only this
// leaf — the DFS keeps searching other assignments.
func (s *searcher) placeComms() bool {
	if !s.feasible() {
		return false
	}
	n := len(s.p.Ops)
	cyc := make([]int, n)
	for i := 0; i < n; i++ {
		cyc[i] = s.resid[i] + s.ii*int(s.k[i])
	}

	type need struct{ prod, ready, deadline int }
	var needs []need
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for _, e := range s.p.Edges {
		if e.Mem || e.From == e.To || s.clust[e.From] == s.clust[e.To] {
			continue
		}
		ready := cyc[e.From] + s.lat[e.From]
		dl := cyc[e.To] + s.ii*e.Dist - s.m.CommLatency
		if j := idx[e.From]; j >= 0 {
			if dl < needs[j].deadline {
				needs[j].deadline = dl
			}
		} else {
			idx[e.From] = len(needs)
			needs = append(needs, need{prod: e.From, ready: ready, deadline: dl})
		}
	}
	if len(needs) == 0 {
		s.adopt(cyc, nil)
		return true
	}
	sort.Slice(needs, func(a, b int) bool {
		if needs[a].deadline != needs[b].deadline {
			return needs[a].deadline < needs[b].deadline
		}
		return needs[a].prod < needs[b].prod
	})
	bus := make([]int, s.ii)
	var comms []CertComm
	for _, nd := range needs {
		if nd.deadline < nd.ready {
			return false
		}
		placed := false
		for t := nd.deadline; t >= nd.ready && !placed; t-- {
			free := true
			for kk := 0; kk < s.m.CommLatency; kk++ {
				if bus[posMod(t+kk, s.ii)] >= s.m.CommBuses {
					free = false
					break
				}
			}
			if free {
				for kk := 0; kk < s.m.CommLatency; kk++ {
					bus[posMod(t+kk, s.ii)]++
				}
				comms = append(comms, CertComm{Producer: nd.prod, Cycle: t})
				placed = true
			}
		}
		if !placed {
			return false
		}
	}
	s.adopt(cyc, comms)
	return true
}

// adopt records the realize leaf as the found assignment.
func (s *searcher) adopt(cyc []int, comms []CertComm) {
	n := len(s.p.Ops)
	a := &Assignment{
		II:      s.ii,
		Cycle:   append([]int(nil), cyc...),
		Cluster: append([]int(nil), s.clust[:n]...),
		Lat:     append([]int(nil), s.lat[:n]...),
		UseL0:   append([]bool(nil), s.useL0[:n]...),
		Comms:   comms,
	}
	s.found = a
}

// ceilDiv is ceiling division for a possibly negative numerator and positive
// denominator.
func ceilDiv(a, b int) int {
	q := (a + b - 1) / b
	if (a+b-1)%b != 0 && a+b-1 < 0 {
		q--
	}
	return q
}

func posMod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}
