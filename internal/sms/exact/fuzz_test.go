package exact

import (
	"context"
	"testing"

	"repro/internal/arch"
)

// byteFeed doles out fuzz bytes, cycling so short inputs still shape a
// complete problem.
type byteFeed struct {
	data []byte
	pos  int
}

func (f *byteFeed) next() int {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.pos%len(f.data)]
	f.pos++
	return int(b)
}

// FuzzExactValidate drives the solver over random small dependence graphs and
// machine shapes and holds it to two properties: every realized schedule's
// certificate passes the independent validator, and the canonical mutations —
// a slot swap across a same-iteration edge, and lowering an optimal
// certificate's II by one — are always rejected.
func FuzzExactValidate(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0, 1, 4, 9, 2, 7})
	f.Add([]byte{0})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{1, 0, 3, 2, 5, 8, 13, 21, 34, 55})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fd := &byteFeed{data: data}

		n := 2 + fd.next()%4
		p := &Problem{}
		for i := 0; i < n; i++ {
			switch fd.next() % 3 {
			case 0:
				p.Ops = append(p.Ops, Op{Kind: arch.UnitInt, Lat: 1 + fd.next()%4})
			case 1:
				p.Ops = append(p.Ops, Op{Kind: arch.UnitFP, Lat: 1 + fd.next()%4})
			default:
				o := Op{Kind: arch.UnitMem, Lat: 1 + fd.next()%6}
				if fd.next()%2 == 0 {
					o.CanL0 = true
					o.SearchL0 = fd.next()%4 != 0
					o.L0Lat = 1
				}
				p.Ops = append(p.Ops, o)
			}
		}
		ne := fd.next() % (2 * n)
		for i := 0; i < ne; i++ {
			e := Edge{From: fd.next() % n, To: fd.next() % n, Dist: fd.next() % 3}
			if fd.next()%4 == 0 {
				e.Mem = true
				e.Lat = fd.next() % 3
			}
			if e.From == e.To && e.Dist == 0 {
				// A zero-distance self-edge is unsatisfiable at any II;
				// give it a distance instead of generating a dead input.
				e.Dist = 1
			}
			p.Edges = append(p.Edges, e)
		}

		m := Machine{
			Clusters:    1 + fd.next()%2,
			CommBuses:   1 + fd.next()%2,
			CommLatency: 1 + fd.next()%2,
			L0Entries:   fd.next() % 3,
		}
		m.Units[arch.UnitInt] = 1 + fd.next()%2
		m.Units[arch.UnitMem] = 1 + fd.next()%2
		m.Units[arch.UnitFP] = 1 + fd.next()%2

		mii := MinII(p, m)
		heurII := mii + 1 + fd.next()%3
		res, err := Solve(context.Background(), p, m, heurII, Options{Budget: 20_000})
		if err != nil {
			t.Fatalf("Solve rejected a well-formed problem: %v", err)
		}
		if res.LowerBound < mii || res.LowerBound > heurII {
			t.Fatalf("LowerBound %d outside [%d, %d]", res.LowerBound, mii, heurII)
		}
		if res.Found == nil {
			return
		}
		a := res.Found

		cert := &Certificate{
			II: a.II, LowerBound: res.LowerBound,
			Optimal: res.Complete && a.II == res.LowerBound,
			Backend: "exact", Nodes: res.Nodes, Trail: res.Trail, Comms: a.Comms,
		}
		for i := range a.Cycle {
			cert.Ops = append(cert.Ops, CertOp{
				Cycle: a.Cycle[i], Cluster: a.Cluster[i], Latency: a.Lat[i], UseL0: a.UseL0[i],
			})
		}
		if err := Validate(cert, p, m); err != nil {
			t.Fatalf("realized certificate rejected: %v\nproblem %+v machine %+v", err, p, m)
		}

		// Mutation 1: an optimal certificate re-labelled with II−1 claims a
		// schedule below the proven lower bound — the validator must find a
		// violated constraint.
		if cert.Optimal && cert.II > 1 {
			down := *cert
			down.II--
			if err := Validate(&down, p, m); err == nil {
				t.Fatalf("II−1 mutation of optimal certificate validated\nproblem %+v machine %+v cert %+v", p, m, cert)
			}
		}

		// Mutation 2: swap the scheduled cycles across a same-iteration
		// dependence (producer strictly precedes consumer there, so the
		// swap always inverts the edge).
		for _, e := range p.Edges {
			if e.From == e.To || e.Dist != 0 || (e.Mem && e.Lat < 1) {
				continue
			}
			swap := *cert
			swap.Ops = append([]CertOp(nil), cert.Ops...)
			swap.Ops[e.From].Cycle, swap.Ops[e.To].Cycle = swap.Ops[e.To].Cycle, swap.Ops[e.From].Cycle
			if err := Validate(&swap, p, m); err == nil {
				t.Fatalf("slot-swap mutation across edge %d→%d validated\nproblem %+v machine %+v cert %+v",
					e.From, e.To, p, m, cert)
			}
			break
		}
	})
}
