// Schedule certificates: a machine-checkable record of what the exact
// backend concluded for one (kernel, config, options) triple, and an
// independent validator that re-checks a claimed schedule against the
// dependence and resource constraints from first principles. Validate shares
// no code with either scheduler — it is the oracle the differential and fuzz
// tests trust, so it re-derives every constraint directly from the Problem
// and Machine.

package exact

import (
	"fmt"

	"repro/internal/arch"
)

// Trail outcome values. A trail documents the solver's II scan: which IIs
// were proven infeasible, where the search stopped, and how the final
// schedule was obtained.
const (
	// OutcomeMinII: the best known II already equals the static MinII
	// lower bound — optimal with no search.
	OutcomeMinII = "mii"
	// OutcomeUNSAT: the decide search exhausted this II; no schedule of
	// any kind exists at it.
	OutcomeUNSAT = "unsat"
	// OutcomeSAT: the decide relaxation admits this II — it becomes the
	// proven lower bound.
	OutcomeSAT = "sat"
	// OutcomeRealized: the realize search found a full schedule at this
	// II, beating the heuristic.
	OutcomeRealized = "realized"
	// OutcomeUnrealized: the realize search exhausted this II without a
	// schedule (the restricted model cannot achieve it).
	OutcomeUnrealized = "unrealized"
	// OutcomeBudget: the node budget ran out mid-search at this II.
	OutcomeBudget = "budget"
	// OutcomeRegFile: a realized schedule at this II was rejected for
	// exceeding the configured register budget (recorded by the sched
	// layer; the heuristic schedule is kept).
	OutcomeRegFile = "regfile"
)

// ProofStep is one entry of the solver's II scan trail.
type ProofStep struct {
	II      int    `json:"ii"`
	Outcome string `json:"outcome"`
	Nodes   int64  `json:"nodes,omitempty"`
}

// CertOp is the scheduling decision for one op: absolute start cycle,
// cluster, the latency the schedule assumed, and — for loads only — whether
// the op runs against the L0 buffer. (The heuristic also flags coherence-
// marker stores with its internal UseL0 bit; certificates record the bit
// only where it means "scheduled with the L0 latency", so the entry
// accounting below stays meaningful.)
type CertOp struct {
	Cycle   int  `json:"cycle"`
	Cluster int  `json:"cluster"`
	Latency int  `json:"latency"`
	UseL0   bool `json:"use_l0,omitempty"`
}

// CertComm is one inter-cluster broadcast: the value of Producer leaves on a
// bus at Cycle and is visible in every cluster at Cycle+CommLatency.
type CertComm struct {
	Producer int `json:"producer"`
	Cycle    int `json:"cycle"`
}

// Certificate is the full machine-checkable result of one exact-backend
// compilation (or, via the sched package, a heuristic schedule re-expressed
// so the same validator can check it).
type Certificate struct {
	// II is the initiation interval of the schedule the Ops describe.
	II int `json:"ii"`
	// LowerBound is the proven lower bound on any schedule's II.
	LowerBound int `json:"lower_bound"`
	// Optimal reports II == LowerBound with every supporting search
	// complete: no valid schedule of the model loop can beat this II.
	Optimal bool `json:"optimal"`
	// Backend names the scheduler that produced the Ops ("sms" or
	// "exact").
	Backend string `json:"backend"`
	// Nodes is the total branch nodes the solver explored.
	Nodes int64 `json:"nodes,omitempty"`
	// Ops is indexed by instruction ID, exactly like Schedule.Placed.
	Ops []CertOp `json:"ops"`
	// Comms are the scheduled inter-cluster broadcasts.
	Comms []CertComm `json:"comms,omitempty"`
	// Trail is the solver's II-scan proof trail (empty for pure
	// heuristic certificates).
	Trail []ProofStep `json:"trail,omitempty"`
}

// Validate checks a certificate's schedule against the problem's dependence
// constraints and the machine's resource constraints. It is deliberately
// independent of both schedulers: every rule is re-derived from the Problem
// and Machine alone.
//
// Checks, in order: op count and ranges; per-op latency legality (the plain
// latency, or the L0 latency for an L0-eligible load); functional-unit
// capacity per (row, cluster, kind); the per-cluster L0-entry budget; every
// dependence edge (memory edges at their fixed latency, register edges at
// the producer's scheduled latency, self-edges at the minimum latency the
// recurrence bound assumes); a bus broadcast covering every cross-cluster
// register dependence within its ready/deadline window; and bus capacity
// per schedule row.
func Validate(cert *Certificate, p *Problem, m Machine) error {
	if cert == nil {
		return fmt.Errorf("exact: nil certificate")
	}
	if cert.II < 1 {
		return fmt.Errorf("exact: certificate II %d < 1", cert.II)
	}
	if len(cert.Ops) != len(p.Ops) {
		return fmt.Errorf("exact: certificate has %d ops, problem has %d", len(cert.Ops), len(p.Ops))
	}
	ii := cert.II

	// Per-op ranges and latency legality.
	for i, co := range cert.Ops {
		o := p.Ops[i]
		if co.Cycle < 0 {
			return fmt.Errorf("exact: op %d scheduled at negative cycle %d", i, co.Cycle)
		}
		if co.Cluster < 0 || co.Cluster >= m.Clusters {
			return fmt.Errorf("exact: op %d on cluster %d of %d", i, co.Cluster, m.Clusters)
		}
		switch {
		case co.UseL0:
			if !o.CanL0 {
				return fmt.Errorf("exact: op %d uses L0 but is not L0-eligible", i)
			}
			if m.L0Entries <= 0 {
				return fmt.Errorf("exact: op %d uses L0 but the machine has no L0 entries", i)
			}
			if co.Latency != o.L0Lat {
				return fmt.Errorf("exact: op %d uses L0 with latency %d, want %d", i, co.Latency, o.L0Lat)
			}
		default:
			if co.Latency != o.Lat {
				return fmt.Errorf("exact: op %d has latency %d, want %d", i, co.Latency, o.Lat)
			}
		}
	}

	// Functional-unit capacity per (row, cluster, kind).
	usage := make([]int, ii*m.Clusters*arch.NumUnitKinds)
	for i, co := range cert.Ops {
		o := p.Ops[i]
		cell := (posMod(co.Cycle, ii)*m.Clusters+co.Cluster)*arch.NumUnitKinds + int(o.Kind)
		usage[cell]++
		if usage[cell] > m.Units[o.Kind] {
			return fmt.Errorf("exact: row %d cluster %d oversubscribes %v units (%d > %d)",
				posMod(co.Cycle, ii), co.Cluster, o.Kind, usage[cell], m.Units[o.Kind])
		}
	}

	// L0-entry budget per cluster (skipped when effectively unbounded).
	if m.L0Entries > 0 && m.L0Entries < arch.Unbounded {
		perCluster := make([]int, m.Clusters)
		for i, co := range cert.Ops {
			if co.UseL0 {
				perCluster[co.Cluster]++
				if perCluster[co.Cluster] > m.L0Entries {
					return fmt.Errorf("exact: cluster %d holds %d L0 loads, budget %d (op %d)",
						co.Cluster, perCluster[co.Cluster], m.L0Entries, i)
				}
			}
		}
	}

	// Dependence edges and broadcast coverage.
	for ei, e := range p.Edges {
		u, v := cert.Ops[e.From], cert.Ops[e.To]
		if e.From == e.To {
			// Self-recurrences are what the recurrence bound constrains:
			// II·dist must cover the minimum latency the producer can be
			// scheduled at (the heuristic may record a larger latency on
			// the op while the hardware recurrence only needs this much).
			l := e.Lat
			if !e.Mem {
				l = p.Ops[e.From].MinLat()
			}
			if ii*e.Dist < l {
				return fmt.Errorf("exact: edge %d: self-recurrence II·%d < latency %d", ei, e.Dist, l)
			}
			continue
		}
		switch {
		case e.Mem:
			if v.Cycle+ii*e.Dist < u.Cycle+e.Lat {
				return fmt.Errorf("exact: edge %d (%d→%d): memory dependence violated (%d+%d·%d < %d+%d)",
					ei, e.From, e.To, v.Cycle, ii, e.Dist, u.Cycle, e.Lat)
			}
		case u.Cluster == v.Cluster:
			if v.Cycle+ii*e.Dist < u.Cycle+u.Latency {
				return fmt.Errorf("exact: edge %d (%d→%d): register dependence violated (%d+%d·%d < %d+%d)",
					ei, e.From, e.To, v.Cycle, ii, e.Dist, u.Cycle, u.Latency)
			}
		default:
			// Cross-cluster: a broadcast must leave after the value
			// exists and arrive (CommLatency later) by the consumer's
			// read. This subsumes the plain dependence check.
			ready := u.Cycle + u.Latency
			deadline := v.Cycle + ii*e.Dist - m.CommLatency
			ok := false
			for _, cm := range cert.Comms {
				if cm.Producer == e.From && cm.Cycle >= ready && cm.Cycle <= deadline {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("exact: edge %d (%d→%d): no broadcast of op %d in window [%d, %d]",
					ei, e.From, e.To, e.From, ready, deadline)
			}
		}
	}

	// Bus capacity: each broadcast holds one bus for CommLatency rows. The
	// check is sequential (each comm is admitted against the rows held by
	// the comms before it, then committed) — the same check-then-reserve
	// rule the schedulers' reservation table enforces, under which a single
	// transfer at II < CommLatency may wrap over its own rows.
	bus := make([]int, ii)
	for ci, cm := range cert.Comms {
		if cm.Producer < 0 || cm.Producer >= len(p.Ops) {
			return fmt.Errorf("exact: comm %d references op %d out of range", ci, cm.Producer)
		}
		if cm.Cycle < 0 {
			return fmt.Errorf("exact: comm %d at negative cycle %d", ci, cm.Cycle)
		}
		for kk := 0; kk < m.CommLatency; kk++ {
			if row := posMod(cm.Cycle+kk, ii); bus[row] >= m.CommBuses {
				return fmt.Errorf("exact: bus row %d oversubscribed (%d buses)", row, m.CommBuses)
			}
		}
		for kk := 0; kk < m.CommLatency; kk++ {
			bus[posMod(cm.Cycle+kk, ii)]++
		}
	}
	return nil
}
