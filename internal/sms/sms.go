// Package sms implements the Swing Modulo Scheduling node-ordering heuristic
// (Llosa, González, Ayguadé, Valero, PACT'96) used as scheduling step 2 in
// §4.3 of the paper. SMS orders the nodes of the dependence graph so that
// (i) the most constraining recurrences are placed first and (ii) every node
// is ordered adjacent to already-ordered neighbours, which lets the scheduler
// place it close to them and keeps both the initiation interval and register
// pressure low.
//
// The implementation is allocation-light: node sets, frontiers and the
// Bellman-Ford state of the recurrence-MII search are dense slices indexed by
// node ID rather than maps, because Order runs once per candidate initiation
// interval and sits on the scheduler's hot path.
package sms

import (
	"sort"

	"repro/internal/ddg"
)

// Order returns the SMS instruction order for graph g at initiation
// interval ii.
func Order(g *ddg.Graph, ii int) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	est, lst := g.EstartLstart(ii)

	sets := prioritySets(g)

	ordered := make([]bool, n)
	order := make([]int, 0, n)

	// Dense per-set scratch, reset between sets by sweeping the set list.
	inSet := make([]bool, n)
	frontier := make([]bool, n)

	for _, set := range sets {
		for _, v := range set {
			inSet[v] = true
		}
		remaining := 0
		for _, v := range set {
			if !ordered[v] {
				remaining++
			}
		}
		for remaining > 0 {
			// Seed the working frontier from already-ordered
			// neighbours; default to the set's most critical node.
			nFront, dir := seedFrontier(g, set, inSet, ordered, est, frontier)
			for nFront > 0 {
				var v int
				if dir == topDown {
					v = pickMin(set, frontier, lst, est)
				} else {
					v = pickMax(set, frontier, est, lst)
				}
				ordered[v] = true
				order = append(order, v)
				remaining--
				frontier[v] = false
				nFront--
				var next []int
				if dir == topDown {
					next = g.Succs(v)
				} else {
					next = g.Preds(v)
				}
				for _, u := range next {
					if inSet[u] && !ordered[u] && !frontier[u] {
						frontier[u] = true
						nFront++
					}
				}
			}
		}
		for _, v := range set {
			inSet[v] = false
		}
	}
	return order
}

type direction int

const (
	topDown direction = iota
	bottomUp
)

// seedFrontier fills `frontier` (dense, assumed all-false on entry) with the
// initial sweep frontier for one set: nodes of the set that are successors
// (top-down) or predecessors (bottom-up) of the already-ordered nodes; if
// neither exists, the sources of the set, or its single most critical node.
// Returns the frontier size and sweep direction.
func seedFrontier(g *ddg.Graph, set []int, inSet, ordered []bool, est []int, frontier []bool) (int, direction) {
	// Successors of ordered nodes first; fall back to predecessors.
	nSucc := 0
	for v := 0; v < g.N(); v++ {
		if !ordered[v] {
			continue
		}
		for _, u := range g.Succs(v) {
			if inSet[u] && !ordered[u] && !frontier[u] {
				frontier[u] = true
				nSucc++
			}
		}
	}
	if nSucc > 0 {
		return nSucc, topDown
	}
	nPred := 0
	for v := 0; v < g.N(); v++ {
		if !ordered[v] {
			continue
		}
		for _, u := range g.Preds(v) {
			if inSet[u] && !ordered[u] && !frontier[u] {
				frontier[u] = true
				nPred++
			}
		}
	}
	if nPred > 0 {
		return nPred, bottomUp
	}
	// Fresh component: seed with every source of the set (nodes without
	// predecessors inside the set), sweeping top-down. Seeding all
	// sources is essential: it keeps every operand producer ahead of its
	// consumer in the order, so the placement phase never wedges a
	// producer into an empty window below an already-placed consumer.
	nSrc := 0
	for _, v := range set {
		if ordered[v] {
			continue
		}
		hasPred := false
		for _, u := range g.Preds(v) {
			if u != v && inSet[u] {
				hasPred = true
				break
			}
		}
		if !hasPred {
			frontier[v] = true
			nSrc++
		}
	}
	if nSrc > 0 {
		return nSrc, topDown
	}
	// Pure cycle (recurrence without sources): start from the most
	// critical node.
	best, bestEst := -1, 0
	for _, v := range set {
		if ordered[v] {
			continue
		}
		if best == -1 || est[v] < bestEst || (est[v] == bestEst && v < best) {
			best, bestEst = v, est[v]
		}
	}
	if best == -1 {
		return 0, topDown
	}
	frontier[best] = true
	return 1, topDown
}

// pickMin selects the frontier node with the lowest primary value (Lstart
// for top-down sweeps), breaking ties by highest secondary (deeper nodes
// first) then lowest ID for determinism. The frontier is scanned through the
// set list, which visits node IDs in ascending order.
func pickMin(set []int, frontier []bool, primary, secondary []int) int {
	best := -1
	for _, v := range set {
		if !frontier[v] {
			continue
		}
		if best == -1 {
			best = v
			continue
		}
		switch {
		case primary[v] < primary[best]:
			best = v
		case primary[v] == primary[best] && secondary[v] > secondary[best]:
			best = v
		case primary[v] == primary[best] && secondary[v] == secondary[best] && v < best:
			best = v
		}
	}
	return best
}

// pickMax selects the frontier node with the highest primary value (Estart
// for bottom-up sweeps), ties by lowest secondary then lowest ID.
func pickMax(set []int, frontier []bool, primary, secondary []int) int {
	best := -1
	for _, v := range set {
		if !frontier[v] {
			continue
		}
		if best == -1 {
			best = v
			continue
		}
		switch {
		case primary[v] > primary[best]:
			best = v
		case primary[v] == primary[best] && secondary[v] < secondary[best]:
			best = v
		case primary[v] == primary[best] && secondary[v] == secondary[best] && v < best:
			best = v
		}
	}
	return best
}

// prioritySets partitions the nodes into the SMS priority sets: one set per
// recurrence (strongly connected component with a cycle), ordered by
// decreasing recurrence MII, each augmented with the nodes on dependence
// paths connecting it to higher-priority sets; a final set holds the
// remaining (acyclic) nodes.
func prioritySets(g *ddg.Graph) [][]int {
	sccs := tarjanSCC(g)
	type rec struct {
		nodes []int
		mii   int
	}
	var recs []rec
	for _, comp := range sccs {
		if isRecurrence(g, comp) {
			recs = append(recs, rec{nodes: comp, mii: componentRecMII(g, comp)})
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].mii != recs[j].mii {
			return recs[i].mii > recs[j].mii
		}
		return recs[i].nodes[0] < recs[j].nodes[0]
	})

	n := g.N()
	placed := make([]bool, n)
	inSet := make([]bool, n)
	var sets [][]int
	var unionSoFar []int
	for _, r := range recs {
		for _, v := range r.nodes {
			if !placed[v] {
				inSet[v] = true
			}
		}
		// Nodes on paths between previous sets and this recurrence:
		// ancestors of this recurrence that are descendants of the
		// union so far (and vice versa).
		if len(unionSoFar) > 0 {
			anc := reach(g, r.nodes, false)
			desc := reach(g, r.nodes, true)
			prevDesc := reach(g, unionSoFar, true)
			prevAnc := reach(g, unionSoFar, false)
			for v := 0; v < n; v++ {
				if placed[v] || inSet[v] {
					continue
				}
				if (anc[v] && prevDesc[v]) || (desc[v] && prevAnc[v]) {
					inSet[v] = true
				}
			}
		}
		var list []int
		for v := 0; v < n; v++ {
			if inSet[v] {
				list = append(list, v)
				inSet[v] = false
			}
		}
		if len(list) > 0 {
			sets = append(sets, list)
			for _, v := range list {
				placed[v] = true
				unionSoFar = append(unionSoFar, v)
			}
		}
	}
	var rest []int
	for v := 0; v < n; v++ {
		if !placed[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) > 0 {
		sets = append(sets, rest)
	}
	return sets
}

// isRecurrence reports whether the SCC contains a dependence cycle (more
// than one node, or a self edge).
func isRecurrence(g *ddg.Graph, comp []int) bool {
	if len(comp) > 1 {
		return true
	}
	v := comp[0]
	for _, ei := range g.OutEdges(v) {
		if g.Edges[ei].To == v {
			return true
		}
	}
	return false
}

// componentRecMII returns the minimum II feasible for the cycles inside one
// SCC: the smallest ii such that the subgraph has no positive cycle with
// weights latency − ii·distance. The component's edges are collected once
// and the Bellman-Ford distance slice is reused across II candidates.
func componentRecMII(g *ddg.Graph, comp []int) int {
	in := make([]bool, g.N())
	for _, v := range comp {
		in[v] = true
	}
	var edges []int
	hi := 1
	for ei, e := range g.Edges {
		if in[e.From] && in[e.To] {
			edges = append(edges, ei)
			hi += g.Latency(ei)
		}
	}
	dist := make([]int64, g.N())
	for ii := 1; ii <= hi; ii++ {
		if !hasPositiveCycleIn(g, comp, edges, dist, ii) {
			return ii
		}
	}
	return hi
}

// hasPositiveCycleIn runs Bellman-Ford longest-path relaxation restricted to
// the component's nodes and edges: a further improvement after |comp| rounds
// implies a positive cycle at this II. dist is caller-provided scratch
// indexed by node ID; only the component's entries are touched.
func hasPositiveCycleIn(g *ddg.Graph, comp []int, edges []int, dist []int64, ii int) bool {
	for _, v := range comp {
		dist[v] = 0
	}
	for iter := 0; iter < len(comp); iter++ {
		changed := false
		for _, ei := range edges {
			e := &g.Edges[ei]
			w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	for _, ei := range edges {
		e := &g.Edges[ei]
		w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
		if dist[e.From]+w > dist[e.To] {
			return true
		}
	}
	return false
}

// reach returns the set of nodes reachable from seeds following edges
// forward (descendants) or backward (ancestors).
func reach(g *ddg.Graph, seeds []int, forward bool) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), seeds...)
	for _, v := range seeds {
		seen[v] = true
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var next []int
		if forward {
			next = g.Succs(v)
		} else {
			next = g.Preds(v)
		}
		for _, u := range next {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return seen
}

// tarjanSCC returns the strongly connected components of the graph in
// reverse topological order of the condensation.
func tarjanSCC(g *ddg.Graph) [][]int {
	n := g.N()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	// Iterative Tarjan to avoid recursion limits on big unrolled bodies.
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		var call []frame
		call = append(call, frame{root, 0})
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			edges := g.OutEdges(v)
			if f.ei < len(edges) {
				w := g.Edges[edges[f.ei]].To
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
