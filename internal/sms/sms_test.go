package sms

import (
	"testing"
	"testing/quick"

	"repro/internal/alias"
	"repro/internal/ddg"
	"repro/internal/ir"
)

func buildGraph(t *testing.T, body func(b *ir.Builder)) *ddg.Graph {
	t.Helper()
	b := ir.NewBuilder("t", 64)
	body(b)
	l, err := b.BuildErr()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	als := alias.Analyze(l)
	return ddg.Build(l, ddg.DefaultLatencies(6), als.Edges)
}

func TestOrderIsPermutation(t *testing.T) {
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v1 := b.Load("ld1", a, 0, 4, 4)
		v2 := b.Load("ld2", a, 2048, 4, 4)
		x := b.Int("mix", v1, v2)
		y := b.Int("op", x)
		b.Store("st", d, 0, 4, 4, y)
	})
	order := Order(g, 2)
	if len(order) != g.N() {
		t.Fatalf("order length %d != %d nodes", len(order), g.N())
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d ordered twice", v)
		}
		seen[v] = true
	}
}

func TestAllSourcesPrecedeJointConsumer(t *testing.T) {
	// Both loads must be ordered before the op that consumes them —
	// the property that keeps the placement phase from wedging.
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v1 := b.Load("ld1", a, 0, 4, 4)
		v2 := b.Load("ld2", a, 2048, 4, 4)
		x := b.Int("mix", v1, v2)
		b.Store("st", d, 0, 4, 4, x)
	})
	order := Order(g, 2)
	pos := make([]int, g.N())
	for p, v := range order {
		pos[v] = p
	}
	if pos[0] > pos[2] || pos[1] > pos[2] {
		t.Errorf("a load ordered after its consumer: order %v", order)
	}
}

func TestRecurrenceOrderedFirst(t *testing.T) {
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4) // node 0, not in the recurrence
		acc := b.SelfRecurrence("acc", 1, v)
		b.Store("st", d, 0, 4, 4, acc)
	})
	order := Order(g, 7)
	// The recurrence node (1) must come before the non-recurrence store,
	// and before the load feeding it (recurrences get priority).
	pos := make([]int, g.N())
	for p, v := range order {
		pos[v] = p
	}
	if pos[1] != 0 {
		t.Errorf("recurrence node not ordered first: order %v", order)
	}
}

func TestDeepestRecurrenceFirst(t *testing.T) {
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		// Shallow recurrence: 1-op cycle (RecMII 1).
		v1 := b.Load("ld1", a, 0, 4, 4)
		b.SelfRecurrence("shallow", 1, v1)
		// Deep recurrence: 3-op cycle (RecMII 3).
		v2 := b.Load("ld2", a, 2048, 4, 4)
		x := b.Int("c1", v2)
		y := b.Int("c2", x)
		z := b.Int("c3", y)
		b.CarryInto(x, z, 1)
	})
	order := Order(g, 3)
	pos := make([]int, g.N())
	for p, v := range order {
		pos[v] = p
	}
	// Nodes 3,4,5 (deep cycle) must precede node 1 (shallow cycle).
	if !(pos[3] < pos[1] && pos[4] < pos[1] && pos[5] < pos[1]) {
		t.Errorf("deeper recurrence not prioritised: order %v", order)
	}
}

func TestAdjacencyProperty(t *testing.T) {
	// Every ordered node after the first within a connected component has
	// at least one already-ordered neighbour — SMS's defining property.
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v1 := b.Load("ld1", a, 0, 4, 4)
		x1 := b.Int("o1", v1)
		x2 := b.Int("o2", x1)
		v2 := b.Load("ld2", a, 2048, 4, 4)
		m := b.Int("mix", x2, v2)
		b.Store("st", d, 0, 4, 4, m)
	})
	order := Order(g, 2)
	ordered := map[int]bool{}
	for i, v := range order {
		// Source nodes (no predecessors) are seeded together and are
		// exempt; every other node must touch the ordered prefix.
		if i > 0 && len(g.Preds(v)) > 0 {
			// Preds/Succs return shared cache slices: concatenate
			// into a fresh slice rather than appending in place.
			neighbours := make([]int, 0, len(g.Preds(v))+len(g.Succs(v)))
			neighbours = append(neighbours, g.Preds(v)...)
			neighbours = append(neighbours, g.Succs(v)...)
			hasNeighbor := false
			for _, u := range neighbours {
				if ordered[u] {
					hasNeighbor = true
				}
			}
			if !hasNeighbor {
				t.Errorf("node %d ordered without any ordered neighbour (position %d)", v, i)
			}
		}
		ordered[v] = true
	}
}

func TestOrderDeterministic(t *testing.T) {
	mk := func() []int {
		g := buildGraph(t, func(b *ir.Builder) {
			a := b.Array("a", 4096, 4)
			d := b.Array("d", 4096, 4)
			v1 := b.Load("ld1", a, 0, 4, 4)
			v2 := b.Load("ld2", a, 1024, 4, 4)
			v3 := b.Load("ld3", a, 2048, 4, 4)
			x := b.Int("m1", v1, v2)
			y := b.Int("m2", x, v3)
			b.Store("st", d, 0, 4, 4, y)
		})
		return Order(g, 2)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestOrderCoversDisconnectedComponents(t *testing.T) {
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		c := b.Array("c", 4096, 4)
		b.Load("ld1", a, 0, 4, 4)
		b.Load("ld2", c, 0, 4, 4)
	})
	err := quick.Check(func(iiRaw uint8) bool {
		ii := int(iiRaw%6) + 1
		return len(Order(g, ii)) == g.N()
	}, nil)
	if err != nil {
		t.Errorf("order misses nodes: %v", err)
	}
}

func TestTarjanFindsCycleComponents(t *testing.T) {
	g := buildGraph(t, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		x := b.Int("c1", v)
		y := b.Int("c2", x)
		b.CarryInto(x, y, 1)
	})
	comps := tarjanSCC(g)
	var cyc [][]int
	for _, c := range comps {
		if len(c) > 1 {
			cyc = append(cyc, c)
		}
	}
	if len(cyc) != 1 || len(cyc[0]) != 2 {
		t.Errorf("expected one 2-node SCC, got %v", comps)
	}
}
