package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func simpleLoop(t *testing.T) *Loop {
	t.Helper()
	b := NewBuilder("simple", 100)
	a := b.Array("a", 4096, 4)
	d := b.Array("d", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	x := b.Int("add", v)
	b.Store("st", d, 0, 4, 4, x)
	return b.Build()
}

func TestBuilderProducesValidLoop(t *testing.T) {
	l := simpleLoop(t)
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(l.Instrs) != 3 {
		t.Fatalf("got %d instrs, want 3", len(l.Instrs))
	}
	if l.Unroll != 1 {
		t.Errorf("Unroll = %d, want 1", l.Unroll)
	}
}

func TestValidateRejectsDoubleDef(t *testing.T) {
	l := simpleLoop(t)
	l.Instrs[1].Dst = l.Instrs[0].Dst // redefine the load's register
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted a double definition")
	}
}

func TestValidateRejectsUndefinedUse(t *testing.T) {
	l := simpleLoop(t)
	l.Instrs[1].Srcs = []Reg{999}
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted an undefined register use")
	}
}

func TestValidateRejectsMissingMem(t *testing.T) {
	l := simpleLoop(t)
	l.Instrs[0].Mem = nil
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted a load without a memory access")
	}
}

func TestValidateRejectsBadWidth(t *testing.T) {
	l := simpleLoop(t)
	l.Instrs[0].Mem.Width = 3
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted width 3")
	}
}

func TestValidateRejectsZeroTrip(t *testing.T) {
	l := simpleLoop(t)
	l.TripCount = 0
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted trip count 0")
	}
}

func TestValidateRejectsScrambledKnownStride(t *testing.T) {
	l := simpleLoop(t)
	l.Instrs[0].Mem.Scramble = 7
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted scrambled access with known stride")
	}
}

func TestValidateRejectsNonPositiveCarryDistance(t *testing.T) {
	b := NewBuilder("carry", 10)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 4, 4)
	r := b.SelfRecurrence("acc", 1, v)
	l := b.Build()
	l.DefOf(r).Carried[0].Distance = 0
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted carried distance 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := simpleLoop(t)
	c := l.Clone()
	c.Instrs[0].Mem.Offset = 1234
	c.Instrs[0].Srcs = append(c.Instrs[0].Srcs, 42)
	if l.Instrs[0].Mem.Offset == 1234 {
		t.Errorf("Clone shares MemAccess with the original")
	}
	if len(l.Instrs[0].Srcs) != 0 {
		t.Errorf("Clone shares Srcs with the original")
	}
	// Arrays are identity objects and must be shared.
	if c.Instrs[0].Mem.Array != l.Instrs[0].Mem.Array {
		t.Errorf("Clone must share Array identities")
	}
}

func TestDefOf(t *testing.T) {
	l := simpleLoop(t)
	if l.DefOf(l.Instrs[0].Dst) != l.Instrs[0] {
		t.Errorf("DefOf(load dst) != load")
	}
	if l.DefOf(NoReg) != nil {
		t.Errorf("DefOf(NoReg) != nil")
	}
	if l.DefOf(777) != nil {
		t.Errorf("DefOf(undefined) != nil")
	}
}

func TestMemRefs(t *testing.T) {
	l := simpleLoop(t)
	refs := l.MemRefs()
	if len(refs) != 2 {
		t.Fatalf("MemRefs = %d, want 2", len(refs))
	}
	if refs[0].Op != OpLoad || refs[1].Op != OpStore {
		t.Errorf("MemRefs order wrong: %v %v", refs[0].Op, refs[1].Op)
	}
}

func TestAddrAtAffine(t *testing.T) {
	m := &MemAccess{Array: &Array{Base: 1000, SizeBytes: 4096}, Offset: 8, Stride: 4, StrideKnown: true, Width: 4}
	for i, want := range map[int64]int64{0: 1008, 1: 1012, 10: 1048} {
		if got := m.AddrAt(i); got != want {
			t.Errorf("AddrAt(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestAddrAtPeriodic(t *testing.T) {
	m := &MemAccess{Array: &Array{Base: 0, SizeBytes: 4096}, Stride: 4, StrideKnown: true, Width: 4, IndexPeriod: 4}
	if m.AddrAt(0) != m.AddrAt(4) || m.AddrAt(1) != m.AddrAt(5) {
		t.Errorf("periodic access does not wrap at the period")
	}
	if m.AddrAt(0) == m.AddrAt(1) {
		t.Errorf("periodic access degenerate")
	}
}

func TestAddrAtPhase(t *testing.T) {
	// PhaseFactor recovers the original index: i*4 + 2.
	m := &MemAccess{Array: &Array{Base: 0, SizeBytes: 4096}, Stride: 2, StrideKnown: true, Width: 2, PhaseFactor: 4, PhaseOffset: 2}
	if got, want := m.AddrAt(3), int64((3*4+2)*2); got != want {
		t.Errorf("AddrAt with phase = %d, want %d", got, want)
	}
}

func TestAddrAtScrambleStaysInBounds(t *testing.T) {
	arr := &Array{Base: 5000, SizeBytes: 1024}
	m := &MemAccess{Array: arr, Width: 4, Scramble: 12345}
	err := quick.Check(func(i int64) bool {
		if i < 0 {
			i = -i
		}
		a := m.AddrAt(i)
		return a >= arr.Base && a+int64(m.Width) <= arr.Base+arr.SizeBytes
	}, nil)
	if err != nil {
		t.Errorf("scrambled address out of bounds: %v", err)
	}
}

func TestAddrAtScrambleDeterministic(t *testing.T) {
	arr := &Array{Base: 0, SizeBytes: 4096}
	m1 := &MemAccess{Array: arr, Width: 4, Scramble: 99}
	m2 := &MemAccess{Array: arr, Width: 4, Scramble: 99}
	for i := int64(0); i < 64; i++ {
		if m1.AddrAt(i) != m2.AddrAt(i) {
			t.Fatalf("scramble not deterministic at %d", i)
		}
	}
}

func TestElemStride(t *testing.T) {
	m := &MemAccess{Stride: 8, Width: 2}
	if m.ElemStride() != 4 {
		t.Errorf("ElemStride = %d, want 4", m.ElemStride())
	}
	m = &MemAccess{Stride: 3, Width: 2}
	if m.ElemStride() != 3 {
		t.Errorf("non-divisible ElemStride = %d, want byte value 3", m.ElemStride())
	}
}

func TestIsCandidate(t *testing.T) {
	l := simpleLoop(t)
	if !l.Instrs[0].IsCandidate() {
		t.Errorf("strided load should be a candidate")
	}
	if l.Instrs[1].IsCandidate() {
		t.Errorf("ALU op should not be a candidate")
	}
	l.Instrs[0].Mem.StrideKnown = false
	if l.Instrs[0].IsCandidate() {
		t.Errorf("unknown-stride load should not be a candidate")
	}
}

func TestOpcodeClasses(t *testing.T) {
	memOps := []Opcode{OpLoad, OpStore, OpPrefetch, OpInval}
	for _, op := range memOps {
		if !op.IsMem() {
			t.Errorf("%v.IsMem() = false", op)
		}
	}
	if OpIntALU.IsMem() || OpComm.IsMem() {
		t.Errorf("non-memory op classified as memory")
	}
	if !OpLoad.IsMemRef() || !OpStore.IsMemRef() {
		t.Errorf("load/store must be memory references")
	}
	if OpPrefetch.IsMemRef() || OpInval.IsMemRef() {
		t.Errorf("prefetch/inval are not memory references for aliasing")
	}
}

func TestDefaultLatencies(t *testing.T) {
	if OpIntALU.DefaultLatency() != 1 || OpIntMul.DefaultLatency() != 2 ||
		OpFPALU.DefaultLatency() != 2 || OpFPMul.DefaultLatency() != 4 {
		t.Errorf("unexpected default latencies")
	}
}

func TestStringRendering(t *testing.T) {
	l := simpleLoop(t)
	s := l.String()
	for _, want := range []string{"simple", "load", "store", "stride 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Loop.String() missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderErr(t *testing.T) {
	b := NewBuilder("bad", 10)
	b.CarryInto(42, 1, 1) // no such consumer register
	if _, err := b.BuildErr(); err == nil {
		t.Errorf("BuildErr accepted CarryInto on undefined register")
	}
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Build did not panic on invalid loop")
		}
	}()
	b := NewBuilder("empty", 10)
	b.Build() // no instructions
}

func TestBuilderFullOpcodeSurface(t *testing.T) {
	b := NewBuilder("all", 64)
	a := b.Array("a", 4096, 4)
	tab := b.Array("tab", 2048, 2)
	v := b.Load("ld", a, 0, 4, 4)
	p := b.LoadPeriodic("ldp", a, 0, 4, 4, 8)
	ix := b.LoadIndexed("ldx", tab, 2, 5, v)
	m := b.IntMul("mul", v, p)
	f := b.FP("fadd", m)
	fm := b.FPMul("fmul", f)
	r := b.Recurrence("rec", v, 2, fm)
	fr := b.FPSelfRecurrence("facc", 1, r)
	b.StoreIndexed("stx", tab, 2, 5, ix)
	b.Store("st", a, 0, 4, 4, fr)
	b.Specialized()
	l := b.Build()

	if !l.Specialized {
		t.Errorf("Specialized not set")
	}
	wantOps := []Opcode{OpLoad, OpLoad, OpLoad, OpIntMul, OpFPALU, OpFPMul, OpIntALU, OpFPALU, OpStore, OpStore}
	for i, op := range wantOps {
		if l.Instrs[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, l.Instrs[i].Op, op)
		}
	}
	if l.Instrs[1].Mem.IndexPeriod != 8 {
		t.Errorf("LoadPeriodic period lost")
	}
	if l.Instrs[2].Mem.Scramble != 5 || l.Instrs[2].Mem.StrideKnown {
		t.Errorf("LoadIndexed not scrambled")
	}
	if len(l.Instrs[2].Srcs) != 1 || l.Instrs[2].Srcs[0] != v {
		t.Errorf("LoadIndexed index register lost")
	}
	if got := l.Instrs[6].Carried; len(got) != 1 || got[0].Reg != v || got[0].Distance != 2 {
		t.Errorf("Recurrence carried use = %+v", got)
	}
	if got := l.Instrs[7].Carried; len(got) != 1 || got[0].Reg != l.Instrs[7].Dst {
		t.Errorf("FPSelfRecurrence must carry its own value")
	}
	if l.Instrs[8].Mem.Scramble != 5 {
		t.Errorf("StoreIndexed not scrambled")
	}
}

func TestLoadIndexedZeroSeedNormalised(t *testing.T) {
	b := NewBuilder("z", 16)
	tab := b.Array("t", 256, 2)
	b.LoadIndexed("ld", tab, 2, 0, NoReg)
	l := b.Build()
	if l.Instrs[0].Mem.Scramble == 0 {
		t.Errorf("zero seed must be normalised to nonzero (scramble requires it)")
	}
}

func TestEnumStringsCoverUnknown(t *testing.T) {
	if Opcode(250).String() == "" || Reg(0).String() != "_" {
		t.Errorf("fallback strings broken")
	}
	in := &Instr{Op: OpLoad, Dst: 3, Srcs: []Reg{1}, Carried: []CarriedUse{{Reg: 2, Distance: 1}},
		Mem: &MemAccess{Array: &Array{Name: "a"}, Offset: 4, Stride: 2, Width: 2}}
	s := in.String()
	for _, want := range []string{"load", "r3", "r1", "r2@-1", "[a+4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Instr.String() = %q missing %q", s, want)
		}
	}
	var nilArr *Array
	if nilArr.String() != "<nil array>" {
		t.Errorf("nil array string = %q", nilArr.String())
	}
}

func TestBuildErrSuccessPath(t *testing.T) {
	b := NewBuilder("ok", 8)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.Int("op", v)
	if _, err := b.BuildErr(); err != nil {
		t.Errorf("BuildErr on valid loop: %v", err)
	}
}
