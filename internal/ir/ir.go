// Package ir defines the loop intermediate representation the scheduler
// works on: innermost loops made of virtual-register instructions with
// affine (base + stride·i) memory accesses.
//
// The representation is deliberately close to what a modulo scheduler needs
// and nothing more: every instruction defines at most one virtual register
// (single static assignment within the loop body), same-iteration register
// uses are listed in Srcs, and loop-carried register uses (recurrences) carry
// an explicit iteration distance. Memory dependences are not stored here;
// package alias derives them from the affine access summaries.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register number. NoReg (0) means "no register".
type Reg int

// NoReg is the absent-register sentinel.
const NoReg Reg = 0

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int(r))
}

// Opcode enumerates the operation classes the machine executes. The
// scheduler only cares about the functional-unit class and latency of each
// opcode; the simulator additionally interprets memory opcodes.
type Opcode uint8

const (
	// OpNop does nothing and occupies no unit; used in tests.
	OpNop Opcode = iota
	// OpIntALU is a 1-cycle integer operation (add, sub, logic, compare).
	OpIntALU
	// OpIntMul is a 2-cycle integer multiply.
	OpIntMul
	// OpFPALU is a 2-cycle floating-point add/sub/convert.
	OpFPALU
	// OpFPMul is a 4-cycle floating-point multiply (or divide step).
	OpFPMul
	// OpLoad reads memory; its latency is assigned by the scheduler
	// (L0 or L1 latency).
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpComm copies a register to another cluster over an inter-cluster
	// bus. Inserted by the scheduler, never present in source loops.
	OpComm
	// OpInval invalidates every entry of one cluster's L0 buffer.
	// Scheduled at loop boundaries for inter-loop coherence.
	OpInval
	// OpPrefetch is an explicit software prefetch from L1 into the local
	// L0 buffer (scheduling step 5). It occupies a memory slot but has no
	// register result.
	OpPrefetch
)

var opcodeNames = [...]string{
	OpNop:      "nop",
	OpIntALU:   "int",
	OpIntMul:   "imul",
	OpFPALU:    "fadd",
	OpFPMul:    "fmul",
	OpLoad:     "load",
	OpStore:    "store",
	OpComm:     "comm",
	OpInval:    "inval",
	OpPrefetch: "pref",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// IsMem reports whether the opcode occupies a memory functional unit.
func (op Opcode) IsMem() bool {
	switch op {
	case OpLoad, OpStore, OpPrefetch, OpInval:
		return true
	}
	return false
}

// IsMemRef reports whether the opcode references a memory address
// (participates in memory dependences and L0 hinting).
func (op Opcode) IsMemRef() bool { return op == OpLoad || op == OpStore }

// DefaultLatency returns the fixed execute latency of non-memory opcodes and
// the latency of stores (which have no consumer of a result). Load latency is
// a scheduling decision (L0 vs L1) and must not be read from here.
func (op Opcode) DefaultLatency() int {
	switch op {
	case OpIntALU:
		return 1
	case OpIntMul:
		return 2
	case OpFPALU:
		return 2
	case OpFPMul:
		return 4
	case OpStore, OpPrefetch, OpInval, OpComm, OpNop:
		return 1
	}
	return 1
}

// Array is a symbolic data object referenced by memory instructions. The
// workload generator assigns each array a concrete base address before
// simulation.
type Array struct {
	Name string
	// Base is the byte address of element 0; filled in by the address
	// mapper before simulation. Alias analysis uses identity + offsets,
	// not Base.
	Base int64
	// SizeBytes is the extent of the array.
	SizeBytes int64
	// ElemBytes is the natural element width.
	ElemBytes int
}

func (a *Array) String() string {
	if a == nil {
		return "<nil array>"
	}
	return a.Name
}

// MemAccess summarises the address stream of one memory instruction as an
// affine function of the loop counter: addr(i) = Array.Base + Offset +
// Stride·i. Non-affine accesses (pointer chasing, data-dependent indexing)
// set StrideKnown = false and are handled conservatively everywhere.
type MemAccess struct {
	Array *Array
	// Offset is the byte offset of the iteration-0 access.
	Offset int64
	// Stride is the byte distance between consecutive iterations.
	Stride int64
	// StrideKnown reports whether the compiler could prove the stride.
	// Unknown-stride instructions are never L0 candidates.
	StrideKnown bool
	// Width is the access width in bytes (1, 2, 4 or 8).
	Width int
	// IndexPeriod, when > 1, makes the access wrap: addr(i) uses i mod
	// IndexPeriod instead of i. Used to model re-walked coefficient
	// arrays (FIR taps, quantisation tables) with small working sets.
	IndexPeriod int
	// Scramble, when nonzero, permutes the index pseudo-randomly within
	// the array (addr depends on a hash of i). It models data-dependent
	// table lookups: StrideKnown must be false for such accesses.
	Scramble uint64
	// PhaseFactor/PhaseOffset recover the original loop index after
	// unrolling when the affine rewrite is not exact (periodic accesses
	// whose period does not divide the unroll factor, and scrambled
	// accesses, which must keep their original scatter stream): when
	// PhaseFactor > 1 the logical index is i·PhaseFactor + PhaseOffset
	// before IndexPeriod/Scramble/stride apply.
	PhaseFactor int
	PhaseOffset int
}

// AddrAt returns the byte address of the access at iteration i.
func (m *MemAccess) AddrAt(i int64) int64 {
	idx := i
	if m.PhaseFactor > 1 {
		idx = i*int64(m.PhaseFactor) + int64(m.PhaseOffset)
	}
	if m.IndexPeriod > 1 {
		idx = idx % int64(m.IndexPeriod)
	}
	if m.Scramble != 0 {
		// Deterministic hash scatter within the array extent.
		h := uint64(idx)*m.Scramble + 0x9e3779b97f4a7c15
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		span := m.Array.SizeBytes - int64(m.Width)
		if span <= 0 {
			return m.Array.Base
		}
		n := span / int64(m.Width)
		if n <= 0 {
			n = 1
		}
		return m.Array.Base + int64(h%uint64(n))*int64(m.Width)
	}
	return m.Array.Base + m.Offset + m.Stride*idx
}

// ElemStride returns the stride in elements (access widths). A stride that
// is not a whole number of elements is reported as its byte value.
func (m *MemAccess) ElemStride() int64 {
	if m.Width > 0 && m.Stride%int64(m.Width) == 0 {
		return m.Stride / int64(m.Width)
	}
	return m.Stride
}

// CarriedUse is a loop-carried register input: the value of Reg produced
// Distance iterations earlier.
type CarriedUse struct {
	Reg      Reg
	Distance int
}

// Instr is one operation of the loop body.
type Instr struct {
	// ID is the index of the instruction within Loop.Instrs.
	ID int
	// Name is an optional human-readable label for dumps and tests.
	Name string
	Op   Opcode
	// Dst is the virtual register defined, or NoReg.
	Dst Reg
	// Srcs are same-iteration register uses.
	Srcs []Reg
	// Carried are loop-carried register uses (recurrences).
	Carried []CarriedUse
	// Mem is the address summary for OpLoad/OpStore/OpPrefetch.
	Mem *MemAccess
	// UnrollCopy records which copy of the original body this
	// instruction belongs to after unrolling (0-based; 0 before
	// unrolling).
	UnrollCopy int
	// OrigID is the instruction's ID in the pre-unroll body.
	OrigID int
	// ReplicaGroup links the N instances of a store replicated by
	// partial store replication (PSR, §4.1); 0 means not replicated.
	// Exactly one instance per group has PrimaryReplica set: it performs
	// the actual store, the others only invalidate their local L0 entry.
	ReplicaGroup   int
	PrimaryReplica bool
}

// IsCandidate reports whether the instruction is an L0 candidate per §4.3:
// a memory reference with a compiler-known stride.
func (in *Instr) IsCandidate() bool {
	return in.Op.IsMemRef() && in.Mem != nil && in.Mem.StrideKnown
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.Name != "" {
		fmt.Fprintf(&b, "%s: ", in.Name)
	}
	fmt.Fprintf(&b, "%s", in.Op)
	if in.Dst != NoReg {
		fmt.Fprintf(&b, " %s =", in.Dst)
	}
	for _, s := range in.Srcs {
		fmt.Fprintf(&b, " %s", s)
	}
	for _, c := range in.Carried {
		fmt.Fprintf(&b, " %s@-%d", c.Reg, c.Distance)
	}
	if in.Mem != nil {
		fmt.Fprintf(&b, " [%s+%d, stride %d, w%d]", in.Mem.Array, in.Mem.Offset, in.Mem.Stride, in.Mem.Width)
	}
	return b.String()
}

// Loop is one innermost loop: the unit of modulo scheduling.
type Loop struct {
	Name   string
	Instrs []*Instr
	// TripCount is the dynamic iteration count of the (original,
	// pre-unroll) loop used by the simulator.
	TripCount int64
	// Unroll is the unroll factor already applied (1 = original body).
	Unroll int
	// Specialized marks loops where code specialization (§4.1) proved
	// the aggressive memory-dependence sets; alias analysis then drops
	// conservative unknown-alias edges.
	Specialized bool
}

// Clone returns a deep copy of the loop (instructions and accesses copied,
// arrays shared — arrays are identity objects).
func (l *Loop) Clone() *Loop {
	nl := &Loop{
		Name:        l.Name,
		TripCount:   l.TripCount,
		Unroll:      l.Unroll,
		Specialized: l.Specialized,
		Instrs:      make([]*Instr, len(l.Instrs)),
	}
	for i, in := range l.Instrs {
		ci := *in
		ci.Srcs = append([]Reg(nil), in.Srcs...)
		ci.Carried = append([]CarriedUse(nil), in.Carried...)
		if in.Mem != nil {
			m := *in.Mem
			ci.Mem = &m
		}
		nl.Instrs[i] = &ci
	}
	return nl
}

// DefOf returns the instruction defining reg, or nil.
func (l *Loop) DefOf(reg Reg) *Instr {
	if reg == NoReg {
		return nil
	}
	for _, in := range l.Instrs {
		if in.Dst == reg {
			return in
		}
	}
	return nil
}

// MemRefs returns the loop's load and store instructions in body order.
func (l *Loop) MemRefs() []*Instr {
	var out []*Instr
	for _, in := range l.Instrs {
		if in.Op.IsMemRef() {
			out = append(out, in)
		}
	}
	return out
}

// Validate checks structural invariants: IDs match positions, registers have
// a single definition, every use refers to a defined register or a carried
// value, memory instructions carry an access summary, widths are sane.
func (l *Loop) Validate() error {
	if len(l.Instrs) == 0 {
		return fmt.Errorf("ir: loop %q has no instructions", l.Name)
	}
	if l.TripCount <= 0 {
		return fmt.Errorf("ir: loop %q has non-positive trip count %d", l.Name, l.TripCount)
	}
	defs := make(map[Reg]*Instr)
	for i, in := range l.Instrs {
		if in.ID != i {
			return fmt.Errorf("ir: loop %q instr %d has ID %d", l.Name, i, in.ID)
		}
		if in.Dst != NoReg {
			if prev, dup := defs[in.Dst]; dup {
				return fmt.Errorf("ir: loop %q: %s redefined by %q (first defined by %q)", l.Name, in.Dst, in, prev)
			}
			defs[in.Dst] = in
		}
		switch in.Op {
		case OpLoad, OpStore, OpPrefetch:
			if in.Mem == nil {
				return fmt.Errorf("ir: loop %q: %q lacks a memory access summary", l.Name, in)
			}
			if in.Mem.Array == nil {
				return fmt.Errorf("ir: loop %q: %q references a nil array", l.Name, in)
			}
			switch in.Mem.Width {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("ir: loop %q: %q has invalid access width %d", l.Name, in, in.Mem.Width)
			}
			if in.Mem.Scramble != 0 && in.Mem.StrideKnown {
				return fmt.Errorf("ir: loop %q: %q is scrambled but claims a known stride", l.Name, in)
			}
		case OpComm:
			return fmt.Errorf("ir: loop %q: %q: OpComm must not appear in source loops", l.Name, in)
		}
		if in.Op == OpLoad && in.Dst == NoReg {
			return fmt.Errorf("ir: loop %q: load %q defines no register", l.Name, in)
		}
	}
	for _, in := range l.Instrs {
		for _, s := range in.Srcs {
			if s == NoReg {
				return fmt.Errorf("ir: loop %q: %q uses NoReg", l.Name, in)
			}
			if _, ok := defs[s]; !ok {
				return fmt.Errorf("ir: loop %q: %q uses %s which no instruction defines", l.Name, in, s)
			}
		}
		for _, c := range in.Carried {
			if c.Distance <= 0 {
				return fmt.Errorf("ir: loop %q: %q carried use of %s has non-positive distance %d", l.Name, in, c.Reg, c.Distance)
			}
			if _, ok := defs[c.Reg]; !ok {
				return fmt.Errorf("ir: loop %q: %q carries %s which no instruction defines", l.Name, in, c.Reg)
			}
		}
	}
	return nil
}

func (l *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %q (trip %d, unroll %d):\n", l.Name, l.TripCount, l.Unroll)
	for _, in := range l.Instrs {
		fmt.Fprintf(&b, "  %2d: %s\n", in.ID, in)
	}
	return b.String()
}
