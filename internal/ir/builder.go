package ir

import "fmt"

// Builder constructs loops programmatically. It allocates virtual registers,
// assigns instruction IDs, and produces a validated Loop. Workload kernels
// and tests use it; nothing in the compiler mutates loops except through the
// unroller.
type Builder struct {
	loop    *Loop
	nextReg Reg
	err     error
}

// NewBuilder starts a loop with the given name and trip count.
func NewBuilder(name string, tripCount int64) *Builder {
	return &Builder{
		loop:    &Loop{Name: name, TripCount: tripCount, Unroll: 1},
		nextReg: 1,
	}
}

// Array declares a data object used by the loop's memory instructions.
func (b *Builder) Array(name string, sizeBytes int64, elemBytes int) *Array {
	return &Array{Name: name, SizeBytes: sizeBytes, ElemBytes: elemBytes}
}

// fail records the first construction error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *Builder) newReg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

func (b *Builder) add(in *Instr) *Instr {
	in.ID = len(b.loop.Instrs)
	in.OrigID = in.ID
	b.loop.Instrs = append(b.loop.Instrs, in)
	return in
}

// Load adds a strided load: addr(i) = array + offset + stride·i, width bytes.
// It returns the defined register.
func (b *Builder) Load(name string, a *Array, offset, stride int64, width int) Reg {
	dst := b.newReg()
	b.add(&Instr{
		Name: name, Op: OpLoad, Dst: dst,
		Mem: &MemAccess{Array: a, Offset: offset, Stride: stride, StrideKnown: true, Width: width},
	})
	return dst
}

// LoadPeriodic adds a strided load whose index wraps every period iterations
// (re-walked coefficient tables).
func (b *Builder) LoadPeriodic(name string, a *Array, offset, stride int64, width, period int) Reg {
	dst := b.newReg()
	b.add(&Instr{
		Name: name, Op: OpLoad, Dst: dst,
		Mem: &MemAccess{Array: a, Offset: offset, Stride: stride, StrideKnown: true, Width: width, IndexPeriod: period},
	})
	return dst
}

// LoadIndexed adds a data-dependent (unknown stride) load: the address is a
// pseudo-random scatter over the array keyed by seed. idx is the register
// the address computation consumes (models the table index).
func (b *Builder) LoadIndexed(name string, a *Array, width int, seed uint64, idx Reg) Reg {
	if seed == 0 {
		seed = 1
	}
	dst := b.newReg()
	in := &Instr{
		Name: name, Op: OpLoad, Dst: dst,
		Mem: &MemAccess{Array: a, StrideKnown: false, Width: width, Scramble: seed},
	}
	if idx != NoReg {
		in.Srcs = []Reg{idx}
	}
	b.add(in)
	return dst
}

// Store adds a strided store of val.
func (b *Builder) Store(name string, a *Array, offset, stride int64, width int, val Reg) {
	in := &Instr{
		Name: name, Op: OpStore,
		Mem: &MemAccess{Array: a, Offset: offset, Stride: stride, StrideKnown: true, Width: width},
	}
	if val != NoReg {
		in.Srcs = []Reg{val}
	}
	b.add(in)
}

// StoreIndexed adds a data-dependent store (histogram updates etc.).
func (b *Builder) StoreIndexed(name string, a *Array, width int, seed uint64, val Reg) {
	if seed == 0 {
		seed = 1
	}
	in := &Instr{
		Name: name, Op: OpStore,
		Mem: &MemAccess{Array: a, StrideKnown: false, Width: width, Scramble: seed},
	}
	if val != NoReg {
		in.Srcs = []Reg{val}
	}
	b.add(in)
}

// Int adds a 1-cycle integer ALU op consuming srcs.
func (b *Builder) Int(name string, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{Name: name, Op: OpIntALU, Dst: dst, Srcs: srcs})
	return dst
}

// IntMul adds a 2-cycle integer multiply.
func (b *Builder) IntMul(name string, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{Name: name, Op: OpIntMul, Dst: dst, Srcs: srcs})
	return dst
}

// FP adds a 2-cycle floating-point add/sub.
func (b *Builder) FP(name string, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{Name: name, Op: OpFPALU, Dst: dst, Srcs: srcs})
	return dst
}

// FPMul adds a 4-cycle floating-point multiply.
func (b *Builder) FPMul(name string, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{Name: name, Op: OpFPMul, Dst: dst, Srcs: srcs})
	return dst
}

// Recurrence adds a 1-cycle integer op that additionally consumes its own (or
// another instruction's) value from a previous iteration, creating a
// dependence cycle. It returns the defined register. carried is the register
// whose value from `distance` iterations ago is consumed; pass the returned
// register itself for classic accumulators by calling SelfRecurrence.
func (b *Builder) Recurrence(name string, carried Reg, distance int, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{
		Name: name, Op: OpIntALU, Dst: dst, Srcs: srcs,
		Carried: []CarriedUse{{Reg: carried, Distance: distance}},
	})
	return dst
}

// SelfRecurrence adds an integer accumulator: dst = f(dst@-distance, srcs...).
func (b *Builder) SelfRecurrence(name string, distance int, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{
		Name: name, Op: OpIntALU, Dst: dst, Srcs: srcs,
		Carried: []CarriedUse{{Reg: dst, Distance: distance}},
	})
	return dst
}

// FPSelfRecurrence adds a floating-point accumulator with a carried self use.
func (b *Builder) FPSelfRecurrence(name string, distance int, srcs ...Reg) Reg {
	dst := b.newReg()
	b.add(&Instr{
		Name: name, Op: OpFPALU, Dst: dst, Srcs: srcs,
		Carried: []CarriedUse{{Reg: dst, Distance: distance}},
	})
	return dst
}

// CarryInto appends a loop-carried use to an already-built instruction,
// for irregular recurrence shapes.
func (b *Builder) CarryInto(consumer Reg, carried Reg, distance int) {
	def := b.loop.DefOf(consumer)
	if def == nil {
		b.fail("ir: CarryInto: no instruction defines %s", consumer)
		return
	}
	def.Carried = append(def.Carried, CarriedUse{Reg: carried, Distance: distance})
}

// Specialized marks the loop as code-specialized (§4.1): alias analysis will
// drop conservative unknown-alias dependences.
func (b *Builder) Specialized() { b.loop.Specialized = true }

// Build validates and returns the loop. It panics on construction or
// validation errors: kernels are static program data, so an invalid kernel
// is a programming bug, not a runtime condition.
func (b *Builder) Build() *Loop {
	if b.err != nil {
		panic(b.err)
	}
	if err := b.loop.Validate(); err != nil {
		panic(err)
	}
	return b.loop
}

// BuildErr validates and returns the loop with an error instead of panicking;
// used by tests exercising invalid construction.
func (b *Builder) BuildErr() (*Loop, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.loop.Validate(); err != nil {
		return nil, err
	}
	return b.loop, nil
}
