package stats

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAMean(t *testing.T) {
	if AMean(nil) != 0 {
		t.Errorf("AMean(nil) != 0")
	}
	if got := AMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("AMean = %v, want 2", got)
	}
}

func TestAMeanBounds(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 16 // bounded, fractional inputs
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		m := AMean(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}, nil)
	if err != nil {
		t.Errorf("AMean out of bounds: %v", err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Errorf("Ratio(_, 0) != 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Errorf("Ratio = %v", Ratio(3, 4))
	}
}

func TestFormatting(t *testing.T) {
	if Pct(0.655) != "66%" {
		t.Errorf("Pct = %q", Pct(0.655))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %q", F2(1.005))
	}
	if F1(2.34) != "2.3" {
		t.Errorf("F1 = %q", F1(2.34))
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "long-header"}}
	tb.Add("x", "1")
	tb.Add("yyyy", "2")
	out := tb.RenderString()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Errorf("missing title")
	}
	if !strings.Contains(lines[1], "long-header") {
		t.Errorf("missing header")
	}
	// Columns align: the second column starts at the same offset in every
	// data row.
	off := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "2") != off {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func sampleTable() *Table {
	tb := &Table{Title: "sample", Header: []string{"bench", "cycles", "note"}}
	tb.Add("gsmdec", "123", "has,comma")
	tb.Add("epicdec", "456", `has"quote`)
	tb.Add("AMEAN", "0.89") // short row: padded on emit
	return tb
}

// TestTableCSVRoundTrip checks that emit → parse → emit is byte-identical
// (the shard-merge workflow ships tables through these emitters).
func TestTableCSVRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := sampleTable().RenderCSV(&first); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	parsed, err := ParseCSVTable(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParseCSVTable: %v", err)
	}
	var second bytes.Buffer
	if err := parsed.RenderCSV(&second); err != nil {
		t.Fatalf("re-RenderCSV: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("CSV round trip not byte-identical:\n%q\nvs\n%q", first.String(), second.String())
	}
	if len(parsed.Rows) != 3 || parsed.Rows[0][2] != "has,comma" || parsed.Rows[1][2] != `has"quote` {
		t.Errorf("CSV quoting lost content: %+v", parsed.Rows)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := sampleTable().RenderJSON(&first); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	parsed, err := ParseJSONTable(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSONTable: %v", err)
	}
	var second bytes.Buffer
	if err := parsed.RenderJSON(&second); err != nil {
		t.Fatalf("re-RenderJSON: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("JSON round trip not byte-identical:\n%s\nvs\n%s", first.String(), second.String())
	}
	if parsed.Title != "sample" || !reflect.DeepEqual(parsed.Header, []string{"bench", "cycles", "note"}) {
		t.Errorf("JSON lost title/header: %+v", parsed)
	}
}

func TestParseCSVTableRejectsEmpty(t *testing.T) {
	if _, err := ParseCSVTable(strings.NewReader("")); err == nil {
		t.Errorf("ParseCSVTable accepted empty input")
	}
}

// TestTableCSVRoundTripRaggedRows: rows longer than the header still round
// trip (RenderCSV passes them through; the parser must not reject them).
func TestTableCSVRoundTripRaggedRows(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.Add("1", "2", "3")
	var first bytes.Buffer
	if err := tb.RenderCSV(&first); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	parsed, err := ParseCSVTable(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParseCSVTable: %v", err)
	}
	var second bytes.Buffer
	if err := parsed.RenderCSV(&second); err != nil {
		t.Fatalf("re-RenderCSV: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("ragged round trip not byte-identical:\n%q\nvs\n%q", first.String(), second.String())
	}
}

// TestCSVStreamerMatchesRenderCSV pins the streaming emitter to the
// in-memory one: same header, same rows (including short rows that need
// padding) must produce identical bytes.
func TestCSVStreamerMatchesRenderCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.Add("1", "x,with comma", "3")
	tb.Add("2") // short row: padded to header width
	tb.Add("3", "quoted \"q\"", "")

	var want strings.Builder
	if err := tb.RenderCSV(&want); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}

	var got strings.Builder
	s, err := NewCSVStreamer(&got, tb.Header)
	if err != nil {
		t.Fatalf("NewCSVStreamer: %v", err)
	}
	for i, r := range tb.Rows {
		if err := s.Row(r...); err != nil {
			t.Fatalf("Row %d: %v", i, err)
		}
		if err := s.Flush(); err != nil { // flushing mid-stream must not change bytes
			t.Fatalf("Flush %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("streamed CSV differs:\n%q\nvs\n%q", got.String(), want.String())
	}
}
