// Package stats provides the small numeric and text-table helpers the
// experiment harness uses to print paper-style tables and figure series.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// AMean returns the arithmetic mean (the paper's AMEAN columns).
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct formats a fraction as a percentage with no decimals ("66%").
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// Table renders fixed-width text tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
