// Package stats provides the small numeric and text-table helpers the
// experiment harness uses to print paper-style tables and figure series.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// AMean returns the arithmetic mean (the paper's AMEAN columns).
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct formats a fraction as a percentage with no decimals ("66%").
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// Table renders fixed-width text tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table, returning the first write error. Callers that
// render to real sinks (files, HTTP responses) must check it: a full disk or
// a closed pipe otherwise truncates the table silently, and a truncated
// table is a byte-identity violation the smokes' cmp would blame on the
// wrong layer.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	_ = t.Render(&b) // a strings.Builder never fails
	return b.String()
}

// RenderCSV writes the table as RFC-4180 CSV: one header record followed by
// the data records. The title is not emitted (CSV consumers key on columns);
// short rows are padded to the header width so every record has the same
// field count.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := r
		if len(rec) < len(t.Header) {
			rec = append(append(make([]string, 0, len(t.Header)), r...),
				make([]string, len(t.Header)-len(r))...)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable wire form of a Table.
type tableJSON struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// RenderJSON writes the table as one indented JSON object with title,
// header and rows, followed by a newline.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{Title: t.Title, Header: t.Header, Rows: t.Rows})
}

// ParseCSVTable reads a table previously written by RenderCSV (header record
// plus data records). The title is not representable in CSV and comes back
// empty. Records longer than the header are preserved as-is (RenderCSV pads
// short rows but passes long rows through), so emit → parse → emit is
// byte-identical for every table RenderCSV accepts.
func ParseCSVTable(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows survive the round trip
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stats: parse csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("stats: parse csv: empty input")
	}
	t := &Table{Header: recs[0]}
	for _, rec := range recs[1:] {
		t.Add(rec...)
	}
	return t, nil
}

// CSVStreamer emits a table row-by-row as the rows are produced, instead of
// accumulating a Table in memory first. Output is byte-identical to
// RenderCSV on the same header and rows (same RFC-4180 writer, same
// short-row padding), so a streaming producer — the exploration server
// pushing a large sweep down an HTTP response — and the in-memory emitters
// can never drift apart.
type CSVStreamer struct {
	cw     *csv.Writer
	width  int
	padBuf []string
}

// NewCSVStreamer writes the header record immediately and returns the
// streamer for the data rows.
func NewCSVStreamer(w io.Writer, header []string) (*CSVStreamer, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &CSVStreamer{cw: cw, width: len(header)}, nil
}

// Row writes one data record, padded to the header width like RenderCSV.
func (s *CSVStreamer) Row(cells ...string) error {
	rec := cells
	if len(rec) < s.width {
		if cap(s.padBuf) < s.width {
			s.padBuf = make([]string, 0, s.width)
		}
		rec = append(append(s.padBuf[:0], cells...), make([]string, s.width-len(cells))...)
	}
	return s.cw.Write(rec)
}

// Flush pushes buffered records to the underlying writer; call it whenever
// the consumer should see progress (e.g. per HTTP chunk), and once at the
// end. Returns the first write error.
func (s *CSVStreamer) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// ParseJSONTable reads a table previously written by RenderJSON.
func ParseJSONTable(r io.Reader) (*Table, error) {
	var tj tableJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("stats: parse json: %w", err)
	}
	return &Table{Title: tj.Title, Header: tj.Header, Rows: tj.Rows}, nil
}
