// Cache-identity and observability tests for the exact scheduler backend:
// the backend/budget fields must discriminate cache entries, the exact
// search counters must count searches (not cache hits), a cancelled compile
// must never poison the single-flight schedule cache, and the explore sched
// axis must expand, aggregate and merge-veto like every other axis.

package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestExactSearchCountersWarmRepeat pins the smoke script's counter
// contract: the first exact-backend run performs one search per compiled
// kernel, the warm repeat performs none (certificates come from the schedule
// cache), and heuristic runs never move the exact counters at all.
func TestExactSearchCountersWarmRepeat(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	b := workload.ByName("gsmdec")
	cfg := arch.MICRO36Config().WithL0Entries(8)

	if _, err := RunBenchmarkCached(b, ArchL0, Options{Cfg: cfg}); err != nil {
		t.Fatalf("heuristic run: %v", err)
	}
	if st := CacheStatsNow(); st.ExactSearches != 0 || st.ExactNodes != 0 {
		t.Fatalf("heuristic run moved exact counters: searches=%d nodes=%d", st.ExactSearches, st.ExactNodes)
	}

	exactOpts := Options{Cfg: cfg, Sched: sched.Options{Backend: sched.BackendExact}}
	cold, err := RunBenchmarkCached(b, ArchL0, exactOpts)
	if err != nil {
		t.Fatalf("exact run: %v", err)
	}
	st := CacheStatsNow()
	if st.ExactSearches != int64(len(b.Kernels)) {
		t.Fatalf("exact run performed %d searches, want one per kernel (%d)", st.ExactSearches, len(b.Kernels))
	}

	warm, err := RunBenchmarkCached(b, ArchL0, exactOpts)
	if err != nil {
		t.Fatalf("warm exact run: %v", err)
	}
	if after := CacheStatsNow(); after.ExactSearches != st.ExactSearches || after.ExactNodes != st.ExactNodes {
		t.Errorf("warm repeat was not search-free: searches %d -> %d, nodes %d -> %d",
			st.ExactSearches, after.ExactSearches, st.ExactNodes, after.ExactNodes)
	}
	if cold.Total != warm.Total {
		t.Errorf("warm repeat changed the result: %d -> %d cycles", cold.Total, warm.Total)
	}
}

// TestExactBackendDiscriminatesCacheKey: heuristic and exact compilations of
// the same kernel must not share a schedule-cache entry (the exact one
// carries a certificate), and the two backends must still agree on the
// simulated cycles whenever the exact search only confirms the heuristic.
func TestExactBackendDiscriminatesCacheKey(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	b := workload.ByName("gsmdec")
	cfg := arch.MICRO36Config().WithL0Entries(8)

	h, err := RunBenchmarkCached(b, ArchL0, Options{Cfg: cfg})
	if err != nil {
		t.Fatalf("heuristic: %v", err)
	}
	e, err := RunBenchmarkCached(b, ArchL0, Options{Cfg: cfg, Sched: sched.Options{Backend: sched.BackendExact}})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if st := CacheStatsNow(); st.ExactSearches == 0 {
		t.Fatalf("exact run after heuristic run performed no searches: the backends aliased one cache entry")
	}
	if h.Total != e.Total {
		// Not inherently a bug (the exact backend may beat the heuristic),
		// but on this suite the heuristic is optimal — see docs/gap_study.md.
		t.Errorf("backends disagree on gsmdec: heuristic %d, exact %d cycles", h.Total, e.Total)
	}
}

// TestCancelledCompileDoesNotPoisonCache: a compile interrupted by context
// cancellation must surface the error to its caller and leave no resident
// cache entry, so the next request for the same key compiles for real
// instead of inheriting a stale cancellation from the single-flight entry.
func TestCancelledCompileDoesNotPoisonCache(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	b := workload.ByName("gsmdec")
	cfg := arch.MICRO36Config().WithL0Entries(8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBenchmark(b, ArchL0, Options{Cfg: cfg, Sched: sched.Options{
		Backend: sched.BackendExact,
		Ctx:     ctx,
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled compile returned %v, want context.Canceled", err)
	}

	res, err := RunBenchmarkCached(b, ArchL0, Options{Cfg: cfg, Sched: sched.Options{Backend: sched.BackendExact}})
	if err != nil {
		t.Fatalf("compile after cancelled attempt: %v (the cancellation poisoned the cache)", err)
	}
	if res.Total <= 0 {
		t.Fatalf("recovered run produced no cycles")
	}
}

// TestExploreSchedsAxis: the sched axis joins the grid product with resolved
// canonical names, both backends' cells aggregate independently, and an
// unknown backend is a spec error naming the valid set.
func TestExploreSchedsAxis(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := ExploreSpec{
		Benches:  []string{"gsmdec"},
		Clusters: []int{4}, Entries: []int{8},
		Scheds: []string{"sms", "exact"},
	}
	if n, err := spec.GridSize(); err != nil || n != 2 {
		t.Fatalf("grid size = %d, %v; want 2 (one cell per backend)", n, err)
	}
	res, err := Explore(spec)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if got := []string{res.Cells[0].Sched, res.Cells[1].Sched}; got[0] != "sms" || got[1] != "exact" {
		t.Fatalf("cell backends = %v, want [sms exact]", got)
	}
	if res.Cells[0].Cycles != res.Cells[1].Cycles {
		t.Errorf("backends disagree on gsmdec cycles: %d vs %d", res.Cells[0].Cycles, res.Cells[1].Cycles)
	}
	if len(res.Configs) != 2 || res.Configs[0].Sched != "sms" || res.Configs[1].Sched != "exact" {
		t.Errorf("AMEAN rows do not carry the sched coordinate: %+v", res.Configs)
	}

	bad := spec
	bad.Scheds = []string{"simulated-annealing"}
	_, err = bad.GridSize()
	if err == nil || !IsSpecError(err) {
		t.Fatalf("unknown backend: err=%v, want a spec error", err)
	}
	if !strings.Contains(err.Error(), sched.BackendSMS) || !strings.Contains(err.Error(), sched.BackendExact) {
		t.Errorf("unknown-backend error does not list the valid backends: %v", err)
	}
}

// TestMergeVetoesDifferingScheds: sweeps with different backend axes must
// refuse to merge even when grid size and benchmark set coincide, while an
// explicit ["sms"] axis and the bare default normalize to the same spec
// identity and so shard-merge back into one sweep.
func TestMergeVetoesDifferingScheds(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	base := ExploreSpec{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{4, 8}}
	smsRes, err := Explore(base)
	if err != nil {
		t.Fatalf("sms sweep: %v", err)
	}
	exactSpec := base
	exactSpec.Scheds = []string{"exact"}
	exactRes, err := Explore(exactSpec)
	if err != nil {
		t.Fatalf("exact sweep: %v", err)
	}
	if _, err := MergeExplore(smsRes, exactRes); err == nil {
		t.Fatalf("merge of sms and exact sweeps succeeded; want a spec-identity veto")
	}

	// The default axis and an explicit ["sms"] resolve to the same identity
	// (the pre-axis default), so shards swept under the two spellings of one
	// sweep DO merge — and the merged result matches the unsharded run.
	explicit := base
	explicit.Scheds = []string{"sms"}
	s0, err := ExploreCfg(DefaultRunConfig(), base, 0, 2)
	if err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	s1, err := ExploreCfg(DefaultRunConfig(), explicit, 1, 2)
	if err != nil {
		t.Fatalf("shard 1: %v", err)
	}
	merged, err := MergeExplore(s0, s1)
	if err != nil {
		t.Fatalf("explicit [sms] shard refused to merge with the default: %v", err)
	}
	if len(merged.Cells) != len(smsRes.Cells) {
		t.Fatalf("merged sweep has %d cells, unsharded has %d", len(merged.Cells), len(smsRes.Cells))
	}
	for i := range merged.Cells {
		if merged.Cells[i] != smsRes.Cells[i] {
			t.Errorf("merged cell %d differs from unsharded run:\n%+v\n%+v", i, merged.Cells[i], smsRes.Cells[i])
		}
	}
}
