package harness

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestRunBenchmarkAllArchitectures(t *testing.T) {
	b := workload.ByName("g721dec")
	for _, a := range []Arch{ArchBase, ArchL0, ArchMultiVLIW, ArchInterleaved1, ArchInterleaved2} {
		r, err := RunBenchmark(b, a, Options{Cfg: arch.MICRO36Config()})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if r.Total <= 0 || r.Total != r.Compute+r.Stall {
			t.Errorf("%v: inconsistent totals %d = %d + %d", a, r.Total, r.Compute, r.Stall)
		}
		if len(r.Kernels) != len(b.Kernels) {
			t.Errorf("%v: kernels = %d, want %d", a, len(r.Kernels), len(b.Kernels))
		}
	}
}

func TestRunBenchmarkDeterministic(t *testing.T) {
	b := workload.ByName("gsmdec")
	r1, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("run1: %v", err)
	}
	r2, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("run2: %v", err)
	}
	if r1.Total != r2.Total || r1.Stall != r2.Stall {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", r1.Total, r1.Stall, r2.Total, r2.Stall)
	}
}

func TestUnrollFactorSameAcrossArchitectures(t *testing.T) {
	// §5.1: the same unrolling heuristic must be used everywhere.
	b := workload.ByName("g721dec")
	var factors [][]int
	for _, a := range []Arch{ArchBase, ArchL0, ArchMultiVLIW} {
		r, err := RunBenchmark(b, a, Options{Cfg: arch.MICRO36Config()})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		var f []int
		for _, k := range r.Kernels {
			f = append(f, k.Factor)
		}
		factors = append(factors, f)
	}
	for i := 1; i < len(factors); i++ {
		for j := range factors[0] {
			if factors[i][j] != factors[0][j] {
				t.Errorf("unroll factors differ across architectures: %v vs %v", factors[0], factors[i])
			}
		}
	}
}

func TestBaselineHasNoAvgUnrollBias(t *testing.T) {
	b := workload.ByName("pgpdec")
	r, err := RunBenchmark(b, ArchBase, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if r.AvgUnroll < 1 || r.AvgUnroll > 4 {
		t.Errorf("AvgUnroll = %v out of [1,4]", r.AvgUnroll)
	}
}

func TestL0BeatsBaselineOnSuite(t *testing.T) {
	// The headline result: 8-entry buffers improve the AMEAN.
	var baseSum, l0Sum float64
	for _, b := range workload.Suite() {
		base, err := RunBenchmark(b, ArchBase, Options{Cfg: arch.MICRO36Config()})
		if err != nil {
			t.Fatalf("%s base: %v", b.Name, err)
		}
		l0, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config().WithL0Entries(8)})
		if err != nil {
			t.Fatalf("%s l0: %v", b.Name, err)
		}
		norm := float64(l0.Total) / float64(base.Total)
		baseSum += 1
		l0Sum += norm
	}
	n := float64(len(workload.Suite()))
	amean := l0Sum / n
	if amean >= 0.95 {
		t.Errorf("8-entry AMEAN = %.3f, want < 0.95 (paper: 0.84)", amean)
	}
	if amean < 0.75 {
		t.Errorf("8-entry AMEAN = %.3f suspiciously low (paper: 0.84)", amean)
	}
}

func TestFig5SmokeAndRender(t *testing.T) {
	pts, err := Fig5([]int{8}, sched.Options{})
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(pts) != 13 {
		t.Fatalf("rows = %d", len(pts))
	}
	var sb strings.Builder
	if err := RenderFig5(&sb, pts, []int{8}); err != nil {
		t.Fatalf("RenderFig5: %v", err)
	}
	if !strings.Contains(sb.String(), "AMEAN") {
		t.Errorf("render missing AMEAN")
	}
	if got := AMeanTotal(pts, 0); got <= 0 {
		t.Errorf("AMeanTotal = %v", got)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(8)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		if r.LinearFrac+r.InterleavedFrac > 1.001 || r.LinearFrac+r.InterleavedFrac < 0.999 {
			t.Errorf("%s: mapping fractions do not sum to 1", r.Bench)
		}
		if r.HitRate < 0.4 || r.HitRate > 1 {
			t.Errorf("%s: hit rate %v out of range", r.Bench, r.HitRate)
		}
		if r.AvgUnroll < 1 || r.AvgUnroll > 4 {
			t.Errorf("%s: avg unroll %v out of range", r.Bench, r.AvgUnroll)
		}
	}
	// The paper's qualitative claims: the low-hit-rate exceptions are
	// epicdec and rasta (small II); unroll-heavy benchmarks interleave more.
	if byName["epicdec"].HitRate >= byName["g721dec"].HitRate {
		t.Errorf("epicdec hit rate should be below g721dec's")
	}
	if byName["rasta"].HitRate >= byName["pgpdec"].HitRate {
		t.Errorf("rasta hit rate should be below pgpdec's")
	}
	if byName["g721dec"].InterleavedFrac <= byName["pegwitdec"].InterleavedFrac {
		t.Errorf("unrolled g721dec should interleave more than rolled pegwitdec")
	}
	var sb strings.Builder
	if err := RenderFig6(&sb, rows); err != nil {
		t.Fatalf("RenderFig6: %v", err)
	}
	if !strings.Contains(sb.String(), "epicdec") {
		t.Errorf("render missing rows")
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(8)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	var l0, mv, i1, i2 float64
	for _, r := range rows {
		l0 += r.L0
		mv += r.MultiVLIW
		i1 += r.Interleaved1
		i2 += r.Interleaved2
	}
	n := float64(len(rows))
	l0, mv, i1, i2 = l0/n, mv/n, i1/n, i2/n
	// The paper's ordering: L0 outperforms the word-interleaved cache and
	// is close to MultiVLIW.
	if l0 >= i1 || l0 >= i2 {
		t.Errorf("L0 (%.2f) should beat interleaved (%.2f / %.2f)", l0, i1, i2)
	}
	if d := l0 - mv; d > 0.08 || d < -0.08 {
		t.Errorf("L0 (%.2f) should be close to MultiVLIW (%.2f)", l0, mv)
	}
	var sb strings.Builder
	if err := RenderFig7(&sb, rows); err != nil {
		t.Fatalf("RenderFig7: %v", err)
	}
	if !strings.Contains(sb.String(), "AMEAN") {
		t.Errorf("render missing AMEAN")
	}
}

func TestJpegdecAnomaly(t *testing.T) {
	// §5.2: jpegdec is the only benchmark slower than the baseline with
	// small buffers, and 4-entry buffers are clearly worse than 8.
	b := workload.ByName("jpegdec")
	base, err := RunBenchmark(b, ArchBase, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	e4, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config().WithL0Entries(4)})
	if err != nil {
		t.Fatalf("4: %v", err)
	}
	e8, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config().WithL0Entries(8)})
	if err != nil {
		t.Fatalf("8: %v", err)
	}
	n4 := float64(e4.Total) / float64(base.Total)
	n8 := float64(e8.Total) / float64(base.Total)
	if n4 <= n8 {
		t.Errorf("jpegdec at 4 entries (%.3f) must be worse than at 8 (%.3f)", n4, n8)
	}
	if n8 < 0.97 {
		t.Errorf("jpegdec at 8 entries = %.3f; the paper keeps it at or above the baseline", n8)
	}
	if e4.L0.L0Evictions <= e8.L0.L0Evictions {
		t.Errorf("4-entry run must evict more (%d vs %d)", e4.L0.L0Evictions, e8.L0.L0Evictions)
	}
}

func TestBufferSizeOrdering(t *testing.T) {
	// Figure 5: 4 entries ≳ 8 ≈ 16 ≥ unbounded on the AMEAN.
	means := map[int]float64{}
	for _, e := range []int{4, 8, 16, arch.Unbounded} {
		pts, err := Fig5([]int{e}, sched.Options{})
		if err != nil {
			t.Fatalf("Fig5(%d): %v", e, err)
		}
		means[e] = AMeanTotal(pts, 0)
	}
	if means[4] < means[8] {
		t.Errorf("4-entry mean (%.3f) should not beat 8-entry (%.3f)", means[4], means[8])
	}
	if means[8] < means[16]-0.01 {
		t.Errorf("8-entry mean (%.3f) should be close to 16-entry (%.3f)", means[8], means[16])
	}
	if means[16] < means[arch.Unbounded]-0.005 {
		t.Errorf("16-entry mean (%.3f) cannot beat unbounded (%.3f)", means[16], means[arch.Unbounded])
	}
}

func TestPegwitStallPersistsUnbounded(t *testing.T) {
	// §5.2: pegwit's stall comes from L1 misses and survives unbounded
	// buffers.
	b := workload.ByName("pegwitdec")
	r, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config().WithL0Entries(arch.Unbounded)})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if frac := float64(r.Stall) / float64(r.Total); frac < 0.2 {
		t.Errorf("pegwitdec unbounded stall fraction = %.2f, want >= 0.2", frac)
	}
}

func TestClusterSweepBenefitHolds(t *testing.T) {
	// §3: the techniques extend to any cluster count — the buffers must
	// keep a mean benefit at 2 and 8 clusters, not just 4.
	pts, err := ClusterSweep([]int{2, 8}, 8)
	if err != nil {
		t.Fatalf("ClusterSweep: %v", err)
	}
	var m2, m8 float64
	for _, row := range pts {
		m2 += row[0].Norm
		m8 += row[1].Norm
	}
	n := float64(len(pts))
	if m2/n >= 1.0 || m8/n >= 1.0 {
		t.Errorf("cluster-scaled means = %.2f (2cl) / %.2f (8cl), want < 1.0", m2/n, m8/n)
	}
	var sb strings.Builder
	if err := RenderClusterSweep(&sb, pts, []int{2, 8}); err != nil {
		t.Fatalf("RenderClusterSweep: %v", err)
	}
	if !strings.Contains(sb.String(), "AMEAN") {
		t.Errorf("render missing AMEAN")
	}
}

func TestEnergyRatioSane(t *testing.T) {
	// The energy model must produce nonzero totals with the L0/baseline
	// ratio in a plausible band (PAR probes keep L1 busy, so L0 does not
	// slash energy; it must not blow it up either).
	b := workload.ByName("g721dec")
	base, err := RunBenchmark(b, ArchBase, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("%v", err)
	}
	l0, err := RunBenchmark(b, ArchL0, Options{Cfg: arch.MICRO36Config().WithL0Entries(8)})
	if err != nil {
		t.Fatalf("%v", err)
	}
	p := energy.DefaultParams()
	eb, el := energy.FromStats(base.L0, p), energy.FromStats(l0.L0, p)
	if eb <= 0 || el <= 0 {
		t.Fatalf("zero energy: %v %v", eb, el)
	}
	if r := el / eb; r < 0.5 || r > 1.6 {
		t.Errorf("energy ratio %.2f out of plausible band", r)
	}
}

func TestConservativeFallbackRescuesJpegdec(t *testing.T) {
	// §5.2: giving up on L0 for the pathological loop brings jpegdec back
	// to (or below) the baseline.
	b := workload.ByName("jpegdec")
	base, err := RunBenchmark(b, ArchBase, Options{Cfg: arch.MICRO36Config()})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	cfg4 := arch.MICRO36Config().WithL0Entries(4)
	plain, err := RunBenchmark(b, ArchL0, Options{Cfg: cfg4})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	fb, err := RunBenchmark(b, ArchL0, Options{Cfg: cfg4, ConservativeFallback: true})
	if err != nil {
		t.Fatalf("fallback: %v", err)
	}
	nPlain := float64(plain.Total) / float64(base.Total)
	nFB := float64(fb.Total) / float64(base.Total)
	if nFB > nPlain+1e-9 {
		t.Errorf("fallback (%.3f) must not be worse than plain L0 (%.3f)", nFB, nPlain)
	}
	if nFB > 1.02 {
		t.Errorf("fallback jpegdec = %.3f, want ~<= 1.0 (the paper's point)", nFB)
	}
}

func TestSuiteCoherenceUnderChecker(t *testing.T) {
	// The paper's central coherence claim, validated dynamically: with
	// shadow-version checking on, no L0 hit across the entire suite (all
	// coherence schemes, flush analysis, prefetching, PSR) may return
	// stale data.
	for _, optVariant := range []sched.Options{{}, {AllowPSR: true}, {PrefetchDistance: 2}} {
		for _, b := range workload.Suite() {
			r, err := RunBenchmark(b, ArchL0, Options{
				Cfg:            arch.MICRO36Config().WithL0Entries(8),
				Sched:          optVariant,
				CheckCoherence: true,
			})
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if r.L0.CoherenceViolations != 0 {
				t.Errorf("%s (opts %+v): %d coherence violations — a load read stale L0 data",
					b.Name, optVariant, r.L0.CoherenceViolations)
			}
		}
	}
}

func TestWireSweepAdaptiveScalesWithLatency(t *testing.T) {
	// The wire-delay motivation: with adaptive prefetch distance, the L0
	// benefit must not shrink as the centralized L1 gets slower; with
	// fixed distance 1, prefetch timeliness decays instead.
	pts, err := WireSweep([]int{6, 12}, 8)
	if err != nil {
		t.Fatalf("WireSweep: %v", err)
	}
	if pts[1].AMeanAdaptive > pts[0].AMeanAdaptive+0.02 {
		t.Errorf("adaptive benefit shrank with wire delay: %.3f -> %.3f",
			pts[0].AMeanAdaptive, pts[1].AMeanAdaptive)
	}
	if pts[1].AMeanAdaptive >= pts[1].AMean {
		t.Errorf("at high wire delay adaptive (%.3f) must beat fixed d=1 (%.3f)",
			pts[1].AMeanAdaptive, pts[1].AMean)
	}
	var sb strings.Builder
	if err := RenderWireSweep(&sb, pts); err != nil {
		t.Fatalf("RenderWireSweep: %v", err)
	}
	if !strings.Contains(sb.String(), "12 cycles") {
		t.Errorf("render missing rows")
	}
}
