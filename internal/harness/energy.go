package harness

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// EnergyRow is one benchmark of the relative-energy comparison: total
// memory-system energy of the no-L0 baseline and the L0 architecture in
// relative units (an L1 access ≡ 1.0), and their ratio.
type EnergyRow struct {
	Bench string
	Base  float64
	L0    float64
	Ratio float64
}

// EnergySweep compares memory-system energy with and without L0 buffers at
// the given entry count over the whole suite.
func EnergySweep(entries int) ([]EnergyRow, error) {
	return EnergySweepCfg(DefaultRunConfig(), entries)
}

// EnergySweepCfg is EnergySweep under an explicit engine configuration: one
// job per benchmark × {base, l0}, fanned over the worker pool like every
// other experiment (this replaced a serial per-benchmark loop in cmd/l0sim).
func EnergySweepCfg(rc RunConfig, entries int) ([]EnergyRow, error) {
	suite := workload.Suite()
	const stride = 2
	results, err := forEachJob(rc, len(suite)*stride, func(i int) (*BenchResult, error) {
		b := suite[i/stride]
		if i%stride == 0 {
			return RunBenchmarkCached(b, ArchBase, rc.options(arch.MICRO36Config()))
		}
		return RunBenchmarkCached(b, ArchL0, rc.options(arch.MICRO36Config().WithL0Entries(entries)))
	})
	if err != nil {
		return nil, err
	}
	p := energy.DefaultParams()
	rows := make([]EnergyRow, 0, len(suite))
	for bi, b := range suite {
		eb := energy.FromStats(results[bi*stride].L0, p)
		el := energy.FromStats(results[bi*stride+1].L0, p)
		rows = append(rows, EnergyRow{Bench: b.Name, Base: eb, L0: el, Ratio: el / eb})
	}
	return rows, nil
}

// RenderEnergy prints the comparison. The AMEAN divides by the actual row
// count — an earlier revision hardcoded the suite size and would have gone
// silently wrong the moment the suite grew.
func RenderEnergy(w io.Writer, rows []EnergyRow, entries int) error {
	t := &stats.Table{Title: fmt.Sprintf("Relative memory-system energy (L0 vs no-L0 baseline, %d-entry buffers)", entries)}
	t.Header = []string{"bench", "base", "L0", "ratio"}
	var sum float64
	for _, r := range rows {
		sum += r.Ratio
		t.Add(r.Bench, fmt.Sprintf("%.0f", r.Base), fmt.Sprintf("%.0f", r.L0), stats.F2(r.Ratio))
	}
	if len(rows) > 0 {
		t.Add("AMEAN", "", "", stats.F2(sum/float64(len(rows))))
	}
	return t.Render(w)
}
