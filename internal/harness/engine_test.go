package harness

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestSchedOptsKeyCoversOptions fails loudly when sched.Options gains a
// field that schedOptsKey does not mirror: an unmirrored field would let
// semantically different compilations share one cache entry and silently
// poison every later experiment in the process. Function-typed fields are
// intentionally absent (runs using them are never cached; see cacheable),
// and fields registered in schedOptsExempt (keyfields_test.go) carry an
// explicit identity decision with a reason.
func TestSchedOptsKeyCoversOptions(t *testing.T) {
	ot := reflect.TypeOf(sched.Options{})
	kt := reflect.TypeOf(schedOptsKey{})
	for i := 0; i < ot.NumField(); i++ {
		f := ot.Field(i)
		if f.Type.Kind() == reflect.Func {
			continue // never cached; enforced by cacheable()
		}
		if _, exempt := schedOptsExempt[f.Name]; exempt {
			continue // identity decision recorded in keyfields_test.go
		}
		kf, ok := kt.FieldByName(f.Name)
		if !ok {
			t.Errorf("sched.Options.%s is not mirrored in schedOptsKey: cached compiles would alias across different %s values", f.Name, f.Name)
			continue
		}
		if kf.Type != f.Type {
			t.Errorf("schedOptsKey.%s has type %v, want %v", f.Name, kf.Type, f.Type)
		}
	}
	if got, want := kt.NumField(), countMirroredFields(ot); got != want {
		t.Errorf("schedOptsKey has %d fields, sched.Options has %d mirrored (non-func, non-exempt) fields", got, want)
	}
}

func countMirroredFields(t reflect.Type) int {
	n := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() == reflect.Func {
			continue
		}
		if _, exempt := schedOptsExempt[f.Name]; exempt {
			continue
		}
		n++
	}
	return n
}

// TestParallelMatchesSerial is the determinism regression for the job
// engine: a multi-worker run must produce results identical to a
// single-worker run (aggregation is by job index, never completion order),
// and the schedule cache must not change any number either.
func TestParallelMatchesSerial(t *testing.T) {
	serial := RunConfig{Workers: 1, DisableScheduleCache: true}
	parallel := RunConfig{Workers: 8}

	s5, err := Fig5Cfg(serial, []int{4, 8}, sched.Options{})
	if err != nil {
		t.Fatalf("serial Fig5: %v", err)
	}
	p5, err := Fig5Cfg(parallel, []int{4, 8}, sched.Options{})
	if err != nil {
		t.Fatalf("parallel Fig5: %v", err)
	}
	if !reflect.DeepEqual(s5, p5) {
		t.Errorf("Fig5 parallel != serial:\n%v\nvs\n%v", p5, s5)
	}

	s7, err := Fig7Cfg(serial, 8)
	if err != nil {
		t.Fatalf("serial Fig7: %v", err)
	}
	p7, err := Fig7Cfg(parallel, 8)
	if err != nil {
		t.Fatalf("parallel Fig7: %v", err)
	}
	if !reflect.DeepEqual(s7, p7) {
		t.Errorf("Fig7 parallel != serial:\n%v\nvs\n%v", p7, s7)
	}
}

// TestKernelResultsByteIdentical compares the full per-kernel result lists
// (II, SC, unroll factor, cycle splits) of cached/parallel-engine runs
// against fresh uncached runs for every architecture.
func TestKernelResultsByteIdentical(t *testing.T) {
	b := workload.ByName("gsmdec")
	for _, a := range []Arch{ArchBase, ArchL0, ArchMultiVLIW, ArchInterleaved1, ArchInterleaved2} {
		cfg := arch.MICRO36Config().WithL0Entries(8)
		cached, err := RunBenchmark(b, a, Options{Cfg: cfg})
		if err != nil {
			t.Fatalf("%v cached: %v", a, err)
		}
		fresh, err := RunBenchmark(b, a, Options{Cfg: cfg, DisableScheduleCache: true})
		if err != nil {
			t.Fatalf("%v uncached: %v", a, err)
		}
		if !reflect.DeepEqual(cached.Kernels, fresh.Kernels) {
			t.Errorf("%v: kernel results differ:\ncached:   %+v\nuncached: %+v", a, cached.Kernels, fresh.Kernels)
		}
		if cached.Total != fresh.Total || cached.Stall != fresh.Stall || cached.Clock != fresh.Clock {
			t.Errorf("%v: totals differ: %d/%d/%d vs %d/%d/%d", a,
				cached.Total, cached.Stall, cached.Clock, fresh.Total, fresh.Stall, fresh.Clock)
		}
	}
}

// TestForEachJobOrdering checks index-ordered aggregation and worker
// clamping directly.
func TestForEachJobOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := forEachJob(RunConfig{Workers: workers}, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachJobError checks that a failing job surfaces its error and
// cancels the run.
func TestForEachJobError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := forEachJob(RunConfig{Workers: workers}, 50, func(i int) (int, error) {
			if i == 17 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

// TestForEachJobFirstErrorWinsAndCancels asserts the engine's error
// contract: exactly the first-observed error surfaces, and a failure stops
// workers from starting the remaining jobs (later jobs must not all run).
func TestForEachJobFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	const n = 10_000
	_, err := forEachJob(RunConfig{Workers: 4}, n, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom // fails while the other workers sit in their first job
		}
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Job 0 fails microseconds in; once any other worker finishes its 2ms
	// job the failure flag is set and it must stop pulling work. The bound
	// is deliberately enormous — flaking would need the failing goroutine
	// descheduled for ~2/3 s while 3 workers chew 2ms jobs — yet still
	// proves cancellation: without it all 10000 jobs run.
	if s := started.Load(); s > n/10 {
		t.Errorf("%d jobs started after a failing job, want a handful (cancellation broken)", s)
	}

	// When two jobs fail, the winning error is the first one observed —
	// never a later overwrite, and never a nil.
	first := errors.New("first")
	second := errors.New("second")
	for trial := 0; trial < 10; trial++ {
		_, err := forEachJob(RunConfig{Workers: 4}, 100, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, first
			case 4:
				return 0, second
			}
			return i, nil
		})
		if !errors.Is(err, first) && !errors.Is(err, second) {
			t.Fatalf("err = %v, want one of the injected errors", err)
		}
	}
}

// TestSweepsParallelMatchSerial covers the remaining experiment drivers.
func TestSweepsParallelMatchSerial(t *testing.T) {
	serial := RunConfig{Workers: 1, DisableScheduleCache: true}
	parallel := RunConfig{Workers: 8}

	sc, err := ClusterSweepCfg(serial, []int{2}, 8)
	if err != nil {
		t.Fatalf("serial ClusterSweep: %v", err)
	}
	pc, err := ClusterSweepCfg(parallel, []int{2}, 8)
	if err != nil {
		t.Fatalf("parallel ClusterSweep: %v", err)
	}
	if !reflect.DeepEqual(sc, pc) {
		t.Errorf("ClusterSweep parallel != serial")
	}

	sw, err := WireSweepCfg(serial, []int{9}, 8)
	if err != nil {
		t.Fatalf("serial WireSweep: %v", err)
	}
	pw, err := WireSweepCfg(parallel, []int{9}, 8)
	if err != nil {
		t.Fatalf("parallel WireSweep: %v", err)
	}
	if !reflect.DeepEqual(sw, pw) {
		t.Errorf("WireSweep parallel != serial")
	}
}
