// Design-space exploration: a declarative sweep specification over the
// paper's architectural axes (cluster count × L0 entries × L0 subblock bytes
// × unified-L1 latency × scheduler options) that compiles to one flat,
// index-deterministic job grid fanned over the experiment engine's worker
// pool. Every cell reports cycles, stall fraction and relative memory-system
// energy against the bufferless baseline of the same machine, and the
// aggregation extracts Pareto fronts (cycles vs energy) per benchmark and
// for the suite AMEAN — the trade-off curve the paper argues by, instead of
// the handful of fixed points its figures plot.
//
// Because cells are a pure function of their grid index, the grid can be
// sharded across processes (cmd/l0explore's -shard i/M): every shard
// computes one contiguous index range, and merging is concatenation by
// index — a merged run is byte-identical to a single-process run.

package harness

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// SpecError marks a sweep specification the caller got wrong — an unknown
// benchmark name, an unregistered kernel hash, an unparsable kernel source —
// as opposed to an execution failure. The serving layer maps it to a 400.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrorf(format string, args ...any) error {
	return &SpecError{msg: "harness: " + fmt.Sprintf(format, args...)}
}

// IsSpecError reports whether err is (or wraps) a SpecError. An unknown
// scheduler backend counts too: wherever it surfaces (spec resolution or a
// compile deep inside a run), it is the caller's request that was malformed,
// so the serving layer maps it to a 400 rather than a 500.
func IsSpecError(err error) bool {
	var se *SpecError
	if errors.As(err, &se) {
		return true
	}
	var ub *sched.UnknownBackendError
	return errors.As(err, &ub)
}

// ExploreSpec declares one design-space sweep. Zero-valued axes fall back to
// the paper's Table 2 point, so the zero spec sweeps nothing but still runs.
type ExploreSpec struct {
	// Benches selects benchmarks by name; a "kernel:<hash>" name selects a
	// registered user kernel. Empty means the whole suite — unless Kernels
	// selects something, in which case only those kernels are swept.
	//lint:nonkey the resolved benchmark list travels as ExploreResult.Benches, which MergeExplore compares name-by-name
	Benches []string `json:"benches,omitempty"`
	// Kernels selects user kernels by content hash (64 hex digits, must be
	// registered) or inline looplang source (registered on the spot). They
	// join Benches in the grid as single-kernel pseudo-benchmarks.
	Kernels []string `json:"kernels,omitempty"`
	// Clusters, Entries, Subblocks and L1Latencies are the swept axes.
	// A Subblocks entry of 0 derives the subblock size from the cluster
	// count (WithClusters' clamped one-per-cluster split).
	Clusters    []int `json:"clusters,omitempty"`
	Entries     []int `json:"entries,omitempty"`
	Subblocks   []int `json:"subblocks,omitempty"`
	L1Latencies []int `json:"l1_latencies,omitempty"`
	// PrefetchDists and RegBudgets sweep scheduler knobs as first-class
	// axes joining the grid product. A PrefetchDists entry of 0 keeps
	// Sched.PrefetchDistance (the scheduler defaults that to 1); a
	// RegBudgets entry of 0 leaves register pressure unbounded. Like
	// Sched, both apply to the L0 compilations only — the baseline of a
	// cell is always compiled with default options, so these axes share
	// the deduplicated baseline runs.
	PrefetchDists []int `json:"prefetch_dists,omitempty"`
	RegBudgets    []int `json:"reg_budgets,omitempty"`
	// Scheds sweeps the scheduler backend ("sms", "exact") as an axis; an
	// entry of "" inherits Sched.Backend (defaulting to the heuristic).
	// Like the other scheduler axes it applies to the L0 runs only.
	Scheds []string `json:"scheds,omitempty"`
	// Sched carries scheduler switches applied to the L0 runs (the
	// baseline is always compiled with default options, like the figures).
	Sched sched.Options `json:"-"`
}

// normalized fills defaulted axes and drops duplicate axis values (keeping
// first-occurrence order): a repeated value would expand to duplicate grid
// cells that silently double-weight every AMEAN and Pareto aggregate.
func (s ExploreSpec) normalized() ExploreSpec {
	if len(s.Clusters) == 0 {
		s.Clusters = []int{4}
	}
	if len(s.Entries) == 0 {
		s.Entries = []int{8}
	}
	if len(s.Subblocks) == 0 {
		s.Subblocks = []int{0}
	}
	if len(s.L1Latencies) == 0 {
		s.L1Latencies = []int{arch.MICRO36Config().L1Latency}
	}
	if len(s.PrefetchDists) == 0 {
		s.PrefetchDists = []int{0}
	}
	if len(s.RegBudgets) == 0 {
		s.RegBudgets = []int{0}
	}
	s.Clusters = dedupInts(s.Clusters)
	s.Entries = dedupInts(s.Entries)
	s.Subblocks = dedupInts(s.Subblocks)
	s.L1Latencies = dedupInts(s.L1Latencies)
	s.PrefetchDists = dedupInts(s.PrefetchDists)
	s.RegBudgets = dedupInts(s.RegBudgets)
	return s
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// resolveScheds normalizes the Scheds axis to canonical backend names in
// first-occurrence order: an empty axis (or entry) inherits the spec's base
// Sched.Backend, which itself defaults to the SMS heuristic; unknown names
// are a spec error carrying the valid backend list.
func (s ExploreSpec) resolveScheds() ([]string, error) {
	axis := s.Scheds
	if len(axis) == 0 {
		axis = []string{""}
	}
	seen := map[string]bool{}
	var out []string
	for _, v := range axis {
		if v == "" {
			v = s.Sched.Backend
		}
		if v == "" {
			v = sched.BackendSMS
		}
		ok := false
		for _, b := range sched.Backends() {
			if v == b {
				ok = true
				break
			}
		}
		if !ok {
			return nil, specErrorf("%v", &sched.UnknownBackendError{Name: v})
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// resolveKernels normalizes the Kernels field to registered content hashes
// in first-occurrence order: a 64-hex-digit entry must already be registered
// (by an earlier spec or POST /v1/kernels); anything else is treated as
// inline looplang source and registered on the spot — idempotently, so
// resubmitting a spec never grows the registry.
func (s ExploreSpec) resolveKernels() ([]string, error) {
	if len(s.Kernels) == 0 {
		return nil, nil
	}
	seen := map[string]bool{}
	var out []string
	for _, k := range s.Kernels {
		var id string
		if ref := strings.TrimSpace(k); workload.IsKernelID(ref) {
			id = strings.ToLower(ref)
			if _, ok := workload.KernelByID(id); !ok {
				return nil, specErrorf("unknown kernel %s: not registered (POST the .loop source to /v1/kernels, or pass it inline)", id)
			}
		} else {
			reg, err := workload.RegisterKernelSource(k)
			if err != nil {
				return nil, specErrorf("kernel source: %v", err)
			}
			id = reg.ID
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

// benches resolves the benchmark subset in spec order — named benchmarks
// first, then the Kernels pseudo-benchmarks — dropping duplicate names (a
// repeated benchmark would count twice in every suite AMEAN). An empty
// selection means the whole suite.
func (s ExploreSpec) benches() ([]*workload.Benchmark, error) {
	kernels, err := s.resolveKernels()
	if err != nil {
		return nil, err
	}
	if len(s.Benches) == 0 && len(kernels) == 0 {
		return workload.Suite(), nil
	}
	seen := map[string]bool{}
	var out []*workload.Benchmark
	for _, name := range s.Benches {
		if seen[name] {
			continue
		}
		seen[name] = true
		b := workload.ByName(name)
		if b == nil {
			if strings.HasPrefix(name, workload.KernelBenchPrefix) {
				return nil, specErrorf("unknown kernel %s: not registered (POST the .loop source to /v1/kernels, or pass it inline)", strings.TrimPrefix(name, workload.KernelBenchPrefix))
			}
			return nil, specErrorf("unknown benchmark %q (available: %s, or kernel:<hash>)", name, strings.Join(workload.SuiteNames(), ", "))
		}
		out = append(out, b)
	}
	for _, id := range kernels {
		name := workload.KernelBenchPrefix + id
		if seen[name] {
			continue
		}
		seen[name] = true
		b, ok := workload.KernelBench(id)
		if !ok {
			return nil, specErrorf("unknown kernel %s: not registered", id)
		}
		out = append(out, b)
	}
	return out, nil
}

// ExploreCell is one evaluated grid point: one benchmark on one machine
// configuration, normalised to the bufferless baseline of the same machine.
type ExploreCell struct {
	// Index is the cell's position in the flat grid; it fully determines
	// the configuration, so shard merging is concatenation by Index.
	Index int    `json:"index"`
	Bench string `json:"bench"`

	Clusters      int `json:"clusters"`
	Entries       int `json:"entries"`
	SubblockBytes int `json:"subblock_bytes"`
	L1Latency     int `json:"l1_latency"`
	// PrefetchDist/RegBudget are the scheduler-axis coordinates (0 = the
	// spec's base Sched options / unbounded registers); Sched is the
	// resolved scheduler-backend coordinate ("sms" or "exact").
	PrefetchDist int    `json:"prefetch_dist"`
	RegBudget    int    `json:"reg_budget"`
	Sched        string `json:"sched"`

	BaseCycles int64 `json:"base_cycles"`
	Cycles     int64 `json:"cycles"`
	// NormCycles is Cycles/BaseCycles (< 1 means the buffers help) and
	// StallFrac the stall share of the L0 run's total.
	NormCycles float64 `json:"norm_cycles"`
	StallFrac  float64 `json:"stall_frac"`
	// BaseEnergy/Energy are relative memory-system energies
	// (energy.FromStats); EnergyRatio is their quotient.
	BaseEnergy  float64 `json:"base_energy"`
	Energy      float64 `json:"energy"`
	EnergyRatio float64 `json:"energy_ratio"`

	// Pareto marks cells on their benchmark's cycles-vs-energy Pareto
	// front. Only set on complete (unsharded or merged) results.
	Pareto bool `json:"pareto"`
}

// cfg builds the cell's machine configuration (L0 entries not yet applied).
func (c ExploreCell) cfg(subblockSpec int) arch.Config {
	cfg := arch.MICRO36Config().WithClusters(c.Clusters)
	cfg.L1Latency = c.L1Latency
	if subblockSpec != 0 {
		cfg.L0SubblockBytes = subblockSpec
	}
	return cfg
}

// ExploreConfig is one machine configuration aggregated over every benchmark
// of the sweep: the suite-AMEAN view of the same trade-off.
type ExploreConfig struct {
	Clusters      int     `json:"clusters"`
	Entries       int     `json:"entries"`
	SubblockBytes int     `json:"subblock_bytes"`
	L1Latency     int     `json:"l1_latency"`
	PrefetchDist  int     `json:"prefetch_dist"`
	RegBudget     int     `json:"reg_budget"`
	Sched         string  `json:"sched"`
	AMeanCycles   float64 `json:"amean_cycles"`
	AMeanEnergy   float64 `json:"amean_energy"`
	Pareto        bool    `json:"pareto"`
}

// exploreSpecID is the identity of one sweep as recorded in its results:
// the normalized axes plus the comparable scheduler-option subset. Shards of
// different sweeps can coincide in grid size and benchmark set (e.g. the
// same grid swept with and without -adaptive), so MergeExplore refuses to
// combine results whose identities differ.
type exploreSpecID struct {
	Clusters      []int `json:"clusters"`
	Entries       []int `json:"entries"`
	Subblocks     []int `json:"subblocks"`
	L1Latencies   []int `json:"l1_latencies"`
	PrefetchDists []int `json:"prefetch_dists"`
	RegBudgets    []int `json:"reg_budgets"`
	// Scheds is the resolved scheduler-backend axis; nil when it is the
	// bare heuristic (the pre-axis default), so older shard files merge.
	Scheds []string `json:"scheds,omitempty"`
	// Kernels is the resolved content-hash list of the spec's Kernels
	// field, so fleet/shard merges veto on differing submitted kernels.
	// Inline sources and hash references to the same loop converge to one
	// identity; omitempty keeps pre-kernel shard files mergeable.
	Kernels []string     `json:"kernels,omitempty"`
	Sched   schedOptsKey `json:"sched"`
}

// id records the sweep's identity on its results so MergeExplore can veto
// combining shards of different sweeps. Every ExploreSpec field must reach
// the identity or carry a //lint:nonkey justification: a new sweep axis
// that skips the identity would let shards of different sweeps merge into
// one corrupt table.
//
//lint:keyfields ExploreSpec
func (s ExploreSpec) id() exploreSpecID {
	n := s.normalized()
	kernels, err := n.resolveKernels()
	if err != nil {
		// Identity is only recorded on results, which required a successful
		// resolution already; keep the raw entries as a defensive fallback.
		kernels = n.Kernels
	}
	scheds, err := n.resolveScheds()
	if err != nil {
		scheds = n.Scheds
	}
	if len(scheds) == 1 && scheds[0] == sched.BackendSMS {
		// The bare heuristic is the pre-axis default: identical to every
		// result recorded before the axis existed, so those still merge.
		scheds = nil
	}
	return exploreSpecID{
		Clusters: n.Clusters, Entries: n.Entries,
		Subblocks: n.Subblocks, L1Latencies: n.L1Latencies,
		PrefetchDists: n.PrefetchDists, RegBudgets: n.RegBudgets,
		Scheds:  scheds,
		Kernels: kernels,
		Sched:   optsKeyOf(n.Sched),
	}
}

// ExploreResult is the outcome of one sweep (or one shard of one). A result
// is complete when it holds every cell of the grid; only complete results
// carry Pareto flags and the per-configuration AMEAN table.
type ExploreResult struct {
	Spec     exploreSpecID `json:"spec"`
	Benches  []string      `json:"benches"`
	GridSize int           `json:"grid_size"`
	// Shard/Shards record which slice of the grid this result holds
	// (0/1 for an unsharded run or a merged result).
	Shard   int             `json:"shard"`
	Shards  int             `json:"shards"`
	Cells   []ExploreCell   `json:"cells"`
	Configs []ExploreConfig `json:"configs,omitempty"`
}

// Complete reports whether every grid cell is present.
func (r *ExploreResult) Complete() bool { return len(r.Cells) == r.GridSize }

// grid enumerates every cell of the sweep with its configuration fields set
// and metrics zero, in index order: configurations outermost (clusters, then
// entries, subblocks, L1 latencies), benchmarks innermost — so the cells of
// one configuration are contiguous and AMEAN aggregation is a slice walk.
func (s ExploreSpec) grid() ([]ExploreCell, []string, error) {
	spec := s.normalized()
	benches, err := spec.benches()
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(benches))
	for i, b := range benches {
		names[i] = b.Name
	}
	scheds, err := spec.resolveScheds()
	if err != nil {
		return nil, nil, err
	}
	var cells []ExploreCell
	// Configurations are deduplicated on their *resolved* tuple: a derived
	// subblock (spec value 0) can collide with an explicitly listed size
	// (e.g. -subblock 0,8 at 4 clusters both resolve to 8), and duplicate
	// cells would double-weight every AMEAN and Pareto aggregate.
	type cfgKey struct {
		n, e, sub, lat, pd, rb int
		sc                     string
	}
	seen := map[cfgKey]bool{}
	for _, n := range spec.Clusters {
		for _, e := range spec.Entries {
			for _, sb := range spec.Subblocks {
				for _, lat := range spec.L1Latencies {
					for _, pd := range spec.PrefetchDists {
						for _, rb := range spec.RegBudgets {
							for _, sc := range scheds {
								probe := ExploreCell{Clusters: n, L1Latency: lat}
								sub := probe.cfg(sb).L0SubblockBytes
								// Like the subblock axis, scheduler-axis values
								// dedup on their *effective* value, or equivalent
								// configurations would be swept and double-counted:
								// the scheduler normalizes distance <= 0 to 1 and
								// ignores the distance entirely in adaptive mode,
								// and a non-positive register budget means
								// unbounded. Backends are canonical already
								// (resolveScheds dedups), but they join the key
								// so a future resolved collision stays deduped.
								pd, rb := spec.resolvePrefetch(pd), spec.resolveRegBudget(rb)
								k := cfgKey{n, e, sub, lat, pd, rb, sc}
								if seen[k] {
									continue
								}
								seen[k] = true
								for _, b := range benches {
									cells = append(cells, ExploreCell{
										Index: len(cells), Bench: b.Name,
										Clusters: n, Entries: e,
										SubblockBytes: sub, L1Latency: lat,
										PrefetchDist: pd, RegBudget: rb,
										Sched: sc,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, names, nil
}

// resolvePrefetch maps a PrefetchDists axis value to the distance the
// scheduler will actually use: 0 under AdaptivePrefetchDistance (the
// distance is chosen per load; the axis is inert), otherwise the spec's
// base option for axis value 0, floored at the scheduler default of 1.
func (s ExploreSpec) resolvePrefetch(pd int) int {
	if s.Sched.AdaptivePrefetchDistance {
		return 0
	}
	if pd <= 0 {
		pd = s.Sched.PrefetchDistance
	}
	if pd <= 0 {
		pd = 1
	}
	return pd
}

// resolveRegBudget maps a RegBudgets axis value to the effective budget:
// axis value 0 inherits the spec's base option; <= 0 means unbounded.
func (s ExploreSpec) resolveRegBudget(rb int) int {
	if rb <= 0 {
		rb = s.Sched.RegistersPerCluster
	}
	if rb < 0 {
		rb = 0
	}
	return rb
}

// GridBound returns a cheap upper bound on the grid size — the axis-length
// product times the benchmark count, no cell materialization — so a serving
// layer can reject an absurd request before grid() allocates anything.
func (s ExploreSpec) GridBound() (int, error) {
	n := s.normalized()
	benches, err := n.benches()
	if err != nil {
		return 0, err
	}
	scheds, err := n.resolveScheds()
	if err != nil {
		return 0, err
	}
	const maxInt = int(^uint(0) >> 1)
	bound := len(benches)
	for _, axis := range [][]int{n.Clusters, n.Entries, n.Subblocks, n.L1Latencies, n.PrefetchDists, n.RegBudgets, {}} {
		l := len(axis)
		if l == 0 {
			l = len(scheds)
		}
		if l > 0 && bound > maxInt/l {
			return maxInt, nil // saturate instead of overflowing
		}
		bound *= l
	}
	return bound, nil
}

// GridSize returns the number of cells the spec expands to.
func (s ExploreSpec) GridSize() (int, error) {
	cells, _, err := s.grid()
	if err != nil {
		return 0, err
	}
	return len(cells), nil
}

// Explore runs the sweep on the default engine configuration.
func Explore(spec ExploreSpec) (*ExploreResult, error) {
	return ExploreCfg(DefaultRunConfig(), spec, 0, 1)
}

// ParseShard parses the "-shard i/M" flag syntax shared by the CLIs
// (cmd/l0explore sharding the explore grid, cmd/l0sim its experiment list).
func ParseShard(s string) (shard, shards int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("shard: want i/M, got %q", s)
	}
	shard, err = strconv.Atoi(s[:i])
	if err == nil {
		shards, err = strconv.Atoi(s[i+1:])
	}
	if err != nil || shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("shard: want i/M with 0 <= i < M, got %q", s)
	}
	return shard, shards, nil
}

// ExploreCfg runs shard `shard` of `shards` of the sweep under an explicit
// engine configuration. Baseline runs are deduplicated per (benchmark,
// clusters, L1 latency) — the entries and subblock axes share them — and the
// whole shard (bases + cells) fans out as one flat job grid whose
// aggregation is ordered by job index, so worker count never changes any
// byte of the output.
func ExploreCfg(rc RunConfig, spec ExploreSpec, shard, shards int) (*ExploreResult, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("harness: invalid shard %d/%d", shard, shards)
	}
	all, names, err := spec.grid()
	if err != nil {
		return nil, err
	}
	spec = spec.normalized()
	// Shards take contiguous index ranges, not round-robin slices: cells of
	// one configuration are contiguous (benchmarks innermost), so a range
	// keeps each configuration's deduplicated baseline runs local to one
	// shard instead of recomputing nearly the whole baseline set per shard.
	// Any exact partition merges back byte-identically (MergeExplore only
	// requires index coverage).
	lo, hi := shard*len(all)/shards, (shard+1)*len(all)/shards
	mine := append([]ExploreCell(nil), all[lo:hi]...)

	// Deduplicated baseline jobs, keyed in first-appearance (index) order.
	type baseKey struct {
		bench           string
		clusters, l1lat int
	}
	baseIdx := map[baseKey]int{}
	var baseKeys []baseKey
	for _, c := range mine {
		k := baseKey{c.Bench, c.Clusters, c.L1Latency}
		if _, ok := baseIdx[k]; !ok {
			baseIdx[k] = len(baseKeys)
			baseKeys = append(baseKeys, k)
		}
	}

	nb := len(baseKeys)
	results, err := forEachJob(rc, nb+len(mine), func(i int) (*BenchResult, error) {
		if i < nb {
			k := baseKeys[i]
			cfg := arch.MICRO36Config().WithClusters(k.clusters).WithL0Entries(0)
			cfg.L1Latency = k.l1lat
			return RunBenchmarkCached(workload.ByName(k.bench), ArchBase, rc.options(cfg))
		}
		c := mine[i-nb]
		// SubblockBytes is already resolved (grid() derives the 0 spec
		// value), so cfg() applies it verbatim.
		opts := rc.options(c.cfg(c.SubblockBytes).WithL0Entries(c.Entries))
		opts.Sched = spec.Sched
		// The cell carries resolved axis values (see grid): 0 distance
		// only under the adaptive scheduler (where it is ignored), 0
		// budget meaning unbounded — both safe to apply verbatim. The
		// backend is the cell's canonical resolved name; the run context
		// reaches the compiler so a canceled job interrupts an exact
		// search mid-flight instead of waiting out the node budget.
		opts.Sched.PrefetchDistance = c.PrefetchDist
		opts.Sched.RegistersPerCluster = c.RegBudget
		opts.Sched.Backend = c.Sched
		if rc.Ctx != nil {
			opts.Sched.Ctx = rc.Ctx
		}
		return RunBenchmarkCached(workload.ByName(c.Bench), ArchL0, opts)
	})
	if err != nil {
		return nil, err
	}

	p := energy.DefaultParams()
	for i := range mine {
		c := &mine[i]
		base := results[baseIdx[baseKey{c.Bench, c.Clusters, c.L1Latency}]]
		l0 := results[nb+i]
		c.BaseCycles, c.Cycles = base.Total, l0.Total
		c.NormCycles = float64(l0.Total) / float64(base.Total)
		if l0.Total > 0 {
			c.StallFrac = float64(l0.Stall) / float64(l0.Total)
		}
		c.BaseEnergy = energy.FromStats(base.L0, p)
		c.Energy = energy.FromStats(l0.L0, p)
		if c.BaseEnergy > 0 {
			c.EnergyRatio = c.Energy / c.BaseEnergy
		}
	}

	res := &ExploreResult{
		Spec: spec.id(), Benches: names, GridSize: len(all),
		Shard: shard, Shards: shards, Cells: mine,
	}
	if res.Complete() {
		res.Shard, res.Shards = 0, 1
		res.finalize()
	}
	return res, nil
}

// MergeExplore combines shard results back into one complete result: cells
// are concatenated, sorted by index, checked for exact coverage, and the
// Pareto/AMEAN aggregation recomputed — cell metrics are a pure function of
// the index, so the merge is byte-identical to an unsharded run.
func MergeExplore(parts ...*ExploreResult) (*ExploreResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("harness: merge of zero explore results")
	}
	first := parts[0]
	// A truncated or never-written shard file decodes to a zero result;
	// without this check it would "merge" into an empty sweep and exit 0.
	if first.GridSize <= 0 || len(first.Benches) == 0 {
		return nil, fmt.Errorf("harness: merge input has no grid (empty or truncated shard file?)")
	}
	merged := &ExploreResult{
		Spec: first.Spec, Benches: first.Benches, GridSize: first.GridSize, Shard: 0, Shards: 1,
	}
	for _, p := range parts {
		if p.GridSize != first.GridSize || len(p.Benches) != len(first.Benches) {
			return nil, fmt.Errorf("harness: merging results of different sweeps (grid %d vs %d)", p.GridSize, first.GridSize)
		}
		// Grid size and benchmark set can coincide across different sweeps
		// (same grid ± a scheduler flag), so the recorded spec identity —
		// axes and scheduler options — must match exactly too.
		if !reflect.DeepEqual(p.Spec, first.Spec) {
			return nil, fmt.Errorf("harness: merging shards of different sweeps (%+v vs %+v)", p.Spec, first.Spec)
		}
		for i, b := range p.Benches {
			if b != first.Benches[i] {
				return nil, fmt.Errorf("harness: merging results of different benchmark sets (%q vs %q)", b, first.Benches[i])
			}
		}
		merged.Cells = append(merged.Cells, p.Cells...)
	}
	sort.Slice(merged.Cells, func(i, j int) bool { return merged.Cells[i].Index < merged.Cells[j].Index })
	if len(merged.Cells) != merged.GridSize {
		return nil, fmt.Errorf("harness: merged shards hold %d cells, grid has %d", len(merged.Cells), merged.GridSize)
	}
	for i := range merged.Cells {
		if merged.Cells[i].Index != i {
			return nil, fmt.Errorf("harness: merged shards miss or duplicate cell %d", i)
		}
	}
	merged.finalize()
	return merged, nil
}

// finalize computes the per-benchmark Pareto flags and the per-configuration
// AMEAN rows (with their own Pareto front). Requires a complete result with
// cells in index order.
func (r *ExploreResult) finalize() {
	nb := len(r.Benches)
	if nb == 0 || len(r.Cells) == 0 {
		return
	}
	// Per-benchmark fronts: benchmark bi owns cells bi, bi+nb, bi+2nb, ...
	for bi := 0; bi < nb; bi++ {
		var group []int
		for i := bi; i < len(r.Cells); i += nb {
			group = append(group, i)
		}
		flagPareto(r.Cells, group)
	}
	// Per-configuration AMEANs: the nb cells of one configuration are
	// contiguous.
	r.Configs = r.Configs[:0]
	for start := 0; start < len(r.Cells); start += nb {
		c0 := r.Cells[start]
		cfg := ExploreConfig{
			Clusters: c0.Clusters, Entries: c0.Entries,
			SubblockBytes: c0.SubblockBytes, L1Latency: c0.L1Latency,
			PrefetchDist: c0.PrefetchDist, RegBudget: c0.RegBudget,
			Sched: c0.Sched,
		}
		for _, c := range r.Cells[start : start+nb] {
			cfg.AMeanCycles += c.NormCycles
			cfg.AMeanEnergy += c.EnergyRatio
		}
		cfg.AMeanCycles /= float64(nb)
		cfg.AMeanEnergy /= float64(nb)
		r.Configs = append(r.Configs, cfg)
	}
	flagConfigPareto(r.Configs)
}

// paretoMask returns, for n points read through xy, whether each point is
// non-dominated: no other point is <= on both axes and < on at least one
// (lower is better on both). Shared by the per-benchmark and
// per-configuration fronts so the dominance rule can never diverge.
func paretoMask(n int, xy func(int) (float64, float64)) []bool {
	mask := make([]bool, n)
	for i := 0; i < n; i++ {
		xi, yi := xy(i)
		dominated := false
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			xj, yj := xy(j)
			if xj <= xi && yj <= yi && (xj < xi || yj < yi) {
				dominated = true
				break
			}
		}
		mask[i] = !dominated
	}
	return mask
}

// flagPareto sets Pareto on the cells (by position in cells) that no other
// group member dominates on (NormCycles, EnergyRatio).
func flagPareto(cells []ExploreCell, group []int) {
	mask := paretoMask(len(group), func(k int) (float64, float64) {
		c := &cells[group[k]]
		return c.NormCycles, c.EnergyRatio
	})
	for k, i := range group {
		cells[i].Pareto = mask[k]
	}
}

func flagConfigPareto(cfgs []ExploreConfig) {
	mask := paretoMask(len(cfgs), func(k int) (float64, float64) {
		return cfgs[k].AMeanCycles, cfgs[k].AMeanEnergy
	})
	for i := range cfgs {
		cfgs[i].Pareto = mask[i]
	}
}
