package harness

import "testing"

// evictAlways treats every entry as completed (the common case in unit
// tests; the in-flight case gets its own test).
func evictAlways(int) bool { return true }

func keysOf(c *lruCache[string, int]) map[string]bool {
	got := map[string]bool{}
	c.each(func(k string, _ int) bool {
		got[k] = true
		return true
	})
	return got
}

func TestLRUEntryCapEvictsLeastRecent(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	c.setLimits(2, -1)
	for i, k := range []string{"a", "b"} {
		if _, created, ok := c.getOrCreate(k, func() int { return i }); !created || !ok {
			t.Fatalf("insert %q: created=%v ok=%v", k, created, ok)
		}
	}
	// Touch "a" so "b" is the least-recently-used entry.
	if _, created, _ := c.getOrCreate("a", func() int { return 99 }); created {
		t.Fatalf("touching %q created a new entry", "a")
	}
	c.getOrCreate("c", func() int { return 2 })
	got := keysOf(c)
	if !got["a"] || !got["c"] || got["b"] {
		t.Errorf("after eviction resident=%v, want a and c (b evicted)", got)
	}
	if n := c.evictions.Load(); n != 1 {
		t.Errorf("evictions=%d, want 1", n)
	}
}

func TestLRUByteCapEvictsOnCharge(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	c.setLimits(-1, 100)
	c.getOrCreate("a", func() int { return 0 })
	c.charge("a", 60)
	c.getOrCreate("b", func() int { return 1 })
	c.charge("b", 60) // 120 > 100: "a" must go
	got := keysOf(c)
	if got["a"] || !got["b"] {
		t.Errorf("after byte-cap eviction resident=%v, want only b", got)
	}
	if b := c.costBytes(); b != 60 {
		t.Errorf("costBytes=%d, want 60", b)
	}
	// Re-charging an existing key replaces its cost, not accumulates it.
	c.charge("b", 40)
	if b := c.costBytes(); b != 40 {
		t.Errorf("after recharge costBytes=%d, want 40", b)
	}
	// Charging an evicted key is a no-op.
	c.charge("a", 1000)
	if b := c.costBytes(); b != 40 {
		t.Errorf("charge on evicted key changed costBytes to %d", b)
	}
}

func TestLRUZeroCapDisables(t *testing.T) {
	for _, limits := range [][2]int64{{0, -1}, {-1, 0}, {0, 0}} {
		c := newLRUCache[string, int](evictAlways)
		c.getOrCreate("old", func() int { return 0 })
		c.setLimits(int(limits[0]), limits[1])
		if !c.disabled() {
			t.Errorf("limits %v: cache not disabled", limits)
		}
		if c.len() != 0 {
			t.Errorf("limits %v: %d entries survived a zero cap", limits, c.len())
		}
		if _, _, ok := c.getOrCreate("k", func() int { return 1 }); ok {
			t.Errorf("limits %v: disabled cache admitted an entry", limits)
		}
	}
}

func TestLRUSetLimitsEvictsImmediately(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.getOrCreate(k, func() int { return 0 })
	}
	c.setLimits(1, -1)
	if n := c.len(); n != 1 {
		t.Errorf("after shrinking cap, %d entries resident, want 1", n)
	}
	if got := keysOf(c); !got["d"] {
		t.Errorf("shrink kept %v, want the most recent d", got)
	}
}

// TestLRUInFlightSurvivesEviction pins the single-flight contract: an entry
// whose fill has not completed is skipped by eviction (evicting it would
// detach waiters and re-admit the key mid-fill), and the cap is enforced
// again once the fill lands.
func TestLRUInFlightSurvivesEviction(t *testing.T) {
	done := map[string]bool{}
	c := newLRUCache[string, string](func(k string) bool { return done[k] })
	c.setLimits(1, -1)
	c.getOrCreate("inflight", func() string { return "inflight" })
	c.getOrCreate("b", func() string { return "b" })
	if got := map[string]bool{}; true {
		c.each(func(k, _ string) bool { got[k] = true; return true })
		if !got["inflight"] {
			t.Fatalf("in-flight entry was evicted; resident=%v", got)
		}
	}
	// The fill completes: the next overflow check may now retire it.
	done["inflight"] = true
	done["b"] = true
	c.getOrCreate("c", func() string { return "c" })
	if n := c.len(); n != 1 {
		t.Errorf("after fills completed, %d entries resident, want cap of 1", n)
	}
}
