package harness

import (
	"fmt"
	"sync"
	"testing"
)

// evictAlways treats every entry as completed (the common case in unit
// tests; the in-flight case gets its own test).
func evictAlways(int) bool { return true }

func keysOf(c *lruCache[string, int]) map[string]bool {
	got := map[string]bool{}
	c.each(func(k string, _ int) bool {
		got[k] = true
		return true
	})
	return got
}

func TestLRUEntryCapEvictsLeastRecent(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	c.setLimits(2, -1)
	for i, k := range []string{"a", "b"} {
		if _, created, ok := c.getOrCreate(k, func() int { return i }); !created || !ok {
			t.Fatalf("insert %q: created=%v ok=%v", k, created, ok)
		}
	}
	// Touch "a" so "b" is the least-recently-used entry.
	if _, created, _ := c.getOrCreate("a", func() int { return 99 }); created {
		t.Fatalf("touching %q created a new entry", "a")
	}
	c.getOrCreate("c", func() int { return 2 })
	got := keysOf(c)
	if !got["a"] || !got["c"] || got["b"] {
		t.Errorf("after eviction resident=%v, want a and c (b evicted)", got)
	}
	if n := c.evictions.Load(); n != 1 {
		t.Errorf("evictions=%d, want 1", n)
	}
}

func TestLRUByteCapEvictsOnCharge(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	c.setLimits(-1, 100)
	c.getOrCreate("a", func() int { return 0 })
	c.charge("a", 60)
	c.getOrCreate("b", func() int { return 1 })
	c.charge("b", 60) // 120 > 100: "a" must go
	got := keysOf(c)
	if got["a"] || !got["b"] {
		t.Errorf("after byte-cap eviction resident=%v, want only b", got)
	}
	if b := c.costBytes(); b != 60 {
		t.Errorf("costBytes=%d, want 60", b)
	}
	// Re-charging an existing key replaces its cost, not accumulates it.
	c.charge("b", 40)
	if b := c.costBytes(); b != 40 {
		t.Errorf("after recharge costBytes=%d, want 40", b)
	}
	// Charging an evicted key is a no-op.
	c.charge("a", 1000)
	if b := c.costBytes(); b != 40 {
		t.Errorf("charge on evicted key changed costBytes to %d", b)
	}
}

func TestLRUZeroCapDisables(t *testing.T) {
	for _, limits := range [][2]int64{{0, -1}, {-1, 0}, {0, 0}} {
		c := newLRUCache[string, int](evictAlways)
		c.getOrCreate("old", func() int { return 0 })
		c.setLimits(int(limits[0]), limits[1])
		if !c.disabled() {
			t.Errorf("limits %v: cache not disabled", limits)
		}
		if c.len() != 0 {
			t.Errorf("limits %v: %d entries survived a zero cap", limits, c.len())
		}
		if _, _, ok := c.getOrCreate("k", func() int { return 1 }); ok {
			t.Errorf("limits %v: disabled cache admitted an entry", limits)
		}
	}
}

func TestLRUSetLimitsEvictsImmediately(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.getOrCreate(k, func() int { return 0 })
	}
	c.setLimits(1, -1)
	if n := c.len(); n != 1 {
		t.Errorf("after shrinking cap, %d entries resident, want 1", n)
	}
	if got := keysOf(c); !got["d"] {
		t.Errorf("shrink kept %v, want the most recent d", got)
	}
}

// TestLRUParallelHammer drives every cache operation from many goroutines at
// once under a byte cap small enough to keep eviction walks running: hits,
// racing inserts with post-fill charging, cap re-tuning and stats reads. Run
// with -race this is the regression gate for the lock-narrowing work (the
// hit path must never serialize behind an eviction walk, and must never race
// one either). Invariants are checked after quiescing: the caps hold and the
// byte ledger matches the resident entries exactly.
func TestLRUParallelHammer(t *testing.T) {
	c := newLRUCache[string, int](evictAlways)
	c.setLimits(64, 6400)
	const (
		goroutines = 8
		opsEach    = 2000
		keySpace   = 128
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%keySpace)
				_, created, ok := c.getOrCreate(k, func() int { return i })
				if ok && created {
					c.charge(k, int64(50+i%100))
				}
				switch i % 97 {
				case 13:
					c.setLimits(32+g, 3200)
				case 29:
					c.setLimits(64, 6400)
				case 51:
					c.len()
					c.costBytes()
				case 73:
					c.each(func(string, int) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: reapply the caps (drains pending recency notes and enforces
	// the bounds), then audit the ledger against the resident set.
	c.setLimits(64, 6400)
	if n := c.len(); n > 64 {
		t.Errorf("after hammer, %d entries resident, cap is 64", n)
	}
	if b := c.costBytes(); b > 6400 {
		t.Errorf("after hammer, %d bytes charged, cap is 6400", b)
	}
	if n := c.evictions.Load(); n == 0 {
		t.Error("hammer never evicted; the test is not exercising eviction walks")
	}
}

// BenchmarkLRUHitParallel measures the hit path under concurrent churn: most
// goroutines re-read a resident working set while every 64th operation
// inserts+charges a fresh key under a tight byte cap, so eviction walks run
// continuously. Before the lock-narrowing this serialized every hit behind
// the same mutex those walks hold.
func BenchmarkLRUHitParallel(b *testing.B) {
	c := newLRUCache[int, int](evictAlways)
	c.setLimits(-1, 1<<16)
	for k := 0; k < 256; k++ {
		c.getOrCreate(k, func() int { return k })
		c.charge(k, 64)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%64 == 0 {
				k := 1 << 20 // fresh key space: forces insert + eviction
				k += i
				if _, created, ok := c.getOrCreate(k, func() int { return k }); ok && created {
					c.charge(k, 512)
				}
				continue
			}
			c.getOrCreate(i%256, func() int { return 0 })
		}
	})
}

// TestLRUInFlightSurvivesEviction pins the single-flight contract: an entry
// whose fill has not completed is skipped by eviction (evicting it would
// detach waiters and re-admit the key mid-fill), and the cap is enforced
// again once the fill lands.
func TestLRUInFlightSurvivesEviction(t *testing.T) {
	done := map[string]bool{}
	c := newLRUCache[string, string](func(k string) bool { return done[k] })
	c.setLimits(1, -1)
	c.getOrCreate("inflight", func() string { return "inflight" })
	c.getOrCreate("b", func() string { return "b" })
	if got := map[string]bool{}; true {
		c.each(func(k, _ string) bool { got[k] = true; return true })
		if !got["inflight"] {
			t.Fatalf("in-flight entry was evicted; resident=%v", got)
		}
	}
	// The fill completes: the next overflow check may now retire it.
	done["inflight"] = true
	done["b"] = true
	c.getOrCreate("c", func() string { return "c" })
	if n := c.len(); n != 1 {
		t.Errorf("after fills completed, %d entries resident, want cap of 1", n)
	}
}
