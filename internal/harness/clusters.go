package harness

import (
	"io"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ClusterPoint is one cell of the cluster-scaling experiment: execution time
// of the L0 architecture with n clusters, normalised to the same n-cluster
// machine without buffers — i.e. how much the buffers buy at each scale.
type ClusterPoint struct {
	Bench    string
	Clusters int
	Norm     float64
}

// ClusterSweep evaluates the L0 benefit at different cluster counts (the
// paper's §3 "can be extended to any number of clusters"). Each count is
// normalised within itself so the numbers isolate the buffers' contribution
// rather than the machine width.
func ClusterSweep(counts []int, entries int) ([][]ClusterPoint, error) {
	var out [][]ClusterPoint
	for _, b := range workload.Suite() {
		var row []ClusterPoint
		for _, n := range counts {
			cfg := arch.MICRO36Config().WithClusters(n).WithL0Entries(entries)
			base, err := RunBenchmark(b, ArchBase, Options{Cfg: cfg})
			if err != nil {
				return nil, err
			}
			l0, err := RunBenchmark(b, ArchL0, Options{Cfg: cfg})
			if err != nil {
				return nil, err
			}
			row = append(row, ClusterPoint{
				Bench:    b.Name,
				Clusters: n,
				Norm:     float64(l0.Total) / float64(base.Total),
			})
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderClusterSweep prints the sweep.
func RenderClusterSweep(w io.Writer, points [][]ClusterPoint, counts []int) {
	t := &stats.Table{Title: "L0 benefit vs cluster count (normalized to the same machine without buffers)"}
	t.Header = []string{"bench"}
	for _, n := range counts {
		t.Header = append(t.Header, stats.F1(float64(n))+" clusters")
	}
	means := make([]float64, len(counts))
	for _, row := range points {
		cells := []string{row[0].Bench}
		for i, p := range row {
			cells = append(cells, stats.F2(p.Norm))
			means[i] += p.Norm
		}
		t.Add(cells...)
	}
	cells := []string{"AMEAN"}
	for i := range counts {
		cells = append(cells, stats.F2(means[i]/float64(len(points))))
	}
	t.Add(cells...)
	t.Render(w)
}
