package harness

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ClusterPoint is one cell of the cluster-scaling experiment: execution time
// of the L0 architecture with n clusters, normalised to the same n-cluster
// machine without buffers — i.e. how much the buffers buy at each scale.
type ClusterPoint struct {
	Bench    string
	Clusters int
	Norm     float64
}

// ClusterSweep evaluates the L0 benefit at different cluster counts (the
// paper's §3 "can be extended to any number of clusters"). Each count is
// normalised within itself so the numbers isolate the buffers' contribution
// rather than the machine width.
func ClusterSweep(counts []int, entries int) ([][]ClusterPoint, error) {
	return ClusterSweepCfg(DefaultRunConfig(), counts, entries)
}

// ClusterSweepCfg is ClusterSweep under an explicit engine configuration:
// one job per benchmark × cluster count × {base, l0}.
func ClusterSweepCfg(rc RunConfig, counts []int, entries int) ([][]ClusterPoint, error) {
	suite := workload.Suite()
	stride := 2 * len(counts)
	results, err := forEachJob(rc, len(suite)*stride, func(i int) (*BenchResult, error) {
		b := suite[i/stride]
		j := i % stride
		cfg := arch.MICRO36Config().WithClusters(counts[j/2]).WithL0Entries(entries)
		a := ArchBase
		if j%2 == 1 {
			a = ArchL0
		}
		return RunBenchmark(b, a, rc.options(cfg))
	})
	if err != nil {
		return nil, err
	}
	var out [][]ClusterPoint
	for bi, b := range suite {
		var row []ClusterPoint
		for j, n := range counts {
			base := results[bi*stride+2*j]
			l0 := results[bi*stride+2*j+1]
			row = append(row, ClusterPoint{
				Bench:    b.Name,
				Clusters: n,
				Norm:     float64(l0.Total) / float64(base.Total),
			})
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderClusterSweep prints the sweep, returning the first write error.
func RenderClusterSweep(w io.Writer, points [][]ClusterPoint, counts []int) error {
	t := &stats.Table{Title: "L0 benefit vs cluster count (normalized to the same machine without buffers)"}
	t.Header = []string{"bench"}
	for _, n := range counts {
		t.Header = append(t.Header, fmt.Sprintf("%d clusters", n))
	}
	means := make([]float64, len(counts))
	for _, row := range points {
		cells := []string{row[0].Bench}
		for i, p := range row {
			cells = append(cells, stats.F2(p.Norm))
			means[i] += p.Norm
		}
		t.Add(cells...)
	}
	cells := []string{"AMEAN"}
	for i := range counts {
		cells = append(cells, stats.F2(means[i]/float64(len(points))))
	}
	t.Add(cells...)
	return t.Render(w)
}
