// Acceptance tests for content-addressed kernel identity: user-submitted
// .loop kernels swept by hash through the same cache, snapshot and shard
// machinery as the suite, plus the v2-snapshot compatibility gate.
package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// userKernelSrc is a deliberately non-canonical spelling (comments, odd
// spacing, descriptive register names): registration must normalize it to
// the same identity as its canonical form.
const userKernelSrc = `
# user-submitted mac kernel
loop usermac 512
array acc 8192 4
array coef 8192 4

a    = load acc  0 4 4
c    = load coef 0 4 4
prod = mul a c
sum  = int prod
store acc 0 4 4 sum
`

func kernelSweepSpec(ref string) ExploreSpec {
	return ExploreSpec{
		Kernels:  []string{ref},
		Clusters: []int{4, 8},
		Entries:  []int{4, 8},
	}
}

// TestKernelSweepByHash is the tentpole acceptance path in-process: register
// a kernel, sweep it by hash, and verify the repeat sweep is served entirely
// from the result cache; a snapshot reload into an empty process then serves
// the same sweep with zero compiles, byte-identically.
func TestKernelSweepByHash(t *testing.T) {
	ResetCaches()
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()

	reg, err := workload.RegisterKernelSource(userKernelSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	spec := kernelSweepSpec(reg.ID)

	var cold CacheCounters
	coldRes, err := ExploreCfg(RunConfig{Workers: 2, Counters: &cold}, spec, 0, 1)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if cold.Compiles.Load() == 0 || cold.Simulations.Load() == 0 {
		t.Fatalf("cold sweep computed nothing: test is vacuous")
	}
	if len(coldRes.Benches) != 1 || coldRes.Benches[0] != workload.KernelBenchPrefix+reg.ID {
		t.Fatalf("sweep benches = %v, want the kernel pseudo-benchmark", coldRes.Benches)
	}
	if len(coldRes.Spec.Kernels) != 1 || coldRes.Spec.Kernels[0] != reg.ID {
		t.Fatalf("spec identity kernels = %v, want [%s]", coldRes.Spec.Kernels, reg.ID)
	}
	var coldJSON bytes.Buffer
	if err := WriteExploreJSON(&coldJSON, coldRes); err != nil {
		t.Fatalf("render cold: %v", err)
	}

	// Repeat sweep: served from the result cache, zero work.
	var warm CacheCounters
	warmRes, err := ExploreCfg(RunConfig{Workers: 2, Counters: &warm}, spec, 0, 1)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if warm.Compiles.Load() != 0 || warm.Simulations.Load() != 0 || warm.SimHits.Load() == 0 {
		t.Errorf("warm sweep: compiles=%d simulations=%d sim hits=%d, want 0/0/>0",
			warm.Compiles.Load(), warm.Simulations.Load(), warm.SimHits.Load())
	}
	var warmJSON bytes.Buffer
	if err := WriteExploreJSON(&warmJSON, warmRes); err != nil {
		t.Fatalf("render warm: %v", err)
	}
	if !bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()) {
		t.Errorf("warm kernel sweep differs from cold run")
	}

	// An inline-source spec for the same loop is the same sweep: same spec
	// identity, same bytes, still no recomputation.
	var inline CacheCounters
	inlineRes, err := ExploreCfg(RunConfig{Workers: 2, Counters: &inline},
		kernelSweepSpec(userKernelSrc), 0, 1)
	if err != nil {
		t.Fatalf("inline-source sweep: %v", err)
	}
	if inline.Compiles.Load() != 0 || inline.Simulations.Load() != 0 {
		t.Errorf("inline-source sweep recomputed: compiles=%d simulations=%d",
			inline.Compiles.Load(), inline.Simulations.Load())
	}
	var inlineJSON bytes.Buffer
	if err := WriteExploreJSON(&inlineJSON, inlineRes); err != nil {
		t.Fatalf("render inline: %v", err)
	}
	if !bytes.Equal(coldJSON.Bytes(), inlineJSON.Bytes()) {
		t.Errorf("inline-source sweep differs from hash sweep")
	}

	// Snapshot the caches (v3: carries the kernel source), reload into an
	// empty process state, and sweep again: zero compiles, zero simulations,
	// byte-identical — even though the registry was wiped in between.
	var snap bytes.Buffer
	if err := ExportScheduleCache(&snap); err != nil {
		t.Fatalf("export: %v", err)
	}
	if !strings.Contains(snap.String(), reg.ID) {
		t.Fatalf("snapshot does not mention the kernel hash")
	}
	ResetCaches()
	workload.ResetKernelRegistry()
	st, err := ImportScheduleCache(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if st.Kernels != 1 || st.Schedules == 0 || st.Results == 0 || st.Skipped != 0 {
		t.Fatalf("import stats %+v: want 1 kernel, schedules > 0, results > 0, 0 skipped", st)
	}
	var reload CacheCounters
	reloadRes, err := ExploreCfg(RunConfig{Workers: 2, Counters: &reload}, spec, 0, 1)
	if err != nil {
		t.Fatalf("post-reload sweep: %v", err)
	}
	if reload.Compiles.Load() != 0 || reload.Simulations.Load() != 0 {
		t.Errorf("post-reload sweep: compiles=%d simulations=%d, want 0/0",
			reload.Compiles.Load(), reload.Simulations.Load())
	}
	var reloadJSON bytes.Buffer
	if err := WriteExploreJSON(&reloadJSON, reloadRes); err != nil {
		t.Fatalf("render post-reload: %v", err)
	}
	if !bytes.Equal(coldJSON.Bytes(), reloadJSON.Bytes()) {
		t.Errorf("post-reload kernel sweep differs from cold run")
	}
	ResetCaches()
}

// TestKernelShardMergeAndVeto: a sharded kernel sweep merges back
// byte-identically, and shards of sweeps with different submitted kernels
// refuse to merge (the spec identity covers the kernel list).
func TestKernelShardMergeAndVeto(t *testing.T) {
	ResetCaches()
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()
	defer ResetCaches()

	reg, err := workload.RegisterKernelSource(userKernelSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	spec := kernelSweepSpec(reg.ID)
	spec.Benches = []string{"gsmdec"} // mixed suite + user kernel grid

	full, err := ExploreCfg(RunConfig{Workers: 2}, spec, 0, 1)
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	s0, err := ExploreCfg(RunConfig{Workers: 2}, spec, 0, 2)
	if err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	s1, err := ExploreCfg(RunConfig{Workers: 2}, spec, 1, 2)
	if err != nil {
		t.Fatalf("shard 1: %v", err)
	}
	merged, err := MergeExplore(s0, s1)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	var fullJSON, mergedJSON bytes.Buffer
	if err := WriteExploreJSON(&fullJSON, full); err != nil {
		t.Fatal(err)
	}
	if err := WriteExploreJSON(&mergedJSON, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullJSON.Bytes(), mergedJSON.Bytes()) {
		t.Errorf("merged sharded kernel sweep differs from unsharded run")
	}

	// Same axes, same grid size, but no kernel submitted: the spec identity
	// differs in Kernels alone and the merge must refuse.
	other := spec
	other.Kernels = nil
	o0, err := ExploreCfg(RunConfig{Workers: 2}, other, 0, 2)
	if err != nil {
		t.Fatalf("other shard: %v", err)
	}
	if _, err := MergeExplore(s0, o0); err == nil {
		t.Errorf("merge of shards with different kernel lists succeeded")
	}
}

// TestImportV2Fixture pins backward compatibility: a genuine v2 snapshot
// (committed under testdata, written by the previous release's positional
// keying) must still import cleanly and serve its grid with zero compiles
// and zero simulations.
func TestImportV2Fixture(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	st, err := LoadCacheFile("testdata/cache_v2.json")
	if err != nil {
		t.Fatalf("load v2 fixture: %v", err)
	}
	if st.Schedules != 12 || st.Unrolls != 4 || st.Results != 3 || st.Kernels != 0 || st.Skipped != 0 {
		t.Fatalf("v2 fixture import stats %+v: want 12 schedules, 4 unrolls, 3 results, 0 skipped", st)
	}
	spec := ExploreSpec{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{4, 8}}
	var c CacheCounters
	if _, err := ExploreCfg(RunConfig{Workers: 2, Counters: &c}, spec, 0, 1); err != nil {
		t.Fatalf("sweep over v2-loaded caches: %v", err)
	}
	if c.Compiles.Load() != 0 || c.Simulations.Load() != 0 {
		t.Errorf("sweep over v2-loaded caches: compiles=%d simulations=%d, want 0/0",
			c.Compiles.Load(), c.Simulations.Load())
	}
}

// TestSpecErrors pins the satellite fix: an unknown benchmark name reports
// the available names, and spec mistakes are typed (IsSpecError) so the
// server can 400 them.
func TestSpecErrors(t *testing.T) {
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()

	_, err := ExploreSpec{Benches: []string{"nosuchbench"}}.GridSize()
	if err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
	if !IsSpecError(err) {
		t.Errorf("unknown benchmark error is not a SpecError: %v", err)
	}
	if !strings.Contains(err.Error(), "gsmdec") || !strings.Contains(err.Error(), "rasta") {
		t.Errorf("unknown-benchmark error does not list available names: %v", err)
	}

	unregistered := strings.Repeat("ab", 32)
	_, err = ExploreSpec{Kernels: []string{unregistered}}.GridSize()
	if err == nil || !IsSpecError(err) {
		t.Errorf("unregistered kernel hash: err = %v, want SpecError", err)
	}
	_, err = ExploreSpec{Kernels: []string{"loop broken"}}.GridSize()
	if err == nil || !IsSpecError(err) {
		t.Errorf("bad kernel source: err = %v, want SpecError", err)
	}
	if err := func() error { _, err := ExploreCfg(RunConfig{}, ExploreSpec{}, 2, 1); return err }(); err == nil || IsSpecError(err) {
		t.Errorf("shard-range error should not be a SpecError: %v", err)
	}
}
