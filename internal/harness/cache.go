// Schedule-cache observability and persistence. The memoized compiles of
// engine.go are deterministic, so they can be serialized — a versioned,
// deterministic snapshot keyed exactly like the in-memory cache — and
// reloaded into a fresh process, making cold starts of the exploration
// server and repeated shard fan-outs near-instant: a sweep whose grid was
// compiled by an earlier process performs zero sched.Compile calls.
//
// Serialized entries do not carry loop bodies or array addresses. Both are
// deterministic: kernels are pure builders, base addresses are a function of
// the benchmark's kernel order, and unrolling is reproducible from the
// recorded factor. The importer rebuilds each loop the same way
// compileKernelUncached did and binds the encoded schedule back to it,
// validating against drift (a changed array layout, a corrupted kernel ID or
// an incompatible format version is rejected or skipped, never half-loaded).
//
// Since format v3, schedule and unroll records carry the kernel's content
// hash (workload.KernelIDOf) instead of the positional (bench, kernel, idx)
// triple, and the snapshot carries the canonical source of every registered
// user kernel — so persisted caches survive benchmark renames and stay sound
// for user-submitted kernels. v1/v2 snapshots still import: their positional
// identities are resolved to content hashes against the live suite at load.

package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/unroll"
	"repro/internal/workload"
)

// CacheCounters tracks schedule- and result-cache traffic. One
// process-global instance backs CacheStatsNow; runs can carry their own via
// RunConfig.Counters.
type CacheCounters struct {
	// Hits/Misses count cacheable compilations served from / inserted
	// into the schedule cache.
	Hits, Misses atomic.Int64
	// Bypassed counts compilations that could not be cached because the
	// scheduler options carry per-run callbacks (see cacheable): these
	// silently skip memoization, so the counter is the only way to see a
	// bypass regression.
	Bypassed atomic.Int64
	// Disabled counts compilations that skipped the cache because the run
	// asked for it (DisableScheduleCache) or the cache is capped to zero.
	Disabled atomic.Int64
	// Compiles counts actual kernel compilations (cache misses plus every
	// bypassed/disabled build). A warm-cache sweep performs zero.
	Compiles atomic.Int64
	// SimHits/SimMisses/SimBypassed/SimDisabled mirror the four compile
	// counters for the simulation-result cache (RunBenchmarkCached).
	SimHits, SimMisses, SimBypassed, SimDisabled atomic.Int64
	// Simulations counts actual benchmark simulations (RunBenchmark
	// executions). A warm-result sweep performs zero.
	Simulations atomic.Int64
	// ExactSearches counts exact-backend solver runs that actually
	// executed (compiled, not served from cache); ExactNodes totals the
	// branch nodes those searches explored. A repeat exact query that hits
	// the schedule cache moves neither.
	ExactSearches, ExactNodes atomic.Int64
}

func (c *CacheCounters) reset() {
	c.Hits.Store(0)
	c.Misses.Store(0)
	c.Bypassed.Store(0)
	c.Disabled.Store(0)
	c.Compiles.Store(0)
	c.SimHits.Store(0)
	c.SimMisses.Store(0)
	c.SimBypassed.Store(0)
	c.SimDisabled.Store(0)
	c.Simulations.Store(0)
	c.ExactSearches.Store(0)
	c.ExactNodes.Store(0)
}

// Snapshot returns the counters as plain values.
func (c *CacheCounters) Snapshot() CacheStats {
	return CacheStats{
		Hits:        c.Hits.Load(),
		Misses:      c.Misses.Load(),
		Bypassed:    c.Bypassed.Load(),
		Disabled:    c.Disabled.Load(),
		Compiles:    c.Compiles.Load(),
		SimHits:     c.SimHits.Load(),
		SimMisses:   c.SimMisses.Load(),
		SimBypassed: c.SimBypassed.Load(),
		SimDisabled: c.SimDisabled.Load(),
		Simulations: c.Simulations.Load(),

		ExactSearches: c.ExactSearches.Load(),
		ExactNodes:    c.ExactNodes.Load(),
	}
}

// CacheStats is a point-in-time view of the two bounded caches: entry
// counts, byte estimates and eviction totals plus the traffic counters
// (JSON-tagged; served by /v1/cachestats).
type CacheStats struct {
	ScheduleEntries   int   `json:"schedule_entries"`
	UnrollEntries     int   `json:"unroll_entries"`
	ResultEntries     int   `json:"result_entries"`
	KernelEntries     int   `json:"kernel_entries"`
	ScheduleBytes     int64 `json:"schedule_bytes"`
	ResultBytes       int64 `json:"result_bytes"`
	ScheduleEvictions int64 `json:"schedule_evictions"`
	ResultEvictions   int64 `json:"result_evictions"`

	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Bypassed int64 `json:"bypassed"`
	Disabled int64 `json:"disabled"`
	Compiles int64 `json:"compiles"`

	SimHits     int64 `json:"sim_hits"`
	SimMisses   int64 `json:"sim_misses"`
	SimBypassed int64 `json:"sim_bypassed"`
	SimDisabled int64 `json:"sim_disabled"`
	Simulations int64 `json:"simulations"`

	ExactSearches int64 `json:"exact_searches"`
	ExactNodes    int64 `json:"exact_nodes"`
}

var globalCacheCounters CacheCounters

// CacheStatsNow snapshots the process-global cache state.
func CacheStatsNow() CacheStats {
	s := globalCacheCounters.Snapshot()
	scheduleCache.each(func(_ compileKey, e *compileEntry) bool {
		if e.done.Load() {
			s.ScheduleEntries++
		}
		return true
	})
	resultCache.each(func(_ resultKey, e *resultEntry) bool {
		if e.done.Load() {
			s.ResultEntries++
		}
		return true
	})
	unrollCache.Range(func(_, v any) bool {
		if v.(*unrollEntry).done.Load() {
			s.UnrollEntries++
		}
		return true
	})
	s.KernelEntries = workload.KernelRegistryLen()
	s.ScheduleBytes = scheduleCache.costBytes()
	s.ResultBytes = resultCache.costBytes()
	s.ScheduleEvictions = scheduleCache.evictions.Load()
	s.ResultEvictions = resultCache.evictions.Load()
	return s
}

// CacheFormatVersion identifies the persisted snapshot layout. Bump it when
// the encoding, the cache keys, or anything the importer reconstructs from
// (kernel builders, address assignment, unrolling) changes incompatibly;
// old snapshots are then rejected at load instead of poisoning results.
// Simulation results carry no structural drift-check beyond the workload
// shape, so any change to simulator *behaviour* must also bump this — a
// stale persisted result would otherwise silently shadow the new numbers.
//
// Version 2 added the simulation-result records and the per-schedule
// encoding version (sched.EncodingVersion). Version 3 rekeyed schedule and
// unroll records by kernel content hash (plus the explicit base address)
// and added the registered-kernel table, so snapshots stay sound for
// user-submitted kernels. Version-1/2 snapshots are still accepted: their
// positional identities are resolved to content hashes at import.
const CacheFormatVersion = 3

// minCacheFormatVersion is the oldest snapshot layout the importer still
// understands.
const minCacheFormatVersion = 1

// scheduleRecord is one persisted compilation: the full cache key in stable
// form plus the compiled artifact (factor, address-space consumption, and
// the pointer-free schedule encoding). v3 records identify the kernel by
// content hash and explicit base address; the Bench/Kernel/Idx triple is the
// v1/v2 positional identity, read at import only.
type scheduleRecord struct {
	KernelID string `json:"kernel_id,omitempty"`
	// Base is the array base address the compile assigned from (always
	// >= 1<<16 when present, so omitempty never hides a real value).
	Base int64 `json:"base,omitempty"`

	Bench  string `json:"bench,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	Idx    int    `json:"idx,omitempty"`

	Entries  int          `json:"entries"`
	Cfg      arch.Config  `json:"cfg"`
	Opts     schedOptsKey `json:"opts"`
	Fallback bool         `json:"fallback,omitempty"`

	Factor    int                    `json:"factor"`
	BaseDelta int64                  `json:"base_delta"`
	Schedule  *sched.EncodedSchedule `json:"schedule"`
}

// unrollRecord is one persisted §5.1 unroll decision (KernelID since v3;
// Bench/Kernel/Idx are the legacy import-only identity).
type unrollRecord struct {
	KernelID string      `json:"kernel_id,omitempty"`
	Bench    string      `json:"bench,omitempty"`
	Kernel   string      `json:"kernel,omitempty"`
	Idx      int         `json:"idx,omitempty"`
	Cfg      arch.Config `json:"cfg"`
	Factor   int         `json:"factor"`
}

// resultRecord is one persisted benchmark simulation: the full result-cache
// key in stable form plus the finished BenchResult. Bench stays first-class
// (the name reaches the output bytes); BenchID (since v3) is the content
// identity the importer checks against the live workload so a result never
// survives a content change hiding behind an unchanged name.
type resultRecord struct {
	Bench     string       `json:"bench"`
	BenchID   string       `json:"bench_id,omitempty"`
	Arch      string       `json:"arch"`
	Cfg       arch.Config  `json:"cfg"`
	Opts      schedOptsKey `json:"opts"`
	Coherence bool         `json:"coherence,omitempty"`
	Fallback  bool         `json:"fallback,omitempty"`

	Result *BenchResult `json:"result"`
}

// cacheSnapshot is the on-disk form. Export always writes the current
// version; Import additionally accepts the older layouts down to
// minCacheFormatVersion (a v1 snapshot holds no Results; v1/v2 hold no
// Kernels). Kernels is the registered user-kernel table — imported first so
// the hash-keyed records that follow can resolve their loops.
type cacheSnapshot struct {
	Version   int                         `json:"version"`
	Kernels   []workload.RegisteredKernel `json:"kernels,omitempty"`
	Schedules []scheduleRecord            `json:"schedules"`
	Unrolls   []unrollRecord              `json:"unrolls"`
	Results   []resultRecord              `json:"results,omitempty"`
}

// toOptions reconstructs the comparable scheduler options a cached compile
// ran under (the callback fields are nil by construction: runs using them
// are never cached).
func (k schedOptsKey) toOptions() sched.Options {
	return sched.Options{
		UseL0:                    k.UseL0,
		AllowPSR:                 k.AllowPSR,
		MarkAllCandidates:        k.MarkAllCandidates,
		PrefetchDistance:         k.PrefetchDistance,
		AdaptivePrefetchDistance: k.AdaptivePrefetchDistance,
		DisableExplicitPrefetch:  k.DisableExplicitPrefetch,
		MaxII:                    k.MaxII,
		RegistersPerCluster:      k.RegistersPerCluster,
		Backend:                  k.Backend,
		ExactBudget:              k.ExactBudget,
	}
}

// ExportScheduleCache writes a deterministic snapshot of every completed
// cache entry: records are sorted by their marshaled key, so two processes
// that compiled the same design space emit byte-identical snapshots
// regardless of worker interleaving. The snapshot is compacted by
// construction: evicted entries left the in-memory caches, so a bounded
// server's snapshot never accretes dead grids — saving after a month of
// disjoint sweeps persists at most the configured caps.
func ExportScheduleCache(w io.Writer) error {
	snap := cacheSnapshot{Version: CacheFormatVersion}
	// Persist every resident user kernel (already ID-sorted), whether or not
	// a cache entry references it: the registry is bounded input data, and a
	// reloaded process should be able to resolve the same hashes this one
	// could.
	snap.Kernels = workload.RegisteredKernels()
	scheduleCache.each(func(key compileKey, e *compileEntry) bool {
		if !e.done.Load() || e.err != nil || e.res.sch == nil {
			return true // in-flight or failed compiles are not worth keeping
		}
		snap.Schedules = append(snap.Schedules, scheduleRecord{
			KernelID: key.kid, Base: key.base,
			Entries: key.entries, Cfg: key.cfg, Opts: key.opts, Fallback: key.fallback,
			Factor: e.res.factor, BaseDelta: e.res.baseDelta,
			Schedule: e.res.sch.Encode(),
		})
		return true
	})
	unrollCache.Range(func(k, v any) bool {
		e := v.(*unrollEntry)
		if !e.done.Load() {
			return true
		}
		key := k.(unrollKey)
		snap.Unrolls = append(snap.Unrolls, unrollRecord{
			KernelID: key.kid, Cfg: key.cfg, Factor: e.factor,
		})
		return true
	})
	resultCache.each(func(key resultKey, e *resultEntry) bool {
		if !e.done.Load() || e.err != nil || e.res == nil {
			return true
		}
		snap.Results = append(snap.Results, resultRecord{
			Bench: key.bench, BenchID: key.bid, Arch: key.arch.String(), Cfg: key.cfg,
			Opts: key.opts, Coherence: key.coherence, Fallback: key.fallback,
			Result: e.res,
		})
		return true
	})

	sortByMarshaledKey(snap.Schedules, func(r scheduleRecord) any {
		r.Schedule = nil // identity only: the artifact is not part of the key
		return r
	})
	sortByMarshaledKey(snap.Unrolls, func(r unrollRecord) any { return r })
	sortByMarshaledKey(snap.Results, func(r resultRecord) any {
		r.Result = nil
		return r
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// sortByMarshaledKey orders records by the JSON bytes of their identity
// projection — a total, stable order without a hand-written multi-field
// comparison that would silently go stale when the key grows a field.
func sortByMarshaledKey[T any](recs []T, identity func(T) any) {
	keys := make([][]byte, len(recs))
	for i, r := range recs {
		b, err := json.Marshal(identity(r))
		if err != nil {
			// Keys are plain structs of ints/bools/strings; Marshal cannot
			// fail on them. Keep the entry with an empty key rather than
			// dropping data.
			b = nil
		}
		keys[i] = b
	}
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0 })
	out := make([]T, len(recs))
	for i, j := range idx {
		out[i] = recs[j]
	}
	copy(recs, out)
}

// ImportStats reports what a snapshot load accomplished.
type ImportStats struct {
	// Schedules/Unrolls/Results are the entries loaded into the live
	// caches; Kernels counts user kernels re-registered from the snapshot.
	Schedules int `json:"schedules"`
	Unrolls   int `json:"unrolls"`
	Results   int `json:"results"`
	Kernels   int `json:"kernels,omitempty"`
	// Skipped counts records rejected individually (unknown benchmark,
	// kernel drift, encoding that fails validation): the rest of the
	// snapshot still loads.
	Skipped int `json:"skipped"`
}

// ImportScheduleCache loads a snapshot written by ExportScheduleCache into
// the live caches. Entries already present (compiled by this process) are
// kept — a reload never replaces a live schedule or result. A snapshot with
// an unsupported format version fails as a whole; records that no longer
// match the workload (renamed kernel, different address layout, unknown
// architecture) are skipped and counted. Imports respect the configured
// cache caps: loading a snapshot larger than the caps keeps the
// most-recently-inserted entries (records are key-sorted, so which survive
// is deterministic).
func ImportScheduleCache(r io.Reader) (ImportStats, error) {
	var snap cacheSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return ImportStats{}, fmt.Errorf("harness: parse cache snapshot: %w", err)
	}
	if snap.Version < minCacheFormatVersion || snap.Version > CacheFormatVersion {
		return ImportStats{}, fmt.Errorf("harness: cache snapshot version %d, want %d..%d",
			snap.Version, minCacheFormatVersion, CacheFormatVersion)
	}
	if snap.Version < 2 {
		// v1 predates both the per-schedule encoding stamp and the result
		// records: those snapshots were written by encoding version 1
		// specifically (the literal, not the current constant — when the
		// encoding moves on, unstamped v1 records must start failing the
		// decoder's version check, not be blessed retroactively).
		for _, rec := range snap.Schedules {
			if rec.Schedule != nil {
				rec.Schedule.Version = 1
			}
		}
	}

	var st ImportStats
	// Registered kernels load first: the hash-keyed records below resolve
	// their loops through the registry. Registration is idempotent, so
	// importing into a process that already holds some of these is a no-op
	// for the overlap.
	for _, k := range snap.Kernels {
		reg, err := workload.RegisterKernelSource(k.Source)
		if err != nil || reg.ID != k.ID {
			st.Skipped++ // corrupted source, or source that hashes elsewhere
			continue
		}
		st.Kernels++
	}

	bases := map[string][]int64{} // bench -> per-kernel base addresses
	kernelBase := func(bench string, idx int) (int64, bool) {
		bs, ok := bases[bench]
		if !ok {
			b := workload.ByName(bench)
			if b == nil {
				bases[bench] = nil
				return 0, false
			}
			base := int64(1 << 16) // mirrors RunBenchmark's starting base
			for i := range b.Kernels {
				bs = append(bs, base)
				l := b.Kernels[i].Loop()
				base = workload.AssignAddresses(l, base)
			}
			bases[bench] = bs
		}
		if idx < 0 || idx >= len(bs) {
			return 0, false
		}
		return bs[idx], true
	}
	// resolveLegacy lifts a v1/v2 positional identity onto the v3 content
	// identity: the benchmark must still exist with that kernel at that
	// index, and the base is re-derived the way the original compile did.
	resolveLegacy := func(bench, kernel string, idx int) (kid string, base int64, ok bool) {
		b := workload.ByName(bench)
		if b == nil || idx < 0 || idx >= len(b.Kernels) || b.Kernels[idx].Name != kernel {
			return "", 0, false
		}
		base, ok = kernelBase(bench, idx)
		if !ok {
			return "", 0, false
		}
		return workload.KernelIDOf(b, idx), base, true
	}

	for _, rec := range snap.Schedules {
		if snap.Version < 3 {
			kid, base, ok := resolveLegacy(rec.Bench, rec.Kernel, rec.Idx)
			if !ok {
				st.Skipped++
				continue
			}
			rec.KernelID, rec.Base = kid, base
		}
		ck, ok := rebuildCompiled(rec)
		if !ok {
			st.Skipped++
			continue
		}
		key := compileKey{
			kid: rec.KernelID, base: rec.Base,
			entries: rec.Entries, cfg: rec.Cfg, opts: rec.Opts, fallback: rec.Fallback,
		}
		e, created, ok := scheduleCache.getOrCreate(key, func() *compileEntry { return &compileEntry{} })
		if !ok {
			continue // cache capped to zero: nothing to load into
		}
		if created {
			e.once.Do(func() { e.res = ck })
			e.done.Store(true)
			scheduleCache.charge(key, scheduleCost(ck))
			st.Schedules++
		}
	}
	for _, rec := range snap.Unrolls {
		if snap.Version < 3 {
			kid, _, ok := resolveLegacy(rec.Bench, rec.Kernel, rec.Idx)
			if !ok {
				st.Skipped++
				continue
			}
			rec.KernelID = kid
		}
		if rec.Factor < 1 || !kernelResolves(rec.KernelID) {
			st.Skipped++
			continue
		}
		key := unrollKey{kid: rec.KernelID, cfg: rec.Cfg}
		e := &unrollEntry{}
		e.once.Do(func() { e.factor = rec.Factor })
		e.done.Store(true)
		if _, loaded := unrollCache.LoadOrStore(key, e); !loaded {
			st.Unrolls++
		}
	}
	for _, rec := range snap.Results {
		key, ok := rebuildResultKey(rec, snap.Version)
		if !ok {
			st.Skipped++
			continue
		}
		e, created, ok := resultCache.getOrCreate(key, func() *resultEntry { return &resultEntry{} })
		if !ok {
			continue // result cache capped to zero
		}
		if created {
			res := rec.Result
			e.once.Do(func() { e.res = res })
			e.done.Store(true)
			resultCache.charge(key, resultCost(res))
			st.Results++
		}
	}
	return st, nil
}

// kernelResolves reports whether a content hash maps to a live loop (a
// suite kernel or a registered user kernel).
func kernelResolves(kid string) bool {
	if kid == "" {
		return false
	}
	_, ok := workload.LoopByKernelID(kid)
	return ok
}

// rebuildResultKey validates one persisted simulation result against the
// live workload and reconstructs its cache key. The result's numbers cannot
// be re-derived without simulating (which would defeat the cache), so the
// check is structural — the benchmark and architecture must exist, the
// configuration must validate, and the per-kernel results must line up with
// the benchmark's kernels one-to-one — plus, for v3 records, exact: the
// recorded benchmark content ID must equal the live one, so a result never
// outlives a content change hiding behind an unchanged name.
func rebuildResultKey(rec resultRecord, version int) (resultKey, bool) {
	if rec.Result == nil {
		return resultKey{}, false
	}
	a, ok := ArchByName(rec.Arch)
	if !ok {
		return resultKey{}, false
	}
	b := workload.ByName(rec.Bench)
	if b == nil || rec.Cfg.Validate() != nil {
		return resultKey{}, false
	}
	if len(rec.Result.Kernels) != len(b.Kernels) {
		return resultKey{}, false
	}
	for i := range b.Kernels {
		if rec.Result.Kernels[i].Kernel != b.Kernels[i].Name {
			return resultKey{}, false
		}
	}
	bid := workload.BenchmarkIDOf(b)
	if version >= 3 && rec.BenchID != bid {
		return resultKey{}, false // benchmark content drifted since the snapshot
	}
	return resultKey{
		bid: bid, bench: rec.Bench, arch: a, cfg: rec.Cfg, opts: rec.Opts,
		coherence: rec.Coherence, fallback: rec.Fallback,
	}, true
}

// rebuildCompiled reconstructs one memoized compilation from its (content-
// identified) record: rebuild the kernel loop from its hash, assign the
// recorded base address, re-apply the recorded unroll, and bind the encoded
// schedule. Any mismatch with the live workload rejects the record.
func rebuildCompiled(rec scheduleRecord) (compiledKernel, bool) {
	if rec.Schedule == nil || rec.Factor < 1 {
		return compiledKernel{}, false
	}
	l, ok := workload.LoopByKernelID(rec.KernelID)
	if !ok {
		return compiledKernel{}, false
	}
	after := workload.AssignAddresses(l, rec.Base)
	if after-rec.Base != rec.BaseDelta {
		return compiledKernel{}, false // array layout drifted since the snapshot
	}
	body := l
	if rec.Factor > 1 {
		var err error
		body, err = unroll.ByFactor(l, rec.Factor)
		if err != nil {
			return compiledKernel{}, false
		}
	}
	sch, err := sched.DecodeSchedule(rec.Schedule, body, rec.Cfg, rec.Opts.toOptions())
	if err != nil {
		return compiledKernel{}, false
	}
	return compiledKernel{sch: sch, factor: rec.Factor, baseDelta: rec.BaseDelta}, true
}

// SaveCacheFile atomically writes the cache snapshot to path (temp file +
// rename, so a crash mid-save never leaves a truncated snapshot that a
// future start would reject).
func SaveCacheFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".l0cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ExportScheduleCache(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCacheFile loads a snapshot written by SaveCacheFile.
func LoadCacheFile(path string) (ImportStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ImportStats{}, err
	}
	defer f.Close()
	return ImportScheduleCache(f)
}
