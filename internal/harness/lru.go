// Bounded LRU cache machinery shared by the schedule cache and the
// simulation-result cache. The seed caches were sync.Maps that grew without
// bound — exactly right for one-shot CLI sweeps, wrong for a week-long
// l0served process sweeping many disjoint grids (ROADMAP "cache eviction /
// size bounds"). lruCache keeps the single-flight semantics the sync.Map
// design had (concurrent requests for one key share one fill) and adds
// recency tracking with entry-count and byte caps.
//
// Concurrency design (narrowed in PR 9 after l0bench surfaced the cost of
// the original single mutex): the hit path — the only operation whose
// latency concurrent sweeps actually feel — takes no lock at all. Resident
// entries live in a sync.Map keyed by K; a hit is one lock-free Load plus a
// non-blocking recency note pushed into a small buffered channel. The mutex
// guards only the structural state (the recency list, entry/byte ledger,
// eviction): inserts, charges and cap changes take it, drain the pending
// recency notes in arrival order, and then evict. Single-flight waiters
// therefore never serialize behind an eviction walk — under the old design a
// charge walking the list at cap held every concurrent hit on the same
// mutex. The cost is that recency is applied lazily (and a note is dropped
// outright when the buffer is full): eviction order can lag true access
// order by at most the buffer, which only ever changes *which* entry is
// recomputed on a future miss — never any output byte.
//
// Cap semantics, shared by every layer that configures a cache
// (SetCacheLimits, the l0served/l0explore flags):
//
//	> 0  cap (entries or bytes)
//	  0  cache disabled: lookups miss, nothing is ever stored
//	< 0  unlimited (the process default; DefaultCacheLimits)
//
// Eviction only considers completed entries: an in-flight fill (its worker
// is still compiling or simulating) is skipped, so a cap smaller than the
// number of concurrent fills can transiently overshoot — the cap is honored
// as soon as the fills land. Byte accounting uses the entry cost the caller
// charges after the fill completes (a structural estimate, not a malloc
// audit; see scheduleCost/resultCost).

package harness

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruSlot is one resident cache entry: the key (so eviction can delete the
// map index), the shared value, and the bytes charged for it. val is written
// once, before the slot is published; cost only under the structural mutex.
type lruSlot[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// recencyBuffer bounds how many unapplied hit notifications are queued; a
// hit finding it full drops the note (stale recency, never blocking).
const recencyBuffer = 256

// lruCache is an LRU with entry and byte caps and a lock-free hit path. The
// zero value is not usable; build with newLRUCache.
type lruCache[K comparable, V any] struct {
	// maxEntries/maxBytes are atomics so the lock-free hit path can check
	// disabled() without touching mu. Written under mu (setLimits/reset).
	maxEntries atomic.Int64
	maxBytes   atomic.Int64

	// items maps K -> *list.Element (whose Value is *lruSlot[K, V]). Reads
	// are lock-free; stores and deletes happen under mu only.
	items sync.Map

	// recency carries hit notifications from the lock-free path to the next
	// mutation, which drains them (in order) before enforcing caps.
	recency chan *list.Element

	// mu guards the structural state below plus all items writes.
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	count int
	bytes int64

	// evictable reports whether an entry may be dropped (completed fills
	// only: evicting an in-flight entry would detach a fill another
	// goroutine is waiting on and re-admit the key mid-fill).
	evictable func(V) bool
	evictions atomic.Int64
}

func newLRUCache[K comparable, V any](evictable func(V) bool) *lruCache[K, V] {
	c := &lruCache[K, V]{
		ll:        list.New(),
		recency:   make(chan *list.Element, recencyBuffer),
		evictable: evictable,
	}
	c.maxEntries.Store(-1)
	c.maxBytes.Store(-1)
	return c
}

// setLimits installs new caps and immediately evicts down to them. A zero
// cap empties the cache and disables it.
func (c *lruCache[K, V]) setLimits(entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries.Store(int64(entries))
	c.maxBytes.Store(bytes)
	c.drainRecencyLocked()
	c.evictOverflow()
}

// disabled reports whether either cap is zero (the cache stores nothing).
// Lock-free; the insert path re-checks under mu so a concurrent setLimits(0)
// can never slip an entry into a disabled cache.
func (c *lruCache[K, V]) disabled() bool {
	return c.maxEntries.Load() == 0 || c.maxBytes.Load() == 0
}

// noteUse records a hit's recency without blocking: the note is applied by
// the next mutation, or dropped if the buffer is full (recency goes a little
// stale; hits never wait).
func (c *lruCache[K, V]) noteUse(el *list.Element) {
	select {
	case c.recency <- el:
	default:
	}
}

// drainRecencyLocked applies queued hit notifications in arrival order.
// Caller holds c.mu. A note for an entry evicted in the meantime is a no-op
// (list.MoveToFront ignores elements no longer in the list).
func (c *lruCache[K, V]) drainRecencyLocked() {
	for {
		select {
		case el := <-c.recency:
			c.ll.MoveToFront(el)
		default:
			return
		}
	}
}

// getOrCreate returns the entry for k, creating it via mk on first sight.
// ok=false means the cache is disabled (nothing was stored; run uncached).
// created=true means this caller owns the fill and must charge() when done.
// The hit path is lock-free: one sync.Map load plus a buffered recency note.
func (c *lruCache[K, V]) getOrCreate(k K, mk func() V) (v V, created, ok bool) {
	if c.disabled() {
		return v, false, false
	}
	if el, hit := c.items.Load(k); hit {
		e := el.(*list.Element)
		c.noteUse(e)
		return e.Value.(*lruSlot[K, V]).val, false, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled() {
		return v, false, false // setLimits(0) raced the lock-free check
	}
	if el, hit := c.items.Load(k); hit {
		// Lost the insert race: the other goroutine's entry wins.
		e := el.(*list.Element)
		c.ll.MoveToFront(e)
		return e.Value.(*lruSlot[K, V]).val, false, true
	}
	v = mk()
	el := c.ll.PushFront(&lruSlot[K, V]{key: k, val: v})
	c.items.Store(k, el)
	c.count++
	c.drainRecencyLocked()
	c.evictOverflow()
	return v, true, true
}

// charge records the byte cost of a completed fill and evicts overflow. A
// key evicted while its fill was in flight is silently ignored — the filler
// and any waiters still share the detached entry.
func (c *lruCache[K, V]) charge(k K, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, hit := c.items.Load(k)
	if !hit {
		return
	}
	s := el.(*list.Element).Value.(*lruSlot[K, V])
	c.bytes += cost - s.cost
	s.cost = cost
	c.drainRecencyLocked()
	c.evictOverflow()
}

// evictOverflow drops least-recently-used evictable entries until both caps
// hold. Caller holds c.mu. Concurrent hits are not blocked by the walk: a
// reader that Loads an entry just before its delete keeps the detached slot,
// exactly the contract in-flight fills already rely on.
func (c *lruCache[K, V]) evictOverflow() {
	maxEntries, maxBytes := c.maxEntries.Load(), c.maxBytes.Load()
	over := func() bool {
		// A disabled cache (either cap zero) holds nothing, even entries
		// whose charged cost is still zero.
		return (maxEntries >= 0 && int64(c.count) > maxEntries) ||
			(maxBytes >= 0 && c.bytes > maxBytes) ||
			(c.disabled() && c.count > 0)
	}
	el := c.ll.Back()
	for el != nil && over() {
		prev := el.Prev()
		s := el.Value.(*lruSlot[K, V])
		if c.evictable == nil || c.evictable(s.val) {
			c.ll.Remove(el)
			c.items.Delete(s.key)
			c.count--
			c.bytes -= s.cost
			c.evictions.Add(1)
		}
		el = prev
	}
}

// remove drops the entry for k if resident. Used to un-poison single-flight
// entries whose fill failed with a caller-scoped error (a cancelled context):
// the next request for the key must re-run the fill, not inherit the stale
// cancellation. Goroutines already holding the detached entry keep it, the
// same contract eviction relies on.
func (c *lruCache[K, V]) remove(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, hit := c.items.Load(k)
	if !hit {
		return
	}
	e := el.(*list.Element)
	s := e.Value.(*lruSlot[K, V])
	c.ll.Remove(e)
	c.items.Delete(s.key)
	c.count--
	c.bytes -= s.cost
}

// each calls f on every resident entry (stops early on false). Iteration
// order is unspecified; callers needing determinism sort afterwards (the
// snapshot exporter does). f runs under the cache lock and must not reenter.
func (c *lruCache[K, V]) each(f func(K, V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		s := el.Value.(*lruSlot[K, V])
		if !f(s.key, s.val) {
			return
		}
	}
}

func (c *lruCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

func (c *lruCache[K, V]) costBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// reset drops every entry and restores unlimited caps (test isolation; the
// serving layer reapplies its configured limits via SetCacheLimits).
func (c *lruCache[K, V]) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries.Store(-1)
	c.maxBytes.Store(-1)
	c.drainRecencyLocked()
	c.ll.Init()
	c.items.Range(func(k, _ any) bool {
		c.items.Delete(k)
		return true
	})
	c.count = 0
	c.bytes = 0
}

// CacheLimits carries the caps for both process-global caches. Field
// semantics follow the cap convention above: >0 cap, 0 disabled, <0
// unlimited. Start from DefaultCacheLimits and override what you bound —
// the zero value disables everything.
type CacheLimits struct {
	// ScheduleEntries/ScheduleBytes bound the memoized-compile cache.
	ScheduleEntries int
	ScheduleBytes   int64
	// ResultEntries/ResultBytes bound the simulation-result cache.
	ResultEntries int
	ResultBytes   int64
}

// DefaultCacheLimits is the process default: everything unlimited, matching
// the pre-eviction behaviour one-shot CLI sweeps rely on.
func DefaultCacheLimits() CacheLimits {
	return CacheLimits{ScheduleEntries: -1, ScheduleBytes: -1, ResultEntries: -1, ResultBytes: -1}
}

// SetCacheLimits applies caps to the process-global schedule and result
// caches, evicting immediately if the new caps are below the resident set.
// Safe to call while sweeps run (long-lived servers may re-tune at runtime).
func SetCacheLimits(l CacheLimits) {
	scheduleCache.setLimits(l.ScheduleEntries, l.ScheduleBytes)
	resultCache.setLimits(l.ResultEntries, l.ResultBytes)
}
