// Bounded LRU cache machinery shared by the schedule cache and the
// simulation-result cache. The seed caches were sync.Maps that grew without
// bound — exactly right for one-shot CLI sweeps, wrong for a week-long
// l0served process sweeping many disjoint grids (ROADMAP "cache eviction /
// size bounds"). lruCache keeps the single-flight semantics the sync.Map
// design had (concurrent requests for one key share one fill) and adds
// recency tracking with entry-count and byte caps.
//
// Cap semantics, shared by every layer that configures a cache
// (SetCacheLimits, the l0served/l0explore flags):
//
//	> 0  cap (entries or bytes)
//	  0  cache disabled: lookups miss, nothing is ever stored
//	< 0  unlimited (the process default; DefaultCacheLimits)
//
// Eviction only considers completed entries: an in-flight fill (its worker
// is still compiling or simulating) is skipped, so a cap smaller than the
// number of concurrent fills can transiently overshoot — the cap is honored
// as soon as the fills land. Byte accounting uses the entry cost the caller
// charges after the fill completes (a structural estimate, not a malloc
// audit; see scheduleCost/resultCost).

package harness

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruSlot is one resident cache entry: the key (so eviction can delete the
// map index), the shared value, and the bytes charged for it.
type lruSlot[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// lruCache is a mutex-guarded LRU with entry and byte caps. The zero value
// is not usable; build with newLRUCache.
type lruCache[K comparable, V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[K]*list.Element
	bytes      int64
	// evictable reports whether an entry may be dropped (completed fills
	// only: evicting an in-flight entry would detach a fill another
	// goroutine is waiting on and re-admit the key mid-fill).
	evictable func(V) bool
	evictions atomic.Int64
}

func newLRUCache[K comparable, V any](evictable func(V) bool) *lruCache[K, V] {
	return &lruCache[K, V]{
		maxEntries: -1, maxBytes: -1,
		ll: list.New(), items: map[K]*list.Element{},
		evictable: evictable,
	}
}

// setLimits installs new caps and immediately evicts down to them. A zero
// cap empties the cache and disables it.
func (c *lruCache[K, V]) setLimits(entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries, c.maxBytes = entries, bytes
	c.evictOverflow()
}

// disabled reports whether either cap is zero (the cache stores nothing).
func (c *lruCache[K, V]) disabled() bool {
	return c.maxEntries == 0 || c.maxBytes == 0
}

// getOrCreate returns the entry for k, creating it via mk on first sight.
// ok=false means the cache is disabled (nothing was stored; run uncached).
// created=true means this caller owns the fill and must charge() when done.
func (c *lruCache[K, V]) getOrCreate(k K, mk func() V) (v V, created, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled() {
		return v, false, false
	}
	if el, hit := c.items[k]; hit {
		c.ll.MoveToFront(el)
		return el.Value.(*lruSlot[K, V]).val, false, true
	}
	v = mk()
	c.items[k] = c.ll.PushFront(&lruSlot[K, V]{key: k, val: v})
	c.evictOverflow()
	return v, true, true
}

// charge records the byte cost of a completed fill and evicts overflow. A
// key evicted while its fill was in flight is silently ignored — the filler
// and any waiters still share the detached entry.
func (c *lruCache[K, V]) charge(k K, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, hit := c.items[k]
	if !hit {
		return
	}
	s := el.Value.(*lruSlot[K, V])
	c.bytes += cost - s.cost
	s.cost = cost
	c.evictOverflow()
}

// evictOverflow drops least-recently-used evictable entries until both caps
// hold. Caller holds c.mu.
func (c *lruCache[K, V]) evictOverflow() {
	over := func() bool {
		// A disabled cache (either cap zero) holds nothing, even entries
		// whose charged cost is still zero.
		return (c.maxEntries >= 0 && len(c.items) > c.maxEntries) ||
			(c.maxBytes >= 0 && c.bytes > c.maxBytes) ||
			(c.disabled() && len(c.items) > 0)
	}
	el := c.ll.Back()
	for el != nil && over() {
		prev := el.Prev()
		s := el.Value.(*lruSlot[K, V])
		if c.evictable == nil || c.evictable(s.val) {
			c.ll.Remove(el)
			delete(c.items, s.key)
			c.bytes -= s.cost
			c.evictions.Add(1)
		}
		el = prev
	}
}

// each calls f on every resident entry (stops early on false). Iteration
// order is unspecified; callers needing determinism sort afterwards (the
// snapshot exporter does). f runs under the cache lock and must not reenter.
func (c *lruCache[K, V]) each(f func(K, V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		s := el.Value.(*lruSlot[K, V])
		if !f(s.key, s.val) {
			return
		}
	}
}

func (c *lruCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *lruCache[K, V]) costBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// reset drops every entry and restores unlimited caps (test isolation; the
// serving layer reapplies its configured limits via SetCacheLimits).
func (c *lruCache[K, V]) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEntries, c.maxBytes = -1, -1
	c.ll.Init()
	c.items = map[K]*list.Element{}
	c.bytes = 0
}

// CacheLimits carries the caps for both process-global caches. Field
// semantics follow the cap convention above: >0 cap, 0 disabled, <0
// unlimited. Start from DefaultCacheLimits and override what you bound —
// the zero value disables everything.
type CacheLimits struct {
	// ScheduleEntries/ScheduleBytes bound the memoized-compile cache.
	ScheduleEntries int
	ScheduleBytes   int64
	// ResultEntries/ResultBytes bound the simulation-result cache.
	ResultEntries int
	ResultBytes   int64
}

// DefaultCacheLimits is the process default: everything unlimited, matching
// the pre-eviction behaviour one-shot CLI sweeps rely on.
func DefaultCacheLimits() CacheLimits {
	return CacheLimits{ScheduleEntries: -1, ScheduleBytes: -1, ResultEntries: -1, ResultBytes: -1}
}

// SetCacheLimits applies caps to the process-global schedule and result
// caches, evicting immediately if the new caps are below the resident set.
// Safe to call while sweeps run (long-lived servers may re-tune at runtime).
func SetCacheLimits(l CacheLimits) {
	scheduleCache.setLimits(l.ScheduleEntries, l.ScheduleBytes)
	resultCache.setLimits(l.ResultEntries, l.ResultBytes)
}
