// Exhaustiveness tests for the cache-identity keys, the runtime complement
// of l0lint's keyfields analyzer: the analyzer proves the key *builders*
// touch every field, these tests prove the key *types* keep up with the
// source structs. Adding a field to sched.Options, harness.Options or
// ExploreSpec without deciding its identity story fails here with a message
// saying exactly what to decide.

package harness

import (
	"reflect"
	"testing"

	"repro/internal/sched"
)

// schedOptsExempt lists the sched.Options fields that deliberately do not
// join schedOptsKey. Callback fields capture per-run state the key cannot
// represent; cacheable() refuses to memoize any run carrying one, so
// excluding them is sound, not lossy.
var schedOptsExempt = map[string]string{
	"LoadLatencyFn":      "per-run callback; cacheable() bypasses the caches",
	"PreferredClusterFn": "per-run callback; cacheable() bypasses the caches",
	"Ctx":                "cancellation plumbing; a cancelled compile returns an error, which is evicted from the cache, never a result",
	"ExactProgress":      "observability sink; progress wiring never alters what is computed",
}

// TestSchedOptsKeyExhaustive fails when sched.Options grows a field that
// neither appears (same name) in schedOptsKey nor is registered in
// schedOptsExempt — the compile-time shape of the silent cache poisoning
// the keyfields lint rule catches in the builder.
func TestSchedOptsKeyExhaustive(t *testing.T) {
	opts := reflect.TypeOf(sched.Options{})
	key := reflect.TypeOf(schedOptsKey{})
	keyFields := map[string]bool{}
	for i := 0; i < key.NumField(); i++ {
		keyFields[key.Field(i).Name] = true
	}
	for i := 0; i < opts.NumField(); i++ {
		name := opts.Field(i).Name
		_, exempt := schedOptsExempt[name]
		switch {
		case exempt && keyFields[name]:
			t.Errorf("sched.Options.%s is both in schedOptsKey and schedOptsExempt; pick one", name)
		case !exempt && !keyFields[name]:
			t.Errorf("sched.Options.%s joins neither schedOptsKey nor schedOptsExempt: add it to the key in optsKeyOf (two schedules differing in it must not share a cache entry) or register the exemption here with a reason", name)
		}
		delete(keyFields, name)
	}
	for name := range keyFields {
		t.Errorf("schedOptsKey.%s has no matching sched.Options field; delete the stale key field", name)
	}
}

// optionsExempt mirrors the //lint:nonkey annotations on harness.Options for
// resultCacheKey: cache-control switches and the observability sink never
// change what a simulation computes.
var optionsExempt = map[string]string{
	"DisableScheduleCache": "cache-control switch; results identical either way",
	"DisableResultCache":   "cache-control switch; results identical either way",
	"Counters":             "observability sink; never reaches result bytes",
}

// resultKeyCovers maps harness.Options fields to the resultKey fields that
// carry them (names differ, so a pure name match cannot work).
var resultKeyCovers = map[string]string{
	"Cfg":                  "cfg",
	"Sched":                "opts",
	"CheckCoherence":       "coherence",
	"ConservativeFallback": "fallback",
}

// TestResultKeyExhaustive fails when harness.Options grows a field with no
// identity decision: either route it into resultKey (and record the mapping
// here) or exempt it with a reason.
func TestResultKeyExhaustive(t *testing.T) {
	opts := reflect.TypeOf(Options{})
	key := reflect.TypeOf(resultKey{})
	for i := 0; i < opts.NumField(); i++ {
		name := opts.Field(i).Name
		_, exempt := optionsExempt[name]
		kf, covered := resultKeyCovers[name]
		switch {
		case exempt && covered:
			t.Errorf("harness.Options.%s is both covered and exempt; pick one", name)
		case !exempt && !covered:
			t.Errorf("harness.Options.%s joins neither resultKey nor optionsExempt: route it through resultCacheKey (two runs differing in it must not share a memoized result) or register the exemption here with a reason", name)
		case covered:
			if _, ok := key.FieldByName(kf); !ok {
				t.Errorf("resultKeyCovers maps Options.%s to resultKey.%s, which does not exist", name, kf)
			}
		}
	}
}

// exploreSpecIdentity records, for every ExploreSpec field, whether it joins
// the spec's merge identity (the id() string) — the list id() itself must be
// kept in sync with. A new axis added to ExploreSpec but not here fails the
// test; adding it here without extending id() would let two different sweeps
// merge, which TestExploreSpecIdentityDiscriminates below would catch for
// the axes it exercises.
var exploreSpecIdentity = map[string]bool{
	"Benches":       false, // resolved list travels as ExploreResult.Benches; MergeExplore compares it name-by-name
	"Kernels":       true,
	"Clusters":      true,
	"Entries":       true,
	"Subblocks":     true,
	"L1Latencies":   true,
	"PrefetchDists": true,
	"RegBudgets":    true,
	"Scheds":        true,
	"Sched":         true,
}

// TestExploreSpecIdentityExhaustive fails when ExploreSpec grows a field
// that has no entry in exploreSpecIdentity — the reviewer must decide
// whether the new field is part of the shard-merge identity.
func TestExploreSpecIdentityExhaustive(t *testing.T) {
	spec := reflect.TypeOf(ExploreSpec{})
	seen := map[string]bool{}
	for i := 0; i < spec.NumField(); i++ {
		name := spec.Field(i).Name
		seen[name] = true
		if _, ok := exploreSpecIdentity[name]; !ok {
			t.Errorf("ExploreSpec.%s has no identity decision: extend id() in explore.go (shards differing in it must refuse to merge) or record the exemption in exploreSpecIdentity with a reason", name)
		}
	}
	for name := range exploreSpecIdentity {
		if !seen[name] {
			t.Errorf("exploreSpecIdentity lists %s, which is no longer an ExploreSpec field", name)
		}
	}
}

// TestExploreSpecIdentityDiscriminates backs the bookkeeping with behavior:
// for every field exploreSpecIdentity marks as identity-bearing, perturbing
// that field alone must change id(); for every exempt field it must not.
func TestExploreSpecIdentityDiscriminates(t *testing.T) {
	base := ExploreSpec{}
	perturb := map[string]func(*ExploreSpec){
		"Benches":       func(s *ExploreSpec) { s.Benches = []string{"gsmdec"} },
		"Kernels":       func(s *ExploreSpec) { s.Kernels = []string{"deadbeef"} },
		"Clusters":      func(s *ExploreSpec) { s.Clusters = []int{2} },
		"Entries":       func(s *ExploreSpec) { s.Entries = []int{16} },
		"Subblocks":     func(s *ExploreSpec) { s.Subblocks = []int{32} },
		"L1Latencies":   func(s *ExploreSpec) { s.L1Latencies = []int{7} },
		"PrefetchDists": func(s *ExploreSpec) { s.PrefetchDists = []int{3} },
		"RegBudgets":    func(s *ExploreSpec) { s.RegBudgets = []int{48} },
		"Scheds":        func(s *ExploreSpec) { s.Scheds = []string{"exact"} },
		"Sched":         func(s *ExploreSpec) { s.Sched.AllowPSR = true },
	}
	for name, inKey := range exploreSpecIdentity {
		fn, ok := perturb[name]
		if !ok {
			t.Errorf("no perturbation registered for ExploreSpec.%s; add one", name)
			continue
		}
		mutated := base
		fn(&mutated)
		if changed := !reflect.DeepEqual(mutated.id(), base.id()); changed != inKey {
			if inKey {
				t.Errorf("ExploreSpec.%s is marked identity-bearing but perturbing it leaves id() unchanged", name)
			} else {
				t.Errorf("ExploreSpec.%s is marked exempt but perturbing it changes id()", name)
			}
		}
	}
}
