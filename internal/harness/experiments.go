package harness

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig5Point is one bar segment of Figure 5: execution time of the L0
// architecture with a given buffer size, normalised to the no-L0 baseline,
// split into compute and stall.
type Fig5Point struct {
	Bench           string
	Entries         int
	NormCompute     float64
	NormStall       float64
	NormTotal       float64
	BaseNormCompute float64
	BaseNormStall   float64
}

// Fig5 runs Figure 5: normalised execution time for 4/8/16/unbounded-entry
// L0 buffers over the whole suite, fanning the (benchmark, buffer size) grid
// out over the default worker pool.
func Fig5(entriesList []int, schedOpts sched.Options) ([][]Fig5Point, error) {
	return Fig5Cfg(DefaultRunConfig(), entriesList, schedOpts)
}

// Fig5Cfg is Fig5 under an explicit engine configuration.
func Fig5Cfg(rc RunConfig, entriesList []int, schedOpts sched.Options) ([][]Fig5Point, error) {
	suite := workload.Suite()
	// One job per benchmark × (baseline + each buffer size); results are
	// aggregated by job index, so worker count never changes the output.
	stride := 1 + len(entriesList)
	results, err := forEachJob(rc, len(suite)*stride, func(i int) (*BenchResult, error) {
		b := suite[i/stride]
		j := i % stride
		if j == 0 {
			return RunBenchmark(b, ArchBase, rc.options(arch.MICRO36Config()))
		}
		opts := rc.options(arch.MICRO36Config().WithL0Entries(entriesList[j-1]))
		opts.Sched = schedOpts
		return RunBenchmark(b, ArchL0, opts)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Fig5Point, 0, len(suite))
	for bi, b := range suite {
		baseRes := results[bi*stride]
		bt := float64(baseRes.Total)
		var row []Fig5Point
		for j, entries := range entriesList {
			r := results[bi*stride+1+j]
			row = append(row, Fig5Point{
				Bench:           b.Name,
				Entries:         entries,
				NormCompute:     float64(r.Compute) / bt,
				NormStall:       float64(r.Stall) / bt,
				NormTotal:       float64(r.Total) / bt,
				BaseNormCompute: float64(baseRes.Compute) / bt,
				BaseNormStall:   float64(baseRes.Stall) / bt,
			})
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig5 prints Figure 5 as a table (one column pair per buffer size),
// returning the first write error.
func RenderFig5(w io.Writer, points [][]Fig5Point, entriesList []int) error {
	t := &stats.Table{Title: "Figure 5: normalized execution time (compute+stall) vs L0 buffer size"}
	t.Header = []string{"bench"}
	for _, e := range entriesList {
		name := fmt.Sprintf("%d", e)
		if e >= arch.Unbounded {
			name = "unbounded"
		}
		t.Header = append(t.Header, name+" total", name+" stall")
	}
	means := make([]float64, len(entriesList))
	for _, row := range points {
		cells := []string{row[0].Bench}
		for i, p := range row {
			cells = append(cells, stats.F2(p.NormTotal), stats.F2(p.NormStall))
			means[i] += p.NormTotal
		}
		t.Add(cells...)
	}
	cells := []string{"AMEAN"}
	for i := range entriesList {
		cells = append(cells, stats.F2(means[i]/float64(len(points))), "")
	}
	t.Add(cells...)
	return t.Render(w)
}

// Fig6Row is one benchmark of Figure 6: subblock mapping mix, L0 hit rate
// and average unroll factor at 8-entry buffers.
type Fig6Row struct {
	Bench           string
	LinearFrac      float64
	InterleavedFrac float64
	HitRate         float64
	AvgUnroll       float64
}

// Fig6 measures the mapping/hit-rate/unroll characterisation at the given
// buffer size (the paper uses 8 entries).
func Fig6(entries int) ([]Fig6Row, error) {
	return Fig6Cfg(DefaultRunConfig(), entries)
}

// Fig6Cfg is Fig6 under an explicit engine configuration.
func Fig6Cfg(rc RunConfig, entries int) ([]Fig6Row, error) {
	suite := workload.Suite()
	results, err := forEachJob(rc, len(suite), func(i int) (*BenchResult, error) {
		return RunBenchmark(suite[i], ArchL0, rc.options(arch.MICRO36Config().WithL0Entries(entries)))
	})
	if err != nil {
		return nil, err
	}
	var out []Fig6Row
	for i, b := range suite {
		r := results[i]
		lin, inter := r.L0.LinearSubblocks, r.L0.InterleavedSubblocks
		total := lin + inter
		row := Fig6Row{Bench: b.Name, HitRate: r.L0.L0HitRate(), AvgUnroll: r.AvgUnroll}
		if total > 0 {
			row.LinearFrac = float64(lin) / float64(total)
			row.InterleavedFrac = float64(inter) / float64(total)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig6 prints Figure 6, returning the first write error.
func RenderFig6(w io.Writer, rows []Fig6Row) error {
	t := &stats.Table{Title: "Figure 6: subblock mapping mix, L0 hit rate, average unroll factor (8-entry L0)"}
	t.Header = []string{"bench", "linear", "interleaved", "hit rate", "avg unroll"}
	for _, r := range rows {
		t.Add(r.Bench, stats.Pct(r.LinearFrac), stats.Pct(r.InterleavedFrac),
			stats.Pct(r.HitRate), stats.F1(r.AvgUnroll))
	}
	return t.Render(w)
}

// Fig7Row is one benchmark of Figure 7: execution time of the four
// architectures normalised to the unified-L1 no-L0 baseline.
type Fig7Row struct {
	Bench        string
	L0           float64
	L0Stall      float64
	MultiVLIW    float64
	MVStall      float64
	Interleaved1 float64
	I1Stall      float64
	Interleaved2 float64
	I2Stall      float64
}

// Fig7 compares the 8-entry L0 architecture against MultiVLIW and the two
// word-interleaved heuristics.
func Fig7(entries int) ([]Fig7Row, error) {
	return Fig7Cfg(DefaultRunConfig(), entries)
}

// Fig7Cfg is Fig7 under an explicit engine configuration: one job per
// benchmark × architecture (baseline plus the four distributed designs).
func Fig7Cfg(rc RunConfig, entries int) ([]Fig7Row, error) {
	suite := workload.Suite()
	archs := []Arch{ArchBase, ArchL0, ArchMultiVLIW, ArchInterleaved1, ArchInterleaved2}
	stride := len(archs)
	results, err := forEachJob(rc, len(suite)*stride, func(i int) (*BenchResult, error) {
		b := suite[i/stride]
		a := archs[i%stride]
		cfg := arch.MICRO36Config()
		if a != ArchBase {
			cfg = cfg.WithL0Entries(entries)
		}
		return RunBenchmark(b, a, rc.options(cfg))
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7Row
	for bi, b := range suite {
		baseRes := results[bi*stride]
		bt := float64(baseRes.Total)
		row := Fig7Row{Bench: b.Name}
		for j, a := range archs[1:] {
			r := results[bi*stride+1+j]
			norm, stall := float64(r.Total)/bt, float64(r.Stall)/bt
			switch a {
			case ArchL0:
				row.L0, row.L0Stall = norm, stall
			case ArchMultiVLIW:
				row.MultiVLIW, row.MVStall = norm, stall
			case ArchInterleaved1:
				row.Interleaved1, row.I1Stall = norm, stall
			case ArchInterleaved2:
				row.Interleaved2, row.I2Stall = norm, stall
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig7 prints Figure 7, returning the first write error.
func RenderFig7(w io.Writer, rows []Fig7Row) error {
	t := &stats.Table{Title: "Figure 7: normalized execution time vs distributed-cache baselines (8-entry buffers)"}
	t.Header = []string{"bench", "L0", "MultiVLIW", "Interleaved1", "Interleaved2"}
	var mL0, mMV, m1, m2 float64
	for _, r := range rows {
		t.Add(r.Bench, stats.F2(r.L0), stats.F2(r.MultiVLIW), stats.F2(r.Interleaved1), stats.F2(r.Interleaved2))
		mL0 += r.L0
		mMV += r.MultiVLIW
		m1 += r.Interleaved1
		m2 += r.Interleaved2
	}
	n := float64(len(rows))
	t.Add("AMEAN", stats.F2(mL0/n), stats.F2(mMV/n), stats.F2(m1/n), stats.F2(m2/n))
	return t.Render(w)
}

// RenderTable1 prints the workload characterisation, returning the first
// write error.
func RenderTable1(w io.Writer) error {
	t := &stats.Table{Title: "Table 1: dynamic strided memory accesses (S), good strides (SG), other strides (SO)"}
	t.Header = []string{"bench", "S", "SG", "SO"}
	for _, b := range workload.Suite() {
		row := workload.Characterize(b)
		t.Add(row.Name, stats.Pct(row.S), stats.Pct(row.SG), stats.Pct(row.SO))
	}
	return t.Render(w)
}

// AMeanTotal returns the arithmetic-mean normalised total of one Figure 5
// column.
func AMeanTotal(points [][]Fig5Point, col int) float64 {
	var xs []float64
	for _, row := range points {
		xs = append(xs, row[col].NormTotal)
	}
	return stats.AMean(xs)
}
