package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// cacheTestSpec is a small but non-trivial grid: two benchmarks, two cluster
// counts, two buffer sizes, plus an L0-only scheduler switch so the cache
// holds more than default-option compiles.
func cacheTestSpec() ExploreSpec {
	s := exploreTestSpec()
	s.Clusters = []int{4, 8}
	return s
}

// TestCachePersistenceRoundTrip is the acceptance gate for the persistence
// layer: save → load into an empty cache → the same sweep performs zero
// compiles AND zero simulations (the v2 snapshot carries results) and
// produces byte-identical output; with the result cache disabled, the loaded
// schedule cache alone still makes it compile-free.
func TestCachePersistenceRoundTrip(t *testing.T) {
	ResetCaches()
	spec := cacheTestSpec()

	var cold CacheCounters
	coldRes, err := ExploreCfg(RunConfig{Workers: 4, Counters: &cold}, spec, 0, 1)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if cold.Compiles.Load() == 0 || cold.Misses.Load() == 0 || cold.SimMisses.Load() == 0 {
		t.Fatalf("cold sweep computed nothing (compiles=%d misses=%d sim misses=%d): test is vacuous",
			cold.Compiles.Load(), cold.Misses.Load(), cold.SimMisses.Load())
	}
	var coldJSON bytes.Buffer
	if err := WriteExploreJSON(&coldJSON, coldRes); err != nil {
		t.Fatalf("render cold: %v", err)
	}

	var snap1 bytes.Buffer
	if err := ExportScheduleCache(&snap1); err != nil {
		t.Fatalf("export: %v", err)
	}
	// Deterministic serialization: a second export is byte-identical.
	var snap2 bytes.Buffer
	if err := ExportScheduleCache(&snap2); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Errorf("consecutive exports differ")
	}

	ResetCaches()
	st, err := ImportScheduleCache(bytes.NewReader(snap1.Bytes()))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if st.Schedules == 0 || st.Results == 0 || st.Skipped != 0 {
		t.Fatalf("import stats %+v: want schedules > 0, results > 0, skipped == 0", st)
	}
	stats := CacheStatsNow()
	if stats.ScheduleEntries != st.Schedules || stats.UnrollEntries != st.Unrolls ||
		stats.ResultEntries != st.Results {
		t.Errorf("CacheStatsNow entries %d/%d/%d, import loaded %d/%d/%d",
			stats.ScheduleEntries, stats.UnrollEntries, stats.ResultEntries,
			st.Schedules, st.Unrolls, st.Results)
	}

	// Export after import must reproduce the snapshot byte-for-byte: the
	// rebuilt schedules and results carry exactly the information the
	// records did.
	var snap3 bytes.Buffer
	if err := ExportScheduleCache(&snap3); err != nil {
		t.Fatalf("export after import: %v", err)
	}
	if !bytes.Equal(snap1.Bytes(), snap3.Bytes()) {
		t.Errorf("export after import differs from original snapshot")
	}

	// Warm path 1: the loaded result cache alone serves the sweep — zero
	// compiles, zero simulations, byte-identical output.
	var warm CacheCounters
	warmRes, err := ExploreCfg(RunConfig{Workers: 4, Counters: &warm}, spec, 0, 1)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if n := warm.Compiles.Load(); n != 0 {
		t.Errorf("warm sweep after cache load performed %d compiles, want 0", n)
	}
	if n := warm.Simulations.Load(); n != 0 {
		t.Errorf("warm sweep after cache load performed %d simulations, want 0", n)
	}
	if warm.SimHits.Load() == 0 {
		t.Errorf("warm sweep recorded no result-cache hits")
	}
	var warmJSON bytes.Buffer
	if err := WriteExploreJSON(&warmJSON, warmRes); err != nil {
		t.Fatalf("render warm: %v", err)
	}
	if !bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()) {
		t.Errorf("warm (persisted-cache) sweep differs from cold run")
	}

	// Warm path 2: with the result cache opted out, the loaded schedule
	// cache still makes the sweep compile-free (real simulations, schedule
	// hits) — and the bytes still match.
	var sched CacheCounters
	schedRes, err := ExploreCfg(RunConfig{Workers: 4, DisableResultCache: true, Counters: &sched}, spec, 0, 1)
	if err != nil {
		t.Fatalf("schedule-warm sweep: %v", err)
	}
	if n := sched.Compiles.Load(); n != 0 {
		t.Errorf("schedule-warm sweep performed %d compiles, want 0", n)
	}
	if sched.Hits.Load() == 0 || sched.Simulations.Load() == 0 {
		t.Errorf("schedule-warm sweep: hits=%d simulations=%d, want both > 0",
			sched.Hits.Load(), sched.Simulations.Load())
	}
	var schedJSON bytes.Buffer
	if err := WriteExploreJSON(&schedJSON, schedRes); err != nil {
		t.Fatalf("render schedule-warm: %v", err)
	}
	if !bytes.Equal(coldJSON.Bytes(), schedJSON.Bytes()) {
		t.Errorf("schedule-warm sweep differs from cold run")
	}
	ResetCaches()
}

// TestCacheSnapshotVersionAndDrift covers the rejection paths: a wrong
// format version fails the whole load, a record for a benchmark that no
// longer exists is skipped without failing the rest.
func TestCacheSnapshotVersionAndDrift(t *testing.T) {
	ResetCaches()
	spec := ExploreSpec{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{8}}
	if _, err := ExploreCfg(RunConfig{Workers: 2}, spec, 0, 1); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var snap bytes.Buffer
	if err := ExportScheduleCache(&snap); err != nil {
		t.Fatalf("export: %v", err)
	}

	var raw map[string]json.RawMessage
	if err := json.Unmarshal(snap.Bytes(), &raw); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	raw["version"] = json.RawMessage("999")
	bad, _ := json.Marshal(raw)
	if _, err := ImportScheduleCache(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch: err = %v, want version error", err)
	}
	if _, err := ImportScheduleCache(strings.NewReader("{")); err == nil {
		t.Errorf("truncated snapshot accepted")
	}

	// Name drift: rename the benchmark in every record. Since v3 the
	// schedule and unroll records are content-addressed, so they survive a
	// rename by design — only the simulation results, whose key carries the
	// output-visible name, must be skipped.
	drifted := bytes.ReplaceAll(snap.Bytes(), []byte(`"gsmdec"`), []byte(`"nosuchbench"`))
	ResetCaches()
	st, err := ImportScheduleCache(bytes.NewReader(drifted))
	if err != nil {
		t.Fatalf("drifted import: %v", err)
	}
	if st.Schedules == 0 || st.Unrolls == 0 {
		t.Errorf("name-drifted import stats %+v: content-addressed records must survive a rename", st)
	}
	if st.Results != 0 || st.Skipped == 0 {
		t.Errorf("name-drifted import stats %+v: want name-keyed results skipped", st)
	}

	// Content drift: corrupt every kernel and benchmark hash (flip the first
	// character to a non-hex byte); now the schedule and unroll records
	// resolve to nothing and must all be skipped, and so must the results —
	// the recorded bench_id no longer matches any live benchmark's content.
	corrupt := append([]byte(nil), snap.Bytes()...)
	for _, needle := range [][]byte{[]byte(`"kernel_id": "`), []byte(`"bench_id": "`)} {
		for i := 0; ; {
			j := bytes.Index(corrupt[i:], needle)
			if j < 0 {
				break
			}
			i += j + len(needle)
			corrupt[i] = 'z'
		}
	}
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatalf("snapshot carries no content hashes: corruption test is vacuous")
	}
	ResetCaches()
	st, err = ImportScheduleCache(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("corrupt-id import: %v", err)
	}
	if st.Schedules != 0 || st.Unrolls != 0 || st.Results != 0 || st.Skipped == 0 {
		t.Errorf("corrupt-id import stats %+v: want every record skipped", st)
	}
	ResetCaches()
}

// TestCacheBypassCounterObservesCallbackRuns pins the satellite fix: runs
// whose scheduler options carry per-run callbacks (MultiVLIW, interleaved)
// can never be cached, and that bypass must be counted, not silent.
func TestCacheBypassCounterObservesCallbackRuns(t *testing.T) {
	ResetCaches()
	var c CacheCounters
	if _, err := Fig7Cfg(RunConfig{Workers: 2, Counters: &c}, 8); err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if c.Bypassed.Load() == 0 {
		t.Errorf("Fig7 (MultiVLIW + interleaved baselines) recorded zero cache bypasses")
	}
	if c.Hits.Load()+c.Misses.Load() == 0 {
		t.Errorf("no cacheable compiles recorded at all")
	}
	global := CacheStatsNow()
	if global.Bypassed < c.Bypassed.Load() {
		t.Errorf("global bypass counter %d below per-run counter %d", global.Bypassed, c.Bypassed.Load())
	}

	var d CacheCounters
	if _, err := ExploreCfg(RunConfig{Workers: 2, DisableScheduleCache: true, Counters: &d},
		ExploreSpec{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{4}}, 0, 1); err != nil {
		t.Fatalf("disabled-cache sweep: %v", err)
	}
	if d.Disabled.Load() == 0 {
		t.Errorf("DisableScheduleCache run recorded zero disabled-cache compiles")
	}
	if d.Hits.Load() != 0 || d.Misses.Load() != 0 {
		t.Errorf("disabled-cache run touched the cache: hits=%d misses=%d", d.Hits.Load(), d.Misses.Load())
	}
	ResetCaches()
}
