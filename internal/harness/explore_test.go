package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// exploreTestSpec is the small grid the determinism tests sweep: two
// benchmarks × two cluster counts (including one past the old 8-cluster
// breaking point) × two buffer sizes.
func exploreTestSpec() ExploreSpec {
	return ExploreSpec{
		Benches:  []string{"gsmdec", "g721dec"},
		Clusters: []int{4, 16},
		Entries:  []int{4, 8},
	}
}

func renderAll(t *testing.T, r *ExploreResult) (table, csv, json []byte) {
	t.Helper()
	var tb, cb, jb bytes.Buffer
	if err := RenderExplore(&tb, r); err != nil {
		t.Fatalf("RenderExplore: %v", err)
	}
	if err := WriteExploreCSV(&cb, r); err != nil {
		t.Fatalf("WriteExploreCSV: %v", err)
	}
	if err := WriteExploreJSON(&jb, r); err != nil {
		t.Fatalf("WriteExploreJSON: %v", err)
	}
	return tb.Bytes(), cb.Bytes(), jb.Bytes()
}

// TestExploreDeterministicAcrossWorkersAndShards is the acceptance gate for
// the exploration service: the same grid swept on 1 worker (cache off), on 8
// workers, and as a 2-way shard split merged back together must render
// byte-identically in every output format.
func TestExploreDeterministicAcrossWorkersAndShards(t *testing.T) {
	spec := exploreTestSpec()

	serial, err := ExploreCfg(RunConfig{Workers: 1, DisableScheduleCache: true}, spec, 0, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := ExploreCfg(RunConfig{Workers: 8}, spec, 0, 1)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	s0, err := ExploreCfg(RunConfig{Workers: 8}, spec, 0, 2)
	if err != nil {
		t.Fatalf("shard 0/2: %v", err)
	}
	s1, err := ExploreCfg(RunConfig{Workers: 8}, spec, 1, 2)
	if err != nil {
		t.Fatalf("shard 1/2: %v", err)
	}
	if s0.Complete() || s1.Complete() {
		t.Fatalf("a half shard claims completeness")
	}
	// Shards travel as JSON between processes: merge re-parsed copies so the
	// test exercises the real workflow, not in-memory shortcuts.
	reload := func(r *ExploreResult) *ExploreResult {
		var b bytes.Buffer
		if err := WriteExploreJSON(&b, r); err != nil {
			t.Fatalf("WriteExploreJSON: %v", err)
		}
		rr, err := ReadExploreJSON(&b)
		if err != nil {
			t.Fatalf("ReadExploreJSON: %v", err)
		}
		return rr
	}
	merged, err := MergeExplore(reload(s1), reload(s0)) // order must not matter
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	st, sc, sj := renderAll(t, serial)
	for name, r := range map[string]*ExploreResult{"parallel": parallel, "merged": merged} {
		gt, gc, gj := renderAll(t, r)
		if !bytes.Equal(st, gt) {
			t.Errorf("%s table differs from serial:\n%s\nvs\n%s", name, gt, st)
		}
		if !bytes.Equal(sc, gc) {
			t.Errorf("%s csv differs from serial", name)
		}
		if !bytes.Equal(sj, gj) {
			t.Errorf("%s json differs from serial", name)
		}
	}
}

func TestExploreGridShape(t *testing.T) {
	spec := exploreTestSpec()
	n, err := spec.GridSize()
	if err != nil {
		t.Fatalf("GridSize: %v", err)
	}
	if n != 8 { // 2 benches × 2 clusters × 2 entries
		t.Fatalf("GridSize = %d, want 8", n)
	}
	cells, names, err := spec.grid()
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	if !reflect.DeepEqual(names, []string{"gsmdec", "g721dec"}) {
		t.Errorf("benches = %v", names)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		// The derived subblock stays at the 8-byte clamp for both widths
		// (32-byte blocks / 4 clusters = 8; 16 clusters clamps up to 8).
		if c.SubblockBytes != 8 {
			t.Errorf("cell %d: subblock %d, want 8", i, c.SubblockBytes)
		}
	}
	// Benchmarks innermost: cells of one configuration are contiguous.
	if cells[0].Bench != "gsmdec" || cells[1].Bench != "g721dec" {
		t.Errorf("bench order per config: %s, %s", cells[0].Bench, cells[1].Bench)
	}
	if cells[0].Clusters != cells[1].Clusters || cells[0].Entries != cells[1].Entries {
		t.Errorf("config not contiguous across benches")
	}
}

func TestExploreParetoFlags(t *testing.T) {
	cells := []ExploreCell{
		{Index: 0, Bench: "b", NormCycles: 0.8, EnergyRatio: 1.1},
		{Index: 1, Bench: "b", NormCycles: 0.7, EnergyRatio: 1.2},
		{Index: 2, Bench: "b", NormCycles: 0.9, EnergyRatio: 1.2}, // dominated by both
		{Index: 3, Bench: "b", NormCycles: 0.7, EnergyRatio: 1.2}, // tie with 1: both survive
	}
	flagPareto(cells, []int{0, 1, 2, 3})
	want := []bool{true, true, false, true}
	for i, c := range cells {
		if c.Pareto != want[i] {
			t.Errorf("cell %d pareto = %v, want %v", i, c.Pareto, want[i])
		}
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(ExploreSpec{Benches: []string{"nosuch"}}); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown benchmark: err = %v", err)
	}
	if _, err := ExploreCfg(DefaultRunConfig(), ExploreSpec{}, 2, 2); err == nil {
		t.Errorf("out-of-range shard accepted")
	}
	if _, err := ExploreCfg(DefaultRunConfig(), ExploreSpec{}, 0, 0); err == nil {
		t.Errorf("zero shards accepted")
	}
	// An unachievable configuration surfaces the arch.Validate error instead
	// of producing numbers: 4-byte subblocks are below the widest access.
	spec := ExploreSpec{Benches: []string{"gsmdec"}, Subblocks: []int{4}}
	if _, err := Explore(spec); err == nil {
		t.Errorf("sub-word subblock sweep accepted")
	}
	if _, err := MergeExplore(); err == nil {
		t.Errorf("empty merge accepted")
	}
	// A truncated shard file decodes to a zero result; merging it must fail
	// rather than produce an empty "complete" sweep.
	if _, err := MergeExplore(&ExploreResult{}); err == nil {
		t.Errorf("zero-grid merge accepted")
	}
	a := &ExploreResult{Benches: []string{"x"}, GridSize: 2}
	b := &ExploreResult{Benches: []string{"x"}, GridSize: 3}
	if _, err := MergeExplore(a, b); err == nil {
		t.Errorf("grid-size mismatch merge accepted")
	}
	// Same grid size and benchmark set but a different sweep (one shard ran
	// with an ablation flag): the recorded spec identity must veto the merge.
	flagged := ExploreSpec{Benches: []string{"x"}, Sched: sched.Options{MarkAllCandidates: true}}
	plain := ExploreSpec{Benches: []string{"x"}}
	x := &ExploreResult{Spec: flagged.id(), Benches: []string{"x"}, GridSize: 2,
		Cells: []ExploreCell{{Index: 0, Bench: "x"}}}
	y := &ExploreResult{Spec: plain.id(), Benches: []string{"x"}, GridSize: 2,
		Cells: []ExploreCell{{Index: 1, Bench: "x"}}}
	if _, err := MergeExplore(x, y); err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Errorf("cross-sweep merge accepted: err = %v", err)
	}
	// Missing cells must be detected, not silently finalized.
	half := &ExploreResult{Benches: []string{"x"}, GridSize: 2, Cells: []ExploreCell{{Index: 0, Bench: "x"}}}
	if _, err := MergeExplore(half); err == nil {
		t.Errorf("incomplete merge accepted")
	}
	dup := &ExploreResult{Benches: []string{"x"}, GridSize: 2,
		Cells: []ExploreCell{{Index: 0, Bench: "x"}, {Index: 0, Bench: "x"}}}
	if _, err := MergeExplore(dup); err == nil {
		t.Errorf("duplicate-cell merge accepted")
	}
}

// TestEnergySweepMatchesSerialAndSuite pins the energy experiment to the
// parallel engine: parallel equals serial, and the row count tracks the
// suite size (the old cmd/l0sim loop divided its AMEAN by a hardcoded 13).
func TestEnergySweepMatchesSerialAndSuite(t *testing.T) {
	serial, err := EnergySweepCfg(RunConfig{Workers: 1, DisableScheduleCache: true}, 8)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := EnergySweepCfg(RunConfig{Workers: 8}, 8)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("energy sweep parallel != serial")
	}
	if len(serial) != len(workload.Suite()) {
		t.Errorf("rows = %d, want one per suite benchmark (%d)", len(serial), len(workload.Suite()))
	}
	for _, r := range serial {
		if r.Base <= 0 || r.L0 <= 0 || r.Ratio <= 0 {
			t.Errorf("%s: non-positive energy: %+v", r.Bench, r)
		}
	}
	var b bytes.Buffer
	if err := RenderEnergy(&b, serial, 8); err != nil {
		t.Fatalf("RenderEnergy: %v", err)
	}
	if !strings.Contains(b.String(), "AMEAN") {
		t.Errorf("RenderEnergy missing AMEAN row:\n%s", b.String())
	}
}

// TestExploreSchedOptionsChangeResults guards the spec's scheduler axis: an
// ablation switch must actually reach the L0 compilations.
func TestExploreSchedOptionsChangeResults(t *testing.T) {
	spec := ExploreSpec{Benches: []string{"epicdec"}, Clusters: []int{4}, Entries: []int{8}}
	plain, err := Explore(spec)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	spec.Sched = sched.Options{PrefetchDistance: 2}
	dist2, err := Explore(spec)
	if err != nil {
		t.Fatalf("dist2: %v", err)
	}
	if plain.Cells[0].Cycles == dist2.Cells[0].Cycles {
		t.Errorf("prefetch-distance option did not change epicdec cycles (%d)", plain.Cells[0].Cycles)
	}
	if plain.Cells[0].BaseCycles != dist2.Cells[0].BaseCycles {
		t.Errorf("scheduler options leaked into the baseline: %d vs %d",
			plain.Cells[0].BaseCycles, dist2.Cells[0].BaseCycles)
	}
}

// TestExploreSchedAxes covers the spec-driven scheduler axes: prefetch
// distance and register budget join the grid product, reach the L0
// compilations, and keep the baseline untouched.
func TestExploreSchedAxes(t *testing.T) {
	spec := ExploreSpec{
		Benches: []string{"epicdec"}, Clusters: []int{4}, Entries: []int{8},
		PrefetchDists: []int{0, 2}, RegBudgets: []int{0, 64},
	}
	n, err := spec.GridSize()
	if err != nil {
		t.Fatalf("GridSize: %v", err)
	}
	if n != 4 { // 1 bench × 2 prefetch distances × 2 register budgets
		t.Fatalf("GridSize = %d, want 4", n)
	}
	res, err := Explore(spec)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	byAxis := map[[2]int]ExploreCell{}
	for _, c := range res.Cells {
		byAxis[[2]int{c.PrefetchDist, c.RegBudget}] = c
	}
	// Axis value 0 resolves to the scheduler's effective default of 1
	// (resolvePrefetch), so cells carry 1, not 0.
	d0, d2 := byAxis[[2]int{1, 0}], byAxis[[2]int{2, 0}]
	if d0.Cycles == d2.Cycles {
		t.Errorf("prefetch-distance axis did not change epicdec cycles (%d)", d0.Cycles)
	}
	if d0.BaseCycles != d2.BaseCycles {
		t.Errorf("scheduler axis leaked into the baseline: %d vs %d", d0.BaseCycles, d2.BaseCycles)
	}
	// A generous register budget must not change the schedule (the paper's
	// machines never spill at 64 registers on these kernels).
	if r64 := byAxis[[2]int{1, 64}]; r64.Cycles != d0.Cycles {
		t.Errorf("64-register budget changed cycles: %d vs %d", r64.Cycles, d0.Cycles)
	}
	for _, cfg := range res.Configs {
		if _, ok := byAxis[[2]int{cfg.PrefetchDist, cfg.RegBudget}]; !ok {
			t.Errorf("config row carries axis point (%d,%d) absent from the grid", cfg.PrefetchDist, cfg.RegBudget)
		}
	}

	// Equivalent axis values collapse to one configuration: distance 0 and
	// 1 resolve identically, and under the adaptive scheduler the distance
	// axis is inert entirely.
	dup := ExploreSpec{Benches: []string{"gsmdec"}, PrefetchDists: []int{0, 1}}
	if n, err := dup.GridSize(); err != nil || n != 1 {
		t.Errorf("prefetch 0,1 grid = %d (err %v), want 1 cell", n, err)
	}
	ad := ExploreSpec{Benches: []string{"gsmdec"}, PrefetchDists: []int{2, 4},
		Sched: sched.Options{AdaptivePrefetchDistance: true}}
	if n, err := ad.GridSize(); err != nil || n != 1 {
		t.Errorf("adaptive prefetch 2,4 grid = %d (err %v), want 1 cell", n, err)
	}

	// GridBound never under-approximates and never materializes the grid.
	if b, err := spec.GridBound(); err != nil || b < n {
		t.Errorf("GridBound = %d (err %v), below grid size %d", b, err, n)
	}
	huge := ExploreSpec{Clusters: make([]int, 0)}
	for i := 0; i < 10000; i++ {
		huge.Clusters = append(huge.Clusters, i+1)
		huge.Entries = append(huge.Entries, i+1)
		huge.L1Latencies = append(huge.L1Latencies, i+1)
	}
	if b, err := huge.GridBound(); err != nil || b < 10000*10000 {
		t.Errorf("huge GridBound = %d (err %v)", b, err)
	}

	// Shards of sweeps that differ only in a scheduler axis must not merge.
	base := ExploreSpec{Benches: []string{"x"}}
	axis := ExploreSpec{Benches: []string{"x"}, PrefetchDists: []int{2}}
	a := &ExploreResult{Spec: base.id(), Benches: []string{"x"}, GridSize: 2,
		Cells: []ExploreCell{{Index: 0, Bench: "x"}}}
	b := &ExploreResult{Spec: axis.id(), Benches: []string{"x"}, GridSize: 2,
		Cells: []ExploreCell{{Index: 1, Bench: "x"}}}
	if _, err := MergeExplore(a, b); err == nil || !strings.Contains(err.Error(), "different sweeps") {
		t.Errorf("merge across scheduler axes accepted: err = %v", err)
	}
}

// TestExploreCSVStreamMatchesBuffered pins the streaming CSV path (what the
// server sends) to the in-memory emitter (what the CLI writes): byte-equal,
// at every flush granularity.
func TestExploreCSVStreamMatchesBuffered(t *testing.T) {
	res, err := Explore(ExploreSpec{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{4, 8}})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	var want bytes.Buffer
	if err := WriteExploreCSV(&want, res); err != nil {
		t.Fatalf("WriteExploreCSV: %v", err)
	}
	for _, every := range []int{0, 1, 3} {
		var got bytes.Buffer
		flushes := 0
		if err := WriteExploreCSVStream(&got, res, every, func() { flushes++ }); err != nil {
			t.Fatalf("WriteExploreCSVStream(%d): %v", every, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("flushEvery=%d: streamed CSV differs from buffered", every)
		}
		if flushes == 0 {
			t.Errorf("flushEvery=%d: flush callback never invoked", every)
		}
	}
}
