package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// sweepJSON runs the spec through the engine and renders the JSON form (the
// byte-identity oracle used throughout the bounded-cache tests).
func sweepJSON(t *testing.T, rc RunConfig, spec ExploreSpec) []byte {
	t.Helper()
	res, err := ExploreCfg(rc, spec, 0, 1)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var out bytes.Buffer
	if err := WriteExploreJSON(&out, res); err != nil {
		t.Fatalf("render: %v", err)
	}
	return out.Bytes()
}

// TestBoundedSweepByteIdentical is the eviction acceptance gate: with caps
// far below the working set, a concurrent sweep must evict (memory stays
// bounded) and still emit bytes identical to the unbounded run — eviction
// only forgets, it never alters. Run under -race this also exercises
// eviction racing concurrent fills.
func TestBoundedSweepByteIdentical(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := cacheTestSpec()
	want := sweepJSON(t, RunConfig{Workers: 4}, spec)

	ResetCaches()
	limits := CacheLimits{ScheduleEntries: 3, ScheduleBytes: -1, ResultEntries: 2, ResultBytes: -1}
	SetCacheLimits(limits)
	var ctr CacheCounters
	got := sweepJSON(t, RunConfig{Workers: 8, Counters: &ctr}, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("bounded sweep differs from unbounded run")
	}

	st := CacheStatsNow()
	if st.ScheduleEvictions == 0 {
		t.Errorf("caps below working set but no schedule evictions (entries=%d)", st.ScheduleEntries)
	}
	if st.ResultEvictions == 0 {
		t.Errorf("caps below working set but no result evictions (entries=%d)", st.ResultEntries)
	}
	if st.ScheduleEntries > limits.ScheduleEntries || st.ResultEntries > limits.ResultEntries {
		t.Errorf("resident entries %d/%d exceed caps %d/%d after the sweep settled",
			st.ScheduleEntries, st.ResultEntries, limits.ScheduleEntries, limits.ResultEntries)
	}
	if ctr.Compiles.Load() == 0 || ctr.Simulations.Load() == 0 {
		t.Fatalf("bounded sweep computed nothing: test is vacuous")
	}
}

// TestByteCapBoundsResidency drives eviction through the byte cap alone and
// checks the accounting stays within it once fills settle.
func TestByteCapBoundsResidency(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := cacheTestSpec()
	want := sweepJSON(t, RunConfig{Workers: 4}, spec)

	ResetCaches()
	SetCacheLimits(CacheLimits{ScheduleEntries: -1, ScheduleBytes: 4096, ResultEntries: -1, ResultBytes: 1024})
	got := sweepJSON(t, RunConfig{Workers: 4}, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("byte-capped sweep differs from unbounded run")
	}
	st := CacheStatsNow()
	if st.ScheduleBytes > 4096 || st.ResultBytes > 1024 {
		t.Errorf("resident bytes %d/%d exceed caps after the sweep settled", st.ScheduleBytes, st.ResultBytes)
	}
	if st.ScheduleEvictions == 0 || st.ResultEvictions == 0 {
		t.Errorf("byte caps below working set but evictions %d/%d",
			st.ScheduleEvictions, st.ResultEvictions)
	}
}

// TestCapZeroDisablesCleanly pins the cap-of-zero contract: nothing is
// stored, every compile and simulation is counted as cache-disabled, and
// the output is still byte-identical.
func TestCapZeroDisablesCleanly(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := cacheTestSpec()
	want := sweepJSON(t, RunConfig{Workers: 4}, spec)

	ResetCaches()
	SetCacheLimits(CacheLimits{}) // zero value: everything off
	var ctr CacheCounters
	got := sweepJSON(t, RunConfig{Workers: 4, Counters: &ctr}, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("uncached sweep differs from cached run")
	}
	st := CacheStatsNow()
	if st.ScheduleEntries != 0 || st.ResultEntries != 0 || st.ScheduleBytes != 0 || st.ResultBytes != 0 {
		t.Errorf("disabled caches retained state: %+v", st)
	}
	if ctr.Hits.Load() != 0 || ctr.SimHits.Load() != 0 {
		t.Errorf("disabled caches served hits: hits=%d sim_hits=%d", ctr.Hits.Load(), ctr.SimHits.Load())
	}
	if ctr.Disabled.Load() == 0 || ctr.SimDisabled.Load() == 0 {
		t.Errorf("cap-of-zero traffic not counted as disabled: disabled=%d sim_disabled=%d",
			ctr.Disabled.Load(), ctr.SimDisabled.Load())
	}
	if ctr.Compiles.Load() == 0 || ctr.Simulations.Load() == 0 {
		t.Fatalf("uncached sweep computed nothing: test is vacuous")
	}
}

// TestSnapshotCompaction pins the Save-side half of the bounding story: a
// snapshot taken after eviction persists only the resident set (no dead
// grids), still round-trips byte-identically, and an import into a capped
// cache is itself trimmed to the caps.
func TestSnapshotCompaction(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := cacheTestSpec()
	if _, err := ExploreCfg(RunConfig{Workers: 4}, spec, 0, 1); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var full bytes.Buffer
	if err := ExportScheduleCache(&full); err != nil {
		t.Fatalf("export full: %v", err)
	}

	// Shrink the live caches; the next snapshot must shrink with them.
	limits := CacheLimits{ScheduleEntries: 3, ScheduleBytes: -1, ResultEntries: 2, ResultBytes: -1}
	SetCacheLimits(limits)
	var compact bytes.Buffer
	if err := ExportScheduleCache(&compact); err != nil {
		t.Fatalf("export compacted: %v", err)
	}
	counts := func(blob []byte) (schedules, results int) {
		var snap struct {
			Schedules []json.RawMessage `json:"schedules"`
			Results   []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(blob, &snap); err != nil {
			t.Fatalf("parse snapshot: %v", err)
		}
		return len(snap.Schedules), len(snap.Results)
	}
	fs, fr := counts(full.Bytes())
	cs, cr := counts(compact.Bytes())
	if fs <= limits.ScheduleEntries || fr <= limits.ResultEntries {
		t.Fatalf("full snapshot (%d schedules, %d results) not larger than caps: test is vacuous", fs, fr)
	}
	if cs > limits.ScheduleEntries || cr > limits.ResultEntries {
		t.Errorf("compacted snapshot carries %d schedules, %d results; caps are %d/%d", cs, cr,
			limits.ScheduleEntries, limits.ResultEntries)
	}

	// The compacted snapshot round-trips: import into empty caps-free
	// caches, re-export, compare bytes.
	ResetCaches()
	st, err := ImportScheduleCache(bytes.NewReader(compact.Bytes()))
	if err != nil {
		t.Fatalf("import compacted: %v", err)
	}
	if st.Schedules != cs || st.Results != cr || st.Skipped != 0 {
		t.Errorf("import stats %+v, want %d schedules, %d results, 0 skipped", st, cs, cr)
	}
	var again bytes.Buffer
	if err := ExportScheduleCache(&again); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(again.Bytes(), compact.Bytes()) {
		t.Errorf("compacted snapshot does not round-trip byte-identically")
	}

	// Importing the full snapshot into capped caches keeps at most the caps.
	ResetCaches()
	SetCacheLimits(limits)
	if _, err := ImportScheduleCache(bytes.NewReader(full.Bytes())); err != nil {
		t.Fatalf("import into capped caches: %v", err)
	}
	now := CacheStatsNow()
	if now.ScheduleEntries > limits.ScheduleEntries || now.ResultEntries > limits.ResultEntries {
		t.Errorf("capped import left %d/%d entries resident, caps %d/%d",
			now.ScheduleEntries, now.ResultEntries, limits.ScheduleEntries, limits.ResultEntries)
	}
}
