// Simulation-result memoization. PR 4 made warm sweeps compile-free, but
// PERF.md's numbers show they stayed simulation-bound: every request re-ran
// the cycle-level simulator over the whole grid. Simulation is as
// deterministic as compilation, so a benchmark run is a pure function of
// (benchmark, architecture, machine configuration, comparable scheduler
// options) — the same identity the schedule cache keys on, lifted one level.
// Memoizing the BenchResult makes a repeat sweep O(render): zero compiles
// AND zero simulations, with byte-identical output (the aggregation in
// explore.go is a pure function of the cells).
//
// Cached results are shared and must be treated as immutable: RunBenchmark's
// callers only ever read them (the stats pointers inside a BenchResult are
// quiescent once the run returns). The cache is bounded like the schedule
// cache (SetCacheLimits; LRU with entry/byte caps) and persisted in the v2
// cache snapshot, so a restarted server answers repeat sweeps O(render) too.

package harness

import (
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/workload"
)

// resultKey identifies one benchmark simulation. cfg carries the normalized
// L0 entry count (archEntries) exactly like compileKey, so a baseline run at
// any nominal buffer size shares one entry.
type resultKey struct {
	// bid is the benchmark's content identity (workload.BenchmarkIDOf): a
	// hash over its kernels' content hashes and invocation counts. bench —
	// the display name — stays in the key because it reaches the output
	// bytes (BenchResult.Bench), so two names for the same content must
	// not serve each other's results verbatim.
	bid       string
	bench     string
	arch      Arch
	cfg       arch.Config
	opts      schedOptsKey
	coherence bool
	fallback  bool
}

type resultEntry struct {
	once sync.Once
	res  *BenchResult
	err  error
	// done mirrors compileEntry.done: set (release) after once.Do filled
	// res/err, so eviction and the snapshot exporter never race a fill.
	done atomic.Bool
}

var resultCache = newLRUCache[resultKey, *resultEntry](
	func(e *resultEntry) bool { return e.done.Load() })

// detachStats copies the result's interior stats pointers into fresh
// allocations. RunBenchmark hands out pointers into the simulator's memory
// system (&sys.Stats), so a memoized result would otherwise pin the whole
// dead simulator — L1 tag arrays and all — making resultCost's estimate
// wrong by orders of magnitude and the byte cap meaningless. The stats are
// plain value structs and quiescent once the run returns, so the copy is
// exact. Runs cached before the snapshot importer sees them get the same
// treatment implicitly (a JSON round-trip detaches everything).
func detachStats(r *BenchResult) {
	if r == nil {
		return
	}
	if r.L0 != nil {
		st := *r.L0
		r.L0 = &st
	}
	if r.MV != nil {
		st := *r.MV
		r.MV = &st
	}
	if r.IL != nil {
		st := *r.IL
		r.IL = &st
	}
}

// resultCost estimates the resident bytes of one memoized BenchResult (same
// role as scheduleCost: a structural estimate over the detached result).
func resultCost(r *BenchResult) int64 {
	if r == nil {
		return 64
	}
	cost := int64(256) + int64(len(r.Bench)) + int64(len(r.Kernels))*96
	if r.L0 != nil {
		cost += 160
	}
	if r.MV != nil {
		cost += 64
	}
	if r.IL != nil {
		cost += 64
	}
	return cost
}

// resultCacheKey builds the cache identity for a run, or ok=false when the
// run cannot be represented (per-run scheduler callbacks). Every Options
// field must join the key or carry a //lint:nonkey justification — a field
// that changes simulation output but not the key would serve one variant's
// cached result for the other.
//
//lint:keyfields Options
func resultCacheKey(b *workload.Benchmark, a Arch, opts Options) (resultKey, bool) {
	if !cacheable(opts.Sched) {
		return resultKey{}, false
	}
	entries := archEntries(a, opts.Cfg)
	return resultKey{
		bid: workload.BenchmarkIDOf(b), bench: b.Name, arch: a,
		cfg:       opts.Cfg.WithL0Entries(entries),
		opts:      optsKeyOf(opts.Sched),
		coherence: opts.CheckCoherence,
		fallback:  opts.ConservativeFallback && a == ArchL0,
	}, true
}

// RunBenchmarkCached is RunBenchmark behind the process-global result cache:
// a hit returns the shared, immutable BenchResult of an earlier identical
// run without compiling or simulating anything. Runs that disable either
// cache, or whose scheduler options carry per-run callbacks, fall through to
// a real simulation (counted as disabled/bypassed so a regression eating the
// cache's benefit is observable in /v1/cachestats). The explore and energy
// sweeps and the server's /v1/run run through here; the figure drivers and
// benchmarks deliberately do not — a figure timing a cached lookup would
// measure nothing.
func RunBenchmarkCached(b *workload.Benchmark, a Arch, opts Options) (*BenchResult, error) {
	key, keyable := resultCacheKey(b, a, opts)
	switch {
	case !keyable:
		opts.count(func(c *CacheCounters) { c.SimBypassed.Add(1) })
	case opts.DisableScheduleCache || opts.DisableResultCache:
		opts.count(func(c *CacheCounters) { c.SimDisabled.Add(1) })
	default:
		e, _, ok := resultCache.getOrCreate(key, func() *resultEntry { return &resultEntry{} })
		if !ok {
			// Cap of zero: the result cache is configured off.
			opts.count(func(c *CacheCounters) { c.SimDisabled.Add(1) })
			break
		}
		fresh := false
		e.once.Do(func() {
			fresh = true
			e.res, e.err = RunBenchmark(b, a, opts)
			detachStats(e.res)
			e.done.Store(true)
		})
		if fresh {
			opts.count(func(c *CacheCounters) { c.SimMisses.Add(1) })
			if e.err == nil {
				resultCache.charge(key, resultCost(e.res))
			}
		} else {
			opts.count(func(c *CacheCounters) { c.SimHits.Add(1) })
			// A hit skips RunBenchmark entirely, so the hit's own cache
			// traffic (compiles, schedule hits) is zero by construction —
			// which is the whole point, and what the acceptance counters
			// prove.
		}
		return e.res, e.err
	}
	return RunBenchmark(b, a, opts)
}
