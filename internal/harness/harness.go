// Package harness runs the paper's experiments: it compiles every benchmark
// kernel for one of the five architectures (unified-L1 baseline, unified L1
// + L0 buffers, MultiVLIW, and the two word-interleaved scheduling
// heuristics), executes it on the matching memory model, and aggregates
// execution time split into compute and stall cycles the way Figures 5 and 7
// plot it.
package harness

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/interleaved"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/multivliw"
	"repro/internal/sched"
	"repro/internal/vliw"
	"repro/internal/workload"
)

// Arch selects the architecture/scheduler pair to evaluate.
type Arch int

const (
	// ArchBase is the clustered VLIW with a unified L1 and no buffers.
	ArchBase Arch = iota
	// ArchL0 adds the flexible compiler-managed L0 buffers.
	ArchL0
	// ArchMultiVLIW distributes the L1 with MSI snoop coherence.
	ArchMultiVLIW
	// ArchInterleaved1 is the word-interleaved cache with the
	// latency-conservative scheduling heuristic.
	ArchInterleaved1
	// ArchInterleaved2 is the word-interleaved cache with the
	// locality-aware scheduling heuristic.
	ArchInterleaved2
)

// ArchByName is the inverse of Arch.String (the form the cache snapshot and
// the serving API use on the wire).
func ArchByName(name string) (Arch, bool) {
	for _, a := range []Arch{ArchBase, ArchL0, ArchMultiVLIW, ArchInterleaved1, ArchInterleaved2} {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

func (a Arch) String() string {
	switch a {
	case ArchBase:
		return "base"
	case ArchL0:
		return "l0"
	case ArchMultiVLIW:
		return "multivliw"
	case ArchInterleaved1:
		return "interleaved1"
	case ArchInterleaved2:
		return "interleaved2"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// Options tunes one experiment run.
type Options struct {
	// Cfg is the machine description; L0Entries applies to ArchL0.
	Cfg arch.Config
	// Sched carries scheduler ablation switches (MarkAllCandidates,
	// PrefetchDistance, AllowPSR, ...); UseL0 is set by the harness.
	Sched sched.Options
	// CheckCoherence enables shadow-version coherence checking in the
	// memory model (ArchBase/ArchL0): every L0 hit is validated against
	// the latest store. Violations land in BenchResult.L0.
	CheckCoherence bool
	// ConservativeFallback implements the per-loop give-up heuristic
	// §5.2 suggests for jpegdec's pathological loop: each kernel is
	// compiled both with and without L0 buffers, both schedules run a
	// short trial on scratch memory, and the faster one is kept. Only
	// meaningful for ArchL0.
	ConservativeFallback bool
	// DisableScheduleCache bypasses the global compile memoization for
	// this run (results are identical either way; used to measure the
	// cache's contribution). RunBenchmarkCached also treats it as
	// disabling the result cache: a run observing compile costs must
	// actually compile.
	//lint:nonkey cache-control switch: results are identical either way (compilation is deterministic), so sharing a key is sound
	DisableScheduleCache bool
	// DisableResultCache bypasses the global simulation-result
	// memoization in RunBenchmarkCached for this run (results are
	// identical either way; threaded from RunConfig.DisableResultCache).
	//lint:nonkey cache-control switch: results are identical either way (simulation is deterministic), so sharing a key is sound
	DisableResultCache bool
	// Counters, when non-nil, accumulates this run's schedule-cache
	// traffic in addition to the process-global counters (threaded from
	// RunConfig.Counters by the engine).
	//lint:nonkey observability sink; counter wiring never alters what is computed
	Counters *CacheCounters
}

// count applies one counter update to the process-global counter set and,
// when the run carries its own counters, to those too.
func (o Options) count(f func(*CacheCounters)) {
	f(&globalCacheCounters)
	if o.Counters != nil {
		f(o.Counters)
	}
}

// KernelResult is the outcome of one kernel on one architecture.
type KernelResult struct {
	Kernel  string
	Factor  int
	II, SC  int
	Compute int64
	Stall   int64
	Total   int64
}

// BenchResult aggregates one benchmark on one architecture.
type BenchResult struct {
	Bench   string
	Arch    Arch
	Kernels []KernelResult
	Compute int64
	Stall   int64
	Total   int64
	// Clock is the running program time: memory-model state carries
	// absolute cycles, so invocations execute back to back on it.
	Clock int64
	// AvgUnroll is the dynamic-weighted unroll factor (Figure 6).
	AvgUnroll float64
	// L0 carries the L0/L1 statistics for ArchBase and ArchL0 runs.
	L0 *mem.Stats
	// MV and IL carry the baseline-specific statistics.
	MV *multivliw.Stats
	IL *interleaved.Stats
}

// RunBenchmark executes every kernel of the benchmark on the architecture.
// Callers on the sweep paths go through RunBenchmarkCached instead, which
// memoizes the whole result; this function always simulates.
func RunBenchmark(b *workload.Benchmark, a Arch, opts Options) (*BenchResult, error) {
	cfg := opts.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Mirrors Compiles in compileKernelUncached: every actual simulation is
	// counted, so a warm-result sweep provably performs zero.
	opts.count(func(c *CacheCounters) { c.Simulations.Add(1) })
	res := &BenchResult{Bench: b.Name, Arch: a}

	// One memory model per benchmark: L1 state persists across kernels
	// and invocations; L0 buffers are flushed at loop boundaries.
	var model vliw.MemoryModel
	schedOpts := opts.Sched
	switch a {
	case ArchBase:
		sys := mem.NewSystem(cfg.WithL0Entries(0))
		res.L0 = &sys.Stats
		model = sys
		schedOpts.UseL0 = false
	case ArchL0:
		sys := mem.NewSystem(cfg)
		if opts.CheckCoherence {
			sys.EnableCoherenceCheck()
		}
		res.L0 = &sys.Stats
		model = sys
		schedOpts.UseL0 = true
	case ArchMultiVLIW:
		mv := multivliw.New(cfg, multivliw.DefaultParams())
		res.MV = &mv.Stats
		model = mv
		schedOpts.UseL0 = false
		// The comparison baselines install per-run latency/placement
		// callbacks, which the exact backend refuses; they always use the
		// heuristic scheduler (the exact backend quantifies the paper's own
		// scheduler, not the rival architectures' compilers).
		schedOpts.Backend, schedOpts.ExactBudget = "", 0
		p := multivliw.DefaultParams()
		// Strided accesses with block-level reuse migrate to their users
		// and hit locally, so the compiler schedules them with the local
		// latency. Column walks (stride beyond a block: every access a
		// fresh block, no slice reuse) and data-dependent accesses get
		// the conservative remote latency.
		blk := int64(cfg.L1BlockBytes)
		schedOpts.LoadLatencyFn = func(in *ir.Instr, _ int) int {
			if in.IsCandidate() {
				st := in.Mem.Stride
				if st < 0 {
					st = -st
				}
				if st <= blk {
					return p.LocalLatency
				}
			}
			return p.RemoteLatency
		}
		// Group each array's references in one cluster so MSI sharing
		// does not replicate every block into every slice, assigning
		// arrays to clusters round-robin so two hot arrays never fight
		// over one slice (the locality cluster-assignment of the
		// MultiVLIW compiler).
		nextHome := 0
		homes := map[*ir.Array]int{}
		schedOpts.PreferredClusterFn = func(in *ir.Instr) int {
			if in.Mem == nil {
				return -1
			}
			h, ok := homes[in.Mem.Array]
			if !ok {
				h = nextHome % cfg.Clusters
				nextHome++
				homes[in.Mem.Array] = h
			}
			return h
		}
	case ArchInterleaved1:
		il := interleaved.New(cfg, interleaved.DefaultParams())
		res.IL = &il.Stats
		model = il
		schedOpts.UseL0 = false
		schedOpts.Backend, schedOpts.ExactBudget = "", 0
		p := interleaved.DefaultParams()
		schedOpts.LoadLatencyFn = func(*ir.Instr, int) int { return p.RemoteLatency }
	case ArchInterleaved2:
		il := interleaved.New(cfg, interleaved.DefaultParams())
		res.IL = &il.Stats
		model = il
		schedOpts.UseL0 = false
		schedOpts.Backend, schedOpts.ExactBudget = "", 0
		p := interleaved.DefaultParams()
		schedOpts.LoadLatencyFn = func(in *ir.Instr, cluster int) int {
			if il.StaysLocal(in) && (cluster == -1 || cluster == il.HomeClusterOf(in)) {
				return p.LocalLatency
			}
			return p.RemoteLatency
		}
		schedOpts.PreferredClusterFn = func(in *ir.Instr) int {
			if il.StaysLocal(in) {
				return il.HomeClusterOf(in)
			}
			return -1
		}
	default:
		return nil, fmt.Errorf("harness: unknown architecture %v", a)
	}

	// Compile every kernel first so inter-kernel flushes can be planned
	// selectively (§4.1: only clusters whose buffered data the next loop
	// touches need invalidating). Cacheable compilations are memoized
	// globally; each kernel's schedule is lowered to an executable
	// vliw.Program once and reused across its invocations.
	type compiled struct {
		k      *workload.Kernel
		sch    *sched.Schedule
		prog   *vliw.Program
		factor int
	}
	base := int64(1 << 16)
	var progs []compiled
	for i := range b.Kernels {
		k := &b.Kernels[i]
		ck, err := compileKernel(b, i, a, opts, schedOpts, base)
		if err != nil {
			return nil, err
		}
		base += ck.baseDelta
		prog, err := vliw.NewProgram(ck.sch)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", b.Name, k.Name, err)
		}
		progs = append(progs, compiled{k: k, sch: ck.sch, prog: prog, factor: ck.factor})
	}

	var weightSum, unrollWeighted int64
	for i, p := range progs {
		kr := KernelResult{Kernel: p.k.Name, Factor: p.factor, II: p.sch.II, SC: p.sch.SC}
		// §4.1 inter-loop coherence: flush between invocations only when
		// re-entering the same schedule could read stale buffered data.
		flushEach := sched.NeedsInterLoopFlush(p.sch)
		var next *sched.Schedule
		if i+1 < len(progs) {
			next = progs[i+1].sch
		}
		// Code-specialized loops run the §4.1 check code on entry (the
		// guard that picks the aggressive version). The same few cycles
		// apply on every architecture.
		var checkCost int64
		if p.k.Specialized {
			checkCost = 4
		}
		for inv := int64(0); inv < p.k.Invocations; inv++ {
			r, err := p.prog.RunAt(model, res.Clock)
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%s: %w", b.Name, p.k.Name, err)
			}
			kr.Compute += checkCost
			kr.Total += checkCost
			res.Clock += checkCost
			kr.Compute += r.ComputeCycles
			kr.Stall += r.StallCycles
			kr.Total += r.TotalCycles
			res.Clock += r.TotalCycles
			var fc int64
			switch {
			case flushEach:
				fc = model.LoopEnd()
			case inv == p.k.Invocations-1:
				// Moving on to the next kernel: selective flush on
				// the L0 architecture, full flush elsewhere (free).
				if sys, ok := model.(*mem.System); ok {
					fc = sys.InvalidateClusters(sched.FlushPlan(p.sch, next))
				} else {
					fc = model.LoopEnd()
				}
			}
			kr.Compute += fc
			kr.Total += fc
			res.Clock += fc
		}
		res.Kernels = append(res.Kernels, kr)
		res.Compute += kr.Compute
		res.Stall += kr.Stall
		res.Total += kr.Total

		w := workload.KernelWeight(p.k)
		weightSum += w
		unrollWeighted += w * int64(p.factor)
	}
	if weightSum > 0 {
		res.AvgUnroll = float64(unrollWeighted) / float64(weightSum)
	}
	return res, nil
}

// conservativeIfFaster trial-runs the L0 schedule against a conservative
// (no-buffer) schedule of the same body on scratch memory and returns the
// faster of the two — §5.2's suggested per-loop fallback ("the algorithm
// could give up using L0 buffers in this loop and use a more conservative
// schedule"). Two trial invocations warm the scratch L1 so steady-state
// behaviour decides.
func conservativeIfFaster(body *ir.Loop, cfg arch.Config, l0Opts sched.Options, l0Sch *sched.Schedule) (*sched.Schedule, error) {
	consOpts := l0Opts
	consOpts.UseL0 = false
	consOpts.LoadLatencyFn = nil
	consOpts.PreferredClusterFn = nil
	consSch, err := sched.Compile(body, cfg.WithL0Entries(0), consOpts)
	if err != nil {
		return nil, err
	}
	trial := func(sch *sched.Schedule, entries int) (int64, error) {
		prog, err := vliw.NewProgram(sch)
		if err != nil {
			return 0, err
		}
		sys := mem.NewSystem(cfg.WithL0Entries(entries))
		var clock, total int64
		for i := 0; i < 2; i++ {
			r, err := prog.RunAt(sys, clock)
			if err != nil {
				return 0, err
			}
			clock += r.TotalCycles
			total = r.TotalCycles // keep the warm invocation
		}
		return total, nil
	}
	l0Time, err := trial(l0Sch, cfg.L0Entries)
	if err != nil {
		return nil, err
	}
	consTime, err := trial(consSch, 0)
	if err != nil {
		return nil, err
	}
	if consTime < l0Time {
		return consSch, nil
	}
	return l0Sch, nil
}

// archEntries returns the L0Entries the scheduler/memory of this
// architecture should see: only ArchL0 has buffers.
func archEntries(a Arch, cfg arch.Config) int {
	if a == ArchL0 {
		return cfg.L0Entries
	}
	return 0
}
