package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// exploreCellHeader is the column set shared by the text table, the
// in-memory CSV emitter and the streaming CSV emitter.
func exploreCellHeader() []string {
	return []string{"index", "bench", "clusters", "entries", "subblock", "l1lat", "prefdist", "regbudget", "sched",
		"base_cycles", "cycles", "norm_cycles", "stall_frac", "base_energy", "energy", "energy_ratio", "pareto"}
}

// exploreCellRow formats one cell with fixed precision so a merged shard run
// renders byte-identically to a single-process run.
func exploreCellRow(c ExploreCell) []string {
	return []string{
		fmt.Sprintf("%d", c.Index), c.Bench,
		fmt.Sprintf("%d", c.Clusters), fmt.Sprintf("%d", c.Entries),
		fmt.Sprintf("%d", c.SubblockBytes), fmt.Sprintf("%d", c.L1Latency),
		fmt.Sprintf("%d", c.PrefetchDist), fmt.Sprintf("%d", c.RegBudget), c.Sched,
		fmt.Sprintf("%d", c.BaseCycles), fmt.Sprintf("%d", c.Cycles),
		fmt.Sprintf("%.4f", c.NormCycles), fmt.Sprintf("%.4f", c.StallFrac),
		fmt.Sprintf("%.0f", c.BaseEnergy), fmt.Sprintf("%.0f", c.Energy),
		fmt.Sprintf("%.4f", c.EnergyRatio), paretoMark(c.Pareto),
	}
}

// exploreAMeanRow formats one per-configuration AMEAN pseudo-benchmark row
// for the CSV emitters (cycle/energy columns empty, the means in the
// norm_cycles/energy_ratio columns).
func exploreAMeanRow(c ExploreConfig) []string {
	return []string{"", "AMEAN",
		fmt.Sprintf("%d", c.Clusters), fmt.Sprintf("%d", c.Entries),
		fmt.Sprintf("%d", c.SubblockBytes), fmt.Sprintf("%d", c.L1Latency),
		fmt.Sprintf("%d", c.PrefetchDist), fmt.Sprintf("%d", c.RegBudget), c.Sched,
		"", "",
		fmt.Sprintf("%.4f", c.AMeanCycles), "",
		"", "",
		fmt.Sprintf("%.4f", c.AMeanEnergy), paretoMark(c.Pareto),
	}
}

// exploreCellTable flattens the cells into a stats.Table (the shared shape
// behind the text and CSV emitters).
func exploreCellTable(r *ExploreResult) *stats.Table {
	t := &stats.Table{Title: fmt.Sprintf("Design-space sweep: %d cells over %d benchmarks (cycles and energy vs same-machine no-L0 baseline)", r.GridSize, len(r.Benches))}
	t.Header = exploreCellHeader()
	for _, c := range r.Cells {
		t.Add(exploreCellRow(c)...)
	}
	return t
}

// exploreConfigTable renders the per-configuration suite-AMEAN rows.
func exploreConfigTable(r *ExploreResult) *stats.Table {
	t := &stats.Table{Title: "Suite AMEAN per configuration (Pareto front of cycles vs energy marked *)"}
	t.Header = []string{"clusters", "entries", "subblock", "l1lat", "prefdist", "regbudget", "sched", "amean_cycles", "amean_energy", "pareto"}
	for _, c := range r.Configs {
		t.Add(
			fmt.Sprintf("%d", c.Clusters), fmt.Sprintf("%d", c.Entries),
			fmt.Sprintf("%d", c.SubblockBytes), fmt.Sprintf("%d", c.L1Latency),
			fmt.Sprintf("%d", c.PrefetchDist), fmt.Sprintf("%d", c.RegBudget), c.Sched,
			fmt.Sprintf("%.4f", c.AMeanCycles), fmt.Sprintf("%.4f", c.AMeanEnergy),
			paretoMark(c.Pareto),
		)
	}
	return t
}

func paretoMark(p bool) string {
	if p {
		return "*"
	}
	return ""
}

// RenderExplore prints the sweep as text tables: every cell, then the
// per-benchmark Pareto fronts, then the per-configuration AMEAN table.
// Incomplete (shard) results print only their cells. Returns the first
// write error.
func RenderExplore(w io.Writer, r *ExploreResult) error {
	if err := exploreCellTable(r).Render(w); err != nil {
		return err
	}
	if !r.Complete() {
		_, err := fmt.Fprintf(w, "\n(shard %d/%d: %d of %d cells; merge shards for Pareto fronts)\n",
			r.Shard, r.Shards, len(r.Cells), r.GridSize)
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	front := &stats.Table{Title: "Per-benchmark Pareto fronts (cycles vs energy, lower is better)"}
	front.Header = []string{"bench", "clusters", "entries", "subblock", "l1lat", "prefdist", "regbudget", "sched", "norm_cycles", "energy_ratio"}
	for _, bench := range r.Benches {
		for _, c := range r.Cells {
			if c.Bench != bench || !c.Pareto {
				continue
			}
			front.Add(c.Bench,
				fmt.Sprintf("%d", c.Clusters), fmt.Sprintf("%d", c.Entries),
				fmt.Sprintf("%d", c.SubblockBytes), fmt.Sprintf("%d", c.L1Latency),
				fmt.Sprintf("%d", c.PrefetchDist), fmt.Sprintf("%d", c.RegBudget), c.Sched,
				fmt.Sprintf("%.4f", c.NormCycles), fmt.Sprintf("%.4f", c.EnergyRatio))
		}
	}
	if err := front.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return exploreConfigTable(r).Render(w)
}

// WriteExploreCSV emits the sweep as one flat CSV: every cell row, then —
// for complete results — one AMEAN pseudo-benchmark row per configuration
// (cycle/energy columns empty, norm_cycles/energy_ratio carrying the means).
func WriteExploreCSV(w io.Writer, r *ExploreResult) error {
	t := exploreCellTable(r)
	for _, c := range r.Configs {
		t.Add(exploreAMeanRow(c)...)
	}
	return t.RenderCSV(w)
}

// WriteExploreCSVStream emits exactly the bytes of WriteExploreCSV but
// writes each record as it is produced and calls flush every flushEvery data
// rows (and once at the end), so a consumer on the other side of an HTTP
// response sees rows arrive instead of one buffered body. flushEvery <= 0
// flushes only at the end; a nil flush just streams the records.
func WriteExploreCSVStream(w io.Writer, r *ExploreResult, flushEvery int, flush func()) error {
	s, err := stats.NewCSVStreamer(w, exploreCellHeader())
	if err != nil {
		return err
	}
	rows := 0
	emit := func(cells []string) error {
		if err := s.Row(cells...); err != nil {
			return err
		}
		rows++
		if flushEvery > 0 && rows%flushEvery == 0 {
			if err := s.Flush(); err != nil {
				return err
			}
			if flush != nil {
				flush()
			}
		}
		return nil
	}
	for _, c := range r.Cells {
		if err := emit(exploreCellRow(c)); err != nil {
			return err
		}
	}
	for _, c := range r.Configs {
		if err := emit(exploreAMeanRow(c)); err != nil {
			return err
		}
	}
	if err := s.Flush(); err != nil {
		return err
	}
	if flush != nil {
		flush()
	}
	return nil
}

// WriteExploreJSON emits the result as indented JSON (the format shards
// exchange: ReadExploreJSON and MergeExplore reconstruct the full sweep).
func WriteExploreJSON(w io.Writer, r *ExploreResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadExploreJSON parses a result written by WriteExploreJSON.
func ReadExploreJSON(rd io.Reader) (*ExploreResult, error) {
	var r ExploreResult
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("harness: parse explore json: %w", err)
	}
	return &r, nil
}
