package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/unroll"
	"repro/internal/workload"
)

// RunConfig tunes the experiment engine: how many workers fan out over the
// (kernel, architecture, configuration) job graph and whether compiled
// schedules are memoized across runs. The zero value means "serial, cached";
// DefaultRunConfig is what the figure entry points use.
type RunConfig struct {
	// Workers is the worker-pool size; <= 0 selects runtime.NumCPU().
	Workers int
	// DisableScheduleCache bypasses the global schedule memoization (used
	// to measure the cache's contribution; results are identical either
	// way because compilation is deterministic). It also bypasses the
	// result cache: a run that asks to observe compile costs must actually
	// compile, which a memoized simulation result would skip wholesale.
	DisableScheduleCache bool
	// DisableResultCache bypasses the global simulation-result memoization
	// for this run (results are identical either way because simulation is
	// deterministic; used to measure the result cache's contribution and
	// by determinism tests that want real simulations).
	DisableResultCache bool
	// Ctx, when non-nil, cancels the run: forEachJob stops handing out
	// jobs once the context is done and returns its error. The serving
	// layer threads each request's context through here so an abandoned
	// HTTP request or a canceled job releases its workers promptly.
	Ctx context.Context
	// Counters, when non-nil, additionally accumulates this run's
	// schedule-cache traffic (hits, misses, bypasses) into the given
	// counter set, on top of the process-global counters.
	Counters *CacheCounters
}

// DefaultRunConfig runs one worker per CPU with the schedule cache enabled.
func DefaultRunConfig() RunConfig {
	//lint:allow wallclock worker-pool sizing; forEachJob aggregates by job index, so worker count never changes a byte
	return RunConfig{Workers: runtime.NumCPU()}
}

// options derives the per-run harness Options for one job, threading the
// engine-level cache switch so driver closures cannot forget it.
func (rc RunConfig) options(cfg arch.Config) Options {
	return Options{
		Cfg:                  cfg,
		DisableScheduleCache: rc.DisableScheduleCache,
		DisableResultCache:   rc.DisableResultCache,
		Counters:             rc.Counters,
	}
}

// canceled returns the context's error when the run's context is done.
func (rc RunConfig) canceled() error {
	if rc.Ctx == nil {
		return nil
	}
	return rc.Ctx.Err()
}

func (rc RunConfig) workers(n int) int {
	w := rc.Workers
	if w <= 0 {
		w = runtime.NumCPU() //lint:allow wallclock worker-pool sizing; aggregation is index-ordered
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachJob fans the n independent jobs out over the worker pool and
// aggregates deterministically: results are ordered by job index, never by
// completion order, so a parallel run is byte-identical to a single-worker
// run. The first error wins and cancels the remaining jobs.
func forEachJob[T any](rc RunConfig, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := rc.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := rc.canceled(); err != nil {
				return nil, err
			}
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := rc.canceled(); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				r, err := job(i)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return results, nil
}

// schedOptsKey is the comparable subset of sched.Options used as a cache
// key. The two function fields are deliberately absent: runs that install
// per-architecture latency or placement callbacks are never memoized.
type schedOptsKey struct {
	UseL0                    bool
	AllowPSR                 bool
	MarkAllCandidates        bool
	PrefetchDistance         int
	AdaptivePrefetchDistance bool
	DisableExplicitPrefetch  bool
	MaxII                    int
	RegistersPerCluster      int
	Backend                  string
	ExactBudget              int64
}

// optsKeyOf projects scheduler options into the comparable cache identity.
// The keyfields directive makes forgetting a new sched.Options field here a
// lint failure: a forgotten field would let two different compilations
// share one cache entry (and one shard-merge identity) — the silent cache
// poisoning the -prefetch/-regbudget axes had to dodge by hand in PR 4.
//
//lint:keyfields sched.Options
func optsKeyOf(o sched.Options) schedOptsKey {
	k := schedOptsKey{
		UseL0:                    o.UseL0,
		AllowPSR:                 o.AllowPSR,
		MarkAllCandidates:        o.MarkAllCandidates,
		PrefetchDistance:         o.PrefetchDistance,
		AdaptivePrefetchDistance: o.AdaptivePrefetchDistance,
		DisableExplicitPrefetch:  o.DisableExplicitPrefetch,
		MaxII:                    o.MaxII,
		RegistersPerCluster:      o.RegistersPerCluster,
		Backend:                  o.Backend,
		ExactBudget:              o.ExactBudget,
	}
	// Normalize to what Compile actually uses, so equivalent compilations
	// share one cache entry (and one shard-merge identity): a distance
	// <= 0 means the scheduler default of 1, the distance is ignored
	// entirely in adaptive mode, and any non-positive register budget
	// means unbounded.
	if k.AdaptivePrefetchDistance {
		k.PrefetchDistance = 0
	} else if k.PrefetchDistance <= 0 {
		k.PrefetchDistance = 1
	}
	if k.RegistersPerCluster < 0 {
		k.RegistersPerCluster = 0
	}
	// An empty backend is the heuristic; the budget only reaches the
	// compilation through the exact backend (where <= 0 means the solver
	// default), so it is erased everywhere else.
	if k.Backend == sched.BackendSMS {
		k.Backend = ""
	}
	if k.Backend != sched.BackendExact || k.ExactBudget <= 0 {
		k.ExactBudget = 0
	}
	return k
}

// cacheable reports whether a compile under these scheduler options may be
// memoized: the callback fields capture per-run state (MultiVLIW homes,
// interleaved bank maps) that the key cannot represent.
func cacheable(o sched.Options) bool {
	return o.LoadLatencyFn == nil && o.PreferredClusterFn == nil
}

// compileKey identifies one kernel compilation by content, not position:
// kid is the SHA-256 of the kernel's canonical looplang form
// (workload.KernelIDOf), so the same loop compiled from a suite benchmark,
// a registered user kernel, or a renamed future suite shares one entry.
type compileKey struct {
	kid string
	// base is the array base address AssignAddresses started from. Bases
	// are positional within a benchmark and reach the schedule (L1 set
	// mapping, prefetch addresses), so two occurrences of the same loop at
	// different bases must not share a compilation.
	base int64
	// entries is the L0 entry count the scheduler sees (archEntries);
	// cfg is the full simulation configuration.
	entries  int
	cfg      arch.Config
	opts     schedOptsKey
	fallback bool
}

// compiledKernel is one memoized compilation: the schedule (immutable after
// Compile — simulation only reads it), the chosen unroll factor, and how
// much address space AssignAddresses consumed so cache hits advance the
// benchmark's base pointer identically to a fresh build.
type compiledKernel struct {
	sch       *sched.Schedule
	factor    int
	baseDelta int64
}

type compileEntry struct {
	once sync.Once
	res  compiledKernel
	err  error
	// done is set (release) after once.Do has filled res/err, so the cache
	// exporter can Range over entries without racing in-flight compiles.
	done atomic.Bool
}

// unrollKey identifies one step-1 unroll decision by kernel content. The
// factor is chosen on the no-L0 baseline (§5.1), so it is shared by every
// architecture and L0 size evaluating the same kernel — memoizing it
// separately from the full compile saves the two trial compiles inside
// ChooseUnrollFactor for every figure point past the first. The decision
// never depends on array base addresses, so base is not in this key.
type unrollKey struct {
	kid string
	cfg arch.Config
}

type unrollEntry struct {
	once   sync.Once
	factor int
	// done mirrors compileEntry.done for the cache exporter.
	done atomic.Bool
}

// The memoization is process-global: every distinct (kernel, config,
// options) compilation is retained and shared across runs, which is exactly
// right for one-shot CLI sweeps (each cell is revisited across baselines and
// figure variants). By default the caches are unbounded; a long-lived
// exploration server sweeping many disjoint grids bounds them with
// SetCacheLimits (LRU eviction with entry/byte caps — see lru.go). The
// unroll cache stays an unbounded sync.Map: entries are a dozen bytes each
// and shared by every architecture of a kernel, so evicting them buys
// nothing.
var (
	scheduleCache = newLRUCache[compileKey, *compileEntry](
		func(e *compileEntry) bool { return e.done.Load() })
	unrollCache sync.Map // unrollKey -> *unrollEntry
)

// scheduleCost estimates the resident bytes of one memoized compilation for
// the byte cap: a structural estimate over the schedule's slices (placements,
// comms, prefetches, coherence sets), not a malloc audit — the cap bounds
// growth, it does not meter the heap.
func scheduleCost(ck compiledKernel) int64 {
	if ck.sch == nil {
		return 64
	}
	s := ck.sch
	return 128 +
		int64(len(s.Placed))*48 +
		int64(len(s.Comms))*24 +
		int64(len(s.Prefetches))*32 +
		int64(len(s.SetScheme))*16 +
		int64(len(s.SetHome))*8
}

// ResetCaches drops the global schedule, unroll and simulation-result
// memoization, restores unlimited cache caps, and zeroes the process-global
// cache counters (tests, and the serving layer's cache-management path).
func ResetCaches() {
	scheduleCache.reset()
	resultCache.reset()
	unrollCache = sync.Map{}
	globalCacheCounters.reset()
}

// chooseFactor memoizes sched.ChooseUnrollFactor per (kernel content,
// baseline config). The decision never depends on array base addresses, so
// any fresh build of the kernel's loop yields the same answer.
func chooseFactor(b *workload.Benchmark, i int, l *ir.Loop, unrollCfg arch.Config, useCache bool) int {
	if !useCache {
		return sched.ChooseUnrollFactor(l, unrollCfg)
	}
	key := unrollKey{kid: workload.KernelIDOf(b, i), cfg: unrollCfg}
	v, _ := unrollCache.LoadOrStore(key, &unrollEntry{})
	e := v.(*unrollEntry)
	e.once.Do(func() {
		e.factor = sched.ChooseUnrollFactor(l, unrollCfg)
		e.done.Store(true)
	})
	return e.factor
}

// compileKernel builds, unrolls and schedules kernel i of the benchmark for
// one architecture, starting array address assignment at base. Cacheable
// compilations (no per-run callbacks) are memoized globally; hits return the
// shared immutable schedule.
func compileKernel(b *workload.Benchmark, i int, a Arch, opts Options, schedOpts sched.Options, base int64) (compiledKernel, error) {
	switch {
	case !cacheable(schedOpts):
		// Per-run callbacks make the compilation unrepresentable in the
		// key: the run silently bypasses the cache. Counted so bypass
		// regressions (a new callback-carrying path eating the cache's
		// benefit) are observable in /v1/cachestats instead of silent.
		opts.count(func(c *CacheCounters) { c.Bypassed.Add(1) })
	case opts.DisableScheduleCache:
		opts.count(func(c *CacheCounters) { c.Disabled.Add(1) })
	default:
		entries := archEntries(a, opts.Cfg)
		key := compileKey{
			kid: workload.KernelIDOf(b, i), base: base,
			// Normalising L0Entries into the entries field lets a
			// baseline compile at any nominal buffer size share one
			// entry: nothing downstream reads cfg.L0Entries except
			// through archEntries.
			entries: entries, cfg: opts.Cfg.WithL0Entries(entries),
			opts:     optsKeyOf(schedOpts),
			fallback: opts.ConservativeFallback && a == ArchL0,
		}
		e, _, ok := scheduleCache.getOrCreate(key, func() *compileEntry { return &compileEntry{} })
		if !ok {
			// Cap of zero: the cache is configured off. Same observable
			// behaviour as DisableScheduleCache, same counter.
			opts.count(func(c *CacheCounters) { c.Disabled.Add(1) })
			break
		}
		fresh := false
		e.once.Do(func() {
			fresh = true
			e.res, e.err = compileKernelUncached(b, i, a, opts, schedOpts, base, true)
			e.done.Store(true)
		})
		if fresh {
			opts.count(func(c *CacheCounters) { c.Misses.Add(1) })
			if e.err == nil {
				scheduleCache.charge(key, scheduleCost(e.res))
			}
		} else {
			opts.count(func(c *CacheCounters) { c.Hits.Add(1) })
		}
		if e.err != nil {
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				// The error reflects the first caller's context, not the
				// key: a cancelled exact-backend search would otherwise
				// poison the single-flight entry, and every later request
				// for this compilation — fresh context and all — would
				// inherit the stale cancellation instead of compiling.
				scheduleCache.remove(key)
			}
			return compiledKernel{}, e.err
		}
		return e.res, nil
	}
	return compileKernelUncached(b, i, a, opts, schedOpts, base, false)
}

func compileKernelUncached(b *workload.Benchmark, i int, a Arch, opts Options, schedOpts sched.Options, base int64, useFactorCache bool) (compiledKernel, error) {
	opts.count(func(c *CacheCounters) { c.Compiles.Add(1) })
	k := &b.Kernels[i]
	cfg := opts.Cfg
	l := k.Loop()
	after := workload.AssignAddresses(l, base)

	// The unroll decision is made once, on the unified-L1 baseline, and
	// reused for every architecture (§5.1: the same unrolling heuristic
	// everywhere so comparisons isolate the memory hierarchy).
	factor := chooseFactor(b, i, l, cfg.WithL0Entries(0), useFactorCache)
	body := l
	if factor > 1 {
		var err error
		body, err = unroll.ByFactor(l, factor)
		if err != nil {
			return compiledKernel{}, fmt.Errorf("harness: %s/%s: %w", b.Name, k.Name, err)
		}
	}
	sch, err := sched.Compile(body, cfg.WithL0Entries(archEntries(a, cfg)), schedOpts)
	if err != nil {
		return compiledKernel{}, fmt.Errorf("harness: %s/%s: %w", b.Name, k.Name, err)
	}
	if c := sch.Cert; c != nil && c.Backend == sched.BackendExact {
		// Certificate-producing searches are counted where they actually
		// run: a repeat query served from the schedule cache (or a v3
		// snapshot) performs zero searches and explores zero nodes.
		opts.count(func(cc *CacheCounters) {
			cc.ExactSearches.Add(1)
			cc.ExactNodes.Add(c.Nodes)
		})
	}
	if opts.ConservativeFallback && a == ArchL0 {
		cons, err := conservativeIfFaster(body, cfg, schedOpts, sch)
		if err != nil {
			return compiledKernel{}, fmt.Errorf("harness: %s/%s: %w", b.Name, k.Name, err)
		}
		sch = cons
	}
	return compiledKernel{sch: sch, factor: factor, baseDelta: after - base}, nil
}
