package harness

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WirePoint is one cell of the wire-delay sweep: mean execution time of the
// L0 architecture normalised to the same machine without buffers, at a given
// unified-L1 latency — with the paper's fixed distance-1 prefetching and
// with the adaptive per-load distance extension.
type WirePoint struct {
	L1Latency     int
	AMean         float64
	AMeanAdaptive float64
}

// WireSweep tests the paper's motivating claim — "as technology evolves, the
// latency of such a centralized cache will increase leading to an important
// performance impact" — by sweeping the unified L1's load-use latency and
// measuring how much the L0 buffers recover at each point. The benefit
// should grow monotonically with the wire delay.
func WireSweep(latencies []int, entries int) ([]WirePoint, error) {
	return WireSweepCfg(DefaultRunConfig(), latencies, entries)
}

// WireSweepCfg is WireSweep under an explicit engine configuration: one job
// per latency × benchmark × {base, l0, l0-adaptive}.
func WireSweepCfg(rc RunConfig, latencies []int, entries int) ([]WirePoint, error) {
	suite := workload.Suite()
	const variants = 3
	stride := len(suite) * variants
	results, err := forEachJob(rc, len(latencies)*stride, func(i int) (*BenchResult, error) {
		cfg := arch.MICRO36Config().WithL0Entries(entries)
		cfg.L1Latency = latencies[i/stride]
		b := suite[(i%stride)/variants]
		opts := rc.options(cfg)
		switch i % variants {
		case 0:
			return RunBenchmark(b, ArchBase, opts)
		case 1:
			return RunBenchmark(b, ArchL0, opts)
		default:
			opts.Sched = sched.Options{AdaptivePrefetchDistance: true}
			return RunBenchmark(b, ArchL0, opts)
		}
	})
	if err != nil {
		return nil, err
	}
	var out []WirePoint
	for li, lat := range latencies {
		var sum, sumAd float64
		for bi := range suite {
			base := results[li*stride+bi*variants]
			l0 := results[li*stride+bi*variants+1]
			ad := results[li*stride+bi*variants+2]
			sum += float64(l0.Total) / float64(base.Total)
			sumAd += float64(ad.Total) / float64(base.Total)
		}
		n := float64(len(suite))
		out = append(out, WirePoint{L1Latency: lat, AMean: sum / n, AMeanAdaptive: sumAd / n})
	}
	return out, nil
}

// RenderWireSweep prints the sweep, returning the first write error.
func RenderWireSweep(w io.Writer, points []WirePoint) error {
	t := &stats.Table{Title: "L0 benefit vs unified-L1 latency (the wire-delay motivation)"}
	t.Header = []string{"L1 latency", "fixed d=1", "improvement", "adaptive d", "improvement"}
	for _, p := range points {
		t.Add(fmt.Sprintf("%d cycles", p.L1Latency),
			stats.F2(p.AMean), fmt.Sprintf("%.0f%%", (1-p.AMean)*100),
			stats.F2(p.AMeanAdaptive), fmt.Sprintf("%.0f%%", (1-p.AMeanAdaptive)*100))
	}
	return t.Render(w)
}
