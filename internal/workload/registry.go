// Content-addressed kernel identity and the user-kernel registry.
//
// Every kernel — the 13 suite models and arbitrary user-submitted .loop
// programs alike — is identified by the SHA-256 of its canonical looplang
// form (looplang.Format output). The canonical form is a fixed point of
// Format∘Parse, so the hash is independent of how the loop was written:
// comment placement, register names and declaration spelling all normalize
// away. The harness keys its schedule/result caches and snapshots on these
// IDs, which is what keeps persisted caches sound for unbounded user input
// (a hash can never collide with a renamed or re-indexed kernel the way the
// old (bench name, kernel idx) identity could).
//
// User kernels live in a bounded registry (LRU, entry-capped — the PR-5
// cache convention) and surface as single-kernel pseudo-benchmarks named
// "kernel:<hash>", so every layer that resolves benchmarks by name serves
// them with no special cases.

package workload

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/looplang"
)

// KernelBenchPrefix prefixes the pseudo-benchmark name of a registered
// kernel: ByName(KernelBenchPrefix + id) resolves through the registry.
const KernelBenchPrefix = "kernel:"

// KernelID returns the content identity of a loop: the hex SHA-256 of its
// canonical looplang form. Fails only for loops the surface syntax cannot
// express (unrolled bodies, post-scheduling ops).
func KernelID(l *ir.Loop) (string, error) {
	src, err := looplang.FormatString(l)
	if err != nil {
		return "", err
	}
	return hashSource(src), nil
}

func hashSource(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// IsKernelID reports whether s is syntactically a kernel content hash
// (64 hex digits). Used by spec resolution to tell a hash reference from an
// inline .loop source.
func IsKernelID(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// ---- derived identity for benchmarks (suite and pseudo alike) ----

// suiteIdent memoizes per-kernel and per-benchmark identities for the suite:
// Suite() builds fresh objects on every call, so the memo keys on the stable
// (benchmark name, kernel index) coordinates instead of pointers. Only suite
// names are memoized — ad-hoc benchmarks recompute (they are test-only).
var (
	suiteNamesOnce sync.Once
	suiteNameSet   map[string]bool
	suiteNameList  []string

	kernelIDMemo sync.Map // kernelMemoKey -> string
	benchIDMemo  sync.Map // bench name -> string
)

type kernelMemoKey struct {
	bench string
	idx   int
}

func suiteNames() map[string]bool {
	suiteNamesOnce.Do(func() {
		suiteNameSet = map[string]bool{}
		for _, b := range Suite() {
			suiteNameSet[b.Name] = true
			suiteNameList = append(suiteNameList, b.Name)
		}
	})
	return suiteNameSet
}

// SuiteNames returns the benchmark names of the suite in Table-1 order
// (error messages list them so an unknown-name typo is self-correcting).
func SuiteNames() []string {
	suiteNames()
	return append([]string(nil), suiteNameList...)
}

// KernelIDOf returns the content identity of kernel i of the benchmark.
// Registry pseudo-benchmarks carry their hash in the name; suite kernels are
// hashed once and memoized. A kernel whose loop cannot be expressed in
// looplang (none of the suite's can't) falls back to a hash of its
// positional identity, so callers never fail — such a kernel simply loses
// content addressing, not caching.
func KernelIDOf(b *Benchmark, i int) string {
	if id, ok := strings.CutPrefix(b.Name, KernelBenchPrefix); ok {
		return strings.ToLower(id)
	}
	memoize := suiteNames()[b.Name]
	key := kernelMemoKey{bench: b.Name, idx: i}
	if memoize {
		if v, ok := kernelIDMemo.Load(key); ok {
			return v.(string)
		}
	}
	id, err := KernelID(b.Kernels[i].Loop())
	if err != nil {
		id = hashSource(fmt.Sprintf("name:%s/%d/%s", b.Name, i, b.Kernels[i].Name))
	}
	if memoize {
		kernelIDMemo.Store(key, id)
	}
	return id
}

// BenchmarkIDOf returns the content identity of a whole benchmark: a hash
// over its kernels' content IDs and invocation counts (invocations weight
// the simulation, so two benchmarks with identical loops but different
// weights must not share simulation results).
func BenchmarkIDOf(b *Benchmark) string {
	memoize := suiteNames()[b.Name] || strings.HasPrefix(b.Name, KernelBenchPrefix)
	if memoize {
		if v, ok := benchIDMemo.Load(b.Name); ok {
			return v.(string)
		}
	}
	var sb strings.Builder
	for i := range b.Kernels {
		fmt.Fprintf(&sb, "%s %d\n", KernelIDOf(b, i), b.Kernels[i].Invocations)
	}
	id := hashSource(sb.String())
	if memoize {
		benchIDMemo.Store(b.Name, id)
	}
	return id
}

// ---- the user-kernel registry ----

// RegisteredKernel is one user-submitted kernel: its content hash, the loop
// name from the source, and the canonical looplang source the hash covers.
type RegisteredKernel struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Source string `json:"source"`
}

// kernelRegistry is a mutex-guarded LRU of registered kernels, entry-capped
// with the shared cap convention (>0 cap, 0 disabled, <0 unlimited).
type kernelRegistry struct {
	mu    sync.Mutex
	limit int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

var registry = &kernelRegistry{limit: -1, ll: list.New(), items: map[string]*list.Element{}}

// RegisterKernelSource parses a .loop program, canonicalizes it and stores
// it in the registry under its content hash. Registration is idempotent:
// the same loop in any spelling yields the same ID. Returns the registered
// kernel (ID, name, canonical source).
func RegisterKernelSource(src string) (RegisteredKernel, error) {
	l, err := looplang.ParseString(src)
	if err != nil {
		return RegisteredKernel{}, err
	}
	if err := l.Validate(); err != nil {
		return RegisteredKernel{}, fmt.Errorf("looplang: %w", err)
	}
	canonical, err := looplang.FormatString(l)
	if err != nil {
		return RegisteredKernel{}, err
	}
	k := RegisteredKernel{ID: hashSource(canonical), Name: l.Name, Source: canonical}

	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.limit == 0 {
		return RegisteredKernel{}, fmt.Errorf("workload: kernel registry is disabled (cap 0)")
	}
	if el, ok := registry.items[k.ID]; ok {
		registry.ll.MoveToFront(el)
		return el.Value.(RegisteredKernel), nil
	}
	registry.items[k.ID] = registry.ll.PushFront(k)
	registry.evictOverflow()
	return k, nil
}

// KernelByID returns the registered kernel for a content hash (case-
// insensitive) and marks it recently used.
func KernelByID(id string) (RegisteredKernel, bool) {
	id = strings.ToLower(id)
	registry.mu.Lock()
	defer registry.mu.Unlock()
	el, ok := registry.items[id]
	if !ok {
		return RegisteredKernel{}, false
	}
	registry.ll.MoveToFront(el)
	return el.Value.(RegisteredKernel), true
}

// RegisteredKernels returns every resident kernel sorted by ID — the
// deterministic order the cache snapshot persists them in.
func RegisteredKernels() []RegisteredKernel {
	registry.mu.Lock()
	out := make([]RegisteredKernel, 0, len(registry.items))
	for el := registry.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(RegisteredKernel))
	}
	registry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// KernelRegistryLen reports the resident kernel count.
func KernelRegistryLen() int {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return len(registry.items)
}

// SetKernelRegistryLimit caps the registry (>0 cap, 0 disabled, <0
// unlimited) and evicts least-recently-used kernels down to the cap.
// Evicting a kernel never invalidates cache entries keyed by its hash; it
// only makes the hash unresolvable until the source is registered again.
func SetKernelRegistryLimit(n int) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.limit = n
	registry.evictOverflow()
}

// ResetKernelRegistry drops every registered kernel and restores the
// unlimited cap (test isolation).
func ResetKernelRegistry() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.limit = -1
	registry.ll.Init()
	registry.items = map[string]*list.Element{}
}

// evictOverflow drops LRU kernels until the cap holds. Caller holds mu.
func (r *kernelRegistry) evictOverflow() {
	for r.limit >= 0 && len(r.items) > r.limit {
		el := r.ll.Back()
		if el == nil {
			return
		}
		r.ll.Remove(el)
		delete(r.items, el.Value.(RegisteredKernel).ID)
	}
}

// KernelBench wraps a registered kernel as a single-kernel pseudo-benchmark
// named "kernel:<hash>". Build re-parses the canonical source on every call
// so runs never share array objects — the same freshness contract the suite
// builders give.
func KernelBench(id string) (*Benchmark, bool) {
	k, ok := KernelByID(id)
	if !ok {
		return nil, false
	}
	src := k.Source
	return &Benchmark{
		Name: KernelBenchPrefix + k.ID,
		Kernels: []Kernel{{
			Name:        k.Name,
			Invocations: 1,
			Specialized: specializedSource(src),
			Build: func() *ir.Loop {
				l, err := looplang.ParseString(src)
				if err != nil {
					// The source is the canonical form of a loop that
					// parsed at registration; a failure here is memory
					// corruption, not input error.
					panic(fmt.Sprintf("workload: registered kernel %s no longer parses: %v", k.ID, err))
				}
				return l
			},
		}},
	}, true
}

// specializedSource reports whether the canonical source carries the
// `specialized` directive, so Kernel.Loop()'s Specialized stamp matches what
// Build parses (they would otherwise disagree and flip the §4.1 analysis).
func specializedSource(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == "specialized" {
			return true
		}
	}
	return false
}

// LoopByKernelID rebuilds a fresh loop for a content hash: suite kernels are
// found through a lazily built index over every suite benchmark, user
// kernels through the registry. The snapshot importer resolves v3 schedule
// records with this.
func LoopByKernelID(id string) (*ir.Loop, bool) {
	id = strings.ToLower(id)
	if bench, idx, ok := suiteKernelByID(id); ok {
		return ByName(bench).Kernels[idx].Loop(), true
	}
	if b, ok := KernelBench(id); ok {
		return b.Kernels[0].Loop(), true
	}
	return nil, false
}

// suiteKernelByID maps content hash -> (benchmark name, kernel index) over
// the whole suite, built once (the suite is static).
var (
	suiteIndexOnce sync.Once
	suiteIndex     map[string]kernelMemoKey
)

func suiteKernelByID(id string) (bench string, idx int, ok bool) {
	suiteIndexOnce.Do(func() {
		suiteIndex = map[string]kernelMemoKey{}
		for _, b := range Suite() {
			for i := range b.Kernels {
				kid := KernelIDOf(b, i)
				if _, dup := suiteIndex[kid]; !dup {
					suiteIndex[kid] = kernelMemoKey{bench: b.Name, idx: i}
				}
			}
		}
	})
	k, ok := suiteIndex[id]
	return k.bench, k.idx, ok
}
