package workload

import (
	"repro/internal/ir"
)

// Table1Row is one row of the paper's Table 1: the dynamic fraction of
// strided memory accesses (S), of "good" strides — 0 or ±1 elements in the
// original, non-unrolled loop (SG) — and of other strides (SO). All values
// are fractions of the dynamic memory-instruction stream, measured from the
// benchmark's generated loops.
type Table1Row struct {
	Name      string
	S, SG, SO float64
	DynMemOps int64
	DynInstrs int64
}

// StrideClass classifies one memory instruction of an original loop.
type StrideClass uint8

const (
	// StrideUnknown marks accesses whose stride the compiler cannot
	// prove (data-dependent addressing).
	StrideUnknown StrideClass = iota
	// StrideGood is 0 or ±1 elements per iteration.
	StrideGood
	// StrideOther is any other compile-time-known stride.
	StrideOther
)

// Classify returns the stride class of a memory instruction (pre-unroll).
func Classify(in *ir.Instr) StrideClass {
	if in.Mem == nil || !in.Mem.StrideKnown || in.Mem.Scramble != 0 {
		return StrideUnknown
	}
	st, w := in.Mem.Stride, int64(in.Mem.Width)
	if st == 0 || st == w || st == -w {
		return StrideGood
	}
	return StrideOther
}

// Characterize measures the benchmark's Table 1 row from its kernels.
func Characterize(b *Benchmark) Table1Row {
	row := Table1Row{Name: b.Name}
	var good, other, unknown int64
	for i := range b.Kernels {
		k := &b.Kernels[i]
		l := k.Loop()
		weight := l.TripCount * k.Invocations
		for _, in := range l.Instrs {
			row.DynInstrs += weight
			if !in.Op.IsMemRef() {
				continue
			}
			switch Classify(in) {
			case StrideGood:
				good += weight
			case StrideOther:
				other += weight
			default:
				unknown += weight
			}
		}
	}
	row.DynMemOps = good + other + unknown
	if row.DynMemOps > 0 {
		row.SG = float64(good) / float64(row.DynMemOps)
		row.SO = float64(other) / float64(row.DynMemOps)
		row.S = row.SG + row.SO
	}
	return row
}

// KernelWeight returns the dynamic-instruction weight of a kernel, used to
// average per-loop quantities (e.g. the unroll factor of Figure 6) the way
// the paper weights them.
func KernelWeight(k *Kernel) int64 {
	l := k.Loop()
	return int64(len(l.Instrs)) * l.TripCount * k.Invocations
}
