package workload

import (
	"testing"

	"repro/internal/ir"
)

func TestSuiteHasThirteenBenchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 13 {
		t.Fatalf("suite = %d benchmarks, want 13", len(s))
	}
	want := []string{"epicdec", "g721dec", "g721enc", "gsmdec", "gsmenc",
		"jpegdec", "jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc",
		"pgpdec", "pgpenc", "rasta"}
	for i, b := range s {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q (Table 1 order)", i, b.Name, want[i])
		}
	}
}

func TestAllKernelsBuildValidLoops(t *testing.T) {
	for _, b := range Suite() {
		for i := range b.Kernels {
			k := &b.Kernels[i]
			l := k.Loop()
			if err := l.Validate(); err != nil {
				t.Errorf("%s/%s: %v", b.Name, k.Name, err)
			}
			if k.Invocations <= 0 {
				t.Errorf("%s/%s: non-positive invocations", b.Name, k.Name)
			}
		}
	}
}

func TestKernelBuildsAreIndependent(t *testing.T) {
	b := Suite()[0]
	l1 := b.Kernels[0].Loop()
	l2 := b.Kernels[0].Loop()
	if l1.Instrs[0].Mem.Array == l2.Instrs[0].Mem.Array {
		t.Errorf("two builds share array objects (state would leak across runs)")
	}
}

func TestAssignAddressesDistinctAndAligned(t *testing.T) {
	b := Suite()[5] // jpegdec
	base := int64(1 << 16)
	type rng struct{ lo, hi int64 }
	var ranges []rng
	for i := range b.Kernels {
		l := b.Kernels[i].Loop()
		base = AssignAddresses(l, base)
		seen := map[*ir.Array]bool{}
		for _, in := range l.Instrs {
			if in.Mem == nil || seen[in.Mem.Array] {
				continue
			}
			seen[in.Mem.Array] = true
			a := in.Mem.Array
			if a.Base == 0 {
				t.Fatalf("array %q unassigned", a.Name)
			}
			ranges = append(ranges, rng{a.Base, a.Base + a.SizeBytes})
		}
	}
	for i := range ranges {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[i].lo < ranges[j].hi && ranges[j].lo < ranges[i].hi {
				t.Fatalf("arrays %d and %d overlap: %+v %+v", i, j, ranges[i], ranges[j])
			}
		}
	}
}

func TestClassify(t *testing.T) {
	b := ir.NewBuilder("c", 64)
	a := b.Array("a", 65536, 4)
	v := b.Load("unit", a, 0, 4, 4)
	w := b.Load("zero", a, 128, 0, 4)
	x := b.Load("rev", a, 4096, -4, 4)
	y := b.Load("col", a, 0, 512, 4)
	z := b.LoadIndexed("scr", a, 4, 3, ir.NoReg)
	b.Int("use", v, w, x, y, z)
	l := b.Build()
	want := []StrideClass{StrideGood, StrideGood, StrideGood, StrideOther, StrideUnknown}
	for i, cls := range want {
		if got := Classify(l.Instrs[i]); got != cls {
			t.Errorf("Classify(%s) = %v, want %v", l.Instrs[i].Name, got, cls)
		}
	}
}

func TestCharacterizeMatchesTable1Shape(t *testing.T) {
	// The paper's Table 1, as tolerance bands (fractions).
	targets := map[string]struct{ s, sg float64 }{
		"epicdec":   {0.99, 0.66},
		"g721dec":   {1.00, 1.00},
		"g721enc":   {1.00, 1.00},
		"gsmdec":    {0.97, 0.97},
		"gsmenc":    {0.99, 0.99},
		"jpegdec":   {0.60, 0.39},
		"jpegenc":   {0.49, 0.40},
		"mpeg2dec":  {0.96, 0.42},
		"pegwitdec": {0.50, 0.48},
		"pegwitenc": {0.56, 0.54},
		"pgpdec":    {0.99, 0.98},
		"pgpenc":    {0.86, 0.86},
		"rasta":     {0.95, 0.87},
	}
	const tol = 0.17
	for _, b := range Suite() {
		row := Characterize(b)
		tg := targets[b.Name]
		if d := row.S - tg.s; d > tol || d < -tol {
			t.Errorf("%s: S = %.2f, paper %.2f (tolerance %.2f)", b.Name, row.S, tg.s, tol)
		}
		if d := row.SG - tg.sg; d > tol || d < -tol {
			t.Errorf("%s: SG = %.2f, paper %.2f (tolerance %.2f)", b.Name, row.SG, tg.sg, tol)
		}
		if row.S < row.SG || row.S > 1.0001 {
			t.Errorf("%s: inconsistent row S=%.2f SG=%.2f", b.Name, row.S, row.SG)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("rasta") == nil {
		t.Errorf("ByName(rasta) = nil")
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) != nil")
	}
}

func TestKernelWeightPositive(t *testing.T) {
	for _, b := range Suite() {
		for i := range b.Kernels {
			if w := KernelWeight(&b.Kernels[i]); w <= 0 {
				t.Errorf("%s/%s weight %d", b.Name, b.Kernels[i].Name, w)
			}
		}
	}
}

func TestSpecializationFlags(t *testing.T) {
	// §4.1 names epicdec, pgpdec, pgpenc and rasta as specialized.
	specialized := map[string]bool{"epicdec": true, "pgpdec": true, "pgpenc": true, "rasta": true}
	for _, b := range Suite() {
		for i := range b.Kernels {
			k := &b.Kernels[i]
			if specialized[b.Name] && !k.Specialized {
				t.Errorf("%s/%s must be code-specialized per §4.1", b.Name, k.Name)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	if seed("a", 1) == seed("b", 1) || seed("a", 1) == seed("a", 2) {
		t.Errorf("scramble seeds collide")
	}
}

func TestArchetypeStructure(t *testing.T) {
	// Each archetype must deliver the structural property the suite
	// relies on.
	t.Run("inPlace is a 1C-able set without a carried cycle", func(t *testing.T) {
		l := inPlace("t.ip", 64, 4, 3)
		if len(l.MemRefs()) != 3 {
			t.Fatalf("mem refs = %d", len(l.MemRefs()))
		}
	})
	t.Run("iir carries through memory", func(t *testing.T) {
		l := iir("t.iir", 64, 4, 2)
		ld := l.Instrs[0]
		if ld.Mem.Offset != -4 {
			t.Errorf("iir load offset = %d, want -elem", ld.Mem.Offset)
		}
	})
	t.Run("carryChain recurrence spans the multiplies", func(t *testing.T) {
		l := carryChain("t.cc", 64, 2)
		var hasCarried bool
		for _, in := range l.Instrs {
			if len(in.Carried) > 0 {
				hasCarried = true
			}
		}
		if !hasCarried {
			t.Errorf("carryChain has no loop-carried use")
		}
	})
	t.Run("columnWalk anchor pins the II", func(t *testing.T) {
		l := columnWalk("t.cw", 64, 2, 64, 2, 5, false)
		var cyc int
		for _, in := range l.Instrs {
			for _, c := range in.Carried {
				cyc += c.Distance
			}
		}
		if cyc == 0 {
			t.Errorf("anchored column walk has no recurrence")
		}
	})
	t.Run("scatterPure is fully unknown-stride", func(t *testing.T) {
		l := scatterPure("t.sp", 64, 2, 2048, 1)
		for _, in := range l.MemRefs() {
			if Classify(in) != StrideUnknown {
				t.Errorf("%s classified %v", in.Name, Classify(in))
			}
		}
	})
	t.Run("manyStreams uses distinct arrays", func(t *testing.T) {
		l := manyStreams("t.ms", 64, 2, 3, 1)
		arrays := map[*ir.Array]bool{}
		for _, in := range l.MemRefs() {
			if in.Op == ir.OpLoad {
				arrays[in.Mem.Array] = true
			}
		}
		if len(arrays) != 3 {
			t.Errorf("load arrays = %d, want 3", len(arrays))
		}
	})
	t.Run("reverseStream has a negative good stride", func(t *testing.T) {
		l := reverseStream("t.rev", 64, 2, 1)
		if l.Instrs[0].Mem.Stride != -2 {
			t.Errorf("stride = %d", l.Instrs[0].Mem.Stride)
		}
		if Classify(l.Instrs[0]) != StrideGood {
			t.Errorf("reverse unit stride must be good")
		}
	})
	t.Run("wideCopy stride equals width", func(t *testing.T) {
		l := wideCopy("t.wc", 64, 1)
		m := l.Instrs[0].Mem
		if m.Stride != int64(m.Width) {
			t.Errorf("stride %d != width %d", m.Stride, m.Width)
		}
	})
	t.Run("blockRows is periodic", func(t *testing.T) {
		l := blockRows("t.br", 64, 2, 8, 1)
		if l.Instrs[0].Mem.IndexPeriod != 64 {
			t.Errorf("period = %d, want 64", l.Instrs[0].Mem.IndexPeriod)
		}
	})
	t.Run("memState keeps a scalar cell", func(t *testing.T) {
		l := memState("t.msr", 64, 4, 2)
		if l.Instrs[0].Mem.Stride != 0 {
			t.Errorf("state load stride = %d, want 0", l.Instrs[0].Mem.Stride)
		}
	})
	t.Run("dotAccum and fir and histogram and others build", func(t *testing.T) {
		for _, l := range []*ir.Loop{
			dotAccum("t.da", 64, 2), fir("t.fir", 64, 2, 3),
			histogram("t.h", 64, 2, 1024), tableMap("t.tm", 64, 2, 1024, 2),
			scatterGather("t.sg", 64, 8192, 2), stream("t.s", 64, 2, 3),
			stream2("t.s2", 64, 2, 3), columnWalk2("t.c2", 64, 8, 64, 2, 4),
		} {
			if err := l.Validate(); err != nil {
				t.Errorf("%s: %v", l.Name, err)
			}
		}
	})
}
