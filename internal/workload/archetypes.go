// Package workload provides the synthetic Mediabench models the experiments
// run. Real Mediabench binaries (and the IMPACT compiler that fed the
// paper's simulator) are not reproducible here, so each of the 13 benchmarks
// is modelled as a weighted set of inner-loop kernels built from the
// archetypes media code is made of: element streams, FIR windows, table
// lookups, column walks, memory- and register-carried recurrences,
// histograms and block copies.
//
// The archetype parameters per benchmark are tuned to reproduce the paper's
// workload characterisation (Table 1: fraction of strided accesses and of
// "good" 0/±1-element strides), the average unroll factors of Figure 6, and
// the per-benchmark phenomena §5.2 discusses (jpegdec's LRU thrash, the
// pegwit benchmarks' low L1 hit rate, the small-II prefetch lateness of
// epicdec and rasta). The characterisation numbers are *measured* from the
// generated loops by Table1Row, not transcribed.
package workload

import (
	"fmt"

	"repro/internal/ir"
)

// seqID generates distinct scramble seeds per kernel so scatter streams
// differ between kernels but stay deterministic.
func seed(kernel string, i int) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(kernel) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h*2654435761 + uint64(i)*0x9e3779b97f4a7c15 + 1
}

// stream builds a unit-stride map loop: dst[i] = f(src[i]) with `chain`
// dependent integer ops. elem is the element width in bytes.
func stream(name string, trip int64, elem int, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*int64(elem)+64, elem)
	dst := b.Array(name+".dst", trip*int64(elem)+64, elem)
	v := b.Load("ld", src, 0, int64(elem), elem)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, int64(elem), elem, v)
	return b.Build()
}

// stream2 builds dst[i] = f(a[i], b[i]).
func stream2(name string, trip int64, elem int, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	a := b.Array(name+".a", trip*int64(elem)+64, elem)
	c := b.Array(name+".b", trip*int64(elem)+64, elem)
	dst := b.Array(name+".dst", trip*int64(elem)+64, elem)
	va := b.Load("ld_a", a, 0, int64(elem), elem)
	vb := b.Load("ld_b", c, 0, int64(elem), elem)
	v := b.Int("mix", va, vb)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, int64(elem), elem, v)
	return b.Build()
}

// fir builds a sliding-window filter: y[i] = Σ_j h[j]·x[i+j]. The taps are
// register-resident (loaded once outside the loop in real code), the window
// loads are unit-stride with different offsets.
func fir(name string, trip int64, elem, taps int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	x := b.Array(name+".x", (trip+int64(taps))*int64(elem)+64, elem)
	y := b.Array(name+".y", trip*int64(elem)+64, elem)
	var acc ir.Reg
	for j := 0; j < taps; j++ {
		v := b.Load(fmt.Sprintf("ld%d", j), x, int64(j*elem), int64(elem), elem)
		m := b.IntMul(fmt.Sprintf("mul%d", j), v)
		if j == 0 {
			acc = m
		} else {
			acc = b.Int(fmt.Sprintf("acc%d", j), acc, m)
		}
	}
	b.Store("st", y, 0, int64(elem), elem, acc)
	return b.Build()
}

// dotAccum builds a reduction: acc += a[i]·b[i] with a register-carried
// accumulator (distance 1).
func dotAccum(name string, trip int64, elem int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	x := b.Array(name+".x", trip*int64(elem)+64, elem)
	y := b.Array(name+".y", trip*int64(elem)+64, elem)
	va := b.Load("ld_x", x, 0, int64(elem), elem)
	vb := b.Load("ld_y", y, 0, int64(elem), elem)
	m := b.IntMul("mul", va, vb)
	b.SelfRecurrence("acc", 1, m)
	return b.Build()
}

// memState builds a loop that carries state through a memory cell: the
// ADPCM-predictor pattern (load state, combine with the input stream, store
// state back). The load/store pair forms a memory-dependent set whose
// recurrence the L0 latency shrinks.
func memState(name string, trip int64, elem int, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	state := b.Array(name+".state", 64, elem)
	in := b.Array(name+".in", trip*int64(elem)+64, elem)
	out := b.Array(name+".out", trip*int64(elem)+64, elem)
	s := b.Load("ld_state", state, 0, 0, elem)
	x := b.Load("ld_in", in, 0, int64(elem), elem)
	v := b.Int("upd", s, x)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st_state", state, 0, 0, elem, v)
	b.Store("st_out", out, 0, int64(elem), elem, v)
	return b.Build()
}

// inPlace builds an in-place update: t[i] = f(t[i], x[i]). The load and
// store of t[i] form a memory-dependent set with only intra-iteration
// dependences, so the loop still unrolls; under the 1C scheme the t-loads
// run at the L0 latency with their stores colocated.
func inPlace(name string, trip int64, elem, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	t := b.Array(name+".t", trip*int64(elem)+64, elem)
	x := b.Array(name+".x", trip*int64(elem)+64, elem)
	vt := b.Load("ld_t", t, 0, int64(elem), elem)
	vx := b.Load("ld_x", x, 0, int64(elem), elem)
	v := b.Int("upd", vt, vx)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st_t", t, 0, int64(elem), elem, v)
	return b.Build()
}

// iir builds a first-order recursive filter: y[i] = f(y[i-1], x[i]). The
// load→ops→store→load cycle through memory makes RecMII scale with the load
// latency — the pattern where the L0 buffers buy their largest win.
func iir(name string, trip int64, elem, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	y := b.Array(name+".y", trip*int64(elem)+64, elem)
	x := b.Array(name+".x", trip*int64(elem)+64, elem)
	prev := b.Load("ld_y1", y, -int64(elem), int64(elem), elem)
	vx := b.Load("ld_x", x, 0, int64(elem), elem)
	v := b.Int("mix", prev, vx)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st_y", y, 0, int64(elem), elem, v)
	return b.Build()
}

// columnWalk builds a column traversal of a 2-D array: stride = rowBytes per
// iteration ("other" stride class; needs explicit software prefetch).
// With anchor > 0, an anchor-deep accumulator recurrence keeps the loop from
// unrolling and sets its recurrence-bound II; with colStore the output is
// written column-wise too.
func columnWalk(name string, trip int64, elem, rowBytes, chain, anchor int, colStore bool) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	img := b.Array(name+".img", trip*int64(rowBytes)+64, elem)
	out := b.Array(name+".out", trip*int64(elem)+64, elem)
	if colStore {
		out = b.Array(name+".out", trip*int64(rowBytes)+64, elem)
	}
	v := b.Load("ld_col", img, 0, int64(rowBytes), elem)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	if anchor > 0 {
		v = rolledAnchor(b, v, anchor)
	}
	st := int64(elem)
	if colStore {
		st = int64(rowBytes)
	}
	b.Store("st", out, 0, st, elem, v)
	return b.Build()
}

// columnWalk2 builds motion-compensation row fetches: two picture-pitch
// strided loads (forward and backward reference) averaged into a unit-stride
// block store. Two thirds of its accesses are "other" strides.
func columnWalk2(name string, trip int64, elem, rowBytes, chain, anchor int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	fwd := b.Array(name+".fwd", trip*int64(rowBytes)+64, elem)
	bwd := b.Array(name+".bwd", trip*int64(rowBytes)+64, elem)
	out := b.Array(name+".out", trip*int64(elem)+64, elem)
	vf := b.Load("ld_fwd", fwd, 0, int64(rowBytes), elem)
	vb := b.Load("ld_bwd", bwd, 16, int64(rowBytes), elem)
	v := b.Int("avg", vf, vb)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	if anchor > 0 {
		v = rolledAnchor(b, v, anchor)
	}
	b.Store("st", out, 0, int64(elem), elem, v)
	return b.Build()
}

// scatterPure builds a fully data-dependent loop: scattered load and
// scattered store over a table (dithering / colourmap rewrites). Every
// access has an unknown stride.
func scatterPure(name string, trip int64, elem int, tableBytes int64, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	tab := b.Array(name+".tab", tableBytes, elem)
	v := b.LoadIndexed("ld", tab, elem, seed(name, 5), ir.NoReg)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.StoreIndexed("st", tab, elem, seed(name, 6), v)
	return b.Build()
}

// tableMap builds a data-dependent table translation: dst[i] =
// table[f(src[i])]. The table load has no compiler-visible stride, so it is
// never an L0 candidate, and without code specialization it aliases
// conservatively with the loop's stores.
func tableMap(name string, trip int64, elem int, tableBytes int64, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*int64(elem)+64, elem)
	table := b.Array(name+".tab", tableBytes, elem)
	dst := b.Array(name+".dst", trip*int64(elem)+64, elem)
	idx := b.Load("ld_src", src, 0, int64(elem), elem)
	tv := b.LoadIndexed("ld_tab", table, elem, seed(name, 1), idx)
	v := b.Int("mix", tv)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, int64(elem), elem, v)
	return b.Build()
}

// histogram builds a data-dependent read-modify-write: hist[f(x[i])]++. The
// scattered load and store touch the same array, so they stay a dependent
// set even under code specialization.
func histogram(name string, trip int64, elem int, histBytes int64) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*int64(elem)+64, elem)
	hist := b.Array(name+".hist", histBytes, elem)
	x := b.Load("ld_src", src, 0, int64(elem), elem)
	h := b.LoadIndexed("ld_hist", hist, elem, seed(name, 2), x)
	v := b.Int("inc", h)
	b.StoreIndexed("st_hist", hist, elem, seed(name, 2), v)
	return b.Build()
}

// scatterGather builds a crypto-style loop over a large state: wide strided
// loads mixed with scattered lookups over a working set larger than L1
// (pegwit's low L1 hit rate).
func scatterGather(name string, trip int64, stateBytes int64, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*4+64, 4)
	state := b.Array(name+".state", stateBytes, 4)
	dst := b.Array(name+".dst", trip*4+64, 4)
	x := b.Load("ld_src", src, 0, 4, 4)
	g1 := b.LoadIndexed("gather1", state, 4, seed(name, 3), x)
	g2 := b.LoadIndexed("gather2", state, 4, seed(name, 4), g1)
	v := b.Int("mix", g1, g2)
	for k := 1; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, 4, 4, v)
	return b.Build()
}

// carryChain builds a bignum-style loop: unit-stride word loads feeding a
// double-width multiply whose carry output feeds the next iteration's
// multiply (pgp / pegwit). The multiplies sit inside the recurrence cycle
// (mul_lo → mul_hi → adds → carry → mul_lo), so RecMII ≈ 7 and the loop
// never unrolls.
func carryChain(name string, trip int64, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	a := b.Array(name+".a", trip*4+64, 4)
	c := b.Array(name+".b", trip*4+64, 4)
	dst := b.Array(name+".dst", trip*4+64, 4)
	va := b.Load("ld_a", a, 0, 4, 4)
	vb := b.Load("ld_b", c, 0, 4, 4)
	lo := b.IntMul("mul_lo", va, vb)
	hi := b.IntMul("mul_hi", va, lo)
	sum := b.Int("addc", hi)
	sum2 := b.Int("addc2", sum)
	carry := b.Int("carry", sum2)
	b.CarryInto(lo, carry, 1) // the low multiply consumes last iteration's carry
	v := carry
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("red%d", k), v)
	}
	b.Store("st", dst, 0, 4, 4, v)
	return b.Build()
}

// blockRows walks 2-D blocks row by row with a short row period: offsets
// advance by elem within a row of `rowElems`, then jump. Modelled as a
// periodic access over a small window re-walked every invocation (DCT-style
// 8×8 work).
func blockRows(name string, trip int64, elem, rowElems, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	blk := b.Array(name+".blk", int64(rowElems*elem)*8+64, elem)
	out := b.Array(name+".out", trip*int64(elem)+64, elem)
	v := b.LoadPeriodic("ld_blk", blk, 0, int64(elem), elem, rowElems*8)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", out, 0, int64(elem), elem, v)
	return b.Build()
}

// wideCopy builds an 8-byte-word copy loop (motion compensation block
// moves): stride equals the access width, so the prefetch hints cover it.
func wideCopy(name string, trip int64, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*8+64, 8)
	dst := b.Array(name+".dst", trip*8+64, 8)
	v := b.Load("ld", src, 0, 8, 8)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, 8, 8, v)
	return b.Build()
}

// manyStreams builds a loop reading from `ways` distinct unit-stride arrays
// (chroma upsampling with many planes). Its per-cluster footprint exceeds a
// 4-entry L0 buffer once prefetches are in flight — the jpegdec LRU-thrash
// kernel.
func manyStreams(name string, trip int64, elem, ways, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	dst := b.Array(name+".dst", trip*int64(elem)+64, elem)
	var v ir.Reg
	for w := 0; w < ways; w++ {
		a := b.Array(fmt.Sprintf("%s.p%d", name, w), trip*int64(elem)+64, elem)
		lv := b.Load(fmt.Sprintf("ld%d", w), a, 0, int64(elem), elem)
		if w == 0 {
			v = lv
		} else {
			v = b.Int(fmt.Sprintf("mix%d", w), v, lv)
		}
	}
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, int64(elem), elem, v)
	return b.Build()
}

// reverseStream walks an array backwards (negative good stride; NEGATIVE
// prefetch hint).
func reverseStream(name string, trip int64, elem, chain int) *ir.Loop {
	b := ir.NewBuilder(name, trip)
	src := b.Array(name+".src", trip*int64(elem)+64, elem)
	dst := b.Array(name+".dst", trip*int64(elem)+64, elem)
	v := b.Load("ld", src, (trip-1)*int64(elem), -int64(elem), elem)
	for k := 0; k < chain; k++ {
		v = b.Int(fmt.Sprintf("op%d", k), v)
	}
	b.Store("st", dst, 0, int64(elem), elem, v)
	return b.Build()
}

// rolledAnchor threads v through a `depth`-deep dependence cycle of 1-cycle
// integer ops. It pins the loop's RecMII to `depth`, which both keeps the
// unroller away (outer-loop-carried reductions are common in media code) and
// models the loop's real recurrence-bound II.
func rolledAnchor(b *ir.Builder, v ir.Reg, depth int) ir.Reg {
	if depth < 2 {
		depth = 2
	}
	first := b.Int("anchor0", v)
	prev := first
	for k := 1; k < depth; k++ {
		prev = b.Int(fmt.Sprintf("anchor%d", k), prev)
	}
	b.CarryInto(first, prev, 1)
	return prev
}
