package workload

import (
	"strings"

	"repro/internal/ir"
)

// Kernel is one inner loop of a benchmark model, plus how often the
// surrounding program invokes it. Build returns a fresh loop (with fresh
// array objects) so different architecture runs never share state.
type Kernel struct {
	Name  string
	Build func() *ir.Loop
	// Invocations is how many times the program enters the loop. The
	// harness flushes L0 buffers between invocations only when the §4.1
	// inter-loop analysis requires it; the L1 stays warm throughout.
	Invocations int64
	// Specialized applies code specialization (§4.1) to the loop:
	// conservative unknown-alias dependences are narrowed to real ones.
	Specialized bool
}

// Loop builds the kernel's loop with specialization applied.
func (k *Kernel) Loop() *ir.Loop {
	l := k.Build()
	l.Specialized = k.Specialized
	return l
}

// Benchmark models one Mediabench program as a set of weighted kernels.
type Benchmark struct {
	Name    string
	Kernels []Kernel
}

// AssignAddresses gives every array of the loop a distinct, block-aligned
// base address starting at base and returns the next free address. Bases
// are staggered by a small odd multiple of the block size so that arrays do
// not all collide on the same L1 sets.
func AssignAddresses(l *ir.Loop, base int64) int64 {
	seen := map[*ir.Array]bool{}
	for _, in := range l.Instrs {
		if in.Mem == nil || seen[in.Mem.Array] {
			continue
		}
		seen[in.Mem.Array] = true
		in.Mem.Array.Base = base
		sz := in.Mem.Array.SizeBytes
		base += ((sz + 63) &^ 63) + 96 // 3 blocks of stagger
	}
	return base
}

// Suite returns the 13 Mediabench models of Table 1 in the paper's order.
func Suite() []*Benchmark {
	return []*Benchmark{
		epicdec(), g721dec(), g721enc(), gsmdec(), gsmenc(),
		jpegdec(), jpegenc(), mpeg2dec(),
		pegwitdec(), pegwitenc(), pgpdec(), pgpenc(), rasta(),
	}
}

// ByName returns the named benchmark model, or nil. Names of the form
// "kernel:<hash>" resolve through the user-kernel registry to a
// single-kernel pseudo-benchmark, so everything that sweeps benchmarks by
// name serves registered kernels with no special cases.
func ByName(name string) *Benchmark {
	if id, ok := strings.CutPrefix(name, KernelBenchPrefix); ok {
		b, _ := KernelBench(id)
		return b
	}
	for _, b := range Suite() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// epicdec: wavelet image decomposition — light-compute streams whose small
// II makes the next-subblock prefetch arrive late (§5.2), column walks over
// image tiles written column-wise (the 33% "other" strides of Table 1), and
// a small lookup. Code-specialized per §4.1.
func epicdec() *Benchmark {
	return &Benchmark{Name: "epicdec", Kernels: []Kernel{
		{Name: "wavelet_row", Invocations: 8, Specialized: true,
			Build: func() *ir.Loop { return stream2("epic.row", 1024, 2, 1) }},
		{Name: "wavelet_col", Invocations: 190, Specialized: true,
			Build: func() *ir.Loop { return columnWalk("epic.col", 64, 2, 128, 3, 4, true) }},
		{Name: "lifting_iir", Invocations: 22, Specialized: true,
			Build: func() *ir.Loop { return iir("epic.lift", 512, 2, 1) }},
		{Name: "quant_lookup", Invocations: 2, Specialized: true,
			Build: func() *ir.Loop { return tableMap("epic.lut", 256, 2, 2048, 2) }},
	}}
}

// g721dec: ADPCM — short, integer-heavy, fully strided loops over small
// state arrays invoked per sample block; every loop unrolls by 4 (Figure 6
// reports an average factor of 4).
func g721dec() *Benchmark {
	return &Benchmark{Name: "g721dec", Kernels: []Kernel{
		{Name: "dequant", Invocations: 400,
			Build: func() *ir.Loop { return stream("g721d.deq", 64, 2, 6) }},
		{Name: "adapt", Invocations: 400,
			Build: func() *ir.Loop { return inPlace("g721d.adapt", 16, 2, 5) }},
		{Name: "reconstruct", Invocations: 300,
			Build: func() *ir.Loop { return stream2("g721d.rec", 32, 2, 5) }},
		{Name: "predictor_iir", Invocations: 150,
			Build: func() *ir.Loop { return iir("g721d.pred", 64, 2, 3) }},
	}}
}

// g721enc: the encoder variant — same structure plus a reverse sweep.
func g721enc() *Benchmark {
	return &Benchmark{Name: "g721enc", Kernels: []Kernel{
		{Name: "quant", Invocations: 400,
			Build: func() *ir.Loop { return stream("g721e.q", 64, 2, 6) }},
		{Name: "adapt", Invocations: 350,
			Build: func() *ir.Loop { return inPlace("g721e.adapt", 16, 2, 5) }},
		{Name: "backscan", Invocations: 250,
			Build: func() *ir.Loop { return reverseStream("g721e.rev", 64, 2, 5) }},
		{Name: "predictor_iir", Invocations: 150,
			Build: func() *ir.Loop { return iir("g721e.pred", 64, 2, 3) }},
	}}
}

// gsmdec: GSM full-rate decoding — byte/short streams over 160-sample
// frames plus the rolled long-term-predictor recursive filter (the memory
// recurrence where L0 shrinks the II).
func gsmdec() *Benchmark {
	return &Benchmark{Name: "gsmdec", Kernels: []Kernel{
		{Name: "expand", Invocations: 120,
			Build: func() *ir.Loop { return stream("gsmd.exp", 160, 1, 4) }},
		{Name: "ltp_iir", Invocations: 45,
			Build: func() *ir.Loop { return iir("gsmd.ltp", 160, 2, 2) }},
		{Name: "synth_fir", Invocations: 50,
			Build: func() *ir.Loop { return fir("gsmd.fir", 160, 2, 4) }},
		{Name: "range_lut", Invocations: 8,
			Build: func() *ir.Loop { return tableMap("gsmd.lut", 160, 2, 1024, 2) }},
	}}
}

// gsmenc: the encoder — more filter work, almost fully strided.
func gsmenc() *Benchmark {
	return &Benchmark{Name: "gsmenc", Kernels: []Kernel{
		{Name: "preprocess", Invocations: 110,
			Build: func() *ir.Loop { return stream("gsme.pre", 160, 2, 6) }},
		{Name: "lpc_fir", Invocations: 60,
			Build: func() *ir.Loop { return fir("gsme.fir", 160, 2, 4) }},
		{Name: "ltp_iir", Invocations: 40,
			Build: func() *ir.Loop { return iir("gsme.ltp", 160, 2, 2) }},
	}}
}

// jpegdec: IDCT over 8×8 blocks, a multi-plane upsampling loop whose
// footprint (three planes plus in-flight prefetches per cluster) thrashes
// 4-entry buffers (the §5.2 anomaly), a rolled in-block column pass, and the
// data-dependent colourmap traffic that drops S to ~60%.
func jpegdec() *Benchmark {
	return &Benchmark{Name: "jpegdec", Kernels: []Kernel{
		{Name: "idct_rows", Invocations: 140,
			Build: func() *ir.Loop { return blockRows("jpgd.idct", 64, 2, 8, 5) }},
		{Name: "upsample", Invocations: 60,
			Build: func() *ir.Loop { return manyStreams("jpgd.up", 256, 2, 3, 2) }},
		{Name: "idct_cols", Invocations: 70,
			Build: func() *ir.Loop { return columnWalk("jpgd.col", 64, 2, 16, 3, 6, false) }},
		{Name: "color_scatter", Invocations: 140,
			Build: func() *ir.Loop { return scatterPure("jpgd.cmap", 256, 1, 2048, 1) }},
	}}
}

// jpegenc: the encoder — forward DCT plus even heavier data-dependent
// quantisation traffic (Table 1: barely half the accesses keep a stride).
func jpegenc() *Benchmark {
	return &Benchmark{Name: "jpegenc", Kernels: []Kernel{
		{Name: "fdct_rows", Invocations: 160,
			Build: func() *ir.Loop { return blockRows("jpge.fdct", 64, 2, 8, 5) }},
		{Name: "downsample", Invocations: 30,
			Build: func() *ir.Loop { return stream2("jpge.down", 256, 2, 3) }},
		{Name: "quant_scatter", Invocations: 90,
			Build: func() *ir.Loop { return scatterPure("jpge.q", 256, 1, 2048, 1) }},
		{Name: "zigzag_cols", Invocations: 24,
			Build: func() *ir.Loop { return columnWalk("jpge.zz", 64, 2, 16, 3, 6, false) }},
	}}
}

// mpeg2dec: motion compensation — picture-pitch row fetches dominate (the
// 54% "other" strides of Table 1), with wide block copies and saturation
// streams; IIs around 5–6 keep the prefetch lateness mild (§5.2).
func mpeg2dec() *Benchmark {
	return &Benchmark{Name: "mpeg2dec", Kernels: []Kernel{
		{Name: "mc_rows", Invocations: 280,
			Build: func() *ir.Loop { return columnWalk2("mpg.mc", 64, 8, 32, 3, 8) }},
		{Name: "mc_copy", Invocations: 10,
			Build: func() *ir.Loop { return wideCopy("mpg.copy", 256, 3) }},
		{Name: "saturate", Invocations: 16,
			Build: func() *ir.Loop { return stream("mpg.sat", 256, 2, 4) }},
		{Name: "pred_feedback", Invocations: 40,
			Build: func() *ir.Loop { return iir("mpg.pred", 128, 2, 2) }},
		{Name: "vlc_lut", Invocations: 4,
			Build: func() *ir.Loop { return tableMap("mpg.vlc", 256, 2, 2048, 2) }},
	}}
}

// pegwitdec: elliptic-curve crypto — gathers over a state that overflows the
// 8 KB L1 (the low L1 hit rate and residual stall of §5.2) and rolled carry
// chains.
func pegwitdec() *Benchmark {
	return &Benchmark{Name: "pegwitdec", Kernels: []Kernel{
		{Name: "gather_mix", Invocations: 10,
			Build: func() *ir.Loop { return scatterGather("pwd.gath", 1024, 96*1024, 4) }},
		{Name: "carry_mul", Invocations: 3,
			Build: func() *ir.Loop { return carryChain("pwd.carry", 256, 2) }},
		{Name: "copy_words", Invocations: 3,
			Build: func() *ir.Loop { return inPlace("pwd.acc", 1024, 4, 4) }},
	}}
}

// pegwitenc: the encryption direction — same kernel mix, heavier gather.
func pegwitenc() *Benchmark {
	return &Benchmark{Name: "pegwitenc", Kernels: []Kernel{
		{Name: "gather_mix", Invocations: 12,
			Build: func() *ir.Loop { return scatterGather("pwe.gath", 1024, 96*1024, 4) }},
		{Name: "carry_mul", Invocations: 4,
			Build: func() *ir.Loop { return carryChain("pwe.carry", 256, 2) }},
		{Name: "copy_words", Invocations: 5,
			Build: func() *ir.Loop { return inPlace("pwe.acc", 1024, 4, 4) }},
	}}
}

// pgpdec: bignum arithmetic — carry-bound rolled multiply loops over word
// streams plus unrolled in-place accumulation; conservative dependences
// removed by code specialization (§4.1).
func pgpdec() *Benchmark {
	return &Benchmark{Name: "pgpdec", Kernels: []Kernel{
		{Name: "mp_mul", Invocations: 40, Specialized: true,
			Build: func() *ir.Loop { return carryChain("pgpd.mul", 256, 3) }},
		{Name: "mp_accum", Invocations: 12, Specialized: true,
			Build: func() *ir.Loop { return inPlace("pgpd.acc", 256, 4, 4) }},
		{Name: "carry_prop", Invocations: 14, Specialized: true,
			Build: func() *ir.Loop { return iir("pgpd.prop", 256, 4, 2) }},
		{Name: "idea_lut", Invocations: 2, Specialized: true,
			Build: func() *ir.Loop { return tableMap("pgpd.lut", 256, 2, 2048, 2) }},
	}}
}

// pgpenc: encryption adds IDEA rounds whose table lookups lose their strides
// (Table 1: S drops to 86%).
func pgpenc() *Benchmark {
	return &Benchmark{Name: "pgpenc", Kernels: []Kernel{
		{Name: "mp_mul", Invocations: 36, Specialized: true,
			Build: func() *ir.Loop { return carryChain("pgpe.mul", 256, 3) }},
		{Name: "mp_accum", Invocations: 10, Specialized: true,
			Build: func() *ir.Loop { return inPlace("pgpe.acc", 256, 4, 4) }},
		{Name: "carry_prop", Invocations: 12, Specialized: true,
			Build: func() *ir.Loop { return iir("pgpe.prop", 256, 4, 2) }},
		{Name: "idea_scatter", Invocations: 14, Specialized: true,
			Build: func() *ir.Loop { return scatterPure("pgpe.idea", 256, 2, 2048, 1) }},
	}}
}

// rasta: speech feature extraction — light FFT-style streams (small II,
// prefetch lateness), filterbank FIRs, rolled column walks over the
// spectrogram, a small lookup; code-specialized per §4.1.
func rasta() *Benchmark {
	return &Benchmark{Name: "rasta", Kernels: []Kernel{
		{Name: "fft_pass", Invocations: 24, Specialized: true,
			Build: func() *ir.Loop { return stream2("rasta.fft", 512, 4, 1) }},
		{Name: "filterbank", Invocations: 20, Specialized: true,
			Build: func() *ir.Loop { return fir("rasta.fb", 256, 4, 4) }},
		{Name: "spect_cols", Invocations: 36, Specialized: true,
			Build: func() *ir.Loop { return columnWalk("rasta.col", 64, 4, 128, 3, 3, false) }},
		{Name: "rasta_iir", Invocations: 55, Specialized: true,
			Build: func() *ir.Loop { return iir("rasta.iir", 256, 4, 2) }},
		{Name: "comp_lut", Invocations: 12, Specialized: true,
			Build: func() *ir.Loop { return tableMap("rasta.lut", 256, 4, 2048, 2) }},
	}}
}
