package workload

import (
	"strings"
	"testing"
)

const regTestSrc = `
# two spellings of this loop must share one identity
loop mac 256
array acc 4096 4
array coef 4096 4
a = load acc 0 4 4
c = load coef 0 4 4
p = mul a c
s = int p
store acc 0 4 4 s
`

// regTestSrcAlt is the same loop with different register names, comment
// placement and whitespace: canonicalization must collapse the difference.
const regTestSrcAlt = `loop mac 256
array acc 4096 4
array coef 4096 4
accv   = load acc 0 4 4   # accumulator stream
coefv  = load coef 0 4 4
prod   = mul accv coefv
sum    = int prod
store acc 0 4 4 sum`

func TestRegisterKernelIdempotentAcrossSpellings(t *testing.T) {
	ResetKernelRegistry()
	defer ResetKernelRegistry()

	k1, err := RegisterKernelSource(regTestSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if !IsKernelID(k1.ID) {
		t.Fatalf("registered ID %q is not a content hash", k1.ID)
	}
	if k1.Name != "mac" {
		t.Errorf("registered name = %q, want mac", k1.Name)
	}
	k2, err := RegisterKernelSource(regTestSrcAlt)
	if err != nil {
		t.Fatalf("register alt spelling: %v", err)
	}
	if k2.ID != k1.ID {
		t.Errorf("alternate spelling got a different identity: %s vs %s", k2.ID, k1.ID)
	}
	if n := KernelRegistryLen(); n != 1 {
		t.Errorf("registry holds %d kernels after re-registration, want 1", n)
	}

	got, ok := KernelByID(strings.ToUpper(k1.ID))
	if !ok || got.ID != k1.ID {
		t.Errorf("KernelByID is not case-insensitive")
	}
	if _, err := RegisterKernelSource("loop broken"); err == nil {
		t.Errorf("invalid source registered")
	}
}

func TestKernelBenchResolution(t *testing.T) {
	ResetKernelRegistry()
	defer ResetKernelRegistry()

	k, err := RegisterKernelSource(regTestSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	b := ByName(KernelBenchPrefix + k.ID)
	if b == nil {
		t.Fatalf("ByName does not resolve kernel pseudo-benchmarks")
	}
	if len(b.Kernels) != 1 || b.Kernels[0].Invocations != 1 {
		t.Fatalf("pseudo-benchmark shape wrong: %+v", b.Kernels)
	}
	if KernelIDOf(b, 0) != k.ID {
		t.Errorf("KernelIDOf(pseudo) = %s, want %s", KernelIDOf(b, 0), k.ID)
	}
	// Build returns fresh loops: two builds must not share array objects
	// (arrays are identity objects; address assignment mutates them).
	l1, l2 := b.Kernels[0].Loop(), b.Kernels[0].Loop()
	if l1.Instrs[0].Mem == nil || l1.Instrs[0].Mem.Array == l2.Instrs[0].Mem.Array {
		t.Errorf("pseudo-benchmark builds share array objects")
	}
	if l, ok := LoopByKernelID(k.ID); !ok || l == nil {
		t.Errorf("LoopByKernelID does not resolve a registered kernel")
	}
	if ByName(KernelBenchPrefix+strings.Repeat("0", 64)) != nil {
		t.Errorf("ByName resolved an unregistered hash")
	}
}

func TestSuiteKernelIDsStableAndIndexed(t *testing.T) {
	for _, b := range Suite() {
		for i := range b.Kernels {
			id := KernelIDOf(b, i)
			if !IsKernelID(id) {
				t.Fatalf("%s/%d: ID %q is not a content hash", b.Name, i, id)
			}
			if again := KernelIDOf(ByName(b.Name), i); again != id {
				t.Errorf("%s/%d: ID not stable across Suite() rebuilds", b.Name, i)
			}
			if _, ok := LoopByKernelID(id); !ok {
				t.Errorf("%s/%d: suite kernel %s not resolvable by ID", b.Name, i, id)
			}
		}
		if !IsKernelID(BenchmarkIDOf(b)) {
			t.Errorf("%s: benchmark ID is not a hash", b.Name)
		}
	}
	if len(SuiteNames()) != len(Suite()) {
		t.Errorf("SuiteNames count mismatch")
	}
}

func TestKernelRegistryLRUBound(t *testing.T) {
	ResetKernelRegistry()
	defer ResetKernelRegistry()

	// Distinct loops: vary the trip count so content differs.
	register := func(trip string) RegisteredKernel {
		t.Helper()
		k, err := RegisterKernelSource("loop k " + trip + "\narray a 4096 4\nv = load a 0 4 4\ns = int v\nstore a 0 4 4 s\n")
		if err != nil {
			t.Fatalf("register trip %s: %v", trip, err)
		}
		return k
	}
	SetKernelRegistryLimit(2)
	k1, k2 := register("100"), register("200")
	if _, ok := KernelByID(k1.ID); !ok { // touch k1: k2 becomes LRU
		t.Fatalf("k1 missing")
	}
	k3 := register("300")
	if n := KernelRegistryLen(); n != 2 {
		t.Fatalf("registry holds %d, want cap 2", n)
	}
	if _, ok := KernelByID(k2.ID); ok {
		t.Errorf("least-recently-used kernel not evicted")
	}
	if _, ok := KernelByID(k1.ID); !ok {
		t.Errorf("recently-touched kernel evicted")
	}
	if _, ok := KernelByID(k3.ID); !ok {
		t.Errorf("newest kernel evicted")
	}

	SetKernelRegistryLimit(0)
	if n := KernelRegistryLen(); n != 0 {
		t.Errorf("cap 0 left %d kernels resident", n)
	}
	if _, err := RegisterKernelSource(regTestSrc); err == nil {
		t.Errorf("cap 0 accepted a registration")
	}
}
