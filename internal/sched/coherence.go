package sched

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/ir"
)

// applyPSR rewrites the loop for partial store replication (§4.1): every
// store belonging to a memory-dependent set that contains both loads and
// stores is replicated once per cluster. The first instance is the primary
// (performs the store, updates L0 and L1); the others only invalidate any
// matching entry in their local L0 buffer. The replicas share the primary's
// register sources, which models the register broadcast the paper inserts
// for the address computation.
func applyPSR(l *ir.Loop, cfg arch.Config) *ir.Loop {
	res := alias.Analyze(l)
	replicate := map[int]bool{}
	for si := range res.Sets {
		if !res.SetHasLoadAndStore(l, si) {
			continue
		}
		for _, id := range res.Sets[si] {
			if l.Instrs[id].Op == ir.OpStore {
				replicate[id] = true
			}
		}
	}
	if len(replicate) == 0 {
		return l
	}
	nl := l.Clone()
	group := 0
	for id := range nl.Instrs {
		if !replicate[id] {
			continue
		}
		orig := nl.Instrs[id]
		group++
		orig.ReplicaGroup = group
		orig.PrimaryReplica = true
		for c := 1; c < cfg.Clusters; c++ {
			rep := &ir.Instr{
				ID:             len(nl.Instrs),
				Name:           fmt.Sprintf("%s.psr%d", orig.Name, c),
				Op:             ir.OpStore,
				Srcs:           append([]ir.Reg(nil), orig.Srcs...),
				UnrollCopy:     orig.UnrollCopy,
				OrigID:         orig.OrigID,
				ReplicaGroup:   group,
				PrimaryReplica: false,
			}
			m := *orig.Mem
			rep.Mem = &m
			nl.Instrs = append(nl.Instrs, rep)
		}
	}
	return nl
}
