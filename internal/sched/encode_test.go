package sched

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

// roundTrip compiles the loop, encodes the schedule, decodes it against a
// freshly built copy of the same loop, and requires the rebound schedule to
// be semantically identical (same placements, comms, prefetches, coherence
// treatment — compared via the pointer-free encoding and the text dump).
func roundTrip(t *testing.T, build func() *ir.Loop, cfg arch.Config, opts Options) {
	t.Helper()
	sch, err := Compile(build(), cfg, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	enc := sch.Encode()

	// The encoding must survive JSON (the persistence format) bit-exactly.
	blob, err := json.Marshal(enc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var enc2 EncodedSchedule
	if err := json.Unmarshal(blob, &enc2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*enc, enc2) {
		t.Fatalf("encoding changed across JSON:\n%+v\nvs\n%+v", *enc, enc2)
	}

	dec, err := DecodeSchedule(&enc2, build(), cfg, opts)
	if err != nil {
		t.Fatalf("DecodeSchedule: %v", err)
	}
	if !reflect.DeepEqual(dec.Encode(), enc) {
		t.Errorf("decoded schedule re-encodes differently")
	}
	if dec.String() != sch.String() {
		t.Errorf("decoded schedule renders differently:\n%s\nvs\n%s", dec.String(), sch.String())
	}
	if dec.II != sch.II || dec.SC != sch.SC || dec.Span() != sch.Span() {
		t.Errorf("II/SC/span differ: %d/%d/%d vs %d/%d/%d",
			dec.II, dec.SC, dec.Span(), sch.II, sch.SC, sch.Span())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := arch.MICRO36Config().WithL0Entries(8)
	roundTrip(t, func() *ir.Loop { return vecAdd(1024) }, cfg, Options{UseL0: true})
	roundTrip(t, func() *ir.Loop { return vecAdd(1024) }, cfg.WithL0Entries(0), Options{})
	roundTrip(t, func() *ir.Loop { return inPlaceLoop(t, 512) }, cfg, Options{UseL0: true})
	// PSR rewrites the loop before scheduling; the decoder must apply the
	// same rewrite or every placement index is off by the replica count.
	roundTrip(t, func() *ir.Loop { return inPlaceLoop(t, 512) }, cfg, Options{UseL0: true, AllowPSR: true})
	roundTrip(t, func() *ir.Loop { return vecAdd(2048) }, cfg,
		Options{UseL0: true, AdaptivePrefetchDistance: true})
}

func TestDecodeRejectsCorruptEncodings(t *testing.T) {
	cfg := arch.MICRO36Config().WithL0Entries(8)
	opts := Options{UseL0: true}
	sch, err := Compile(vecAdd(1024), cfg, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	base := sch.Encode()
	clone := func() *EncodedSchedule {
		var b bytes.Buffer
		if err := json.NewEncoder(&b).Encode(base); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var c EncodedSchedule
		if err := json.NewDecoder(&b).Decode(&c); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return &c
	}

	cases := map[string]func(*EncodedSchedule){
		"zero II":            func(e *EncodedSchedule) { e.II = 0 },
		"zero SC":            func(e *EncodedSchedule) { e.SC = 0 },
		"missing placement":  func(e *EncodedSchedule) { e.Placed = e.Placed[:len(e.Placed)-1] },
		"cluster overflow":   func(e *EncodedSchedule) { e.Placed[0].Cluster = cfg.Clusters },
		"negative cycle":     func(e *EncodedSchedule) { e.Placed[0].Cycle = -1 },
		"zero latency":       func(e *EncodedSchedule) { e.Placed[0].Latency = 0 },
		"comm out of range":  func(e *EncodedSchedule) { e.Comms = append(e.Comms, Comm{Producer: 99}) },
		"prefetch bad instr": func(e *EncodedSchedule) { e.Prefetches = append(e.Prefetches, Prefetch{For: -1}) },
		"set length skew":    func(e *EncodedSchedule) { e.SetHome = append(e.SetHome, 0) },
	}
	for name, corrupt := range cases {
		e := clone()
		corrupt(e)
		if _, err := DecodeSchedule(e, vecAdd(1024), cfg, opts); err == nil {
			t.Errorf("%s: corrupted encoding decoded without error", name)
		}
	}
	// The pristine clone must still decode (guards the corrupt cases above
	// against testing a broken clone helper rather than the validation).
	if _, err := DecodeSchedule(clone(), vecAdd(1024), cfg, opts); err != nil {
		t.Errorf("pristine clone rejected: %v", err)
	}
}
