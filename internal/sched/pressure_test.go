package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

func TestPressureSimpleChain(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("chain", 256)
	a := b.Array("a", 4096, 4)
	d := b.Array("d", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	x := b.Int("op", v)
	b.Store("st", d, 0, 4, 4, x)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	rp := Pressure(sch)
	if rp.Max < 1 {
		t.Errorf("MaxLive = %d, want >= 1 (values are live)", rp.Max)
	}
	if rp.Max > 8 {
		t.Errorf("MaxLive = %d, absurdly high for a 3-op chain", rp.Max)
	}
	if len(rp.PerCluster) != cfg.Clusters {
		t.Errorf("PerCluster size %d", len(rp.PerCluster))
	}
}

func TestPressureGrowsWithLatency(t *testing.T) {
	// The same loop scheduled with L1-latency loads holds values longer:
	// baseline pressure must be at least the L0 schedule's.
	mk := func() *ir.Loop {
		b := ir.NewBuilder("p", 256)
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		x := b.Int("op1", v)
		y := b.Int("op2", x)
		b.Store("st", d, 0, 4, 4, y)
		return b.Build()
	}
	cfg := arch.MICRO36Config()
	l0 := compileOK(t, mk(), cfg, Options{UseL0: true})
	base := compileOK(t, mk(), cfg.WithL0Entries(0), Options{})
	pL0, pBase := Pressure(l0), Pressure(base)
	if pBase.Max < pL0.Max {
		t.Errorf("baseline MaxLive (%d) below L0 MaxLive (%d): longer lifetimes must not shrink pressure",
			pBase.Max, pL0.Max)
	}
}

func TestPressureCountsOverlappedInstances(t *testing.T) {
	// A value live for k·II cycles contributes k live instances to each
	// row. Build a long chain at small II and check MaxLive > 2.
	b := ir.NewBuilder("long", 256)
	a := b.Array("a", 4096, 2)
	v := b.Load("ld", a, 0, 2, 2)
	x := v
	for i := 0; i < 10; i++ {
		x = b.Int("op", x)
	}
	// Consume the ORIGINAL load value late: its lifetime spans the chain.
	b.Int("late", v, x)
	cfg := arch.MICRO36Config()
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: false})
	rp := Pressure(sch)
	if rp.Max < 2 {
		t.Errorf("MaxLive = %d, want >= 2 for a lifetime spanning several IIs", rp.Max)
	}
}

func TestFitsRegisterFile(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 256), cfg, Options{UseL0: true})
	if !FitsRegisterFile(sch, 64) {
		t.Errorf("small loop should fit a 64-register file")
	}
	if FitsRegisterFile(sch, 0) {
		t.Errorf("nothing fits a 0-register file")
	}
}

func TestLifetimeSumNonNegative(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 256), cfg, Options{UseL0: true})
	if LifetimeSum(sch) < 0 {
		t.Errorf("negative lifetime sum")
	}
}

func TestWorkloadPressureWithinRegisterFile(t *testing.T) {
	// Every workload kernel, on every variant, must fit a generous
	// rotating register file (128 per cluster) — a sanity bound showing
	// the scheduler does not generate pathological lifetimes.
	cfg := arch.MICRO36Config()
	for _, opts := range []Options{{UseL0: true}, {}} {
		sch := compileOK(t, inPlaceLoop(t, 256), cfg, opts)
		if rp := Pressure(sch); rp.Max > 128 {
			t.Errorf("MaxLive %d exceeds 128", rp.Max)
		}
	}
}
