package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/sms"
	"repro/internal/sms/exact"
)

// Options selects the scheduling algorithm variant.
type Options struct {
	// UseL0 enables the L0-buffer machinery of §4.3 (candidate
	// selection, entry accounting, coherence schemes, hints, prefetch).
	// With UseL0 false the scheduler is the BASE algorithm for a
	// clustered VLIW with a unified L1 and no buffers.
	UseL0 bool
	// AllowPSR applies partial store replication to load+store sets
	// before scheduling instead of choosing between NL0 and 1C. The
	// paper evaluates PSR qualitatively and then drops it (§4.1); it is
	// kept here for tests and ablation.
	AllowPSR bool
	// MarkAllCandidates disables slack-based selective marking: every
	// candidate is assigned the L0 latency (the §5.2 ablation that loses
	// 6% at 4 entries).
	MarkAllCandidates bool
	// PrefetchDistance is how many subblocks ahead hint/explicit
	// prefetches run (default 1; §5.2 evaluates 2).
	PrefetchDistance int
	// AdaptivePrefetchDistance implements the paper's future-work
	// direction: instead of a fixed distance, each load's distance is
	// chosen so the prefetch arrives before the data is needed — the
	// interval between consecutive subblocks of the load's stream
	// (accesses-per-subblock × II) must cover the L1 round trip. The
	// distance is capped so small buffers are not flooded.
	AdaptivePrefetchDistance bool
	// DisableExplicitPrefetch suppresses scheduling step 5.
	DisableExplicitPrefetch bool
	// MaxII caps the initiation-interval search (0 = automatic).
	MaxII int
	// RegistersPerCluster, when positive, rejects schedules whose
	// per-cluster MaxLive exceeds the register file, retrying at a
	// larger II — the paper's §4.2 observation that register pressure
	// "may require the insertion of spill code or the increase of the
	// II" (this scheduler increases the II; it does not spill).
	RegistersPerCluster int

	// Backend selects the scheduling algorithm: "" or BackendSMS for the
	// SMS heuristic (the default), BackendExact for the branch-and-bound
	// exact backend (which attaches a Certificate to the schedule).
	// Unknown names are rejected with *UnknownBackendError.
	Backend string
	// ExactBudget caps the exact backend's search in branch nodes; <= 0
	// selects exact.DefaultBudget. The budget shapes the result (a
	// truncated search returns a weaker bound), so it is part of every
	// cache key.
	ExactBudget int64

	// Ctx, when set, cancels long exact-backend searches cooperatively;
	// nil means no cancellation. A cancelled compile returns the context
	// error.
	//lint:nonkey cancellation plumbing: a cancelled compile returns an error, which callers never cache as a result
	Ctx context.Context
	// ExactProgress, when non-nil, receives the exact search's node and
	// incumbent-II counters for job-status reporting.
	//lint:nonkey observability sink; progress wiring never alters what is computed
	ExactProgress *exact.Progress

	// LoadLatencyFn, when set (and UseL0 is false), supplies the load
	// latency the compiler schedules for a load placed on a given
	// cluster; cluster −1 asks for the optimistic latency used to build
	// the dependence graph. The distributed-cache baselines use this:
	// MultiVLIW schedules every load with its local-slice latency, the
	// word-interleaved heuristics schedule bank-local loads faster.
	//lint:nonkey per-run callback; harness.cacheable() excludes such runs from memoization entirely
	LoadLatencyFn func(in *ir.Instr, cluster int) int
	// PreferredClusterFn, when set, recommends a cluster per memory
	// instruction (the locality-aware word-interleaved heuristic places
	// each access in its word's home cluster). −1 means no preference.
	//lint:nonkey per-run callback; harness.cacheable() excludes such runs from memoization entirely
	PreferredClusterFn func(in *ir.Instr) int
}

// commRec is one scheduled inter-cluster broadcast; refs counts how many
// placed consumers rely on it so eviction can release the bus.
type commRec struct {
	producer int
	cycle    int
	refs     int
}

// state carries one try_schedule attempt. It is allocated once per Compile
// and re-prepared for every II candidate, so the scratch slices below are
// reused across II retries instead of reallocated.
type state struct {
	cfg  arch.Config
	opts Options
	loop *ir.Loop
	als  *alias.Result
	g    *ddg.Graph
	ii   int
	m    mrt

	placed []Placed
	done   []bool
	// prevCycle is the last cycle each node was (force-)placed at, used
	// to guarantee forward progress under eviction (Rau's iterative
	// modulo scheduling).
	prevCycle []int

	comms []commRec
	// commsByProd lists, per producer node, the indices of its scheduled
	// broadcasts (dense, indexed by node ID).
	commsByProd [][]int
	// nodeComms lists, per node, the comm indices its placement holds.
	nodeComms [][]int

	freeL0    []int
	totalFree int

	recommended []int
	intentL0    []bool

	setScheme  []CoherenceScheme
	setDecided []bool
	setHome    []int

	// Per-call scratch (never holds state across calls).
	busHold    []int  // planComms tentative bus holds, len == ii
	usedRepl   []bool // allowedClusters PSR occupancy, len == Clusters
	costMark   []int  // commCost dedup epochs, len == n
	costEpoch  int
	clusterBuf []int         // allowedClusters result buffer
	scoredBuf  []scored      // orderedClusters sort buffer
	orderBuf   []int         // orderedClusters result buffer
	cycleBuf   []int         // window result buffer
	candBuf    []int         // assignLatencies candidate buffer
	pendBuf    []pendingComm // planComms result buffer
}

// scored ranks one candidate cluster in orderedClusters.
type scored struct {
	c               int
	rec, l0         int // 0 preferred
	comm, occupancy int
}

// prepare resets the state for one II attempt, reusing scratch capacity.
func (s *state) prepare(ii int) {
	n := len(s.loop.Instrs)
	s.ii = ii
	s.m.reset(ii, s.cfg)

	s.placed = resizeFilled(s.placed, n, Placed{})
	s.done = resizeFilled(s.done, n, false)
	s.prevCycle = resizeFilled(s.prevCycle, n, -1)
	s.comms = s.comms[:0]
	s.commsByProd = resizeClearedLists(s.commsByProd, n)
	s.nodeComms = resizeClearedLists(s.nodeComms, n)
	s.recommended = resizeFilled(s.recommended, n, -1)
	s.intentL0 = resizeFilled(s.intentL0, n, false)

	s.busHold = resizeFilled(s.busHold, ii, 0)
	s.usedRepl = resizeFilled(s.usedRepl, s.cfg.Clusters, false)
	s.costMark = resizeFilled(s.costMark, n, 0)
	s.costEpoch = 0

	nSets := len(s.als.Sets)
	s.setScheme = resizeFilled(s.setScheme, nSets, SchemeFree)
	s.setDecided = resizeFilled(s.setDecided, nSets, false)
	s.setHome = resizeFilled(s.setHome, nSets, -1)
}

// resizeFilled returns s re-dimensioned to n elements, each set to v,
// reusing the backing array across II retries when capacity allows.
func resizeFilled[T any](s []T, n int, v T) []T {
	if cap(s) < n {
		s = make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// resizeClearedLists re-dimensions a slice-of-slices, truncating each inner
// slice in place so its capacity is reused.
func resizeClearedLists(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// Compile modulo-schedules the loop for the given machine, dispatching on
// the selected backend. The default ("" or BackendSMS) is the paper's
// heuristic; BackendExact wraps it with a lower-bound proof and improvement
// search. Unknown backend names fail with a typed *UnknownBackendError —
// never a silent fallback — so a mistyped axis value in a sweep spec
// surfaces as a client error instead of silently re-measuring SMS.
func Compile(loop *ir.Loop, cfg arch.Config, opts Options) (*Schedule, error) {
	switch opts.Backend {
	case "", BackendSMS:
		return compileHeuristic(loop, cfg, opts)
	case BackendExact:
		return compileExact(loop, cfg, opts)
	default:
		return nil, &UnknownBackendError{Name: opts.Backend}
	}
}

// compileHeuristic is the SMS heuristic pipeline (the pre-backend Compile
// body, unchanged: default-path schedules stay byte-identical).
func compileHeuristic(loop *ir.Loop, cfg arch.Config, opts Options) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := loop.Validate(); err != nil {
		return nil, err
	}
	if opts.PrefetchDistance <= 0 {
		opts.PrefetchDistance = 1
	}
	if opts.AllowPSR && opts.UseL0 {
		loop = applyPSR(loop, cfg)
	}
	als := alias.Analyze(loop)
	g := ddg.Build(loop, initialLatency(cfg, opts), als.Edges)

	mii := g.MII(cfg)
	maxII := opts.MaxII
	if maxII == 0 {
		maxII = mii*4 + 64
	}
	s := &state{cfg: cfg, opts: opts, loop: loop, als: als, g: g}
	for ii := mii; ii <= maxII; ii++ {
		s.prepare(ii)
		if sch := s.trySchedule(); sch != nil {
			if opts.RegistersPerCluster > 0 && !FitsRegisterFile(sch, opts.RegistersPerCluster) {
				resetLatencies(g, loop, cfg, opts)
				continue // register pressure too high: retry at a larger II
			}
			return sch, nil
		}
		resetLatencies(g, loop, cfg, opts)
	}
	return nil, fmt.Errorf("sched: loop %q not schedulable within II <= %d", loop.Name, maxII)
}

// initialLatency gives every candidate load the L0 latency (the optimistic
// assumption of step 2) and everything else its architectural latency.
func initialLatency(cfg arch.Config, opts Options) ddg.LatencyFn {
	return func(in *ir.Instr) int {
		if in.Op == ir.OpLoad {
			if opts.UseL0 && cfg.HasL0() && in.IsCandidate() {
				return cfg.L0Latency
			}
			if !opts.UseL0 && opts.LoadLatencyFn != nil {
				return opts.LoadLatencyFn(in, -1)
			}
			return cfg.L1Latency
		}
		return in.Op.DefaultLatency()
	}
}

func resetLatencies(g *ddg.Graph, loop *ir.Loop, cfg arch.Config, opts Options) {
	lat := initialLatency(cfg, opts)
	for _, in := range loop.Instrs {
		g.SetProducerLatency(in.ID, lat(in))
	}
}

// trySchedule is one invocation of the try_schedule function of Figure 4,
// extended with bounded eviction (force-place) so structural conflicts
// resolve instead of wedging the II search.
func (s *state) trySchedule() *Schedule {
	n := len(s.loop.Instrs)

	// ➊ initialise num_free_L0_entries. One entry per cluster is held
	// back as prefetch headroom when buffers are very small: a marked
	// load's working footprint is its current subblock plus the one in
	// flight, so filling every entry with distinct loads guarantees
	// thrash on 2-entry buffers. Larger buffers keep the paper's
	// optimistic one-entry-per-load accounting (which is precisely what
	// lets prefetches evict live subblocks in jpegdec at 4 entries).
	s.freeL0 = resizeFilled(s.freeL0, s.cfg.Clusters, 0)
	if s.opts.UseL0 && s.cfg.HasL0() {
		entries := s.cfg.L0Entries
		if entries == 2 {
			entries = 1
		}
		for c := range s.freeL0 {
			s.freeL0[c] = entries
		}
	}
	s.totalFree = 0
	for _, f := range s.freeL0 {
		s.totalFree = saturatingAdd(s.totalFree, f)
	}

	// ➌ coherence bookkeeping per memory-dependent set (slices cleared
	// by prepare).
	for i := range s.als.Sets {
		if !s.als.SetHasLoadAndStore(s.loop, i) {
			s.setScheme[i] = SchemeFree
			s.setDecided[i] = true
		} else if s.setIsPSR(i) {
			s.setScheme[i] = SchemePSR
			s.setDecided[i] = true
		}
	}

	// ➋ initial latency assignment by slack.
	s.assignLatencies(s.cfg.Clusters * s.effectiveEntries())

	order := sms.Order(s.g, s.ii)
	orderIdx := make([]int, n)
	for pos, id := range order {
		orderIdx[id] = pos
	}

	pending := make([]bool, n)
	numPending := n
	for i := range pending {
		pending[i] = true
	}
	budget := 8*n + 32

	for numPending > 0 {
		if budget--; budget < 0 {
			return nil // ➐ eviction budget exhausted: increase II
		}
		// Highest-priority pending node (SMS order).
		id := -1
		for v := 0; v < n; v++ {
			if pending[v] && (id == -1 || orderIdx[v] < orderIdx[id]) {
				id = v
			}
		}
		in := s.loop.Instrs[id]

		// ➍ decide the coherence treatment of the instruction's set.
		if in.Op.IsMemRef() {
			if si := s.als.SetOf[id]; si >= 0 && !s.setDecided[si] {
				s.decideSet(si)
			}
		}
		// ➎➏ candidate clusters, ordered by the heuristics.
		clusters := s.orderedClusters(in)
		scheduled := false
		for _, c := range clusters {
			lat, useL0 := s.latencyFor(in, c)
			if s.tryPlace(in, c, lat, useL0) {
				scheduled = true
				break
			}
		}
		if !scheduled {
			evicted := s.forcePlace(in, clusters)
			for _, ev := range evicted {
				if !pending[ev] {
					pending[ev] = true
					numPending++
				}
			}
			if !s.done[id] {
				continue // forced placement failed outright; retry
			}
		}
		pending[id] = false
		numPending--

		// ➑ mark related instructions.
		s.markRelated(in)
		// ➓ reassign latencies with the new slack and free entries.
		s.assignLatencies(s.totalFree)
	}

	sch := &Schedule{
		Loop:      s.loop,
		Cfg:       s.cfg,
		II:        s.ii,
		Placed:    s.placed,
		SetScheme: s.setScheme,
		SetHome:   s.setHome,
	}
	for _, cr := range s.comms {
		if cr.refs > 0 {
			sch.Comms = append(sch.Comms, Comm{Producer: cr.producer, Cycle: cr.cycle})
		}
	}
	sch.SC = (sch.Span() + s.ii - 1) / s.ii
	assignHints(sch, s)
	if s.opts.UseL0 && !s.opts.DisableExplicitPrefetch {
		insertExplicitPrefetches(sch, s)
	}
	revalidateSeqHints(sch)
	return sch
}

func (s *state) effectiveEntries() int {
	if !s.opts.UseL0 || !s.cfg.HasL0() {
		return 0
	}
	return s.cfg.L0Entries
}

func saturatingAdd(a, b int) int {
	if a > math.MaxInt32-b {
		return math.MaxInt32
	}
	return a + b
}

// setIsPSR reports whether the set contains PSR store replicas (created by
// applyPSR before scheduling).
func (s *state) setIsPSR(si int) bool {
	for _, id := range s.als.Sets[si] {
		if s.loop.Instrs[id].ReplicaGroup != 0 {
			return true
		}
	}
	return false
}

// decideSet picks between 1C and NL0 for a load+store set (§4.3 step ➍): 1C
// if at least one of the set's loads currently holds the L0 latency and
// entries remain, NL0 otherwise.
func (s *state) decideSet(si int) {
	anyL0 := false
	for _, id := range s.als.Sets[si] {
		in := s.loop.Instrs[id]
		if in.Op != ir.OpLoad {
			continue
		}
		if (s.done[id] && s.placed[id].UseL0) || (!s.done[id] && s.intentL0[id]) {
			anyL0 = true
			break
		}
	}
	if anyL0 && s.totalFree > 0 {
		s.setScheme[si] = Scheme1C
	} else {
		s.setScheme[si] = SchemeNL0
		for _, id := range s.als.Sets[si] {
			in := s.loop.Instrs[id]
			if in.Op == ir.OpLoad && !s.done[id] {
				s.intentL0[id] = false
				s.g.SetProducerLatency(id, s.cfg.L1Latency)
			}
		}
	}
	s.setDecided[si] = true
}

// latencyFor returns the latency and L0 usage instruction `in` would get if
// placed in cluster c right now.
func (s *state) latencyFor(in *ir.Instr, c int) (int, bool) {
	if in.Op != ir.OpLoad {
		return in.Op.DefaultLatency(), false
	}
	if !s.opts.UseL0 && s.opts.LoadLatencyFn != nil {
		return s.opts.LoadLatencyFn(in, c), false
	}
	canL0 := s.opts.UseL0 && s.cfg.HasL0() && in.IsCandidate() &&
		s.fitsSubblock(in) && s.intentL0[in.ID] && s.freeL0[c] > 0
	if s.opts.MarkAllCandidates {
		// §5.2 ablation: every candidate is scheduled with the L0
		// latency regardless of buffer capacity — the buffers overflow
		// at run time.
		canL0 = s.opts.UseL0 && s.cfg.HasL0() && in.IsCandidate() && s.fitsSubblock(in)
	}
	if si := s.als.SetOf[in.ID]; canL0 && si >= 0 {
		switch s.setScheme[si] {
		case SchemeNL0:
			canL0 = false
		case Scheme1C:
			if h := s.setHome[si]; h != -1 && h != c {
				canL0 = false
			}
		}
	}
	if canL0 {
		return s.cfg.L0Latency, true
	}
	return s.cfg.L1Latency, false
}

// fitsSubblock reports whether one access of the instruction fits in an L0
// subblock; wider accesses can never hit (a subblock holds L1BlockBytes /
// Clusters bytes, so very wide machines exclude very wide loads).
func (s *state) fitsSubblock(in *ir.Instr) bool {
	return in.Mem != nil && in.Mem.Width <= s.cfg.L0SubblockBytes
}

// allowedClusters returns the hard cluster restrictions for an instruction:
// 1C stores must go to the set's home cluster; PSR replicas must occupy
// distinct clusters.
func (s *state) allowedClusters(in *ir.Instr) []int {
	all := s.clusterBuf[:0]
	for i := 0; i < s.cfg.Clusters; i++ {
		all = append(all, i)
	}
	s.clusterBuf = all
	if in.Op != ir.OpStore {
		return all
	}
	if in.ReplicaGroup != 0 {
		used := s.usedRepl
		for i := range used {
			used[i] = false
		}
		for _, other := range s.loop.Instrs {
			if other.ReplicaGroup == in.ReplicaGroup && other.ID != in.ID && s.done[other.ID] {
				used[s.placed[other.ID].Cluster] = true
			}
		}
		out := all[:0]
		for c := 0; c < s.cfg.Clusters; c++ {
			if !used[c] {
				out = append(out, c)
			}
		}
		s.clusterBuf = out
		return out
	}
	if si := s.als.SetOf[in.ID]; si >= 0 && s.setScheme[si] == Scheme1C {
		if h := s.setHome[si]; h != -1 {
			return []int{h}
		}
	}
	return all
}

// orderedClusters implements step ➏: the candidate clusters sorted by the
// BASE heuristic (fewest inter-cluster communications, best balance) with,
// for memory instructions, priority given to the recommended cluster and to
// clusters where the instruction can be scheduled with the L0 latency.
func (s *state) orderedClusters(in *ir.Instr) []int {
	clusters := s.allowedClusters(in)
	pref := -1
	if s.recommended[in.ID] != -1 {
		pref = s.recommended[in.ID]
	} else if s.opts.PreferredClusterFn != nil && in.Op.IsMemRef() {
		pref = s.opts.PreferredClusterFn(in)
	}
	list := s.scoredBuf[:0]
	for _, c := range clusters {
		sc := scored{c: c, rec: 1, l0: 1}
		if pref == c {
			sc.rec = 0
		}
		if _, useL0 := s.latencyFor(in, c); useL0 {
			sc.l0 = 0
		}
		sc.comm = s.commCost(in, c)
		sc.occupancy = s.m.occupancy[c]
		list = append(list, sc)
	}
	s.scoredBuf = list
	mem := in.Op.IsMemRef()
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if mem {
			if a.rec != b.rec {
				return a.rec < b.rec
			}
			if a.l0 != b.l0 {
				return a.l0 < b.l0
			}
		}
		if a.comm != b.comm {
			return a.comm < b.comm
		}
		if a.occupancy != b.occupancy {
			return a.occupancy < b.occupancy
		}
		return a.c < b.c
	})
	out := s.orderBuf[:0]
	for _, sc := range list {
		out = append(out, sc.c)
	}
	s.orderBuf = out
	return out
}

// commCost counts the placed register-dependence neighbours of `in` that sit
// in a different cluster than c.
func (s *state) commCost(in *ir.Instr, c int) int {
	cost := 0
	s.costEpoch++
	epoch := s.costEpoch
	count := func(other int) {
		if s.done[other] && s.costMark[other] != epoch && s.placed[other].Cluster != c {
			s.costMark[other] = epoch
			cost++
		}
	}
	for _, ei := range s.g.InEdges(in.ID) {
		if s.g.Edges[ei].Kind == ddg.DepReg {
			count(s.g.Edges[ei].From)
		}
	}
	for _, ei := range s.g.OutEdges(in.ID) {
		if s.g.Edges[ei].Kind == ddg.DepReg {
			count(s.g.Edges[ei].To)
		}
	}
	return cost
}

// pendingComm is a tentative bus reservation evaluated during placement.
type pendingComm struct {
	producer int
	cycle    int
	reuse    int // index of an existing comm being reused, or -1
}

// window computes the feasible cycle list for placing `in` on cluster c with
// latency lat, following the SMS placement rules.
func (s *state) window(in *ir.Instr, c, lat int) []int {
	id := in.ID
	commLat := s.cfg.CommLatency
	estart := 0
	hasPreds := false
	for _, ei := range s.g.InEdges(id) {
		e := s.g.Edges[ei]
		if !s.done[e.From] || e.From == id {
			continue
		}
		hasPreds = true
		p := &s.placed[e.From]
		t0 := p.Cycle + s.edgeLatency(ei) - s.ii*e.Distance
		if e.Kind == ddg.DepReg && p.Cluster != c {
			t0 += commLat
		}
		if t0 > estart {
			estart = t0
		}
	}
	latest := math.MaxInt32
	hasSuccs := false
	for _, ei := range s.g.OutEdges(id) {
		e := s.g.Edges[ei]
		if !s.done[e.To] || e.To == id {
			continue
		}
		hasSuccs = true
		q := &s.placed[e.To]
		elat := lat
		if e.Kind == ddg.DepMem {
			elat = e.FixedLat
		}
		t1 := q.Cycle - elat + s.ii*e.Distance
		if e.Kind == ddg.DepReg && q.Cluster != c {
			t1 -= commLat
		}
		if t1 < latest {
			latest = t1
		}
	}
	if estart < 0 {
		estart = 0
	}
	cycles := s.cycleBuf[:0]
	switch {
	case hasSuccs && !hasPreds:
		lo := latest - s.ii + 1
		if lo < 0 {
			lo = 0
		}
		for t := latest; t >= lo; t-- {
			cycles = append(cycles, t)
		}
	case !hasPreds && !hasSuccs:
		asap := s.g.Estart(s.ii)[id]
		for t := asap; t <= asap+s.ii-1; t++ {
			cycles = append(cycles, t)
		}
	default:
		hi := estart + s.ii - 1
		if latest < hi {
			hi = latest
		}
		for t := estart; t <= hi; t++ {
			cycles = append(cycles, t)
		}
	}
	s.cycleBuf = cycles
	return cycles
}

// tryPlace attempts to schedule `in` on cluster c with the given latency,
// committing unit and bus reservations on success.
func (s *state) tryPlace(in *ir.Instr, c, lat int, useL0 bool) bool {
	kind := unitKindOf(in.Op)
	for _, t := range s.window(in, c, lat) {
		if t < 0 || !s.m.unitFree(t, c, kind) {
			continue
		}
		pend, ok := s.planComms(in, c, t, lat)
		if !ok {
			continue
		}
		s.commit(in, c, t, lat, useL0, pend)
		return true
	}
	return false
}

// planComms finds bus slots (or reusable broadcasts) for every cross-cluster
// register dependence of `in` placed at (c, t). The tentative bus-hold table
// is the state's dense scratch, cleared on entry.
func (s *state) planComms(in *ir.Instr, c, t, lat int) ([]pendingComm, bool) {
	id := in.ID
	commLat := s.cfg.CommLatency
	extra := s.busHold
	for i := range extra {
		extra[i] = 0
	}
	pend := s.pendBuf[:0]
	for _, ei := range s.g.InEdges(id) {
		e := s.g.Edges[ei]
		if e.Kind != ddg.DepReg || !s.done[e.From] || e.From == id {
			continue
		}
		p := &s.placed[e.From]
		if p.Cluster == c {
			continue
		}
		deadline := t + s.ii*e.Distance - commLat
		ready := p.Cycle + p.Latency
		pc, ok := s.findComm(e.From, ready, deadline, extra, pend)
		if !ok {
			s.pendBuf = pend
			return nil, false
		}
		pend = append(pend, pc)
	}
	for _, ei := range s.g.OutEdges(id) {
		e := s.g.Edges[ei]
		if e.Kind != ddg.DepReg || !s.done[e.To] || e.To == id {
			continue
		}
		q := &s.placed[e.To]
		if q.Cluster == c {
			continue
		}
		deadline := q.Cycle + s.ii*e.Distance - commLat
		ready := t + lat
		pc, ok := s.findComm(id, ready, deadline, extra, pend)
		if !ok {
			s.pendBuf = pend
			return nil, false
		}
		pend = append(pend, pc)
	}
	s.pendBuf = pend
	return pend, true
}

// findComm locates a broadcast of producer arriving by deadline+commLat:
// reuse an existing or pending transfer when possible, otherwise claim a bus
// slot in [ready, deadline]. A reused transfer must also start no earlier
// than `ready`: after an eviction re-places the producer, stale broadcasts
// scheduled before the value exists would otherwise carry the previous
// iteration's value.
func (s *state) findComm(producer, ready, deadline int, extra []int, pend []pendingComm) (pendingComm, bool) {
	for _, ci := range s.commsByProd[producer] {
		cr := &s.comms[ci]
		if cr.refs > 0 && cr.cycle >= ready && cr.cycle <= deadline {
			return pendingComm{producer: producer, cycle: cr.cycle, reuse: ci}, true
		}
	}
	for _, pc := range pend {
		if pc.producer == producer && pc.cycle >= ready && pc.cycle <= deadline && pc.reuse == -1 {
			// Share the not-yet-committed transfer.
			return pendingComm{producer: producer, cycle: pc.cycle, reuse: -2}, true
		}
	}
	if ready < 0 {
		ready = 0
	}
	for b := ready; b <= deadline; b++ {
		if s.m.busFree(b, extra) {
			holdRows(extra, b, s.cfg.CommLatency, s.ii)
			return pendingComm{producer: producer, cycle: b, reuse: -1}, true
		}
	}
	return pendingComm{}, false
}

// commit finalises a placement: unit slot, bus transfers, latency, state.
func (s *state) commit(in *ir.Instr, c, t, lat int, useL0 bool, pend []pendingComm) {
	id := in.ID
	s.m.reserveUnit(t, c, unitKindOf(in.Op))
	for _, pc := range pend {
		switch pc.reuse {
		case -1:
			s.m.reserveBus(pc.cycle)
			s.comms = append(s.comms, commRec{producer: pc.producer, cycle: pc.cycle, refs: 1})
			ci := len(s.comms) - 1
			s.commsByProd[pc.producer] = append(s.commsByProd[pc.producer], ci)
			s.nodeComms[id] = append(s.nodeComms[id], ci)
		case -2:
			// Shared with a sibling pendingComm committed in this
			// same call: find the comm just created.
			for _, ci := range s.commsByProd[pc.producer] {
				if s.comms[ci].cycle == pc.cycle && s.comms[ci].refs > 0 {
					s.comms[ci].refs++
					s.nodeComms[id] = append(s.nodeComms[id], ci)
					break
				}
			}
		default:
			s.comms[pc.reuse].refs++
			s.nodeComms[id] = append(s.nodeComms[id], pc.reuse)
		}
	}
	s.placed[id] = Placed{Instr: in, Cluster: c, Cycle: t, Latency: lat, UseL0: useL0}
	s.done[id] = true
	s.prevCycle[id] = t
	s.g.SetProducerLatency(id, lat)
	if useL0 && in.Op == ir.OpLoad {
		if s.freeL0[c] < arch.Unbounded {
			s.freeL0[c]--
		}
		if s.totalFree < math.MaxInt32 {
			s.totalFree--
		}
	}
	// 1C home-cluster election: L0 loads and stores pin the set.
	if si := s.als.SetOf[id]; si >= 0 && s.setScheme[si] == Scheme1C && s.setHome[si] == -1 {
		if in.Op == ir.OpStore || useL0 {
			s.setHome[si] = c
		}
	}
}

// evict removes a node's placement, releasing its unit slot, bus transfers
// and L0 entry.
func (s *state) evict(id int) {
	if !s.done[id] {
		return
	}
	p := &s.placed[id]
	s.m.releaseUnit(p.Cycle, p.Cluster, unitKindOf(p.Instr.Op))
	for _, ci := range s.nodeComms[id] {
		cr := &s.comms[ci]
		cr.refs--
		if cr.refs == 0 {
			for k := 0; k < s.cfg.CommLatency; k++ {
				s.m.bus[mod(cr.cycle+k, s.ii)]--
			}
		}
	}
	s.nodeComms[id] = nil
	if p.UseL0 && p.Instr.Op == ir.OpLoad {
		if s.freeL0[p.Cluster] < arch.Unbounded {
			s.freeL0[p.Cluster]++
		}
		if s.totalFree < math.MaxInt32 {
			s.totalFree++
		}
	}
	s.done[id] = false
	// Restore the intent latency for slack computations.
	in := p.Instr
	if in.Op == ir.OpLoad {
		switch {
		case s.opts.UseL0 && s.cfg.HasL0() && in.IsCandidate() && s.intentL0[id]:
			s.g.SetProducerLatency(id, s.cfg.L0Latency)
		case !s.opts.UseL0 && s.opts.LoadLatencyFn != nil:
			s.g.SetProducerLatency(id, s.opts.LoadLatencyFn(in, -1))
		default:
			s.g.SetProducerLatency(id, s.cfg.L1Latency)
		}
	}
}

// forcePlace implements the eviction step of iterative modulo scheduling:
// the node is placed at max(estart, prevCycle+1) in the best cluster, and
// every placed instruction that conflicts with that slot — the unit owner,
// and any dependence neighbour whose constraint can no longer be met — is
// evicted and rescheduled later. Returns the evicted node IDs.
func (s *state) forcePlace(in *ir.Instr, clusters []int) []int {
	if len(clusters) == 0 {
		return nil
	}
	id := in.ID
	c := clusters[0]
	lat, useL0 := s.latencyFor(in, c)

	// Forced cycle: never before the placed-predecessor bound, always
	// past the previous attempt (progress guarantee).
	estart := 0
	for _, ei := range s.g.InEdges(id) {
		e := s.g.Edges[ei]
		if !s.done[e.From] || e.From == id {
			continue
		}
		p := &s.placed[e.From]
		t0 := p.Cycle + s.edgeLatency(ei) - s.ii*e.Distance
		if e.Kind == ddg.DepReg && p.Cluster != c {
			t0 += s.cfg.CommLatency
		}
		if t0 > estart {
			estart = t0
		}
	}
	t := estart
	if t <= s.prevCycle[id] {
		t = s.prevCycle[id] + 1
	}

	var evicted []int
	kind := unitKindOf(in.Op)
	// Free the unit slot.
	for !s.m.unitFree(t, c, kind) {
		victim := s.unitOwner(t, c, kind, id)
		if victim == -1 {
			break
		}
		s.evict(victim)
		evicted = append(evicted, victim)
	}
	// Evict dependence neighbours that the forced slot violates (or whose
	// comm cannot be scheduled).
	for changed := true; changed; {
		changed = false
		pend, ok := s.planComms(in, c, t, lat)
		if ok {
			if s.violatedNeighbor(in, c, t, lat) == -1 {
				s.commit(in, c, t, lat, useL0, pend)
				return evicted
			}
		}
		v := s.violatedNeighbor(in, c, t, lat)
		if v == -1 && !ok {
			// Bus congestion with no violating neighbour: evict an
			// arbitrary comm holder to free bus rows.
			v = s.anyCommHolder(id)
		}
		if v != -1 {
			s.evict(v)
			evicted = append(evicted, v)
			changed = true
		}
	}
	// Could not resolve: leave the node pending (caller retries).
	return evicted
}

// unitOwner finds a placed node occupying the unit slot (row of t, cluster,
// kind), excluding `except`.
func (s *state) unitOwner(t, c int, kind arch.UnitKind, except int) int {
	row := mod(t, s.ii)
	for v := range s.placed {
		if v == except || !s.done[v] {
			continue
		}
		p := &s.placed[v]
		if p.Cluster == c && unitKindOf(p.Instr.Op) == kind && mod(p.Cycle, s.ii) == row {
			return v
		}
	}
	return -1
}

// violatedNeighbor returns a placed dependence neighbour whose constraint
// breaks if `in` is placed at (c, t), or -1.
func (s *state) violatedNeighbor(in *ir.Instr, c, t, lat int) int {
	id := in.ID
	commLat := s.cfg.CommLatency
	for _, ei := range s.g.InEdges(id) {
		e := s.g.Edges[ei]
		if !s.done[e.From] || e.From == id {
			continue
		}
		p := &s.placed[e.From]
		t0 := p.Cycle + s.edgeLatency(ei) - s.ii*e.Distance
		if e.Kind == ddg.DepReg && p.Cluster != c {
			t0 += commLat
		}
		if t < t0 {
			return e.From
		}
	}
	for _, ei := range s.g.OutEdges(id) {
		e := s.g.Edges[ei]
		if !s.done[e.To] || e.To == id {
			continue
		}
		q := &s.placed[e.To]
		elat := lat
		if e.Kind == ddg.DepMem {
			elat = e.FixedLat
		}
		t1 := q.Cycle - elat + s.ii*e.Distance
		if e.Kind == ddg.DepReg && q.Cluster != c {
			t1 -= commLat
		}
		if t > t1 {
			return e.To
		}
	}
	return -1
}

// anyCommHolder returns some placed node holding a bus transfer (to relieve
// bus congestion), or -1.
func (s *state) anyCommHolder(except int) int {
	for v := range s.nodeComms {
		if v != except && s.done[v] && len(s.nodeComms[v]) > 0 {
			return v
		}
	}
	return -1
}

// edgeLatency is the constraint latency of edge ei given committed producer
// latencies.
func (s *state) edgeLatency(ei int) int {
	e := s.g.Edges[ei]
	if e.Kind == ddg.DepMem {
		return e.FixedLat
	}
	if s.done[e.From] {
		return s.placed[e.From].Latency
	}
	return s.g.ProducerLatency(e.From)
}

// markRelated implements step ➑: after placing instruction `in`, recommend
// clusters for its unroll siblings (rotating assignment for interleaved
// mapping) and pin memory-dependent stores to the home cluster.
func (s *state) markRelated(in *ir.Instr) {
	id := in.ID
	if !s.done[id] {
		return
	}
	p := &s.placed[id]
	if in.Op == ir.OpLoad && p.UseL0 && s.loop.Unroll == s.cfg.Clusters && interleaveEligible(s.loop, in, s.cfg) {
		for _, other := range s.loop.Instrs {
			if other.ID == id || other.OrigID != in.OrigID || other.Op != ir.OpLoad || s.done[other.ID] {
				continue
			}
			delta := other.UnrollCopy - in.UnrollCopy
			s.recommended[other.ID] = mod(p.Cluster+delta, s.cfg.Clusters)
		}
	}
	if si := s.als.SetOf[id]; si >= 0 && s.setScheme[si] == Scheme1C && in.Op == ir.OpLoad && p.UseL0 {
		for _, mid := range s.als.Sets[si] {
			if !s.done[mid] && s.loop.Instrs[mid].Op == ir.OpStore {
				s.recommended[mid] = p.Cluster
			}
		}
	}
}

// assignLatencies implements steps ➋/➓: the nFree most critical (smallest
// slack) unplaced candidate loads get the L0 latency, every other unplaced
// candidate the L1 latency. With MarkAllCandidates every candidate keeps L0.
func (s *state) assignLatencies(nFree int) {
	if !s.opts.UseL0 || !s.cfg.HasL0() {
		return
	}
	cands := s.candBuf[:0]
	for _, in := range s.loop.Instrs {
		if s.done[in.ID] || !in.IsCandidate() || in.Op != ir.OpLoad || !s.fitsSubblock(in) {
			continue
		}
		if si := s.als.SetOf[in.ID]; si >= 0 && s.setDecided[si] && s.setScheme[si] == SchemeNL0 {
			continue
		}
		cands = append(cands, in.ID)
	}
	s.candBuf = cands
	if s.opts.MarkAllCandidates {
		for _, id := range cands {
			s.intentL0[id] = true
			s.g.SetProducerLatency(id, s.cfg.L0Latency)
		}
		return
	}
	slack := s.g.Slack(s.ii)
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if slack[a] != slack[b] {
			return slack[a] < slack[b]
		}
		return a < b
	})
	for i, id := range cands {
		use := i < nFree
		s.intentL0[id] = use
		if use {
			s.g.SetProducerLatency(id, s.cfg.L0Latency)
		} else {
			s.g.SetProducerLatency(id, s.cfg.L1Latency)
		}
	}
}

// interleaveEligible reports whether a load is part of an unroll-by-N group
// whose original stride is one element: the N copies access consecutive
// elements and INTERLEAVED_MAP places each copy's elements in its own
// cluster (§3.1).
func interleaveEligible(l *ir.Loop, in *ir.Instr, cfg arch.Config) bool {
	if l.Unroll != cfg.Clusters || in.Mem == nil || !in.Mem.StrideKnown {
		return false
	}
	st := in.Mem.Stride
	if st < 0 {
		st = -st
	}
	return st == int64(in.Mem.Width)*int64(cfg.Clusters)
}
