package sched

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/unroll"
)

// randomLoop generates a structurally valid random loop: a DAG of ALU/FP
// ops over a random set of strided, periodic and scrambled memory accesses,
// with optional register recurrences and in-place arrays. Seeded, so
// failures reproduce.
func randomLoop(rng *rand.Rand, name string) *ir.Loop {
	b := ir.NewBuilder(name, int64(64+rng.Intn(512)))
	widths := []int{1, 2, 4, 8}

	nArrays := 1 + rng.Intn(4)
	arrays := make([]*ir.Array, nArrays)
	for i := range arrays {
		arrays[i] = b.Array("a", int64(1024+rng.Intn(16384)), widths[rng.Intn(4)])
	}

	var vals []ir.Reg
	nLoads := 1 + rng.Intn(5)
	for i := 0; i < nLoads; i++ {
		a := arrays[rng.Intn(nArrays)]
		w := widths[rng.Intn(4)]
		switch rng.Intn(4) {
		case 0: // unit stride
			vals = append(vals, b.Load("ld", a, int64(rng.Intn(64)), int64(w), w))
		case 1: // column / odd stride
			vals = append(vals, b.Load("ld", a, 0, int64(w*(2+rng.Intn(64))), w))
		case 2: // periodic
			vals = append(vals, b.LoadPeriodic("ld", a, 0, int64(w), w, 4+rng.Intn(28)))
		default: // scrambled
			vals = append(vals, b.LoadIndexed("ld", a, w, rng.Uint64()|1, ir.NoReg))
		}
	}

	nOps := 1 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		s1 := vals[rng.Intn(len(vals))]
		s2 := vals[rng.Intn(len(vals))]
		switch rng.Intn(4) {
		case 0:
			vals = append(vals, b.Int("op", s1, s2))
		case 1:
			vals = append(vals, b.IntMul("op", s1))
		case 2:
			vals = append(vals, b.FP("op", s1, s2))
		default:
			vals = append(vals, b.SelfRecurrence("acc", 1+rng.Intn(3), s1))
		}
	}

	nStores := rng.Intn(3)
	for i := 0; i < nStores; i++ {
		a := arrays[rng.Intn(nArrays)]
		w := widths[rng.Intn(4)]
		v := vals[rng.Intn(len(vals))]
		if rng.Intn(4) == 0 {
			b.StoreIndexed("st", a, w, rng.Uint64()|1, v)
		} else {
			b.Store("st", a, int64(rng.Intn(64)), int64(w), w, v)
		}
	}
	if rng.Intn(2) == 0 {
		b.Specialized()
	}
	l, err := b.BuildErr()
	if err != nil {
		panic(err) // generator bug, not a scheduler bug
	}
	return l
}

// TestFuzzScheduleValidity compiles a few hundred random loops across the
// option space and verifies every dependence and resource constraint of the
// resulting schedules.
func TestFuzzScheduleValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(20030612)) // deterministic
	cfgs := []arch.Config{
		arch.MICRO36Config(),
		arch.MICRO36Config().WithL0Entries(2),
		arch.MICRO36Config().WithL0Entries(0),
		arch.MICRO36Config().WithClusters(2),
	}
	optVariants := []Options{
		{UseL0: true},
		{UseL0: true, MarkAllCandidates: true},
		{UseL0: true, AllowPSR: true},
		{UseL0: true, AdaptivePrefetchDistance: true},
		{},
	}
	const n = 60
	for i := 0; i < n; i++ {
		l := randomLoop(rng, "fuzz")
		cfg := cfgs[i%len(cfgs)]
		opts := optVariants[i%len(optVariants)]
		if !cfg.HasL0() {
			opts.UseL0 = false
		}
		sch, err := Compile(l.Clone(), cfg, opts)
		if err != nil {
			t.Fatalf("loop %d: %v\n%s", i, err, l)
		}
		verifySchedule(t, sch)
		if t.Failed() {
			t.Fatalf("loop %d produced an invalid schedule:\n%s", i, l)
		}
		// Unrolled variant when the trip count allows.
		if l.TripCount >= int64(2*cfg.Clusters) {
			if ul, err := unroll.ByFactor(l.Clone(), cfg.Clusters); err == nil {
				sch, err := Compile(ul, cfg, opts)
				if err != nil {
					t.Fatalf("loop %d unrolled: %v\n%s", i, err, l)
				}
				verifySchedule(t, sch)
				if t.Failed() {
					t.Fatalf("loop %d unrolled produced an invalid schedule", i)
				}
			}
		}
	}
}

// TestFuzzPressureFinite checks the pressure analysis never explodes or goes
// negative on arbitrary schedules.
func TestFuzzPressureFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := arch.MICRO36Config()
	for i := 0; i < 25; i++ {
		l := randomLoop(rng, "pf")
		sch, err := Compile(l, cfg, Options{UseL0: true})
		if err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		rp := Pressure(sch)
		if rp.Max < 0 || rp.Max > 4096 {
			t.Fatalf("loop %d: absurd MaxLive %d", i, rp.Max)
		}
		for _, v := range rp.PerCluster {
			if v < 0 || v > rp.Max {
				t.Fatalf("loop %d: inconsistent per-cluster pressure %v", i, rp.PerCluster)
			}
		}
	}
}
