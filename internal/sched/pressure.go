package sched

import (
	"repro/internal/ir"
)

// RegisterPressure is the per-cluster MaxLive of a modulo schedule: the
// maximum number of live register values in any cycle of the steady-state
// kernel. The paper (§4.2) lists register pressure alongside II and SC as
// the quantities that determine a modulo schedule's quality — a schedule
// needing more registers than the file provides forces spills or a larger
// II. This analysis lets callers check schedules against a register-file
// budget and lets tests assert that the SMS ordering keeps lifetimes short.
type RegisterPressure struct {
	// PerCluster[c] is MaxLive in cluster c.
	PerCluster []int
	// Max is the largest per-cluster value.
	Max int
}

// Pressure computes the register pressure of the schedule.
//
// A value produced by instruction u and consumed by instruction v at
// dependence distance d is live from u's writeback (cycle(u)+latency) until
// v's issue in the consuming iteration (cycle(v)+II·d). In the steady-state
// kernel, a lifetime of length L overlaps ceil(L/II) simultaneous instances
// (modulo-scheduling lifetimes wrap), so each value contributes that many
// live registers to every kernel row it covers. Values that cross clusters
// are charged to both ends: the producer keeps its copy until the transfer,
// the consumer holds the arriving copy.
func Pressure(sch *Schedule) RegisterPressure {
	n := len(sch.Loop.Instrs)
	ii := sch.II
	clusters := sch.Cfg.Clusters

	// lastUse[u][c]: the latest consumption time of u's value in cluster
	// c, in flat producer-relative cycles.
	lastUse := make([]map[int]int, n)
	for i := range lastUse {
		lastUse[i] = map[int]int{}
	}
	for _, in := range sch.Loop.Instrs {
		v := &sch.Placed[in.ID]
		use := func(reg ir.Reg, dist int) {
			u := sch.Loop.DefOf(reg)
			if u == nil {
				return
			}
			t := v.Cycle + ii*dist
			if t > lastUse[u.ID][v.Cluster] {
				lastUse[u.ID][v.Cluster] = t
			}
		}
		for _, s := range in.Srcs {
			use(s, 0)
		}
		for _, c := range in.Carried {
			use(c.Reg, c.Distance)
		}
	}

	rows := make([][]int, clusters)
	for c := range rows {
		rows[c] = make([]int, ii)
	}
	for _, in := range sch.Loop.Instrs {
		if in.Dst == ir.NoReg {
			continue
		}
		u := &sch.Placed[in.ID]
		birth := u.Cycle + u.Latency
		//lint:allow maprange addLifetime only increments row counters; commutative, so iteration order cannot change MaxLive
		for c, death := range lastUse[in.ID] {
			start := birth
			if c != u.Cluster {
				// The copy in the consuming cluster exists from
				// the bus arrival; approximate with the earliest
				// possible arrival.
				start = birth + sch.Cfg.CommLatency
			}
			if death < start {
				death = start
			}
			addLifetime(rows[c], start, death, ii)
			if c != u.Cluster {
				// The producer's copy lives until the transfer
				// leaves (approximate: until birth).
				addLifetime(rows[u.Cluster], u.Cycle+u.Latency-1, birth, ii)
			}
		}
		if len(lastUse[in.ID]) == 0 {
			// Dead value: live for one cycle after writeback.
			addLifetime(rows[u.Cluster], birth, birth, ii)
		}
	}

	rp := RegisterPressure{PerCluster: make([]int, clusters)}
	for c := range rows {
		for _, v := range rows[c] {
			if v > rp.PerCluster[c] {
				rp.PerCluster[c] = v
			}
		}
		if rp.PerCluster[c] > rp.Max {
			rp.Max = rp.PerCluster[c]
		}
	}
	return rp
}

// addLifetime charges a value live over flat cycles [start, end] to every
// kernel row it covers, once per overlapped iteration instance.
func addLifetime(row []int, start, end, ii int) {
	if end < start {
		end = start
	}
	length := end - start + 1
	if length >= ii*len(row) { // covers every row in every overlap; cap
		length = ii * len(row)
		end = start + length - 1
	}
	full := length / ii
	for r := range row {
		row[r] += full
	}
	for t := start + full*ii; t <= end; t++ {
		row[mod(t, ii)]++
	}
}

// FitsRegisterFile reports whether the schedule's per-cluster MaxLive stays
// within a register file of the given size (rotating register files make
// MaxLive the exact requirement).
func FitsRegisterFile(sch *Schedule, size int) bool {
	rp := Pressure(sch)
	return rp.Max <= size
}

// LifetimeSum returns the total register lifetime (the quantity SMS
// minimises alongside II); exposed for ordering-quality tests.
func LifetimeSum(sch *Schedule) int {
	ii := sch.II
	sum := 0
	for _, in := range sch.Loop.Instrs {
		if in.Dst == ir.NoReg {
			continue
		}
		u := &sch.Placed[in.ID]
		birth := u.Cycle + u.Latency
		death := birth
		for _, other := range sch.Loop.Instrs {
			v := &sch.Placed[other.ID]
			for _, s := range other.Srcs {
				if s == in.Dst && v.Cycle > death {
					death = v.Cycle
				}
			}
			for _, cu := range other.Carried {
				if cu.Reg == in.Dst {
					if t := v.Cycle + ii*cu.Distance; t > death {
						death = t
					}
				}
			}
		}
		sum += death - birth
	}
	return sum
}
