package sched_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/sms/exact"
	"repro/internal/unroll"
	"repro/internal/vliw"
	"repro/internal/workload"
)

// suiteLoop builds one suite kernel's scheduling input exactly the way the
// harness and the l0sched CLI do: addresses assigned, unroll factor chosen
// against the no-L0 config, body unrolled.
func suiteLoop(t *testing.T, k *workload.Kernel) *ir.Loop {
	t.Helper()
	loop := k.Loop()
	workload.AssignAddresses(loop, 1<<16)
	factor := sched.ChooseUnrollFactor(loop, arch.MICRO36Config().WithL0Entries(0))
	if factor > 1 {
		body, err := unroll.ByFactor(loop, factor)
		if err != nil {
			t.Fatalf("unroll %s: %v", loop.Name, err)
		}
		return body
	}
	return loop
}

// TestExactDifferentialSuite runs both backends over every suite kernel and
// holds them to the contract: the exact backend never returns a worse II than
// the heuristic, every certificate (exact and heuristic re-expressed) passes
// the shared independent validator, the exact schedule still feeds the VLIW
// simulator, and at least 5 benchmarks close with a proven optimality
// certificate inside the default budget.
func TestExactDifferentialSuite(t *testing.T) {
	cfg := arch.MICRO36Config()
	opts := sched.Options{UseL0: true, PrefetchDistance: 1}

	optimalBenches := 0
	for _, b := range workload.Suite() {
		benchOptimal := true
		for i := range b.Kernels {
			k := &b.Kernels[i]
			body := suiteLoop(t, k)

			hOpts := opts
			hOpts.Backend = sched.BackendSMS
			hsch, err := sched.Compile(body, cfg, hOpts)
			if err != nil {
				t.Fatalf("%s/%s heuristic: %v", b.Name, k.Name, err)
			}

			eOpts := opts
			eOpts.Backend = sched.BackendExact
			esch, err := sched.Compile(suiteLoop(t, k), cfg, eOpts)
			if err != nil {
				t.Fatalf("%s/%s exact: %v", b.Name, k.Name, err)
			}

			if esch.II > hsch.II {
				t.Errorf("%s/%s: exact II %d worse than heuristic II %d", b.Name, k.Name, esch.II, hsch.II)
			}
			c := esch.Cert
			if c == nil {
				t.Fatalf("%s/%s: exact schedule carries no certificate", b.Name, k.Name)
			}
			if c.II != esch.II || c.Backend != sched.BackendExact {
				t.Errorf("%s/%s: certificate header %+v does not match schedule II %d", b.Name, k.Name, c, esch.II)
			}
			if c.LowerBound > c.II {
				t.Errorf("%s/%s: lower bound %d above achieved II %d", b.Name, k.Name, c.LowerBound, c.II)
			}
			if c.Optimal && c.II != c.LowerBound {
				t.Errorf("%s/%s: optimal certificate with II %d != bound %d", b.Name, k.Name, c.II, c.LowerBound)
			}

			// Both schedules must pass the one validator, against the model
			// each schedule was compiled for.
			p, m := sched.ExactModel(esch.Loop, cfg, eOpts)
			if err := exact.Validate(c, p, m); err != nil {
				t.Errorf("%s/%s: exact certificate rejected: %v", b.Name, k.Name, err)
			}
			hc := sched.CertificateFromSchedule(hsch)
			hp, hm := sched.ExactModel(hsch.Loop, cfg, hOpts)
			if err := exact.Validate(hc, hp, hm); err != nil {
				t.Errorf("%s/%s: heuristic certificate rejected: %v", b.Name, k.Name, err)
			}

			// The exact schedule must still be executable.
			if _, err := vliw.NewProgram(esch); err != nil {
				t.Errorf("%s/%s: exact schedule rejected by simulator: %v", b.Name, k.Name, err)
			}

			if !c.Optimal {
				benchOptimal = false
			}
		}
		if benchOptimal {
			optimalBenches++
		}
	}
	if optimalBenches < 5 {
		t.Errorf("only %d suite benchmarks closed with proven-optimal certificates, want >= 5", optimalBenches)
	}
}

// TestExactBackendNameNormalization: an empty backend and the explicit "sms"
// name compile to byte-identical schedules — the default path is untouched.
func TestExactBackendNameNormalization(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := workload.Suite()[0]
	body := suiteLoop(t, &b.Kernels[0])

	def, err := sched.Compile(body, cfg, sched.Options{UseL0: true, PrefetchDistance: 1})
	if err != nil {
		t.Fatalf("default compile: %v", err)
	}
	named, err := sched.Compile(suiteLoop(t, &b.Kernels[0]), cfg,
		sched.Options{UseL0: true, PrefetchDistance: 1, Backend: sched.BackendSMS})
	if err != nil {
		t.Fatalf("sms compile: %v", err)
	}
	if !reflect.DeepEqual(def.Encode(), named.Encode()) {
		t.Fatalf("Backend \"\" and %q compile differently", sched.BackendSMS)
	}
	if def.Cert != nil {
		t.Fatalf("heuristic schedule unexpectedly carries a certificate")
	}
}

// TestUnknownBackendTypedError: an unrecognized scheduler name fails with the
// typed error that lists the valid backends — not a silent SMS fallback.
func TestUnknownBackendTypedError(t *testing.T) {
	b := workload.Suite()[0]
	body := suiteLoop(t, &b.Kernels[0])
	_, err := sched.Compile(body, arch.MICRO36Config(), sched.Options{UseL0: true, Backend: "simulated-annealing"})
	if err == nil {
		t.Fatal("unknown backend compiled without error")
	}
	var ube *sched.UnknownBackendError
	if !errors.As(err, &ube) {
		t.Fatalf("error %T is not *UnknownBackendError: %v", err, err)
	}
	if ube.Name != "simulated-annealing" {
		t.Errorf("error names backend %q", ube.Name)
	}
	for _, want := range sched.Backends() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list valid backend %q", err, want)
		}
	}
}

// TestExactCertificateRoundTrip: the certificate survives the schedule's wire
// encoding (JSON) and rebinds through DecodeSchedule unchanged.
func TestExactCertificateRoundTrip(t *testing.T) {
	cfg := arch.MICRO36Config()
	opts := sched.Options{UseL0: true, PrefetchDistance: 1, Backend: sched.BackendExact}
	b := workload.Suite()[0]
	sch, err := sched.Compile(suiteLoop(t, &b.Kernels[0]), cfg, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sch.Cert == nil {
		t.Fatal("no certificate on exact schedule")
	}
	blob, err := json.Marshal(sch.Encode())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var enc sched.EncodedSchedule
	if err := json.Unmarshal(blob, &enc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// DecodeSchedule rebinds against the pre-PSR loop, like the cache does.
	dec, err := sched.DecodeSchedule(&enc, suiteLoop(t, &b.Kernels[0]), cfg, opts)
	if err != nil {
		t.Fatalf("DecodeSchedule: %v", err)
	}
	if !reflect.DeepEqual(dec.Cert, sch.Cert) {
		t.Fatalf("certificate changed across encode/decode:\n%+v\nvs\n%+v", dec.Cert, sch.Cert)
	}
	p, m := sched.ExactModel(dec.Loop, cfg, opts)
	if err := exact.Validate(dec.Cert, p, m); err != nil {
		t.Fatalf("decoded certificate rejected: %v", err)
	}
}

// TestExactHeuristicPathsShareFigures: compiling with the exact backend never
// perturbs what the heuristic produces for the same input — the heuristic
// schedule embedded in the exact flow is the one the default path computes.
func TestExactHeuristicPathsShareFigures(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := workload.Suite()[0]
	for i := range b.Kernels {
		k := &b.Kernels[i]
		h, err := sched.Compile(suiteLoop(t, k), cfg, sched.Options{UseL0: true, PrefetchDistance: 1})
		if err != nil {
			t.Fatalf("%s heuristic: %v", k.Name, err)
		}
		e, err := sched.Compile(suiteLoop(t, k), cfg,
			sched.Options{UseL0: true, PrefetchDistance: 1, Backend: sched.BackendExact})
		if err != nil {
			t.Fatalf("%s exact: %v", k.Name, err)
		}
		if e.Cert.Optimal && e.II > h.II {
			t.Errorf("%s: optimal exact II %d above heuristic II %d", k.Name, e.II, h.II)
		}
		// When the search finds nothing better, the exact backend returns
		// the heuristic schedule itself, byte-for-byte.
		if e.II == h.II {
			ee, he := e.Encode(), h.Encode()
			ee.Cert = nil
			if !reflect.DeepEqual(ee, he) {
				t.Errorf("%s: exact backend at the heuristic II altered the schedule", k.Name)
			}
		}
	}
}
