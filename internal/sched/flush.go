package sched

import (
	"repro/internal/arch"
	"repro/internal/ir"
)

// NeedsInterLoopFlush reports whether re-entering this same schedule without
// flushing the L0 buffers could read stale data — the §4.1 inter-loop
// coherence analysis specialised to self-reinvocation (the common case of a
// loop called repeatedly from an outer loop).
//
// Re-running the identical schedule keeps every load and store in the same
// cluster as the previous invocation, so the intra-loop coherence argument
// extends across invocations if, for every array, each store that can write
// bytes a buffered load reads executes in the same cluster as that load:
//
//   - NL0 sets never cache, so they are trivially safe.
//   - 1C sets colocate their stores with their L0-latency loads, so the
//     store's PAR_ACCESS update keeps the only cached copy fresh.
//   - Stores whose set has no L0-using load never have a cached copy to
//     go stale (disambiguation puts any overlapping load in the same set).
//
// The one remaining hazard is interleaved pollution: an INTERLEAVED_MAP fill
// deposits lanes of the block into *every* cluster, so a store to that block
// in cluster c leaves stale lanes in the other clusters even under 1C. Those
// lanes are only ever read by loads of the same set (colocated with the
// store), so they are dead copies — but only as long as no *other* load of a
// different set reads the same array with L0 access from another cluster,
// which disambiguation already forbids (overlap ⇒ same set).
//
// The analysis therefore reduces to: flush iff some 1C or PSR set's store
// array is read with INTERLEAVED_MAP by a load of a *different* set — which
// the set construction makes impossible — or a PSR set exists whose stores
// were replicated (replicas invalidate remote copies each iteration, safe).
// The function still walks the schedule and checks the invariants instead of
// returning a constant, so violations in hand-built schedules are caught.
// FlushPlan implements the selective flushing §4.1 sketches ("the contents
// of the buffers could be flushed in some selectively chosen clusters
// depending on the data accessed by each cluster"): when execution moves
// from loop `prev` to loop `next`, only the clusters whose buffered arrays
// the next loop writes or reads-with-L0 need invalidating. Disjoint working
// sets — the common case between different kernels — need no flush at all.
// A nil next means "unknown code follows": every caching cluster flushes.
func FlushPlan(prev, next *Schedule) []int {
	cached := map[*ir.Array]map[int]bool{}
	for i := range prev.Placed {
		p := &prev.Placed[i]
		if p.Instr.Op != ir.OpLoad || !p.UseL0 {
			continue
		}
		a := p.Instr.Mem.Array
		if cached[a] == nil {
			cached[a] = map[int]bool{}
		}
		cached[a][p.Cluster] = true
		if p.Hints.Map == arch.InterleavedMap {
			// Interleaved fills scatter lanes everywhere.
			for c := 0; c < prev.Cfg.Clusters; c++ {
				cached[a][c] = true
			}
		}
	}
	if len(cached) == 0 {
		return nil
	}
	flush := map[int]bool{}
	if next == nil {
		//lint:allow maprange order-independent union into a membership set; emission below walks cluster index order
		for _, cls := range cached {
			//lint:allow maprange order-independent union into a membership set
			for c := range cls {
				flush[c] = true
			}
		}
	} else {
		for i := range next.Placed {
			p := &next.Placed[i]
			if !p.Instr.Op.IsMemRef() {
				continue
			}
			// A store in the next loop makes any buffered copy of
			// the array stale; an L0 load must not see a stale copy
			// either (the previous loop's stores ran elsewhere).
			touches := p.Instr.Op == ir.OpStore || p.UseL0
			if !touches {
				continue
			}
			//lint:allow maprange order-independent union into a membership set; emission below walks cluster index order
			for c := range cached[p.Instr.Mem.Array] {
				flush[c] = true
			}
		}
	}
	out := make([]int, 0, len(flush))
	for c := 0; c < prev.Cfg.Clusters; c++ {
		if flush[c] {
			out = append(out, c)
		}
	}
	return out
}

func NeedsInterLoopFlush(sch *Schedule) bool {
	// Collect, per array, the clusters of L0-caching loads and of stores.
	loadClusters := map[*ir.Array]map[int]bool{}
	interleavedArrays := map[*ir.Array]bool{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpLoad || !p.UseL0 {
			continue
		}
		a := p.Instr.Mem.Array
		if loadClusters[a] == nil {
			loadClusters[a] = map[int]bool{}
		}
		loadClusters[a][p.Cluster] = true
		if p.Hints.Map == arch.InterleavedMap {
			interleavedArrays[a] = true
		}
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpStore {
			continue
		}
		a := p.Instr.Mem.Array
		lc := loadClusters[a]
		if len(lc) == 0 {
			continue // nothing cached from this array
		}
		// Interleaved fills scatter the store's block everywhere; the
		// stale remote lanes are dead only while all the array's
		// L0 loads stay in the store's cluster.
		if interleavedArrays[a] {
			if len(lc) > 1 || !lc[p.Cluster] {
				return true
			}
			continue
		}
		// Linear caching: every caching cluster must be the store's.
		if len(lc) > 1 || !lc[p.Cluster] {
			return true
		}
	}
	return false
}
