package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ir"
)

// RenderKernelGrid writes the steady-state kernel as a grid: one row per
// cycle of the II, one column per cluster, each cell listing the operations
// issued there (with * marking loads that use the L0 buffer and p marking
// explicit prefetches). This is the view a VLIW engineer reads schedules in.
func RenderKernelGrid(w io.Writer, sch *Schedule) {
	clusters := sch.Cfg.Clusters
	cells := make([][][]string, sch.II)
	for r := range cells {
		cells[r] = make([][]string, clusters)
	}
	add := func(row, cluster int, s string) {
		cells[row][cluster] = append(cells[row][cluster], s)
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		name := p.Instr.Name
		if name == "" {
			name = p.Instr.Op.String()
		}
		if p.Instr.Op == ir.OpLoad && p.UseL0 {
			name += "*"
		}
		add(p.Cycle%sch.II, p.Cluster, name)
	}
	for i := range sch.Prefetches {
		pf := &sch.Prefetches[i]
		served := sch.Placed[pf.For].Instr.Name
		add(pf.Cycle%sch.II, pf.Cluster, "p("+served+")")
	}

	width := 10
	for r := range cells {
		for c := range cells[r] {
			sort.Strings(cells[r][c])
			if n := len(strings.Join(cells[r][c], " ")); n > width {
				width = n
			}
		}
	}

	fmt.Fprintf(w, "kernel of %q: II=%d SC=%d span=%d\n", sch.Loop.Name, sch.II, sch.SC, sch.Span())
	fmt.Fprintf(w, "%4s", "")
	for c := 0; c < clusters; c++ {
		fmt.Fprintf(w, " | %-*s", width, fmt.Sprintf("cluster %d", c))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 4+(width+3)*clusters))
	for r := 0; r < sch.II; r++ {
		fmt.Fprintf(w, "%3d ", r)
		for c := 0; c < clusters; c++ {
			fmt.Fprintf(w, " | %-*s", width, strings.Join(cells[r][c], " "))
		}
		fmt.Fprintln(w)
	}
	if len(sch.Comms) > 0 {
		rows := make([]string, 0, len(sch.Comms))
		for _, cm := range sch.Comms {
			prod := sch.Loop.Instrs[cm.Producer].Name
			if prod == "" {
				prod = fmt.Sprintf("#%d", cm.Producer)
			}
			rows = append(rows, fmt.Sprintf("%s@row%d", prod, cm.Cycle%sch.II))
		}
		sort.Strings(rows)
		fmt.Fprintf(w, "bus: %s\n", strings.Join(rows, " "))
	}
}
