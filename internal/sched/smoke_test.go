package sched

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/unroll"
)

// vecAdd builds the §3.1 example: a[i] = b[i] + C over 2-byte elements.
func vecAdd(trip int64) *ir.Loop {
	b := ir.NewBuilder("vecadd", trip)
	src := b.Array("b", 8192, 2)
	dst := b.Array("a", 8192, 2)
	v := b.Load("ld_b", src, 0, 2, 2)
	sum := b.Int("add", v)
	b.Store("st_a", dst, 0, 2, 2, sum)
	return b.Build()
}

func TestCompileBase(t *testing.T) {
	cfg := arch.MICRO36Config().WithL0Entries(0)
	sch, err := Compile(vecAdd(1024), cfg, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sch.II < 1 {
		t.Fatalf("II = %d, want >= 1", sch.II)
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.Latency != cfg.L1Latency {
			t.Errorf("BASE load latency = %d, want %d", p.Latency, cfg.L1Latency)
		}
		if p.UseL0 {
			t.Errorf("BASE schedule marked %v to use L0", p.Instr)
		}
		if p.Instr.Op.IsMemRef() && p.Hints.Access != arch.NoAccess {
			t.Errorf("BASE hint = %v, want NO_ACCESS", p.Hints.Access)
		}
	}
}

func TestCompileL0MarksLoads(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch, err := Compile(vecAdd(1024), cfg, Options{UseL0: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var l0Loads int
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.UseL0 {
			l0Loads++
			if p.Latency != cfg.L0Latency {
				t.Errorf("L0 load latency = %d, want %d", p.Latency, cfg.L0Latency)
			}
			if p.Hints.Access == arch.NoAccess {
				t.Errorf("L0 load has NO_ACCESS hint")
			}
		}
	}
	if l0Loads == 0 {
		t.Fatalf("no load scheduled with the L0 latency")
	}
	t.Logf("schedule:\n%s", sch)
}

func TestCompileUnrolledInterleave(t *testing.T) {
	cfg := arch.MICRO36Config()
	ul, err := unroll.ByFactor(vecAdd(1024), 4)
	if err != nil {
		t.Fatalf("unroll: %v", err)
	}
	sch, err := Compile(ul, cfg, Options{UseL0: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	interleaved := 0
	clusters := map[int]bool{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.UseL0 {
			if p.Hints.Map == arch.InterleavedMap {
				interleaved++
				clusters[p.Cluster] = true
			}
		}
	}
	if interleaved != 4 {
		t.Fatalf("interleaved loads = %d, want 4\n%s", interleaved, sch)
	}
	if len(clusters) != 4 {
		t.Errorf("interleaved copies in %d distinct clusters, want 4\n%s", len(clusters), sch)
	}
}

func TestPipelineChoosesUnroll(t *testing.T) {
	cfg := arch.MICRO36Config()
	c, err := Pipeline(vecAdd(1024), cfg, Options{UseL0: true})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	if c.Factor != 4 {
		t.Errorf("unroll factor = %d, want 4 for a resource-bound vector loop", c.Factor)
	}
}
