package sched

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/unroll"
)

// ChooseUnrollFactor implements scheduling step 1 (§4.3): the compiler picks
// between no unrolling and unrolling by the cluster count, choosing the
// factor that minimises statically-estimated compute time (II per original
// iteration). Following §5.1, the decision is made on the BASE architecture
// (unified L1, no L0 buffers) and reused for every architecture so that
// cross-architecture comparisons are not biased by different unrolling.
//
// Ties are broken by the loop's limiting constraint: resource-bound loops
// unroll (the wider body balances work over the clusters), recurrence-bound
// loops stay rolled (the recurrence scales with the body and unrolling only
// inflates code).
func ChooseUnrollFactor(l *ir.Loop, cfg arch.Config) int {
	n := cfg.Clusters
	if n <= 1 || l.TripCount < 2*int64(n) {
		return 1
	}
	base := cfg.WithL0Entries(0)
	opts := Options{UseL0: false}

	s1, err1 := Compile(l.Clone(), base, opts)
	ul, err := unroll.ByFactor(l, n)
	if err != nil {
		return 1
	}
	sN, errN := Compile(ul, base, opts)
	switch {
	case err1 != nil && errN != nil:
		return 1
	case err1 != nil:
		return n
	case errN != nil:
		return 1
	}
	cost1 := s1.II * n // per n original iterations
	costN := sN.II
	if costN < cost1 {
		return n
	}
	if costN > cost1 {
		return 1
	}
	// Tie: unroll unless a recurrence is the limiting constraint.
	als := alias.Analyze(l)
	g := ddg.Build(l, ddg.DefaultLatencies(base.L1Latency), als.Edges)
	if g.RecMII() >= g.ResMII(base) && g.RecMII() > 1 {
		return 1
	}
	return n
}

// Compiled bundles the outcome of the full pipeline for one loop on one
// architecture.
type Compiled struct {
	Schedule *Schedule
	// Factor is the unroll factor chosen in step 1.
	Factor int
}

// Pipeline runs the complete scheduling pipeline of §4.3 on an original
// (non-unrolled) loop: choose the unroll factor, unroll, and modulo-schedule
// with the given options. The same factor is chosen regardless of options so
// that architecture comparisons isolate the effect of the L0 buffers.
func Pipeline(l *ir.Loop, cfg arch.Config, opts Options) (*Compiled, error) {
	factor := ChooseUnrollFactor(l, cfg)
	ul := l
	if factor > 1 {
		var err error
		ul, err = unroll.ByFactor(l, factor)
		if err != nil {
			return nil, fmt.Errorf("sched: unrolling %q by %d: %w", l.Name, factor, err)
		}
	} else {
		ul = l.Clone()
	}
	sch, err := Compile(ul, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{Schedule: sch, Factor: factor}, nil
}
