package sched

import (
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
)

// mrt is the modulo reservation table: per schedule row (cycle mod II), the
// functional units in use per cluster and the inter-cluster buses in use.
type mrt struct {
	ii  int
	cfg arch.Config
	// units[row][cluster][kind] = slots in use.
	units [][][arch.NumUnitKinds]int
	// bus[row] = buses in use.
	bus []int
	// occupancy[cluster] = total reserved unit slots, for load balancing.
	occupancy []int
}

func newMRT(ii int, cfg arch.Config) *mrt {
	m := &mrt{
		ii:        ii,
		cfg:       cfg,
		units:     make([][][arch.NumUnitKinds]int, ii),
		bus:       make([]int, ii),
		occupancy: make([]int, cfg.Clusters),
	}
	for r := range m.units {
		m.units[r] = make([][arch.NumUnitKinds]int, cfg.Clusters)
	}
	return m
}

// unitFree reports whether a unit of the given kind is free in cluster at
// the flat cycle.
func (m *mrt) unitFree(cycle, cluster int, kind arch.UnitKind) bool {
	row := mod(cycle, m.ii)
	return m.units[row][cluster][kind] < m.cfg.UnitsPerCluster[kind]
}

func (m *mrt) reserveUnit(cycle, cluster int, kind arch.UnitKind) {
	row := mod(cycle, m.ii)
	m.units[row][cluster][kind]++
	m.occupancy[cluster]++
}

// busFree reports whether a bus is free for the CommLatency cycles starting
// at the flat cycle, accounting for transfers already holding rows.
func (m *mrt) busFree(cycle int, extra map[int]int) bool {
	for k := 0; k < m.cfg.CommLatency; k++ {
		row := mod(cycle+k, m.ii)
		if m.bus[row]+extra[row] >= m.cfg.CommBuses {
			return false
		}
	}
	return true
}

func (m *mrt) reserveBus(cycle int) {
	for k := 0; k < m.cfg.CommLatency; k++ {
		m.bus[mod(cycle+k, m.ii)]++
	}
}

// holdRows records a tentative bus reservation into extra (used while
// evaluating one placement before committing).
func holdRows(extra map[int]int, cycle, commLat, ii int) {
	for k := 0; k < commLat; k++ {
		extra[mod(cycle+k, ii)]++
	}
}

func mod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// unitKindOf is a thin wrapper so the scheduler never switches on opcodes
// directly.
func unitKindOf(op ir.Opcode) arch.UnitKind { return ddg.UnitFor(op) }
