package sched

import (
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
)

// mrt is the modulo reservation table: per schedule row (cycle mod II), the
// functional units in use per cluster and the inter-cluster buses in use.
// The unit table is a flat slice (row-major by row, then cluster) so the
// placement inner loops stay in one allocation.
type mrt struct {
	ii  int
	cfg arch.Config
	// units[row*clusters+cluster][kind] = slots in use.
	units [][arch.NumUnitKinds]int
	// bus[row] = buses in use.
	bus []int
	// occupancy[cluster] = total reserved unit slots, for load balancing.
	occupancy []int
}

// reset re-dimensions the table for a new II attempt, reusing the backing
// arrays across the II search.
func (m *mrt) reset(ii int, cfg arch.Config) {
	m.ii = ii
	m.cfg = cfg
	m.units = resizeFilled(m.units, ii*cfg.Clusters, [arch.NumUnitKinds]int{})
	m.bus = resizeFilled(m.bus, ii, 0)
	m.occupancy = resizeFilled(m.occupancy, cfg.Clusters, 0)
}

// unitFree reports whether a unit of the given kind is free in cluster at
// the flat cycle.
func (m *mrt) unitFree(cycle, cluster int, kind arch.UnitKind) bool {
	row := mod(cycle, m.ii)
	return m.units[row*m.cfg.Clusters+cluster][kind] < m.cfg.UnitsPerCluster[kind]
}

func (m *mrt) reserveUnit(cycle, cluster int, kind arch.UnitKind) {
	row := mod(cycle, m.ii)
	m.units[row*m.cfg.Clusters+cluster][kind]++
	m.occupancy[cluster]++
}

func (m *mrt) releaseUnit(cycle, cluster int, kind arch.UnitKind) {
	row := mod(cycle, m.ii)
	m.units[row*m.cfg.Clusters+cluster][kind]--
	m.occupancy[cluster]--
}

// busFree reports whether a bus is free for the CommLatency cycles starting
// at the flat cycle, accounting for transfers already holding rows (extra is
// a dense per-row hold count, len == ii).
func (m *mrt) busFree(cycle int, extra []int) bool {
	for k := 0; k < m.cfg.CommLatency; k++ {
		row := mod(cycle+k, m.ii)
		if m.bus[row]+extra[row] >= m.cfg.CommBuses {
			return false
		}
	}
	return true
}

func (m *mrt) reserveBus(cycle int) {
	for k := 0; k < m.cfg.CommLatency; k++ {
		m.bus[mod(cycle+k, m.ii)]++
	}
}

// holdRows records a tentative bus reservation into the dense extra table
// (used while evaluating one placement before committing).
func holdRows(extra []int, cycle, commLat, ii int) {
	for k := 0; k < commLat; k++ {
		extra[mod(cycle+k, ii)]++
	}
}

func mod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// unitKindOf is a thin wrapper so the scheduler never switches on opcodes
// directly.
func unitKindOf(op ir.Opcode) arch.UnitKind { return ddg.UnitFor(op) }
