package sched

import (
	"repro/internal/arch"
	"repro/internal/ir"
)

// assignHints implements scheduling step 4 (§4.3): attach access, mapping
// and prefetch hints to every scheduled memory instruction.
func assignHints(sch *Schedule, s *state) {
	for i := range sch.Placed {
		p := &sch.Placed[i]
		in := p.Instr
		if !in.Op.IsMemRef() {
			continue
		}
		switch in.Op {
		case ir.OpLoad:
			assignLoadHints(sch, s, p)
		case ir.OpStore:
			assignStoreHints(sch, s, p)
		}
	}
	electGroupPrefetchers(sch, s)
}

func assignLoadHints(sch *Schedule, s *state, p *Placed) {
	in := p.Instr
	if !p.UseL0 {
		p.Hints = arch.Hints{Access: arch.NoAccess}
		return
	}
	h := arch.Hints{PrefetchDistance: prefetchDistanceFor(sch, s, in)}

	// Mapping hint: copies of an unrolled unit-stride load interleave
	// (each copy's elements land in its own cluster); everything else
	// maps linearly.
	if interleaveEligible(sch.Loop, in, sch.Cfg) {
		h.Map = arch.InterleavedMap
	} else {
		h.Map = arch.LinearMap
	}

	// Access hint: SEQ whenever the cluster's L1 bus is provably free on
	// the cycle after the access (no other memory operation in the same
	// cluster one row later), PAR otherwise.
	if memRowFreeForSeq(sch, p) {
		h.Access = arch.SeqAccess
	} else {
		h.Access = arch.ParAccess
	}

	// Prefetch hint: sequential walks are covered by the automatic
	// next/previous-subblock trigger. Interleaved groups elect a single
	// prefetching member afterwards (electGroupPrefetchers).
	if h.Map == arch.LinearMap {
		st := in.Mem.Stride
		switch {
		case st == 0:
			h.Prefetch = arch.NoPrefetch
		case st == int64(in.Mem.Width):
			h.Prefetch = arch.Positive
		case st == -int64(in.Mem.Width):
			h.Prefetch = arch.Negative
		default:
			h.Prefetch = arch.NoPrefetch // step 5 may add an explicit prefetch
		}
	}
	p.Hints = h
}

// assignStoreHints marks stores that must keep the local L0 buffer coherent:
// stores of a 1C set and primary PSR replicas access L0 and L1 in parallel
// (write-through, no allocate); every other store goes straight to L1.
// Non-primary PSR replicas are invalidation-only.
func assignStoreHints(sch *Schedule, s *state, p *Placed) {
	in := p.Instr
	si := s.als.SetOf[in.ID]
	h := arch.Hints{Access: arch.NoAccess}
	if si >= 0 {
		switch sch.SetScheme[si] {
		case Scheme1C:
			h.Access = arch.ParAccess
			p.UseL0 = true
		case SchemePSR:
			if in.PrimaryReplica {
				h.Access = arch.ParAccess
				h.Primary = true
				p.UseL0 = true
			}
		}
	}
	p.Hints = h
}

// memRowFreeForSeq reports whether no other memory operation issues in p's
// cluster on the row after p (the SEQ_ACCESS legality rule of §3.2: the
// L0-miss forward to L1 needs the cluster's bus on the next cycle).
func memRowFreeForSeq(sch *Schedule, p *Placed) bool {
	row := (p.Cycle + 1) % sch.II
	for i := range sch.Placed {
		q := &sch.Placed[i]
		if q.Instr.ID == p.Instr.ID {
			if sch.II == 1 {
				return false // the load itself owns every row
			}
			continue
		}
		if q.Cluster == p.Cluster && q.Instr.Op.IsMem() && q.Cycle%sch.II == row {
			return false
		}
	}
	for i := range sch.Prefetches {
		pf := &sch.Prefetches[i]
		if pf.Cluster == p.Cluster && pf.Cycle%sch.II == row {
			return false
		}
	}
	return true
}

// electGroupPrefetchers keeps exactly one prefetching member per interleaved
// group: all copies walk the same L1 block, so one POSITIVE/NEGATIVE hint
// fetches and scatters the next block for everyone (§4.3 step 4). The
// earliest-scheduled L0 copy is elected.
func electGroupPrefetchers(sch *Schedule, s *state) {
	type key struct{ orig int }
	best := map[key]*Placed{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpLoad || !p.UseL0 || p.Hints.Map != arch.InterleavedMap {
			continue
		}
		k := key{p.Instr.OrigID}
		if b, ok := best[k]; !ok || p.Cycle < b.Cycle || (p.Cycle == b.Cycle && p.Instr.ID < b.Instr.ID) {
			best[k] = p
		}
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpLoad || !p.UseL0 || p.Hints.Map != arch.InterleavedMap {
			continue
		}
		if best[key{p.Instr.OrigID}] == p {
			if p.Instr.Mem.Stride >= 0 {
				p.Hints.Prefetch = arch.Positive
			} else {
				p.Hints.Prefetch = arch.Negative
			}
		} else {
			p.Hints.Prefetch = arch.NoPrefetch
		}
	}
}

// insertExplicitPrefetches implements scheduling step 5: loads that use the
// buffers but whose stride is not covered by the automatic prefetch hints
// (column walks and other non-unit strides) get a software prefetch
// instruction in the same cluster, if a memory slot is free; the prefetch
// brings the subblock the load will touch Distance iterations later and maps
// it linearly.
func insertExplicitPrefetches(sch *Schedule, s *state) {
	for i := range sch.Placed {
		p := &sch.Placed[i]
		in := p.Instr
		if in.Op != ir.OpLoad || !p.UseL0 || p.Hints.Access == arch.NoAccess {
			continue
		}
		if hintCovered(p) {
			continue
		}
		// Find a free memory slot in the same cluster, searching the
		// rows after the load first so the prefetch overlaps the next
		// iteration's latency.
		placedAt := -1
		for dt := 1; dt <= sch.II; dt++ {
			t := p.Cycle + dt
			if s.m.unitFree(t, p.Cluster, arch.UnitMem) {
				placedAt = t
				break
			}
		}
		if placedAt < 0 {
			continue // not enough resources: skip (paper)
		}
		s.m.reserveUnit(placedAt, p.Cluster, arch.UnitMem)
		sch.Prefetches = append(sch.Prefetches, Prefetch{
			For:      in.ID,
			Cluster:  p.Cluster,
			Cycle:    placedAt,
			Distance: prefetchDistanceFor(sch, s, in),
		})
	}
}

// prefetchDistanceFor returns the prefetch distance for one load: the fixed
// option value, or — with AdaptivePrefetchDistance — the smallest distance
// whose lead time (accesses-per-subblock × II per subblock of distance)
// covers the L1 round trip, capped at 4 subblocks to bound buffer pressure.
func prefetchDistanceFor(sch *Schedule, s *state, in *ir.Instr) int {
	if !s.opts.AdaptivePrefetchDistance {
		return s.opts.PrefetchDistance
	}
	const maxDistance = 4
	// Accesses per subblock of this load's stream. Interleaved groups
	// walk their lane at element granularity regardless of the unrolled
	// byte stride.
	k := 1
	if interleaveEligible(sch.Loop, in, sch.Cfg) {
		k = sch.Cfg.L0SubblockBytes / in.Mem.Width
	} else if st := abs64(in.Mem.Stride); st > 0 && st < int64(sch.Cfg.L0SubblockBytes) {
		k = int(int64(sch.Cfg.L0SubblockBytes) / st)
	}
	lead := k * sch.II // cycles bought per subblock of distance
	need := 1 + sch.Cfg.L1Latency + sch.Cfg.InterleavePenalty
	d := 1
	for d*lead < need && d < maxDistance {
		d++
	}
	return d
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// hintCovered reports whether the automatic prefetch hints keep the load's
// subblock stream resident: sequential walks (stride 0/±1 elements) and
// interleaved groups are covered; other strides need explicit prefetching.
func hintCovered(p *Placed) bool {
	if p.Hints.Map == arch.InterleavedMap {
		return true
	}
	st := p.Instr.Mem.Stride
	if st < 0 {
		st = -st
	}
	return st == 0 || st == int64(p.Instr.Mem.Width)
}

// revalidateSeqHints demotes SEQ_ACCESS loads whose next-cycle bus guarantee
// was broken by a later-inserted explicit prefetch.
func revalidateSeqHints(sch *Schedule) {
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.Hints.Access == arch.SeqAccess && !memRowFreeForSeq(sch, p) {
			p.Hints.Access = arch.ParAccess
		}
	}
}
