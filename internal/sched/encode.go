// Stable schedule encoding: a pointer-free, versioned form of Schedule that
// can be serialized (the schedule cache's persistence format) and bound back
// to a freshly rebuilt loop. Compilation is deterministic, so a schedule is
// fully described by its per-instruction placements plus the comm/prefetch
// plans — the loop itself is reconstructed by the consumer (workload kernels
// are pure builders) and only referenced here by instruction ID.

package sched

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sms/exact"
)

// EncodedPlaced is the pointer-free form of one Placed entry. The instruction
// is implicit: EncodedSchedule.Placed is indexed by instruction ID exactly
// like Schedule.Placed.
type EncodedPlaced struct {
	Cluster int        `json:"cluster"`
	Cycle   int        `json:"cycle"`
	Latency int        `json:"latency"`
	UseL0   bool       `json:"use_l0,omitempty"`
	Hints   arch.Hints `json:"hints"`
}

// EncodingVersion identifies the EncodedSchedule layout itself, independent
// of the snapshot container that carries it (harness.CacheFormatVersion).
// Bump it when the encoding's meaning changes — a field is reinterpreted,
// placements gain a dimension, a plan type changes shape — so a consumer
// holding a stale encoding rejects it at decode instead of binding it to a
// loop it no longer describes. Containers from before the stamp existed
// declare it on the records they carry (see ImportScheduleCache's v1 path).
const EncodingVersion = 1

// EncodedSchedule is the stable wire form of a Schedule. Comms, Prefetches,
// SetScheme and SetHome are plain value types and travel verbatim.
type EncodedSchedule struct {
	Version    int               `json:"v"`
	II         int               `json:"ii"`
	SC         int               `json:"sc"`
	Placed     []EncodedPlaced   `json:"placed"`
	Comms      []Comm            `json:"comms,omitempty"`
	Prefetches []Prefetch        `json:"prefetches,omitempty"`
	SetScheme  []CoherenceScheme `json:"set_scheme,omitempty"`
	SetHome    []int             `json:"set_home,omitempty"`
	// Cert carries the exact backend's certificate; absent on heuristic
	// schedules, so pre-existing encodings decode unchanged (the field is
	// additive — EncodingVersion stays 1).
	Cert *exact.Certificate `json:"cert,omitempty"`
}

// Encode strips the schedule down to its stable form.
func (s *Schedule) Encode() *EncodedSchedule {
	e := &EncodedSchedule{
		Version: EncodingVersion,
		II:      s.II, SC: s.SC,
		Placed:     make([]EncodedPlaced, len(s.Placed)),
		Comms:      append([]Comm(nil), s.Comms...),
		Prefetches: append([]Prefetch(nil), s.Prefetches...),
		SetScheme:  append([]CoherenceScheme(nil), s.SetScheme...),
		SetHome:    append([]int(nil), s.SetHome...),
		Cert:       s.Cert,
	}
	for i := range s.Placed {
		p := &s.Placed[i]
		e.Placed[i] = EncodedPlaced{
			Cluster: p.Cluster, Cycle: p.Cycle, Latency: p.Latency,
			UseL0: p.UseL0, Hints: p.Hints,
		}
	}
	return e
}

// DecodeSchedule binds an encoded schedule back to a loop built the same way
// the original compilation built it (same kernel builder, same addresses,
// same unroll factor). Compile rewrites the loop for partial store
// replication before scheduling, so the decoder applies the identical
// rewrite when the options call for it — callers pass the pre-PSR loop.
//
// Decoding validates structural invariants (placement count, cluster and
// cycle ranges, comm/prefetch instruction references, coherence-set array
// lengths) so a stale or corrupted encoding is rejected instead of producing
// a schedule the simulator would misexecute.
func DecodeSchedule(e *EncodedSchedule, loop *ir.Loop, cfg arch.Config, opts Options) (*Schedule, error) {
	if e.Version != EncodingVersion {
		return nil, fmt.Errorf("sched: decode: encoding version %d, want %d", e.Version, EncodingVersion)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	if err := loop.Validate(); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	if opts.AllowPSR && opts.UseL0 {
		loop = applyPSR(loop, cfg)
	}
	if e.II < 1 || e.SC < 1 {
		return nil, fmt.Errorf("sched: decode %q: invalid II=%d SC=%d", loop.Name, e.II, e.SC)
	}
	if len(e.Placed) != len(loop.Instrs) {
		return nil, fmt.Errorf("sched: decode %q: %d placements for %d instructions",
			loop.Name, len(e.Placed), len(loop.Instrs))
	}
	if len(e.SetHome) != len(e.SetScheme) {
		return nil, fmt.Errorf("sched: decode %q: %d set homes for %d set schemes",
			loop.Name, len(e.SetHome), len(e.SetScheme))
	}
	if e.Cert != nil && len(e.Cert.Ops) != len(loop.Instrs) {
		return nil, fmt.Errorf("sched: decode %q: certificate covers %d ops for %d instructions",
			loop.Name, len(e.Cert.Ops), len(loop.Instrs))
	}
	s := &Schedule{
		Loop: loop, Cfg: cfg, II: e.II, SC: e.SC,
		Placed:     make([]Placed, len(e.Placed)),
		Comms:      append([]Comm(nil), e.Comms...),
		Prefetches: append([]Prefetch(nil), e.Prefetches...),
		SetScheme:  append([]CoherenceScheme(nil), e.SetScheme...),
		SetHome:    append([]int(nil), e.SetHome...),
		Cert:       e.Cert,
	}
	for i, p := range e.Placed {
		if p.Cluster < 0 || p.Cluster >= cfg.Clusters {
			return nil, fmt.Errorf("sched: decode %q: instr %d placed on cluster %d of %d",
				loop.Name, i, p.Cluster, cfg.Clusters)
		}
		if p.Cycle < 0 || p.Latency < 1 {
			return nil, fmt.Errorf("sched: decode %q: instr %d has cycle %d latency %d",
				loop.Name, i, p.Cycle, p.Latency)
		}
		s.Placed[i] = Placed{
			Instr: loop.Instrs[i], Cluster: p.Cluster, Cycle: p.Cycle,
			Latency: p.Latency, UseL0: p.UseL0, Hints: p.Hints,
		}
	}
	for _, c := range s.Comms {
		if c.Producer < 0 || c.Producer >= len(loop.Instrs) || c.Cycle < 0 {
			return nil, fmt.Errorf("sched: decode %q: comm references instr %d at cycle %d",
				loop.Name, c.Producer, c.Cycle)
		}
	}
	for _, pf := range s.Prefetches {
		if pf.For < 0 || pf.For >= len(loop.Instrs) || pf.Cluster < 0 || pf.Cluster >= cfg.Clusters || pf.Cycle < 0 {
			return nil, fmt.Errorf("sched: decode %q: prefetch for instr %d on cluster %d at cycle %d",
				loop.Name, pf.For, pf.Cluster, pf.Cycle)
		}
	}
	return s, nil
}
