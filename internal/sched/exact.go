// Exact-backend integration: Compile's backend dispatch targets, the model
// builder that translates a loop + config into the exact solver's Problem /
// Machine form, and the construction of a full Schedule (hints, prefetches,
// coherence schemes) from a realized exact assignment. The solver itself
// lives in internal/sms/exact; this file owns the mapping in both directions
// so certificates of either backend can be checked by the same validator.

package sched

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/sms/exact"
)

// Scheduler backend names accepted by Options.Backend.
const (
	// BackendSMS is the swing-modulo-scheduling heuristic (the default;
	// an empty Options.Backend selects it too).
	BackendSMS = "sms"
	// BackendExact is the branch-and-bound exact scheduler: it runs the
	// heuristic first, proves a lower bound on the II, searches for a
	// better schedule, and attaches a machine-checkable certificate.
	BackendExact = "exact"
)

// Backends lists the valid Options.Backend values.
func Backends() []string { return []string{BackendSMS, BackendExact} }

// UnknownBackendError reports an Options.Backend value Compile does not
// recognize. It is a typed error so serving layers can map it to a client
// error (HTTP 400) listing the valid backends instead of a server fault.
type UnknownBackendError struct {
	Name string
}

func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("sched: unknown scheduler backend %q (valid: %s)", e.Name, strings.Join(Backends(), ", "))
}

// compileExact is the `-sched exact` entry point. It always runs the
// heuristic first — its schedule is the incumbent and its II the upper bound
// — then proves a lower bound by exhausting IIs below it and, when the bound
// sits strictly below the heuristic, searches for a schedule achieving it.
// The returned schedule (heuristic or improved) carries a Certificate with
// the proof trail.
func compileExact(loop *ir.Loop, cfg arch.Config, opts Options) (*Schedule, error) {
	if opts.LoadLatencyFn != nil || opts.PreferredClusterFn != nil {
		return nil, fmt.Errorf("sched: the exact backend does not support per-run latency/cluster callbacks")
	}
	if opts.PrefetchDistance <= 0 {
		opts.PrefetchDistance = 1
	}
	heurOpts := opts
	heurOpts.Backend = BackendSMS
	hsch, err := compileHeuristic(loop, cfg, heurOpts)
	if err != nil {
		return nil, err
	}

	// hsch.Loop is the model loop (Compile rewrites for PSR before
	// scheduling); the exact model must describe the same instructions.
	mloop := hsch.Loop
	als := alias.Analyze(mloop)
	p, m := exactModel(mloop, cfg, opts, als)

	// PSR replica stores must occupy distinct clusters — a constraint the
	// realize search does not model, so under PSR the call only proves
	// the lower bound and the heuristic schedule is kept.
	noRealize := false
	for _, in := range mloop.Instrs {
		if in.ReplicaGroup != 0 {
			noRealize = true
			break
		}
	}

	res, err := exact.Solve(opts.Ctx, p, m, hsch.II, exact.Options{
		Budget:    opts.ExactBudget,
		Progress:  opts.ExactProgress,
		NoRealize: noRealize,
	})
	if err != nil {
		return nil, fmt.Errorf("sched: exact backend: %w", err)
	}

	sch := hsch
	trail := res.Trail
	if res.Found != nil {
		if built, ok := buildExactSchedule(mloop, cfg, opts, als, res.Found); ok {
			sch = built
		} else {
			// The improved schedule exceeds the register budget the
			// options impose; keep the heuristic schedule and record
			// honestly that the bound was not achieved.
			trail = append(trail, exact.ProofStep{II: res.Found.II, Outcome: exact.OutcomeRegFile})
		}
	}
	cert := CertificateFromSchedule(sch)
	cert.Backend = BackendExact
	cert.LowerBound = res.LowerBound
	cert.Optimal = res.Complete && sch.II == res.LowerBound
	cert.Nodes = res.Nodes
	cert.Trail = trail
	sch.Cert = cert
	return sch, nil
}

// ExactModel builds the exact solver's view of a compilation: one Problem op
// per instruction of the *model* loop (Schedule.Loop — after any PSR
// rewrite) and the Machine resource envelope the options imply. Tests and
// CLIs use it to validate certificates independently.
func ExactModel(loop *ir.Loop, cfg arch.Config, opts Options) (*exact.Problem, exact.Machine) {
	als := alias.Analyze(loop)
	return exactModel(loop, cfg, opts, als)
}

func exactModel(loop *ir.Loop, cfg arch.Config, opts Options, als *alias.Result) (*exact.Problem, exact.Machine) {
	g := ddg.Build(loop, initialLatency(cfg, Options{UseL0: opts.UseL0, MarkAllCandidates: opts.MarkAllCandidates}), als.Edges)
	p := &exact.Problem{Ops: make([]exact.Op, len(loop.Instrs))}
	for i, in := range loop.Instrs {
		op := exact.Op{Kind: unitKindOf(in.Op), Lat: in.Op.DefaultLatency(), L0Lat: cfg.L0Latency}
		if in.Op == ir.OpLoad {
			op.Lat = cfg.L1Latency
			op.CanL0 = opts.UseL0 && cfg.HasL0() && in.IsCandidate() &&
				in.Mem != nil && in.Mem.Width <= cfg.L0SubblockBytes
			if op.CanL0 {
				// The realized schedule keeps load+store alias sets out
				// of the buffers (the NL0 coherence treatment), so only
				// loads of pure-load sets may be searched with the L0
				// latency. CanL0 stays relaxed: the heuristic's 1C sets
				// legitimately schedule such loads against L0.
				si := als.SetOf[in.ID]
				op.SearchL0 = si < 0 || !als.SetHasLoadAndStore(loop, si)
			}
		}
		p.Ops[i] = op
	}
	for _, e := range g.Edges {
		pe := exact.Edge{From: e.From, To: e.To, Dist: e.Distance}
		if e.Kind == ddg.DepMem {
			pe.Mem = true
			pe.Lat = e.FixedLat
		}
		p.Edges = append(p.Edges, pe)
	}
	m := exact.Machine{
		Clusters:    cfg.Clusters,
		Units:       cfg.UnitsPerCluster,
		CommBuses:   cfg.CommBuses,
		CommLatency: cfg.CommLatency,
	}
	if opts.UseL0 && cfg.HasL0() {
		if opts.MarkAllCandidates {
			// The ablation schedules every candidate with the L0 latency
			// and lets the buffers overflow at run time: no entry budget
			// constrains the schedule.
			m.L0Entries = arch.Unbounded
		} else {
			m.L0Entries = cfg.L0Entries
		}
	}
	return p, m
}

// CertificateFromSchedule re-expresses a schedule in certificate form so the
// independent validator can check it. UseL0 is recorded only where it means
// "scheduled with the L0 latency" (loads); the heuristic's coherence-marker
// bit on 1C/PSR stores is not a latency claim and is dropped.
func CertificateFromSchedule(sch *Schedule) *exact.Certificate {
	cert := &exact.Certificate{
		II:         sch.II,
		LowerBound: 1,
		Backend:    BackendSMS,
		Ops:        make([]exact.CertOp, len(sch.Placed)),
	}
	for i := range sch.Placed {
		pl := &sch.Placed[i]
		co := exact.CertOp{Cycle: pl.Cycle, Cluster: pl.Cluster, Latency: pl.Latency}
		if pl.Instr.Op == ir.OpLoad && pl.UseL0 {
			co.UseL0 = true
		}
		cert.Ops[i] = co
	}
	for _, c := range sch.Comms {
		cert.Comms = append(cert.Comms, exact.CertComm{Producer: c.Producer, Cycle: c.Cycle})
	}
	return cert
}

// buildExactSchedule turns a realized exact assignment into a full Schedule:
// placements and broadcasts are replayed into a fresh reservation table so
// the heuristic's own hint and prefetch passes run unchanged on top. Returns
// ok=false when the schedule exceeds the configured register budget (the
// caller keeps the heuristic schedule).
func buildExactSchedule(mloop *ir.Loop, cfg arch.Config, opts Options, als *alias.Result, a *exact.Assignment) (*Schedule, bool) {
	s := &state{cfg: cfg, opts: opts, loop: mloop, als: als, g: ddg.Build(mloop, initialLatency(cfg, opts), als.Edges)}
	s.prepare(a.II)
	// Coherence schemes of a realized schedule: sets mixing loads and
	// stores stay out of the buffers entirely (NL0 — the search never
	// marks their loads), everything else needs no treatment.
	for i := range als.Sets {
		if als.SetHasLoadAndStore(mloop, i) {
			s.setScheme[i] = SchemeNL0
		} else {
			s.setScheme[i] = SchemeFree
		}
		s.setDecided[i] = true
	}
	for i, in := range mloop.Instrs {
		s.placed[i] = Placed{Instr: in, Cluster: a.Cluster[i], Cycle: a.Cycle[i], Latency: a.Lat[i], UseL0: a.UseL0[i]}
		s.done[i] = true
		s.m.reserveUnit(a.Cycle[i], a.Cluster[i], unitKindOf(in.Op))
	}
	sch := &Schedule{
		Loop:      mloop,
		Cfg:       cfg,
		II:        a.II,
		Placed:    s.placed,
		SetScheme: s.setScheme,
		SetHome:   s.setHome,
	}
	for _, cm := range a.Comms {
		s.m.reserveBus(cm.Cycle)
		sch.Comms = append(sch.Comms, Comm{Producer: cm.Producer, Cycle: cm.Cycle})
	}
	sch.SC = (sch.Span() + a.II - 1) / a.II
	assignHints(sch, s)
	if opts.UseL0 && !opts.DisableExplicitPrefetch {
		insertExplicitPrefetches(sch, s)
	}
	revalidateSeqHints(sch)
	if opts.RegistersPerCluster > 0 && !FitsRegisterFile(sch, opts.RegistersPerCluster) {
		return nil, false
	}
	return sch, true
}
