// Package sched implements the paper's clustered modulo scheduler: the BASE
// algorithm for a clustered VLIW with a unified L1 (Sánchez & González
// heuristics — minimise inter-cluster communication, maximise workload
// balance) and the L0-buffer extension of §4.3 (candidate selection by
// slack, L0-entry accounting, coherence treatment of memory-dependent sets,
// hint assignment and explicit prefetch insertion).
package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sms/exact"
)

// CoherenceScheme identifies how a memory-dependent set with loads and
// stores is kept coherent (§4.1).
type CoherenceScheme uint8

const (
	// SchemeFree marks sets that need no treatment (singletons and
	// store-only sets).
	SchemeFree CoherenceScheme = iota
	// SchemeNL0 keeps the set out of the L0 buffers entirely.
	SchemeNL0
	// Scheme1C pins the set's stores and L0-latency loads to one cluster.
	Scheme1C
	// SchemePSR replicates the set's stores across all clusters.
	SchemePSR
)

func (s CoherenceScheme) String() string {
	switch s {
	case SchemeFree:
		return "free"
	case SchemeNL0:
		return "NL0"
	case Scheme1C:
		return "1C"
	case SchemePSR:
		return "PSR"
	}
	return fmt.Sprintf("CoherenceScheme(%d)", uint8(s))
}

// Placed records the scheduling decision for one instruction.
type Placed struct {
	Instr   *ir.Instr
	Cluster int
	// Cycle is the flat schedule start cycle (iteration 0).
	Cycle int
	// Latency is the latency the scheduler assumed for the result
	// (L0 or L1 latency for loads, opcode default otherwise).
	Latency int
	// UseL0 marks loads scheduled with the L0 latency / stores that
	// update their local L0 (PAR_ACCESS stores).
	UseL0 bool
	// Hints is the hint bundle attached in step 4 (memory refs only).
	Hints arch.Hints
}

// Comm is one inter-cluster broadcast of a register value over a bus.
type Comm struct {
	Producer int // instruction ID
	// Cycle is the bus transfer start (flat schedule); the value is
	// available in every cluster at Cycle+CommLatency.
	Cycle int
}

// Prefetch is an explicit software prefetch inserted in step 5. At dynamic
// iteration i it fetches the subblock the served load will touch at
// iteration i+Distance and maps it linearly in the prefetch's cluster.
type Prefetch struct {
	// For is the load instruction ID the prefetch serves.
	For     int
	Cluster int
	Cycle   int
	// Distance is how many iterations ahead the prefetch runs.
	Distance int
}

// Schedule is the result of modulo-scheduling one loop.
type Schedule struct {
	Loop *ir.Loop
	Cfg  arch.Config
	II   int
	// SC is the stage count (number of overlapped iterations).
	SC int
	// Placed is indexed by instruction ID.
	Placed []Placed
	Comms  []Comm
	// Prefetches are the explicit prefetch operations of step 5.
	Prefetches []Prefetch
	// SetScheme records the coherence treatment per memory-dependent set
	// (indexed like alias.Result.Sets).
	SetScheme []CoherenceScheme
	// SetHome is the 1C home cluster per set (-1 when unconstrained).
	SetHome []int
	// Cert is the exact backend's machine-checkable certificate (chosen
	// II, proven lower bound, proof trail); nil for heuristic-only
	// compilations.
	Cert *exact.Certificate
}

// Span returns the length of the flat schedule in cycles.
func (s *Schedule) Span() int {
	max := 0
	for i := range s.Placed {
		if c := s.Placed[i].Cycle; c > max {
			max = c
		}
	}
	return max + 1
}

// MemRow reports whether a memory op (instruction or explicit prefetch)
// issues in the given cluster at schedule row (cycle mod II).
func (s *Schedule) MemRow(cluster, row int) bool {
	for i := range s.Placed {
		p := &s.Placed[i]
		if p.Cluster == cluster && p.Instr.Op.IsMem() && p.Cycle%s.II == row {
			return true
		}
	}
	for i := range s.Prefetches {
		pf := &s.Prefetches[i]
		if pf.Cluster == cluster && pf.Cycle%s.II == row {
			return true
		}
	}
	return false
}

// String renders the kernel (one row per cycle of the II, one column block
// per cluster) for dumps and the l0sched CLI.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %q: II=%d SC=%d span=%d\n", s.Loop.Name, s.II, s.SC, s.Span())
	type slot struct {
		row, cluster int
		text         string
	}
	var slots []slot
	for i := range s.Placed {
		p := &s.Placed[i]
		txt := fmt.Sprintf("%s@%d", p.Instr.Op, p.Cycle)
		if p.Instr.Name != "" {
			txt = fmt.Sprintf("%s(%s)@%d", p.Instr.Op, p.Instr.Name, p.Cycle)
		}
		if p.Instr.Op.IsMemRef() {
			txt += fmt.Sprintf("[%s]", p.Hints)
		}
		slots = append(slots, slot{p.Cycle % s.II, p.Cluster, txt})
	}
	for i := range s.Prefetches {
		pf := &s.Prefetches[i]
		slots = append(slots, slot{pf.Cycle % s.II, pf.Cluster, fmt.Sprintf("pref(for %d)@%d", pf.For, pf.Cycle)})
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].row != slots[j].row {
			return slots[i].row < slots[j].row
		}
		if slots[i].cluster != slots[j].cluster {
			return slots[i].cluster < slots[j].cluster
		}
		return slots[i].text < slots[j].text
	})
	row := -1
	for _, sl := range slots {
		if sl.row != row {
			row = sl.row
			fmt.Fprintf(&b, " row %d:\n", row)
		}
		fmt.Fprintf(&b, "   c%d: %s\n", sl.cluster, sl.text)
	}
	if len(s.Comms) > 0 {
		fmt.Fprintf(&b, " comms:")
		for _, c := range s.Comms {
			fmt.Fprintf(&b, " (prod %d @%d)", c.Producer, c.Cycle)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
