package sched

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/unroll"
)

// verifySchedule checks every dependence constraint of the final schedule:
// for an edge u→v with latency L and distance d, cycle(v) + II·d −
// cycle(u) ≥ L, plus the inter-cluster communication latency when the value
// crosses clusters; and that no functional unit or bus row is
// over-subscribed.
func verifySchedule(t *testing.T, sch *Schedule) {
	t.Helper()
	als := alias.Analyze(sch.Loop)
	g := ddg.Build(sch.Loop, func(in *ir.Instr) int {
		return sch.Placed[in.ID].Latency
	}, als.Edges)
	commLat := sch.Cfg.CommLatency
	for ei, e := range g.Edges {
		u, v := &sch.Placed[e.From], &sch.Placed[e.To]
		lat := g.Latency(ei)
		slackNeeded := lat
		if e.Kind == ddg.DepReg && u.Cluster != v.Cluster {
			slackNeeded += commLat
		}
		if got := v.Cycle + sch.II*e.Distance - u.Cycle; got < slackNeeded {
			t.Errorf("edge %d→%d (d=%d, kind %v) violated: gap %d < %d",
				e.From, e.To, e.Distance, e.Kind, got, slackNeeded)
		}
	}
	// Every cluster-crossing register edge must be served by a concrete
	// bus transfer that starts after the value is ready and arrives by
	// the consumer's issue.
	for ei, e := range g.Edges {
		if e.Kind != ddg.DepReg {
			continue
		}
		u, v := &sch.Placed[e.From], &sch.Placed[e.To]
		if u.Cluster == v.Cluster {
			continue
		}
		ready := u.Cycle + g.Latency(ei)
		deadline := v.Cycle + sch.II*e.Distance - commLat
		served := false
		for _, cm := range sch.Comms {
			if cm.Producer == e.From && cm.Cycle >= ready && cm.Cycle <= deadline {
				served = true
				break
			}
		}
		if !served {
			t.Errorf("crossing edge %d→%d has no bus transfer in [%d,%d]", e.From, e.To, ready, deadline)
		}
	}
	// Unit occupancy per (row, cluster, kind).
	type slot struct{ row, cluster, kind int }
	use := map[slot]int{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		k := int(ddg.UnitFor(p.Instr.Op))
		use[slot{p.Cycle % sch.II, p.Cluster, k}]++
	}
	for i := range sch.Prefetches {
		pf := &sch.Prefetches[i]
		use[slot{pf.Cycle % sch.II, pf.Cluster, int(arch.UnitMem)}]++
	}
	for s, n := range use {
		if n > sch.Cfg.UnitsPerCluster[s.kind] {
			t.Errorf("unit overuse at row %d cluster %d kind %d: %d slots", s.row, s.cluster, s.kind, n)
		}
	}
	// Bus occupancy per row.
	busUse := map[int]int{}
	for _, c := range sch.Comms {
		for k := 0; k < commLat; k++ {
			busUse[(c.Cycle+k)%sch.II]++
		}
	}
	for row, n := range busUse {
		if n > sch.Cfg.CommBuses {
			t.Errorf("bus overuse at row %d: %d > %d", row, n, sch.Cfg.CommBuses)
		}
	}
}

func compileOK(t *testing.T, l *ir.Loop, cfg arch.Config, opts Options) *Schedule {
	t.Helper()
	sch, err := Compile(l, cfg, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", l.Name, err)
	}
	verifySchedule(t, sch)
	return sch
}

func inPlaceLoop(t *testing.T, trip int64) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("inplace", trip)
	a := b.Array("t", 4096, 4)
	x := b.Array("x", 4096, 4)
	vt := b.Load("ld_t", a, 0, 4, 4)
	vx := b.Load("ld_x", x, 0, 4, 4)
	v := b.Int("upd", vt, vx)
	b.Store("st_t", a, 0, 4, 4, v)
	return b.Build()
}

func TestOneClusterColocation(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 512), cfg, Options{UseL0: true})
	als := alias.Analyze(sch.Loop)
	for si := range als.Sets {
		if !als.SetHasLoadAndStore(sch.Loop, si) {
			continue
		}
		if sch.SetScheme[si] != Scheme1C {
			t.Fatalf("load+store set scheme = %v, want 1C", sch.SetScheme[si])
		}
		home := sch.SetHome[si]
		for _, id := range als.Sets[si] {
			p := &sch.Placed[id]
			if p.Instr.Op == ir.OpStore && p.Cluster != home {
				t.Errorf("1C store in cluster %d, home %d", p.Cluster, home)
			}
			if p.Instr.Op == ir.OpLoad && p.UseL0 && p.Cluster != home {
				t.Errorf("1C L0 load in cluster %d, home %d", p.Cluster, home)
			}
		}
	}
}

func TestOneClusterStoreGetsParAccess(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 512), cfg, Options{UseL0: true})
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpStore {
			if p.Hints.Access != arch.ParAccess {
				t.Errorf("1C store hint = %v, want PAR_ACCESS", p.Hints.Access)
			}
		}
	}
}

func TestNL0WhenNoEntries(t *testing.T) {
	// With L0 present but zero-entry accounting impossible, use a config
	// with very small buffers and a loop whose set loads lose the race:
	// here simply disable via UseL0=false and check stores stay NO_ACCESS.
	cfg := arch.MICRO36Config().WithL0Entries(0)
	sch, err := Compile(inPlaceLoop(t, 512), cfg, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op.IsMemRef() && p.Hints.Access != arch.NoAccess {
			t.Errorf("baseline hint = %v, want NO_ACCESS", p.Hints.Access)
		}
	}
}

func TestEntriesAccountingLimitsMarkedLoads(t *testing.T) {
	// 12 independent streams, 2-entry buffers: the compile-time
	// accounting reserves one entry per cluster as prefetch headroom, so
	// at most 1 load per cluster (4 total) may use the L0 latency.
	b := ir.NewBuilder("many", 512)
	for i := 0; i < 12; i++ {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Int("op", v)
	}
	cfg := arch.MICRO36Config().WithL0Entries(2)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	perCluster := map[int]int{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.UseL0 {
			perCluster[p.Cluster]++
		}
	}
	for c, n := range perCluster {
		if n > 1 {
			t.Errorf("cluster %d has %d L0 loads, accounting allows 1", c, n)
		}
	}
}

func TestMarkAllBypassesAccounting(t *testing.T) {
	b := ir.NewBuilder("many", 512)
	for i := 0; i < 12; i++ {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Int("op", v)
	}
	cfg := arch.MICRO36Config().WithL0Entries(2)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true, MarkAllCandidates: true})
	marked := 0
	for i := range sch.Placed {
		if p := &sch.Placed[i]; p.Instr.Op == ir.OpLoad && p.UseL0 {
			marked++
		}
	}
	if marked != 12 {
		t.Errorf("mark-all marked %d of 12 loads", marked)
	}
}

func TestSeqAccessRequiresFreeNextRow(t *testing.T) {
	cfg := arch.MICRO36Config()
	// A single load with lots of compute: the next row must be free, so
	// the load should be SEQ.
	b := ir.NewBuilder("seq", 512)
	a := b.Array("a", 4096, 2)
	v := b.Load("ld", a, 0, 2, 2)
	for i := 0; i < 8; i++ {
		v = b.Int("op", v)
	}
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true, DisableExplicitPrefetch: true})
	p := &sch.Placed[0]
	if !p.UseL0 {
		t.Fatalf("lone strided load not marked for L0")
	}
	if p.Hints.Access != arch.SeqAccess {
		t.Errorf("access hint = %v, want SEQ_ACCESS with an idle memory row", p.Hints.Access)
	}
	// Verify the rule itself: no other memory op one row after.
	row := (p.Cycle + 1) % sch.II
	if sch.MemRow(p.Cluster, row) {
		t.Errorf("SEQ load has a memory op on the next row")
	}
}

func TestParAccessWhenNextRowBusy(t *testing.T) {
	cfg := arch.MICRO36Config()
	// II=1 forces every row busy: loads must be PAR.
	b := ir.NewBuilder("par", 512)
	a := b.Array("a", 4096, 2)
	d := b.Array("d", 4096, 2)
	v := b.Load("ld", a, 0, 2, 2)
	b.Store("st", d, 0, 2, 2, v)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.UseL0 && sch.II == 1 {
			if p.Hints.Access != arch.ParAccess {
				t.Errorf("II=1 load hint = %v, want PAR_ACCESS", p.Hints.Access)
			}
		}
	}
}

func TestInterleavedHintForUnrolledUnitStride(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("il", 512)
	a := b.Array("a", 8192, 2)
	v := b.Load("ld", a, 0, 2, 2)
	b.Int("op", v)
	ul, err := unroll.ByFactor(b.Build(), 4)
	if err != nil {
		t.Fatalf("unroll: %v", err)
	}
	sch := compileOK(t, ul, cfg, Options{UseL0: true})
	positive := 0
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpLoad || !p.UseL0 {
			continue
		}
		if p.Hints.Map != arch.InterleavedMap {
			t.Errorf("unrolled unit-stride load map = %v, want INTERLEAVED", p.Hints.Map)
		}
		if p.Hints.Prefetch == arch.Positive {
			positive++
		}
	}
	if positive != 1 {
		t.Errorf("interleaved group elected %d prefetchers, want exactly 1", positive)
	}
}

func TestNegativePrefetchHintForReverseWalk(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("rev", 512)
	a := b.Array("a", 8192, 2)
	v := b.Load("ld", a, 1022, -2, 2)
	for i := 0; i < 6; i++ {
		v = b.Int("op", v)
	}
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	p := &sch.Placed[0]
	if p.UseL0 && p.Hints.Map == arch.LinearMap && p.Hints.Prefetch != arch.Negative {
		t.Errorf("reverse walk prefetch = %v, want NEGATIVE", p.Hints.Prefetch)
	}
}

func TestExplicitPrefetchForColumnWalk(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("col", 512)
	img := b.Array("img", 1<<20, 2)
	v := b.Load("ld", img, 0, 512, 2) // column stride
	for i := 0; i < 6; i++ {
		v = b.Int("op", v)
	}
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	p := &sch.Placed[0]
	if !p.UseL0 {
		t.Fatalf("column load not marked (it is a strided candidate)")
	}
	if p.Hints.Prefetch != arch.NoPrefetch {
		t.Errorf("column load must not get a hint prefetch (stride not covered)")
	}
	if len(sch.Prefetches) != 1 {
		t.Fatalf("explicit prefetches = %d, want 1", len(sch.Prefetches))
	}
	pf := sch.Prefetches[0]
	if pf.For != 0 || pf.Cluster != p.Cluster || pf.Distance != 1 {
		t.Errorf("prefetch misdirected: %+v", pf)
	}
}

func TestExplicitPrefetchSkippedWithoutSlots(t *testing.T) {
	cfg := arch.MICRO36Config()
	// Saturate the memory rows: 4 column loads + 4 stores on II=2 fill
	// every memory slot of every cluster.
	b := ir.NewBuilder("colfull", 512)
	img := b.Array("img", 1<<20, 2)
	d := b.Array("d", 1<<20, 2)
	for i := 0; i < 4; i++ {
		v := b.Load("ld", img, int64(i*2), 512, 2)
		b.Store("st", d, int64(i*2), 8, 2, v)
	}
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	maxSlots := sch.II * cfg.Clusters * cfg.UnitsPerCluster[arch.UnitMem]
	memOps := 8 + len(sch.Prefetches)
	if memOps > maxSlots {
		t.Errorf("prefetch insertion oversubscribed memory slots: %d > %d", memOps, maxSlots)
	}
}

func TestPSRReplicatesStores(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 512), cfg, Options{UseL0: true, AllowPSR: true})
	var primaries, secondaries int
	clusters := map[int]bool{}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op != ir.OpStore || p.Instr.ReplicaGroup == 0 {
			continue
		}
		clusters[p.Cluster] = true
		if p.Instr.PrimaryReplica {
			primaries++
			if p.Hints.Access != arch.ParAccess || !p.Hints.Primary {
				t.Errorf("primary replica hints wrong: %v", p.Hints)
			}
		} else {
			secondaries++
			if p.Hints.Access != arch.NoAccess {
				t.Errorf("secondary replica must not access L1: %v", p.Hints)
			}
		}
	}
	if primaries != 1 || secondaries != cfg.Clusters-1 {
		t.Fatalf("replicas = %d primary + %d secondary, want 1 + %d", primaries, secondaries, cfg.Clusters-1)
	}
	if len(clusters) != cfg.Clusters {
		t.Errorf("replicas occupy %d clusters, want all %d", len(clusters), cfg.Clusters)
	}
}

func TestPSRFreesLoadPlacement(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 512), cfg, Options{UseL0: true, AllowPSR: true})
	als := alias.Analyze(sch.Loop)
	for si := range als.Sets {
		hasReplica := false
		for _, id := range als.Sets[si] {
			if sch.Loop.Instrs[id].ReplicaGroup != 0 {
				hasReplica = true
			}
		}
		if hasReplica && sch.SetScheme[si] != SchemePSR {
			t.Errorf("replicated set scheme = %v, want PSR", sch.SetScheme[si])
		}
	}
}

func TestNeedsInterLoopFlush(t *testing.T) {
	cfg := arch.MICRO36Config()
	// An in-place loop with enough compute that the 1C home cluster has
	// room for both the t-load and the t-store (II ≥ 2): colocated,
	// safe to re-enter without flushing.
	b := ir.NewBuilder("inplace2", 512)
	a := b.Array("t", 4096, 4)
	x := b.Array("x", 4096, 4)
	vt := b.Load("ld_t", a, 0, 4, 4)
	vx := b.Load("ld_x", x, 0, 4, 4)
	v := b.Int("upd", vt, vx)
	for i := 0; i < 6; i++ {
		v = b.Int("op", v)
	}
	b.Store("st_t", a, 0, 4, 4, v)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	if !sch.Placed[0].UseL0 {
		t.Fatalf("precondition: the t-load must cache in L0 (II=%d)", sch.II)
	}
	if NeedsInterLoopFlush(sch) {
		t.Errorf("colocated 1C schedule should not need an inter-loop flush")
	}
	// Hand-break the colocation: move the store to another cluster.
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpStore {
			p.Cluster = (p.Cluster + 1) % cfg.Clusters
		}
	}
	if !NeedsInterLoopFlush(sch) {
		t.Errorf("store away from the caching cluster must force a flush")
	}
}

func TestChooseUnrollFactorResourceBound(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("res", 512)
	a := b.Array("a", 8192, 2)
	d := b.Array("d", 8192, 2)
	v := b.Load("ld", a, 0, 2, 2)
	x := b.Int("op", v)
	b.Store("st", d, 0, 2, 2, x)
	if f := ChooseUnrollFactor(b.Build(), cfg); f != 4 {
		t.Errorf("resource-bound stream unroll = %d, want 4", f)
	}
}

func TestChooseUnrollFactorRecurrenceBound(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("rec", 512)
	a := b.Array("a", 8192, 4)
	v := b.Load("ld", a, -4, 4, 4)
	x := b.Int("f", v)
	b.Store("st", a, 0, 4, 4, x)
	if f := ChooseUnrollFactor(b.Build(), cfg); f != 1 {
		t.Errorf("memory-recurrence loop unroll = %d, want 1", f)
	}
}

func TestChooseUnrollFactorShortTrip(t *testing.T) {
	cfg := arch.MICRO36Config()
	b := ir.NewBuilder("short", 4)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.Int("op", v)
	if f := ChooseUnrollFactor(b.Build(), cfg); f != 1 {
		t.Errorf("trip-4 loop unroll = %d, want 1", f)
	}
}

func TestScheduleStringRenders(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 512), cfg, Options{UseL0: true})
	if s := sch.String(); len(s) == 0 {
		t.Errorf("empty schedule dump")
	}
}

// TestScheduleValidityAcrossShapes is the property-style check: every loop
// shape the workload uses must produce a dependence- and resource-valid
// schedule on every architecture variant.
func TestScheduleValidityAcrossShapes(t *testing.T) {
	cfg := arch.MICRO36Config()
	shapes := []func() *ir.Loop{
		func() *ir.Loop { return inPlaceLoop(t, 512) },
		func() *ir.Loop {
			b := ir.NewBuilder("fir", 256)
			x := b.Array("x", 8192, 2)
			y := b.Array("y", 8192, 2)
			var acc ir.Reg
			for j := 0; j < 4; j++ {
				v := b.Load("ld", x, int64(j*2), 2, 2)
				m := b.IntMul("mul", v)
				if j == 0 {
					acc = m
				} else {
					acc = b.Int("acc", acc, m)
				}
			}
			b.Store("st", y, 0, 2, 2, acc)
			return b.Build()
		},
		func() *ir.Loop {
			b := ir.NewBuilder("iir", 256)
			y := b.Array("y", 4096, 4)
			x := b.Array("x", 4096, 4)
			p := b.Load("ld_p", y, -4, 4, 4)
			v := b.Load("ld_x", x, 0, 4, 4)
			s := b.Int("mix", p, v)
			b.Store("st", y, 0, 4, 4, s)
			return b.Build()
		},
		func() *ir.Loop {
			b := ir.NewBuilder("gather", 256)
			tab := b.Array("tab", 65536, 4)
			d := b.Array("d", 4096, 4)
			v := b.LoadIndexed("g", tab, 4, 77, ir.NoReg)
			x := b.Int("op", v)
			b.Store("st", d, 0, 4, 4, x)
			return b.Build()
		},
	}
	variants := []Options{
		{},
		{UseL0: true},
		{UseL0: true, MarkAllCandidates: true},
		{UseL0: true, AllowPSR: true},
		{UseL0: true, PrefetchDistance: 2},
	}
	for _, mk := range shapes {
		for _, opts := range variants {
			l := mk()
			compileOK(t, l, cfg, opts)
			if ul, err := unroll.ByFactor(mk(), 4); err == nil {
				compileOK(t, ul, cfg, opts)
			}
		}
	}
}

func TestAdaptivePrefetchDistance(t *testing.T) {
	cfg := arch.MICRO36Config()
	// A small-II column walk: each iteration needs a new subblock, and
	// the lead per distance is only II cycles, so the adaptive policy
	// must pick a distance > 1.
	b := ir.NewBuilder("adapt", 512)
	img := b.Array("img", 1<<20, 2)
	v := b.Load("ld", img, 0, 512, 2)
	x := b.Int("op", v)
	for i := 0; i < 5; i++ {
		x = b.Int("chain", x)
	}
	b.Store("st", b.Array("d", 4096, 2), 0, 2, 2, x)
	sch := compileOK(t, b.Build(), cfg, Options{UseL0: true, AdaptivePrefetchDistance: true})
	if len(sch.Prefetches) == 0 {
		t.Fatalf("no explicit prefetch inserted")
	}
	if d := sch.Prefetches[0].Distance; d < 2 {
		t.Errorf("adaptive distance = %d, want >= 2 at II=%d", d, sch.II)
	}
	// A long-II loop needs no extra distance.
	b2 := ir.NewBuilder("long", 512)
	a2 := b2.Array("a", 8192, 2)
	v2 := b2.Load("ld", a2, 0, 2, 2)
	for i := 0; i < 9; i++ {
		v2 = b2.Int("op", v2)
	}
	acc := b2.Int("acc", v2)
	acc2 := b2.Int("acc2", acc)
	b2.CarryInto(acc, acc2, 1)
	sch2 := compileOK(t, b2.Build(), cfg, Options{UseL0: true, AdaptivePrefetchDistance: true})
	for i := range sch2.Placed {
		p := &sch2.Placed[i]
		if p.Instr.Op == ir.OpLoad && p.UseL0 && p.Hints.PrefetchDistance > 2 {
			t.Errorf("long-II loop got distance %d, expected small", p.Hints.PrefetchDistance)
		}
	}
}

func TestWideLoadsMarkableAtEveryClusterCount(t *testing.T) {
	// WithClusters clamps the subblock at the widest access (8 bytes), so an
	// 8-byte load stays an L0 candidate even on wide machines — before the
	// clamp, 8 clusters derived 4-byte subblocks and wide loads silently
	// bypassed the buffers.
	for _, n := range []int{4, 8, 16, 32} {
		cfg := arch.MICRO36Config().WithClusters(n)
		b := ir.NewBuilder("wide", 256)
		a := b.Array("a", 8192, 8)
		v := b.Load("ld", a, 0, 8, 8)
		b.Int("op", v)
		sch := compileOK(t, b.Build(), cfg, Options{UseL0: true})
		if !sch.Placed[0].UseL0 {
			t.Errorf("%d clusters: 8-byte load not marked with %d-byte subblocks", n, cfg.L0SubblockBytes)
		}
	}
	// Sub-word subblock configurations no longer validate at all: the
	// scheduler refuses them instead of quietly excluding wide loads.
	cfg := arch.MICRO36Config()
	cfg.L0SubblockBytes = 4
	if _, err := Compile(inPlaceLoop(t, 256), cfg, Options{UseL0: true}); err == nil {
		t.Errorf("Compile accepted a sub-word subblock config")
	}
}

func TestCompileAcrossClusterCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		cfg := arch.MICRO36Config().WithClusters(n)
		sch := compileOK(t, inPlaceLoop(t, 256), cfg, Options{UseL0: true})
		for i := range sch.Placed {
			if c := sch.Placed[i].Cluster; c < 0 || c >= n {
				t.Errorf("%d clusters: placement in cluster %d", n, c)
			}
		}
	}
}

func TestRegisterBudgetRaisesII(t *testing.T) {
	cfg := arch.MICRO36Config()
	mk := func() *ir.Loop {
		b := ir.NewBuilder("wide", 256)
		a := b.Array("a", 8192, 4)
		d := b.Array("d", 8192, 4)
		// Many long-lived parallel values.
		var vs []ir.Reg
		for i := 0; i < 6; i++ {
			v := b.Load("ld", a, int64(i*1024), 4, 4)
			vs = append(vs, b.IntMul("m", v))
		}
		s := vs[0]
		for _, v := range vs[1:] {
			s = b.Int("sum", s, v)
		}
		b.Store("st", d, 0, 4, 4, s)
		return b.Build()
	}
	free := compileOK(t, mk(), cfg, Options{UseL0: true})
	tight := compileOK(t, mk(), cfg, Options{UseL0: true, RegistersPerCluster: Pressure(free).Max - 1})
	if tight.II <= free.II {
		t.Errorf("register budget %d did not raise II (%d vs %d)",
			Pressure(free).Max-1, tight.II, free.II)
	}
	if Pressure(tight).Max >= Pressure(free).Max {
		t.Errorf("budgeted schedule pressure %d not reduced from %d",
			Pressure(tight).Max, Pressure(free).Max)
	}
}

func TestFlushPlanDisjointKernels(t *testing.T) {
	cfg := arch.MICRO36Config()
	a := compileOK(t, inPlaceLoop(t, 256), cfg, Options{UseL0: true})
	b := ir.NewBuilder("other", 256)
	arr := b.Array("elsewhere", 4096, 4)
	v := b.Load("ld", arr, 0, 4, 4)
	b.Int("op", v)
	other := compileOK(t, b.Build(), cfg, Options{UseL0: true})
	if plan := FlushPlan(a, other); len(plan) != 0 {
		t.Errorf("disjoint kernels should need no flush, got clusters %v", plan)
	}
	// Unknown code following: every caching cluster flushes.
	if plan := FlushPlan(a, nil); len(plan) == 0 {
		t.Errorf("unknown successor should flush the caching clusters")
	}
}

func TestFlushPlanSharedArray(t *testing.T) {
	cfg := arch.MICRO36Config()
	shared := &ir.Array{Name: "shared", SizeBytes: 4096, ElemBytes: 4}
	mkReader := func() *ir.Loop {
		b := ir.NewBuilder("reader", 256)
		v := b.Load("ld", shared, 0, 4, 4)
		for i := 0; i < 6; i++ {
			v = b.Int("op", v)
		}
		return b.Build()
	}
	mkWriter := func() *ir.Loop {
		b := ir.NewBuilder("writer", 256)
		x := b.Array("x", 4096, 4)
		v := b.Load("ld", x, 0, 4, 4)
		b.Store("st", shared, 0, 4, 4, v)
		return b.Build()
	}
	reader := compileOK(t, mkReader(), cfg, Options{UseL0: true})
	writer := compileOK(t, mkWriter(), cfg, Options{UseL0: true})
	if !reader.Placed[0].UseL0 {
		t.Skip("reader load not marked; flush plan not exercised")
	}
	if plan := FlushPlan(reader, writer); len(plan) == 0 {
		t.Errorf("writer touching the cached array must force a flush")
	}
}

func TestRenderKernelGrid(t *testing.T) {
	cfg := arch.MICRO36Config()
	sch := compileOK(t, inPlaceLoop(t, 256), cfg, Options{UseL0: true})
	var sb strings.Builder
	RenderKernelGrid(&sb, sch)
	out := sb.String()
	for _, want := range []string{"cluster 0", "cluster 3", "II="} {
		if !strings.Contains(out, want) {
			t.Errorf("grid missing %q:\n%s", want, out)
		}
	}
	// Every non-comm instruction name appears somewhere in the grid.
	for _, in := range sch.Loop.Instrs {
		if !strings.Contains(out, in.Name) {
			t.Errorf("grid missing instruction %q", in.Name)
		}
	}
}
