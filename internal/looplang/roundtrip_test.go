// Round-trip and canonicalization properties over the real workload suite.
// External test package: these tests import workload, which now imports
// looplang for content hashing — the in-package test file would cycle.
package looplang_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/looplang"
	"repro/internal/workload"
)

// TestRoundTripWorkloadKernels formats every workload kernel and parses it
// back, checking the reconstructed loop is structurally identical (same ops,
// accesses and recurrences — names and register numbers may differ).
func TestRoundTripWorkloadKernels(t *testing.T) {
	for _, b := range workload.Suite() {
		for i := range b.Kernels {
			k := &b.Kernels[i]
			orig := k.Loop()
			text, err := looplang.FormatString(orig)
			if err != nil {
				t.Fatalf("%s/%s: Format: %v", b.Name, k.Name, err)
			}
			back, err := looplang.ParseString(text)
			if err != nil {
				t.Fatalf("%s/%s: Parse(Format): %v\n%s", b.Name, k.Name, err, text)
			}
			if len(back.Instrs) != len(orig.Instrs) {
				t.Fatalf("%s/%s: instr count %d != %d", b.Name, k.Name, len(back.Instrs), len(orig.Instrs))
			}
			if back.TripCount != orig.TripCount || back.Specialized != orig.Specialized {
				t.Errorf("%s/%s: header mismatch", b.Name, k.Name)
			}
			for j := range orig.Instrs {
				o, n := orig.Instrs[j], back.Instrs[j]
				if o.Op != n.Op || len(o.Srcs) != len(n.Srcs) || len(o.Carried) != len(n.Carried) {
					t.Errorf("%s/%s: instr %d mismatch: %v vs %v", b.Name, k.Name, j, o, n)
				}
				if (o.Mem == nil) != (n.Mem == nil) {
					t.Fatalf("%s/%s: instr %d mem mismatch", b.Name, k.Name, j)
				}
				if o.Mem != nil {
					if o.Mem.Offset != n.Mem.Offset || o.Mem.Stride != n.Mem.Stride ||
						o.Mem.Width != n.Mem.Width || o.Mem.IndexPeriod != n.Mem.IndexPeriod ||
						o.Mem.Scramble != n.Mem.Scramble {
						t.Errorf("%s/%s: instr %d access mismatch: %+v vs %+v", b.Name, k.Name, j, o.Mem, n.Mem)
					}
				}
			}
		}
	}
}

// TestCanonicalFormIsFixedPoint pins the property the content-hash identity
// rests on: for every kernel of all 13 suite benchmarks, Format→Parse→Format
// reproduces the same bytes (the canonical form is a fixed point of
// Format∘Parse), and the SHA-256 of that form equals workload.KernelIDOf —
// so any spelling of a loop converges to one stable ID.
func TestCanonicalFormIsFixedPoint(t *testing.T) {
	suite := workload.Suite()
	if len(suite) != 13 {
		t.Fatalf("suite has %d benchmarks, want 13", len(suite))
	}
	for _, b := range suite {
		for i := range b.Kernels {
			k := &b.Kernels[i]
			canonical, err := looplang.FormatString(k.Loop())
			if err != nil {
				t.Fatalf("%s/%s: Format: %v", b.Name, k.Name, err)
			}
			back, err := looplang.ParseString(canonical)
			if err != nil {
				t.Fatalf("%s/%s: Parse(canonical): %v", b.Name, k.Name, err)
			}
			again, err := looplang.FormatString(back)
			if err != nil {
				t.Fatalf("%s/%s: Format(Parse(canonical)): %v", b.Name, k.Name, err)
			}
			if again != canonical {
				t.Errorf("%s/%s: canonical form is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
					b.Name, k.Name, canonical, again)
			}
			sum := sha256.Sum256([]byte(canonical))
			if got, want := workload.KernelIDOf(b, i), hex.EncodeToString(sum[:]); got != want {
				t.Errorf("%s/%s: KernelIDOf = %s, want sha256(canonical) = %s", b.Name, k.Name, got, want)
			}
			// Re-registering the canonical source must be idempotent and
			// land on the same ID.
			reg, err := workload.RegisterKernelSource(canonical)
			if err != nil {
				t.Fatalf("%s/%s: RegisterKernelSource: %v", b.Name, k.Name, err)
			}
			if reg.ID != workload.KernelIDOf(b, i) {
				t.Errorf("%s/%s: registered ID %s != KernelIDOf %s", b.Name, k.Name, reg.ID, workload.KernelIDOf(b, i))
			}
			if reg.Source != canonical {
				t.Errorf("%s/%s: registration changed the canonical source", b.Name, k.Name)
			}
		}
	}
	workload.ResetKernelRegistry()
}
