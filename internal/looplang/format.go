package looplang

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ir"
)

// Format writes a loop back out in the looplang text format. Loops built
// programmatically (or by the workload generator) round-trip through
// Parse(Format(l)) as long as they use only pre-unroll features — PSR
// replicas and phase-rewritten accesses have no surface syntax.
func Format(w io.Writer, l *ir.Loop) error {
	if l.Unroll != 1 {
		return fmt.Errorf("looplang: cannot format an unrolled loop (factor %d)", l.Unroll)
	}
	fmt.Fprintf(w, "loop %s %d\n", sanitize(l.Name), l.TripCount)
	if l.Specialized {
		fmt.Fprintln(w, "specialized")
	}

	// Arrays in first-reference order, with unique printable names.
	arrayName := map[*ir.Array]string{}
	used := map[string]bool{}
	for _, in := range l.Instrs {
		if in.Mem == nil || arrayName[in.Mem.Array] != "" {
			continue
		}
		name := sanitize(in.Mem.Array.Name)
		for used[name] {
			name += "x"
		}
		used[name] = true
		arrayName[in.Mem.Array] = name
		fmt.Fprintf(w, "array %s %d %d\n", name, in.Mem.Array.SizeBytes, in.Mem.Array.ElemBytes)
	}

	// Registers named r<def-index>.
	regName := map[ir.Reg]string{}
	for _, in := range l.Instrs {
		if in.Dst != ir.NoReg {
			regName[in.Dst] = fmt.Sprintf("r%d", in.ID)
		}
	}
	var carries []string
	for _, in := range l.Instrs {
		switch in.Op {
		case ir.OpLoad:
			m := in.Mem
			switch {
			case m.Scramble != 0:
				idx := ""
				if len(in.Srcs) == 1 {
					idx = " " + regName[in.Srcs[0]]
				}
				fmt.Fprintf(w, "%s = loadx %s %d %d%s\n", regName[in.Dst], arrayName[m.Array], m.Width, m.Scramble, idx)
			case m.IndexPeriod > 1:
				fmt.Fprintf(w, "%s = loadp %s %d %d %d %d\n", regName[in.Dst], arrayName[m.Array], m.Offset, m.Stride, m.Width, m.IndexPeriod)
			default:
				fmt.Fprintf(w, "%s = load %s %d %d %d\n", regName[in.Dst], arrayName[m.Array], m.Offset, m.Stride, m.Width)
			}
		case ir.OpStore:
			m := in.Mem
			src := "r0"
			if len(in.Srcs) == 1 {
				src = regName[in.Srcs[0]]
			}
			if m.Scramble != 0 {
				fmt.Fprintf(w, "storex %s %d %d %s\n", arrayName[m.Array], m.Width, m.Scramble, src)
			} else {
				fmt.Fprintf(w, "store %s %d %d %d %s\n", arrayName[m.Array], m.Offset, m.Stride, m.Width, src)
			}
		case ir.OpIntALU, ir.OpIntMul, ir.OpFPALU, ir.OpFPMul:
			op := map[ir.Opcode]string{
				ir.OpIntALU: "int", ir.OpIntMul: "mul",
				ir.OpFPALU: "fp", ir.OpFPMul: "fpmul",
			}[in.Op]
			srcs := make([]string, len(in.Srcs))
			for i, s := range in.Srcs {
				srcs[i] = regName[s]
			}
			if len(srcs) == 0 {
				return fmt.Errorf("looplang: %s op without sources has no surface syntax", op)
			}
			fmt.Fprintf(w, "%s = %s %s\n", regName[in.Dst], op, strings.Join(srcs, " "))
		default:
			return fmt.Errorf("looplang: opcode %v has no surface syntax", in.Op)
		}
		for _, c := range in.Carried {
			carries = append(carries, fmt.Sprintf("carry %s %s %d", regName[in.Dst], regName[c.Reg], c.Distance))
		}
	}
	for _, c := range carries {
		fmt.Fprintln(w, c)
	}
	return nil
}

// FormatString renders the loop to a string.
func FormatString(l *ir.Loop) (string, error) {
	var sb strings.Builder
	if err := Format(&sb, l); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// sanitize makes a name safe for the whitespace-separated syntax.
func sanitize(s string) string {
	if s == "" {
		return "anon"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}
