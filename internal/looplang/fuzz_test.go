// Fuzz target for the looplang parser. With POST /v1/kernels, .loop source
// is an untrusted input surface: the parser must never panic, and anything
// it accepts must canonicalize — Format the parsed loop, re-parse, and land
// on a byte-identical fixed point (the invariant the content-hash identity
// depends on).
package looplang_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/looplang"
	"repro/internal/workload"
)

// fuzzSeeds feeds the shared corpus: the shipped example programs, the
// canonical form of every suite kernel (so mutations start from realistic
// deep inputs — carries, scrambled/periodic accesses, FP), and handwritten
// corners the globs may not cover.
func fuzzSeeds(f *testing.F) {
	files, _ := filepath.Glob("../../examples/loops/*.loop")
	for _, file := range files {
		if data, err := os.ReadFile(file); err == nil {
			f.Add(string(data))
		}
	}
	for _, b := range workload.Suite() {
		for i := range b.Kernels {
			if src, err := looplang.FormatString(b.Kernels[i].Loop()); err == nil {
				f.Add(src)
			}
		}
	}
	f.Add("loop x 1\n")
	f.Add("loop x 10\narray a 64 4\nv = load a 0 4 4\ns = int v\ncarry s s 1\nstore a 0 4 4 s\nspecialized\n")
}

func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		l, err := looplang.ParseString(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("Parse accepted a loop Validate rejects: %v\ninput:\n%s", err, src)
		}
		canonical, err := looplang.FormatString(l)
		if err != nil {
			t.Fatalf("parsed loop does not format: %v\ninput:\n%s", err, src)
		}
		back, err := looplang.ParseString(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, canonical)
		}
		again, err := looplang.FormatString(back)
		if err != nil {
			t.Fatalf("canonical form does not re-format: %v", err)
		}
		if again != canonical {
			t.Fatalf("canonicalization is not a fixed point\n--- first ---\n%s\n--- second ---\n%s", canonical, again)
		}
	})
}

// FuzzFormatRoundTrip pins the structural half of the canonicalization
// contract: FuzzParse proves the *bytes* reach a fixed point, this target
// proves the *IR* does — Parse∘Format must be idempotent on the loop
// structure itself (the re-parse of the canonical form and the re-parse of
// its re-format are deeply equal). A formatter that drops or reorders a
// field would keep the bytes stable per round yet yield structurally
// different loops, silently changing what the content hash identifies.
func FuzzFormatRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		l, err := looplang.ParseString(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canonical, err := looplang.FormatString(l)
		if err != nil {
			t.Fatalf("parsed loop does not format: %v\ninput:\n%s", err, src)
		}
		back, err := looplang.ParseString(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical:\n%s", err, canonical)
		}
		second, err := looplang.FormatString(back)
		if err != nil {
			t.Fatalf("canonical form does not re-format: %v", err)
		}
		back2, err := looplang.ParseString(second)
		if err != nil {
			t.Fatalf("second canonical form does not re-parse: %v\ncanonical:\n%s", err, second)
		}
		if !reflect.DeepEqual(back, back2) {
			t.Fatalf("Parse∘Format is not idempotent on the IR\n--- canonical ---\n%s\n--- re-format ---\n%s", canonical, second)
		}
	})
}
