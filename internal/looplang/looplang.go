// Package looplang parses a small text format describing an inner loop, so
// kernels can be fed to the compiler and simulator without writing Go (the
// cmd/l0loop tool). The format is line-based:
//
//	# comment
//	loop NAME TRIP                     — header, required first
//	array NAME SIZE ELEM               — declare a data object
//	R = load ARRAY OFFSET STRIDE W     — strided load into register R
//	R = loadp ARRAY OFFSET STRIDE W P  — periodic load (index mod P)
//	R = loadx ARRAY W SEED [IDX]       — data-dependent load (unknown stride)
//	R = int SRC...                     — 1-cycle integer op
//	R = mul SRC...                     — 2-cycle integer multiply
//	R = fp SRC...                      — 2-cycle FP add
//	R = fpmul SRC...                   — 4-cycle FP multiply
//	store ARRAY OFFSET STRIDE W SRC    — strided store of SRC
//	storex ARRAY W SEED SRC            — data-dependent store
//	carry R FROM DIST                  — R's op also consumes FROM@-DIST
//	specialized                        — apply code specialization (§4.1)
//
// Registers are arbitrary identifiers; each must be defined exactly once
// before use (except carry, which may reference any defined register and
// creates the loop-carried recurrences).
package looplang

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Parse reads one loop description.
func Parse(r io.Reader) (*ir.Loop, error) {
	sc := bufio.NewScanner(r)
	var b *ir.Builder
	arrays := map[string]*ir.Array{}
	regs := map[string]ir.Reg{}
	type carryFix struct {
		line      int
		reg, from string
		dist      int
	}
	var carries []carryFix
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)

		fail := func(format string, args ...any) error {
			return fmt.Errorf("looplang: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		if b == nil {
			if f[0] != "loop" {
				return nil, fail("the first directive must be `loop NAME TRIP`")
			}
			if len(f) != 3 {
				return nil, fail("loop needs a name and a trip count")
			}
			trip, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil || trip <= 0 {
				return nil, fail("bad trip count %q", f[2])
			}
			b = ir.NewBuilder(f[1], trip)
			continue
		}

		switch f[0] {
		case "loop":
			return nil, fail("duplicate loop header")
		case "specialized":
			b.Specialized()
		case "array":
			if len(f) != 4 {
				return nil, fail("array needs NAME SIZE ELEM")
			}
			size, err1 := strconv.ParseInt(f[2], 10, 64)
			elem, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || size <= 0 {
				return nil, fail("bad array geometry")
			}
			if _, dup := arrays[f[1]]; dup {
				return nil, fail("array %q redeclared", f[1])
			}
			arrays[f[1]] = b.Array(f[1], size, elem)
		case "store":
			if len(f) != 6 {
				return nil, fail("store needs ARRAY OFFSET STRIDE WIDTH SRC")
			}
			a, ok := arrays[f[1]]
			if !ok {
				return nil, fail("unknown array %q", f[1])
			}
			off, e1 := strconv.ParseInt(f[2], 10, 64)
			st, e2 := strconv.ParseInt(f[3], 10, 64)
			w, e3 := strconv.Atoi(f[4])
			if e1 != nil || e2 != nil || e3 != nil {
				return nil, fail("bad store operands")
			}
			src, ok := regs[f[5]]
			if !ok {
				return nil, fail("unknown register %q", f[5])
			}
			b.Store("st_"+f[1], a, off, st, w, src)
		case "storex":
			if len(f) != 5 {
				return nil, fail("storex needs ARRAY WIDTH SEED SRC")
			}
			a, ok := arrays[f[1]]
			if !ok {
				return nil, fail("unknown array %q", f[1])
			}
			w, e1 := strconv.Atoi(f[2])
			seed, e2 := strconv.ParseUint(f[3], 10, 64)
			if e1 != nil || e2 != nil {
				return nil, fail("bad storex operands")
			}
			src, ok := regs[f[4]]
			if !ok {
				return nil, fail("unknown register %q", f[4])
			}
			b.StoreIndexed("stx_"+f[1], a, w, seed, src)
		case "carry":
			if len(f) != 4 {
				return nil, fail("carry needs REG FROM DIST")
			}
			d, err := strconv.Atoi(f[3])
			if err != nil || d <= 0 {
				return nil, fail("bad carry distance %q", f[3])
			}
			carries = append(carries, carryFix{lineNo, f[1], f[2], d})
		default:
			// Assignment form: R = op ...
			if len(f) < 3 || f[1] != "=" {
				return nil, fail("unrecognised directive %q", f[0])
			}
			name := f[0]
			if _, dup := regs[name]; dup {
				return nil, fail("register %q redefined", name)
			}
			op := f[2]
			args := f[3:]
			var reg ir.Reg
			switch op {
			case "load", "loadp":
				want := 4
				if op == "loadp" {
					want = 5
				}
				if len(args) != want {
					return nil, fail("%s needs ARRAY OFFSET STRIDE WIDTH%s", op, map[bool]string{true: " PERIOD"}[op == "loadp"])
				}
				a, ok := arrays[args[0]]
				if !ok {
					return nil, fail("unknown array %q", args[0])
				}
				off, e1 := strconv.ParseInt(args[1], 10, 64)
				st, e2 := strconv.ParseInt(args[2], 10, 64)
				w, e3 := strconv.Atoi(args[3])
				if e1 != nil || e2 != nil || e3 != nil {
					return nil, fail("bad %s operands", op)
				}
				if op == "load" {
					reg = b.Load(name, a, off, st, w)
				} else {
					period, err := strconv.Atoi(args[4])
					if err != nil || period < 1 {
						return nil, fail("bad period %q", args[4])
					}
					reg = b.LoadPeriodic(name, a, off, st, w, period)
				}
			case "loadx":
				if len(args) != 3 && len(args) != 4 {
					return nil, fail("loadx needs ARRAY WIDTH SEED [IDX]")
				}
				a, ok := arrays[args[0]]
				if !ok {
					return nil, fail("unknown array %q", args[0])
				}
				w, e1 := strconv.Atoi(args[1])
				seed, e2 := strconv.ParseUint(args[2], 10, 64)
				if e1 != nil || e2 != nil {
					return nil, fail("bad loadx operands")
				}
				idx := ir.NoReg
				if len(args) == 4 {
					r, ok := regs[args[3]]
					if !ok {
						return nil, fail("unknown register %q", args[3])
					}
					idx = r
				}
				reg = b.LoadIndexed(name, a, w, seed, idx)
			case "int", "mul", "fp", "fpmul":
				if len(args) == 0 {
					return nil, fail("%s needs at least one source", op)
				}
				srcs := make([]ir.Reg, 0, len(args))
				for _, s := range args {
					r, ok := regs[s]
					if !ok {
						return nil, fail("unknown register %q", s)
					}
					srcs = append(srcs, r)
				}
				switch op {
				case "int":
					reg = b.Int(name, srcs...)
				case "mul":
					reg = b.IntMul(name, srcs...)
				case "fp":
					reg = b.FP(name, srcs...)
				case "fpmul":
					reg = b.FPMul(name, srcs...)
				}
			default:
				return nil, fail("unknown operation %q", op)
			}
			regs[name] = reg
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("looplang: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("looplang: empty input")
	}
	for _, c := range carries {
		consumer, ok := regs[c.reg]
		if !ok {
			return nil, fmt.Errorf("looplang: line %d: unknown register %q", c.line, c.reg)
		}
		from, ok := regs[c.from]
		if !ok {
			return nil, fmt.Errorf("looplang: line %d: unknown register %q", c.line, c.from)
		}
		b.CarryInto(consumer, from, c.dist)
	}
	return b.BuildErr()
}

// ParseString parses a loop description from a string.
func ParseString(s string) (*ir.Loop, error) {
	return Parse(strings.NewReader(s))
}
