package looplang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
)

const iirSrc = `
# first-order recursive filter
loop iir 1024
array y 8192 4
array x 8192 4
prev = load y -4 4 4
in   = load x 0 4 4
mix  = int prev in
store y 0 4 4 mix
`

func TestParseIIR(t *testing.T) {
	l, err := ParseString(iirSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if l.Name != "iir" || l.TripCount != 1024 {
		t.Errorf("header parsed wrong: %q %d", l.Name, l.TripCount)
	}
	if len(l.Instrs) != 4 {
		t.Fatalf("instrs = %d, want 4", len(l.Instrs))
	}
	if l.Instrs[0].Op != ir.OpLoad || l.Instrs[0].Mem.Offset != -4 {
		t.Errorf("first load parsed wrong: %v", l.Instrs[0])
	}
	if l.Instrs[3].Op != ir.OpStore {
		t.Errorf("store missing")
	}
}

func TestParseCarry(t *testing.T) {
	src := `
loop acc 256
array a 4096 4
v = load a 0 4 4
sum = int v
carry sum sum 1
`
	l, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	def := l.Instrs[1]
	if len(def.Carried) != 1 || def.Carried[0].Distance != 1 || def.Carried[0].Reg != def.Dst {
		t.Errorf("carry not applied: %+v", def.Carried)
	}
}

func TestParseScrambledAndPeriodic(t *testing.T) {
	src := `
loop t 256
array tab 4096 4
array coef 64 4
i = loadx tab 4 99
c = loadp coef 0 4 4 16
m = mul i c
storex tab 4 99 m
specialized
`
	l, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if l.Instrs[0].Mem.Scramble == 0 || l.Instrs[0].Mem.StrideKnown {
		t.Errorf("loadx not scrambled")
	}
	if l.Instrs[1].Mem.IndexPeriod != 16 {
		t.Errorf("period = %d", l.Instrs[1].Mem.IndexPeriod)
	}
	if !l.Specialized {
		t.Errorf("specialized directive ignored")
	}
}

func TestParseFPOps(t *testing.T) {
	src := `
loop f 128
array a 4096 8
v = load a 0 8 8
m = fpmul v
s = fp m
store a 0 8 8 s
`
	l, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if l.Instrs[1].Op != ir.OpFPMul || l.Instrs[2].Op != ir.OpFPALU {
		t.Errorf("FP ops parsed wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no header", "array a 64 4"},
		{"bad trip", "loop x zero"},
		{"dup header", "loop a 10\nloop b 10"},
		{"unknown array", "loop a 10\nv = load nope 0 4 4"},
		{"dup array", "loop a 10\narray x 64 4\narray x 64 4"},
		{"dup register", "loop a 10\narray x 64 4\nv = load x 0 4 4\nv = int v"},
		{"unknown reg", "loop a 10\narray x 64 4\nstore x 0 4 4 ghost"},
		{"bad op", "loop a 10\narray x 64 4\nv = shazam x"},
		{"bad carry dist", "loop a 10\narray x 64 4\nv = load x 0 4 4\ns = int v\ncarry s s 0"},
		{"carry unknown", "loop a 10\narray x 64 4\nv = load x 0 4 4\ncarry v ghost 1"},
		{"bad width", "loop a 10\narray x 64 4\nv = load x 0 4 3"},
		{"garbage", "loop a 10\nwibble wobble"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.src); err == nil {
			t.Errorf("%s: parser accepted invalid input", tc.name)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nloop c 64\n  array a 4096 2  # trailing\n\nv = load a 0 2 2\ns = int v\nstore a 0 2 2 s # done\n"
	if _, err := ParseString(src); err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
}

func TestParsedLoopSchedules(t *testing.T) {
	l, err := ParseString(iirSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !strings.Contains(l.String(), "iir") {
		t.Errorf("loop lost its name")
	}
}

func TestFormatRejectsUnrolled(t *testing.T) {
	l, err := ParseString(iirSrc)
	if err != nil {
		t.Fatal(err)
	}
	l.Unroll = 4
	if _, err := FormatString(l); err == nil {
		t.Errorf("Format accepted an unrolled loop")
	}
}

func TestSampleLoopFilesParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/loops/*.loop")
	if err != nil || len(files) == 0 {
		t.Fatalf("no sample loop files found: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		l, err := ParseString(string(data))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
