package fleet

import (
	"sync"
	"time"
)

// BreakerState is the circuit state of one backend.
type BreakerState string

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the backend failed Threshold consecutive calls and is
	// excluded from assignment until the cooldown passes.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown passed; exactly one trial request is
	// allowed through. Success closes the breaker, failure reopens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker is a per-backend circuit breaker: K consecutive failures open it,
// a cooldown later one probe request is let through (half-open), and that
// probe's outcome decides between closing and reopening. All methods are
// safe for concurrent use — shards fail against the same backend in
// parallel, and only the transition points matter.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	// now is the clock, injectable so breaker tests never sleep.
	now func() time.Time

	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	trial    bool // half-open probe in flight
	opens    int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	//lint:allow wallclock breaker cooldown clock gates retries only; shard results merge by index, so timing never reaches output bytes
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// allow reports whether a request may be sent now. In the open state it
// transitions to half-open once the cooldown has passed and grants the one
// trial slot; later callers are refused until the trial resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// success records a completed request: it closes a half-open breaker and
// clears the consecutive-failure count.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trial = false
}

// failure records a failed request: the half-open trial reopens the
// breaker immediately; in the closed state the K-th consecutive failure
// opens it.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.reopenLocked()
	case BreakerClosed:
		b.fails++
		if b.threshold > 0 && b.fails >= b.threshold {
			b.reopenLocked()
		}
	}
	// Failures reported while already open (in-flight requests that were
	// sent before the breaker tripped) keep it open; openedAt is not
	// extended, or a burst of stragglers could pin the breaker open past
	// its cooldown.
}

func (b *breaker) reopenLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.trial = false
	b.opens++
}

// failureFreeRelease returns a half-open trial slot that allow granted but
// the caller never used (the backend lost an assignment tie) — without it
// one skipped pick would consume the only probe the cooldown grants.
func (b *breaker) failureFreeRelease() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trial = false
	}
}

// snapshot returns the current state and the number of times the breaker
// has opened (for stats).
func (b *breaker) snapshot() (BreakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
