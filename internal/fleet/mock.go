package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
)

// Fault is one scripted misbehavior of a MockBackend.
type Fault int

const (
	// FaultNone serves the request normally.
	FaultNone Fault = iota
	// FaultRefuse fails immediately, like a connection refused.
	FaultRefuse
	// FaultHang blocks until the request context is canceled (a mid-body
	// hang; the caller's per-attempt timeout is what ends it).
	FaultHang
	// Fault5xx returns a BackendError with status 500.
	Fault5xx
	// FaultSlow sleeps SlowDelay, then serves normally (slow-then-ok:
	// succeeds iff the delay fits inside the attempt timeout).
	FaultSlow
	// FaultDie fails this and every later request until Revive — the
	// permanent-death fault.
	FaultDie
)

// MockBackend is the hermetic test double: it computes shards in-process
// on the real harness (so its results are the real bytes) while injecting
// faults from a per-call script. Script entries are consumed one per
// Explore call; when the script runs out, calls succeed. Kill/Revive flip
// the permanent-death state at scripted points mid-chaos-schedule.
type MockBackend struct {
	name string
	// SlowDelay is how long FaultSlow sleeps (default 10ms).
	SlowDelay time.Duration
	// Engine runs the in-process sweeps (default harness.DefaultRunConfig
	// with one worker, keeping chaos tests cheap).
	Engine harness.RunConfig

	mu     sync.Mutex
	script []Fault
	dead   bool
	calls  int
	served int
}

// NewMockBackend builds a healthy mock with the given fault script.
func NewMockBackend(name string, script ...Fault) *MockBackend {
	rc := harness.DefaultRunConfig()
	rc.Workers = 1
	return &MockBackend{name: name, SlowDelay: 10 * time.Millisecond, Engine: rc, script: script}
}

func (m *MockBackend) Name() string { return m.name }

// Kill puts the backend into the permanent-death state (every call fails)
// until Revive. Chaos schedules call this from test hooks mid-sweep.
func (m *MockBackend) Kill() {
	m.mu.Lock()
	m.dead = true
	m.mu.Unlock()
}

// Revive clears the death state.
func (m *MockBackend) Revive() {
	m.mu.Lock()
	m.dead = false
	m.mu.Unlock()
}

// Calls returns how many Explore calls the backend has seen; Served how
// many it completed successfully.
func (m *MockBackend) Calls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

func (m *MockBackend) Served() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.served
}

// next consumes the next scripted fault (death overrides the script).
func (m *MockBackend) next() Fault {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.dead {
		return FaultDie
	}
	if len(m.script) == 0 {
		return FaultNone
	}
	f := m.script[0]
	m.script = m.script[1:]
	if f == FaultDie {
		m.dead = true
	}
	return f
}

func (m *MockBackend) Explore(ctx context.Context, spec harness.ExploreSpec, shard, shards, workers int) (*harness.ExploreResult, error) {
	switch m.next() {
	case FaultRefuse:
		return nil, fmt.Errorf("mock %s: connection refused", m.name)
	case FaultDie:
		return nil, fmt.Errorf("mock %s: backend is dead", m.name)
	case FaultHang:
		<-ctx.Done()
		return nil, fmt.Errorf("mock %s: hung: %w", m.name, ctx.Err())
	case Fault5xx:
		return nil, &BackendError{Status: 500, Msg: "mock internal error"}
	case FaultSlow:
		//lint:allow wallclock fault-injection slow path; the chaos tests cmp the swept bytes regardless of timing
		t := time.NewTimer(m.SlowDelay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	rc := m.Engine
	rc.Ctx = ctx
	res, err := harness.ExploreCfg(rc, spec, shard, shards)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.served++
	m.mu.Unlock()
	return res, nil
}

func (m *MockBackend) Probe(ctx context.Context) (Health, error) {
	m.mu.Lock()
	dead := m.dead
	m.mu.Unlock()
	if dead {
		return Health{}, fmt.Errorf("mock %s: connection refused", m.name)
	}
	return Health{Status: "ok"}, nil
}
