package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// testSpec is the tiny grid every fleet test sweeps: 4 configurations × one
// benchmark. Small enough that chaos schedules with retries stay fast (and
// the process-global result cache makes repeat computation nearly free).
func testSpec() harness.ExploreSpec {
	return harness.ExploreSpec{
		Benches:  []string{"gsmdec"},
		Clusters: []int{4, 8},
		Entries:  []int{4, 8},
	}
}

// serialJSON is the ground truth: the unsharded single-process run.
func serialJSON(t *testing.T, spec harness.ExploreSpec) string {
	t.Helper()
	rc := harness.DefaultRunConfig()
	rc.Workers = 1
	res, err := harness.ExploreCfg(rc, spec, 0, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return exploreJSON(t, res)
}

func exploreJSON(t *testing.T, res *harness.ExploreResult) string {
	t.Helper()
	var b strings.Builder
	if err := harness.WriteExploreJSON(&b, res); err != nil {
		t.Fatalf("emit json: %v", err)
	}
	return b.String()
}

// fastConfig shapes a coordinator for tests: millisecond backoffs, short
// attempt timeouts (the hang fault relies on them), short breaker cooldown.
func fastConfig(backends ...Backend) Config {
	return Config{
		Backends:         backends,
		Retries:          6,
		RequestTimeout:   200 * time.Millisecond,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	}
}

func TestFleetNoFaultsByteIdentical(t *testing.T) {
	spec := testSpec()
	want := serialJSON(t, spec)

	cfg := fastConfig(NewMockBackend("a"), NewMockBackend("b"), NewMockBackend("c"))
	// 5 shards over 4 cells: at least one shard is empty, which must merge
	// cleanly too.
	cfg.Shards = 5
	cfg.Probe = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if got := exploreJSON(t, res); got != want {
		t.Fatalf("fleet output differs from serial run\ngot %d bytes, want %d", len(got), len(want))
	}
	st := c.Stats()
	if st.Retries != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("healthy fleet recorded retries=%d fallbacks=%d", st.Retries, st.LocalFallbacks)
	}
	for _, b := range st.Backends {
		if b.Failures != 0 || b.BreakerState != BreakerClosed {
			t.Fatalf("healthy backend %s: %+v", b.Name, b)
		}
	}
}

func TestFleetSingleBackendSingleShard(t *testing.T) {
	spec := testSpec()
	want := serialJSON(t, spec)
	cfg := fastConfig(NewMockBackend("only"))
	cfg.Shards = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := exploreJSON(t, res); got != want {
		t.Fatal("single-shard fleet output differs from serial run")
	}
}

func TestFleetAllDeadFailsFastWithReport(t *testing.T) {
	spec := testSpec()
	a, b := NewMockBackend("a"), NewMockBackend("b")
	a.Kill()
	b.Kill()
	cfg := fastConfig(a, b)
	cfg.Shards = 3
	cfg.Retries = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), spec)
	var report ShardErrors
	if !errors.As(err, &report) {
		t.Fatalf("want ShardErrors, got %v", err)
	}
	if len(report) != 3 {
		t.Fatalf("want all 3 shards reported, got %d: %v", len(report), err)
	}
	for _, se := range report {
		if se.Attempts < 1 || se.Err == nil {
			t.Fatalf("empty shard report entry: %+v", se)
		}
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("dead fleet recorded no retries: %+v", st)
	}
}

func TestFleetNoBackendsNeedsFallback(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for empty fleet without local fallback")
	}
	spec := testSpec()
	want := serialJSON(t, spec)
	c, err := New(Config{LocalFallback: true, Shards: 2, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := exploreJSON(t, res); got != want {
		t.Fatal("local-fallback-only fleet differs from serial run")
	}
	if st := c.Stats(); st.LocalFallbacks != 2 {
		t.Fatalf("want 2 local fallbacks, got %d", st.LocalFallbacks)
	}
}

func TestFleetCancellation(t *testing.T) {
	spec := testSpec()
	// Every backend hangs; cancellation must cut through the in-flight
	// attempts and backoffs promptly.
	hang := make([]Fault, 64)
	for i := range hang {
		hang[i] = FaultHang
	}
	cfg := fastConfig(NewMockBackend("a", hang...), NewMockBackend("b", hang...))
	cfg.Shards = 2
	cfg.RequestTimeout = 10 * time.Second // only cancellation ends the hang
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, spec)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not end the run")
	}
}

// TestFleetAffinityStableAcrossUnrelatedDeath is the cache-affinity
// contract: when one backend dies, only its shards move — every shard
// assigned to a surviving backend keeps its server, so the survivors'
// bounded caches stay hot on "their" cells.
func TestFleetAffinityStableAcrossUnrelatedDeath(t *testing.T) {
	cfg := fastConfig(NewMockBackend("a"), NewMockBackend("b"), NewMockBackend("c"))
	cfg.BreakerCooldown = time.Hour // an opened breaker stays open
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 64
	before := make([]string, shards)
	for s := 0; s < shards; s++ {
		before[s] = c.pick(s).b.Name()
	}
	// Sanity: the hash actually spreads work.
	owned := map[string]int{}
	for _, n := range before {
		owned[n]++
	}
	if len(owned) != 3 {
		t.Fatalf("rendezvous assigned to %d of 3 backends: %v", len(owned), owned)
	}

	// Kill c: open its breaker via consecutive failures.
	var dead *backendRef
	for _, ref := range c.backends {
		if ref.b.Name() == "c" {
			dead = ref
		}
	}
	for i := 0; i < cfg.BreakerThreshold; i++ {
		dead.brk.failure()
	}
	if st, _ := dead.brk.snapshot(); st != BreakerOpen {
		t.Fatalf("breaker did not open: %v", st)
	}

	moved := 0
	for s := 0; s < shards; s++ {
		after := c.pick(s).b.Name()
		if after == "c" {
			t.Fatalf("shard %d still assigned to dead backend", s)
		}
		if before[s] == "c" {
			moved++
			continue
		}
		if after != before[s] {
			t.Fatalf("shard %d moved %s -> %s though its backend survived", s, before[s], after)
		}
	}
	if moved != owned["c"] {
		t.Fatalf("moved %d shards, want exactly the dead backend's %d", moved, owned["c"])
	}
}

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatal("closed breaker must allow")
		}
		b.failure()
	}
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("2 failures must not open (threshold 3): %v", st)
	}
	b.failure()
	if st, opens := b.snapshot(); st != BreakerOpen || opens != 1 {
		t.Fatalf("3rd consecutive failure must open: %v opens=%d", st, opens)
	}
	if b.allow() {
		t.Fatal("open breaker inside cooldown must refuse")
	}

	// Cooldown passes: exactly one half-open trial.
	now = now.Add(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed: must grant the half-open trial")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("want half-open, got %v", st)
	}
	if b.allow() {
		t.Fatal("second caller must not get a trial while one is in flight")
	}
	b.failure()
	if st, opens := b.snapshot(); st != BreakerOpen || opens != 2 {
		t.Fatalf("failed trial must reopen: %v opens=%d", st, opens)
	}

	// Next cooldown: a successful trial closes it and clears the count.
	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("second cooldown elapsed: must grant a trial")
	}
	b.success()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("successful trial must close: %v", st)
	}
	b.failure()
	b.failure()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("failure count must reset on close")
	}

	// An unused trial slot can be handed back.
	b.failure() // 3rd consecutive -> open
	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("want trial")
	}
	b.failureFreeRelease()
	if !b.allow() {
		t.Fatal("released trial slot must be grantable again")
	}
}

func TestWireSchedGuard(t *testing.T) {
	m := NewMockBackend("m")
	h := NewHTTPBackend("http://127.0.0.1:1", nil)
	spec := testSpec()
	spec.Sched.PrefetchDistance = 2 // not representable on the wire
	if _, err := h.Explore(context.Background(), spec, 0, 1, 0); err == nil || !strings.Contains(err.Error(), "wire form") {
		t.Fatalf("HTTP backend must reject off-wire scheduler options, got %v", err)
	}
	_ = m
}
