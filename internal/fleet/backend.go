// Package fleet is the multi-server sweep coordinator behind cmd/l0fleet:
// it splits one design-space sweep into shards along the existing
// `-shard i/M` identity, assigns each shard to one of N l0served backends
// with cache-affinity hashing, and merges the shard results back into a
// result byte-identical to an unsharded single-process run — under any
// schedule of backend failures.
//
// Robustness, not speed, is the contract. Every shard request runs under a
// per-attempt timeout with capped exponential backoff plus jitter between
// attempts and a bounded retry budget; a backend that fails K consecutive
// calls is circuit-broken (open → half-open probe → closed) so a dead
// server stops eating the budget of every shard; a dead server's shards
// requeue onto survivors without disturbing the shard→server affinity of
// live assignments (rendezvous hashing: removing a backend only moves the
// shards it owned); and with local fallback enabled, orphaned shards run
// in-process on the harness so the sweep completes even if every backend
// dies. Without fallback the coordinator fails fast with a per-shard error
// report instead of hanging.
//
// The Backend interface is the platform-adapter seam (ReqBench's pattern):
// the real HTTP backend and a scriptable fault-injecting mock implement the
// same three methods, so the coordinator's failure handling is tested
// hermetically — chaos tests kill and revive mock backends at scripted
// points and assert the merged bytes never change.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/workload"
)

// Backend abstracts one sweep-serving replica. Implementations must be safe
// for concurrent use (the coordinator fans shards out in parallel) and must
// honor context cancellation in Explore — a hung backend is one of the
// faults the coordinator is built to survive.
type Backend interface {
	// Name identifies the backend in stats and error reports, and is the
	// identity the affinity hash keys on — it must be stable across calls.
	Name() string
	// Explore computes shard `shard` of `shards` of the sweep and returns
	// the partial (or, for 0/1, complete) result.
	Explore(ctx context.Context, spec harness.ExploreSpec, shard, shards, workers int) (*harness.ExploreResult, error)
	// Probe checks liveness and readiness (the /healthz contract).
	Probe(ctx context.Context) (Health, error)
}

// Health is a backend's readiness report — the enriched /healthz body. A
// backend can be alive but not accepting (draining before shutdown); the
// prober treats that as not ready.
type Health struct {
	Status          string  `json:"status"`
	Accepting       *bool   `json:"accepting,omitempty"`
	QueueDepth      int64   `json:"queue_depth"`
	Running         int     `json:"running"`
	WorkerSlotsFree int     `json:"worker_slots_free"`
	WorkerBudget    int     `json:"worker_budget"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

// Ready reports whether the backend can take work: status ok and, when the
// server reports an accepting flag (older servers don't), accepting.
func (h Health) Ready() bool {
	return h.Status == "ok" && (h.Accepting == nil || *h.Accepting)
}

// BackendError is a structured (non-transport) failure from a backend: an
// HTTP status with the server's decoded error message. 5xx and 429/503
// responses are retryable faults like any transport error; the coordinator
// treats every shard-attempt error the same way.
type BackendError struct {
	Status int
	Msg    string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("backend: HTTP %d: %s", e.Status, e.Msg)
}

// NewHTTPClient builds the shared HTTP client for talking to l0served: real
// dial/TLS deadlines (the stdlib default client has none, so a dead route
// hangs forever) and an overall request timeout. timeout 0 means no overall
// bound — callers that manage per-request deadlines via context (the fleet
// coordinator) pass 0; one-shot CLI calls (l0explore -server) pass a
// generous bound so a wedged server can never hang the process.
func NewHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 0, // sweeps legitimately take a while
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// HTTPBackend talks to one l0served over its /v1/explore and /healthz
// endpoints. Per-attempt timeouts come from the caller's context; the
// embedded client only contributes connection-level deadlines.
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend wraps one l0served base URL. client nil selects a shared
// default with no overall timeout (per-request deadlines come from the
// coordinator's contexts).
func NewHTTPBackend(baseURL string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = NewHTTPClient(0)
	}
	return &HTTPBackend{base: strings.TrimRight(baseURL, "/"), client: client}
}

func (b *HTTPBackend) Name() string { return b.base }

// wireSched is the scheduler-option subset the /v1/explore wire form can
// carry. A spec using options beyond it would silently change identity
// across the HTTP hop and poison the byte-identical merge, so Explore
// rejects such specs up front instead.
func wireSched(o sched.Options) (adaptive, markall bool, err error) {
	if o.UseL0 || o.AllowPSR || o.DisableExplicitPrefetch ||
		o.PrefetchDistance != 0 || o.MaxII != 0 || o.RegistersPerCluster != 0 ||
		o.LoadLatencyFn != nil || o.PreferredClusterFn != nil {
		return false, false, fmt.Errorf("fleet: spec scheduler options %+v exceed the /v1/explore wire form", o)
	}
	return o.AdaptivePrefetchDistance, o.MarkAllCandidates, nil
}

// wireKernels converts the spec's Kernels entries to self-contained wire
// form: a content-hash reference is replaced by the canonical source from
// the local registry (the remote has no reason to know our hashes yet), and
// inline sources ship as-is. The remote registers each source under the same
// content hash, so the shard's spec identity is bit-equal to a local run's
// and the byte-identical merge survives the HTTP hop.
func wireKernels(kernels []string) ([]string, error) {
	if len(kernels) == 0 {
		return nil, nil
	}
	out := make([]string, 0, len(kernels))
	for _, k := range kernels {
		if ref := strings.TrimSpace(k); workload.IsKernelID(ref) {
			reg, ok := workload.KernelByID(ref)
			if !ok {
				return nil, fmt.Errorf("fleet: kernel %s is not in the local registry; register its source first", ref)
			}
			out = append(out, reg.Source)
			continue
		}
		out = append(out, k)
	}
	return out, nil
}

func (b *HTTPBackend) Explore(ctx context.Context, spec harness.ExploreSpec, shard, shards, workers int) (*harness.ExploreResult, error) {
	adaptive, markall, err := wireSched(spec.Sched)
	if err != nil {
		return nil, err
	}
	kernels, err := wireKernels(spec.Kernels)
	if err != nil {
		return nil, err
	}
	req := server.ExploreRequest{
		Benches: spec.Benches, Kernels: kernels,
		Clusters: spec.Clusters, Entries: spec.Entries,
		Subblocks: spec.Subblocks, L1Latencies: spec.L1Latencies,
		PrefetchDists: spec.PrefetchDists, RegBudgets: spec.RegBudgets,
		Adaptive: adaptive, MarkAll: markall,
		Workers: workers, Format: "json",
		Shard: shard, Shards: shards,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/explore", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp)
	}
	res, err := harness.ReadExploreJSON(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("backend %s: decode explore result: %w", b.base, err)
	}
	return res, nil
}

func (b *HTTPBackend) Probe(ctx context.Context) (Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := b.client.Do(hreq)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, decodeError(resp)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("backend %s: decode healthz: %w", b.base, err)
	}
	return h, nil
}

// decodeError turns a non-2xx response into a BackendError carrying the
// server's structured message (the error body is surfaced, never dumped
// into result output).
func decodeError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(msg, &e) == nil && e.Error != "" {
		return &BackendError{Status: resp.StatusCode, Msg: e.Error}
	}
	return &BackendError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
}
