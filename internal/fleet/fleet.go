package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// Config tunes one Coordinator. The zero value of every field selects a
// sane default; only Backends is mandatory (unless LocalFallback is set, in
// which case an empty fleet degenerates to a local sharded run).
type Config struct {
	// Backends are the sweep servers. Names must be unique — the affinity
	// hash keys on them.
	Backends []Backend
	// Shards is how many slices the grid is cut into; <= 0 selects
	// 2×len(Backends) (floor 1) so a lost server's work requeues in
	// halves, not as one monolithic re-run.
	Shards int
	// Retries is the per-shard retry budget beyond the first attempt;
	// < 0 means no retries. Default 4.
	Retries int
	// RequestTimeout bounds each shard attempt. Default 5m.
	RequestTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the capped exponential backoff between
	// a shard's attempts (equal jitter: sleep in [d/2, d)). Defaults
	// 50ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold opens a backend's circuit after this many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before a half-open probe (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Probe, when set, probes every backend's /healthz before assigning
	// work; an unready backend starts with one recorded failure so dead
	// servers trip their breakers sooner.
	Probe bool
	// ProbeTimeout bounds each health probe. Default 5s.
	ProbeTimeout time.Duration
	// LocalFallback runs a shard in-process (harness.ExploreCfg) once its
	// retry budget is exhausted — the sweep then completes even if every
	// backend is dead. Without it the run fails fast with a per-shard
	// error report.
	LocalFallback bool
	// Workers is the per-request worker hint passed to backends and the
	// local fallback engine (0 = backend/engine default).
	Workers int
	// Logf, when non-nil, receives coordinator progress lines (retries,
	// breaker trips, fallbacks).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2 * len(c.Backends)
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.Retries == 0 {
		c.Retries = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	return c
}

// BackendStats is one backend's request accounting.
type BackendStats struct {
	Name          string       `json:"name"`
	Requests      int64        `json:"requests"`
	Successes     int64        `json:"successes"`
	Failures      int64        `json:"failures"`
	Timeouts      int64        `json:"timeouts"`
	ProbeFailures int64        `json:"probe_failures"`
	BreakerState  BreakerState `json:"breaker_state"`
	BreakerOpens  int64        `json:"breaker_opens"`
}

// Stats is the fleet-wide view exposed by Coordinator.Stats (the
// /v1/fleetstats-style report cmd/l0fleet prints).
type Stats struct {
	Shards         int            `json:"shards"`
	Retries        int64          `json:"retries"`
	Requeues       int64          `json:"requeues"`
	LocalFallbacks int64          `json:"local_fallbacks"`
	Backends       []BackendStats `json:"backends"`
}

// backendRef is one backend plus its runtime accounting.
type backendRef struct {
	b   Backend
	brk *breaker

	requests, successes, failures, timeouts, probeFails atomic.Int64
}

// ShardError reports one shard that exhausted its retry budget.
type ShardError struct {
	Shard    int
	Attempts int
	Err      error
}

// ShardErrors is the fail-fast report when LocalFallback is off and at
// least one shard could not be completed.
type ShardErrors []ShardError

func (es ShardErrors) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d shard(s) failed:", len(es))
	for _, e := range es {
		fmt.Fprintf(&b, "\n  shard %d after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
	}
	return b.String()
}

// Coordinator fans one sweep across a fleet of backends and merges the
// shards back byte-identically. One Coordinator runs one sweep at a time
// (stats are cumulative across runs).
type Coordinator struct {
	cfg      Config
	backends []*backendRef

	retries, requeues, fallbacks atomic.Int64

	// sleep is time.Sleep with context awareness, injectable for tests.
	sleep func(ctx context.Context, d time.Duration)

	// jitterMu guards rng: equal-jitter backoff draws are the only
	// nondeterminism in the coordinator, and none of it reaches the
	// output bytes.
	jitterMu sync.Mutex
	rng      *rand.Rand
}

// New validates the configuration and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 && !cfg.LocalFallback {
		return nil, errors.New("fleet: no backends and no local fallback")
	}
	seen := map[string]bool{}
	c := &Coordinator{
		cfg:   cfg,
		sleep: sleepCtx,
		//lint:allow wallclock backoff jitter seed; retry delays never reach output bytes (results merge by cell index)
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, b := range cfg.Backends {
		if b.Name() == "" {
			return nil, errors.New("fleet: backend with empty name")
		}
		if seen[b.Name()] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b.Name())
		}
		seen[b.Name()] = true
		c.backends = append(c.backends, &backendRef{
			b:   b,
			brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	return c, nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	//lint:allow wallclock context-aware retry sleep; pacing only, no output bytes
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Stats snapshots the per-backend and fleet-wide counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Shards:         c.cfg.Shards,
		Retries:        c.retries.Load(),
		Requeues:       c.requeues.Load(),
		LocalFallbacks: c.fallbacks.Load(),
	}
	for _, ref := range c.backends {
		state, opens := ref.brk.snapshot()
		st.Backends = append(st.Backends, BackendStats{
			Name:          ref.b.Name(),
			Requests:      ref.requests.Load(),
			Successes:     ref.successes.Load(),
			Failures:      ref.failures.Load(),
			Timeouts:      ref.timeouts.Load(),
			ProbeFailures: ref.probeFails.Load(),
			BreakerState:  state,
			BreakerOpens:  opens,
		})
	}
	return st
}

// Run executes the sweep: probe (optional), fan out shards, merge. The
// merged result is byte-identical to harness.ExploreCfg(spec, 0, 1) run in
// one process — cells are a pure function of their grid index, so neither
// the shard count, the backend schedule, nor any pattern of retries and
// fallbacks can change a byte. Cancel ctx to abort every in-flight shard
// request.
func (c *Coordinator) Run(ctx context.Context, spec harness.ExploreSpec) (*harness.ExploreResult, error) {
	if c.cfg.Probe {
		c.probeAll(ctx)
	}
	shards := c.cfg.Shards
	parts := make([]*harness.ExploreResult, shards)
	errs := make([]error, shards)
	attempts := make([]int, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			parts[shard], attempts[shard], errs[shard] = c.runShard(ctx, spec, shard)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var report ShardErrors
	for i, err := range errs {
		if err != nil {
			report = append(report, ShardError{Shard: i, Attempts: attempts[i], Err: err})
		}
	}
	if len(report) > 0 {
		return nil, report
	}
	return harness.MergeExplore(parts...)
}

// probeAll health-checks every backend in parallel. An unready backend is
// charged one breaker failure — not an immediate exclusion, so a transient
// probe blip cannot strand a healthy server, but a truly dead one opens
// its breaker after the first couple of shard attempts pile on.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ref := range c.backends {
		wg.Add(1)
		go func(ref *backendRef) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			h, err := ref.b.Probe(pctx)
			if err != nil || !h.Ready() {
				ref.probeFails.Add(1)
				ref.brk.failure()
				c.logf("fleet: probe %s: not ready (%v)", ref.b.Name(), err)
				return
			}
			ref.brk.success()
		}(ref)
	}
	wg.Wait()
}

// rendezvousScore is the highest-random-weight score binding one shard to
// one backend name. It depends on nothing else — in particular not on the
// set of live backends — which is what makes assignment stable: the
// best-scoring live backend for a shard only changes when that backend
// itself dies or revives.
func rendezvousScore(shard int, name string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", shard, name)
	return h.Sum64()
}

// pick returns the backend that should serve the shard now: the
// highest-scoring backend whose breaker admits a request. Ties (FNV
// collisions) break by name so the choice is deterministic. nil means no
// backend is currently willing.
func (c *Coordinator) pick(shard int) *backendRef {
	var best *backendRef
	var bestScore uint64
	for _, ref := range c.backends {
		if !ref.brk.allow() {
			continue
		}
		s := rendezvousScore(shard, ref.b.Name())
		if best == nil || s > bestScore || (s == bestScore && ref.b.Name() < best.b.Name()) {
			// A half-open trial slot was consumed by allow(); give it
			// back if this backend loses the tie, or one skipped pick
			// would eat the only probe the breaker grants per cooldown.
			if best != nil {
				best.brk.failureFreeRelease()
			}
			best, bestScore = ref, s
		} else {
			ref.brk.failureFreeRelease()
		}
	}
	return best
}

// runShard drives one shard to completion: affinity-picked backend,
// per-attempt timeout, backoff with jitter, bounded budget, then local
// fallback or a reported error.
func (c *Coordinator) runShard(ctx context.Context, spec harness.ExploreSpec, shard int) (*harness.ExploreResult, int, error) {
	var prev *backendRef
	var lastErr error
	attempts := 0
	maxAttempts := 1 + c.cfg.Retries
	for attempts < maxAttempts {
		if err := ctx.Err(); err != nil {
			return nil, attempts, err
		}
		ref := c.pick(shard)
		attempts++
		if attempts > 1 {
			c.retries.Add(1)
		}
		if ref == nil {
			// Every breaker is open: count the round against the budget
			// (a fleet that is entirely down must exhaust, not spin) and
			// wait out a slice of the cooldown.
			lastErr = errors.New("no backend available (all circuit breakers open)")
			c.backoff(ctx, attempts)
			continue
		}
		if prev != nil && ref != prev {
			c.requeues.Add(1)
			c.logf("fleet: shard %d requeued %s -> %s", shard, prev.b.Name(), ref.b.Name())
		}
		res, err := c.attempt(ctx, ref, spec, shard)
		if err == nil {
			return res, attempts, nil
		}
		lastErr = fmt.Errorf("%s: %w", ref.b.Name(), err)
		prev = ref
		if ctx.Err() != nil {
			return nil, attempts, ctx.Err()
		}
		if attempts < maxAttempts {
			c.backoff(ctx, attempts)
		}
	}
	if c.cfg.LocalFallback {
		c.fallbacks.Add(1)
		c.logf("fleet: shard %d falling back to in-process run (last error: %v)", shard, lastErr)
		rc := harness.DefaultRunConfig()
		rc.Ctx = ctx
		if c.cfg.Workers > 0 {
			rc.Workers = c.cfg.Workers
		}
		res, err := harness.ExploreCfg(rc, spec, shard, c.cfg.Shards)
		return res, attempts, err
	}
	return nil, attempts, lastErr
}

// attempt runs one timed request against one backend and updates its
// breaker and counters.
func (c *Coordinator) attempt(ctx context.Context, ref *backendRef, spec harness.ExploreSpec, shard int) (*harness.ExploreResult, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	ref.requests.Add(1)
	res, err := ref.b.Explore(actx, spec, shard, c.cfg.Shards, c.cfg.Workers)
	if err == nil {
		ref.successes.Add(1)
		ref.brk.success()
		return res, nil
	}
	ref.failures.Add(1)
	// The parent context canceling is the caller's abort, not the
	// backend's fault; only a per-attempt deadline counts as a timeout.
	if actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		ref.timeouts.Add(1)
	}
	if ctx.Err() == nil {
		ref.brk.failure()
	}
	return nil, err
}

// backoff sleeps the capped exponential equal-jitter delay for the given
// attempt number (1-based).
func (c *Coordinator) backoff(ctx context.Context, attempt int) {
	d := c.cfg.BaseBackoff << uint(attempt-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.jitterMu.Lock()
	//lint:allow wallclock equal-jitter draw; chooses a sleep duration, never output bytes
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.jitterMu.Unlock()
	c.sleep(ctx, d/2+jitter)
}
