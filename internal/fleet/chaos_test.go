package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
)

// TestFleetChaosSchedulesByteIdentical is the headline contract: for every
// scripted schedule of injected faults — connection refusals, mid-body
// hangs, 5xx storms, slow responses, permanent deaths, even the whole fleet
// dying with local fallback on — the merged result is byte-identical to the
// unsharded single-process run. Failures may cost retries, requeues and
// fallbacks; they may never cost a byte.
func TestFleetChaosSchedulesByteIdentical(t *testing.T) {
	spec := testSpec()
	want := serialJSON(t, spec)

	many := func(f Fault, n int) []Fault {
		s := make([]Fault, n)
		for i := range s {
			s[i] = f
		}
		return s
	}

	cases := []struct {
		name string
		// build returns the backends and an optional mid-run hook.
		build         func() ([]Backend, func(*Coordinator))
		tweak         func(*Config)
		wantRetries   bool
		wantFallbacks bool
	}{
		{
			name: "refuse-twice-then-ok",
			build: func() ([]Backend, func(*Coordinator)) {
				return []Backend{NewMockBackend("a", FaultRefuse, FaultRefuse), NewMockBackend("b")}, nil
			},
			wantRetries: true,
		},
		{
			name: "flaky-both",
			build: func() ([]Backend, func(*Coordinator)) {
				return []Backend{
					NewMockBackend("a", Fault5xx, FaultNone, Fault5xx),
					NewMockBackend("b", FaultRefuse),
				}, nil
			},
			wantRetries: true,
		},
		{
			name: "permanent-5xx-opens-breaker",
			build: func() ([]Backend, func(*Coordinator)) {
				return []Backend{NewMockBackend("a", many(Fault5xx, 64)...), NewMockBackend("b")}, nil
			},
			wantRetries: true,
		},
		{
			name: "hang-requeues-under-timeout",
			build: func() ([]Backend, func(*Coordinator)) {
				return []Backend{NewMockBackend("a", FaultHang, FaultHang), NewMockBackend("b")}, nil
			},
			tweak:       func(c *Config) { c.RequestTimeout = 50 * time.Millisecond },
			wantRetries: true,
		},
		{
			name: "slow-within-timeout",
			build: func() ([]Backend, func(*Coordinator)) {
				a := NewMockBackend("a", FaultSlow, FaultSlow)
				a.SlowDelay = 10 * time.Millisecond
				return []Backend{a, NewMockBackend("b")}, nil
			},
		},
		{
			name: "slow-exceeds-timeout",
			build: func() ([]Backend, func(*Coordinator)) {
				a := NewMockBackend("a", FaultSlow)
				a.SlowDelay = 500 * time.Millisecond
				return []Backend{a, NewMockBackend("b")}, nil
			},
			tweak:       func(c *Config) { c.RequestTimeout = 50 * time.Millisecond },
			wantRetries: true,
		},
		{
			name: "dies-after-first-success",
			build: func() ([]Backend, func(*Coordinator)) {
				return []Backend{NewMockBackend("a", FaultNone, FaultDie), NewMockBackend("b")}, nil
			},
		},
		{
			name: "kill-mid-run-then-revive",
			build: func() ([]Backend, func(*Coordinator)) {
				a := NewMockBackend("a")
				kill := func(*Coordinator) {
					a.Kill()
					time.AfterFunc(60*time.Millisecond, a.Revive)
				}
				return []Backend{a, NewMockBackend("b")}, kill
			},
		},
		{
			name: "all-die-local-fallback",
			build: func() ([]Backend, func(*Coordinator)) {
				a, b := NewMockBackend("a"), NewMockBackend("b")
				a.Kill()
				b.Kill()
				return []Backend{a, b}, nil
			},
			tweak:         func(c *Config) { c.LocalFallback = true; c.Retries = 2 },
			wantRetries:   true,
			wantFallbacks: true,
		},
		{
			name: "fallback-only-empty-fleet",
			build: func() ([]Backend, func(*Coordinator)) {
				return nil, nil
			},
			tweak: func(c *Config) {
				c.LocalFallback = true
				c.Shards = 3
				c.Retries = -1
			},
			wantFallbacks: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backends, hook := tc.build()
			cfg := fastConfig(backends...)
			cfg.Shards = 4
			cfg.Probe = false // probing is exercised separately; scripts count calls
			if tc.tweak != nil {
				tc.tweak(&cfg)
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if hook != nil {
				hook(c)
			}
			res, err := c.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("fleet run under %s: %v", tc.name, err)
			}
			if got := exploreJSON(t, res); got != want {
				t.Fatalf("output differs from serial run under fault schedule %s", tc.name)
			}
			st := c.Stats()
			if tc.wantRetries && st.Retries == 0 {
				t.Fatalf("schedule %s: expected retries, stats %+v", tc.name, st)
			}
			if tc.wantFallbacks != (st.LocalFallbacks > 0) {
				t.Fatalf("schedule %s: fallbacks=%d, want >0=%v", tc.name, st.LocalFallbacks, tc.wantFallbacks)
			}
		})
	}
}

// TestFleetTimeoutCounted pins the timeout classification: an attempt ended
// by its per-request deadline increments the backend's timeout counter.
func TestFleetTimeoutCounted(t *testing.T) {
	spec := testSpec()
	// Warm the shared schedule/result caches so the healthy backend answers
	// in microseconds: only the deliberately hung backend may ever exceed the
	// tight RequestTimeout below, even under -race on a loaded single CPU.
	serialJSON(t, spec)
	a := NewMockBackend("a", FaultHang, FaultHang, FaultHang, FaultHang)
	cfg := fastConfig(a, NewMockBackend("b"))
	cfg.Shards = 2
	cfg.RequestTimeout = 30 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Stats().Backends {
		if b.Name == "a" && a.Calls() > a.Served() && b.Timeouts == 0 {
			t.Fatalf("hung backend recorded no timeouts: %+v", b)
		}
	}
}

// TestFleetHTTPBackendsEndToEnd runs the real HTTP backend against in-process
// l0served handlers: one live server and one that is already gone
// (connection refused). The fleet must complete on the survivor and the
// bytes must match the serial run — the same parity the fleet-smoke script
// proves against real processes with a mid-sweep SIGKILL.
func TestFleetHTTPBackendsEndToEnd(t *testing.T) {
	spec := testSpec()
	want := serialJSON(t, spec)

	live := httptest.NewServer(server.New(server.Config{}).Handler())
	defer live.Close()
	dead := httptest.NewServer(server.New(server.Config{}).Handler())
	dead.Close() // port now refuses connections

	client := NewHTTPClient(0)
	cfg := fastConfig(NewHTTPBackend(live.URL, client), NewHTTPBackend(dead.URL, client))
	cfg.Shards = 6
	cfg.Probe = true
	cfg.RequestTimeout = time.Minute
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fleet over HTTP: %v", err)
	}
	if got := exploreJSON(t, res); got != want {
		t.Fatal("HTTP fleet output differs from serial run")
	}
	// The dead server must have been probed unhealthy or failed requests;
	// either way the survivor did all the work.
	var liveOK bool
	for _, b := range c.Stats().Backends {
		if b.Name == live.URL && b.Successes > 0 {
			liveOK = true
		}
		if b.Name == dead.URL && b.Successes != 0 {
			t.Fatalf("dead server reported successes: %+v", b)
		}
	}
	if !liveOK {
		t.Fatal("live server served nothing")
	}
}

// TestFleetShardedServerParity checks the server-side shard support the
// fleet relies on: asking one in-process server for each half of the grid
// and merging must reproduce the unsharded bytes.
func TestFleetShardedServerParity(t *testing.T) {
	spec := testSpec()
	want := serialJSON(t, spec)
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	b := NewHTTPBackend(ts.URL, nil)
	var parts []*harness.ExploreResult
	for shard := 0; shard < 2; shard++ {
		p, err := b.Explore(context.Background(), spec, shard, 2, 0)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		parts = append(parts, p)
	}
	merged, err := harness.MergeExplore(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if got := exploreJSON(t, merged); got != want {
		t.Fatal("server-sharded merge differs from serial run")
	}
}
