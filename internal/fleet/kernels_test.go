package fleet

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workload"
)

// fleetKernelSrc is a non-canonical spelling: both the coordinator's local
// registration and the remote server's must normalize it to one identity.
const fleetKernelSrc = `
# fleet-swept user kernel
loop fleetmac 512
array acc 8192 4
array coef 8192 4
a = load acc  0 4 4
c = load coef 0 4 4
p = mul a c
s = int p
store acc 0 4 4 s
`

// TestFleetKernelSweepOverHTTP is the fleet leg of the kernel-identity
// acceptance: a spec referencing a locally registered kernel by content
// hash fans out over real HTTP backends (the wire form ships the source)
// and merges byte-identical to the unsharded local run.
func TestFleetKernelSweepOverHTTP(t *testing.T) {
	harness.ResetCaches()
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()
	defer harness.ResetCaches()

	reg, err := workload.RegisterKernelSource(fleetKernelSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	spec := harness.ExploreSpec{
		Benches:  []string{"gsmdec"},
		Kernels:  []string{reg.ID},
		Clusters: []int{4, 8},
		Entries:  []int{4, 8},
	}
	want := serialJSON(t, spec)

	// Two fresh server processes (no registry shared with this one beyond
	// the process-global state the httptest servers do share — the wire
	// request must still carry the source, see wireKernels).
	s1 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer s1.Close()
	s2 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer s2.Close()

	client := NewHTTPClient(0)
	cfg := fastConfig(NewHTTPBackend(s1.URL, client), NewHTTPBackend(s2.URL, client))
	cfg.Shards = 4
	cfg.RequestTimeout = time.Minute
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fleet kernel sweep: %v", err)
	}
	if got := exploreJSON(t, res); got != want {
		t.Fatal("fleet kernel sweep differs from unsharded local run")
	}
}

// TestWireKernelsResolution pins the wire conversion: hash references are
// replaced by the registered canonical source, inline sources pass through,
// and an unregistered hash is an error before any request goes out.
func TestWireKernelsResolution(t *testing.T) {
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()

	reg, err := workload.RegisterKernelSource(fleetKernelSrc)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	out, err := wireKernels([]string{reg.ID, fleetKernelSrc})
	if err != nil {
		t.Fatalf("wireKernels: %v", err)
	}
	if len(out) != 2 || out[0] != reg.Source || out[1] != fleetKernelSrc {
		t.Errorf("wireKernels = %q, want [canonical source, inline source]", out)
	}
	if _, err := wireKernels([]string{strings.Repeat("0", 64)}); err == nil {
		t.Errorf("unregistered hash reference did not error")
	}
	if out, err := wireKernels(nil); err != nil || out != nil {
		t.Errorf("empty kernel list: %v %v", out, err)
	}
}
