// Package mem models the memory hierarchy of the proposed architecture: the
// per-cluster flexible compiler-managed L0 buffers (fully associative, LRU,
// write-through, with linear and interleaved subblock mapping and automatic
// positive/negative prefetch triggers), the unified set-associative L1 data
// cache, the always-hit L2, and the single bus that connects each cluster to
// L1 (whose next-cycle availability is what the SEQ_ACCESS hint guarantees).
//
// All timing is expressed in absolute (post-stall) cycles supplied by the
// execution engine; the package computes data-ready times and mutates cache
// state but never advances time itself.
package mem

import (
	"fmt"

	"repro/internal/arch"
)

// l0Entry is one subblock cached in an L0 buffer. Linear entries hold
// consecutive bytes [SubAddr, SubAddr+subBytes). Interleaved entries hold
// the elements of L1 block BlockAddr whose element index ≡ Lane (mod
// clusters) at element width Factor.
type l0Entry struct {
	valid       bool
	interleaved bool
	subAddr     int64 // linear
	blockAddr   int64 // interleaved
	lane        int
	factor      int
	// validAt is when the fill completes (in-flight entries satisfy
	// hits only after this time).
	validAt int64
	lastUse int64
	// versions is the coherence checker's byte-version snapshot (nil
	// unless checking is enabled).
	versions map[int64]uint64
}

// L0Buffer is one cluster's flexible compiler-managed L0 buffer.
type L0Buffer struct {
	cfg      arch.Config
	cluster  int
	entries  []l0Entry
	capacity int
	stats    *Stats
	coh      *cohState
}

// NewL0Buffer returns an empty buffer for the given cluster.
func NewL0Buffer(cfg arch.Config, cluster int, stats *Stats) *L0Buffer {
	capacity := cfg.L0Entries
	pre := capacity
	if capacity >= arch.Unbounded {
		pre = 64 // grows on demand
	}
	return &L0Buffer{
		cfg:      cfg,
		cluster:  cluster,
		entries:  make([]l0Entry, pre),
		capacity: capacity,
		stats:    stats,
	}
}

// Lookup returns the index of an entry containing [addr, addr+width) or -1.
// A hit on an in-flight entry is still a hit; the caller must wait for
// validAt. Entries that only hold part of the requested bytes (interleaved
// data touched at a different granularity, §3.3) do not match.
func (b *L0Buffer) Lookup(addr int64, width int) int {
	for i := range b.entries {
		if b.entries[i].valid && b.contains(&b.entries[i], addr, width) {
			return i
		}
	}
	return -1
}

func (b *L0Buffer) contains(e *l0Entry, addr int64, width int) bool {
	if !e.interleaved {
		return e.subAddr <= addr && addr+int64(width) <= e.subAddr+int64(b.cfg.L0SubblockBytes)
	}
	if width != e.factor {
		return false // cross-granularity access: forwarded to L1 (§3.3)
	}
	off := addr - e.blockAddr
	if off < 0 || off >= int64(b.cfg.L1BlockBytes) || off%int64(e.factor) != 0 {
		return false
	}
	return (off/int64(e.factor))%int64(b.cfg.Clusters) == int64(e.lane)
}

// Touch refreshes the LRU stamp of entry i.
func (b *L0Buffer) Touch(i int, now int64) { b.entries[i].lastUse = now }

// ValidAt returns the fill-completion time of entry i.
func (b *L0Buffer) ValidAt(i int) int64 { return b.entries[i].validAt }

// HasLinear reports whether a linear entry for the exact subblock exists
// (valid or in flight); used to suppress duplicate prefetches.
func (b *L0Buffer) HasLinear(subAddr int64) bool {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && !e.interleaved && e.subAddr == subAddr {
			return true
		}
	}
	return false
}

// HasInterleaved reports whether an interleaved entry (block, lane, factor)
// exists.
func (b *L0Buffer) HasInterleaved(blockAddr int64, lane, factor int) bool {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.interleaved && e.blockAddr == blockAddr && e.lane == lane && e.factor == factor {
			return true
		}
	}
	return false
}

// AllocLinear inserts a linear subblock, evicting the LRU entry if needed.
func (b *L0Buffer) AllocLinear(subAddr, validAt, now int64) {
	i := b.victim(now)
	b.entries[i] = l0Entry{valid: true, subAddr: subAddr, validAt: validAt, lastUse: now}
	b.checkFill(i)
	b.stats.LinearSubblocks++
}

// AllocInterleaved inserts one lane of an interleaved block fill.
func (b *L0Buffer) AllocInterleaved(blockAddr int64, lane, factor int, validAt, now int64) {
	i := b.victim(now)
	b.entries[i] = l0Entry{
		valid: true, interleaved: true,
		blockAddr: blockAddr, lane: lane, factor: factor,
		validAt: validAt, lastUse: now,
	}
	b.checkFill(i)
	b.stats.InterleavedSubblocks++
}

// victim picks a free slot or the least recently used entry. In-flight
// entries are eligible victims: this is the LRU-thrash mechanism behind the
// jpegdec anomaly of §5.2.
func (b *L0Buffer) victim(now int64) int {
	best, bestUse := -1, int64(0)
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			return i
		}
		if best == -1 || e.lastUse < bestUse {
			best, bestUse = i, e.lastUse
		}
	}
	if b.capacity >= arch.Unbounded {
		b.entries = append(b.entries, l0Entry{})
		return len(b.entries) - 1
	}
	b.stats.L0Evictions++
	return best
}

// StoreUpdate applies a PAR_ACCESS store: the first entry holding the
// address is updated in place; any further replicas (the same data mapped
// with a different function, §4.1) are invalidated rather than updated, so
// the buffer needs no extra write ports.
func (b *L0Buffer) StoreUpdate(addr int64, width int, now int64) {
	first := true
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || !b.contains(e, addr, width) {
			continue
		}
		if first {
			e.lastUse = now
			b.checkStoreUpdate(i, addr, width)
			first = false
		} else {
			e.valid = false
			b.stats.L0ReplicaInvalidations++
		}
	}
}

// InvalidateAddr discards every entry holding the address (non-primary PSR
// store instances).
func (b *L0Buffer) InvalidateAddr(addr int64, width int) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && b.contains(e, addr, width) {
			e.valid = false
		}
	}
}

// InvalidateAll implements the invalidate_buffer instruction: every entry is
// discarded (write-through makes this a constant-latency operation, §3.3).
func (b *L0Buffer) InvalidateAll() {
	for i := range b.entries {
		b.entries[i].valid = false
	}
}

// Occupancy returns the number of valid entries (tests and the l0trace CLI).
func (b *L0Buffer) Occupancy() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

func (b *L0Buffer) String() string {
	return fmt.Sprintf("L0[c%d] %d/%d entries", b.cluster, b.Occupancy(), b.capacity)
}
