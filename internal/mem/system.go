package mem

import (
	"repro/internal/arch"
)

// Stats aggregates the memory-system event counters used by the
// experiments (Figure 6's linear/interleaved ratio and L0 hit rate, plus
// general diagnostics).
type Stats struct {
	// L0 access outcome for loads marked SEQ/PAR. A load that finds its
	// subblock still in flight counts as a miss (it stalls), tallied
	// separately in L0LateFills.
	L0Hits, L0Misses, L0LateFills int64
	// Fill mapping counters (one per deposited subblock).
	LinearSubblocks, InterleavedSubblocks int64
	// L1 access outcome (all requests reaching L1).
	L1Hits, L1Misses int64
	// Prefetch activity.
	HintPrefetches     int64
	ExplicitPrefetches int64
	DroppedPrefetches  int64 // suppressed duplicates
	// Diagnostics.
	BusRequests            int64
	L0Evictions            int64
	L0ReplicaInvalidations int64
	BusQueueCycles         int64
	Stores                 int64
	Loads                  int64
	// CoherenceViolations counts L0 hits that returned stale data (only
	// tracked when coherence checking is enabled; must stay zero for
	// schedules the compiler declares coherent).
	CoherenceViolations int64
}

// L0HitRate returns hits / (hits+misses), or 1 when the buffers were never
// probed.
func (s *Stats) L0HitRate() float64 {
	total := s.L0Hits + s.L0Misses
	if total == 0 {
		return 1
	}
	return float64(s.L0Hits) / float64(total)
}

// L1HitRate returns the unified-cache hit ratio.
func (s *Stats) L1HitRate() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 1
	}
	return float64(s.L1Hits) / float64(total)
}

// System is the proposed architecture's memory hierarchy: per-cluster L0
// buffers in front of a unified L1 backed by an always-hit L2, with one
// request bus per cluster.
type System struct {
	Cfg   arch.Config
	L0    []*L0Buffer
	L1    *Cache
	Stats Stats
	// busNextFree[c] is the first cycle the cluster's L1 bus is free.
	busNextFree []int64
	// coh is the optional shadow-version coherence checker.
	coh *cohState
}

// NewSystem builds the hierarchy for a configuration.
func NewSystem(cfg arch.Config) *System {
	s := &System{
		Cfg:         cfg,
		L1:          NewCache(cfg.L1SizeBytes, cfg.L1BlockBytes, cfg.L1Assoc),
		busNextFree: make([]int64, cfg.Clusters),
	}
	if cfg.HasL0() {
		s.L0 = make([]*L0Buffer, cfg.Clusters)
		for c := range s.L0 {
			s.L0[c] = NewL0Buffer(cfg, c, &s.Stats)
		}
	}
	return s
}

// busStart serialises requests on a cluster's L1 bus: a request wanting the
// bus at t starts at the first free cycle ≥ t.
func (s *System) busStart(cluster int, t int64) int64 {
	s.Stats.BusRequests++
	start := t
	if nf := s.busNextFree[cluster]; nf > start {
		s.Stats.BusQueueCycles += nf - start
		start = nf
	}
	s.busNextFree[cluster] = start + 1
	return start
}

// accessL1 performs one L1 request issued on the bus at busT and returns the
// data-ready time. Loads and fills allocate on miss; write-through stores do
// not.
func (s *System) accessL1(addr int64, busT int64, allocate bool) int64 {
	if s.L1.Lookup(addr) {
		s.Stats.L1Hits++
		return busT + int64(s.Cfg.L1Latency)
	}
	s.Stats.L1Misses++
	if allocate {
		s.L1.Fill(s.L1.BlockAddr(addr))
	}
	return busT + int64(s.Cfg.L1Latency) + int64(s.Cfg.L2Latency)
}

// Load executes a load issued at absolute cycle t in the given cluster and
// returns the data-ready time.
func (s *System) Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64 {
	s.Stats.Loads++
	if s.L0 == nil || h.Access == arch.NoAccess {
		bt := s.busStart(cluster, t)
		return s.accessL1(addr, bt, true)
	}
	b := s.L0[cluster]
	if ei := b.Lookup(addr, width); ei >= 0 {
		b.Touch(ei, t)
		b.checkHit(ei, addr, width)
		ready := t + int64(s.Cfg.L0Latency)
		if va := b.ValidAt(ei); va > ready {
			// The subblock is still in flight (a prefetch issued too
			// close to its consumer): the data arrives late, which
			// the paper counts as a miss — it stalls the processor.
			ready = va
			s.Stats.L0Misses++
			s.Stats.L0LateFills++
		} else {
			s.Stats.L0Hits++
		}
		if h.Access == arch.ParAccess {
			// The parallel L1 probe still happens; its reply is
			// discarded but the bus slot and LRU touch are real.
			bt := s.busStart(cluster, t)
			s.accessL1(addr, bt, false)
		}
		s.maybeHintPrefetch(cluster, addr, width, h, t)
		return ready
	}
	s.Stats.L0Misses++
	reqT := t
	if h.Access == arch.SeqAccess {
		reqT = t + int64(s.Cfg.L0Latency) // probe L0 first, forward on miss
	}
	bt := s.busStart(cluster, reqT)
	ready := s.accessL1(addr, bt, true)
	ready = s.fill(cluster, addr, width, h, ready, t)
	s.maybeHintPrefetch(cluster, addr, width, h, t)
	return ready
}

// fill deposits the missed data into the L0 buffers per the mapping hint and
// returns the (possibly shuffled) data-ready time.
func (s *System) fill(cluster int, addr int64, width int, h arch.Hints, l1ready, now int64) int64 {
	if h.Map == arch.LinearMap {
		sub := subAlign(addr, s.Cfg.L0SubblockBytes)
		s.L0[cluster].AllocLinear(sub, l1ready, now)
		return l1ready
	}
	// Interleaved: the whole L1 block is read, shuffled (+1 cycle), and
	// its lanes scattered to consecutive clusters starting with the
	// accessing cluster's own lane (§3.1). Only lanes that actually hold
	// elements are deposited: a block has L1BlockBytes/width elements, so a
	// machine wider than that would otherwise fill every remaining cluster
	// with a dead entry that can only evict live data.
	validAt := l1ready + int64(s.Cfg.InterleavePenalty)
	block := blockAlign(addr, s.Cfg.L1BlockBytes)
	ownLane := laneOf(addr, block, width, s.Cfg.Clusters)
	s.scatterInterleaved(cluster, block, ownLane, width, validAt, now)
	return validAt
}

// interleaveLanes returns how many interleave lanes of an L1 block are
// populated at the given element width (at most one per cluster).
func (s *System) interleaveLanes(width int) int {
	n := s.Cfg.L1BlockBytes / width
	if n > s.Cfg.Clusters {
		n = s.Cfg.Clusters
	}
	if n < 1 {
		n = 1
	}
	return n
}

// scatterInterleaved deposits the populated lanes of an interleaved block
// fill into consecutive clusters, the accessing cluster taking its own lane
// first. Shared by demand fills and hint prefetches so their lane→cluster
// placement can never diverge from the lookup path.
func (s *System) scatterInterleaved(cluster int, block int64, ownLane, width int, validAt, now int64) {
	numLanes := s.interleaveLanes(width)
	for j := 0; j < s.Cfg.Clusters; j++ {
		lane := (ownLane + j) % s.Cfg.Clusters
		if lane >= numLanes {
			continue
		}
		cl := (cluster + j) % s.Cfg.Clusters
		s.L0[cl].AllocInterleaved(block, lane, width, validAt, now)
	}
}

// maybeHintPrefetch fires the automatic POSITIVE/NEGATIVE prefetch when the
// access touches the last/first element of its subblock (§3.2). The
// prefetched data is mapped the same way as the triggering subblock.
func (s *System) maybeHintPrefetch(cluster int, addr int64, width int, h arch.Hints, t int64) {
	if h.Prefetch == arch.NoPrefetch {
		return
	}
	d := int64(h.PrefetchDistance)
	if d <= 0 {
		d = 1
	}
	subBytes := int64(s.Cfg.L0SubblockBytes)
	blockBytes := int64(s.Cfg.L1BlockBytes)

	if h.Map == arch.LinearMap {
		sub := subAlign(addr, s.Cfg.L0SubblockBytes)
		var target int64
		switch h.Prefetch {
		case arch.Positive:
			if addr+int64(width) != sub+subBytes {
				return // not the last element
			}
			target = sub + d*subBytes
		case arch.Negative:
			if addr != sub {
				return // not the first element
			}
			target = sub - d*subBytes
		}
		if target < 0 || s.L0[cluster].HasLinear(target) {
			s.Stats.DroppedPrefetches++
			return
		}
		s.Stats.HintPrefetches++
		bt := s.busStart(cluster, t)
		ready := s.accessL1(target, bt, true)
		s.L0[cluster].AllocLinear(target, ready, t)
		return
	}

	// Interleaved mapping: the trigger is the last/first element of the
	// cluster's own lane; the prefetch reads the next/previous whole L1
	// block and scatters its lanes across the clusters, preserving the
	// lane→cluster assignment of the triggering subblock.
	block := blockAlign(addr, s.Cfg.L1BlockBytes)
	lane := laneOf(addr, block, width, s.Cfg.Clusters)
	elemIdx := (addr - block) / int64(width)
	perSub := subBytes / int64(width)
	lastIdx := int64(lane) + int64(s.Cfg.Clusters)*(perSub-1)
	var target int64
	switch h.Prefetch {
	case arch.Positive:
		if elemIdx != lastIdx {
			return
		}
		target = block + d*blockBytes
	case arch.Negative:
		if elemIdx != int64(lane) {
			return
		}
		target = block - d*blockBytes
	}
	if target < 0 || s.L0[cluster].HasInterleaved(target, lane, width) {
		s.Stats.DroppedPrefetches++
		return
	}
	s.Stats.HintPrefetches++
	bt := s.busStart(cluster, t)
	ready := s.accessL1(target, bt, true) + int64(s.Cfg.InterleavePenalty)
	s.scatterInterleaved(cluster, target, lane, width, ready, t)
}

// ExplicitPrefetch executes a software prefetch instruction (step 5): it
// brings the subblock containing addr into the cluster's buffer with linear
// mapping.
func (s *System) ExplicitPrefetch(cluster int, addr int64, t int64) {
	if s.L0 == nil || addr < 0 {
		return
	}
	sub := subAlign(addr, s.Cfg.L0SubblockBytes)
	if s.L0[cluster].HasLinear(sub) {
		s.Stats.DroppedPrefetches++
		return
	}
	s.Stats.ExplicitPrefetches++
	bt := s.busStart(cluster, t)
	ready := s.accessL1(sub, bt, true)
	s.L0[cluster].AllocLinear(sub, ready, t)
}

// Store executes a store at absolute cycle t. PAR_ACCESS stores update the
// local L0 in parallel with the write-through to L1; all stores skip remote
// buffers (software keeps them coherent). Non-primary PSR replicas only
// invalidate their local buffer and generate no L1 traffic.
func (s *System) Store(cluster int, addr int64, width int, h arch.Hints, secondaryReplica bool, t int64) {
	if secondaryReplica {
		if s.L0 != nil {
			s.L0[cluster].InvalidateAddr(addr, width)
		}
		return
	}
	s.Stats.Stores++
	if s.coh != nil {
		s.coh.recordStore(addr, width)
	}
	if s.L0 != nil && h.Access == arch.ParAccess {
		s.L0[cluster].StoreUpdate(addr, width, t)
	}
	bt := s.busStart(cluster, t)
	if s.L1.Lookup(addr) {
		s.Stats.L1Hits++
	} else {
		s.Stats.L1Misses++ // write-through, no allocate
	}
	_ = bt
}

// Prefetch satisfies the execution engine's memory-model interface by
// delegating to ExplicitPrefetch.
func (s *System) Prefetch(cluster int, addr int64, t int64) {
	s.ExplicitPrefetch(cluster, addr, t)
}

// InvalidateAll models the invalidate_buffer instruction executed in every
// cluster at a loop boundary (inter-loop coherence, §4.1).
func (s *System) InvalidateAll() {
	for _, b := range s.L0 {
		b.InvalidateAll()
	}
}

// InvalidateClusters models selective flushing (§4.1): invalidate_buffer
// scheduled only in the listed clusters. Returns the cycle overhead (one
// cycle when any cluster flushes — the instructions run in parallel).
func (s *System) InvalidateClusters(clusters []int) int64 {
	if s.L0 == nil || len(clusters) == 0 {
		return 0
	}
	for _, c := range clusters {
		s.L0[c].InvalidateAll()
	}
	return 1
}

// LoopEnd flushes every L0 buffer at a loop boundary and returns the one
// cycle the parallel invalidate_buffer instructions occupy. Architectures
// without buffers pay nothing.
func (s *System) LoopEnd() int64 {
	if s.L0 == nil {
		return 0
	}
	s.InvalidateAll()
	return 1
}

func subAlign(addr int64, subBytes int) int64 {
	return addr &^ int64(subBytes-1)
}

func blockAlign(addr int64, blockBytes int) int64 {
	return addr &^ int64(blockBytes-1)
}

// laneOf returns which interleave lane (0..clusters-1) the element at addr
// belongs to within its block at the given element width.
func laneOf(addr, block int64, width, clusters int) int {
	return int(((addr - block) / int64(width)) % int64(clusters))
}
