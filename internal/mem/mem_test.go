package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func cfg8() arch.Config { return arch.MICRO36Config().WithL0Entries(8) }

func newBuf(t *testing.T, entries int) (*L0Buffer, *Stats) {
	t.Helper()
	var st Stats
	return NewL0Buffer(cfg8().WithL0Entries(entries), 0, &st), &st
}

func TestL0LinearLookup(t *testing.T) {
	b, _ := newBuf(t, 4)
	b.AllocLinear(64, 0, 0)
	if b.Lookup(64, 4) < 0 || b.Lookup(68, 4) < 0 || b.Lookup(71, 1) < 0 {
		t.Errorf("linear subblock must cover [64,72)")
	}
	if b.Lookup(72, 4) >= 0 || b.Lookup(60, 4) >= 0 {
		t.Errorf("linear lookup hit outside the subblock")
	}
	if b.Lookup(68, 8) >= 0 {
		t.Errorf("access straddling the subblock end must miss")
	}
}

func TestL0InterleavedLookup(t *testing.T) {
	b, _ := newBuf(t, 4)
	// Lane 1 of a 32-byte block at 0, 2-byte elements, 4 clusters:
	// elements at offsets 2, 10, 18, 26.
	b.AllocInterleaved(0, 1, 2, 0, 0)
	for _, off := range []int64{2, 10, 18, 26} {
		if b.Lookup(off, 2) < 0 {
			t.Errorf("lane element at %d missed", off)
		}
	}
	for _, off := range []int64{0, 4, 8, 12, 20} {
		if b.Lookup(off, 2) >= 0 {
			t.Errorf("foreign lane element at %d hit", off)
		}
	}
}

func TestL0InterleavedCrossGranularityMisses(t *testing.T) {
	// §3.3: data interleaved at one granularity accessed at another is a
	// forwarded miss, never a partial hit.
	b, _ := newBuf(t, 4)
	b.AllocInterleaved(0, 0, 1, 0, 0) // byte-interleaved lane 0: bytes 0,4,8,...
	if b.Lookup(0, 4) >= 0 {
		t.Errorf("4-byte access hit byte-interleaved lane")
	}
	if b.Lookup(0, 1) < 0 {
		t.Errorf("1-byte access should hit its own lane")
	}
}

func TestL0LRUEviction(t *testing.T) {
	b, st := newBuf(t, 2)
	b.AllocLinear(0, 0, 10)
	b.AllocLinear(8, 0, 20)
	b.Touch(b.Lookup(0, 4), 30) // make subblock 0 the MRU
	b.AllocLinear(16, 0, 40)    // must evict subblock 8
	if b.Lookup(8, 4) >= 0 {
		t.Errorf("LRU entry not evicted")
	}
	if b.Lookup(0, 4) < 0 || b.Lookup(16, 4) < 0 {
		t.Errorf("wrong entry evicted")
	}
	if st.L0Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.L0Evictions)
	}
}

func TestL0UnboundedGrows(t *testing.T) {
	b, st := newBuf(t, arch.Unbounded)
	for i := int64(0); i < 500; i++ {
		b.AllocLinear(i*8, 0, i)
	}
	for i := int64(0); i < 500; i++ {
		if b.Lookup(i*8, 4) < 0 {
			t.Fatalf("unbounded buffer evicted subblock %d", i)
		}
	}
	if st.L0Evictions != 0 {
		t.Errorf("unbounded buffer recorded evictions")
	}
}

func TestL0StoreUpdateInvalidatesReplicas(t *testing.T) {
	// The same data mapped twice (linear + interleaved): a store updates
	// one copy and invalidates the other (§4.1 intra-cluster coherence).
	b, st := newBuf(t, 4)
	b.AllocLinear(0, 0, 0)            // bytes [0,8)
	b.AllocInterleaved(0, 0, 2, 0, 1) // lane 0: bytes 0,8,16,24 (2-wide)
	b.StoreUpdate(0, 2, 5)
	remaining := 0
	if b.Lookup(4, 2) >= 0 { // only in the linear copy
		remaining++
	}
	if b.Lookup(16, 2) >= 0 { // only in the interleaved copy
		remaining++
	}
	if remaining != 1 {
		t.Errorf("store must keep exactly one replica, %d remain", remaining)
	}
	if st.L0ReplicaInvalidations != 1 {
		t.Errorf("replica invalidations = %d, want 1", st.L0ReplicaInvalidations)
	}
}

func TestL0InvalidateAddrAndAll(t *testing.T) {
	b, _ := newBuf(t, 4)
	b.AllocLinear(0, 0, 0)
	b.AllocLinear(8, 0, 0)
	b.InvalidateAddr(2, 2)
	if b.Lookup(0, 2) >= 0 {
		t.Errorf("InvalidateAddr left the containing subblock")
	}
	if b.Lookup(8, 2) < 0 {
		t.Errorf("InvalidateAddr removed an unrelated subblock")
	}
	b.InvalidateAll()
	if b.Occupancy() != 0 {
		t.Errorf("InvalidateAll left %d entries", b.Occupancy())
	}
}

func TestL0VictimPrefersInvalid(t *testing.T) {
	b, st := newBuf(t, 4)
	b.AllocLinear(0, 0, 0)
	b.AllocLinear(8, 0, 1)
	b.InvalidateAddr(0, 1)
	b.AllocLinear(16, 0, 2)
	if st.L0Evictions != 0 {
		t.Errorf("allocation into an invalid slot counted as eviction")
	}
	if b.Lookup(8, 4) < 0 {
		t.Errorf("valid entry evicted while an invalid slot existed")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8192, 32, 2)
	if c.Lookup(100) {
		t.Errorf("cold cache hit")
	}
	c.Fill(c.BlockAddr(100))
	if !c.Lookup(100) || !c.Lookup(96) || !c.Lookup(127) {
		t.Errorf("filled block must hit for all its bytes")
	}
	if c.Lookup(128) {
		t.Errorf("adjacent block hit")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := NewCache(8192, 32, 2)
	setStride := int64(8192 / 2) // blocks mapping to the same set
	a0, a1, a2 := int64(0), setStride, 2*setStride
	c.Fill(a0)
	c.Fill(a1)
	c.Lookup(a0) // refresh a0
	c.Fill(a2)   // evicts a1
	if !c.Lookup(a0) {
		t.Errorf("MRU block evicted")
	}
	if c.Lookup(a1) {
		t.Errorf("LRU block survived")
	}
	if !c.Lookup(a2) {
		t.Errorf("new block missing")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8192, 32, 2)
	c.Fill(0)
	if !c.Invalidate(0) {
		t.Errorf("Invalidate missed a present block")
	}
	if c.Lookup(0) {
		t.Errorf("block survived invalidation")
	}
	if c.Invalidate(0) {
		t.Errorf("Invalidate hit an absent block")
	}
}

func TestSystemSeqVsParTiming(t *testing.T) {
	cfg := cfg8()
	// SEQ miss forwards after the L0 probe: one cycle later than PAR.
	s1 := NewSystem(cfg)
	seqReady := s1.Load(0, 4096, 2, arch.Hints{Access: arch.SeqAccess, Map: arch.LinearMap}, 100)
	s2 := NewSystem(cfg)
	parReady := s2.Load(0, 4096, 2, arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}, 100)
	if seqReady != parReady+int64(cfg.L0Latency) {
		t.Errorf("SEQ miss ready = %d, want PAR (%d) + L0 latency", seqReady, parReady)
	}
}

func TestSystemL0HitFast(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 2, h, 100)
	ready := s.Load(0, 4096, 2, h, 200)
	if ready != 200+int64(cfg.L0Latency) {
		t.Errorf("L0 hit ready = %d, want %d", ready, 200+int64(cfg.L0Latency))
	}
	if s.Stats.L0Hits != 1 || s.Stats.L0Misses != 1 {
		t.Errorf("hit/miss counts = %d/%d, want 1/1", s.Stats.L0Hits, s.Stats.L0Misses)
	}
}

func TestSystemNoAccessBypassesL0(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	s.Load(0, 4096, 2, arch.Hints{Access: arch.NoAccess}, 100)
	if s.Stats.L0Hits+s.Stats.L0Misses != 0 {
		t.Errorf("NO_ACCESS load probed L0")
	}
	if s.L0[0].Occupancy() != 0 {
		t.Errorf("NO_ACCESS load allocated in L0")
	}
}

func TestSystemInterleavedFillScattersLanes(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.InterleavedMap}
	// 2-byte access from cluster 2 at element 0 of block 4096.
	s.Load(2, 4096, 2, h, 100)
	// The accessing cluster holds its own lane...
	if s.L0[2].Lookup(4096, 2) < 0 {
		t.Errorf("accessing cluster missing its lane")
	}
	// ...and consecutive clusters hold consecutive lanes.
	if s.L0[3].Lookup(4098, 2) < 0 || s.L0[0].Lookup(4100, 2) < 0 || s.L0[1].Lookup(4102, 2) < 0 {
		t.Errorf("lanes not scattered to consecutive clusters")
	}
	if s.Stats.InterleavedSubblocks != 4 {
		t.Errorf("interleaved subblocks = %d, want 4", s.Stats.InterleavedSubblocks)
	}
}

func TestSystemInterleavedFillBoundsLanesOnWideMachines(t *testing.T) {
	// 16 clusters, 32-byte blocks, 8-byte elements: a block has only 4
	// elements, so an interleaved fill must deposit exactly 4 lanes — never
	// a dead entry in each of the other 12 clusters.
	cfg := arch.MICRO36Config().WithClusters(16).WithL0Entries(8)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.InterleavedMap}
	s.Load(2, 4096, 8, h, 100)
	if s.Stats.InterleavedSubblocks != 4 {
		t.Errorf("interleaved subblocks = %d, want 4 (one per populated lane)", s.Stats.InterleavedSubblocks)
	}
	// The populated lanes land in the clusters consecutive to the accessing
	// one, and every element of the block is resident somewhere.
	for i, addr := range []int64{4096, 4104, 4112, 4120} {
		cl := (2 + i) % cfg.Clusters
		if s.L0[cl].Lookup(addr, 8) < 0 {
			t.Errorf("element at %d not resident in cluster %d", addr, cl)
		}
	}
	occupied := 0
	for _, b := range s.L0 {
		occupied += b.Occupancy()
	}
	if occupied != 4 {
		t.Errorf("total occupancy = %d, want 4", occupied)
	}
}

func TestSystemInterleavedFillPaysShufflePenalty(t *testing.T) {
	cfg := cfg8()
	sLin := NewSystem(cfg)
	lin := sLin.Load(0, 4096, 2, arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}, 100)
	sInt := NewSystem(cfg)
	inter := sInt.Load(0, 4096, 2, arch.Hints{Access: arch.ParAccess, Map: arch.InterleavedMap}, 100)
	if inter != lin+int64(cfg.InterleavePenalty) {
		t.Errorf("interleaved fill ready = %d, want linear (%d) + penalty", inter, lin)
	}
}

func TestSystemPositivePrefetchTriggersOnLastElement(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap, Prefetch: arch.Positive, PrefetchDistance: 1}
	s.Load(0, 4096, 2, h, 100) // fills [4096,4104)
	s.Load(0, 4098, 2, h, 110)
	s.Load(0, 4100, 2, h, 120)
	if s.Stats.HintPrefetches != 0 {
		t.Fatalf("prefetch fired before the last element")
	}
	s.Load(0, 4102, 2, h, 130) // last element → prefetch next subblock
	if s.Stats.HintPrefetches != 1 {
		t.Fatalf("prefetch did not fire on the last element")
	}
	if !s.L0[0].HasLinear(4104) {
		t.Errorf("next subblock not allocated")
	}
}

func TestSystemNegativePrefetch(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap, Prefetch: arch.Negative, PrefetchDistance: 1}
	s.Load(0, 4104, 2, h, 100) // fills [4104,4112); first element access triggers
	if s.Stats.HintPrefetches != 1 {
		t.Fatalf("negative prefetch did not fire on the first element")
	}
	if !s.L0[0].HasLinear(4096) {
		t.Errorf("previous subblock not allocated")
	}
}

func TestSystemPrefetchDistanceTwo(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap, Prefetch: arch.Positive, PrefetchDistance: 2}
	s.Load(0, 4102, 2, h, 100) // last element of [4096,4104)
	if !s.L0[0].HasLinear(4096 + 2*8) {
		t.Errorf("distance-2 prefetch must fetch two subblocks ahead")
	}
}

func TestSystemDuplicatePrefetchDropped(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap, Prefetch: arch.Positive, PrefetchDistance: 1}
	s.Load(0, 4102, 2, h, 100)
	s.Load(0, 4102, 2, h, 110) // same trigger again
	if s.Stats.HintPrefetches != 1 || s.Stats.DroppedPrefetches == 0 {
		t.Errorf("duplicate prefetch not suppressed: fired=%d dropped=%d",
			s.Stats.HintPrefetches, s.Stats.DroppedPrefetches)
	}
}

func TestSystemLateFillCountsAsMiss(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 2, h, 100) // fill in flight until ~106
	ready := s.Load(0, 4098, 2, h, 101)
	if ready <= 102 {
		t.Errorf("in-flight hit returned before the fill completed")
	}
	if s.Stats.L0LateFills != 1 {
		t.Errorf("late fills = %d, want 1", s.Stats.L0LateFills)
	}
	if s.Stats.L0Misses != 2 {
		t.Errorf("late fill must count as a miss (paper semantics)")
	}
}

func TestSystemStoreWriteThroughNoAllocate(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	s.Store(0, 4096, 2, arch.Hints{Access: arch.ParAccess}, false, 100)
	if s.L0[0].Occupancy() != 0 {
		t.Errorf("store allocated in L0")
	}
	if s.Stats.L1Misses != 1 {
		t.Errorf("write-through store must reach L1 (miss count %d)", s.Stats.L1Misses)
	}
	if s.L1.Lookup(4096) {
		t.Errorf("store miss must not allocate in L1 (no write-allocate)")
	}
}

func TestSystemParStoreUpdatesLocalL0Only(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 2, h, 100) // cluster 0 caches the subblock
	s.Load(1, 4096, 2, arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}, 110)
	s.Store(0, 4096, 2, arch.Hints{Access: arch.ParAccess}, false, 120)
	// Cluster 0's copy stays valid (updated); cluster 1's copy is stale by
	// design — the compiler is responsible for never reading it (§3.3).
	if s.L0[0].Lookup(4096, 2) < 0 {
		t.Errorf("local PAR store must keep the local copy valid")
	}
	if s.L0[1].Lookup(4096, 2) < 0 {
		t.Errorf("remote copies are never touched by stores (no inter-cluster traffic)")
	}
}

func TestSystemSecondaryReplicaInvalidates(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(1, 4096, 2, h, 100)
	s.Store(1, 4096, 2, arch.Hints{}, true, 110) // PSR secondary instance
	if s.L0[1].Lookup(4096, 2) >= 0 {
		t.Errorf("secondary replica did not invalidate the local copy")
	}
	if s.Stats.Stores != 0 {
		t.Errorf("secondary replica must not reach L1")
	}
}

func TestSystemLoopEndFlushes(t *testing.T) {
	cfg := cfg8()
	s := NewSystem(cfg)
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 2, h, 100)
	if c := s.LoopEnd(); c != 1 {
		t.Errorf("LoopEnd overhead = %d, want 1", c)
	}
	for _, b := range s.L0 {
		if b.Occupancy() != 0 {
			t.Errorf("LoopEnd left entries")
		}
	}
	// Without buffers the flush is free.
	s0 := NewSystem(cfg.WithL0Entries(0))
	if c := s0.LoopEnd(); c != 0 {
		t.Errorf("no-L0 LoopEnd overhead = %d, want 0", c)
	}
}

func TestSystemBusSerialises(t *testing.T) {
	cfg := cfg8().WithL0Entries(0)
	s := NewSystem(cfg)
	r1 := s.Load(0, 1<<14, 4, arch.Hints{}, 100)
	r2 := s.Load(0, 1<<15, 4, arch.Hints{}, 100) // same cycle, same cluster bus
	if r2 != r1+1 {
		t.Errorf("second same-cycle request must queue one cycle: %d vs %d", r2, r1)
	}
	r3 := s.Load(1, 1<<16, 4, arch.Hints{}, 100) // different cluster: own bus
	if r3 != r1 {
		t.Errorf("different cluster's bus must not queue: %d vs %d", r3, r1)
	}
}

func TestSystemL2MissPenalty(t *testing.T) {
	cfg := cfg8().WithL0Entries(0)
	s := NewSystem(cfg)
	miss := s.Load(0, 1<<14, 4, arch.Hints{}, 100)
	hit := s.Load(0, 1<<14, 4, arch.Hints{}, 200)
	if miss-100 != int64(cfg.L1Latency+cfg.L2Latency) {
		t.Errorf("L1 miss latency = %d, want %d", miss-100, cfg.L1Latency+cfg.L2Latency)
	}
	if hit-200 != int64(cfg.L1Latency) {
		t.Errorf("L1 hit latency = %d, want %d", hit-200, cfg.L1Latency)
	}
}

func TestHitRateHelpers(t *testing.T) {
	st := &Stats{L0Hits: 3, L0Misses: 1, L1Hits: 9, L1Misses: 1}
	if st.L0HitRate() != 0.75 {
		t.Errorf("L0HitRate = %v", st.L0HitRate())
	}
	if st.L1HitRate() != 0.9 {
		t.Errorf("L1HitRate = %v", st.L1HitRate())
	}
	empty := &Stats{}
	if empty.L0HitRate() != 1 || empty.L1HitRate() != 1 {
		t.Errorf("empty stats should report rate 1")
	}
}

func TestLaneOfProperty(t *testing.T) {
	err := quick.Check(func(elemRaw uint16, wRaw uint8) bool {
		widths := []int{1, 2, 4, 8}
		w := widths[int(wRaw)%len(widths)]
		block := int64(4096)
		elems := 32 / w
		e := int(elemRaw) % elems
		addr := block + int64(e*w)
		return laneOf(addr, block, w, 4) == e%4
	}, nil)
	if err != nil {
		t.Errorf("laneOf: %v", err)
	}
}
