package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// TestL0OccupancyNeverExceedsCapacity drives a buffer with arbitrary
// operation sequences and checks the capacity invariant.
func TestL0OccupancyNeverExceedsCapacity(t *testing.T) {
	err := quick.Check(func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		var st Stats
		b := NewL0Buffer(arch.MICRO36Config().WithL0Entries(capacity), 0, &st)
		for op := 0; op < 200; op++ {
			addr := int64(rng.Intn(64)) * 8
			switch rng.Intn(5) {
			case 0:
				b.AllocLinear(addr, int64(op), int64(op))
			case 1:
				b.AllocInterleaved(addr&^31, rng.Intn(4), 2, int64(op), int64(op))
			case 2:
				b.StoreUpdate(addr, 2, int64(op))
			case 3:
				b.InvalidateAddr(addr, 2)
			case 4:
				if i := b.Lookup(addr, 2); i >= 0 {
					b.Touch(i, int64(op))
				}
			}
			if b.Occupancy() > capacity {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Errorf("capacity invariant violated: %v", err)
	}
}

// TestL0LookupAfterAllocAlwaysHits: an allocated subblock is visible until
// something evicts or invalidates it.
func TestL0LookupAfterAllocAlwaysHits(t *testing.T) {
	err := quick.Check(func(addrRaw uint16) bool {
		var st Stats
		b := NewL0Buffer(arch.MICRO36Config(), 0, &st)
		addr := int64(addrRaw) &^ 7
		b.AllocLinear(addr, 0, 0)
		return b.Lookup(addr, 4) >= 0 && b.Lookup(addr+4, 4) >= 0
	}, nil)
	if err != nil {
		t.Errorf("alloc-then-lookup failed: %v", err)
	}
}

// TestL0InterleavedLaneDisjointness: the four lanes of one block partition
// its elements; an element hits in exactly the lane that owns it.
func TestL0InterleavedLaneDisjointness(t *testing.T) {
	err := quick.Check(func(elemRaw uint8, wRaw uint8) bool {
		widths := []int{1, 2, 4, 8}
		w := widths[int(wRaw)%len(widths)]
		elems := 32 / w
		e := int(elemRaw) % elems
		cfg := arch.MICRO36Config()
		var hits int
		for lane := 0; lane < 4; lane++ {
			var st Stats
			b := NewL0Buffer(cfg, 0, &st)
			b.AllocInterleaved(0, lane, w, 0, 0)
			if b.Lookup(int64(e*w), w) >= 0 {
				hits++
			}
		}
		return hits == 1
	}, nil)
	if err != nil {
		t.Errorf("lane partition violated: %v", err)
	}
}

// TestSystemReadyTimesMonotoneInT: issuing the same access later never
// yields an earlier completion.
func TestSystemReadyTimesMonotoneInT(t *testing.T) {
	err := quick.Check(func(addrRaw uint16, dt uint8) bool {
		cfg := arch.MICRO36Config()
		h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
		addr := int64(addrRaw)
		s1 := NewSystem(cfg)
		r1 := s1.Load(0, addr, 2, h, 100)
		s2 := NewSystem(cfg)
		r2 := s2.Load(0, addr, 2, h, 100+int64(dt))
		return r2 >= r1
	}, nil)
	if err != nil {
		t.Errorf("ready-time monotonicity violated: %v", err)
	}
}

// TestSystemStatsConsistency: hits+misses equals the number of L0-probing
// loads under an arbitrary access mix.
func TestSystemStatsConsistency(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := arch.MICRO36Config()
		s := NewSystem(cfg)
		probing := int64(0)
		tm := int64(0)
		for i := 0; i < 100; i++ {
			tm += int64(rng.Intn(5))
			addr := int64(rng.Intn(512)) * 2
			switch rng.Intn(4) {
			case 0:
				s.Load(rng.Intn(4), addr, 2, arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}, tm)
				probing++
			case 1:
				s.Load(rng.Intn(4), addr, 2, arch.Hints{Access: arch.SeqAccess, Map: arch.LinearMap}, tm)
				probing++
			case 2:
				s.Load(rng.Intn(4), addr, 2, arch.Hints{Access: arch.NoAccess}, tm)
			case 3:
				s.Store(rng.Intn(4), addr, 2, arch.Hints{Access: arch.ParAccess}, false, tm)
			}
		}
		return s.Stats.L0Hits+s.Stats.L0Misses == probing
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Errorf("stats consistency violated: %v", err)
	}
}
