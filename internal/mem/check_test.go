package mem

import (
	"testing"

	"repro/internal/arch"
)

func checkedSystem() *System {
	s := NewSystem(arch.MICRO36Config())
	s.EnableCoherenceCheck()
	return s
}

func TestCheckerCleanOnLocalUpdate(t *testing.T) {
	// Load caches; a PAR store in the SAME cluster updates the copy; the
	// next load reads fresh data: no violation.
	s := checkedSystem()
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 4, h, 100)
	s.Store(0, 4096, 4, arch.Hints{Access: arch.ParAccess}, false, 200)
	s.Load(0, 4096, 4, h, 300)
	if s.Stats.CoherenceViolations != 0 {
		t.Errorf("violations = %d on a coherent 1C pattern", s.Stats.CoherenceViolations)
	}
}

func TestCheckerCatchesRemoteStaleRead(t *testing.T) {
	// Load caches in cluster 0; a store in cluster 1 (a schedule the
	// compiler would never emit) leaves cluster 0 stale; the re-read must
	// be flagged.
	s := checkedSystem()
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 4, h, 100)
	s.Store(1, 4096, 4, arch.Hints{Access: arch.ParAccess}, false, 200)
	s.Load(0, 4096, 4, h, 300)
	if s.Stats.CoherenceViolations != 1 {
		t.Errorf("violations = %d, want 1 for a stale remote read", s.Stats.CoherenceViolations)
	}
}

func TestCheckerInvalidationRestoresCoherence(t *testing.T) {
	// Same broken pattern, but a PSR-style invalidation in cluster 0
	// removes the stale copy before the re-read: the load misses and
	// refetches fresh data — no violation.
	s := checkedSystem()
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 4, h, 100)
	s.Store(1, 4096, 4, arch.Hints{Access: arch.ParAccess}, false, 200)
	s.Store(0, 4096, 4, arch.Hints{}, true, 200) // secondary replica invalidate
	s.Load(0, 4096, 4, h, 300)
	if s.Stats.CoherenceViolations != 0 {
		t.Errorf("violations = %d after replica invalidation", s.Stats.CoherenceViolations)
	}
}

func TestCheckerLoopEndFlushRestoresCoherence(t *testing.T) {
	s := checkedSystem()
	h := arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}
	s.Load(0, 4096, 4, h, 100)
	s.Store(1, 4096, 4, arch.Hints{Access: arch.ParAccess}, false, 200)
	s.LoopEnd() // invalidate_buffer everywhere
	s.Load(0, 4096, 4, h, 300)
	if s.Stats.CoherenceViolations != 0 {
		t.Errorf("violations = %d after a loop-boundary flush", s.Stats.CoherenceViolations)
	}
}

func TestCheckerInterleavedLaneStaleness(t *testing.T) {
	// An interleaved fill scatters lanes to every cluster; a store in the
	// filling cluster leaves the OTHER clusters' lanes stale for that
	// address; a cross-cluster read of the stored element must be flagged.
	s := checkedSystem()
	h := arch.Hints{Access: arch.ParAccess, Map: arch.InterleavedMap}
	s.Load(0, 4096, 2, h, 100) // lane of element 0 lands in cluster 0
	// Element 1 (addr 4098) belongs to cluster 1's lane.
	s.Store(2, 4098, 2, arch.Hints{Access: arch.ParAccess}, false, 200)
	s.Load(1, 4098, 2, arch.Hints{Access: arch.ParAccess, Map: arch.LinearMap}, 300)
	if s.Stats.CoherenceViolations != 1 {
		t.Errorf("violations = %d, want 1 for a stale interleaved lane", s.Stats.CoherenceViolations)
	}
}
