package mem

// Coherence checking: the timing model tracks addresses, not data, so a
// scheduling bug that lets a load read a stale L0 copy would be invisible —
// it would just be a fast wrong answer. With CheckCoherence enabled the
// system shadows every byte with a store-version counter, snapshots the
// versions a subblock carries when it is filled (and refreshes them when a
// PAR_ACCESS store updates the local copy), and flags any L0 hit whose bytes
// are older than the latest store. Running the whole workload under the
// checker dynamically validates the paper's claim that the NL0/1C/PSR
// schemes plus loop-boundary invalidation keep software-managed buffers
// coherent.
//
// The checker is off by default: version maps cost real time and the
// experiments do not need them.

// cohState is the shared shadow-memory state.
type cohState struct {
	// version[b] is the global store counter after the last store that
	// wrote byte b.
	version map[int64]uint64
	clock   uint64
}

func newCohState() *cohState {
	return &cohState{version: map[int64]uint64{}}
}

// recordStore bumps the version of every byte the store writes.
func (c *cohState) recordStore(addr int64, width int) {
	c.clock++
	for b := addr; b < addr+int64(width); b++ {
		c.version[b] = c.clock
	}
}

// snapshot returns the current versions of a byte set.
func (c *cohState) snapshot(bytes []int64) map[int64]uint64 {
	m := make(map[int64]uint64, len(bytes))
	for _, b := range bytes {
		if v, ok := c.version[b]; ok {
			m[b] = v
		}
	}
	return m
}

// EnableCoherenceCheck turns on shadow-version tracking (before any
// traffic). Violations are counted in Stats.CoherenceViolations.
func (s *System) EnableCoherenceCheck() {
	s.coh = newCohState()
	for _, b := range s.L0 {
		b.coh = s.coh
	}
}

// entryBytes lists the byte addresses an entry caches.
func (b *L0Buffer) entryBytes(e *l0Entry) []int64 {
	var out []int64
	if !e.interleaved {
		for a := e.subAddr; a < e.subAddr+int64(b.cfg.L0SubblockBytes); a++ {
			out = append(out, a)
		}
		return out
	}
	elems := b.cfg.L1BlockBytes / e.factor
	for i := e.lane; i < elems; i += b.cfg.Clusters {
		base := e.blockAddr + int64(i*e.factor)
		for a := base; a < base+int64(e.factor); a++ {
			out = append(out, a)
		}
	}
	return out
}

// checkFill snapshots the filled entry's byte versions.
func (b *L0Buffer) checkFill(i int) {
	if b.coh == nil {
		return
	}
	e := &b.entries[i]
	e.versions = b.coh.snapshot(b.entryBytes(e))
}

// checkStoreUpdate refreshes the updated bytes of entry i (the PAR_ACCESS
// store wrote fresh data into the local copy).
func (b *L0Buffer) checkStoreUpdate(i int, addr int64, width int) {
	if b.coh == nil {
		return
	}
	e := &b.entries[i]
	if e.versions == nil {
		e.versions = map[int64]uint64{}
	}
	for a := addr; a < addr+int64(width); a++ {
		if v, ok := b.coh.version[a]; ok {
			e.versions[a] = v
		}
	}
}

// checkHit flags the hit as a violation if any accessed byte is older in the
// entry than the latest store.
func (b *L0Buffer) checkHit(i int, addr int64, width int) {
	if b.coh == nil {
		return
	}
	e := &b.entries[i]
	for a := addr; a < addr+int64(width); a++ {
		latest, stored := b.coh.version[a]
		if !stored {
			continue // never stored: any cached copy is current
		}
		if e.versions == nil || e.versions[a] < latest {
			b.stats.CoherenceViolations++
			return
		}
	}
}
