package mem

// Cache is a set-associative cache with true-LRU replacement used for the
// unified L1 data cache (and, with different geometry, for the distributed
// L1 slices of the baseline architectures). It tracks tags only: the model
// simulates timing, not data values.
type Cache struct {
	sets      int
	ways      int
	blockBits uint
	// tags[set][way] and stamps[set][way]; a zero stamp with tag -1 is
	// an invalid way.
	tags   [][]int64
	stamps [][]int64
	clock  int64
}

// NewCache builds a cache of sizeBytes capacity with the given block size
// and associativity. Geometry must divide evenly.
func NewCache(sizeBytes, blockBytes, assoc int) *Cache {
	blocks := sizeBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	c := &Cache{
		sets:      sets,
		ways:      assoc,
		blockBits: log2(blockBytes),
		tags:      make([][]int64, sets),
		stamps:    make([][]int64, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]int64, assoc)
		c.stamps[i] = make([]int64, assoc)
		for w := range c.tags[i] {
			c.tags[i][w] = -1
		}
	}
	return c
}

func log2(v int) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr int64) int64 {
	return addr &^ ((1 << c.blockBits) - 1)
}

func (c *Cache) setOf(addr int64) int {
	return int((addr >> c.blockBits) % int64(c.sets))
}

// Lookup probes the cache; on a hit the block's LRU stamp is refreshed.
func (c *Cache) Lookup(addr int64) bool {
	c.clock++
	set := c.setOf(addr)
	tag := addr >> c.blockBits
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.stamps[set][w] = c.clock
			return true
		}
	}
	return false
}

// Fill allocates the block, evicting the LRU way (write-through above this
// level: evictions are silent).
func (c *Cache) Fill(addr int64) {
	c.clock++
	set := c.setOf(addr)
	tag := addr >> c.blockBits
	victim, oldest := 0, c.stamps[set][0]
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.stamps[set][w] = c.clock
			return // already present
		}
		if c.tags[set][w] == -1 {
			c.tags[set][w] = tag
			c.stamps[set][w] = c.clock
			return
		}
		if c.stamps[set][w] < oldest {
			victim, oldest = w, c.stamps[set][w]
		}
	}
	c.tags[set][victim] = tag
	c.stamps[set][victim] = c.clock
}

// Invalidate drops the block if present (snoop invalidations in the
// MultiVLIW baseline).
func (c *Cache) Invalidate(addr int64) bool {
	set := c.setOf(addr)
	tag := addr >> c.blockBits
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.tags[set][w] = -1
			return true
		}
	}
	return false
}
