package alias

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
)

// loopWith builds a loop from a body function for dependence tests.
func loopWith(t *testing.T, trip int64, body func(b *ir.Builder)) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("t", trip)
	body(b)
	l, err := b.BuildErr()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return l
}

// edgeSet summarises edges as (from,to,dist) triples.
func edgeSet(r *Result) map[[3]int]bool {
	m := map[[3]int]bool{}
	for _, e := range r.Edges {
		m[[3]int{e.From, e.To, e.Distance}] = true
	}
	return m
}

func TestDistinctArraysIndependent(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Store("st", d, 0, 4, 4, v)
	})
	r := Analyze(l)
	if len(r.Edges) != 0 {
		t.Errorf("edges between distinct arrays: %v", r.Edges)
	}
	if len(r.Sets) != 2 {
		t.Errorf("sets = %d, want 2 singletons", len(r.Sets))
	}
}

func TestSameAddressSameIteration(t *testing.T) {
	// load t[i]; store t[i]: distance-0 dependence, no carried edge.
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Store("st", a, 0, 4, 4, v)
	})
	r := Analyze(l)
	es := edgeSet(r)
	if !es[[3]int{0, 1, 0}] {
		t.Errorf("missing load→store distance-0 edge; got %v", r.Edges)
	}
	if es[[3]int{1, 0, 1}] {
		t.Errorf("spurious store→load carried edge for disjoint-per-iteration addresses")
	}
	if len(r.Sets) != 1 {
		t.Errorf("load and store of the same stream must share a set")
	}
}

func TestIIRRecurrenceDistanceOne(t *testing.T) {
	// store y[i]; load y[i-1]: store→load at distance 1.
	l := loopWith(t, 100, func(b *ir.Builder) {
		y := b.Array("y", 4096, 4)
		v := b.Load("ld", y, -4, 4, 4)
		b.Store("st", y, 0, 4, 4, v)
	})
	r := Analyze(l)
	es := edgeSet(r)
	if !es[[3]int{1, 0, 1}] {
		t.Errorf("missing store→load distance-1 edge; got %v", r.Edges)
	}
}

func TestScalarCellBothWays(t *testing.T) {
	// Stride-0 load/store of the same cell: intra-iteration plus carried.
	l := loopWith(t, 100, func(b *ir.Builder) {
		s := b.Array("s", 64, 4)
		v := b.Load("ld", s, 0, 0, 4)
		b.Store("st", s, 0, 0, 4, v)
	})
	r := Analyze(l)
	es := edgeSet(r)
	if !es[[3]int{0, 1, 0}] || !es[[3]int{1, 0, 1}] {
		t.Errorf("scalar cell needs both d0 and carried d1 edges; got %v", r.Edges)
	}
}

func TestLoadLoadIgnored(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		b.Load("ld1", a, 0, 4, 4)
		b.Load("ld2", a, 0, 4, 4)
	})
	r := Analyze(l)
	if len(r.Edges) != 0 {
		t.Errorf("load-load pair generated edges: %v", r.Edges)
	}
	if len(r.Sets) != 2 {
		t.Errorf("load-load pair must not merge sets")
	}
}

func TestDisjointRangesIndependent(t *testing.T) {
	// Two halves of one array never overlap within the trip count.
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 8192, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Store("st", a, 4096, 4, 4, v)
	})
	r := Analyze(l)
	if len(r.Edges) != 0 {
		t.Errorf("provably disjoint halves generated edges: %v", r.Edges)
	}
}

func TestGCDTestProvesIndependence(t *testing.T) {
	// Store to even words, load from odd words: same range, never collide.
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 8192, 4)
		v := b.Load("ld", a, 4, 8, 4)
		b.Store("st", a, 0, 8, 4, v)
	})
	r := Analyze(l)
	if len(r.Edges) != 0 {
		t.Errorf("GCD-disjoint streams generated edges: %v", r.Edges)
	}
}

func TestUnknownAliasConservative(t *testing.T) {
	// A scrambled load aliases a store to a *different* array when the
	// loop is not specialized.
	l := loopWith(t, 100, func(b *ir.Builder) {
		tab := b.Array("tab", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.LoadIndexed("gather", tab, 4, 7, ir.NoReg)
		b.Store("st", d, 0, 4, 4, v)
	})
	r := Analyze(l)
	if len(r.Sets) != 1 {
		t.Errorf("conservative analysis should merge the gather and the store; sets = %d", len(r.Sets))
	}
}

func TestSpecializationNarrowsAliasing(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		tab := b.Array("tab", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.LoadIndexed("gather", tab, 4, 7, ir.NoReg)
		b.Store("st", d, 0, 4, 4, v)
	})
	l.Specialized = true
	r := Analyze(l)
	if len(r.Sets) != 2 {
		t.Errorf("specialized loop should split the sets; sets = %d", len(r.Sets))
	}
}

func TestSpecializationKeepsRealDependences(t *testing.T) {
	// Histogram: scrambled load and store on the SAME array stay dependent
	// even under specialization.
	l := loopWith(t, 100, func(b *ir.Builder) {
		h := b.Array("h", 4096, 4)
		v := b.LoadIndexed("ld", h, 4, 7, ir.NoReg)
		b.StoreIndexed("st", h, 4, 7, v)
	})
	l.Specialized = true
	r := Analyze(l)
	if len(r.Sets) != 1 {
		t.Errorf("histogram must stay one set under specialization")
	}
	if !r.SetHasLoadAndStore(l, 0) {
		t.Errorf("histogram set should contain both a load and a store")
	}
}

func TestSetHasLoadAndStore(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		d := b.Array("d", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Store("st", d, 0, 4, 4, v)
	})
	r := Analyze(l)
	for s := range r.Sets {
		if r.SetHasLoadAndStore(l, s) {
			t.Errorf("singleton set %d reported load+store", s)
		}
	}
}

func TestSetOfMapsMemRefsOnly(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		x := b.Int("op", v)
		b.Store("st", a, 0, 4, 4, x)
	})
	r := Analyze(l)
	if r.SetOf[1] != -1 {
		t.Errorf("ALU op assigned to set %d", r.SetOf[1])
	}
	if r.SetOf[0] < 0 || r.SetOf[2] < 0 {
		t.Errorf("memory refs missing set assignment")
	}
}

func TestEdgesFeedDDG(t *testing.T) {
	l := loopWith(t, 100, func(b *ir.Builder) {
		s := b.Array("s", 64, 4)
		v := b.Load("ld", s, 0, 0, 4)
		x := b.Int("f", v)
		b.Store("st", s, 0, 0, 4, x)
	})
	r := Analyze(l)
	g := ddg.Build(l, ddg.DefaultLatencies(6), r.Edges)
	if got := g.RecMII(); got != 8 {
		t.Errorf("RecMII through alias edges = %d, want 8", got)
	}
}

func TestOverlappingWidthsDetected(t *testing.T) {
	// 1-byte store into the middle of a 4-byte load's element.
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 0, 4, 4)
		b.Store("st", a, 2, 4, 1, v)
	})
	r := Analyze(l)
	if len(r.Sets) != 1 {
		t.Errorf("sub-word overlap missed: sets = %d", len(r.Sets))
	}
}

func TestNegativeStridePair(t *testing.T) {
	// Forward store, backward load crossing it: dependence must exist.
	l := loopWith(t, 64, func(b *ir.Builder) {
		a := b.Array("a", 4096, 4)
		v := b.Load("ld", a, 252, -4, 4)
		b.Store("st", a, 0, 4, 4, v)
	})
	r := Analyze(l)
	if len(r.Sets) != 1 {
		t.Errorf("crossing streams missed: sets = %d", len(r.Sets))
	}
}

func TestPeriodicAccessConservative(t *testing.T) {
	// A periodic (re-walked) load overlapping a store range must depend.
	l := loopWith(t, 100, func(b *ir.Builder) {
		a := b.Array("a", 256, 4)
		v := b.LoadPeriodic("ld", a, 0, 4, 4, 16)
		b.Store("st", a, 0, 4, 4, v)
	})
	r := Analyze(l)
	if len(r.Sets) != 1 {
		t.Errorf("periodic overlap missed")
	}
}
