// Package alias performs the compile-time memory disambiguation the
// scheduler relies on (§4.1): it derives memory-dependence edges between the
// loads and stores of a loop from their affine address summaries, groups the
// memory instructions into memory-dependent sets Sᵢ (connected components of
// the dependence relation), and implements the effect of code specialization
// — in a specialized loop, conservative "could alias anything" dependences of
// data-dependent accesses are narrowed to the arrays they really touch.
package alias

import (
	"repro/internal/ddg"
	"repro/internal/ir"
)

// maxEnumDist caps how many distinct loop-carried distances are enumerated
// for one pair of accesses whose strides are smaller than their widths; a
// dependence at distance ≥ maxEnumDist barely constrains the schedule but
// still merges the pair into one set, which the set construction handles
// separately.
const maxEnumDist = 4

// Result is the outcome of disambiguating one loop.
type Result struct {
	// Edges are the memory-dependence edges feeding the DDG.
	Edges []ddg.Edge
	// Sets are the memory-dependent sets Sᵢ: connected components over
	// the loop's loads/stores, each sorted by instruction ID. Singleton
	// components are included (they are the "free" instructions of
	// §4.1).
	Sets [][]int
	// SetOf maps an instruction ID to its index in Sets, or -1 for
	// non-memory instructions.
	SetOf []int
}

// SetHasLoadAndStore reports whether set s contains both load and store
// instructions; only such sets constrain cluster assignment (§4.1).
func (r *Result) SetHasLoadAndStore(l *ir.Loop, s int) bool {
	var hasLoad, hasStore bool
	for _, id := range r.Sets[s] {
		switch l.Instrs[id].Op {
		case ir.OpLoad:
			hasLoad = true
		case ir.OpStore:
			hasStore = true
		}
	}
	return hasLoad && hasStore
}

// Analyze disambiguates the loop's memory references.
func Analyze(l *ir.Loop) *Result {
	refs := l.MemRefs()
	r := &Result{SetOf: make([]int, len(l.Instrs))}
	for i := range r.SetOf {
		r.SetOf[i] = -1
	}
	// Union-find over memory instruction IDs.
	parent := make(map[int]int, len(refs))
	for _, in := range refs {
		parent[in.ID] = in.ID
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			a, b := refs[i], refs[j]
			if a.Op == ir.OpLoad && b.Op == ir.OpLoad {
				continue // load-load pairs never constrain
			}
			edges, related := depend(l, a, b)
			if related {
				union(a.ID, b.ID)
			}
			r.Edges = append(r.Edges, edges...)
		}
	}

	// Materialise the sets in deterministic order.
	rootIdx := make(map[int]int)
	for _, in := range refs {
		root := find(in.ID)
		idx, ok := rootIdx[root]
		if !ok {
			idx = len(r.Sets)
			rootIdx[root] = idx
			r.Sets = append(r.Sets, nil)
		}
		r.Sets[idx] = append(r.Sets[idx], in.ID)
		r.SetOf[in.ID] = idx
	}
	return r
}

// depend computes the dependence edges between body-ordered accesses a and b
// (a.ID < b.ID) and whether they belong to the same memory-dependent set.
func depend(l *ir.Loop, a, b *ir.Instr) (edges []ddg.Edge, related bool) {
	ma, mb := a.Mem, b.Mem

	aKnown := ma.StrideKnown && ma.Scramble == 0
	bKnown := mb.StrideKnown && mb.Scramble == 0

	if !aKnown || !bKnown {
		return conservativePair(l, a, b)
	}
	if ma.Array != mb.Array {
		return nil, false
	}
	// Periodic accesses re-walk a window; treat them as covering their
	// whole range for disambiguation (conservative but precise enough).
	if ma.IndexPeriod > 1 || mb.IndexPeriod > 1 {
		if rangesDisjoint(l, ma, mb) {
			return nil, false
		}
		return bothWays(a.ID, b.ID), true
	}

	if ma.Stride == mb.Stride {
		return equalStride(l, a, b)
	}

	// Unequal strides on the same array: prove disjoint if the touched
	// ranges never intersect, otherwise be conservative.
	if rangesDisjoint(l, ma, mb) {
		return nil, false
	}
	if gcdMisses(ma, mb) {
		return nil, false
	}
	return bothWays(a.ID, b.ID), true
}

// conservativePair handles pairs where at least one access is data-dependent
// (unknown stride). Without code specialization the compiler's points-to
// information is assumed defeated: the pair aliases regardless of array.
// With specialization (§4.1), only same-array pairs with overlapping ranges
// remain dependent.
func conservativePair(l *ir.Loop, a, b *ir.Instr) ([]ddg.Edge, bool) {
	if l.Specialized {
		if a.Mem.Array != b.Mem.Array {
			return nil, false
		}
		if rangesDisjoint(l, a.Mem, b.Mem) {
			return nil, false
		}
	}
	return bothWays(a.ID, b.ID), true
}

// bothWays emits the conservative edge pair: a→b same iteration, b→a next
// iteration.
func bothWays(aID, bID int) []ddg.Edge {
	return []ddg.Edge{
		{From: aID, To: bID, Distance: 0, Kind: ddg.DepMem, FixedLat: 1},
		{From: bID, To: aID, Distance: 1, Kind: ddg.DepMem, FixedLat: 1},
	}
}

// equalStride resolves the exact dependence distances between two accesses
// with identical strides. With addresses o_a + s·i and o_b + s·j, the
// accesses overlap when s·(j−i) ∈ (o_a − o_b − w_b, o_a − o_b + w_a).
func equalStride(l *ir.Loop, a, b *ir.Instr) ([]ddg.Edge, bool) {
	ma, mb := a.Mem, b.Mem
	s := ma.Stride
	if s == 0 {
		// Same scalar location every iteration?
		if overlap1D(ma.Offset, ma.Width, mb.Offset, mb.Width) {
			return bothWays(a.ID, b.ID), true
		}
		return nil, false
	}
	if s < 0 {
		s = -s
	}
	var edges []ddg.Edge
	related := false
	// Direction a → b: b at iteration i+d touches a's iteration-i data.
	for _, d := range distRange(ma.Offset-mb.Offset, ma.Width, mb.Width, ma.Stride) {
		if d < 0 || int64(d) >= l.TripCount {
			continue
		}
		related = true
		if d <= maxEnumDist {
			edges = append(edges, ddg.Edge{From: a.ID, To: b.ID, Distance: d, Kind: ddg.DepMem, FixedLat: 1})
		}
	}
	// Direction b → a: a at iteration i+d touches b's iteration-i data
	// (strictly positive distance; same-iteration order is a before b).
	for _, d := range distRange(mb.Offset-ma.Offset, mb.Width, ma.Width, ma.Stride) {
		if d <= 0 || int64(d) >= l.TripCount {
			continue
		}
		related = true
		if d <= maxEnumDist {
			edges = append(edges, ddg.Edge{From: b.ID, To: a.ID, Distance: d, Kind: ddg.DepMem, FixedLat: 1})
		}
	}
	return edges, related
}

// distRange returns the integer values d with stride·d ∈ (diff−wOther, diff+wSelf),
// i.e. the candidate dependence distances for one direction.
func distRange(diff int64, wSelf, wOther int, stride int64) []int {
	if stride == 0 {
		return nil
	}
	lo := diff - int64(wOther) // exclusive
	hi := diff + int64(wSelf)  // exclusive
	var out []int
	// Enumerate d = ceil((lo+1)/stride) .. floor((hi-1)/stride) for
	// positive stride; handle negative stride by mirroring.
	s := stride
	if s < 0 {
		s = -s
		lo, hi = -hi, -lo
	}
	dLo := floorDiv(lo, s) + 1
	dHi := floorDiv(hi-1, s)
	if dHi-dLo >= maxEnumDist*4 {
		dHi = dLo + maxEnumDist*4 // degenerate tiny-stride case; cap
	}
	for d := dLo; d <= dHi; d++ {
		if s*d > lo && s*d < hi {
			dd := d
			if stride < 0 {
				dd = -d
			}
			out = append(out, int(dd))
		}
	}
	return out
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func overlap1D(o1 int64, w1 int, o2 int64, w2 int) bool {
	return o1 < o2+int64(w2) && o2 < o1+int64(w1)
}

// rangesDisjoint reports whether the byte ranges the two affine accesses
// touch over the whole trip count provably never intersect.
func rangesDisjoint(l *ir.Loop, ma, mb *ir.MemAccess) bool {
	if ma.Scramble != 0 || mb.Scramble != 0 {
		return false // scatter covers the whole array
	}
	aLo, aHi := accessRange(l, ma)
	bLo, bHi := accessRange(l, mb)
	return aHi <= bLo || bHi <= aLo
}

// accessRange returns [lo, hi) byte offsets touched within the array.
func accessRange(l *ir.Loop, m *ir.MemAccess) (lo, hi int64) {
	iters := l.TripCount
	if m.IndexPeriod > 1 && int64(m.IndexPeriod) < iters {
		iters = int64(m.IndexPeriod)
	}
	first := m.Offset
	last := m.Offset + m.Stride*(iters-1)
	lo, hi = first, last
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi + int64(m.Width)
}

// gcdMisses reports whether the GCD test proves the two access streams never
// touch the same address: gcd(s_a, s_b) does not divide any value in the
// overlap window of the offsets.
func gcdMisses(ma, mb *ir.MemAccess) bool {
	g := gcd64(abs64(ma.Stride), abs64(mb.Stride))
	if g == 0 {
		return false
	}
	// Addresses collide iff o_a + s_a·i ∈ (o_b − w_a, o_b + w_b) for some
	// i, j; a necessary condition is gcd | (o_b − o_a + k) for some k in
	// the width window.
	diff := mb.Offset - ma.Offset
	for k := int64(-(int64(ma.Width) - 1)); k <= int64(mb.Width)-1; k++ {
		if (diff+k)%g == 0 {
			return false
		}
	}
	return true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
