// Tests for the kernel-registration endpoints and the kernels: field of
// /v1/explore — user-submitted loops swept by content hash with the same
// byte-identity guarantees as the suite.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

// serverKernelSrc is deliberately non-canonical (comment, uneven spacing):
// registration must normalize it to the canonical form's identity.
const serverKernelSrc = `
# submitted over HTTP
loop httpmac 512
array acc 8192 4
array coef 8192 4
a    = load acc  0 4 4
c    = load coef 0 4 4
p    = mul a c
s    = int p
store acc 0 4 4 s
`

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

// TestKernelEndpoints covers the registration surface: idempotent POST under
// the content hash, GET by id, the id+name listing, and the error statuses
// (400 invalid source, 404 unknown id, 413 oversized body).
func TestKernelEndpoints(t *testing.T) {
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	resp, body := postRaw(t, ts.URL+"/v1/kernels", serverKernelSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var reg workload.RegisteredKernel
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("unmarshal registration: %v", err)
	}
	if !workload.IsKernelID(reg.ID) || reg.Name != "httpmac" || reg.Source == "" {
		t.Fatalf("registration reply %+v: want content-hash id, name httpmac, canonical source", reg)
	}

	// Resubmitting a different spelling of the same loop is idempotent.
	respelled := strings.ReplaceAll(serverKernelSrc, "a    =", "avec =")
	respelled = strings.ReplaceAll(respelled, "mul a c", "mul avec c")
	resp, body = postRaw(t, ts.URL+"/v1/kernels", respelled)
	var again workload.RegisteredKernel
	if err := json.Unmarshal(body, &again); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d err %v", resp.StatusCode, err)
	}
	if again.ID != reg.ID {
		t.Errorf("respelled source got identity %s, want %s", again.ID, reg.ID)
	}

	resp, body = getBody(t, ts.URL+"/v1/kernels/"+reg.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get kernel: status %d: %s", resp.StatusCode, body)
	}
	var got workload.RegisteredKernel
	if err := json.Unmarshal(body, &got); err != nil || got.Source != reg.Source {
		t.Errorf("GET /v1/kernels/{id} did not return the canonical source (err %v)", err)
	}

	resp, body = getBody(t, ts.URL+"/v1/kernels")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list kernels: status %d", resp.StatusCode)
	}
	var list struct {
		Count   int `json:"count"`
		Kernels []struct {
			ID   string `json:"id"`
			Name string `json:"name"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("unmarshal list: %v", err)
	}
	if list.Count != 1 || len(list.Kernels) != 1 || list.Kernels[0].ID != reg.ID {
		t.Errorf("kernel list %+v: want exactly the registered kernel", list)
	}

	resp, _ = getBody(t, ts.URL+"/v1/kernels/"+strings.Repeat("0", 64))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown kernel id: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postRaw(t, ts.URL+"/v1/kernels", "loop broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid source: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postRaw(t, ts.URL+"/v1/kernels", strings.Repeat("x", 1<<20+1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized source: status %d, want 413", resp.StatusCode)
	}
}

// TestExploreWithKernels is the serving acceptance path: register over HTTP,
// sweep by hash through sync and async /v1/explore, and require byte
// equality with the local engine run of the same spec.
func TestExploreWithKernels(t *testing.T) {
	harness.ResetCaches()
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()
	defer harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 4})

	resp, body := postRaw(t, ts.URL+"/v1/kernels", serverKernelSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var reg workload.RegisteredKernel
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("unmarshal registration: %v", err)
	}

	req := ExploreRequest{
		Benches:  []string{"gsmdec"},
		Kernels:  []string{reg.ID},
		Clusters: []int{4, 8},
		Entries:  []int{4, 8},
		Format:   "json",
	}
	resp, syncBody := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync explore: status %d: %s", resp.StatusCode, syncBody)
	}
	if want := localRender(t, req, "json"); !bytes.Equal(syncBody, want) {
		t.Errorf("served kernel sweep differs from local run")
	}

	// Async path: same request, stored result must match the sync bytes.
	req.Async = true
	resp, body = postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal job status: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State == JobQueued || st.State == JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("async kernel sweep did not finish")
		}
		time.Sleep(20 * time.Millisecond)
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal job status: %v", err)
		}
	}
	if st.State != JobDone {
		t.Fatalf("async job state %s: %s", st.State, st.Error)
	}
	resp, asyncBody := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job result: status %d", resp.StatusCode)
	}
	if !bytes.Equal(asyncBody, syncBody) {
		t.Errorf("async kernel sweep result differs from sync response")
	}
}

// TestExploreSpecErrorsAre400 pins the satellite fix: spec mistakes (unknown
// benchmark, unregistered kernel hash, unparsable inline source) are the
// caller's fault and answer 400 — never 500 — and the unknown-benchmark
// message teaches the available names.
func TestExploreSpecErrorsAre400(t *testing.T) {
	workload.ResetKernelRegistry()
	defer workload.ResetKernelRegistry()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	bad := ExploreRequest{Benches: []string{"nosuchbench"}, Clusters: []int{4}, Entries: []int{4}}
	resp, body := postJSON(t, ts.URL+"/v1/explore", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "gsmdec") || !strings.Contains(string(body), "rasta") {
		t.Errorf("unknown-benchmark error does not list available names: %s", body)
	}

	bad = ExploreRequest{Kernels: []string{strings.Repeat("ab", 32)}, Clusters: []int{4}, Entries: []int{4}}
	resp, body = postJSON(t, ts.URL+"/v1/explore", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unregistered kernel: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "/v1/kernels") {
		t.Errorf("unregistered-kernel error does not point at /v1/kernels: %s", body)
	}

	bad = ExploreRequest{Kernels: []string{"loop broken"}, Clusters: []int{4}, Entries: []int{4}}
	if resp, body = postJSON(t, ts.URL+"/v1/explore", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unparsable inline kernel: status %d, want 400: %s", resp.StatusCode, body)
	}

	// Async submissions validate the spec before accepting the job, so the
	// same mistakes 400 there too instead of parking a doomed job.
	bad.Async = true
	if resp, body = postJSON(t, ts.URL+"/v1/explore", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("async unparsable kernel: status %d, want 400: %s", resp.StatusCode, body)
	}
}
