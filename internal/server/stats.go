// Per-endpoint serving counters. The load generator (internal/loadgen,
// cmd/l0bench) measures latency from the client side; attributing a tail to
// admission queueing vs compute needs the server's own view of the same
// window. Every route is wrapped in an instrument handler that maintains
// three numbers — cumulative requests, cumulative error responses (status
// >= 400), and a live in-flight gauge — surfaced by /v1/cachestats so a load
// run can snapshot them before and after its measure phase and diff.
//
// The counters are atomics: the instrumentation adds no lock to any request
// path, and the route list is fixed at construction so reporting iterates a
// slice in registration order (no map iteration — the stats block is part of
// a JSON response whose field order must not wobble between polls).

package server

import (
	"net/http"
	"sync/atomic"
)

// routeStat is one endpoint's counters.
type routeStat struct {
	pattern  string
	requests atomic.Int64
	errors   atomic.Int64
	inFlight atomic.Int64
}

// RouteStats is the wire form of one endpoint's counters (in /v1/cachestats
// under "endpoints").
type RouteStats struct {
	Pattern  string `json:"pattern"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	InFlight int64  `json:"in_flight"`
}

// statusWriter captures the response status so the instrument wrapper can
// count error responses. It forwards Flush so the CSV streaming path keeps
// flushing through the wrapper (a no-op when the underlying writer cannot).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument registers the route's counter slot and wraps the handler with
// request/error counting and the in-flight gauge.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	st := &routeStat{pattern: pattern}
	s.routes = append(s.routes, st)
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		st.inFlight.Add(1)
		s.inFlight.Add(1)
		defer func() {
			st.inFlight.Add(-1)
			s.inFlight.Add(-1)
		}()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status >= 400 {
			st.errors.Add(1)
		}
	}
}

// routeStats snapshots every endpoint's counters in registration order.
func (s *Server) routeStats() []RouteStats {
	out := make([]RouteStats, 0, len(s.routes))
	for _, st := range s.routes {
		out = append(out, RouteStats{
			Pattern:  st.pattern,
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			InFlight: st.inFlight.Load(),
		})
	}
	return out
}
