package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle of one submitted sweep.
type JobState string

const (
	// JobQueued: admitted, waiting for a running slot.
	JobQueued JobState = "queued"
	// JobRunning: executing on the engine.
	JobRunning JobState = "running"
	// JobDone: finished; the rendered result is available.
	JobDone JobState = "done"
	// JobFailed: the sweep errored; Error carries the message.
	JobFailed JobState = "failed"
	// JobCanceled: canceled via the API (or an abandoned sync request).
	JobCanceled JobState = "canceled"
)

// job is one tracked request. Sync requests are tracked too (they appear in
// /v1/jobs while running) — the only difference is who consumes the result.
type job struct {
	mu sync.Mutex

	id     string
	state  JobState
	format string
	// gridSize is the cell count of the sweep (admission-checked).
	gridSize int
	// workers is the worker-slot count actually granted, 0 until running.
	workers int

	result      []byte
	contentType string
	errMsg      string

	created  time.Time
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
}

// JobStatus is the wire view of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Format   string   `json:"format"`
	GridSize int      `json:"grid_size"`
	Workers  int      `json:"workers,omitempty"`
	Error    string   `json:"error,omitempty"`
	// ResultURL is set once the job is done.
	ResultURL string `json:"result_url,omitempty"`

	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Seconds of run time (so far for running jobs).
	RunSeconds float64 `json:"run_seconds,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Format: j.format, GridSize: j.gridSize,
		Workers: j.workers, Error: j.errMsg,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunSeconds = end.Sub(j.started).Seconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == JobDone {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

func (j *job) setRunning(workers int) {
	j.mu.Lock()
	j.state = JobRunning
	j.workers = workers
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *job) finish(state JobState, result []byte, contentType, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.contentType = contentType
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
}

// jobTable tracks every job of the process, in submission order. Jobs are
// never evicted: each entry is a few hundred bytes plus its rendered result,
// and the operator controls result size via the grid-cell cap.
type jobTable struct {
	mu   sync.Mutex
	next int
	jobs map[string]*job
	ids  []string
}

func newJobTable() *jobTable {
	return &jobTable{jobs: map[string]*job{}}
}

// add registers a freshly admitted job and assigns its ID.
func (t *jobTable) add(format string, gridSize int, cancel context.CancelFunc) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	j := &job{
		id:     fmt.Sprintf("job-%d", t.next),
		state:  JobQueued,
		format: format, gridSize: gridSize,
		created: time.Now(),
		cancel:  cancel,
	}
	t.jobs[j.id] = j
	t.ids = append(t.ids, j.id)
	return j
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

// list returns every job's status in submission order.
func (t *jobTable) list() []JobStatus {
	t.mu.Lock()
	ids := append([]string(nil), t.ids...)
	t.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := t.get(id); j != nil {
			out = append(out, j.status())
		}
	}
	return out
}
