package server

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sms/exact"
)

// JobState is the lifecycle of one submitted sweep.
type JobState string

const (
	// JobQueued: admitted, waiting for a running slot.
	JobQueued JobState = "queued"
	// JobRunning: executing on the engine.
	JobRunning JobState = "running"
	// JobDone: finished; the rendered result is available.
	JobDone JobState = "done"
	// JobFailed: the sweep errored; Error carries the message.
	JobFailed JobState = "failed"
	// JobCanceled: canceled via the API (or an abandoned sync request).
	JobCanceled JobState = "canceled"
)

// job is one tracked request. Sync requests are tracked too (they appear in
// /v1/jobs while running) — the only difference is who consumes the result.
type job struct {
	mu sync.Mutex

	id     string
	state  JobState
	format string
	// gridSize is the cell count of the sweep (admission-checked).
	gridSize int
	// workers is the worker-slot count actually granted, 0 until running.
	workers int

	result      []byte
	contentType string
	errMsg      string

	// progress is the exact-scheduler search sink wired into the sweep's
	// options: long branch-and-bound searches report node counts and the
	// incumbent II here, so job status shows a search moving. Allocated for
	// every job (heuristic sweeps simply never write to it).
	progress *exact.Progress

	created  time.Time
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
}

// JobStatus is the wire view of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Format   string   `json:"format"`
	GridSize int      `json:"grid_size"`
	Workers  int      `json:"workers,omitempty"`
	Error    string   `json:"error,omitempty"`
	// ResultURL is set once the job is done.
	ResultURL string `json:"result_url,omitempty"`

	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Seconds of run time (so far for running jobs).
	RunSeconds float64 `json:"run_seconds,omitempty"`

	// ExactNodes/ExactIncumbentII report exact-backend search progress:
	// branch nodes explored so far and the best (smallest) II realized by
	// the current search. Zero for heuristic sweeps.
	ExactNodes       int64 `json:"exact_nodes,omitempty"`
	ExactIncumbentII int64 `json:"exact_incumbent_ii,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Format: j.format, GridSize: j.gridSize,
		Workers: j.workers, Error: j.errMsg,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		end := j.finished
		if end.IsZero() {
			end = time.Now() //lint:allow wallclock run_seconds progress field of job status; not a sweep artifact
		}
		st.RunSeconds = end.Sub(j.started).Seconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == JobDone {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	if j.progress != nil {
		st.ExactNodes = j.progress.Nodes.Load()
		st.ExactIncumbentII = j.progress.Incumbent.Load()
	}
	return st
}

func (j *job) setRunning(workers int) {
	j.mu.Lock()
	j.state = JobRunning
	j.workers = workers
	//lint:allow wallclock job lifecycle timestamp for TTL/retention and status; not a sweep artifact
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *job) finish(state JobState, result []byte, contentType, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.contentType = contentType
	j.errMsg = errMsg
	//lint:allow wallclock job lifecycle timestamp for TTL/retention and status; not a sweep artifact
	j.finished = time.Now()
	j.mu.Unlock()
}

// jobTable tracks every job of the process, in submission order, with a
// retention policy over the finished ones: a TTL measured from finish time
// and a cap on retained terminal jobs (done, failed or canceled — their
// rendered results are the memory that matters; the grid-cell cap bounds
// each result, retention bounds how many a week-long server accretes).
// Queued and running jobs are never evicted, so eviction can never race a
// cancel: by the time a job is eligible its context is already settled, and
// the sweep still cancels it defensively to release the context.
//
// Evicted jobs stay distinguishable from jobs that never existed: IDs are
// assigned sequentially, so any id at or below the high-water mark that is
// absent from the table must have been retired — the API answers 410 Gone
// for those, 404 only for ids never issued (the satellite's 404-vs-pending
// ambiguity fix).
type jobTable struct {
	mu   sync.Mutex
	next int
	jobs map[string]*job
	ids  []string

	// ttl is how long a terminal job is retained after it finished
	// (0 = forever); maxKeep caps retained terminal jobs (0 = unlimited).
	ttl     time.Duration
	maxKeep int
	// now is the clock, injectable for deterministic retention tests.
	now func() time.Time
	// evicted counts retired jobs (surfaced by /v1/jobs).
	evicted int64
}

func newJobTable(ttl time.Duration, maxKeep int) *jobTable {
	//lint:allow wallclock injected clock for job retention; TTL eviction returns 410, it never alters result bytes
	return &jobTable{jobs: map[string]*job{}, ttl: ttl, maxKeep: maxKeep, now: time.Now}
}

// add registers a freshly admitted job and assigns its ID.
func (t *jobTable) add(format string, gridSize int, cancel context.CancelFunc) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	t.next++
	j := &job{
		id:     fmt.Sprintf("job-%d", t.next),
		state:  JobQueued,
		format: format, gridSize: gridSize,
		created:  t.now(),
		cancel:   cancel,
		progress: &exact.Progress{},
	}
	t.jobs[j.id] = j
	t.ids = append(t.ids, j.id)
	return j
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	return t.jobs[id]
}

// wasEvicted reports whether id names a job that existed and was retired by
// retention (as opposed to one that was never submitted).
func (t *jobTable) wasEvicted(id string) bool {
	num := strings.TrimPrefix(id, "job-")
	n, err := strconv.Atoi(num)
	// Only canonical ids were ever issued: "job-007"/"job-+5" parse to the
	// same n as real ids but must stay 404, not 410.
	if !strings.HasPrefix(id, "job-") || err != nil || n < 1 || strconv.Itoa(n) != num {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return n <= t.next && t.jobs[id] == nil
}

// sweep applies the retention policy now (the janitor's entry point; the
// mutating accessors sweep inline so retention also holds without one).
func (t *jobTable) sweep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
}

// sweepLocked retires terminal jobs that outlived the TTL, then the oldest
// terminal jobs beyond maxKeep. Caller holds t.mu; job.mu nests inside.
func (t *jobTable) sweepLocked() {
	if t.ttl <= 0 && t.maxKeep <= 0 {
		return
	}
	now := t.now()
	keep := t.ids[:0]
	var terminal []string
	for _, id := range t.ids {
		j := t.jobs[id]
		j.mu.Lock()
		done := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		expired := done && t.ttl > 0 && !j.finished.IsZero() && now.Sub(j.finished) > t.ttl
		j.mu.Unlock()
		if expired {
			t.retire(j)
			continue
		}
		if done {
			terminal = append(terminal, id)
		}
		keep = append(keep, id)
	}
	t.ids = keep
	if t.maxKeep > 0 && len(terminal) > t.maxKeep {
		doomed := map[string]bool{}
		for _, id := range terminal[:len(terminal)-t.maxKeep] {
			doomed[id] = true
			t.retire(t.jobs[id])
		}
		keep = t.ids[:0]
		for _, id := range t.ids {
			if !doomed[id] {
				keep = append(keep, id)
			}
		}
		t.ids = keep
	}
}

// retire drops one terminal job. Its context is canceled defensively (a
// no-op for every terminal state, but it releases the context tree).
func (t *jobTable) retire(j *job) {
	delete(t.jobs, j.id)
	t.evicted++
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// list returns every job's status in submission order, plus the count of
// jobs retired by retention.
func (t *jobTable) list() ([]JobStatus, int64) {
	t.mu.Lock()
	t.sweepLocked()
	ids := append([]string(nil), t.ids...)
	evicted := t.evicted
	t.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		t.mu.Lock()
		j := t.jobs[id]
		t.mu.Unlock()
		if j != nil {
			out = append(out, j.status())
		}
	}
	return out, evicted
}
