package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// smallReq is the 2×2×2 grid the handler tests sweep (two benchmarks, two
// cluster counts, two buffer sizes).
func smallReq() ExploreRequest {
	return ExploreRequest{
		Benches:  []string{"gsmdec", "g721dec"},
		Clusters: []int{4, 16},
		Entries:  []int{4, 8},
	}
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// localRender runs the same spec through the engine directly — the bytes a
// local l0explore would emit.
func localRender(t *testing.T, req ExploreRequest, format string) []byte {
	t.Helper()
	res, err := harness.ExploreCfg(harness.DefaultRunConfig(), req.Spec(), 0, 1)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	body, _, err := renderExplore(res, format)
	if err != nil {
		t.Fatalf("local render: %v", err)
	}
	return body
}

// TestExploreSyncMatchesLocal is the serving acceptance gate: a synchronous
// /v1/explore response must be byte-identical to the same spec run locally,
// in every format, and a repeat request (warm cache) must compile nothing.
func TestExploreSyncMatchesLocal(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 4})
	req := smallReq()

	for _, format := range []string{"json", "csv", "table"} {
		req.Format = format
		resp, got := postJSON(t, ts.URL+"/v1/explore", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", format, resp.StatusCode, got)
		}
		if want := localRender(t, req, format); !bytes.Equal(got, want) {
			t.Errorf("%s: served sweep differs from local run", format)
		}
	}

	// The grid is now fully compiled in-process: another request must be
	// pure cache hits.
	before := harness.CacheStatsNow()
	req.Format = "json"
	resp, got := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d", resp.StatusCode)
	}
	after := harness.CacheStatsNow()
	if after.Compiles != before.Compiles {
		t.Errorf("warm request compiled %d kernels, want 0", after.Compiles-before.Compiles)
	}
	if want := localRender(t, req, "json"); !bytes.Equal(got, want) {
		t.Errorf("warm request body differs from local run")
	}
	harness.ResetCaches()
}

// TestExploreAsyncParity submits the same sweep sync and async and requires
// the stored job result to equal the streamed sync body byte-for-byte.
func TestExploreAsyncParity(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 4})
	req := smallReq()
	req.Format = "csv"

	resp, syncBody := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d: %s", resp.StatusCode, syncBody)
	}

	req.Async = true
	resp, body := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal job status: %v", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal job status: %v", err)
		}
		if st.State == JobDone || st.State == JobFailed || st.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	resp, asyncBody := getBody(t, ts.URL+st.ResultURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d", resp.StatusCode)
	}
	if !bytes.Equal(asyncBody, syncBody) {
		t.Errorf("async job result differs from sync response")
	}
	harness.ResetCaches()
}

// TestExploreConcurrentDeterminism fires the same sweep from several
// concurrent clients through a deliberately tiny worker pool and requires
// every response to be byte-identical to a direct ExploreCfg render.
func TestExploreConcurrentDeterminism(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 3, MaxConcurrent: 2})
	req := smallReq()
	req.Format = "json"
	want := localRender(t, req, "json")

	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Errorf("client %d: response differs from direct ExploreCfg render", i)
		}
	}
	harness.ResetCaches()
}

// TestRejections covers the request-validation surface: malformed JSON,
// unknown fields, bad formats, unknown benchmarks, oversized grids and a
// full admission queue.
func TestRejections(t *testing.T) {
	ts := newTestServer(t, Config{WorkerBudget: 2, MaxGridCells: 10})

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	cases := []struct {
		name, body string
		status     int
	}{
		{"truncated json", `{"benches": ["gsm`, http.StatusBadRequest},
		{"unknown field", `{"benchs": ["gsmdec"]}`, http.StatusBadRequest},
		{"trailing data", `{"benches": ["gsmdec"]} {"again": true}`, http.StatusBadRequest},
		{"bad format", `{"format": "xml"}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benches": ["nosuch"]}`, http.StatusBadRequest},
		{"oversized grid", `{"clusters": [2,4,8,16], "entries": [2,4,8,16]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := post(c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not structured: %s", c.name, body)
		}
	}

	resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "nosuch"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("run with unknown bench: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Arch: "warp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("run with unknown arch: status %d", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d", resp.StatusCode)
	}
}

// TestQueueBound saturates the single running slot, fills the waiting
// queue, and checks the next submission bounces with 503 — the queue bound
// covers waiting requests only, not the running one.
func TestQueueBound(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 1, MaxConcurrent: 1, MaxQueued: 2})

	// The slot-holder sweeps a large grid (156 cells; the zero request
	// would be just the 13-cell paper point) so it is still running —
	// seconds, even fully cache-warm — while the small fillers and the
	// overflow probe arrive.
	big := ExploreRequest{Clusters: []int{4, 8, 16, 32}, Entries: []int{4, 8, 16}, Async: true}
	resp, body := postJSON(t, ts.URL+"/v1/explore", big)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status %d: %s", resp.StatusCode, body)
	}
	var first JobStatus
	json.Unmarshal(body, &first)
	req := smallReq()
	req.Async = true
	// Wait until it holds the running slot (it then no longer counts
	// against the waiting queue).
	deadline0 := time.Now().Add(30 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+first.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d", resp.StatusCode)
		}
		json.Unmarshal(body, &first)
		if first.State != JobQueued {
			break
		}
		if time.Now().After(deadline0) {
			t.Fatalf("first job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Two more fill the waiting queue...
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/explore", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued job %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// ... so the next must be turned away.
	resp, body = postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow submission: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	// Cancel the slot-holder so the drain below finishes quickly.
	postJSON(t, ts.URL+"/v1/jobs/"+first.ID+"/cancel", struct{}{})
	// Drain: wait for the admitted jobs so ResetCaches below doesn't race
	// their compiles.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/v1/jobs")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("jobs list: %d", resp.StatusCode)
		}
		var list struct{ Jobs []JobStatus }
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatalf("unmarshal jobs: %v", err)
		}
		busy := 0
		for _, j := range list.Jobs {
			if j.State == JobQueued || j.State == JobRunning {
				busy++
			}
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs still busy after 60s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	harness.ResetCaches()
}

// TestCachePersistenceThroughServer exercises the serving side of the
// persistence loop: sweep → save via the API → fresh server loads the
// snapshot → the same sweep is served with zero compiles and, since the v2
// snapshot carries simulation results too, zero simulations.
func TestCachePersistenceThroughServer(t *testing.T) {
	harness.ResetCaches()
	cachePath := filepath.Join(t.TempDir(), "sched_cache.json")

	ts := newTestServer(t, Config{WorkerBudget: 4, CachePath: cachePath})
	req := smallReq()
	req.Format = "json"
	resp, coldBody := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: status %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/cache/save", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache save: status %d: %s", resp.StatusCode, body)
	}

	// Fresh process state: empty caches, new server, snapshot loaded.
	harness.ResetCaches()
	srv := New(Config{WorkerBudget: 4, CachePath: cachePath})
	st, err := srv.LoadCache()
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if st.Schedules == 0 {
		t.Fatalf("LoadCache imported nothing")
	}
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()

	before := harness.CacheStatsNow()
	resp, warmBody := postJSON(t, ts2.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: status %d", resp.StatusCode)
	}
	after := harness.CacheStatsNow()
	if after.Compiles != before.Compiles {
		t.Errorf("warm sweep on a fresh process compiled %d kernels, want 0", after.Compiles-before.Compiles)
	}
	if after.Simulations != before.Simulations {
		t.Errorf("warm sweep on a fresh process simulated %d benchmarks, want 0", after.Simulations-before.Simulations)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("persisted-cache sweep differs from cold sweep")
	}

	// The stats endpoint must surface the load and the counters. The warm
	// sweep was served from the result cache, so the hit traffic shows up
	// on sim_hits (the schedule cache is loaded but never consulted).
	resp, body = getBody(t, ts2.URL+"/v1/cachestats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cachestats: status %d", resp.StatusCode)
	}
	var stats struct {
		ScheduleEntries int                 `json:"schedule_entries"`
		ResultEntries   int                 `json:"result_entries"`
		SimHits         int64               `json:"sim_hits"`
		Loaded          harness.ImportStats `json:"loaded"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("unmarshal cachestats: %v", err)
	}
	if stats.ScheduleEntries == 0 || stats.ResultEntries == 0 || stats.SimHits == 0 ||
		stats.Loaded.Schedules != st.Schedules || stats.Loaded.Results == 0 {
		t.Errorf("cachestats does not reflect the loaded cache: %s", body)
	}
	harness.ResetCaches()
}

// TestRunAndEnergyEndpoints smoke-checks the two non-grid request kinds.
func TestRunAndEnergyEndpoints(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Arch: "l0", Entries: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	var run RunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("unmarshal run: %v", err)
	}
	if run.Total <= 0 || len(run.Kernels) == 0 || run.Energy <= 0 {
		t.Errorf("degenerate run response: %+v", run)
	}
	// The same config through /v1/run twice is deterministic.
	_, body2 := postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Arch: "l0", Entries: 8})
	if !bytes.Equal(body, body2) {
		t.Errorf("run endpoint not deterministic")
	}

	resp, body = postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Entries: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("energy: status %d: %s", resp.StatusCode, body)
	}
	var en struct {
		Entries int                 `json:"entries"`
		Rows    []harness.EnergyRow `json:"rows"`
	}
	if err := json.Unmarshal(body, &en); err != nil {
		t.Fatalf("unmarshal energy: %v", err)
	}
	if en.Entries != 8 || len(en.Rows) == 0 {
		t.Errorf("degenerate energy response: %s", body)
	}

	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	harness.ResetCaches()
}

// TestJobCancel submits an async job against a zero-worker... not possible —
// instead saturate the single running slot with a long job, then cancel the
// queued one: it must finish canceled without ever running.
func TestJobCancel(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 1, MaxConcurrent: 1, MaxQueued: 8})

	long := ExploreRequest{Clusters: []int{4, 8}, Entries: []int{4, 8, 16}, Async: true}
	resp, body := postJSON(t, ts.URL+"/v1/explore", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long job: status %d: %s", resp.StatusCode, body)
	}
	var longSt JobStatus
	json.Unmarshal(body, &longSt)

	small := smallReq()
	small.Async = true
	resp, body = postJSON(t, ts.URL+"/v1/explore", small)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: status %d: %s", resp.StatusCode, body)
	}
	var queuedSt JobStatus
	json.Unmarshal(body, &queuedSt)

	resp, body = postJSON(t, ts.URL+"/v1/jobs/"+queuedSt.ID+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", resp.StatusCode, body)
	}
	// Cancel the long one too so the test doesn't wait for a full sweep.
	postJSON(t, ts.URL+"/v1/jobs/"+longSt.ID+"/cancel", struct{}{})

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+queuedSt.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", resp.StatusCode)
		}
		json.Unmarshal(body, &queuedSt)
		if queuedSt.State != JobQueued && queuedSt.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job still %s after 60s", queuedSt.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if queuedSt.State != JobCanceled {
		t.Errorf("canceled job finished %s (error %q)", queuedSt.State, queuedSt.Error)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+queuedSt.ID+"/result"); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: status %d, want 409", resp.StatusCode)
	}
	// Wait out the long job as well before resetting global caches.
	for {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+longSt.ID)
		json.Unmarshal(body, &longSt)
		if longSt.State != JobQueued && longSt.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job still %s", longSt.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	harness.ResetCaches()
}

// waitJob polls a job until it leaves the queued/running states and returns
// its final status.
func waitJob(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := getBody(t, baseURL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s status: %d: %s", id, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal job status: %v", err)
		}
		if st.State != JobQueued && st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobGoneVsNotFound is the HTTP face of the retention satellite: once
// retention retires a finished job, its id must answer 410 Gone on every
// job endpoint — distinct from 404 for ids never issued — so a client
// polling a slow async sweep can tell "expired, stop retrying" from "wrong
// id".
func TestJobGoneVsNotFound(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 2, MaxRetainedJobs: 1})

	req := smallReq()
	req.Async = true
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/explore", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal submit response: %v", err)
		}
		if st := waitJob(t, ts.URL, st.ID); st.State != JobDone {
			t.Fatalf("job %s finished %s: %s", st.ID, st.State, st.Error)
		}
		ids = append(ids, st.ID)
	}

	// Both jobs are terminal and the cap is 1: the older one must be gone
	// on status, result and cancel alike.
	for _, ep := range []string{"", "/result", "/cancel"} {
		url := ts.URL + "/v1/jobs/" + ids[0] + ep
		var resp *http.Response
		var body []byte
		if ep == "/cancel" {
			resp, body = postJSON(t, url, struct{}{})
		} else {
			resp, body = getBody(t, url)
		}
		if resp.StatusCode != http.StatusGone {
			t.Errorf("GET %s%s: status %d, want 410: %s", ids[0], ep, resp.StatusCode, body)
		}
	}

	// The newer job survived with its result intact.
	resp, body := getBody(t, ts.URL+"/v1/jobs/"+ids[1]+"/result")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("surviving job result: status %d, %d bytes", resp.StatusCode, len(body))
	}

	// An id never issued is still a plain 404.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}

	// The jobs listing reports the eviction.
	resp, body = getBody(t, ts.URL+"/v1/jobs")
	var listing struct {
		Jobs    []JobStatus `json:"jobs"`
		Evicted int64       `json:"evicted"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("unmarshal jobs listing: %v", err)
	}
	if resp.StatusCode != http.StatusOK || listing.Evicted == 0 {
		t.Errorf("jobs listing: status %d evicted %d, want 200 with evicted > 0", resp.StatusCode, listing.Evicted)
	}
	harness.ResetCaches()
}

// TestBoundedCachesThroughServer sweeps with caps below the working set and
// requires the served bytes to match an unbounded local render while
// /v1/cachestats shows eviction held the resident set at the caps.
func TestBoundedCachesThroughServer(t *testing.T) {
	harness.ResetCaches()
	limits := harness.CacheLimits{ScheduleEntries: 3, ScheduleBytes: -1, ResultEntries: 2, ResultBytes: -1}
	harness.SetCacheLimits(limits)
	t.Cleanup(harness.ResetCaches)
	ts := newTestServer(t, Config{WorkerBudget: 4})

	req := smallReq()
	req.Format = "json"
	resp, got := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d: %s", resp.StatusCode, got)
	}

	resp, body := getBody(t, ts.URL+"/v1/cachestats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cachestats: status %d", resp.StatusCode)
	}
	var stats struct {
		ScheduleEntries   int   `json:"schedule_entries"`
		ResultEntries     int   `json:"result_entries"`
		ScheduleEvictions int64 `json:"schedule_evictions"`
		ResultEvictions   int64 `json:"result_evictions"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("unmarshal cachestats: %v", err)
	}
	if stats.ScheduleEvictions == 0 || stats.ResultEvictions == 0 {
		t.Errorf("caps below working set but no evictions: %s", body)
	}
	if stats.ScheduleEntries > limits.ScheduleEntries || stats.ResultEntries > limits.ResultEntries {
		t.Errorf("resident entries %d/%d exceed caps %d/%d", stats.ScheduleEntries, stats.ResultEntries,
			limits.ScheduleEntries, limits.ResultEntries)
	}

	// Byte-identity against the unbounded local render: eviction must not
	// change a single byte of the response.
	harness.ResetCaches()
	if want := localRender(t, req, "json"); !bytes.Equal(got, want) {
		t.Errorf("bounded served sweep differs from unbounded local run")
	}
}

// TestHealthzReadiness checks the enriched /healthz: an idle server reports
// accepting with its capacity numbers; a draining one flips status and
// refuses new submissions with 503 while status endpoints stay up.
func TestHealthzReadiness(t *testing.T) {
	srv := New(Config{WorkerBudget: 3, MaxQueued: 7})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h struct {
		Status          string `json:"status"`
		Accepting       bool   `json:"accepting"`
		QueueDepth      int64  `json:"queue_depth"`
		Running         int    `json:"running"`
		WorkerSlotsFree int    `json:"worker_slots_free"`
		WorkerBudget    int    `json:"worker_budget"`
		MaxQueued       int    `json:"max_queued"`
	}
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz decode: %v (%s)", err, body)
	}
	if h.Status != "ok" || !h.Accepting {
		t.Fatalf("idle server not ready: %+v", h)
	}
	if h.WorkerBudget != 3 || h.WorkerSlotsFree != 3 || h.MaxQueued != 7 {
		t.Fatalf("capacity numbers wrong: %+v", h)
	}
	if h.QueueDepth != 0 || h.Running != 0 {
		t.Fatalf("idle server reports load: %+v", h)
	}

	srv.SetDraining(true)
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz must stay 200 (liveness), got %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || h.Accepting {
		t.Fatalf("draining server not reported: %+v", h)
	}
	req := smallReq()
	req.Format = "json"
	resp, _ = postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted work: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted /v1/run: %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs"); resp.StatusCode != http.StatusOK {
		t.Fatalf("job inspection must survive draining: %d", resp.StatusCode)
	}

	srv.SetDraining(false)
	resp, _ = postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrained server refused work: %d", resp.StatusCode)
	}
}

// TestExploreSharded checks the fleet's server-side contract: shard i/M
// requests return mergeable partial JSON whose merge is byte-identical to
// the unsharded response, and invalid or non-JSON shard requests are 400s.
func TestExploreSharded(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := smallReq()
	req.Format = "json"

	_, want := postJSON(t, ts.URL+"/v1/explore", req)

	var parts []*harness.ExploreResult
	for shard := 0; shard < 3; shard++ {
		sreq := req
		sreq.Shard, sreq.Shards = shard, 3
		resp, body := postJSON(t, ts.URL+"/v1/explore", sreq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: %d: %s", shard, resp.StatusCode, body)
		}
		part, err := harness.ReadExploreJSON(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("shard %d decode: %v", shard, err)
		}
		if part.Complete() {
			t.Fatalf("shard %d of 3 claims completeness", shard)
		}
		parts = append(parts, part)
	}
	merged, err := harness.MergeExplore(parts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteExploreJSON(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("merged server shards differ from unsharded response")
	}

	bad := req
	bad.Shard, bad.Shards = 2, 2
	if resp, _ := postJSON(t, ts.URL+"/v1/explore", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard accepted: %d", resp.StatusCode)
	}
	bad = req
	bad.Shard, bad.Shards = 0, 2
	bad.Format = "table"
	if resp, _ := postJSON(t, ts.URL+"/v1/explore", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial shard in table format accepted: %d", resp.StatusCode)
	}
}

// TestEndpointCounters pins the per-endpoint stats surfaced for load runs:
// cumulative requests, error responses, and the in-flight gauges returning
// to zero once requests drain.
func TestEndpointCounters(t *testing.T) {
	harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 1})

	// Two good sweeps, one malformed (counts as a request AND an error).
	for i := 0; i < 2; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/explore", smallReq()); resp.StatusCode != http.StatusOK {
			t.Fatalf("explore %d: HTTP %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed explore: HTTP %d, want 400", resp.StatusCode)
	}

	_, body := getBody(t, ts.URL+"/v1/cachestats")
	var stats struct {
		InFlight   int64 `json:"in_flight"`
		QueueDepth int64 `json:"queue_depth"`
		Endpoints  []struct {
			Pattern  string `json:"pattern"`
			Requests int64  `json:"requests"`
			Errors   int64  `json:"errors"`
			InFlight int64  `json:"in_flight"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("parse cachestats: %v\n%s", err, body)
	}
	byPattern := map[string]int{}
	for i, ep := range stats.Endpoints {
		byPattern[ep.Pattern] = i
	}
	idx, ok := byPattern["POST /v1/explore"]
	if !ok {
		t.Fatalf("no endpoint entry for POST /v1/explore in %s", body)
	}
	ep := stats.Endpoints[idx]
	if ep.Requests != 3 || ep.Errors != 1 {
		t.Errorf("POST /v1/explore requests=%d errors=%d, want 3/1", ep.Requests, ep.Errors)
	}
	if ep.InFlight != 0 {
		t.Errorf("POST /v1/explore in_flight=%d after requests drained, want 0", ep.InFlight)
	}
	// The cachestats request itself is the only one in flight while it is
	// being served.
	idx, ok = byPattern["GET /v1/cachestats"]
	if !ok {
		t.Fatalf("no endpoint entry for GET /v1/cachestats in %s", body)
	}
	if ep := stats.Endpoints[idx]; ep.Requests != 1 || ep.InFlight != 1 {
		t.Errorf("GET /v1/cachestats requests=%d in_flight=%d, want 1/1", ep.Requests, ep.InFlight)
	}
	if stats.InFlight != 1 {
		t.Errorf("process-wide in_flight=%d while serving cachestats, want 1", stats.InFlight)
	}
}
