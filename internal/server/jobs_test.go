package server

import (
	"context"
	"testing"
	"time"
)

// addFinished registers a job and immediately drives it to the given
// terminal state (table-level tests don't need a real sweep behind it).
func addFinished(t *jobTable, state JobState) *job {
	j := t.add("json", 4, func() {})
	j.setRunning(1)
	j.finish(state, []byte("result"), "application/json", "")
	return j
}

// TestJobRetentionTTL drives the TTL policy with an injected clock: a
// finished job outliving the TTL is retired, while queued/running jobs are
// immortal regardless of age.
func TestJobRetentionTTL(t *testing.T) {
	tbl := newJobTable(time.Minute, 0)
	done := addFinished(tbl, JobDone)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	pending := tbl.add("json", 4, cancel) // stays queued forever

	tbl.sweep()
	if tbl.get(done.id) == nil {
		t.Fatalf("job retired before its TTL elapsed")
	}

	tbl.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	tbl.sweep()
	if tbl.get(done.id) != nil {
		t.Errorf("job %s still resident after TTL", done.id)
	}
	if !tbl.wasEvicted(done.id) {
		t.Errorf("wasEvicted(%s) = false for a retired job", done.id)
	}
	if tbl.get(pending.id) == nil {
		t.Errorf("queued job %s was retired; retention must only touch terminal jobs", pending.id)
	}

	// Ids never issued are not "evicted", whatever their shape — including
	// non-canonical spellings that parse to a retired job's number.
	for _, id := range []string{"job-999", "job-0", "job-x", "nonsense", "", "job-01", "job-+1"} {
		if tbl.wasEvicted(id) {
			t.Errorf("wasEvicted(%q) = true for an id never issued", id)
		}
	}
}

// TestJobRetentionMaxKeep pins the count cap: oldest terminal jobs retire
// first, non-terminal jobs don't count against the cap, and the evicted
// counter surfaces how many are gone.
func TestJobRetentionMaxKeep(t *testing.T) {
	tbl := newJobTable(0, 2)
	var jobs []*job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, addFinished(tbl, JobDone))
	}
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	running := tbl.add("json", 4, cancel)
	running.setRunning(1)

	statuses, evicted := tbl.list()
	if evicted != 2 {
		t.Errorf("evicted = %d, want 2", evicted)
	}
	// Survivors: the two newest terminal jobs plus the running one.
	want := map[string]bool{jobs[2].id: true, jobs[3].id: true, running.id: true}
	if len(statuses) != len(want) {
		t.Fatalf("%d jobs retained, want %d", len(statuses), len(want))
	}
	for _, st := range statuses {
		if !want[st.ID] {
			t.Errorf("unexpected survivor %s", st.ID)
		}
	}
	for _, old := range jobs[:2] {
		if !tbl.wasEvicted(old.id) {
			t.Errorf("wasEvicted(%s) = false for a capped-out job", old.id)
		}
	}
}

// TestJobRetentionDisabledKeepsEverything guards the default: with no TTL
// and no cap, the table never retires anything (the pre-retention
// behaviour one-shot scripts rely on).
func TestJobRetentionDisabledKeepsEverything(t *testing.T) {
	tbl := newJobTable(0, 0)
	for i := 0; i < 10; i++ {
		addFinished(tbl, JobDone)
	}
	tbl.now = func() time.Time { return time.Now().Add(24 * time.Hour) }
	tbl.sweep()
	if statuses, evicted := tbl.list(); len(statuses) != 10 || evicted != 0 {
		t.Errorf("retention-free table retired jobs: %d retained, %d evicted", len(statuses), evicted)
	}
}
