// Package server implements l0served: a long-lived HTTP service that runs
// design-space sweeps, energy sweeps and single-configuration experiments on
// the parallel experiment engine with the schedule and simulation-result
// caches warm across requests. One process serves many sweeps; every
// compilation and every benchmark simulation any request performs is
// memoized for all later requests (a repeat sweep is O(render): zero
// compiles, zero simulations), and both caches can be snapshotted to disk
// and reloaded so even a fresh process starts warm. Long-lived processes
// stay bounded: the caches take LRU entry/byte caps (harness.SetCacheLimits,
// the l0served -schedcap/-resultcap/-schedbytes/-resultbytes flags) and the
// job table takes a retention policy (Config.JobTTL/MaxRetainedJobs) that
// retires finished async results — retired job ids answer 410 Gone, distinct
// from 404 never-existed.
//
// Endpoints:
//
//	GET  /healthz              readiness: accepting/draining, queue depth, running, free worker slots
//	POST /v1/explore           ExploreRequest → rendered sweep (sync) or job (async)
//	POST /v1/kernels           raw .loop body → registered kernel (content hash + canonical source)
//	GET  /v1/kernels           resident registered kernels (id + name)
//	GET  /v1/kernels/{id}      one registered kernel, canonical source included
//	POST /v1/run               RunRequest → one benchmark × architecture × config
//	POST /v1/energy            EnergyRequest → suite energy comparison
//	GET  /v1/jobs              retained jobs, submission order, + evicted count
//	GET  /v1/jobs/{id}         one job's status (410 once retired by retention)
//	GET  /v1/jobs/{id}/result  the rendered result of a finished job
//	POST /v1/jobs/{id}/cancel  cancel a queued/running job
//	GET  /v1/cachestats        cache entries/bytes/evictions + hit/miss/bypass counters
//	                           + per-endpoint request/error counters and in-flight gauges
//	POST /v1/cache/save        snapshot both caches to the configured path
//
// Determinism: the engine aggregates by job index, so a sweep served here is
// byte-identical to the same spec run through a local l0explore — whatever
// the worker budget, the number of concurrent requests, or the warmth of the
// cache. Concurrency control is two-level: a bounded admission queue caps
// waiting requests, and a worker-slot semaphore shares the machine between
// the requests that run — every running sweep holds at least one slot, so a
// wide request can never starve a narrow one.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config tunes one Server. The zero value is usable: every limit has a
// default chosen for a small shared machine.
type Config struct {
	// WorkerBudget is the total worker-slot pool shared by all concurrent
	// requests; <= 0 selects runtime.NumCPU().
	WorkerBudget int
	// MaxConcurrent caps requests executing at once; <= 0 defaults to 4.
	// Each running request holds at least one worker slot, so the
	// effective concurrency is min(MaxConcurrent, WorkerBudget).
	MaxConcurrent int
	// MaxQueued caps requests waiting for a running slot (sync and async
	// alike; a request stops counting once it starts executing); excess
	// submissions are rejected with 503. <= 0 defaults to 64.
	MaxQueued int
	// MaxGridCells rejects sweeps whose grid exceeds this many cells with
	// 413; <= 0 defaults to 250000.
	MaxGridCells int
	// CachePath, when set, is where POST /v1/cache/save snapshots the
	// schedule cache (and where LoadCache reads it at startup).
	CachePath string
	// JobTTL retires finished async results this long after completion
	// (410 Gone afterwards); 0 keeps them for the process lifetime.
	// Running and queued jobs are never retired.
	JobTTL time.Duration
	// MaxRetainedJobs caps how many finished jobs are retained, oldest
	// retired first; 0 = unlimited.
	MaxRetainedJobs int
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.NumCPU() //lint:allow wallclock worker budget; sweep output is index-deterministic
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 250000
	}
	return c
}

// Server is the serving state: job table, admission queue, worker-slot pool,
// and the cache bookkeeping surfaced by /v1/cachestats.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	jobs *jobTable

	// running caps concurrently executing requests; slots is the shared
	// worker-slot pool.
	running chan struct{}
	slots   chan struct{}
	// queued counts admitted-but-not-finished-admission requests against
	// MaxQueued.
	queued atomic.Int64
	// routes holds the per-endpoint request/error/in-flight counters in
	// registration order; inFlight is the process-wide gauge (see stats.go).
	routes   []*routeStat
	inFlight atomic.Int64

	start time.Time
	// draining is set before graceful shutdown: /healthz reports it so
	// load balancers and the fleet prober stop assigning work, and new
	// submissions are refused with 503 (in-flight requests finish).
	draining atomic.Bool
	// loaded is what LoadCache imported at startup; saves counts
	// successful /v1/cache/save snapshots.
	loaded harness.ImportStats
	saves  atomic.Int64
	// stopJanitor ends the retention janitor (nil when no TTL is set).
	stopJanitor chan struct{}
	closeOnce   sync.Once
}

// New builds a Server. Call LoadCache afterwards to start warm, and Close
// when discarding it (stops the retention janitor).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		jobs:    newJobTable(cfg.JobTTL, cfg.MaxRetainedJobs),
		running: make(chan struct{}, cfg.MaxConcurrent),
		slots:   make(chan struct{}, cfg.WorkerBudget),
		start:   time.Now(), //lint:allow wallclock uptime base for /healthz and /v1/cachestats; never in sweep bytes
	}
	for i := 0; i < cfg.WorkerBudget; i++ {
		s.slots <- struct{}{}
	}
	if cfg.JobTTL > 0 {
		// The accessors sweep inline, but a TTL must also hold on an idle
		// server (a week of retained sweeps with no observer is exactly
		// the leak retention exists to stop), so a janitor ticks at a
		// fraction of the TTL.
		interval := cfg.JobTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		s.stopJanitor = make(chan struct{})
		go func() {
			//lint:allow wallclock job-TTL janitor tick; retention timing, never sweep bytes
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.jobs.sweep()
				case <-s.stopJanitor:
					return
				}
			}
		}()
	}
	s.mux = http.NewServeMux()
	for _, route := range []struct {
		pattern string
		handler http.HandlerFunc
	}{
		{"GET /healthz", s.handleHealthz},
		{"POST /v1/explore", s.handleExplore},
		{"POST /v1/kernels", s.handleKernelRegister},
		{"GET /v1/kernels", s.handleKernelList},
		{"GET /v1/kernels/{id}", s.handleKernelGet},
		{"POST /v1/run", s.handleRun},
		{"POST /v1/energy", s.handleEnergy},
		{"GET /v1/jobs", s.handleJobs},
		{"GET /v1/jobs/{id}", s.handleJobStatus},
		{"GET /v1/jobs/{id}/result", s.handleJobResult},
		{"POST /v1/jobs/{id}/cancel", s.handleJobCancel},
		{"GET /v1/cachestats", s.handleCacheStats},
		{"POST /v1/cache/save", s.handleCacheSave},
	} {
		s.mux.HandleFunc(route.pattern, s.instrument(route.pattern, route.handler))
	}
	return s
}

// Handler returns the HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the retention janitor. Safe to call more than once; serving
// may continue (retention then happens only on API access).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopJanitor != nil {
			close(s.stopJanitor)
		}
	})
}

// LoadCache imports a schedule-cache snapshot from the configured CachePath.
// A missing file is not an error (first start); anything else is.
func (s *Server) LoadCache() (harness.ImportStats, error) {
	if s.cfg.CachePath == "" {
		return harness.ImportStats{}, nil
	}
	st, err := harness.LoadCacheFile(s.cfg.CachePath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return harness.ImportStats{}, nil
		}
		return harness.ImportStats{}, err
	}
	s.loaded = st
	return st, nil
}

// SaveCache snapshots the schedule cache to the configured CachePath.
func (s *Server) SaveCache() error {
	if s.cfg.CachePath == "" {
		return fmt.Errorf("server: no cache path configured")
	}
	if err := harness.SaveCacheFile(s.cfg.CachePath); err != nil {
		return err
	}
	s.saves.Add(1)
	return nil
}

// ---- request/response types ----

// ExploreRequest is the wire form of one sweep submission: the ExploreSpec
// axes plus scheduler switches, engine and output controls. Unknown fields
// are rejected.
type ExploreRequest struct {
	Benches []string `json:"benches,omitempty"`
	// Kernels selects user kernels: content hashes of kernels already
	// registered via POST /v1/kernels, or inline looplang sources
	// (registered on the spot). They join Benches in the grid.
	Kernels       []string `json:"kernels,omitempty"`
	Clusters      []int    `json:"clusters,omitempty"`
	Entries       []int    `json:"entries,omitempty"`
	Subblocks     []int    `json:"subblocks,omitempty"`
	L1Latencies   []int    `json:"l1_latencies,omitempty"`
	PrefetchDists []int    `json:"prefetch_dists,omitempty"`
	RegBudgets    []int    `json:"reg_budgets,omitempty"`
	// Scheds sweeps the scheduler backend ("sms", "exact") as a grid axis;
	// unknown names answer 400 with the valid list. ExactBudget caps the
	// exact backend's branch-and-bound search per kernel (nodes; 0 = the
	// solver default) — an exhausted budget keeps the heuristic schedule
	// and marks its certificate non-optimal rather than failing the sweep.
	Scheds      []string `json:"scheds,omitempty"`
	ExactBudget int64    `json:"exact_budget,omitempty"`
	// Adaptive/MarkAll are the scheduler ablation switches of l0explore.
	Adaptive bool `json:"adaptive,omitempty"`
	MarkAll  bool `json:"markall,omitempty"`
	// Workers requests a worker budget; the server clamps it to its pool
	// and to what concurrent requests leave free (min 1).
	Workers int `json:"workers,omitempty"`
	// Format selects the rendered output: json (default), csv or table.
	Format string `json:"format,omitempty"`
	// Async submits the sweep as a job and returns 202 + its status
	// instead of blocking for the result.
	Async bool `json:"async,omitempty"`
	// Shard/Shards request one contiguous slice of the grid (the
	// l0explore `-shard i/M` identity; 0/0 or 0/1 means the whole grid).
	// A partial shard renders as mergeable JSON only — it is the fleet
	// coordinator's wire format, and any exact partition of the grid
	// merges back byte-identical to an unsharded run.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// Spec converts the request to the engine's sweep specification.
func (r *ExploreRequest) Spec() harness.ExploreSpec {
	return harness.ExploreSpec{
		Benches: r.Benches, Kernels: r.Kernels,
		Clusters: r.Clusters, Entries: r.Entries,
		Subblocks: r.Subblocks, L1Latencies: r.L1Latencies,
		PrefetchDists: r.PrefetchDists, RegBudgets: r.RegBudgets,
		Scheds: r.Scheds,
		Sched: sched.Options{
			AdaptivePrefetchDistance: r.Adaptive,
			MarkAllCandidates:        r.MarkAll,
			ExactBudget:              r.ExactBudget,
		},
	}
}

// RunRequest is one single-configuration experiment: one benchmark on one
// architecture and machine configuration.
type RunRequest struct {
	Bench string `json:"bench"`
	// Arch is base, l0 (default), multivliw, interleaved1 or interleaved2.
	Arch      string `json:"arch,omitempty"`
	Clusters  int    `json:"clusters,omitempty"`
	Entries   int    `json:"entries,omitempty"`
	Subblock  int    `json:"subblock,omitempty"`
	L1Latency int    `json:"l1_latency,omitempty"`
	Adaptive  bool   `json:"adaptive,omitempty"`
	MarkAll   bool   `json:"markall,omitempty"`
	// Sched selects the scheduler backend ("sms" default, "exact");
	// ExactBudget caps the exact search in branch nodes (0 = default).
	Sched       string `json:"sched,omitempty"`
	ExactBudget int64  `json:"exact_budget,omitempty"`
}

// RunResponse carries the per-kernel and aggregate outcome plus the relative
// memory-system energy (when the architecture models the L0/L1 system).
type RunResponse struct {
	Bench     string          `json:"bench"`
	Arch      string          `json:"arch"`
	Clusters  int             `json:"clusters"`
	Entries   int             `json:"entries"`
	L1Latency int             `json:"l1_latency"`
	Compute   int64           `json:"compute"`
	Stall     int64           `json:"stall"`
	Total     int64           `json:"total"`
	AvgUnroll float64         `json:"avg_unroll"`
	Energy    float64         `json:"energy,omitempty"`
	Kernels   []KernelSummary `json:"kernels"`
}

// KernelSummary is the wire form of one kernel's result.
type KernelSummary struct {
	Kernel  string `json:"kernel"`
	Factor  int    `json:"factor"`
	II      int    `json:"ii"`
	SC      int    `json:"sc"`
	Compute int64  `json:"compute"`
	Stall   int64  `json:"stall"`
	Total   int64  `json:"total"`
}

// EnergyRequest sweeps the suite's relative memory-system energy at one L0
// entry count.
type EnergyRequest struct {
	Entries int    `json:"entries,omitempty"` // default 8, the paper's headline size
	Workers int    `json:"workers,omitempty"`
	Format  string `json:"format,omitempty"` // json (default) or table
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

// SetDraining flips the server into (or out of) the draining state: new
// work submissions answer 503 and /healthz reports accepting=false, while
// requests already admitted run to completion. l0served sets it on SIGTERM
// before http.Server.Shutdown so a fleet prober sees "alive but not ready"
// instead of a connection error during the grace window.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// accepting rejects new work with 503 while draining. Liveness, status and
// job-inspection endpoints stay available either way.
func (s *Server) accepting(w http.ResponseWriter) bool {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining; not accepting new work")
		return false
	}
	return true
}

// handleHealthz is the readiness signal, not just a liveness ping: it
// reports whether the process is accepting work and how loaded it is
// (admitted-but-waiting requests, executing requests, free worker slots),
// so a prober can distinguish "alive" from "able to take work" and an
// operator can see queue pressure without a metrics stack.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	accepting := !s.draining.Load()
	if !accepting {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"accepting": accepting,
		// queued releases its admission slot when it starts executing
		// (see admission), so this is the waiting count, excluding the
		// running ones.
		"queue_depth":       s.queued.Load(),
		"running":           len(s.running),
		"worker_slots_free": len(s.slots),
		"worker_budget":     s.cfg.WorkerBudget,
		"max_concurrent":    s.cfg.MaxConcurrent,
		"max_queued":        s.cfg.MaxQueued,
		//lint:allow wallclock operator uptime metric; not part of any sweep artifact
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	st := harness.CacheStatsNow()
	writeJSON(w, http.StatusOK, map[string]any{
		"schedule_entries":   st.ScheduleEntries,
		"unroll_entries":     st.UnrollEntries,
		"result_entries":     st.ResultEntries,
		"kernel_entries":     st.KernelEntries,
		"schedule_bytes":     st.ScheduleBytes,
		"result_bytes":       st.ResultBytes,
		"schedule_evictions": st.ScheduleEvictions,
		"result_evictions":   st.ResultEvictions,
		"hits":               st.Hits,
		"misses":             st.Misses,
		"bypassed":           st.Bypassed,
		"disabled":           st.Disabled,
		"compiles":           st.Compiles,
		"sim_hits":           st.SimHits,
		"sim_misses":         st.SimMisses,
		"sim_bypassed":       st.SimBypassed,
		"sim_disabled":       st.SimDisabled,
		"simulations":        st.Simulations,
		"exact_searches":     st.ExactSearches,
		"exact_nodes":        st.ExactNodes,
		"loaded":             s.loaded,
		"saves":              s.saves.Load(),
		"cache_path":         s.cfg.CachePath,
		// Per-endpoint request/error counters plus the in-flight gauges
		// (stats.go): a load run snapshots these before and after its
		// measure phase so client-side tail latency can be attributed to
		// admission queueing vs compute.
		"in_flight":   s.inFlight.Load(),
		"queue_depth": s.queued.Load(),
		"endpoints":   s.routeStats(),
		//lint:allow wallclock operator uptime metric; not part of any sweep artifact
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleCacheSave(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.CachePath == "" {
		httpError(w, http.StatusConflict, "no cache path configured (start l0served with -cache)")
		return
	}
	if err := s.SaveCache(); err != nil {
		httpError(w, http.StatusInternalServerError, "save cache: %v", err)
		return
	}
	st := harness.CacheStatsNow()
	writeJSON(w, http.StatusOK, map[string]any{
		"saved":            s.cfg.CachePath,
		"schedule_entries": st.ScheduleEntries,
		"unroll_entries":   st.UnrollEntries,
	})
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if !s.accepting(w) {
		return
	}
	format, err := checkFormat(req.Format)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	if req.Shards < 1 || req.Shard < 0 || req.Shard >= req.Shards {
		httpError(w, http.StatusBadRequest, "invalid shard %d/%d (want 0 <= i < M)", req.Shard, req.Shards)
		return
	}
	if req.Shards > 1 && format != "json" {
		httpError(w, http.StatusBadRequest,
			"shard %d/%d is partial; only the mergeable json format applies", req.Shard, req.Shards)
		return
	}
	spec := req.Spec()
	// The cheap axis-product bound runs first: an absurd request must be
	// rejected before GridSize materializes the cell slice, or the 413
	// could never fire (the allocation itself would take the process down).
	bound, err := spec.GridBound()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if bound > s.cfg.MaxGridCells {
		httpError(w, http.StatusRequestEntityTooLarge,
			"grid has up to %d cells, server caps sweeps at %d (split the spec or raise -maxgrid)",
			bound, s.cfg.MaxGridCells)
		return
	}
	gridSize, err := spec.GridSize()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	adm := s.admit()
	if adm == nil {
		httpError(w, http.StatusServiceUnavailable,
			"job queue full (%d waiting); retry later", s.cfg.MaxQueued)
		return
	}

	if req.Async {
		ctx, cancel := context.WithCancel(context.Background())
		j := s.jobs.add(format, gridSize, cancel)
		go func() {
			defer adm.release()
			body, ctype, err := s.executeExplore(ctx, adm, j, &req, spec)
			switch {
			case err == nil:
				j.finish(JobDone, body, ctype, "")
			case errors.Is(err, context.Canceled):
				j.finish(JobCanceled, nil, "", "canceled")
			default:
				j.finish(JobFailed, nil, "", err.Error())
			}
		}()
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}

	defer adm.release()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	j := s.jobs.add(format, gridSize, cancel)
	res, _, err := s.runExplore(ctx, adm, j, &req, spec)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.Canceled):
			status = 499 // client closed request (nginx convention)
			j.finish(JobCanceled, nil, "", "canceled")
		case harness.IsSpecError(err):
			// The caller's spec was wrong (unknown benchmark, unregistered
			// kernel): their mistake, not a server failure.
			status = http.StatusBadRequest
			j.finish(JobFailed, nil, "", err.Error())
		default:
			j.finish(JobFailed, nil, "", err.Error())
		}
		httpError(w, status, "%v", err)
		return
	}
	// Sync responses stream: headers go out as soon as the sweep is done,
	// CSV rows are flushed in chunks as they render.
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		var flush func()
		if f, ok := w.(http.Flusher); ok {
			flush = f.Flush
		}
		if err := harness.WriteExploreCSVStream(w, res, 256, flush); err != nil {
			j.finish(JobFailed, nil, "", err.Error())
			return
		}
		j.finish(JobDone, nil, "text/csv; charset=utf-8", "")
	default:
		body, ctype, err := renderExplore(res, format)
		if err != nil {
			j.finish(JobFailed, nil, "", err.Error())
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		// Sync jobs stream to the submitting request; the job table keeps
		// only their status (see handleJobResult's Gone case).
		j.finish(JobDone, nil, ctype, "")
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	}
}

// executeExplore runs the sweep and renders it to bytes (async jobs).
func (s *Server) executeExplore(ctx context.Context, adm *admission, j *job, req *ExploreRequest, spec harness.ExploreSpec) ([]byte, string, error) {
	res, _, err := s.runExplore(ctx, adm, j, req, spec)
	if err != nil {
		return nil, "", err
	}
	return renderExplore(res, j.format)
}

// runExplore acquires capacity and executes the sweep on the engine.
func (s *Server) runExplore(ctx context.Context, adm *admission, j *job, req *ExploreRequest, spec harness.ExploreSpec) (*harness.ExploreResult, int, error) {
	workers, release, err := s.acquire(ctx, req.Workers)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	// Running now: the admission slot goes back to the waiting queue.
	adm.release()
	j.setRunning(workers)
	// Exact-backend searches report node counts and incumbent II through the
	// job's progress sink, so GET /v1/jobs/{id} shows a long search moving.
	spec.Sched.ExactProgress = j.progress
	rc := harness.RunConfig{Workers: workers, Ctx: ctx}
	res, err := harness.ExploreCfg(rc, spec, req.Shard, req.Shards)
	if err != nil {
		return nil, 0, err
	}
	return res, workers, nil
}

func renderExplore(res *harness.ExploreResult, format string) ([]byte, string, error) {
	var b strings.Builder
	switch format {
	case "json":
		if err := harness.WriteExploreJSON(&b, res); err != nil {
			return nil, "", err
		}
		return []byte(b.String()), "application/json", nil
	case "csv":
		if err := harness.WriteExploreCSV(&b, res); err != nil {
			return nil, "", err
		}
		return []byte(b.String()), "text/csv; charset=utf-8", nil
	case "table":
		if err := harness.RenderExplore(&b, res); err != nil {
			return nil, "", err
		}
		return []byte(b.String()), "text/plain; charset=utf-8", nil
	}
	return nil, "", fmt.Errorf("unknown format %q", format)
}

// handleKernelRegister accepts a raw .loop body (not JSON — the source IS
// the payload) and registers it under its content hash. Registration is
// idempotent: resubmitting any spelling of the same loop answers with the
// same identity.
func (s *Server) handleKernelRegister(w http.ResponseWriter, r *http.Request) {
	if !s.accepting(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read kernel source: %v", err)
		return
	}
	if len(body) > 1<<20 {
		httpError(w, http.StatusRequestEntityTooLarge, "kernel source exceeds 1 MiB")
		return
	}
	k, err := workload.RegisterKernelSource(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "register kernel: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, k)
}

func (s *Server) handleKernelGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	k, ok := workload.KernelByID(id)
	if !ok {
		httpError(w, http.StatusNotFound,
			"no registered kernel %q (POST the .loop source to /v1/kernels; a bounded registry may also have evicted it)", id)
		return
	}
	writeJSON(w, http.StatusOK, k)
}

// handleKernelList reports the resident kernels without their sources (a
// registry at cap could hold megabytes; GET /v1/kernels/{id} has the body).
func (s *Server) handleKernelList(w http.ResponseWriter, _ *http.Request) {
	kernels := workload.RegisteredKernels()
	type row struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	rows := make([]row, 0, len(kernels))
	for _, k := range kernels {
		rows = append(rows, row{ID: k.ID, Name: k.Name})
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "kernels": rows})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if !s.accepting(w) {
		return
	}
	b := workload.ByName(req.Bench)
	if b == nil {
		httpError(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}
	a, err := parseArch(req.Arch)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := arch.MICRO36Config()
	if req.Clusters > 0 {
		cfg = cfg.WithClusters(req.Clusters)
	}
	if req.Entries > 0 {
		cfg = cfg.WithL0Entries(req.Entries)
	}
	if req.Subblock > 0 {
		cfg.L0SubblockBytes = req.Subblock
	}
	if req.L1Latency > 0 {
		cfg.L1Latency = req.L1Latency
	}
	if err := cfg.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	adm := s.admit()
	if adm == nil {
		httpError(w, http.StatusServiceUnavailable, "job queue full; retry later")
		return
	}
	defer adm.release()
	_, release, err := s.acquire(r.Context(), 1)
	if err != nil {
		httpError(w, 499, "%v", err)
		return
	}
	defer release()
	adm.release()

	opts := harness.Options{Cfg: cfg, Sched: sched.Options{
		AdaptivePrefetchDistance: req.Adaptive,
		MarkAllCandidates:        req.MarkAll,
		Backend:                  req.Sched,
		ExactBudget:              req.ExactBudget,
		Ctx:                      r.Context(),
	}}
	res, err := harness.RunBenchmarkCached(b, a, opts)
	if err != nil {
		status := http.StatusInternalServerError
		if harness.IsSpecError(err) {
			status = http.StatusBadRequest // e.g. an unknown scheduler backend
		}
		httpError(w, status, "%v", err)
		return
	}
	resp := RunResponse{
		Bench: res.Bench, Arch: a.String(),
		Clusters: cfg.Clusters, Entries: cfg.L0Entries, L1Latency: cfg.L1Latency,
		Compute: res.Compute, Stall: res.Stall, Total: res.Total,
		AvgUnroll: res.AvgUnroll,
	}
	if res.L0 != nil {
		resp.Energy = energy.FromStats(res.L0, energy.DefaultParams())
	}
	for _, k := range res.Kernels {
		resp.Kernels = append(resp.Kernels, KernelSummary{
			Kernel: k.Kernel, Factor: k.Factor, II: k.II, SC: k.SC,
			Compute: k.Compute, Stall: k.Stall, Total: k.Total,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEnergy(w http.ResponseWriter, r *http.Request) {
	var req EnergyRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if !s.accepting(w) {
		return
	}
	if req.Entries <= 0 {
		req.Entries = 8
	}
	if req.Format == "" {
		req.Format = "json"
	}
	if req.Format != "json" && req.Format != "table" {
		httpError(w, http.StatusBadRequest, "unknown format %q (json, table)", req.Format)
		return
	}
	adm := s.admit()
	if adm == nil {
		httpError(w, http.StatusServiceUnavailable, "job queue full; retry later")
		return
	}
	defer adm.release()
	workers, release, err := s.acquire(r.Context(), req.Workers)
	if err != nil {
		httpError(w, 499, "%v", err)
		return
	}
	defer release()
	adm.release()
	rows, err := harness.EnergySweepCfg(harness.RunConfig{Workers: workers, Ctx: r.Context()}, req.Entries)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if req.Format == "table" {
		var b strings.Builder
		_ = harness.RenderEnergy(&b, rows, req.Entries) // a strings.Builder never fails
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, b.String())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": req.Entries, "rows": rows})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs, evicted := s.jobs.list()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "evicted": evicted})
}

// jobOr404 resolves a job id, distinguishing three cases the satellite fix
// demands: a live job, a job retired by retention (410 Gone — the client
// should not retry), and an id that never existed (404).
func (s *Server) jobOr404(w http.ResponseWriter, id string) *job {
	j := s.jobs.get(id)
	if j != nil {
		return j
	}
	if s.jobs.wasEvicted(id) {
		httpError(w, http.StatusGone,
			"job %q is gone: its result was retired by the retention policy (-jobttl/-jobkeep)", id)
		return nil
	}
	httpError(w, http.StatusNotFound, "no such job %q", id)
	return nil
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r.PathValue("id"))
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r.PathValue("id"))
	if j == nil {
		return
	}
	j.mu.Lock()
	state, body, ctype := j.state, j.result, j.contentType
	j.mu.Unlock()
	switch state {
	case JobDone:
		if body == nil {
			httpError(w, http.StatusGone, "job %s streamed its result to the submitting request", j.id)
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	case JobFailed, JobCanceled:
		httpError(w, http.StatusConflict, "job %s is %s", j.id, state)
	default:
		httpError(w, http.StatusConflict, "job %s is still %s", j.id, state)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r.PathValue("id"))
	if j == nil {
		return
	}
	j.mu.Lock()
	cancel, state := j.cancel, j.state
	j.mu.Unlock()
	if state == JobQueued || state == JobRunning {
		cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// ---- capacity control ----

// admission is one reserved slot in the waiting queue, released exactly
// once — when the request starts running (it then only holds engine
// capacity) or when it dies before running.
type admission struct {
	s    *Server
	once sync.Once
}

func (a *admission) release() {
	a.once.Do(func() { a.s.queued.Add(-1) })
}

// admit reserves a waiting-queue slot; nil means the queue is full.
func (s *Server) admit() *admission {
	if s.queued.Add(1) > int64(s.cfg.MaxQueued) {
		s.queued.Add(-1)
		return nil
	}
	return &admission{s: s}
}

// acquire blocks until a running slot and at least one worker slot are free,
// then grabs up to `want` worker slots without waiting for more (greedy but
// fair: a running request always keeps >= 1 slot, so MaxConcurrent requests
// always make progress, and an idle machine gives one request the full
// budget). want <= 0 asks for the whole budget.
func (s *Server) acquire(ctx context.Context, want int) (int, func(), error) {
	if want <= 0 || want > s.cfg.WorkerBudget {
		want = s.cfg.WorkerBudget
	}
	select {
	case s.running <- struct{}{}:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	got := 0
	select {
	case <-s.slots:
		got = 1
	case <-ctx.Done():
		<-s.running
		return 0, nil, ctx.Err()
	}
	for got < want {
		select {
		case <-s.slots:
			got++
		default:
			want = got // pool drained: run with what we have
		}
	}
	release := func() {
		for i := 0; i < got; i++ {
			s.slots <- struct{}{}
		}
		<-s.running
	}
	return got, release, nil
}

// ---- helpers ----

func parseArch(name string) (harness.Arch, error) {
	switch name {
	case "", "l0":
		return harness.ArchL0, nil
	case "base":
		return harness.ArchBase, nil
	case "multivliw":
		return harness.ArchMultiVLIW, nil
	case "interleaved1":
		return harness.ArchInterleaved1, nil
	case "interleaved2":
		return harness.ArchInterleaved2, nil
	}
	return 0, fmt.Errorf("unknown architecture %q (base, l0, multivliw, interleaved1, interleaved2)", name)
}

func checkFormat(f string) (string, error) {
	switch f {
	case "":
		return "json", nil
	case "json", "csv", "table":
		return f, nil
	}
	return "", fmt.Errorf("unknown format %q (json, csv, table)", f)
}

// decodeRequest parses a JSON body strictly: unknown fields, trailing data
// and oversized bodies (1 MiB cap) are rejected with 400.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	// A second document in the body is a malformed request, not ignorable.
	if dec.More() {
		httpError(w, http.StatusBadRequest, "malformed request: trailing data after JSON body")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
