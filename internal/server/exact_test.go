// HTTP-facing tests for the exact scheduler backend: the sched axis must be
// byte-identical between a local sweep and the HTTP path, repeats must be
// search-free, unknown backends must answer 400 naming the valid set, and a
// cancelled exact job must not poison the schedule cache for the identical
// resubmission. All of this runs under -race -shuffle=on in CI; the exact
// solver spawns no goroutines of its own, so these passing race-clean is
// also the no-goroutine-leak check for cancelled searches.

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/sched"
)

// exactReq is smallReq with the backend axis opened up: every configuration
// swept by both the heuristic and the exact backend.
func exactReq() ExploreRequest {
	r := smallReq()
	r.Scheds = []string{"sms", "exact"}
	return r
}

// TestExploreSchedsHTTPParity: the sched axis through the HTTP API emits the
// same bytes as the local engine, and the repeat request is served from the
// certificate-carrying schedule cache — the exact search counters must not
// move a second time.
func TestExploreSchedsHTTPParity(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	want := localRender(t, exactReq(), "json")
	resp, body := postJSON(t, ts.URL+"/v1/explore?format=json", exactReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("HTTP sweep differs from local sweep (%d vs %d bytes)", len(body), len(want))
	}
	if !bytes.Contains(body, []byte(`"sched": "exact"`)) {
		t.Fatalf("sweep has no exact-backend cells")
	}

	st := harness.CacheStatsNow()
	if st.ExactSearches == 0 {
		t.Fatalf("sweep performed no exact searches")
	}
	resp, repeat := postJSON(t, ts.URL+"/v1/explore?format=json", exactReq())
	if resp.StatusCode != http.StatusOK || !bytes.Equal(repeat, want) {
		t.Fatalf("repeat sweep: status %d, bytes equal %v", resp.StatusCode, bytes.Equal(repeat, want))
	}
	if after := harness.CacheStatsNow(); after.ExactSearches != st.ExactSearches || after.ExactNodes != st.ExactNodes {
		t.Errorf("repeat sweep was not search-free: searches %d -> %d, nodes %d -> %d",
			st.ExactSearches, after.ExactSearches, st.ExactNodes, after.ExactNodes)
	}
}

// TestUnknownBackendAnswers400: a bogus backend name in either the explore
// sched axis or the single-run endpoint is a client error, and the body
// names the valid backends so the client can self-correct.
func TestUnknownBackendAnswers400(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	bad := smallReq()
	bad.Scheds = []string{"simulated-annealing"}
	resp, body := postJSON(t, ts.URL+"/v1/explore", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explore with unknown backend: status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, name := range []string{sched.BackendSMS, sched.BackendExact} {
		if !strings.Contains(string(body), name) {
			t.Errorf("explore 400 body does not name backend %q: %s", name, body)
		}
	}

	resp, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Sched: "simulated-annealing"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("run with unknown backend: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), sched.BackendExact) {
		t.Errorf("run 400 body does not name the valid backends: %s", body)
	}
}

// TestRunExactBackend: the single-run endpoint accepts the exact backend and
// agrees with the heuristic on the suite (where the heuristic is provably
// optimal — docs/gap_study.md).
func TestRunExactBackend(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 2})

	var heur, exact RunResponse
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Clusters: 4, Entries: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heuristic run: status %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &heur)
	resp, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Bench: "gsmdec", Clusters: 4, Entries: 8, Sched: "exact"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact run: status %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &exact)
	if heur.Total != exact.Total || exact.Total == 0 {
		t.Errorf("backends disagree on gsmdec: heuristic %d, exact %d cycles", heur.Total, exact.Total)
	}
	if st := harness.CacheStatsNow(); st.ExactSearches == 0 {
		t.Errorf("exact run performed no searches (backend field ignored?)")
	}
}

// TestExactJobCancelThenResubmit: cancel an exact-backend job (queued behind
// a long job holding the single running slot, so the cancellation is
// deterministic), then resubmit the identical request — it must complete,
// proving the cancelled attempt left no poisoned entry in the schedule
// cache. The done job's status must carry the exact progress fields.
func TestExactJobCancelThenResubmit(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	ts := newTestServer(t, Config{WorkerBudget: 1, MaxConcurrent: 1, MaxQueued: 8})

	long := ExploreRequest{Clusters: []int{4, 8}, Entries: []int{4, 8, 16}, Async: true}
	resp, body := postJSON(t, ts.URL+"/v1/explore", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long job: status %d: %s", resp.StatusCode, body)
	}
	var longSt JobStatus
	json.Unmarshal(body, &longSt)

	target := ExploreRequest{Benches: []string{"gsmdec"}, Clusters: []int{4}, Entries: []int{8},
		Scheds: []string{"exact"}, Async: true}
	resp, body = postJSON(t, ts.URL+"/v1/explore", target)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("exact job: status %d: %s", resp.StatusCode, body)
	}
	var exactSt JobStatus
	json.Unmarshal(body, &exactSt)

	if resp, body := postJSON(t, ts.URL+"/v1/jobs/"+exactSt.ID+"/cancel", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", resp.StatusCode, body)
	}
	if st := waitJob(t, ts.URL, exactSt.ID); st.State != JobCanceled {
		t.Fatalf("cancelled exact job finished %s (error %q)", st.State, st.Error)
	}
	postJSON(t, ts.URL+"/v1/jobs/"+longSt.ID+"/cancel", struct{}{})
	waitJob(t, ts.URL, longSt.ID)

	// Identical request, fresh job: must run to done even though the
	// previous attempt may have begun (and cancelled) the same compiles.
	target2 := target
	resp, body = postJSON(t, ts.URL+"/v1/explore", target2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: status %d: %s", resp.StatusCode, body)
	}
	var resubSt JobStatus
	json.Unmarshal(body, &resubSt)
	done := waitJob(t, ts.URL, resubSt.ID)
	if done.State != JobDone {
		t.Fatalf("resubmitted exact job finished %s (error %q) — cancelled attempt poisoned the cache?", done.State, done.Error)
	}
	resp, body = getBody(t, ts.URL+"/v1/jobs/"+resubSt.ID+"/result")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"sched": "exact"`)) {
		t.Fatalf("resubmitted job result: status %d: %s", resp.StatusCode, body)
	}

	// The status JSON of a finished exact job round-trips its progress
	// counters (they may legitimately be zero: provably-optimal kernels
	// close at the root, and warm cache hits never search).
	raw, _ := json.Marshal(done)
	for _, f := range []string{"state", "id"} {
		if !bytes.Contains(raw, []byte(`"`+f+`"`)) {
			t.Errorf("job status JSON missing %q: %s", f, raw)
		}
	}
}
