// Package core is the top-level API of the reproduction: it ties the
// clustered modulo scheduler (the paper's compiler contribution) to the
// cycle-level machine models, so a caller can build a loop, compile it for
// an architecture, execute it, and compare architectures — the workflow
// every example and experiment uses.
//
// The paper's primary contribution — flexible compiler-managed L0 buffers —
// lives in the interplay of three pieces this package composes:
//
//   - internal/sched implements §4.3: slack-driven selection of the loads
//     that use the buffers, coherence treatment of memory-dependent sets
//     (NL0 / 1C / PSR), hint assignment and prefetch insertion;
//   - internal/mem implements §3: the per-cluster L0 buffers with linear and
//     interleaved subblock mapping, automatic prefetch triggers, and the
//     write-through interaction with the unified L1;
//   - internal/vliw executes schedules in lock-step and charges stall cycles
//     whenever data arrives later than the compiler assumed.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/vliw"
)

// Program is a compiled loop bound to the machine that will execute it.
type Program struct {
	Schedule *sched.Schedule
	Config   arch.Config
	// Factor is the unroll factor step 1 chose.
	Factor int
}

// Run is the outcome of executing a Program.
type Run struct {
	Cycles   int64
	Compute  int64
	Stall    int64
	MemStats mem.Stats
}

// CyclesPerIteration returns the average cycles per original-loop iteration.
func (r *Run) CyclesPerIteration(p *Program) float64 {
	iters := p.Schedule.Loop.TripCount * int64(p.Factor)
	if iters == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(iters)
}

// Compile runs the full §4.3 pipeline (unroll choice, modulo scheduling,
// hint assignment, prefetch insertion) for the given machine. Pass a config
// with L0Entries == 0 to compile for the plain clustered baseline.
func Compile(loop *ir.Loop, cfg arch.Config, opts sched.Options) (*Program, error) {
	opts.UseL0 = cfg.HasL0()
	c, err := sched.Pipeline(loop, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Program{Schedule: c.Schedule, Config: cfg, Factor: c.Factor}, nil
}

// Execute runs the program once against a fresh memory hierarchy. Arrays
// referenced by the loop must have base addresses assigned (see
// AssignAddresses).
func Execute(p *Program) (*Run, error) {
	sys := mem.NewSystem(p.Config)
	res, err := vliw.Run(p.Schedule, sys)
	if err != nil {
		return nil, err
	}
	sys.LoopEnd()
	return &Run{
		Cycles:   res.TotalCycles,
		Compute:  res.ComputeCycles,
		Stall:    res.StallCycles,
		MemStats: sys.Stats,
	}, nil
}

// AssignAddresses gives every array in the loop a distinct base address
// starting at 64 KiB, returning the loop for chaining.
func AssignAddresses(loop *ir.Loop) *ir.Loop {
	base := int64(1 << 16)
	seen := map[*ir.Array]bool{}
	for _, in := range loop.Instrs {
		if in.Mem == nil || seen[in.Mem.Array] {
			continue
		}
		seen[in.Mem.Array] = true
		in.Mem.Array.Base = base
		base += ((in.Mem.Array.SizeBytes + 63) &^ 63) + 96
	}
	return loop
}

// Comparison holds a baseline-vs-L0 measurement for one loop.
type Comparison struct {
	Baseline *Run
	WithL0   *Run
	BaseProg *Program
	L0Prog   *Program
}

// Speedup returns baseline cycles / L0 cycles.
func (c *Comparison) Speedup() float64 {
	if c.WithL0.Cycles == 0 {
		return 0
	}
	return float64(c.Baseline.Cycles) / float64(c.WithL0.Cycles)
}

// Compare compiles and runs the loop on the baseline (no L0) and on the
// L0-buffer architecture described by cfg, using fresh copies of the loop so
// the two compilations do not interfere.
func Compare(loop *ir.Loop, cfg arch.Config, opts sched.Options) (*Comparison, error) {
	if !cfg.HasL0() {
		return nil, fmt.Errorf("core: Compare needs a config with L0 buffers (got %d entries)", cfg.L0Entries)
	}
	baseProg, err := Compile(loop.Clone(), cfg.WithL0Entries(0), opts)
	if err != nil {
		return nil, fmt.Errorf("core: baseline compile: %w", err)
	}
	l0Prog, err := Compile(loop.Clone(), cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("core: L0 compile: %w", err)
	}
	baseRun, err := Execute(baseProg)
	if err != nil {
		return nil, fmt.Errorf("core: baseline run: %w", err)
	}
	l0Run, err := Execute(l0Prog)
	if err != nil {
		return nil, fmt.Errorf("core: L0 run: %w", err)
	}
	return &Comparison{Baseline: baseRun, WithL0: l0Run, BaseProg: baseProg, L0Prog: l0Prog}, nil
}
