package core

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/sched"
)

func iirLoop() *ir.Loop {
	b := ir.NewBuilder("iir", 1024)
	y := b.Array("y", 8192, 4)
	x := b.Array("x", 8192, 4)
	p := b.Load("ld_p", y, -4, 4, 4)
	v := b.Load("ld_x", x, 0, 4, 4)
	s := b.Int("mix", p, v)
	b.Store("st", y, 0, 4, 4, s)
	return AssignAddresses(b.Build())
}

func TestCompileSetsUseL0FromConfig(t *testing.T) {
	p, err := Compile(iirLoop(), arch.MICRO36Config().WithL0Entries(0), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i := range p.Schedule.Placed {
		if p.Schedule.Placed[i].UseL0 {
			t.Errorf("baseline compile used L0")
		}
	}
}

func TestCompareRecurrenceLoop(t *testing.T) {
	c, err := Compare(iirLoop(), arch.MICRO36Config(), sched.Options{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if s := c.Speedup(); s <= 1.2 {
		t.Errorf("speedup = %.2f, want > 1.2 for a memory recurrence", s)
	}
	if c.L0Prog.Schedule.II >= c.BaseProg.Schedule.II {
		t.Errorf("L0 II %d not below baseline II %d", c.L0Prog.Schedule.II, c.BaseProg.Schedule.II)
	}
	if c.WithL0.MemStats.L0Hits == 0 {
		t.Errorf("no L0 hits recorded")
	}
}

func TestCompareRejectsNoL0Config(t *testing.T) {
	if _, err := Compare(iirLoop(), arch.MICRO36Config().WithL0Entries(0), sched.Options{}); err == nil {
		t.Errorf("Compare accepted a config without buffers")
	}
}

func TestExecuteRequiresAddresses(t *testing.T) {
	b := ir.NewBuilder("na", 16)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.Int("op", v)
	p, err := Compile(b.Build(), arch.MICRO36Config(), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := Execute(p); err == nil {
		t.Errorf("Execute accepted unassigned array bases")
	}
}

func TestCyclesPerIteration(t *testing.T) {
	p, err := Compile(iirLoop(), arch.MICRO36Config(), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	r, err := Execute(p)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	cpi := r.CyclesPerIteration(p)
	if cpi <= 0 || cpi > 100 {
		t.Errorf("cycles/iteration = %v out of range", cpi)
	}
}

func ExampleCompare() {
	b := ir.NewBuilder("iir", 1024)
	y := b.Array("y", 8192, 4)
	x := b.Array("x", 8192, 4)
	prev := b.Load("ld_p", y, -4, 4, 4)
	v := b.Load("ld_x", x, 0, 4, 4)
	s := b.Int("mix", prev, v)
	b.Store("st", y, 0, 4, 4, s)
	loop := AssignAddresses(b.Build())

	cmp, err := Compare(loop, arch.MICRO36Config(), sched.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("II reduced:", cmp.L0Prog.Schedule.II < cmp.BaseProg.Schedule.II)
	fmt.Println("faster with L0:", cmp.Speedup() > 1)
	// Output:
	// II reduced: true
	// faster with L0: true
}
