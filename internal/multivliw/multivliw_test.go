package multivliw

import (
	"testing"

	"repro/internal/arch"
)

func model(t *testing.T) *Model {
	t.Helper()
	return New(arch.MICRO36Config(), DefaultParams())
}

func TestLocalHitAfterFill(t *testing.T) {
	m := model(t)
	p := DefaultParams()
	first := m.Load(0, 4096, 4, arch.Hints{}, 100)
	if first-100 != int64(p.RemoteLatency+p.MemLatency) {
		t.Errorf("cold load latency = %d, want %d", first-100, p.RemoteLatency+p.MemLatency)
	}
	second := m.Load(0, 4096, 4, arch.Hints{}, 200)
	if second-200 != int64(p.LocalLatency) {
		t.Errorf("warm local latency = %d, want %d", second-200, p.LocalLatency)
	}
	if m.Stats.LocalHits != 1 || m.Stats.MemFetches != 1 {
		t.Errorf("stats: %+v", m.Stats)
	}
}

func TestRemoteCacheToCacheTransfer(t *testing.T) {
	m := model(t)
	p := DefaultParams()
	m.Load(0, 4096, 4, arch.Hints{}, 100) // cluster 0 now shares the block
	r := m.Load(2, 4096, 4, arch.Hints{}, 200)
	if r-200 != int64(p.RemoteLatency) {
		t.Errorf("remote hit latency = %d, want %d", r-200, p.RemoteLatency)
	}
	if m.Stats.RemoteHits != 1 {
		t.Errorf("remote hits = %d", m.Stats.RemoteHits)
	}
	// Both clusters now hold shared copies: both hit locally.
	if m.Load(0, 4096, 4, arch.Hints{}, 300)-300 != int64(p.LocalLatency) ||
		m.Load(2, 4096, 4, arch.Hints{}, 300)-300 != int64(p.LocalLatency) {
		t.Errorf("shared copies must hit locally in both clusters")
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	m := model(t)
	m.Load(0, 4096, 4, arch.Hints{}, 100)
	m.Load(1, 4096, 4, arch.Hints{}, 200) // two sharers
	m.Store(2, 4096, 4, arch.Hints{}, false, 300)
	if m.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", m.Stats.Invalidations)
	}
	p := DefaultParams()
	// The old sharers must re-fetch (remotely from the new owner).
	if m.Load(0, 4096, 4, arch.Hints{}, 400)-400 != int64(p.RemoteLatency) {
		t.Errorf("invalidated sharer must pay a remote transfer")
	}
}

func TestStoreUpgradeFromShared(t *testing.T) {
	m := model(t)
	m.Load(0, 4096, 4, arch.Hints{}, 100)
	m.Store(0, 4096, 4, arch.Hints{}, false, 200)
	if m.Stats.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", m.Stats.Upgrades)
	}
}

func TestDirtyOwnerDowngradesOnRemoteRead(t *testing.T) {
	m := model(t)
	m.Store(0, 4096, 4, arch.Hints{}, false, 100) // cluster 0 modified
	m.Load(1, 4096, 4, arch.Hints{}, 200)         // must snoop-hit, not go to memory
	if m.Stats.RemoteHits != 1 || m.Stats.MemFetches != 0 {
		t.Errorf("dirty block not supplied cache-to-cache: %+v", m.Stats)
	}
	// Owner keeps a shared copy: local hit.
	p := DefaultParams()
	if m.Load(0, 4096, 4, arch.Hints{}, 300)-300 != int64(p.LocalLatency) {
		t.Errorf("downgraded owner lost its copy")
	}
}

func TestSliceCapacityEviction(t *testing.T) {
	m := model(t)
	// One slice is 2KB = 64 blocks of 32B; stream 65 distinct blocks
	// through cluster 0 and the first must be gone.
	for i := int64(0); i < 65; i++ {
		m.Load(0, 4096+i*32, 4, arch.Hints{}, 100+i*10)
	}
	p := DefaultParams()
	r := m.Load(0, 4096, 4, arch.Hints{}, 10000)
	if r-10000 == int64(p.LocalLatency) {
		t.Errorf("evicted block still hits locally")
	}
}

func TestLoopEndAndPrefetchAreFree(t *testing.T) {
	m := model(t)
	if m.LoopEnd() != 0 {
		t.Errorf("MultiVLIW LoopEnd must cost nothing")
	}
	m.Prefetch(0, 4096, 100) // no-op, must not panic or change state
	if m.Stats.LocalHits+m.Stats.RemoteHits+m.Stats.MemFetches != 0 {
		t.Errorf("prefetch touched the hierarchy")
	}
}

func TestLocalRate(t *testing.T) {
	m := model(t)
	m.Load(0, 4096, 4, arch.Hints{}, 100)
	m.Load(0, 4096, 4, arch.Hints{}, 200)
	if lr := m.Stats.LocalRate(); lr != 0.5 {
		t.Errorf("LocalRate = %v, want 0.5", lr)
	}
}
