// Package multivliw models the MultiVLIW baseline of §5.3 (Sánchez &
// González, MICRO-33): the L1 data cache is distributed among the clusters
// as snoop-coherent slices kept consistent with an MSI protocol. Blocks
// migrate and replicate to the clusters that use them, so most accesses
// become local; the price is the coherence machinery the paper argues is too
// complex for the embedded domain.
//
// The compiler schedules loads with the local-slice latency; the simulator
// stalls the lock-step core whenever a load actually needs a remote slice or
// the next memory level.
package multivliw

import (
	"repro/internal/arch"
)

// Params are the timing assumptions for the distributed hierarchy. The
// MICRO-33 paper's exact latencies are not reproduced here; these defaults
// preserve the relevant ordering: local slice ≪ remote slice ≈ unified L1 <
// L2.
type Params struct {
	// LocalLatency is a load-use hit in the cluster's own slice.
	LocalLatency int
	// RemoteLatency is a cache-to-cache transfer from another slice.
	RemoteLatency int
	// MemLatency is the additional penalty of fetching from L2.
	MemLatency int
}

// DefaultParams returns the timing used in the Figure 7 reproduction.
func DefaultParams() Params {
	return Params{LocalLatency: 2, RemoteLatency: 6, MemLatency: 10}
}

// state of a block in one slice.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

type line struct {
	tag   int64
	state lineState
	stamp int64
}

// slice is one cluster's set-associative L1 slice with MSI states.
type slice struct {
	sets      int
	ways      int
	blockBits uint
	lines     [][]line
	clock     int64
}

func newSlice(sizeBytes, blockBytes, assoc int) *slice {
	blocks := sizeBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 {
		sets = 1
	}
	s := &slice{sets: sets, ways: assoc, blockBits: log2(blockBytes), lines: make([][]line, sets)}
	for i := range s.lines {
		s.lines[i] = make([]line, assoc)
		for w := range s.lines[i] {
			s.lines[i][w].state = invalid
		}
	}
	return s
}

func log2(v int) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

func (s *slice) setOf(addr int64) int {
	return int((addr >> s.blockBits) % int64(s.sets))
}

func (s *slice) find(addr int64) *line {
	set := s.setOf(addr)
	tag := addr >> s.blockBits
	for w := range s.lines[set] {
		ln := &s.lines[set][w]
		if ln.state != invalid && ln.tag == tag {
			return ln
		}
	}
	return nil
}

// insert allocates the block in the given state, evicting LRU.
func (s *slice) insert(addr int64, st lineState) {
	s.clock++
	set := s.setOf(addr)
	tag := addr >> s.blockBits
	victim := 0
	var oldest int64 = 1<<62 - 1
	for w := range s.lines[set] {
		ln := &s.lines[set][w]
		if ln.state == invalid {
			victim = w
			break
		}
		if ln.stamp < oldest {
			victim, oldest = w, ln.stamp
		}
	}
	s.lines[set][victim] = line{tag: tag, state: st, stamp: s.clock}
}

func (s *slice) touch(ln *line) {
	s.clock++
	ln.stamp = s.clock
}

// Model is the MultiVLIW memory system; it implements the execution engine's
// MemoryModel interface.
type Model struct {
	cfg    arch.Config
	params Params
	slices []*slice
	Stats  Stats
}

// Stats counts coherence activity.
type Stats struct {
	LocalHits     int64
	RemoteHits    int64
	MemFetches    int64
	Invalidations int64
	Upgrades      int64
	Stores        int64
}

// LocalRate returns the fraction of loads served by the local slice.
func (s *Stats) LocalRate() float64 {
	t := s.LocalHits + s.RemoteHits + s.MemFetches
	if t == 0 {
		return 1
	}
	return float64(s.LocalHits) / float64(t)
}

// New builds the distributed hierarchy: the unified L1 capacity of cfg is
// split evenly into per-cluster slices with the same block size and
// associativity.
func New(cfg arch.Config, params Params) *Model {
	m := &Model{cfg: cfg, params: params, slices: make([]*slice, cfg.Clusters)}
	per := cfg.L1SizeBytes / cfg.Clusters
	for c := range m.slices {
		m.slices[c] = newSlice(per, cfg.L1BlockBytes, cfg.L1Assoc)
	}
	return m
}

// ScheduleLatency is the load latency the compiler assumes: the local hit
// latency (data migrates to its users).
func (m *Model) ScheduleLatency() int { return m.params.LocalLatency }

func (m *Model) blockAlign(addr int64) int64 {
	return addr &^ int64(m.cfg.L1BlockBytes-1)
}

// Load implements vliw.MemoryModel. Hints are ignored: the hardware protocol
// manages the hierarchy.
func (m *Model) Load(cluster int, addr int64, width int, _ arch.Hints, t int64) int64 {
	b := m.blockAlign(addr)
	local := m.slices[cluster]
	if ln := local.find(b); ln != nil {
		local.touch(ln)
		m.Stats.LocalHits++
		return t + int64(m.params.LocalLatency)
	}
	// Snoop the other slices; a dirty owner downgrades to shared.
	for d := 1; d < m.cfg.Clusters; d++ {
		c := (cluster + d) % m.cfg.Clusters
		if ln := m.slices[c].find(b); ln != nil {
			if ln.state == modified {
				ln.state = shared // write back to L2, keep shared
			}
			local.insert(b, shared)
			m.Stats.RemoteHits++
			return t + int64(m.params.RemoteLatency)
		}
	}
	local.insert(b, shared)
	m.Stats.MemFetches++
	return t + int64(m.params.RemoteLatency) + int64(m.params.MemLatency)
}

// Store implements vliw.MemoryModel: MSI write — upgrade or
// read-for-ownership, invalidating every other copy.
func (m *Model) Store(cluster int, addr int64, width int, _ arch.Hints, _ bool, t int64) {
	m.Stats.Stores++
	b := m.blockAlign(addr)
	local := m.slices[cluster]
	for d := 1; d < m.cfg.Clusters; d++ {
		c := (cluster + d) % m.cfg.Clusters
		if ln := m.slices[c].find(b); ln != nil {
			ln.state = invalid
			m.Stats.Invalidations++
		}
	}
	if ln := local.find(b); ln != nil {
		if ln.state == shared {
			m.Stats.Upgrades++
		}
		ln.state = modified
		local.touch(ln)
		return
	}
	local.insert(b, modified)
}

// Prefetch is a no-op: the MultiVLIW baseline has no software prefetch.
func (m *Model) Prefetch(int, int64, int64) {}

// LoopEnd is free: hardware coherence needs no loop-boundary flushes.
func (m *Model) LoopEnd() int64 { return 0 }
