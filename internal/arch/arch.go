// Package arch describes the clustered VLIW machine that the scheduler
// targets and the simulator models: cluster count and functional-unit mix,
// the memory hierarchy (L0 buffers, unified L1, L2), inter-cluster
// communication buses, and the compiler hint vocabulary attached to memory
// instructions (access, mapping and prefetch hints from the paper's §3.2).
package arch

import "fmt"

// Unbounded marks an effectively infinite number of L0 buffer entries.
// Figure 5 of the paper includes an "unbounded entries" configuration.
const Unbounded = 1 << 20

// MinL0SubblockBytes is the floor for the L0 line size: a subblock must hold
// the machine's widest memory access (8 bytes), or wide loads could never be
// L0 candidates. WithClusters clamps its derived subblock size here so that
// scaling past L1BlockBytes/MinL0SubblockBytes clusters stays valid.
const MinL0SubblockBytes = 8

// AccessHint tells the hardware whether and how a memory instruction probes
// the L0 buffer of the cluster it executes on (§3.2, first hint table).
type AccessHint uint8

const (
	// NoAccess bypasses L0 entirely: the instruction goes straight to L1
	// and does not allocate data in the buffer.
	NoAccess AccessHint = iota
	// SeqAccess probes L0 first and forwards to L1 only on a miss.
	// Only loads may be SEQ, and only when the cluster's L1 bus is
	// guaranteed free on the following cycle.
	SeqAccess
	// ParAccess probes L0 and L1 in parallel; the L1 reply is discarded
	// on an L0 hit.
	ParAccess
)

func (h AccessHint) String() string {
	switch h {
	case NoAccess:
		return "NO_ACCESS"
	case SeqAccess:
		return "SEQ_ACCESS"
	case ParAccess:
		return "PAR_ACCESS"
	}
	return fmt.Sprintf("AccessHint(%d)", uint8(h))
}

// MapHint tells the hardware how an L1 block is split into subblocks when a
// load fills the L0 buffer (§3.2, second hint table).
type MapHint uint8

const (
	// LinearMap caches one subblock of consecutive bytes in the L0 buffer
	// of the cluster where the load executed.
	LinearMap MapHint = iota
	// InterleavedMap splits the whole L1 block into N subblocks at the
	// access-width granularity and spreads them over consecutive
	// clusters, starting with the cluster where the load executed.
	InterleavedMap
)

func (h MapHint) String() string {
	switch h {
	case LinearMap:
		return "LINEAR_MAP"
	case InterleavedMap:
		return "INTERLEAVED_MAP"
	}
	return fmt.Sprintf("MapHint(%d)", uint8(h))
}

// PrefetchHint triggers an automatic next/previous-subblock prefetch when the
// last/first element of a cached subblock is touched (§3.2, third hint table).
type PrefetchHint uint8

const (
	// NoPrefetch disables automatic prefetching for the instruction.
	NoPrefetch PrefetchHint = iota
	// Positive prefetches the next subblock when the last element of a
	// cached subblock is accessed.
	Positive
	// Negative prefetches the previous subblock when the first element of
	// a cached subblock is accessed.
	Negative
)

func (h PrefetchHint) String() string {
	switch h {
	case NoPrefetch:
		return "NO_PREFETCH"
	case Positive:
		return "POSITIVE"
	case Negative:
		return "NEGATIVE"
	}
	return fmt.Sprintf("PrefetchHint(%d)", uint8(h))
}

// Hints is the full hint bundle the compiler attaches to one memory
// instruction.
type Hints struct {
	Access   AccessHint
	Map      MapHint
	Prefetch PrefetchHint
	// PrefetchDistance is the number of subblocks ahead that POSITIVE /
	// NEGATIVE prefetches run. The paper uses 1 and evaluates 2 as an
	// extension for small-II loops (§5.2).
	PrefetchDistance int
	// Primary marks the primary instance of a replicated store under
	// partial store replication (PSR); non-primary instances only
	// invalidate their local L0 entry.
	Primary bool
}

func (h Hints) String() string {
	s := h.Access.String()
	if h.Access != NoAccess {
		s += "|" + h.Map.String()
		if h.Prefetch != NoPrefetch {
			s += "|" + h.Prefetch.String()
			if h.PrefetchDistance > 1 {
				s += fmt.Sprintf("(d=%d)", h.PrefetchDistance)
			}
		}
	}
	return s
}

// UnitKind identifies a functional-unit class inside a cluster.
type UnitKind uint8

const (
	// UnitInt executes integer ALU operations.
	UnitInt UnitKind = iota
	// UnitMem executes loads, stores, prefetches and buffer invalidates.
	UnitMem
	// UnitFP executes floating-point operations.
	UnitFP
	numUnitKinds
)

// NumUnitKinds is the number of distinct functional-unit classes.
const NumUnitKinds = int(numUnitKinds)

func (k UnitKind) String() string {
	switch k {
	case UnitInt:
		return "INT"
	case UnitMem:
		return "MEM"
	case UnitFP:
		return "FP"
	}
	return fmt.Sprintf("UnitKind(%d)", uint8(k))
}

// Config describes one machine configuration. The zero value is not usable;
// start from MICRO36Config and modify.
type Config struct {
	// Clusters is the number of lock-step clusters.
	Clusters int
	// UnitsPerCluster gives, for each UnitKind, how many units of that
	// kind each cluster has.
	UnitsPerCluster [NumUnitKinds]int

	// L0Entries is the number of subblock entries in each cluster's L0
	// buffer. 0 disables the buffers (the baseline architecture);
	// Unbounded models infinite capacity.
	L0Entries int
	// L0Latency is the load-use latency of an L0 hit, in cycles.
	L0Latency int
	// L0SubblockBytes is the L0 line size. The paper fixes it to
	// L1BlockBytes / Clusters.
	L0SubblockBytes int
	// L0Ports is the number of read/write ports per L0 buffer.
	L0Ports int

	// L1Latency is the total load-use latency of the unified L1 data
	// cache (request/response wire time plus access time).
	L1Latency int
	// L1SizeBytes, L1BlockBytes and L1Assoc describe the unified L1.
	L1SizeBytes  int
	L1BlockBytes int
	L1Assoc      int
	// InterleavePenalty is the extra latency paid when a block is
	// shuffled through the shift/interleave logic on an interleaved fill.
	InterleavePenalty int

	// L2Latency is the additional latency of an L1 miss. The paper's L2
	// always hits.
	L2Latency int

	// CommBuses is the number of inter-cluster register-to-register
	// communication buses; CommLatency their latency in cycles.
	CommBuses   int
	CommLatency int
}

// MICRO36Config returns the configuration of Table 2 of the paper: four
// lock-step clusters with (1 INT + 1 MEM + 1 FP) each, 1-cycle fully
// associative L0 buffers with 8-byte subblocks and 2 ports, a 6-cycle 8 KB
// 2-way 32-byte-block unified L1 (+1 cycle shift/interleave), a 10-cycle
// always-hit L2 and 4 inter-cluster buses of 2-cycle latency.
//
// L0Entries is left for the caller to set (Figure 5 sweeps 4/8/16/unbounded);
// it defaults to 8, the paper's headline configuration.
func MICRO36Config() Config {
	return Config{
		Clusters:          4,
		UnitsPerCluster:   [NumUnitKinds]int{UnitInt: 1, UnitMem: 1, UnitFP: 1},
		L0Entries:         8,
		L0Latency:         1,
		L0SubblockBytes:   8,
		L0Ports:           2,
		L1Latency:         6,
		L1SizeBytes:       8 * 1024,
		L1BlockBytes:      32,
		L1Assoc:           2,
		InterleavePenalty: 1,
		L2Latency:         10,
		CommBuses:         4,
		CommLatency:       2,
	}
}

// WithL0Entries returns a copy of c with the L0 buffer capacity replaced.
func (c Config) WithL0Entries(entries int) Config {
	c.L0Entries = entries
	return c
}

// WithClusters returns a copy of c scaled to a different cluster count,
// keeping the functional-unit mix per cluster, re-deriving the L0 subblock
// size, and scaling the inter-cluster bus count. The paper evaluates 4
// clusters but states the techniques extend to any count; this constructor
// is what the scaling experiments sweep.
//
// The paper's ideal split is one subblock per cluster (L1BlockBytes / n,
// §3), but past L1BlockBytes/MinL0SubblockBytes clusters that degenerates to
// sub-word (or zero) line sizes that cannot hold a full-width access, so the
// derived size is rounded down to a power of two and clamped to
// [MinL0SubblockBytes, L1BlockBytes]; wide machines then spread each block
// over its first SubblocksPerBlock clusters. CommBuses keeps the
// buses-per-cluster ratio of the configuration being scaled (Table 2's is
// one bus per cluster) instead of staying fixed at the 4-cluster value.
func (c Config) WithClusters(n int) Config {
	if n <= 0 {
		// No derivation possible: record the bogus count and let Validate
		// reject it with a clear error instead of dividing by zero here.
		c.Clusters = n
		return c
	}
	if c.Clusters > 0 && c.CommBuses > 0 {
		if buses := c.CommBuses * n / c.Clusters; buses >= 1 {
			c.CommBuses = buses
		} else {
			c.CommBuses = 1
		}
	}
	c.Clusters = n
	if c.L0SubblockBytes != 0 {
		// Round up: the smallest power of two covering a 1/n block share
		// keeps subblock × clusters >= block at every count (power-of-two
		// counts get the exact L1BlockBytes/n split); rounding down would
		// strand block bytes with no cluster to hold them at odd counts.
		sub := ceilPow2((c.L1BlockBytes + n - 1) / n)
		if sub < MinL0SubblockBytes {
			sub = MinL0SubblockBytes
		}
		if sub > c.L1BlockBytes {
			sub = c.L1BlockBytes
		}
		c.L0SubblockBytes = sub
	}
	return c
}

// ceilPow2 returns the smallest power of two >= x (1 for x <= 1).
func ceilPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// HasL0 reports whether the configuration includes L0 buffers at all.
func (c Config) HasL0() bool { return c.L0Entries > 0 }

// SubblocksPerBlock is the number of L0 subblocks one L1 block splits into.
func (c Config) SubblocksPerBlock() int {
	if c.L0SubblockBytes <= 0 {
		return 0
	}
	return c.L1BlockBytes / c.L0SubblockBytes
}

// Validate reports a descriptive error if the configuration is internally
// inconsistent.
func (c Config) Validate() error {
	switch {
	case c.Clusters <= 0:
		return fmt.Errorf("arch: Clusters must be positive, got %d", c.Clusters)
	case c.L0Entries < 0:
		return fmt.Errorf("arch: L0Entries must be >= 0, got %d", c.L0Entries)
	case c.L0Latency <= 0:
		return fmt.Errorf("arch: L0Latency must be positive, got %d", c.L0Latency)
	case c.L1Latency <= 0:
		return fmt.Errorf("arch: L1Latency must be positive, got %d", c.L1Latency)
	case c.L1BlockBytes <= 0 || c.L1BlockBytes&(c.L1BlockBytes-1) != 0:
		return fmt.Errorf("arch: L1BlockBytes must be a positive power of two, got %d", c.L1BlockBytes)
	case c.L1SizeBytes <= 0 || c.L1SizeBytes%c.L1BlockBytes != 0:
		return fmt.Errorf("arch: L1SizeBytes (%d) must be a positive multiple of L1BlockBytes (%d)", c.L1SizeBytes, c.L1BlockBytes)
	case c.L1Assoc <= 0:
		return fmt.Errorf("arch: L1Assoc must be positive, got %d", c.L1Assoc)
	case c.L2Latency < 0:
		return fmt.Errorf("arch: L2Latency must be >= 0, got %d", c.L2Latency)
	case c.CommBuses <= 0:
		return fmt.Errorf("arch: CommBuses must be positive, got %d", c.CommBuses)
	case c.CommLatency <= 0:
		return fmt.Errorf("arch: CommLatency must be positive, got %d", c.CommLatency)
	}
	if c.HasL0() {
		switch {
		case c.L0SubblockBytes <= 0 || c.L0SubblockBytes&(c.L0SubblockBytes-1) != 0:
			return fmt.Errorf("arch: L0SubblockBytes must be a positive power of two, got %d", c.L0SubblockBytes)
		case c.L0SubblockBytes < MinL0SubblockBytes:
			return fmt.Errorf("arch: L0SubblockBytes (%d) is below the widest access (%d bytes); such a line can never satisfy a full-width load",
				c.L0SubblockBytes, MinL0SubblockBytes)
		case c.L0SubblockBytes > c.L1BlockBytes:
			return fmt.Errorf("arch: L0SubblockBytes (%d) must not exceed L1BlockBytes (%d)",
				c.L0SubblockBytes, c.L1BlockBytes)
		case c.L0SubblockBytes*c.Clusters < c.L1BlockBytes:
			return fmt.Errorf("arch: L0SubblockBytes (%d) * Clusters (%d) must cover L1BlockBytes (%d): an interleaved block fill has nowhere to put the excess subblocks",
				c.L0SubblockBytes, c.Clusters, c.L1BlockBytes)
		case c.L0Ports <= 0:
			return fmt.Errorf("arch: L0Ports must be positive, got %d", c.L0Ports)
		}
	}
	for k := 0; k < NumUnitKinds; k++ {
		if c.UnitsPerCluster[k] < 0 {
			return fmt.Errorf("arch: UnitsPerCluster[%s] must be >= 0, got %d", UnitKind(k), c.UnitsPerCluster[k])
		}
	}
	if c.UnitsPerCluster[UnitMem] == 0 {
		return fmt.Errorf("arch: each cluster needs at least one MEM unit")
	}
	return nil
}
