package arch

import (
	"strings"
	"testing"
)

func TestMICRO36ConfigMatchesTable2(t *testing.T) {
	cfg := MICRO36Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Table 2 of the paper.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"Clusters", cfg.Clusters, 4},
		{"IntUnits", cfg.UnitsPerCluster[UnitInt], 1},
		{"MemUnits", cfg.UnitsPerCluster[UnitMem], 1},
		{"FPUnits", cfg.UnitsPerCluster[UnitFP], 1},
		{"L0Latency", cfg.L0Latency, 1},
		{"L0SubblockBytes", cfg.L0SubblockBytes, 8},
		{"L0Ports", cfg.L0Ports, 2},
		{"L1Latency", cfg.L1Latency, 6},
		{"L1SizeBytes", cfg.L1SizeBytes, 8192},
		{"L1BlockBytes", cfg.L1BlockBytes, 32},
		{"L1Assoc", cfg.L1Assoc, 2},
		{"InterleavePenalty", cfg.InterleavePenalty, 1},
		{"L2Latency", cfg.L2Latency, 10},
		{"CommBuses", cfg.CommBuses, 4},
		{"CommLatency", cfg.CommLatency, 2},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestSubblocksPerBlock(t *testing.T) {
	cfg := MICRO36Config()
	if got := cfg.SubblocksPerBlock(); got != 4 {
		t.Errorf("SubblocksPerBlock = %d, want 4 (one per cluster)", got)
	}
}

func TestWithL0Entries(t *testing.T) {
	cfg := MICRO36Config().WithL0Entries(16)
	if cfg.L0Entries != 16 {
		t.Errorf("L0Entries = %d, want 16", cfg.L0Entries)
	}
	if !cfg.HasL0() {
		t.Errorf("HasL0 = false with 16 entries")
	}
	if MICRO36Config().WithL0Entries(0).HasL0() {
		t.Errorf("HasL0 = true with 0 entries")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero clusters", func(c *Config) { c.Clusters = 0 }},
		{"negative entries", func(c *Config) { c.L0Entries = -1 }},
		{"zero L0 latency", func(c *Config) { c.L0Latency = 0 }},
		{"zero L1 latency", func(c *Config) { c.L1Latency = 0 }},
		{"non-power-of-two block", func(c *Config) { c.L1BlockBytes = 24 }},
		{"size not multiple of block", func(c *Config) { c.L1SizeBytes = 1000 }},
		{"zero assoc", func(c *Config) { c.L1Assoc = 0 }},
		{"negative L2", func(c *Config) { c.L2Latency = -1 }},
		{"zero buses", func(c *Config) { c.CommBuses = 0 }},
		{"zero comm latency", func(c *Config) { c.CommLatency = 0 }},
		{"sub-word subblock", func(c *Config) { c.L0SubblockBytes = 4 }},
		{"oversize subblock", func(c *Config) { c.L0SubblockBytes = 64 }},
		{"subblock underfill", func(c *Config) { c.Clusters = 2 }},
		{"zero ports", func(c *Config) { c.L0Ports = 0 }},
		{"no mem units", func(c *Config) { c.UnitsPerCluster[UnitMem] = 0 }},
	}
	for _, tc := range cases {
		cfg := MICRO36Config()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestHintStrings(t *testing.T) {
	if NoAccess.String() != "NO_ACCESS" || SeqAccess.String() != "SEQ_ACCESS" || ParAccess.String() != "PAR_ACCESS" {
		t.Errorf("access hint names wrong: %v %v %v", NoAccess, SeqAccess, ParAccess)
	}
	if LinearMap.String() != "LINEAR_MAP" || InterleavedMap.String() != "INTERLEAVED_MAP" {
		t.Errorf("map hint names wrong")
	}
	if NoPrefetch.String() != "NO_PREFETCH" || Positive.String() != "POSITIVE" || Negative.String() != "NEGATIVE" {
		t.Errorf("prefetch hint names wrong")
	}
}

func TestHintsBundleString(t *testing.T) {
	h := Hints{Access: SeqAccess, Map: InterleavedMap, Prefetch: Positive, PrefetchDistance: 2}
	s := h.String()
	for _, want := range []string{"SEQ_ACCESS", "INTERLEAVED_MAP", "POSITIVE", "d=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Hints.String() = %q, missing %q", s, want)
		}
	}
	// NO_ACCESS suppresses mapping/prefetch detail.
	if s := (Hints{Access: NoAccess, Prefetch: Positive}).String(); s != "NO_ACCESS" {
		t.Errorf("NO_ACCESS bundle = %q, want bare NO_ACCESS", s)
	}
}

func TestUnitKindString(t *testing.T) {
	if UnitInt.String() != "INT" || UnitMem.String() != "MEM" || UnitFP.String() != "FP" {
		t.Errorf("unit kind names wrong")
	}
}

func TestWithClusters(t *testing.T) {
	// One subblock per cluster while that stays >= the widest access, then
	// clamped at MinL0SubblockBytes; buses keep Table 2's one-per-cluster
	// ratio at every width.
	cases := []struct {
		n, subblock, buses int
	}{
		{2, 16, 2}, {4, 8, 4}, {8, 8, 8}, {16, 8, 16}, {32, 8, 32},
		// Odd counts round the subblock up so coverage still holds.
		{3, 16, 3}, {5, 8, 5},
	}
	for _, tc := range cases {
		cfg := MICRO36Config().WithClusters(tc.n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("WithClusters(%d): %v", tc.n, err)
		}
		if cfg.L0SubblockBytes != tc.subblock {
			t.Errorf("WithClusters(%d): subblock = %d, want %d", tc.n, cfg.L0SubblockBytes, tc.subblock)
		}
		if cfg.CommBuses != tc.buses {
			t.Errorf("WithClusters(%d): CommBuses = %d, want %d", tc.n, cfg.CommBuses, tc.buses)
		}
	}
	// Without buffers the subblock stays untouched.
	cfg := MICRO36Config().WithL0Entries(0)
	cfg.L0SubblockBytes = 0
	if got := cfg.WithClusters(2).L0SubblockBytes; got != 0 {
		t.Errorf("bufferless WithClusters set subblock %d", got)
	}
	// Non-positive counts must flow into Validate's error, never panic.
	for _, n := range []int{0, -2} {
		bad := MICRO36Config().WithClusters(n)
		if err := bad.Validate(); err == nil {
			t.Errorf("WithClusters(%d) validated", n)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 10: 16, 33: 64}
	for x, want := range cases {
		if got := ceilPow2(x); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", x, got, want)
		}
	}
}
