// Package trace wraps any memory model with an event recorder: every load,
// store and prefetch the execution engine issues is captured with its
// cluster, address, issue time and observed latency. The l0trace CLI uses it
// to print the head of a kernel's memory-event stream — the quickest way to
// see hint behaviour (SEQ vs PAR timing, prefetch leads, late fills) with
// your own eyes.
package trace

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/vliw"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// Load is a demand load.
	Load Kind = iota
	// Store is a store (including PSR secondary invalidations).
	Store
	// Prefetch is an explicit software prefetch.
	Prefetch
	// LoopEnd is a loop-boundary coherence action.
	LoopEnd
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "pref"
	case LoopEnd:
		return "inval"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded memory operation.
type Event struct {
	Kind    Kind
	Cluster int
	Addr    int64
	Width   int
	Issue   int64
	// Ready is the data-ready time for loads (Issue for others).
	Ready int64
	Hints arch.Hints
	// Secondary marks PSR invalidate-only store instances.
	Secondary bool
}

// Latency returns Ready − Issue.
func (e Event) Latency() int64 { return e.Ready - e.Issue }

// Recorder wraps a memory model and captures up to Cap events (0 = all).
type Recorder struct {
	Inner  vliw.MemoryModel
	Cap    int
	Events []Event
}

// New wraps a model, keeping at most capEvents events (0 keeps everything).
func New(inner vliw.MemoryModel, capEvents int) *Recorder {
	return &Recorder{Inner: inner, Cap: capEvents}
}

func (r *Recorder) record(e Event) {
	if r.Cap == 0 || len(r.Events) < r.Cap {
		r.Events = append(r.Events, e)
	}
}

// Load implements vliw.MemoryModel.
func (r *Recorder) Load(cluster int, addr int64, width int, h arch.Hints, t int64) int64 {
	ready := r.Inner.Load(cluster, addr, width, h, t)
	r.record(Event{Kind: Load, Cluster: cluster, Addr: addr, Width: width, Issue: t, Ready: ready, Hints: h})
	return ready
}

// Store implements vliw.MemoryModel.
func (r *Recorder) Store(cluster int, addr int64, width int, h arch.Hints, secondary bool, t int64) {
	r.Inner.Store(cluster, addr, width, h, secondary, t)
	r.record(Event{Kind: Store, Cluster: cluster, Addr: addr, Width: width, Issue: t, Ready: t, Hints: h, Secondary: secondary})
}

// Prefetch implements vliw.MemoryModel.
func (r *Recorder) Prefetch(cluster int, addr int64, t int64) {
	r.Inner.Prefetch(cluster, addr, t)
	r.record(Event{Kind: Prefetch, Cluster: cluster, Addr: addr, Issue: t, Ready: t})
}

// LoopEnd implements vliw.MemoryModel.
func (r *Recorder) LoopEnd() int64 {
	c := r.Inner.LoopEnd()
	r.record(Event{Kind: LoopEnd, Issue: -1, Ready: -1})
	return c
}

// Render writes the recorded events, one per line, returning the first
// write error.
func (r *Recorder) Render(w io.Writer) error {
	var err error
	for i, e := range r.Events {
		switch e.Kind {
		case LoopEnd:
			_, err = fmt.Fprintf(w, "%4d  ----- loop boundary (invalidate) -----\n", i)
		case Load:
			_, err = fmt.Fprintf(w, "%4d  t=%-6d c%d %-5s addr=%-8d w%d lat=%-3d %v\n",
				i, e.Issue, e.Cluster, e.Kind, e.Addr, e.Width, e.Latency(), e.Hints)
		case Store:
			sec := ""
			if e.Secondary {
				sec = " (invalidate-only replica)"
			}
			_, err = fmt.Fprintf(w, "%4d  t=%-6d c%d %-5s addr=%-8d w%d %v%s\n",
				i, e.Issue, e.Cluster, e.Kind, e.Addr, e.Width, e.Hints, sec)
		case Prefetch:
			_, err = fmt.Fprintf(w, "%4d  t=%-6d c%d %-5s addr=%-8d\n", i, e.Issue, e.Cluster, e.Kind, e.Addr)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
