package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/vliw"
)

func tracedRun(t *testing.T, capEvents int) *Recorder {
	t.Helper()
	b := ir.NewBuilder("tr", 32)
	a := b.Array("a", 4096, 4)
	d := b.Array("d", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	x := b.Int("op", v)
	b.Store("st", d, 0, 4, 4, x)
	loop := core.AssignAddresses(b.Build())
	sch, err := sched.Compile(loop, arch.MICRO36Config(), sched.Options{UseL0: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sys := mem.NewSystem(arch.MICRO36Config())
	rec := New(sys, capEvents)
	if _, err := vliw.Run(sch, rec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec.LoopEnd()
	return rec
}

func TestRecorderCapturesAllKinds(t *testing.T) {
	rec := tracedRun(t, 0)
	kinds := map[Kind]int{}
	for _, e := range rec.Events {
		kinds[e.Kind]++
	}
	if kinds[Load] != 32 || kinds[Store] != 32 {
		t.Errorf("loads/stores = %d/%d, want 32/32", kinds[Load], kinds[Store])
	}
	if kinds[LoopEnd] != 1 {
		t.Errorf("loop-end events = %d", kinds[LoopEnd])
	}
}

func TestRecorderCap(t *testing.T) {
	rec := tracedRun(t, 5)
	if len(rec.Events) != 5 {
		t.Errorf("events = %d, want capped 5", len(rec.Events))
	}
}

func TestRecorderTransparent(t *testing.T) {
	// Wrapping must not change timing: run with and without the recorder.
	b := ir.NewBuilder("tr2", 64)
	a := b.Array("a", 4096, 2)
	v := b.Load("ld", a, 0, 2, 2)
	b.Int("op", v)
	loop := core.AssignAddresses(b.Build())
	sch, err := sched.Compile(loop, arch.MICRO36Config(), sched.Options{UseL0: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	plain, err := vliw.Run(sch, mem.NewSystem(arch.MICRO36Config()))
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	traced, err := vliw.Run(sch, New(mem.NewSystem(arch.MICRO36Config()), 0))
	if err != nil {
		t.Fatalf("traced: %v", err)
	}
	if plain != traced {
		t.Errorf("recorder changed results: %+v vs %+v", plain, traced)
	}
}

func TestRenderReadable(t *testing.T) {
	rec := tracedRun(t, 10)
	var sb strings.Builder
	if err := rec.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "load") || !strings.Contains(out, "addr=") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" ||
		Prefetch.String() != "pref" || LoopEnd.String() != "inval" {
		t.Errorf("kind names wrong")
	}
}

func TestRenderCoversAllEventShapes(t *testing.T) {
	rec := New(mem.NewSystem(arch.MICRO36Config()), 0)
	rec.Load(0, 4096, 2, arch.Hints{Access: arch.ParAccess}, 10)
	rec.Store(1, 4096, 2, arch.Hints{Access: arch.ParAccess}, false, 11)
	rec.Store(2, 4096, 2, arch.Hints{}, true, 12) // secondary replica
	rec.Prefetch(3, 8192, 13)
	rec.LoopEnd()
	var sb strings.Builder
	if err := rec.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"load", "store", "invalidate-only replica", "pref", "loop boundary"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if len(rec.Events) != 5 {
		t.Errorf("events = %d", len(rec.Events))
	}
	if rec.Events[0].Latency() <= 0 {
		t.Errorf("load latency not recorded")
	}
}
