// The load runner: drives a validated Trace against a server base URL in
// closed- or open-loop mode, classifies every request into warmup or
// measure by its (scheduled) start instant, and folds measured latencies
// into per-class histograms.
//
// Open loop is coordinated-omission-safe: request #i's latency is measured
// from its *scheduled* arrival instant (start + i/qps), not from whenever
// the dispatcher actually got around to sending it — a stalled server
// therefore inflates the recorded tail instead of silently thinning the
// arrival stream. Closed loop measures from the actual send, which is the
// correct definition there (each client genuinely waits for its response).
//
// Wallclock discipline: the schedule is pure arithmetic (trace.go); the
// only time.Now in the package is now() below, used strictly at measurement
// edges — run origin, per-request timestamps, phase classification. None of
// it reaches sweep output bytes; the server responses a run fetches are
// byte-identical to a direct serial run (Verify classes check exactly
// that).

package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
)

// now is the package's single wallclock read: run origin, request
// timestamps and phase boundaries.
func now() time.Time {
	return time.Now() //lint:allow wallclock latency measurement edge; never feeds the request schedule or any sweep output byte
}

// Options configures a run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests. Per-request deadlines come from the
	// trace's Timeout via context, so the client itself needs no timeout.
	// Defaults to a plain &http.Client{}.
	Client *http.Client
	// Logf, when set, receives progress lines (the CLI wires stderr).
	Logf func(format string, args ...any)
}

// errTimeout marks a request that exceeded the trace's per-request timeout.
var errTimeout = errors.New("request timeout")

// classMetrics accumulates one class's outcomes. Warmup requests only
// count; measured successes land in the histogram, measured failures in the
// error/timeout counters.
type classMetrics struct {
	warmup   int64
	hist     Histogram
	errors   int64
	timeouts int64
	verify   int64 // verify_failures (counted within errors as well)
	firstErr string
}

type metrics struct {
	mu      sync.Mutex
	classes []classMetrics
}

func (m *metrics) record(cls int, measured bool, lat time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.classes[cls]
	if !measured {
		c.warmup++
		return
	}
	switch {
	case err == nil:
		c.hist.Record(lat.Nanoseconds())
	case errors.Is(err, errTimeout):
		c.timeouts++
	default:
		c.errors++
		if errors.Is(err, errVerify) {
			c.verify++
		}
		if c.firstErr == "" {
			c.firstErr = err.Error()
		}
	}
}

var errVerify = errors.New("verify mismatch")

// runner is the per-run state: the trace, prebuilt request bodies and
// verify oracles, and the metrics sink.
type runner struct {
	t       *Trace
	opts    Options
	client  *http.Client
	m       metrics
	body    [][]byte // per class: prebuilt JSON body (explore/run classes)
	expect  [][]byte // per class: local serial sweep bytes (verify classes)
	baseURL string
}

// Run executes the trace and returns its report. ctx cancellation stops the
// run early (the report covers what completed).
func Run(ctx context.Context, opts Options, t *Trace) (*Report, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		t:       t,
		opts:    opts,
		client:  opts.Client,
		baseURL: strings.TrimSuffix(opts.BaseURL, "/"),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	if r.baseURL == "" {
		return nil, fmt.Errorf("loadgen: no server base URL")
	}
	r.m.classes = make([]classMetrics, len(t.Classes))
	if err := r.prepare(ctx); err != nil {
		return nil, err
	}

	start := now()
	measureStart := start.Add(time.Duration(t.Warmup))
	end := measureStart.Add(time.Duration(t.Measure))
	r.logf("trace %s: %s loop, warmup %s, measure %s", t.Name, t.Mode,
		time.Duration(t.Warmup), time.Duration(t.Measure))

	// Server-side counters at the measure boundary: a goroutine sleeps to
	// the warmup edge and snapshots /v1/cachestats; the closing snapshot is
	// taken after the run drains. Snapshot failures leave the field empty
	// rather than failing the run (the latency data is still good).
	beforeCh := make(chan json.RawMessage, 1)
	go func() {
		if d := measureStart.Sub(now()); d > 0 {
			time.Sleep(d)
		}
		b, err := r.get(ctx, "/v1/cachestats")
		if err != nil {
			b = nil
		}
		beforeCh <- b
	}()

	switch t.Mode {
	case ModeClosed:
		r.runClosed(ctx, measureStart, end)
	case ModeOpen:
		r.runOpen(ctx, start, measureStart, end)
	}
	drained := now()
	before := <-beforeCh
	after, err := r.get(ctx, "/v1/cachestats")
	if err != nil {
		after = nil
	}
	return r.report(start, measureStart, drained, before, after), nil
}

// prepare marshals each class's fixed request body once and, for Verify
// classes, computes the byte oracle with a direct serial in-process sweep —
// the same engine the server calls, Workers and sharding left at their
// serial defaults.
func (r *runner) prepare(ctx context.Context) error {
	t := r.t
	r.body = make([][]byte, len(t.Classes))
	r.expect = make([][]byte, len(t.Classes))
	for i := range t.Classes {
		c := &t.Classes[i]
		switch {
		case c.Explore != nil:
			req := *c.Explore
			req.Format = "json"
			req.Async = c.Async
			b, err := json.Marshal(&req)
			if err != nil {
				return fmt.Errorf("loadgen: class %q: %v", c.Name, err)
			}
			r.body[i] = b
			if c.Verify {
				res, err := harness.ExploreCfg(harness.RunConfig{Ctx: ctx}, c.Explore.Spec(), 0, 1)
				if err != nil {
					return fmt.Errorf("loadgen: class %q verify oracle: %v", c.Name, err)
				}
				var buf bytes.Buffer
				if err := harness.WriteExploreJSON(&buf, res); err != nil {
					return fmt.Errorf("loadgen: class %q verify oracle: %v", c.Name, err)
				}
				r.expect[i] = buf.Bytes()
			}
		case c.Run != nil:
			b, err := json.Marshal(c.Run)
			if err != nil {
				return fmt.Errorf("loadgen: class %q: %v", c.Name, err)
			}
			r.body[i] = b
		}
	}
	return nil
}

// runClosed drives Clients concurrent loops: each client issues its own
// deterministic request sequence (stream = client index + 1), waits for the
// response, optionally thinks, and stops at the end of the measure phase.
func (r *runner) runClosed(ctx context.Context, measureStart, end time.Time) {
	var wg sync.WaitGroup
	for c := 0; c < r.t.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			stream := uint64(client + 1)
			for seq := uint64(0); ; seq++ {
				t0 := now()
				if !t0.Before(end) || ctx.Err() != nil {
					return
				}
				cls := r.t.classAt(stream, seq)
				err := r.execute(ctx, cls, stream, seq)
				lat := now().Sub(t0)
				r.m.record(cls, !t0.Before(measureStart), lat, err)
				if think := time.Duration(r.t.Think); think > 0 {
					time.Sleep(think)
				}
			}
		}(c)
	}
	wg.Wait()
}

// runOpen dispatches request #i at start+i/qps regardless of how many are
// still outstanding, and measures each latency from that scheduled instant.
func (r *runner) runOpen(ctx context.Context, start, measureStart, end time.Time) {
	dur := end.Sub(start)
	total := int64(dur.Seconds()*r.t.QPS) + 1
	for total > 0 && arrivalOffset(total-1, r.t.QPS) >= dur {
		total--
	}
	var wg sync.WaitGroup
	for i := int64(0); i < total; i++ {
		target := start.Add(arrivalOffset(i, r.t.QPS))
		if d := target.Sub(now()); d > 0 {
			time.Sleep(d)
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int64, target time.Time) {
			defer wg.Done()
			cls := r.t.classAt(0, uint64(i))
			err := r.execute(ctx, cls, 0, uint64(i))
			lat := now().Sub(target)
			r.m.record(cls, !target.Before(measureStart), lat, err)
		}(i, target)
	}
	wg.Wait()
}

// execute issues one request of the given class and returns its outcome.
func (r *runner) execute(ctx context.Context, cls int, stream, seq uint64) error {
	rctx, cancel := context.WithTimeout(ctx, time.Duration(r.t.Timeout))
	defer cancel()
	c := &r.t.Classes[cls]
	var err error
	switch {
	case c.Explore != nil && !c.Async:
		var body []byte
		body, err = r.post(rctx, "/v1/explore", "application/json", r.body[cls])
		if err == nil && c.Verify && !bytes.Equal(body, r.expect[cls]) {
			err = fmt.Errorf("%w: class %q response differs from direct serial run (%d vs %d bytes)",
				errVerify, c.Name, len(body), len(r.expect[cls]))
		}
	case c.Explore != nil:
		err = r.executeAsync(rctx, cls)
	case c.Run != nil:
		_, err = r.post(rctx, "/v1/run", "application/json", r.body[cls])
	case c.Kernel != nil:
		err = r.executeKernel(rctx, cls, stream, seq)
	}
	if err != nil && rctx.Err() != nil && ctx.Err() == nil {
		return fmt.Errorf("%w: %v", errTimeout, err)
	}
	return err
}

// executeAsync submits the explore as a job and polls it to completion; the
// caller's latency covers submit through result fetch.
func (r *runner) executeAsync(ctx context.Context, cls int) error {
	c := &r.t.Classes[cls]
	body, err := r.post(ctx, "/v1/explore", "application/json", r.body[cls])
	if err != nil {
		return err
	}
	var st server.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("parse job status: %v", err)
	}
	for {
		switch st.State {
		case server.JobDone:
			_, err := r.get(ctx, st.ResultURL)
			return err
		case server.JobFailed, server.JobCanceled:
			return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(time.Duration(c.Poll))
		if err := ctx.Err(); err != nil {
			return err
		}
		body, err = r.get(ctx, "/v1/jobs/"+st.ID)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("parse job status: %v", err)
		}
	}
}

// executeKernel registers the class's (possibly fresh) kernel source and
// sweeps it; the latency covers both calls — the full "user submits a new
// loop" round trip.
func (r *runner) executeKernel(ctx context.Context, cls int, stream, seq uint64) error {
	c := &r.t.Classes[cls]
	src := r.t.kernelSource(cls, stream, seq)
	body, err := r.post(ctx, "/v1/kernels", "text/plain; charset=utf-8", []byte(src))
	if err != nil {
		return err
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil || reg.ID == "" {
		return fmt.Errorf("parse kernel registration: %v", err)
	}
	req := server.ExploreRequest{
		Kernels:  []string{reg.ID},
		Clusters: c.Kernel.Clusters,
		Entries:  c.Kernel.Entries,
		Format:   "json",
	}
	b, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	_, err = r.post(ctx, "/v1/explore", "application/json", b)
	return err
}

// post issues a POST and returns the response body; any status >= 400 is an
// error carrying a body excerpt.
func (r *runner) post(ctx context.Context, path, ctype string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ctype)
	return r.do(req)
}

func (r *runner) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.baseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return r.do(req)
}

func (r *runner) do(req *http.Request) ([]byte, error) {
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		excerpt := string(body)
		if len(excerpt) > 200 {
			excerpt = excerpt[:200] + "..."
		}
		return nil, fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL.Path, resp.StatusCode, strings.TrimSpace(excerpt))
	}
	return body, nil
}

func (r *runner) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}
