package loadgen

import (
	"sort"
	"testing"
)

// histOracleValues builds a deterministic, skewed sample set spanning six
// orders of magnitude (splitmix64 draws shaped like a latency distribution:
// lots of small values, a long tail).
func histOracleValues(n int) []int64 {
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		r := splitmix64(uint64(i) * 0x9e3779b97f4a7c15)
		v := int64(r % 1_000_000) // bulk: < 1ms
		if i%50 == 0 {
			v = int64(r % 500_000_000) // tail: up to 500ms
		}
		vals = append(vals, v)
	}
	return vals
}

// TestHistogramQuantileOracle checks every reported quantile against the
// sorted-slice definition: the estimate must be >= the true order statistic
// and within the log-linear bucket's relative-error bound (1/2^histSubBits,
// plus one for integer truncation).
func TestHistogramQuantileOracle(t *testing.T) {
	vals := histOracleValues(10_000)
	var h Histogram
	for _, v := range vals {
		h.Record(v)
	}
	sorted := append([]int64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
		rank := int64(q*float64(len(sorted)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > int64(len(sorted)) {
			rank = int64(len(sorted))
		}
		want := sorted[rank-1]
		got := h.Quantile(q)
		if got < want {
			t.Errorf("Quantile(%v) = %d under-reports the true order statistic %d", q, got, want)
		}
		bound := want + want>>histSubBits + 1
		if got > bound {
			t.Errorf("Quantile(%v) = %d exceeds error bound %d (true %d)", q, got, bound, want)
		}
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Max = %d, want exact %d", h.Max(), sorted[len(sorted)-1])
	}
	if h.Min() != sorted[0] {
		t.Errorf("Min = %d, want exact %d", h.Min(), sorted[0])
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Mean() != sum/int64(len(vals)) {
		t.Errorf("Mean = %d, want exact %d", h.Mean(), sum/int64(len(vals)))
	}
}

// TestBucketIndexInvariants pins the bucket geometry: indices are monotonic
// in the value, every value is <= its bucket's upper bound, and upper
// bounds map back to their own bucket (the property FromBuckets relies on).
func TestBucketIndexInvariants(t *testing.T) {
	probes := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1025, 1 << 20, 1<<40 + 12345}
	for i := 0; i < 2000; i++ {
		probes = append(probes, int64(splitmix64(uint64(i))%(uint64(1)<<62)))
	}
	prev := -1
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	for _, v := range probes {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotonic", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", i, up, v)
		}
		if back := bucketIndex(bucketUpper(i)); back != i {
			t.Fatalf("bucketUpper(%d) = %d maps back to bucket %d", i, bucketUpper(i), back)
		}
	}
}

// TestHistogramBucketsRoundTrip exports the sparse wire form and rebuilds:
// counts and every quantile must survive.
func TestHistogramBucketsRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range histOracleValues(5_000) {
		h.Record(v)
	}
	rebuilt, err := FromBuckets(h.Buckets())
	if err != nil {
		t.Fatalf("FromBuckets: %v", err)
	}
	if rebuilt.Count() != h.Count() {
		t.Fatalf("rebuilt count %d, want %d", rebuilt.Count(), h.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if got, want := rebuilt.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("rebuilt Quantile(%v) = %d, want %d", q, got, want)
		}
	}
	if _, err := FromBuckets([][2]int64{{100, 2}, {50, 1}}); err == nil {
		t.Error("FromBuckets accepted out-of-order buckets")
	}
	if _, err := FromBuckets([][2]int64{{64, 1}}); err == nil {
		t.Error("FromBuckets accepted a non-boundary upper bound")
	}
	if _, err := FromBuckets([][2]int64{{32, 0}}); err == nil {
		t.Error("FromBuckets accepted a zero count")
	}
}

// TestHistogramMerge checks that merging equals recording the union.
func TestHistogramMerge(t *testing.T) {
	vals := histOracleValues(4_000)
	var a, b, union Histogram
	for i, v := range vals {
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	a.Merge(&b)
	if a.Count() != union.Count() || a.Max() != union.Max() || a.Min() != union.Min() || a.Mean() != union.Mean() {
		t.Fatalf("merge digest (n=%d max=%d min=%d mean=%d) != union (n=%d max=%d min=%d mean=%d)",
			a.Count(), a.Max(), a.Min(), a.Mean(), union.Count(), union.Max(), union.Min(), union.Mean())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != union.Quantile(q) {
			t.Errorf("merge Quantile(%v) = %d, union %d", q, a.Quantile(q), union.Quantile(q))
		}
	}
}
