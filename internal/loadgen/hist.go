// Fixed-bucket log-linear latency histogram (the HdrHistogram shape): each
// power-of-two range is split into 2^histSubBits linear sub-buckets, so any
// recorded value lands in a bucket whose width is at most 1/2^histSubBits of
// its magnitude — quantiles carry a bounded relative error (~3.1% at
// histSubBits=5) with a few KiB of fixed storage and O(1) recording, no
// per-sample allocation, and deterministic merge. The exact max and min are
// tracked on the side so the tails reported in artifacts never exceed an
// observed value.
//
// Values are int64 (the package records nanoseconds). Negative values clamp
// to zero — a latency can only go negative through wallclock adjustment
// mid-run, and a zero bucket is more honest than a panic at measure time.

package loadgen

import (
	"fmt"
	"math/bits"
	"sort"
)

const (
	// histSubBits is the log2 of linear sub-buckets per power of two.
	histSubBits = 5
	histSub     = 1 << histSubBits // 32
	// histBuckets covers the whole non-negative int64 range: values below
	// histSub index directly; each of the remaining 63-histSubBits exponent
	// ranges contributes histSub buckets.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram accumulates values into log-linear buckets. The zero value is
// ready to use. Not safe for concurrent use; callers lock (the runner keeps
// one per request class behind its metrics mutex).
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64 // valid when count > 0
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	// exp is the position of the highest set bit (>= histSubBits here).
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// The top histSubBits+1 bits select the linear sub-bucket within the
	// exponent range; the leading 1 folds into the offset arithmetic.
	sub := int(v>>(uint(exp)-histSubBits)) - histSub
	return (exp-histSubBits+1)*histSub + sub
}

// bucketUpper is the largest value mapping to bucket i (its reported value:
// quantiles never under-report a tail).
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := i/histSub + histSubBits - 1
	sub := int64(i%histSub + histSub)
	width := int64(1) << (uint(exp) - histSubBits)
	return (sub+1)*width - 1
}

// Record adds one value. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the exact largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the bucket holding the ceil(q*count)-th smallest value,
// clamped to the exact observed min/max. Empty histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i]
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, n := range other.counts {
		h.counts[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Buckets exports the non-empty buckets as [upperBound, count] pairs in
// ascending bucket order (the artifact's sparse wire form).
func (h *Histogram) Buckets() [][2]int64 {
	var out [][2]int64
	for i, n := range h.counts {
		if n != 0 {
			out = append(out, [2]int64{bucketUpper(i), n})
		}
	}
	return out
}

// FromBuckets rebuilds a histogram from its sparse wire form (quantiles on
// the rebuilt histogram match the original; exact min/max degrade to bucket
// bounds, which the artifact carries separately).
func FromBuckets(buckets [][2]int64) (*Histogram, error) {
	if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i][0] < buckets[j][0] }) {
		return nil, fmt.Errorf("loadgen: histogram buckets not in ascending order")
	}
	h := &Histogram{}
	for _, b := range buckets {
		upper, n := b[0], b[1]
		if n <= 0 {
			return nil, fmt.Errorf("loadgen: histogram bucket %d has count %d", upper, n)
		}
		i := bucketIndex(upper)
		if bucketUpper(i) != upper {
			return nil, fmt.Errorf("loadgen: %d is not a bucket upper bound", upper)
		}
		h.counts[i] += n
		h.count += n
		h.sum += upper * n
		if h.count == n || upper < h.min {
			h.min = upper
		}
		if upper > h.max {
			h.max = upper
		}
	}
	return h, nil
}
