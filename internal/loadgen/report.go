// The run artifact: a versioned JSON report (the BENCH_*.json trajectory's
// serving member), a strict parser for round-trip checking, a human table,
// and the SLO gate. The report embeds the trace that produced it, so an
// artifact is self-describing and replayable; server counter snapshots are
// kept as raw JSON so re-encoding an artifact preserves them byte-for-byte.

package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// ReportVersion is the artifact schema version.
const ReportVersion = 1

// LatencySummary is one class's quantile digest, in nanoseconds. Quantiles
// come from the log-linear histogram (bounded relative error); Max and Mean
// are exact.
type LatencySummary struct {
	P50  int64 `json:"p50_ns"`
	P95  int64 `json:"p95_ns"`
	P99  int64 `json:"p99_ns"`
	P999 int64 `json:"p999_ns"`
	Max  int64 `json:"max_ns"`
	Mean int64 `json:"mean_ns"`
}

func summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
		Mean: h.Mean(),
	}
}

// ClassReport is one request class's measured outcome. Requests counts
// every measure-phase completion (successes + errors + timeouts); the
// latency digest covers successes only.
type ClassReport struct {
	Name           string         `json:"name"`
	Requests       int64          `json:"requests"`
	Errors         int64          `json:"errors"`
	Timeouts       int64          `json:"timeouts"`
	VerifyFailures int64          `json:"verify_failures,omitempty"`
	WarmupRequests int64          `json:"warmup_requests"`
	ThroughputRPS  float64        `json:"throughput_rps"`
	Latency        LatencySummary `json:"latency_ns"`
	// Buckets is the sparse histogram ([upper_ns, count] pairs) so an
	// artifact consumer can recompute any quantile (FromBuckets).
	Buckets  [][2]int64 `json:"buckets,omitempty"`
	FirstErr string     `json:"first_error,omitempty"`
}

// Report is the full artifact.
type Report struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"` // "l0bench"
	Trace   *Trace `json:"trace"`
	// StartedAt/WallSeconds are measurement metadata (when and how long
	// the run really took), not part of any determinism contract.
	StartedAt      string  `json:"started_at"`
	WallSeconds    float64 `json:"wall_seconds"`
	MeasureSeconds float64 `json:"measure_seconds"`
	// Totals are duplicated at top level so shell pipelines can pull them
	// with one grep/sed, mirroring the other smoke scripts.
	TotalRequests int64         `json:"total_requests"`
	TotalErrors   int64         `json:"total_errors"`
	TotalTimeouts int64         `json:"total_timeouts"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Total         ClassReport   `json:"total"`
	Classes       []ClassReport `json:"classes"`
	// Server counter snapshots (/v1/cachestats) at the measure boundary
	// and after drain; raw so re-encoding preserves them.
	ServerBefore json.RawMessage `json:"server_before,omitempty"`
	ServerAfter  json.RawMessage `json:"server_after,omitempty"`
}

// report assembles the artifact from the accumulated metrics.
func (r *runner) report(start, measureStart, drained time.Time, before, after json.RawMessage) *Report {
	measureSec := time.Duration(r.t.Measure).Seconds()
	rep := &Report{
		Version:        ReportVersion,
		Tool:           "l0bench",
		Trace:          r.t,
		StartedAt:      start.UTC().Format(time.RFC3339Nano),
		WallSeconds:    drained.Sub(start).Seconds(),
		MeasureSeconds: measureSec,
		ServerBefore:   before,
		ServerAfter:    after,
	}
	var total classMetrics
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	for i := range r.m.classes {
		c := &r.m.classes[i]
		rep.Classes = append(rep.Classes, classReport(r.t.Classes[i].Name, c, measureSec))
		total.warmup += c.warmup
		total.errors += c.errors
		total.timeouts += c.timeouts
		total.verify += c.verify
		total.hist.Merge(&c.hist)
		if total.firstErr == "" {
			total.firstErr = c.firstErr
		}
	}
	rep.Total = classReport("total", &total, measureSec)
	rep.TotalRequests = rep.Total.Requests
	rep.TotalErrors = rep.Total.Errors
	rep.TotalTimeouts = rep.Total.Timeouts
	rep.ThroughputRPS = rep.Total.ThroughputRPS
	return rep
}

func classReport(name string, c *classMetrics, measureSec float64) ClassReport {
	ok := c.hist.Count()
	cr := ClassReport{
		Name:           name,
		Requests:       ok + c.errors + c.timeouts,
		Errors:         c.errors,
		Timeouts:       c.timeouts,
		VerifyFailures: c.verify,
		WarmupRequests: c.warmup,
		Latency:        summarize(&c.hist),
		Buckets:        c.hist.Buckets(),
		FirstErr:       c.firstErr,
	}
	if measureSec > 0 {
		cr.ThroughputRPS = float64(ok) / measureSec
	}
	return cr
}

// EncodeReport writes the artifact as indented JSON with a trailing
// newline.
func EncodeReport(w io.Writer, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ParseReport decodes an artifact strictly: unknown fields and version
// mismatches are errors, so a drifted schema fails loudly in CI instead of
// reading as zeros.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("loadgen: parse report: %v", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("loadgen: report version %d, this build reads %d", r.Version, ReportVersion)
	}
	if r.Tool != "l0bench" {
		return nil, fmt.Errorf("loadgen: artifact tool %q is not an l0bench report", r.Tool)
	}
	return &r, nil
}

// fmtNS renders nanoseconds as a rounded duration for the table.
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// RenderReport writes the human table.
func RenderReport(w io.Writer, r *Report) error {
	t := r.Trace
	var intensity string
	if t.Mode == ModeClosed {
		intensity = fmt.Sprintf("%d clients, think %s", t.Clients, time.Duration(t.Think))
	} else {
		intensity = fmt.Sprintf("%.1f qps", t.QPS)
	}
	if _, err := fmt.Fprintf(w,
		"trace %s: %s loop (%s), measured %.1fs of %.1fs wall\n"+
			"requests %d  throughput %.2f rps  errors %d  timeouts %d\n\n",
		t.Name, t.Mode, intensity, r.MeasureSeconds, r.WallSeconds,
		r.TotalRequests, r.ThroughputRPS, r.TotalErrors, r.TotalTimeouts); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %8s %8s %5s %5s %10s %10s %10s %10s %10s\n",
		"class", "requests", "rps", "err", "t/o", "p50", "p95", "p99", "p999", "max"); err != nil {
		return err
	}
	rows := append(append([]ClassReport{}, r.Classes...), r.Total)
	for _, c := range rows {
		if _, err := fmt.Fprintf(w, "%-16s %8d %8.2f %5d %5d %10s %10s %10s %10s %10s\n",
			c.Name, c.Requests, c.ThroughputRPS, c.Errors, c.Timeouts,
			fmtNS(c.Latency.P50), fmtNS(c.Latency.P95), fmtNS(c.Latency.P99),
			fmtNS(c.Latency.P999), fmtNS(c.Latency.Max)); err != nil {
			return err
		}
	}
	for _, c := range rows {
		if c.FirstErr != "" {
			if _, err := fmt.Fprintf(w, "\nfirst error (%s): %s\n", c.Name, c.FirstErr); err != nil {
				return err
			}
		}
	}
	return nil
}

// SLO is one latency objective: a quantile of a class (empty class or
// "total" means the aggregate) must not exceed Limit.
type SLO struct {
	Class    string
	Quantile string // p50 | p95 | p99 | p999 | max | mean
	Limit    Duration
}

// ParseSLOs parses a comma-separated flag value like
// "p99=200ms,grid78.p95=1s" (bare quantile applies to the total).
func ParseSLOs(s string) ([]SLO, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []SLO
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: SLO %q: want quantile=duration", part)
		}
		slo := SLO{Quantile: lhs}
		if class, q, ok := strings.Cut(lhs, "."); ok {
			slo.Class, slo.Quantile = class, q
		}
		switch slo.Quantile {
		case "p50", "p95", "p99", "p999", "max", "mean":
		default:
			return nil, fmt.Errorf("loadgen: SLO %q: unknown quantile %q", part, slo.Quantile)
		}
		d, err := time.ParseDuration(rhs)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("loadgen: SLO %q: bad duration %q", part, rhs)
		}
		slo.Limit = Duration(d)
		out = append(out, slo)
	}
	return out, nil
}

// quantileNS pulls the named quantile from a summary.
func (l LatencySummary) quantileNS(q string) int64 {
	switch q {
	case "p50":
		return l.P50
	case "p95":
		return l.P95
	case "p99":
		return l.P99
	case "p999":
		return l.P999
	case "max":
		return l.Max
	case "mean":
		return l.Mean
	}
	return 0
}

// CheckSLOs evaluates every objective against the report and returns one
// violation line per miss (empty means all met).
func (r *Report) CheckSLOs(slos []SLO) []string {
	var out []string
	for _, slo := range slos {
		name := slo.Class
		if name == "" {
			name = "total"
		}
		var sum *LatencySummary
		if name == "total" {
			sum = &r.Total.Latency
		} else {
			for i := range r.Classes {
				if r.Classes[i].Name == name {
					sum = &r.Classes[i].Latency
					break
				}
			}
		}
		if sum == nil {
			out = append(out, fmt.Sprintf("SLO %s.%s: no such class in report", name, slo.Quantile))
			continue
		}
		got := sum.quantileNS(slo.Quantile)
		if got > int64(slo.Limit) {
			out = append(out, fmt.Sprintf("SLO %s.%s: %s > limit %s",
				name, slo.Quantile, fmtNS(got), time.Duration(slo.Limit)))
		}
	}
	return out
}
