package loadgen

import (
	"strings"
	"testing"
	"time"
)

const testTraceJSON = `{
  "name": "unit",
  "seed": 42,
  "mode": "closed",
  "clients": 3,
  "think": "5ms",
  "warmup": "100ms",
  "measure": "400ms",
  "classes": [
    {"name": "grid", "weight": 3, "explore": {"benches": ["gsmdec"], "clusters": [4], "entries": [4]}},
    {"name": "point", "weight": 1, "run": {"bench": "gsmdec"}},
    {"name": "cold", "weight": 2, "kernel": {"fresh": true}},
    {"name": "hot", "weight": 2, "kernel": {}}
  ]
}`

// TestScheduleDeterminism replays the schedule from two independently
// parsed copies of the same trace: class picks, generated kernel sources
// and open-loop arrival instants must be identical — the ISSUE's "repeated
// runs of the same seed produce identical request schedules".
func TestScheduleDeterminism(t *testing.T) {
	t1, err := ParseTrace([]byte(testTraceJSON))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	t2, err := ParseTrace([]byte(testTraceJSON))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	for stream := uint64(0); stream < 5; stream++ {
		for seq := uint64(0); seq < 500; seq++ {
			c1, c2 := t1.classAt(stream, seq), t2.classAt(stream, seq)
			if c1 != c2 {
				t.Fatalf("classAt(%d,%d): %d vs %d across identical traces", stream, seq, c1, c2)
			}
			if t1.Classes[c1].Kernel != nil {
				s1, s2 := t1.kernelSource(c1, stream, seq), t2.kernelSource(c1, stream, seq)
				if s1 != s2 {
					t.Fatalf("kernelSource(%d,%d) differs across identical traces", stream, seq)
				}
			}
		}
	}
	// A different seed must actually change the schedule.
	seeded := *t1
	seeded.Seed = 43
	same := 0
	for seq := uint64(0); seq < 500; seq++ {
		if seeded.classAt(1, seq) == t1.classAt(1, seq) {
			same++
		}
	}
	if same == 500 {
		t.Error("changing the seed left the schedule identical")
	}
}

// TestScheduleMixAndKernels checks the weighted mix lands near its
// weights, hot kernels repeat one source, and fresh kernels never repeat.
func TestScheduleMixAndKernels(t *testing.T) {
	tr, err := ParseTrace([]byte(testTraceJSON))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	const n = 8000
	counts := make([]int, len(tr.Classes))
	hot := map[string]bool{}
	fresh := map[string]bool{}
	freshN := 0
	for seq := uint64(0); seq < n; seq++ {
		c := tr.classAt(1, seq)
		counts[c]++
		switch tr.Classes[c].Name {
		case "hot":
			hot[tr.kernelSource(c, 1, seq)] = true
		case "cold":
			fresh[tr.kernelSource(c, 1, seq)] = true
			freshN++
		}
	}
	total := tr.totalWeight()
	for i, c := range tr.Classes {
		want := float64(n) * float64(c.Weight) / float64(total)
		if got := float64(counts[i]); got < want*0.8 || got > want*1.2 {
			t.Errorf("class %q drawn %d times, want about %.0f", c.Name, counts[i], want)
		}
	}
	if len(hot) != 1 {
		t.Errorf("hot kernel class produced %d distinct sources, want 1", len(hot))
	}
	if len(fresh) != freshN {
		t.Errorf("fresh kernel class repeated a source: %d distinct of %d draws", len(fresh), freshN)
	}
}

// TestArrivalOffsetSchedule pins the open-loop schedule arithmetic: pure in
// i, monotone, and matching i/qps exactly at round points.
func TestArrivalOffsetSchedule(t *testing.T) {
	if got := arrivalOffset(0, 50); got != 0 {
		t.Errorf("arrivalOffset(0) = %v, want 0", got)
	}
	if got := arrivalOffset(50, 50); got != time.Second {
		t.Errorf("arrivalOffset(50) at 50 qps = %v, want 1s", got)
	}
	prev := time.Duration(-1)
	for i := int64(0); i < 1000; i++ {
		d := arrivalOffset(i, 33.5)
		if d <= prev {
			t.Fatalf("arrivalOffset(%d) = %v not increasing past %v", i, d, prev)
		}
		if d != arrivalOffset(i, 33.5) {
			t.Fatalf("arrivalOffset(%d) not pure", i)
		}
		prev = d
	}
}

func TestTraceValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"bad mode", `{"name":"x","mode":"sideways","measure":"1s","classes":[{"name":"a","run":{"bench":"gsmdec"}}]}`, "mode"},
		{"open needs qps", `{"name":"x","mode":"open","measure":"1s","classes":[{"name":"a","run":{"bench":"gsmdec"}}]}`, "qps"},
		{"no classes", `{"name":"x","mode":"closed","measure":"1s","classes":[]}`, "classes"},
		{"no measure", `{"name":"x","mode":"closed","classes":[{"name":"a","run":{"bench":"gsmdec"}}]}`, "measure"},
		{"two kinds", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","run":{"bench":"gsmdec"},"explore":{}}]}`, "exactly one"},
		{"async run", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","run":{"bench":"gsmdec"},"async":true}]}`, "async"},
		{"verify async", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","explore":{},"async":true,"verify":true}]}`, "verify"},
		{"sharded", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","explore":{"shards":2}}]}`, "shard"},
		{"dup class", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","run":{"bench":"g"}},{"name":"a","run":{"bench":"g"}}]}`, "duplicate"},
		{"unknown field", `{"name":"x","mode":"closed","measure":"1s","qqs":3,"classes":[{"name":"a","run":{"bench":"g"}}]}`, "unknown field"},
		{"csv format", `{"name":"x","mode":"closed","measure":"1s","classes":[{"name":"a","explore":{"format":"csv"}}]}`, "format"},
	}
	for _, c := range cases {
		_, err := ParseTrace([]byte(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestTraceValidateDefaults(t *testing.T) {
	tr, err := ParseTrace([]byte(testTraceJSON))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if tr.Timeout != Duration(30*time.Second) {
		t.Errorf("Timeout default = %v", time.Duration(tr.Timeout))
	}
	for _, c := range tr.Classes {
		if c.Weight <= 0 {
			t.Errorf("class %q weight not defaulted", c.Name)
		}
		if c.Kernel != nil {
			if len(c.Kernel.Clusters) == 0 || len(c.Kernel.Entries) == 0 {
				t.Errorf("class %q kernel axes not defaulted", c.Name)
			}
		}
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("p99=200ms, grid.p95=1s,total.max=2s")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	if len(slos) != 3 {
		t.Fatalf("parsed %d SLOs, want 3", len(slos))
	}
	if slos[0].Class != "" || slos[0].Quantile != "p99" || slos[0].Limit != Duration(200*time.Millisecond) {
		t.Errorf("slo[0] = %+v", slos[0])
	}
	if slos[1].Class != "grid" || slos[1].Quantile != "p95" {
		t.Errorf("slo[1] = %+v", slos[1])
	}
	for _, bad := range []string{"p17=1s", "p99", "p99=-3s", "p99=banana"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
	if slos, err := ParseSLOs("  "); err != nil || slos != nil {
		t.Errorf("empty SLO spec: %v, %v", slos, err)
	}
}

func TestCheckSLOs(t *testing.T) {
	r := &Report{
		Total: ClassReport{Name: "total", Latency: LatencySummary{P99: int64(300 * time.Millisecond)}},
		Classes: []ClassReport{
			{Name: "grid", Latency: LatencySummary{P95: int64(50 * time.Millisecond)}},
		},
	}
	slos, err := ParseSLOs("p99=200ms,grid.p95=1s,nope.p50=1s")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	v := r.CheckSLOs(slos)
	if len(v) != 2 {
		t.Fatalf("violations = %v, want the total p99 miss and the unknown class", v)
	}
	if !strings.Contains(v[0], "total.p99") || !strings.Contains(v[1], "no such class") {
		t.Errorf("violations = %v", v)
	}
}
