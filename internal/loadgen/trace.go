// Declarative workload traces. A trace names a loop mode (closed or open),
// its intensity knobs, warmup/measure phase lengths and a weighted mix of
// request classes over the l0served surface: sync/async /v1/explore sweeps,
// /v1/run point queries, and kernel-registration+sweep round trips whose
// hot/cold split comes from repeating one source vs generating a fresh one
// per request.
//
// Everything schedule-shaped is derived from the trace seed with splitmix64
// — which class request #seq of stream #s issues, which generated kernel it
// registers, and (open loop) the arrival instant of request #i as pure
// arithmetic on i. Re-running a trace therefore replays the identical
// request sequence; only the measured latencies differ. No wallclock ever
// feeds the schedule (l0lint wallclock covers this package); time.Now is
// confined to run.go's measurement edges.

package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/server"
)

// Duration marshals as a Go duration string ("250ms") so traces stay
// readable; plain JSON numbers are accepted as nanoseconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("loadgen: duration must be a string like \"250ms\" or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// Loop modes.
const (
	ModeClosed = "closed" // Clients concurrent callers, think time between requests
	ModeOpen   = "open"   // QPS arrivals on a fixed schedule, unbounded concurrency
)

// Trace is one declarative load description.
type Trace struct {
	Name string `json:"name"`
	// Seed drives every schedule decision (class picks, generated kernels,
	// open-loop arrivals are seedless arithmetic). Same seed, same schedule.
	Seed uint64 `json:"seed"`
	Mode string `json:"mode"` // closed | open

	// Closed-loop knobs.
	Clients int      `json:"clients,omitempty"`
	Think   Duration `json:"think,omitempty"`

	// Open-loop knob: target arrival rate.
	QPS float64 `json:"qps,omitempty"`

	Warmup  Duration `json:"warmup"`
	Measure Duration `json:"measure"`
	// Timeout bounds each request (default 30s).
	Timeout Duration `json:"timeout,omitempty"`

	Classes []Class `json:"classes"`
}

// Class is one weighted request kind in the mix. Exactly one of Explore,
// Run or Kernel must be set.
type Class struct {
	Name   string `json:"name"`
	Weight int    `json:"weight,omitempty"` // default 1

	// Explore posts this sweep to /v1/explore (Format/Async forced by the
	// class flags below; Shard/Shards must be zero).
	Explore *server.ExploreRequest `json:"explore,omitempty"`
	// Run posts this point query to /v1/run.
	Run *server.RunRequest `json:"run,omitempty"`
	// Kernel registers a looplang source via POST /v1/kernels, then sweeps
	// it with one /v1/explore call; the latency covers the whole round
	// trip.
	Kernel *KernelClass `json:"kernel,omitempty"`

	// Async submits the explore as a job and polls /v1/jobs/{id} every
	// Poll until it completes, then fetches the result; latency covers
	// submit through result fetch. Explore classes only.
	Async bool     `json:"async,omitempty"`
	Poll  Duration `json:"poll,omitempty"` // default 10ms
	// Verify compares every response body against a local serial run of
	// the same sweep, byte for byte (sync explore classes only; mismatches
	// count as verify_failures).
	Verify bool `json:"verify,omitempty"`
}

// KernelClass describes the register+sweep round trip.
type KernelClass struct {
	// Fresh generates a distinct kernel source per request (cold path:
	// every sweep compiles and simulates). False repeats one source per
	// class (hot path: content hash and result cache hit after the first).
	Fresh bool `json:"fresh,omitempty"`
	// Clusters/Entries are the sweep axes for the registered kernel
	// (defaults {4} and {4,8}).
	Clusters []int `json:"clusters,omitempty"`
	Entries  []int `json:"entries,omitempty"`
}

// Validate checks the trace and applies defaults in place.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("loadgen: trace needs a name")
	}
	switch t.Mode {
	case ModeClosed:
		if t.Clients <= 0 {
			t.Clients = 1
		}
	case ModeOpen:
		if t.QPS <= 0 {
			return fmt.Errorf("loadgen: open-loop trace %q needs qps > 0", t.Name)
		}
	default:
		return fmt.Errorf("loadgen: trace %q mode %q (want %q or %q)", t.Name, t.Mode, ModeClosed, ModeOpen)
	}
	if t.Measure <= 0 {
		return fmt.Errorf("loadgen: trace %q needs measure > 0", t.Name)
	}
	if t.Warmup < 0 || t.Think < 0 {
		return fmt.Errorf("loadgen: trace %q has a negative duration", t.Name)
	}
	if t.Timeout <= 0 {
		t.Timeout = Duration(30 * time.Second)
	}
	if len(t.Classes) == 0 {
		return fmt.Errorf("loadgen: trace %q has no request classes", t.Name)
	}
	seen := map[string]bool{}
	for i := range t.Classes {
		c := &t.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("loadgen: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadgen: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			return fmt.Errorf("loadgen: class %q has negative weight", c.Name)
		}
		if c.Weight == 0 {
			c.Weight = 1
		}
		n := 0
		for _, set := range []bool{c.Explore != nil, c.Run != nil, c.Kernel != nil} {
			if set {
				n++
			}
		}
		if n != 1 {
			return fmt.Errorf("loadgen: class %q must set exactly one of explore, run, kernel", c.Name)
		}
		if c.Async && c.Explore == nil {
			return fmt.Errorf("loadgen: class %q: async applies to explore classes only", c.Name)
		}
		if c.Verify && (c.Explore == nil || c.Async) {
			return fmt.Errorf("loadgen: class %q: verify applies to sync explore classes only", c.Name)
		}
		if c.Explore != nil {
			if c.Explore.Shard != 0 || c.Explore.Shards > 1 {
				return fmt.Errorf("loadgen: class %q: sharded explores are the fleet's job, not a load class", c.Name)
			}
			if f := c.Explore.Format; f != "" && f != "json" {
				return fmt.Errorf("loadgen: class %q: explore format must be json (got %q)", c.Name, f)
			}
		}
		if c.Poll < 0 {
			return fmt.Errorf("loadgen: class %q has negative poll", c.Name)
		}
		if c.Poll == 0 {
			c.Poll = Duration(10 * time.Millisecond)
		}
		if c.Kernel != nil {
			if len(c.Kernel.Clusters) == 0 {
				c.Kernel.Clusters = []int{4}
			}
			if len(c.Kernel.Entries) == 0 {
				c.Kernel.Entries = []int{4, 8}
			}
		}
	}
	return nil
}

// ParseTrace decodes and validates a trace, rejecting unknown fields (a
// typoed knob must fail loudly, not silently shift the workload).
func ParseTrace(b []byte) (*Trace, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("loadgen: parse trace: %v", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mixer
// whose sequential outputs pass statistical tests. One multiply-xorshift
// chain, no state — exactly the cheap deterministic source the schedule
// needs (math/rand is ambient and lint-flagged; this is pure arithmetic).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rand64 derives the decision word for request #seq of stream #stream
// (stream 0 is the open-loop dispatcher; closed-loop client c uses c+1).
func (t *Trace) rand64(stream, seq uint64) uint64 {
	return splitmix64(splitmix64(t.Seed^splitmix64(stream)) + seq)
}

// totalWeight sums class weights (Validate has defaulted them).
func (t *Trace) totalWeight() int {
	w := 0
	for i := range t.Classes {
		w += t.Classes[i].Weight
	}
	return w
}

// classAt picks the class index for request #seq of stream #stream by
// weighted deterministic draw.
func (t *Trace) classAt(stream, seq uint64) int {
	draw := int(t.rand64(stream, seq) % uint64(t.totalWeight()))
	for i := range t.Classes {
		draw -= t.Classes[i].Weight
		if draw < 0 {
			return i
		}
	}
	return len(t.Classes) - 1
}

// kernelSource returns the looplang source a kernel-class request
// registers. Hot classes (Fresh=false) repeat one source per class so every
// request after the first hits the content-addressed caches; fresh classes
// derive a distinct loop name from (seed, stream, seq) so each request
// registers a never-seen kernel and pays the full compile+simulate path.
// The body is the saxpy shape from examples/loops (two unit-stride loads,
// mul, add, store) at a fixed trip count, so cold-path work per request is
// constant.
func (t *Trace) kernelSource(classIdx int, stream, seq uint64) string {
	c := &t.Classes[classIdx]
	var id uint64
	if c.Kernel.Fresh {
		id = t.rand64(stream, seq) // distinct name => distinct content hash
	} else {
		id = splitmix64(t.Seed) + uint64(classIdx) // one source per class
	}
	const trip, elems = 1024, 4096
	return fmt.Sprintf(`loop lg_%016x %d
array x %d 4
array y %d 4
xi = load x 0 4 4
yi = load y 0 4 4
ax = mul xi
s  = int ax yi
store y 0 4 4 s
`, id, trip, elems*4, elems*4)
}

// arrivalOffset is the open-loop schedule: request #i arrives i/qps seconds
// after the run origin. Pure arithmetic on i — replaying a trace replays
// the identical arrival instants.
func arrivalOffset(i int64, qps float64) time.Duration {
	return time.Duration(float64(i) * float64(time.Second) / qps)
}
