package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// newBenchServer stands up the real server on an in-process listener (the
// same engine l0served wires; CI needs no external process).
func newBenchServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{WorkerBudget: 2, MaxConcurrent: 4})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunClosedLoop drives a short closed-loop mix — a verified sync grid,
// a point query and a hot kernel round trip — and checks the artifact: no
// errors, every class measured, byte-stable encode/parse/encode round trip,
// and the table renderer mentioning every class.
func TestRunClosedLoop(t *testing.T) {
	ts := newBenchServer(t)
	tr, err := ParseTrace([]byte(`{
	  "name": "closed-e2e",
	  "seed": 7,
	  "mode": "closed",
	  "clients": 2,
	  "warmup": "100ms",
	  "measure": "500ms",
	  "classes": [
	    {"name": "grid", "weight": 2, "verify": true,
	     "explore": {"benches": ["gsmdec"], "clusters": [4], "entries": [4, 8]}},
	    {"name": "point", "run": {"bench": "gsmdec"}},
	    {"name": "hot", "kernel": {}}
	  ]
	}`))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	rep, err := Run(context.Background(), Options{BaseURL: ts.URL}, tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TotalErrors != 0 || rep.TotalTimeouts != 0 {
		t.Fatalf("errors=%d timeouts=%d (first: %s)", rep.TotalErrors, rep.TotalTimeouts, rep.Total.FirstErr)
	}
	if rep.TotalRequests == 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("no measured throughput: %d requests, %.2f rps", rep.TotalRequests, rep.ThroughputRPS)
	}
	if rep.Total.VerifyFailures != 0 {
		t.Fatalf("verify failures: %d", rep.Total.VerifyFailures)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("report has %d classes, want 3", len(rep.Classes))
	}
	if rep.Total.Latency.P50 <= 0 || rep.Total.Latency.Max < rep.Total.Latency.P50 {
		t.Errorf("implausible latency digest: %+v", rep.Total.Latency)
	}
	if len(rep.ServerBefore) == 0 || len(rep.ServerAfter) == 0 {
		t.Errorf("server counter snapshots missing (before=%d after=%d bytes)",
			len(rep.ServerBefore), len(rep.ServerAfter))
	}

	// Artifact round trip: encode -> parse -> encode must be byte-stable.
	var enc1 bytes.Buffer
	if err := EncodeReport(&enc1, rep); err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	parsed, err := ParseReport(enc1.Bytes())
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	var enc2 bytes.Buffer
	if err := EncodeReport(&enc2, parsed); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
		t.Error("artifact round trip is not byte-stable")
	}

	var table strings.Builder
	if err := RenderReport(&table, rep); err != nil {
		t.Fatalf("RenderReport: %v", err)
	}
	for _, want := range []string{"grid", "point", "hot", "total", "p99"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

// TestRunOpenLoop drives the open-loop scheduler with an async job class
// and a fresh (cold) kernel class: arrivals are paced, latencies measured
// from the scheduled instants, and nothing errors.
func TestRunOpenLoop(t *testing.T) {
	ts := newBenchServer(t)
	tr, err := ParseTrace([]byte(`{
	  "name": "open-e2e",
	  "seed": 11,
	  "mode": "open",
	  "qps": 40,
	  "warmup": "100ms",
	  "measure": "400ms",
	  "classes": [
	    {"name": "job", "async": true, "poll": "5ms",
	     "explore": {"benches": ["gsmdec"], "clusters": [4], "entries": [4]}},
	    {"name": "cold", "kernel": {"fresh": true, "clusters": [4], "entries": [4]}}
	  ]
	}`))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	rep, err := Run(context.Background(), Options{BaseURL: ts.URL}, tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TotalErrors != 0 || rep.TotalTimeouts != 0 {
		t.Fatalf("errors=%d timeouts=%d (first: %s)", rep.TotalErrors, rep.TotalTimeouts, rep.Total.FirstErr)
	}
	// 400ms of measure at 40 qps schedules ~16 arrivals; allow scheduler
	// slack but require a real stream.
	if rep.TotalRequests < 8 {
		t.Fatalf("open loop measured only %d requests", rep.TotalRequests)
	}
	for _, c := range rep.Classes {
		if c.Requests+c.WarmupRequests == 0 {
			t.Errorf("class %q never ran", c.Name)
		}
	}
}

// TestRunReportsServerErrors: a class whose requests fail (unknown
// benchmark) must surface as error counts, not break the run.
func TestRunReportsServerErrors(t *testing.T) {
	ts := newBenchServer(t)
	tr, err := ParseTrace([]byte(`{
	  "name": "errors",
	  "seed": 3,
	  "mode": "closed",
	  "clients": 1,
	  "measure": "200ms",
	  "classes": [
	    {"name": "bad", "run": {"bench": "no-such-bench"}}
	  ]
	}`))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	rep, err := Run(context.Background(), Options{BaseURL: ts.URL}, tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TotalErrors == 0 {
		t.Fatal("unknown benchmark produced no error counts")
	}
	if !strings.Contains(rep.Total.FirstErr, "no-such-bench") {
		t.Errorf("first error %q does not name the bad benchmark", rep.Total.FirstErr)
	}
}
