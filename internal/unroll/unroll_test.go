package unroll

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func streamLoop(t *testing.T, trip int64) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("s", trip)
	a := b.Array("a", 1<<20, 2)
	d := b.Array("d", 1<<20, 2)
	v := b.Load("ld", a, 0, 2, 2)
	x := b.Int("op", v)
	b.Store("st", d, 0, 2, 2, x)
	return b.Build()
}

func TestFactorOneClones(t *testing.T) {
	l := streamLoop(t, 100)
	u, err := ByFactor(l, 1)
	if err != nil {
		t.Fatalf("ByFactor(1): %v", err)
	}
	if u == l {
		t.Errorf("factor 1 must return a copy")
	}
	if len(u.Instrs) != len(l.Instrs) || u.TripCount != l.TripCount {
		t.Errorf("factor 1 changed the loop")
	}
}

func TestUnrollBodyAndTrip(t *testing.T) {
	l := streamLoop(t, 100)
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	if len(u.Instrs) != 12 {
		t.Errorf("instrs = %d, want 12", len(u.Instrs))
	}
	if u.TripCount != 25 {
		t.Errorf("trip = %d, want 25", u.TripCount)
	}
	if u.Unroll != 4 {
		t.Errorf("Unroll = %d, want 4", u.Unroll)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("unrolled loop invalid: %v", err)
	}
}

func TestUnrollRejectsBadFactors(t *testing.T) {
	l := streamLoop(t, 100)
	if _, err := ByFactor(l, 0); err == nil {
		t.Errorf("accepted factor 0")
	}
	if _, err := ByFactor(l, 1000); err == nil {
		t.Errorf("accepted factor > trip count")
	}
	u, _ := ByFactor(l, 2)
	if _, err := ByFactor(u, 2); err == nil {
		t.Errorf("accepted re-unrolling")
	}
}

// addressStream collects the address sequence of instruction `origID`
// (combining all unroll copies in iteration-order).
func addressStream(l *ir.Loop, origID int, origIters int64) []int64 {
	type cp struct {
		in   *ir.Instr
		copy int
	}
	var copies []cp
	for _, in := range l.Instrs {
		if in.OrigID == origID && in.Mem != nil {
			copies = append(copies, cp{in, in.UnrollCopy})
		}
	}
	factor := int64(len(copies))
	var out []int64
	for i := int64(0); i < origIters/factor; i++ {
		for _, c := range copies {
			out = append(out, c.in.Mem.AddrAt(i))
		}
	}
	return out
}

func TestUnrollPreservesAffineAddressStream(t *testing.T) {
	l := streamLoop(t, 64)
	l.Instrs[0].Mem.Array.Base = 1 << 16
	l.Instrs[2].Mem.Array.Base = 1 << 18
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	orig := addressStream(l, 0, 64)
	unrolled := addressStream(u, 0, 64)
	if len(orig) != len(unrolled) {
		t.Fatalf("stream lengths differ: %d vs %d", len(orig), len(unrolled))
	}
	for i := range orig {
		if orig[i] != unrolled[i] {
			t.Fatalf("address %d differs: %d vs %d", i, orig[i], unrolled[i])
		}
	}
}

func TestUnrollPreservesScrambledStream(t *testing.T) {
	b := ir.NewBuilder("scr", 64)
	tab := b.Array("tab", 4096, 4)
	tab.Base = 4096
	b.LoadIndexed("g", tab, 4, 99, ir.NoReg)
	l := b.Build()
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	orig := addressStream(l, 0, 64)
	unrolled := addressStream(u, 0, 64)
	for i := range orig {
		if orig[i] != unrolled[i] {
			t.Fatalf("scrambled stream differs at %d: %d vs %d", i, orig[i], unrolled[i])
		}
	}
}

func TestUnrollPeriodicDivisible(t *testing.T) {
	b := ir.NewBuilder("per", 64)
	a := b.Array("a", 4096, 2)
	a.Base = 1 << 12
	b.LoadPeriodic("ld", a, 0, 2, 2, 16)
	l := b.Build()
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	orig := addressStream(l, 0, 64)
	unrolled := addressStream(u, 0, 64)
	for i := range orig {
		if orig[i] != unrolled[i] {
			t.Fatalf("periodic stream differs at %d", i)
		}
	}
	// Divisible period is rewritten affinely, not with a phase.
	if u.Instrs[0].Mem.PhaseFactor != 0 {
		t.Errorf("divisible period should not need PhaseFactor")
	}
	if u.Instrs[0].Mem.IndexPeriod != 4 {
		t.Errorf("period = %d, want 16/4 = 4", u.Instrs[0].Mem.IndexPeriod)
	}
}

func TestUnrollPeriodicNonDivisible(t *testing.T) {
	b := ir.NewBuilder("per", 60)
	a := b.Array("a", 4096, 2)
	a.Base = 1 << 12
	b.LoadPeriodic("ld", a, 0, 2, 2, 5)
	l := b.Build()
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	orig := addressStream(l, 0, 60)
	unrolled := addressStream(u, 0, 60)
	for i := range orig {
		if orig[i] != unrolled[i] {
			t.Fatalf("non-divisible periodic stream differs at %d", i)
		}
	}
	if u.Instrs[0].Mem.PhaseFactor != 4 {
		t.Errorf("non-divisible period must use PhaseFactor")
	}
}

func TestUnrollRecurrenceRetargeting(t *testing.T) {
	// acc += x with distance 1: after unroll by 4, copy 0 carries from
	// copy 3 at distance 1 and copies 1..3 consume their predecessor in
	// the same iteration.
	b := ir.NewBuilder("rec", 64)
	a := b.Array("a", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.SelfRecurrence("acc", 1, v)
	l := b.Build()
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	var accs []*ir.Instr
	for _, in := range u.Instrs {
		if in.OrigID == 1 {
			accs = append(accs, in)
		}
	}
	if len(accs) != 4 {
		t.Fatalf("acc copies = %d", len(accs))
	}
	if len(accs[0].Carried) != 1 || accs[0].Carried[0].Distance != 1 {
		t.Errorf("copy 0 must carry from the previous iteration: %+v", accs[0].Carried)
	}
	if accs[0].Carried[0].Reg != accs[3].Dst {
		t.Errorf("copy 0 must carry copy 3's value")
	}
	for c := 1; c < 4; c++ {
		if len(accs[c].Carried) != 0 {
			t.Errorf("copy %d should not carry (same-iteration use): %+v", c, accs[c].Carried)
		}
		found := false
		for _, s := range accs[c].Srcs {
			if s == accs[c-1].Dst {
				found = true
			}
		}
		if !found {
			t.Errorf("copy %d must consume copy %d's value", c, c-1)
		}
	}
}

func TestUnrollLongerDistance(t *testing.T) {
	// Distance 2 with factor 4: copy 0 reads copy 2's previous-iteration
	// value (i-2 ≡ copy 2 at distance 1? (0-2) mod 4 = 2, k = (2-0+2)/4 = 1).
	b := ir.NewBuilder("rec2", 64)
	a := b.Array("a", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.SelfRecurrence("acc", 2, v)
	l := b.Build()
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	var accs []*ir.Instr
	for _, in := range u.Instrs {
		if in.OrigID == 1 {
			accs = append(accs, in)
		}
	}
	if len(accs[0].Carried) != 1 || accs[0].Carried[0].Distance != 1 || accs[0].Carried[0].Reg != accs[2].Dst {
		t.Errorf("copy 0 carried use wrong: %+v", accs[0].Carried)
	}
	if len(accs[2].Carried) != 0 {
		t.Errorf("copy 2 should consume copy 0 in the same iteration")
	}
}

func TestUnrollStridesAndOffsets(t *testing.T) {
	l := streamLoop(t, 64)
	u, err := ByFactor(l, 4)
	if err != nil {
		t.Fatalf("ByFactor: %v", err)
	}
	for _, in := range u.Instrs {
		if in.Mem == nil {
			continue
		}
		if in.Mem.Stride != 8 {
			t.Errorf("copy %d stride = %d, want 8", in.UnrollCopy, in.Mem.Stride)
		}
		if want := int64(in.UnrollCopy * 2); in.Mem.Offset != want {
			t.Errorf("copy %d offset = %d, want %d", in.UnrollCopy, in.Mem.Offset, want)
		}
	}
}

func TestUnrollRegistersDisjoint(t *testing.T) {
	l := streamLoop(t, 64)
	err := quick.Check(func(fRaw uint8) bool {
		f := int(fRaw%3)*2 + 2 // 2, 4, 6
		u, err := ByFactor(l, f)
		if err != nil {
			return false
		}
		return u.Validate() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Errorf("unrolled loops invalid: %v", err)
	}
}
