// Package unroll implements loop unrolling (scheduling step 1 of §4.3). The
// compiler chooses between no unrolling and unrolling by N (the cluster
// count); unrolling by N lets the N copies of a unit-stride load map their
// data with INTERLEAVED_MAP across consecutive clusters.
package unroll

import (
	"fmt"

	"repro/internal/ir"
)

// ByFactor returns a new loop whose body is the original body replicated
// factor times, with virtual registers renamed per copy, affine accesses
// advanced by copy·stride, strides multiplied by factor, and loop-carried
// register uses re-targeted to the producing copy. The trip count becomes
// tripCount / factor (remainder iterations are executed by an epilogue the
// model ignores; with the trip counts used here the error is < 0.5 %).
func ByFactor(l *ir.Loop, factor int) (*ir.Loop, error) {
	if factor < 1 {
		return nil, fmt.Errorf("unroll: factor must be >= 1, got %d", factor)
	}
	if l.Unroll != 1 {
		return nil, fmt.Errorf("unroll: loop %q is already unrolled (factor %d)", l.Name, l.Unroll)
	}
	if factor == 1 {
		return l.Clone(), nil
	}
	if int64(factor) > l.TripCount {
		return nil, fmt.Errorf("unroll: factor %d exceeds trip count %d of loop %q", factor, l.TripCount, l.Name)
	}

	body := len(l.Instrs)
	nl := &ir.Loop{
		Name:        l.Name,
		TripCount:   l.TripCount / int64(factor),
		Unroll:      factor,
		Specialized: l.Specialized,
		Instrs:      make([]*ir.Instr, 0, body*factor),
	}

	// Find the highest register so per-copy renames stay disjoint.
	var maxReg ir.Reg
	for _, in := range l.Instrs {
		if in.Dst > maxReg {
			maxReg = in.Dst
		}
		for _, s := range in.Srcs {
			if s > maxReg {
				maxReg = s
			}
		}
	}
	regStride := int(maxReg) + 1
	rename := func(r ir.Reg, copy int) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return r + ir.Reg(copy*regStride)
	}

	for c := 0; c < factor; c++ {
		for _, in := range l.Instrs {
			ni := &ir.Instr{
				ID:         len(nl.Instrs),
				Name:       copyName(in.Name, c),
				Op:         in.Op,
				Dst:        rename(in.Dst, c),
				UnrollCopy: c,
				OrigID:     in.ID,
			}
			for _, s := range in.Srcs {
				ni.Srcs = append(ni.Srcs, rename(s, c))
			}
			for _, cu := range in.Carried {
				addCarried(ni, cu, c, factor, rename)
			}
			if in.Mem != nil {
				ni.Mem = unrollAccess(in.Mem, c, factor)
			}
			nl.Instrs = append(nl.Instrs, ni)
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("unroll: %w", err)
	}
	return nl, nil
}

func copyName(name string, c int) string {
	if name == "" {
		return ""
	}
	return fmt.Sprintf("%s.%d", name, c)
}

// addCarried re-targets one loop-carried use for copy c of the consumer.
// Original iteration i = I·factor + c consumes the value produced at
// iteration i − d = I·factor + c − d, i.e. copy c' = (c−d) mod factor of new
// iteration I − k with k = (d − c + c') / factor.
func addCarried(ni *ir.Instr, cu ir.CarriedUse, c, factor int, rename func(ir.Reg, int) ir.Reg) {
	cp := ((c-cu.Distance)%factor + factor) % factor
	k := (cu.Distance - c + cp) / factor
	r := rename(cu.Reg, cp)
	if k == 0 {
		// Same unrolled iteration: becomes a plain register use of the
		// earlier copy (cp < c is guaranteed when k == 0 and d > 0).
		ni.Srcs = append(ni.Srcs, r)
		return
	}
	ni.Carried = append(ni.Carried, ir.CarriedUse{Reg: r, Distance: k})
}

// unrollAccess rewrites one affine access for copy c of an unroll by factor.
// The plain affine case is rewritten exactly (offset += stride·c, stride ×=
// factor); periodic accesses whose period the factor divides are rewritten
// to a shorter period; everything else keeps its original formula and gains
// a PhaseFactor so the generated address stream is bit-identical to the
// original loop's.
func unrollAccess(m *ir.MemAccess, c, factor int) *ir.MemAccess {
	nm := *m
	switch {
	case m.Scramble != 0 || m.PhaseFactor > 1:
		nm.PhaseFactor = factor
		nm.PhaseOffset = c
	case m.IndexPeriod > 1 && m.IndexPeriod%factor == 0:
		nm.Offset = m.Offset + m.Stride*int64(c)
		nm.Stride = m.Stride * int64(factor)
		nm.IndexPeriod = m.IndexPeriod / factor
	case m.IndexPeriod > 1:
		nm.PhaseFactor = factor
		nm.PhaseOffset = c
	default:
		nm.Offset = m.Offset + m.Stride*int64(c)
		nm.Stride = m.Stride * int64(factor)
	}
	return &nm
}
