// Package interleaved models the word-interleaved distributed-cache baseline
// of §5.3 (Gibert, Sánchez & González, MICRO-35): the L1 data cache is split
// into per-cluster banks with a static word-granularity address
// interleaving, so every word has exactly one home cluster. Accesses from
// the home cluster are fast; accesses from any other cluster cross the
// inter-cluster network. Each cluster also has a small Attraction Buffer
// that caches remotely-mapped words, recovering part of the lost locality —
// but it is hardware-managed, inflexible, and misses whenever the static
// mapping fights the access pattern (e.g. sub-word element streams).
package interleaved

import (
	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Params are the timing assumptions for the word-interleaved hierarchy.
type Params struct {
	// WordBytes is the interleaving granularity.
	WordBytes int
	// LocalLatency is a load-use hit in the cluster's own bank (or the
	// Attraction Buffer).
	LocalLatency int
	// RemoteLatency is a round trip to another cluster's bank.
	RemoteLatency int
	// MemLatency is the additional L2 penalty.
	MemLatency int
	// AttractionEntries is the per-cluster Attraction Buffer capacity
	// (the paper compares against 8-entry buffers).
	AttractionEntries int
}

// DefaultParams returns the configuration used in the Figure 7 reproduction.
func DefaultParams() Params {
	return Params{
		WordBytes:         4,
		LocalLatency:      2,
		RemoteLatency:     6,
		MemLatency:        10,
		AttractionEntries: 8,
	}
}

// abEntry is one Attraction Buffer word.
type abEntry struct {
	valid bool
	word  int64 // word-aligned address
	stamp int64
}

// Model is the word-interleaved memory system; it implements the execution
// engine's MemoryModel interface.
type Model struct {
	cfg    arch.Config
	params Params
	// tags is the union tag store: the distributed banks hold exactly the
	// words of the blocks present in L1, so hit/miss behaviour matches a
	// unified cache of the same total capacity; distribution only changes
	// which cluster answers.
	tags  *mem.Cache
	abs   [][]abEntry
	clock int64
	Stats Stats
}

// Stats counts locality outcomes.
type Stats struct {
	LocalHits      int64
	AttractionHits int64
	RemoteHits     int64
	L1Misses       int64
	Stores         int64
	ABInvalidates  int64
}

// LocalRate is the fraction of loads served locally (own bank or AB).
func (s *Stats) LocalRate() float64 {
	t := s.LocalHits + s.AttractionHits + s.RemoteHits + s.L1Misses
	if t == 0 {
		return 1
	}
	return float64(s.LocalHits+s.AttractionHits) / float64(t)
}

// New builds the word-interleaved hierarchy for a configuration.
func New(cfg arch.Config, params Params) *Model {
	m := &Model{
		cfg:    cfg,
		params: params,
		tags:   mem.NewCache(cfg.L1SizeBytes, cfg.L1BlockBytes, cfg.L1Assoc),
		abs:    make([][]abEntry, cfg.Clusters),
	}
	for c := range m.abs {
		m.abs[c] = make([]abEntry, params.AttractionEntries)
	}
	return m
}

// HomeCluster returns the cluster owning the word containing addr.
func (m *Model) HomeCluster(addr int64) int {
	return int((addr / int64(m.params.WordBytes)) % int64(m.cfg.Clusters))
}

// HomeClusterOf returns the home cluster of a memory instruction's
// iteration-0 address, used by the locality-aware scheduling heuristic.
func (m *Model) HomeClusterOf(in *ir.Instr) int {
	if in.Mem == nil {
		return -1
	}
	return m.HomeCluster(in.Mem.AddrAt(0))
}

// StaysLocal reports whether the access keeps the same home cluster across
// iterations (its stride is a multiple of the full interleave span), which
// is when a locality-aware placement can make every access local.
func (m *Model) StaysLocal(in *ir.Instr) bool {
	if in.Mem == nil || !in.Mem.StrideKnown {
		return false
	}
	span := int64(m.params.WordBytes) * int64(m.cfg.Clusters)
	return in.Mem.Stride%span == 0 && in.Mem.Width <= m.params.WordBytes
}

func (m *Model) abLookup(cluster int, word int64) *abEntry {
	for i := range m.abs[cluster] {
		e := &m.abs[cluster][i]
		if e.valid && e.word == word {
			return e
		}
	}
	return nil
}

func (m *Model) abInsert(cluster int, word int64) {
	m.clock++
	victim, oldest := 0, int64(1<<62-1)
	for i := range m.abs[cluster] {
		e := &m.abs[cluster][i]
		if !e.valid {
			victim = i
			break
		}
		if e.stamp < oldest {
			victim, oldest = i, e.stamp
		}
	}
	m.abs[cluster][victim] = abEntry{valid: true, word: word, stamp: m.clock}
}

func (m *Model) wordAlign(addr int64) int64 {
	return addr - addr%int64(m.params.WordBytes)
}

// Load implements vliw.MemoryModel.
func (m *Model) Load(cluster int, addr int64, width int, _ arch.Hints, t int64) int64 {
	word := m.wordAlign(addr)
	home := m.HomeCluster(addr)
	hit := m.tags.Lookup(addr)
	if !hit {
		m.tags.Fill(m.tags.BlockAddr(addr))
		m.Stats.L1Misses++
		lat := int64(m.params.LocalLatency) + int64(m.params.MemLatency)
		if home != cluster {
			lat = int64(m.params.RemoteLatency) + int64(m.params.MemLatency)
		}
		return t + lat
	}
	if home == cluster {
		m.Stats.LocalHits++
		return t + int64(m.params.LocalLatency)
	}
	if e := m.abLookup(cluster, word); e != nil {
		m.clock++
		e.stamp = m.clock
		m.Stats.AttractionHits++
		return t + int64(m.params.LocalLatency)
	}
	m.Stats.RemoteHits++
	m.abInsert(cluster, word)
	return t + int64(m.params.RemoteLatency)
}

// Store implements vliw.MemoryModel: the word's home bank is updated; stale
// Attraction Buffer copies everywhere are invalidated (the MICRO-35 compiler
// guarantees coherence by scheduling; the invalidation here keeps the timing
// model honest at no cost).
func (m *Model) Store(cluster int, addr int64, width int, _ arch.Hints, _ bool, t int64) {
	m.Stats.Stores++
	if !m.tags.Lookup(addr) {
		m.Stats.L1Misses++ // write-through to L2, no allocate
	}
	word := m.wordAlign(addr)
	for c := range m.abs {
		if e := m.abLookup(c, word); e != nil {
			e.valid = false
			m.Stats.ABInvalidates++
		}
	}
}

// Prefetch is a no-op: the baseline has no software prefetch into the banks.
func (m *Model) Prefetch(int, int64, int64) {}

// LoopEnd is free for this baseline.
func (m *Model) LoopEnd() int64 { return 0 }
