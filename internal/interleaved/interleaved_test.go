package interleaved

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

func model(t *testing.T) *Model {
	t.Helper()
	return New(arch.MICRO36Config(), DefaultParams())
}

func TestHomeCluster(t *testing.T) {
	m := model(t)
	// 4-byte words interleave round-robin.
	for addr, want := range map[int64]int{0: 0, 4: 1, 8: 2, 12: 3, 16: 0, 6: 1} {
		if got := m.HomeCluster(addr); got != want {
			t.Errorf("HomeCluster(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	m := model(t)
	p := DefaultParams()
	m.Load(0, 0, 4, arch.Hints{}, 0) // warm the L1 tags
	local := m.Load(0, 0, 4, arch.Hints{}, 100)
	if local-100 != int64(p.LocalLatency) {
		t.Errorf("local access latency = %d, want %d", local-100, p.LocalLatency)
	}
	remote := m.Load(1, 0, 4, arch.Hints{}, 200)
	if remote-200 != int64(p.RemoteLatency) {
		t.Errorf("remote access latency = %d, want %d", remote-200, p.RemoteLatency)
	}
}

func TestAttractionBufferCapturesRemoteReuse(t *testing.T) {
	m := model(t)
	p := DefaultParams()
	m.Load(1, 0, 4, arch.Hints{}, 0)        // L1 fill
	m.Load(1, 0, 4, arch.Hints{}, 100)      // remote; allocates in AB
	r := m.Load(1, 0, 4, arch.Hints{}, 200) // AB hit
	if r-200 != int64(p.LocalLatency) {
		t.Errorf("AB hit latency = %d, want %d", r-200, p.LocalLatency)
	}
	if m.Stats.AttractionHits != 1 {
		t.Errorf("attraction hits = %d, want 1", m.Stats.AttractionHits)
	}
}

func TestAttractionBufferLRU(t *testing.T) {
	m := model(t)
	// Fill the 8-entry AB of cluster 1 with remote words, then one more.
	for i := int64(0); i < 9; i++ {
		addr := i * 16                             // all home cluster 0 (word index multiple of 4)
		m.Load(1, addr, 4, arch.Hints{}, 0)        // L1 fill
		m.Load(1, addr, 4, arch.Hints{}, 100+i*10) // AB allocate
	}
	// The first word must have been evicted.
	m.Stats = Stats{}
	m.Load(1, 0, 4, arch.Hints{}, 1000)
	if m.Stats.AttractionHits != 0 || m.Stats.RemoteHits != 1 {
		t.Errorf("evicted AB word still hit: %+v", m.Stats)
	}
}

func TestStoreInvalidatesAttractionCopies(t *testing.T) {
	m := model(t)
	m.Load(1, 0, 4, arch.Hints{}, 0)
	m.Load(1, 0, 4, arch.Hints{}, 100) // AB copy in cluster 1
	m.Store(2, 0, 4, arch.Hints{}, false, 200)
	if m.Stats.ABInvalidates != 1 {
		t.Errorf("AB invalidations = %d, want 1", m.Stats.ABInvalidates)
	}
	m.Stats = Stats{}
	m.Load(1, 0, 4, arch.Hints{}, 300)
	if m.Stats.AttractionHits != 0 {
		t.Errorf("stale AB copy survived a store")
	}
}

func TestL1MissPenalty(t *testing.T) {
	m := model(t)
	p := DefaultParams()
	r := m.Load(0, 0, 4, arch.Hints{}, 100)
	if r-100 != int64(p.LocalLatency+p.MemLatency) {
		t.Errorf("local L1 miss = %d, want %d", r-100, p.LocalLatency+p.MemLatency)
	}
	r = m.Load(1, 1<<16, 4, arch.Hints{}, 200) // remote home, cold
	if r-200 != int64(p.RemoteLatency+p.MemLatency) {
		t.Errorf("remote L1 miss = %d, want %d", r-200, p.RemoteLatency+p.MemLatency)
	}
}

func TestStaysLocal(t *testing.T) {
	m := model(t)
	b := ir.NewBuilder("t", 64)
	a := b.Array("a", 4096, 4)
	v1 := b.Load("stride16", a, 0, 16, 4) // full interleave span: stays
	v2 := b.Load("stride4", a, 0, 4, 4)   // rotates through banks
	b.Int("use", v1, v2)
	tab := b.Array("tab", 4096, 4)
	v3 := b.LoadIndexed("gather", tab, 4, 9, ir.NoReg)
	b.Int("use2", v3)
	l := b.Build()
	if !m.StaysLocal(l.Instrs[0]) {
		t.Errorf("stride-16 word access must stay local")
	}
	if m.StaysLocal(l.Instrs[1]) {
		t.Errorf("stride-4 access rotates banks")
	}
	if m.StaysLocal(l.Instrs[3]) {
		t.Errorf("gather cannot stay local")
	}
}

func TestHomeClusterOf(t *testing.T) {
	m := model(t)
	b := ir.NewBuilder("t", 64)
	a := b.Array("a", 4096, 4)
	a.Base = 8 // word index 2 -> home cluster 2
	v := b.Load("ld", a, 0, 16, 4)
	b.Int("use", v)
	l := b.Build()
	if got := m.HomeClusterOf(l.Instrs[0]); got != 2 {
		t.Errorf("HomeClusterOf = %d, want 2", got)
	}
	if got := m.HomeClusterOf(l.Instrs[1]); got != -1 {
		t.Errorf("HomeClusterOf(non-mem) = %d, want -1", got)
	}
}

func TestSubWordAccessDefeatsInterleaving(t *testing.T) {
	// 2-byte elements: consecutive elements share words/banks in a way a
	// static word interleave cannot localise for unrolled copies.
	m := model(t)
	b := ir.NewBuilder("t", 64)
	a := b.Array("a", 4096, 2)
	v := b.Load("ld", a, 0, 2, 2)
	b.Int("use", v)
	l := b.Build()
	if m.StaysLocal(l.Instrs[0]) {
		t.Errorf("2-byte stride-2 access must not count as bank-stable")
	}
}

func TestLoopEndFree(t *testing.T) {
	m := model(t)
	if m.LoopEnd() != 0 {
		t.Errorf("interleaved LoopEnd must cost nothing")
	}
}
