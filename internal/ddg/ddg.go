// Package ddg builds and analyses the data-dependence graph of one loop:
// register flow edges (including loop-carried recurrences), externally
// supplied memory-dependence edges, the resource-constrained and
// recurrence-constrained minimum initiation intervals (ResMII / RecMII), and
// the Estart/Lstart/slack values the scheduler uses to rank instruction
// criticality (§4.3 step ➋).
//
// Edge latencies of register edges depend on the producer's assigned latency
// (a load scheduled with the L0 latency propagates a shorter edge than one
// scheduled with the L1 latency), so the graph holds a mutable per-producer
// latency table that the scheduler updates as it commits decisions.
package ddg

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/ir"
)

// DepKind distinguishes the source of a dependence edge.
type DepKind uint8

const (
	// DepReg is a register true dependence (producer → consumer).
	DepReg DepKind = iota
	// DepMem is a memory dependence supplied by alias analysis.
	DepMem
)

func (k DepKind) String() string {
	switch k {
	case DepReg:
		return "reg"
	case DepMem:
		return "mem"
	}
	return fmt.Sprintf("DepKind(%d)", uint8(k))
}

// Edge is one dependence: To must issue no earlier than
// issue(From) + Latency(From-edge) − II·Distance.
type Edge struct {
	From, To int
	Distance int
	Kind     DepKind
	// FixedLat is the edge latency for DepMem edges (issue-order
	// constraints). DepReg edges take the producer's current latency
	// from the graph's latency table instead.
	FixedLat int
}

// Graph is the dependence graph of one loop.
type Graph struct {
	Loop  *ir.Loop
	Edges []Edge
	// out and in hold edge indices per node.
	out, in [][]int
	// succs and preds are deduplicated neighbour lists per node, built
	// lazily because Preds/Succs sit on the SMS ordering hot path and
	// re-deriving them from edge lists on every call dominated profiles.
	// addEdge invalidates them.
	succs, preds [][]int
	// prodLat is the current latency of each instruction's result,
	// indexed by instruction ID. The scheduler mutates load entries as
	// it flips instructions between the L0 and L1 latency.
	prodLat []int
}

// LatencyFn maps an instruction to the latency of its result. The scheduler
// supplies one that returns the L0 or L1 latency for loads.
type LatencyFn func(*ir.Instr) int

// DefaultLatencies returns a LatencyFn using opcode default latencies and
// the given load latency for every load.
func DefaultLatencies(loadLat int) LatencyFn {
	return func(in *ir.Instr) int {
		if in.Op == ir.OpLoad {
			return loadLat
		}
		return in.Op.DefaultLatency()
	}
}

// Build constructs the graph: register edges derived from the loop body and
// memory edges appended from memDeps (typically alias.MemEdges).
func Build(l *ir.Loop, lat LatencyFn, memDeps []Edge) *Graph {
	n := len(l.Instrs)
	g := &Graph{
		Loop:    l,
		out:     make([][]int, n),
		in:      make([][]int, n),
		prodLat: make([]int, n),
	}
	for i, in := range l.Instrs {
		g.prodLat[i] = lat(in)
	}
	defs := make(map[ir.Reg]int, n)
	for _, in := range l.Instrs {
		if in.Dst != ir.NoReg {
			defs[in.Dst] = in.ID
		}
	}
	for _, in := range l.Instrs {
		for _, s := range in.Srcs {
			g.addEdge(Edge{From: defs[s], To: in.ID, Distance: 0, Kind: DepReg})
		}
		for _, c := range in.Carried {
			g.addEdge(Edge{From: defs[c.Reg], To: in.ID, Distance: c.Distance, Kind: DepReg})
		}
	}
	for _, e := range memDeps {
		if e.Kind != DepMem {
			e.Kind = DepMem
		}
		if e.FixedLat == 0 {
			e.FixedLat = 1
		}
		g.addEdge(e)
	}
	return g
}

func (g *Graph) addEdge(e Edge) {
	idx := len(g.Edges)
	g.Edges = append(g.Edges, e)
	g.out[e.From] = append(g.out[e.From], idx)
	g.in[e.To] = append(g.in[e.To], idx)
	g.succs, g.preds = nil, nil
}

// buildAdjacency materialises the deduplicated neighbour lists (same node
// order as deriving them from the edge lists on the fly).
func (g *Graph) buildAdjacency() {
	n := g.N()
	g.succs = make([][]int, n)
	g.preds = make([][]int, n)
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	for id := 0; id < n; id++ {
		for _, ei := range g.out[id] {
			if t := g.Edges[ei].To; seen[t] != id {
				seen[t] = id
				g.succs[id] = append(g.succs[id], t)
			}
		}
	}
	for i := range seen {
		seen[i] = -1
	}
	for id := 0; id < n; id++ {
		for _, ei := range g.in[id] {
			if f := g.Edges[ei].From; seen[f] != id {
				seen[f] = id
				g.preds[id] = append(g.preds[id], f)
			}
		}
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Loop.Instrs) }

// OutEdges returns the indices of edges leaving node id.
func (g *Graph) OutEdges(id int) []int { return g.out[id] }

// InEdges returns the indices of edges entering node id.
func (g *Graph) InEdges(id int) []int { return g.in[id] }

// Latency returns the effective latency of edge index ei.
func (g *Graph) Latency(ei int) int {
	e := g.Edges[ei]
	if e.Kind == DepReg {
		return g.prodLat[e.From]
	}
	return e.FixedLat
}

// ProducerLatency returns the current result latency of instruction id.
func (g *Graph) ProducerLatency(id int) int { return g.prodLat[id] }

// SetProducerLatency updates the result latency of instruction id; all its
// outgoing register edges now use the new value.
func (g *Graph) SetProducerLatency(id, lat int) { g.prodLat[id] = lat }

// ResMII returns the resource-constrained minimum initiation interval for a
// machine configuration: for every functional-unit class, the number of loop
// operations needing that class divided by the machine-wide unit count.
func (g *Graph) ResMII(cfg arch.Config) int {
	var need [arch.NumUnitKinds]int
	for _, in := range g.Loop.Instrs {
		need[UnitFor(in.Op)]++
	}
	mii := 1
	for k := 0; k < arch.NumUnitKinds; k++ {
		total := cfg.UnitsPerCluster[k] * cfg.Clusters
		if need[k] == 0 {
			continue
		}
		if total == 0 {
			return math.MaxInt32 // unschedulable on this machine
		}
		if v := ceilDiv(need[k], total); v > mii {
			mii = v
		}
	}
	return mii
}

// UnitFor maps an opcode to the functional-unit class that executes it.
func UnitFor(op ir.Opcode) arch.UnitKind {
	switch op {
	case ir.OpLoad, ir.OpStore, ir.OpPrefetch, ir.OpInval:
		return arch.UnitMem
	case ir.OpFPALU, ir.OpFPMul:
		return arch.UnitFP
	default:
		return arch.UnitInt
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// HasPositiveCycle reports whether the constraint graph with edge weights
// latency − II·distance contains a positive-weight cycle, i.e. whether II is
// infeasible for the recurrences.
func (g *Graph) HasPositiveCycle(ii int) bool {
	n := g.N()
	dist := make([]int64, n) // longest-path estimates from a virtual source
	for iter := 0; iter < n; iter++ {
		changed := false
		for ei, e := range g.Edges {
			w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// One more relaxation round: any further improvement implies a
	// positive cycle.
	for ei, e := range g.Edges {
		w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
		if dist[e.From]+w > dist[e.To] {
			return true
		}
	}
	return false
}

// RecMII returns the recurrence-constrained minimum initiation interval: the
// smallest II for which no positive-weight cycle exists. The search is a
// linear scan from 1; recurrence cycles in media kernels are short so the
// answer is small.
func (g *Graph) RecMII() int {
	// Upper bound: sum of all edge latencies is always feasible.
	hi := 1
	for ei := range g.Edges {
		hi += g.Latency(ei)
	}
	for ii := 1; ii <= hi; ii++ {
		if !g.HasPositiveCycle(ii) {
			return ii
		}
	}
	return hi
}

// MII returns max(ResMII, RecMII).
func (g *Graph) MII(cfg arch.Config) int {
	r := g.ResMII(cfg)
	if rec := g.RecMII(); rec > r {
		return rec
	}
	return r
}

// Estart returns, for each node, the earliest start cycle consistent with
// the dependence constraints at initiation interval ii (longest path from a
// virtual source). II must be feasible (no positive cycles) or the result is
// clamped after N iterations.
func (g *Graph) Estart(ii int) []int {
	n := g.N()
	est := make([]int64, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for ei, e := range g.Edges {
			w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
			if d := est[e.From] + w; d > est[e.To] {
				est[e.To] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int, n)
	for i, v := range est {
		if v < 0 {
			v = 0
		}
		out[i] = int(v)
	}
	return out
}

// Lstart returns, for each node, the latest start cycle such that every
// successor constraint can still be met within the schedule horizon (the
// maximum Estart). Nodes without successors sit at the horizon.
func (g *Graph) Lstart(ii int) []int {
	return g.lstartFrom(ii, g.Estart(ii))
}

// EstartLstart returns both bounds with a single forward pass shared
// between them (callers needing both — the SMS ordering runs once per II
// candidate — would otherwise pay the Estart relaxation twice).
func (g *Graph) EstartLstart(ii int) (est, lst []int) {
	est = g.Estart(ii)
	return est, g.lstartFrom(ii, est)
}

// lstartFrom computes Lstart from an already-computed Estart, sparing the
// duplicate forward pass when the caller needs both (Slack).
func (g *Graph) lstartFrom(ii int, est []int) []int {
	horizon := 0
	for _, v := range est {
		if v > horizon {
			horizon = v
		}
	}
	n := g.N()
	lst := make([]int64, n)
	for i := range lst {
		lst[i] = int64(horizon)
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for ei, e := range g.Edges {
			w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
			if d := lst[e.To] - w; d < lst[e.From] {
				lst[e.From] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int, n)
	for i, v := range lst {
		if v < int64(est[i]) {
			v = int64(est[i]) // cycles pin critical nodes: no slack
		}
		out[i] = int(v)
	}
	return out
}

// Slack returns Lstart − Estart per node at initiation interval ii: the
// criticality measure of §4.3 (smaller slack = more critical).
func (g *Graph) Slack(ii int) []int {
	est := g.Estart(ii)
	lst := g.lstartFrom(ii, est)
	out := make([]int, g.N())
	for i := range out {
		out[i] = lst[i] - est[i]
	}
	return out
}

// CriticalCycle returns one dependence cycle that binds the RecMII (the
// nodes of a cycle whose latency/distance ratio equals RecMII), or nil when
// no recurrence constrains the loop. Schedulers and diagnostics use it to
// explain where a loop's II comes from.
func (g *Graph) CriticalCycle() []int {
	rec := g.RecMII()
	if rec <= 1 {
		return nil
	}
	// At II = RecMII−1 a positive cycle exists; recover one by tracking
	// predecessors during relaxation and walking the loop.
	ii := rec - 1
	n := g.N()
	dist := make([]int64, n)
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	var last int = -1
	for iter := 0; iter < n; iter++ {
		changed := false
		for ei, e := range g.Edges {
			w := int64(g.Latency(ei)) - int64(ii)*int64(e.Distance)
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				pred[e.To] = e.From
				changed = true
				last = e.To
			}
		}
		if !changed {
			return nil
		}
	}
	if last == -1 {
		return nil
	}
	// Walk back n steps to land inside the cycle, then collect it.
	v := last
	for i := 0; i < n; i++ {
		v = pred[v]
	}
	var cycle []int
	seen := map[int]bool{}
	for u := v; !seen[u]; u = pred[u] {
		seen[u] = true
		cycle = append(cycle, u)
	}
	// Reverse into dependence order.
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// Preds returns the distinct predecessor node IDs of id. The returned slice
// is shared cache state and must not be mutated.
func (g *Graph) Preds(id int) []int {
	if g.preds == nil {
		g.buildAdjacency()
	}
	return g.preds[id]
}

// Succs returns the distinct successor node IDs of id. The returned slice
// is shared cache state and must not be mutated.
func (g *Graph) Succs(id int) []int {
	if g.succs == nil {
		g.buildAdjacency()
	}
	return g.succs[id]
}
