package ddg

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/ir"
)

func chainLoop(t *testing.T) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("chain", 64)
	a := b.Array("a", 4096, 4)
	d := b.Array("d", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	x := b.Int("op1", v)
	y := b.Int("op2", x)
	b.Store("st", d, 0, 4, 4, y)
	return b.Build()
}

func recLoop(t *testing.T, dist int) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("rec", 64)
	a := b.Array("a", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.SelfRecurrence("acc", dist, v)
	return b.Build()
}

func TestRegisterEdges(t *testing.T) {
	l := chainLoop(t)
	g := Build(l, DefaultLatencies(6), nil)
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3 (ld→op1, op1→op2, op2→st)", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Kind != DepReg || e.Distance != 0 {
			t.Errorf("unexpected edge %+v", e)
		}
	}
	// Load's outgoing edge latency is the load latency.
	if g.Latency(g.OutEdges(0)[0]) != 6 {
		t.Errorf("load edge latency = %d, want 6", g.Latency(g.OutEdges(0)[0]))
	}
}

func TestSetProducerLatencyChangesEdges(t *testing.T) {
	l := chainLoop(t)
	g := Build(l, DefaultLatencies(6), nil)
	g.SetProducerLatency(0, 1)
	if g.Latency(g.OutEdges(0)[0]) != 1 {
		t.Errorf("edge latency after SetProducerLatency = %d, want 1", g.Latency(g.OutEdges(0)[0]))
	}
}

func TestCarriedEdgeDistance(t *testing.T) {
	l := recLoop(t, 3)
	g := Build(l, DefaultLatencies(6), nil)
	found := false
	for _, e := range g.Edges {
		if e.From == 1 && e.To == 1 && e.Distance == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing self edge with distance 3")
	}
}

func TestResMII(t *testing.T) {
	cfg := arch.MICRO36Config()
	// 8 memory ops on 4 memory units -> ResMII 2.
	b := ir.NewBuilder("mem8", 64)
	a := b.Array("a", 65536, 4)
	for i := 0; i < 8; i++ {
		b.Load("ld", a, int64(i*512), 4, 4)
	}
	g := Build(b.Build(), DefaultLatencies(6), nil)
	if got := g.ResMII(cfg); got != 2 {
		t.Errorf("ResMII = %d, want 2", got)
	}
}

func TestRecMIIScalesWithLatency(t *testing.T) {
	l := recLoop(t, 1)
	// The recurrence is acc->acc (latency 1, distance 1): RecMII 1.
	g := Build(l, DefaultLatencies(6), nil)
	if got := g.RecMII(); got != 1 {
		t.Errorf("RecMII = %d, want 1", got)
	}
	// Distance 2 halves the constraint (already 1 here).
	l2 := recLoop(t, 2)
	g2 := Build(l2, DefaultLatencies(6), nil)
	if got := g2.RecMII(); got != 1 {
		t.Errorf("RecMII(dist 2) = %d, want 1", got)
	}
}

func TestMemoryRecurrenceRecMII(t *testing.T) {
	// load -> op -> store -> (mem, d=1) -> load: RecMII = loadLat + 2.
	b := ir.NewBuilder("memrec", 64)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 0, 4)
	x := b.Int("f", v)
	b.Store("st", a, 0, 0, 4, x)
	l := b.Build()
	mem := []Edge{
		{From: 0, To: 2, Distance: 0, Kind: DepMem, FixedLat: 1},
		{From: 2, To: 0, Distance: 1, Kind: DepMem, FixedLat: 1},
	}
	g6 := Build(l, DefaultLatencies(6), mem)
	if got := g6.RecMII(); got != 8 {
		t.Errorf("RecMII at L1 latency = %d, want 8", got)
	}
	g1 := Build(l, DefaultLatencies(1), mem)
	if got := g1.RecMII(); got != 3 {
		t.Errorf("RecMII at L0 latency = %d, want 3", got)
	}
}

func TestHasPositiveCycle(t *testing.T) {
	l := recLoop(t, 1)
	g := Build(l, DefaultLatencies(6), nil)
	// Make the self edge latency 5 by adding a fake mem edge cycle.
	g2 := Build(l, DefaultLatencies(6), []Edge{
		{From: 1, To: 0, Distance: 1, Kind: DepMem, FixedLat: 1},
	})
	// Cycle: ld(6) -> acc, acc -(1,d1)-> ld: latency 7, distance 1.
	if !g2.HasPositiveCycle(6) {
		t.Errorf("II=6 should be infeasible for a 7-cycle distance-1 recurrence")
	}
	if g2.HasPositiveCycle(7) {
		t.Errorf("II=7 should be feasible")
	}
	_ = g
}

func TestEstartRespectsChain(t *testing.T) {
	l := chainLoop(t)
	g := Build(l, DefaultLatencies(6), nil)
	est := g.Estart(4)
	want := []int{0, 6, 7, 8}
	for i, w := range want {
		if est[i] != w {
			t.Errorf("Estart[%d] = %d, want %d", i, est[i], w)
		}
	}
}

func TestSlackIdentifiesCriticalPath(t *testing.T) {
	// Two parallel chains into one store: the longer chain has less slack.
	b := ir.NewBuilder("slack", 64)
	a := b.Array("a", 4096, 4)
	d := b.Array("d", 4096, 4)
	v1 := b.Load("ld1", a, 0, 4, 4)
	long1 := b.Int("l1", v1)
	long2 := b.Int("l2", long1)
	v2 := b.Load("ld2", a, 2048, 4, 4)
	sum := b.Int("sum", long2, v2)
	b.Store("st", d, 0, 4, 4, sum)
	g := Build(b.Build(), DefaultLatencies(6), nil)
	slack := g.Slack(4)
	if slack[0] >= slack[3] {
		t.Errorf("long-chain load slack (%d) should be < short-chain load slack (%d)", slack[0], slack[3])
	}
}

func TestLstartNotBelowEstart(t *testing.T) {
	l := recLoop(t, 1)
	g := Build(l, DefaultLatencies(6), nil)
	err := quick.Check(func(iiRaw uint8) bool {
		ii := int(iiRaw%8) + 1
		est := g.Estart(ii)
		lst := g.Lstart(ii)
		for i := range est {
			if lst[i] < est[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Errorf("Lstart < Estart: %v", err)
	}
}

func TestPredsSuccsDeduplicate(t *testing.T) {
	// Two edges between the same pair (value used twice).
	b := ir.NewBuilder("dup", 64)
	a := b.Array("a", 4096, 4)
	v := b.Load("ld", a, 0, 4, 4)
	b.Int("both", v, v)
	g := Build(b.Build(), DefaultLatencies(6), nil)
	if got := len(g.Succs(0)); got != 1 {
		t.Errorf("Succs dedup failed: %d", got)
	}
	if got := len(g.Preds(1)); got != 1 {
		t.Errorf("Preds dedup failed: %d", got)
	}
}

func TestUnitFor(t *testing.T) {
	cases := map[ir.Opcode]arch.UnitKind{
		ir.OpLoad:     arch.UnitMem,
		ir.OpStore:    arch.UnitMem,
		ir.OpPrefetch: arch.UnitMem,
		ir.OpInval:    arch.UnitMem,
		ir.OpFPALU:    arch.UnitFP,
		ir.OpFPMul:    arch.UnitFP,
		ir.OpIntALU:   arch.UnitInt,
		ir.OpIntMul:   arch.UnitInt,
		ir.OpComm:     arch.UnitInt,
	}
	for op, want := range cases {
		if got := UnitFor(op); got != want {
			t.Errorf("UnitFor(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestMIIIsMaxOfBounds(t *testing.T) {
	cfg := arch.MICRO36Config()
	l := recLoop(t, 1)
	g := Build(l, DefaultLatencies(6), []Edge{
		{From: 1, To: 0, Distance: 1, Kind: DepMem, FixedLat: 1},
	})
	res, rec := g.ResMII(cfg), g.RecMII()
	mii := g.MII(cfg)
	if mii < res || mii < rec {
		t.Errorf("MII %d below ResMII %d or RecMII %d", mii, res, rec)
	}
}

func TestCriticalCycleFindsMemoryRecurrence(t *testing.T) {
	b := ir.NewBuilder("memrec", 64)
	a := b.Array("a", 64, 4)
	v := b.Load("ld", a, 0, 0, 4)
	x := b.Int("f", v)
	b.Store("st", a, 0, 0, 4, x)
	l := b.Build()
	mem := []Edge{
		{From: 0, To: 2, Distance: 0, Kind: DepMem, FixedLat: 1},
		{From: 2, To: 0, Distance: 1, Kind: DepMem, FixedLat: 1},
	}
	g := Build(l, DefaultLatencies(6), mem)
	cyc := g.CriticalCycle()
	if len(cyc) != 3 {
		t.Fatalf("critical cycle = %v, want the 3-node load→f→store loop", cyc)
	}
	seen := map[int]bool{}
	for _, v := range cyc {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("cycle %v does not cover the recurrence", cyc)
	}
}

func TestCriticalCycleNilForAcyclic(t *testing.T) {
	l := chainLoop(t)
	g := Build(l, DefaultLatencies(6), nil)
	if cyc := g.CriticalCycle(); cyc != nil {
		t.Errorf("acyclic graph returned cycle %v", cyc)
	}
}
