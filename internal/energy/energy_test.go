package energy

import (
	"testing"

	"repro/internal/mem"
)

func TestFromStatsZero(t *testing.T) {
	if e := FromStats(&mem.Stats{}, DefaultParams()); e != 0 {
		t.Errorf("empty stats energy = %v", e)
	}
}

func TestBreakdownMatchesTotal(t *testing.T) {
	st := &mem.Stats{
		L0Hits: 100, L0Misses: 10,
		L1Hits: 50, L1Misses: 5,
		BusRequests:          60,
		LinearSubblocks:      12,
		InterleavedSubblocks: 8,
	}
	p := DefaultParams()
	b := BreakdownFromStats(st, p)
	if diff := b.Total() - FromStats(st, p); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown total %v != FromStats %v", b.Total(), FromStats(st, p))
	}
}

func TestL0HitsCheaperThanL1(t *testing.T) {
	p := DefaultParams()
	// The same 100 loads served by L0 vs by L1 (plus the bus they need).
	l0Path := &mem.Stats{L0Hits: 100}
	l1Path := &mem.Stats{L1Hits: 100, BusRequests: 100}
	if FromStats(l0Path, p) >= FromStats(l1Path, p) {
		t.Errorf("L0-served loads must cost less: %v vs %v",
			FromStats(l0Path, p), FromStats(l1Path, p))
	}
}

func TestMissesAreExpensive(t *testing.T) {
	p := DefaultParams()
	hit := &mem.Stats{L1Hits: 1, BusRequests: 1}
	miss := &mem.Stats{L1Misses: 1, BusRequests: 1}
	if FromStats(miss, p) <= FromStats(hit, p) {
		t.Errorf("an L2 round trip must dominate an L1 hit")
	}
}
