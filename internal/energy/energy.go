// Package energy estimates the relative memory-system energy of a run from
// the event counters the simulator collects. The paper motivates L0 buffers
// by wire delay, but its closest ancestor (Kin et al.'s filter cache) was a
// power structure, and the same accounting applies here: a hit in a tiny
// fully-associative buffer costs a fraction of an 8 KB set-associative
// lookup plus a long wire round trip, so redirecting most accesses to L0
// also cuts energy. This model quantifies that side of the design.
//
// Costs are relative units (an L1 access ≡ 1.0), not joules: the interesting
// output is the ratio between architectures under identical work.
package energy

import "repro/internal/mem"

// Params are per-event energy costs in relative units.
type Params struct {
	// L0Access is one probe of a small fully-associative buffer.
	L0Access float64
	// L1Access is one probe of the unified L1 (tag + data + wire).
	L1Access float64
	// L2Access is one access to the next level on an L1 miss.
	L2Access float64
	// BusTransfer is one request/response pair on a cluster↔L1 bus.
	BusTransfer float64
	// Shuffle is one pass through the shift/interleave logic.
	Shuffle float64
	// L0Fill is writing one subblock into a buffer.
	L0Fill float64
}

// DefaultParams uses CACTI-flavoured ratios: a few-entry fully-associative
// buffer costs about a tenth of an 8 KB 2-way cache access; the inter-unit
// wire transfer costs about a third; the (larger, farther) L2 about five
// L1 accesses.
func DefaultParams() Params {
	return Params{
		L0Access:    0.10,
		L1Access:    1.00,
		L2Access:    5.00,
		BusTransfer: 0.35,
		Shuffle:     0.15,
		L0Fill:      0.10,
	}
}

// FromStats computes the total relative energy of the events in st.
func FromStats(st *mem.Stats, p Params) float64 {
	e := 0.0
	e += p.L0Access * float64(st.L0Hits+st.L0Misses)
	e += p.L1Access * float64(st.L1Hits+st.L1Misses)
	e += p.L2Access * float64(st.L1Misses)
	e += p.BusTransfer * float64(st.BusRequests)
	e += p.Shuffle * float64(st.InterleavedSubblocks)
	e += p.L0Fill * float64(st.LinearSubblocks+st.InterleavedSubblocks)
	return e
}

// Breakdown itemises the energy per component (for reports).
type Breakdown struct {
	L0, L1, L2, Bus, Shuffle, Fill float64
}

// Total returns the sum of the components.
func (b Breakdown) Total() float64 {
	return b.L0 + b.L1 + b.L2 + b.Bus + b.Shuffle + b.Fill
}

// BreakdownFromStats itemises st's energy.
func BreakdownFromStats(st *mem.Stats, p Params) Breakdown {
	return Breakdown{
		L0:      p.L0Access * float64(st.L0Hits+st.L0Misses),
		L1:      p.L1Access * float64(st.L1Hits+st.L1Misses),
		L2:      p.L2Access * float64(st.L1Misses),
		Bus:     p.BusTransfer * float64(st.BusRequests),
		Shuffle: p.Shuffle * float64(st.InterleavedSubblocks),
		Fill:    p.L0Fill * float64(st.LinearSubblocks+st.InterleavedSubblocks),
	}
}
