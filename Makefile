GO ?= go

.PHONY: build test race vet lint bench smoke serve-smoke fleet-smoke kernels-smoke loadbench-smoke gapstudy gapstudy-smoke fuzz wirestudy linkcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo-specific determinism analyzers (cmd/l0lint): map
# iteration, ambient inputs, I/O under locks and cache-key exhaustiveness in
# the deterministic packages. Exits non-zero on any unsuppressed diagnostic;
# see docs/determinism.md for the rule catalog and the //lint:allow syntax.
lint:
	$(GO) run ./cmd/l0lint

# smoke builds the exploration service and sweeps a tiny 2×2 grid (two
# benchmarks × two cluster counts × two buffer sizes) in the csv and json
# formats with the emitters round-trip-checked, then verifies a 2-way shard
# split merges back to the byte-identical table output. Scratch files live
# under the build tree so concurrent checkouts never race on shared paths.
SMOKE_ARGS = -benches gsmdec,g721dec -clusters 4,16 -entries 4,8
SMOKE_DIR = .smoke
smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) build -o $(SMOKE_DIR)/l0explore ./cmd/l0explore
	$(SMOKE_DIR)/l0explore $(SMOKE_ARGS) -format csv -roundtrip -o /dev/null
	$(SMOKE_DIR)/l0explore $(SMOKE_ARGS) -format json -roundtrip -o /dev/null
	$(SMOKE_DIR)/l0explore $(SMOKE_ARGS) -format table -o $(SMOKE_DIR)/full.txt
	$(SMOKE_DIR)/l0explore $(SMOKE_ARGS) -shard 0/2 -format json -o $(SMOKE_DIR)/s0.json
	$(SMOKE_DIR)/l0explore $(SMOKE_ARGS) -shard 1/2 -format json -o $(SMOKE_DIR)/s1.json
	$(SMOKE_DIR)/l0explore -merge $(SMOKE_DIR)/s0.json,$(SMOKE_DIR)/s1.json -format table -o $(SMOKE_DIR)/merged.txt
	cmp $(SMOKE_DIR)/full.txt $(SMOKE_DIR)/merged.txt
	rm -rf $(SMOKE_DIR)

# serve-smoke drives the serving subsystem end to end: l0served on an
# ephemeral port, a 2×2 grid through the HTTP API diffed byte-for-byte
# against the local l0explore output, a repeat sweep that must be served
# from the result cache (zero new simulations, byte-identical), a cache
# save → fresh-process reload cycle that must serve the same sweep with
# zero compiles and zero simulations, and a capped server whose evictions
# must not change a byte.
serve-smoke:
	sh scripts/serve_smoke.sh .serve-smoke

# kernels-smoke drives content-addressed kernel identity end to end: POST a
# real .loop file to l0served, sweep it by content hash over HTTP (bytes
# must match the local run from the file), repeat warm (zero compiles and
# simulations), save the v3 snapshot and reload it into a fresh process
# that serves the hash sweep compile-free without re-registration, then
# boot a server on the committed v2 snapshot fixture to pin that old
# positional-keyed caches still import and serve.
kernels-smoke:
	sh scripts/kernels_smoke.sh .kernels-smoke

# fuzz runs the looplang fuzzers for short bounded bursts (seeds: the
# example .loop files plus the formatter's output for every suite kernel).
# Two targets — FuzzParse (parse/validate/canonicalize fixed point) and
# FuzzFormatRoundTrip (Parse∘Format∘Parse stability) — each needs its own
# invocation because -fuzz takes a single target. CI-friendly; run with a
# longer -fuzztime locally to dig.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/looplang -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/looplang -run='^$$' -fuzz='^FuzzFormatRoundTrip$$' -fuzztime=$(FUZZTIME)

# fleet-smoke drives the fault-tolerant coordinator against real processes:
# two single-worker l0served on loopback, a full-grid l0fleet sweep with one
# server SIGKILLed mid-sweep (must complete with retries > 0 and output
# cmp-identical to an unsharded run), then the all-servers-dead degraded
# path with -local-fallback.
fleet-smoke:
	sh scripts/fleet_smoke.sh .fleet-smoke

# loadbench-smoke drives the l0bench load generator selfhost (in-process
# server): the committed smoke trace in both loop modes, asserting nonzero
# throughput, zero errors/timeouts, byte-verified grid responses and a
# byte-stable artifact round trip (l0bench -parse).
loadbench-smoke:
	sh scripts/loadbench_smoke.sh .loadbench-smoke

# gapstudy regenerates docs/gap_study.md: every suite kernel compiled by the
# SMS heuristic and by the exact branch-and-bound backend (-sched exact),
# with the heuristic II compared against the exact backend's proven lower
# bound and every certificate re-checked by the independent validator.
gapstudy:
	$(GO) run ./cmd/l0gap -o docs/gap_study.md

# gapstudy-smoke drives the exact backend end to end, race-instrumented: a
# validated l0sched certificate, a two-benchmark l0gap study that must prove
# optimality, the sched axis through l0served vs local l0explore (byte-
# identical, and the repeat sweep search-free per the exact_searches/
# exact_nodes counters), and an async exact job with the cancel endpoint.
gapstudy-smoke:
	sh scripts/gapstudy_smoke.sh .gapstudy-smoke

# linkcheck fails on dead relative links in README.md and docs/ (the docs
# set is part of the contract; a moved file must take its links with it).
linkcheck:
	sh scripts/check_links.sh

# wirestudy reproduces docs/wire_study.md: the wire-delay scaling sweep
# (L1 latency 4..24 with the adaptive prefetch-distance scheduler) over the
# full default grid. Takes a few minutes single-core; the committed CSV is
# the artifact the write-up reads from.
wirestudy:
	$(GO) run ./cmd/l0explore -l1lat 4,8,12,16,20,24 -adaptive -format csv -roundtrip -o docs/wire_study.csv

# bench regenerates every figure/table benchmark with allocation stats and
# records the machine-readable trajectory in BENCH_<n>.json (bump the number
# per PR so the history accumulates). The explore smoke sweep gates it so a
# broken emitter never records a trajectory point.
BENCH_OUT ?= BENCH_2.json
bench: smoke
	$(GO) test -bench=. -benchmem -run='^$$' -count=5 -json . | tee $(BENCH_OUT)
