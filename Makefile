GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every figure/table benchmark with allocation stats and
# records the machine-readable trajectory in BENCH_<n>.json (bump the number
# per PR so the history accumulates).
BENCH_OUT ?= BENCH_1.json
bench:
	$(GO) test -bench=. -benchmem -run='^$$' -count=5 -json . | tee $(BENCH_OUT)
