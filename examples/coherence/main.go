// Coherence walks through §4.1 of the paper: a loop whose loads and stores
// form one memory-dependent set is scheduled under each of the three
// software coherence schemes — NL0 (don't use the buffers), 1C (pin the set
// to one cluster) and PSR (replicate the stores) — and the example shows
// what each scheme does to the schedule and the execution time.
//
// Run with: go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"repro/internal/alias"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/vliw"
)

// buildLoop returns a recursive filter y[i] = f(y[i-1], x[i]): the y-load
// and y-store form a load+store memory-dependent set whose cross-iteration
// dependence makes the coherence scheme decide the initiation interval.
func buildLoop() *ir.Loop {
	b := ir.NewBuilder("iir", 2048)
	y := b.Array("y", 16*1024, 4)
	x := b.Array("x", 16*1024, 4)
	prev := b.Load("ld_y1", y, -4, 4, 4)
	vx := b.Load("ld_x", x, 0, 4, 4)
	v := b.Int("mix", prev, vx)
	v = b.Int("scale", v)
	b.Store("st_y", y, 0, 4, 4, v)
	return core.AssignAddresses(b.Build())
}

func describe(name string, sch *sched.Schedule) {
	als := alias.Analyze(sch.Loop)
	fmt.Printf("\n%s: II=%d\n", name, sch.II)
	for si := range als.Sets {
		if !als.SetHasLoadAndStore(sch.Loop, si) {
			continue
		}
		fmt.Printf("  set %v handled as %v", als.Sets[si], sch.SetScheme[si])
		if sch.SetHome[si] >= 0 {
			fmt.Printf(" in cluster %d", sch.SetHome[si])
		}
		fmt.Println()
	}
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if !p.Instr.Op.IsMemRef() {
			continue
		}
		role := ""
		if p.Instr.ReplicaGroup != 0 {
			if p.Instr.PrimaryReplica {
				role = " (primary replica)"
			} else {
				role = " (invalidate-only replica)"
			}
		}
		fmt.Printf("  %-10s cluster %d latency %d  %v%s\n",
			p.Instr.Name, p.Cluster, p.Latency, p.Hints, role)
	}
}

func run(sch *sched.Schedule, cfg arch.Config) vliw.Result {
	sys := mem.NewSystem(cfg)
	res, err := vliw.Run(sch, sys)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	cfg := arch.MICRO36Config()

	// NL0: the whole set is kept out of the buffers (simulate by marking
	// nothing — easiest honest stand-in is the no-L0 baseline schedule).
	nl0, err := sched.Compile(buildLoop(), cfg.WithL0Entries(0), sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	describe("NL0 (set kept out of L0; here: the no-buffer schedule)", nl0)

	// 1C: the default choice for a set with an L0-marked load.
	oneC, err := sched.Compile(buildLoop(), cfg, sched.Options{UseL0: true})
	if err != nil {
		log.Fatal(err)
	}
	describe("1C (set pinned to its home cluster)", oneC)

	// PSR: stores replicated to every cluster; loads placed freely.
	psr, err := sched.Compile(buildLoop(), cfg, sched.Options{UseL0: true, AllowPSR: true})
	if err != nil {
		log.Fatal(err)
	}
	describe("PSR (stores replicated; loads free)", psr)

	fmt.Println("\nexecution (same machine, same loop):")
	for _, c := range []struct {
		name string
		sch  *sched.Schedule
		cfg  arch.Config
	}{
		{"NL0", nl0, cfg.WithL0Entries(0)},
		{"1C ", oneC, cfg},
		{"PSR", psr, cfg},
	} {
		r := run(c.sch, c.cfg)
		fmt.Printf("  %s: %6d cycles (compute %d + stall %d)\n",
			c.name, r.TotalCycles, r.ComputeCycles, r.StallCycles)
	}
	fmt.Println("\nThe set's recurrence runs through memory, so NL0 pays the full L1")
	fmt.Println("latency every iteration while 1C and PSR run it at the L0 latency;")
	fmt.Println("PSR additionally spends memory slots and bus transfers on the")
	fmt.Println("replicas — which is why the paper settles on choosing between NL0")
	fmt.Println("and 1C (§4.1).")
}
