// Saxpy walks through the paper's §3.1 example: a loop over 2-byte elements
// (a[i] = b[i] + C) is unrolled four times so each copy lands in its own
// cluster, and the hardware maps the data with INTERLEAVED_MAP — the L1
// block is split at 2-byte granularity so that elements b[0], b[4], b[8]...
// all land in the cluster executing load_1, b[1], b[5]... in load_2's
// cluster, and so on. A single POSITIVE prefetch hint (on the first load in
// the final schedule) fetches and scatters each next block for everyone.
//
// Run with: go run ./examples/saxpy
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/unroll"
	"repro/internal/vliw"
)

func main() {
	b := ir.NewBuilder("saxpy", 8192)
	src := b.Array("b", 64*1024, 2)
	dst := b.Array("a", 64*1024, 2)
	v := b.Load("ld_b", src, 0, 2, 2)
	s := b.Int("axpy", v) // b[i]·α + C folded into one op for brevity
	s2 := b.Int("round", s)
	b.Store("st_a", dst, 0, 2, 2, s2)
	loop := core.AssignAddresses(b.Build())

	cfg := arch.MICRO36Config()

	// Show the compiler's unroll decision, then unroll explicitly to
	// inspect the interleaved group.
	factor := sched.ChooseUnrollFactor(loop, cfg.WithL0Entries(0))
	fmt.Printf("step 1: chosen unroll factor = %d (cluster count = %d)\n", factor, cfg.Clusters)

	ul, err := unroll.ByFactor(loop, factor)
	if err != nil {
		log.Fatal(err)
	}
	sch, err := sched.Compile(ul, cfg, sched.Options{UseL0: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: II=%d, SC=%d\n\n", sch.II, sch.SC)
	fmt.Println("the four copies of ld_b and their mapping:")
	for i := range sch.Placed {
		p := &sch.Placed[i]
		if p.Instr.Op == ir.OpLoad {
			fmt.Printf("  %-8s copy %d -> cluster %d, offset %d, %v\n",
				p.Instr.Name, p.Instr.UnrollCopy, p.Cluster, p.Instr.Mem.Offset, p.Hints)
		}
	}

	sys := mem.NewSystem(cfg)
	res, err := vliw.Run(sch, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution: %d cycles (%d compute + %d stall)\n",
		res.TotalCycles, res.ComputeCycles, res.StallCycles)
	fmt.Printf("L0: %.1f%% hit rate, %d interleaved subblocks vs %d linear, %d hint prefetches\n",
		sys.Stats.L0HitRate()*100, sys.Stats.InterleavedSubblocks,
		sys.Stats.LinearSubblocks, sys.Stats.HintPrefetches)
}
