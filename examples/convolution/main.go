// Convolution demonstrates scheduling step 5 (explicit software prefetch):
// a vertical convolution walks an image by columns, so its stride (one row)
// never matches the subblock walk the automatic POSITIVE/NEGATIVE hints
// cover. The compiler inserts an explicit prefetch instruction that pulls
// the next iteration's subblock into the cluster's L0 buffer, and the
// example contrasts the stall time with prefetching disabled, at distance 1,
// and at distance 2 (the §5.2 extension for small-II loops).
//
// Run with: go run ./examples/convolution
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/vliw"
)

const rowBytes = 256

func buildColumnLoop() *ir.Loop {
	b := ir.NewBuilder("vconv", 4096)
	img := b.Array("img", 4096*rowBytes+64, 2)
	out := b.Array("out", 16*1024, 2)
	// Three vertically adjacent taps.
	t0 := b.Load("tap0", img, 0, rowBytes, 2)
	t1 := b.Load("tap1", img, rowBytes, rowBytes, 2)
	t2 := b.Load("tap2", img, 2*rowBytes, rowBytes, 2)
	m0 := b.IntMul("m0", t0)
	m1 := b.IntMul("m1", t1)
	m2 := b.IntMul("m2", t2)
	s := b.Int("s0", m0, m1)
	s2 := b.Int("s1", s, m2)
	b.Store("st", out, 0, 2, 2, s2)
	return core.AssignAddresses(b.Build())
}

func run(opts sched.Options) (*sched.Schedule, vliw.Result, *mem.System) {
	cfg := arch.MICRO36Config()
	opts.UseL0 = true
	sch, err := sched.Compile(buildColumnLoop(), cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	sys := mem.NewSystem(cfg)
	res, err := vliw.Run(sch, sys)
	if err != nil {
		log.Fatal(err)
	}
	return sch, res, sys
}

func main() {
	fmt.Printf("vertical convolution, stride = %d bytes (one image row)\n\n", rowBytes)

	schOff, off, _ := run(sched.Options{DisableExplicitPrefetch: true})
	fmt.Printf("no explicit prefetch:  II=%d  %8d cycles (stall %d)\n",
		schOff.II, off.TotalCycles, off.StallCycles)

	schD1, d1, sys1 := run(sched.Options{})
	fmt.Printf("prefetch distance 1:   II=%d  %8d cycles (stall %d, %d prefetches)\n",
		schD1.II, d1.TotalCycles, d1.StallCycles, sys1.Stats.ExplicitPrefetches)

	schD2, d2, sys2 := run(sched.Options{PrefetchDistance: 2})
	fmt.Printf("prefetch distance 2:   II=%d  %8d cycles (stall %d, %d prefetches)\n",
		schD2.II, d2.TotalCycles, d2.StallCycles, sys2.Stats.ExplicitPrefetches)

	fmt.Println("\nscheduled prefetch operations (distance 1):")
	for _, pf := range schD1.Prefetches {
		served := schD1.Placed[pf.For].Instr.Name
		fmt.Printf("  prefetch for %-5s cluster %d, cycle %d, %d iteration(s) ahead\n",
			served, pf.Cluster, pf.Cycle, pf.Distance)
	}
}
